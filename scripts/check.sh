#!/usr/bin/env bash
# Tier-1 gate: build and run the test suite in the regular configuration
# and under ASan+LSan, UBSan and TSan (see CMakePresets.json). TSan
# matters since src/exec/: the sweep engine runs protocol simulations on
# a worker pool, and every parallel-sweep test exercises it — including
# the seeded ChaosSmoke fault-injection sweep (scripts/chaos_smoke.sh),
# which therefore runs under every sanitizer too. Run from anywhere;
# exits non-zero on the first failing configuration.
#
# With no arguments, runs every preset and every test. Presets named on
# the command line restrict the sweep (CI splits the matrix this way),
# and --filter REGEX forwards to `ctest -R` for a smoke subset:
#
#   scripts/check.sh                     # all presets, all tests
#   scripts/check.sh default             # one preset
#   scripts/check.sh asan --filter 'Smoke|FastnetTests'
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

presets=()
filter=""
while [ $# -gt 0 ]; do
    case "$1" in
        --filter)
            [ $# -ge 2 ] || { echo "error: --filter needs a regex" >&2; exit 2; }
            filter=$2
            shift 2
            ;;
        -*)
            echo "usage: $0 [PRESET...] [--filter REGEX]" >&2
            exit 2
            ;;
        *)
            presets+=("$1")
            shift
            ;;
    esac
done
if [ ${#presets[@]} -eq 0 ]; then
    presets=(default asan ubsan tsan)
fi

run_preset() {
    local preset=$1
    echo "==> [$preset] configure"
    cmake --preset "$preset" >/dev/null
    echo "==> [$preset] build"
    cmake --build --preset "$preset" -j "$jobs"
    echo "==> [$preset] test"
    if [ -n "$filter" ]; then
        ctest --preset "$preset" -j "$jobs" -R "$filter"
    else
        ctest --preset "$preset" -j "$jobs"
    fi
}

for preset in "${presets[@]}"; do
    run_preset "$preset"
done

echo "All configurations green."
