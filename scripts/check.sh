#!/usr/bin/env bash
# Tier-1 gate: build and run the full test suite in the regular
# configuration and under ASan+LSan, UBSan and TSan (see
# CMakePresets.json). TSan matters since src/exec/: the sweep engine
# runs protocol simulations on a worker pool, and every parallel-sweep
# test exercises it — including the seeded ChaosSmoke fault-injection
# sweep (scripts/chaos_smoke.sh), which therefore runs under every
# sanitizer too. Run from anywhere; exits non-zero on the first
# failing configuration.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

run_preset() {
    local preset=$1
    echo "==> [$preset] configure"
    cmake --preset "$preset" >/dev/null
    echo "==> [$preset] build"
    cmake --build --preset "$preset" -j "$jobs"
    echo "==> [$preset] test"
    ctest --preset "$preset" -j "$jobs"
}

for preset in default asan ubsan tsan; do
    run_preset "$preset"
done

echo "All configurations green."
