#!/usr/bin/env python3
"""Diff two BENCH_*.json files (see bench/json_reporter.hpp).

Prints every metric present in either file with old/new values and the
relative change. With --fail-on-regression P (or its older spelling
--threshold P), exits 1 when any shared metric regressed by more than P
percent — "regressed" respects the unit's direction: throughput and
carried-work units (*_per_sec, calls) regress downwards, everything
else (ns, ms, allocs, pct, bytes, ticks, retries, and the critical-path
units path_ticks and segments) regresses upwards.

  scripts/bench_diff.py old/BENCH_sim_core.json new/BENCH_sim_core.json
  scripts/bench_diff.py --fail-on-regression 5 old.json new.json
"""
import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    results = {}
    for entry in doc.get("results", []):
        results[entry["name"]] = (float(entry["value"]), entry.get("unit", ""))
    return doc.get("bench", "?"), results


def higher_is_better(unit):
    # Latency-flavored units — path_ticks (end-to-end critical-path
    # latency) and segments (path depth) among them — take the default
    # lower-is-better direction.
    return "per_sec" in unit or unit in ("calls", "invocations")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("old", help="baseline BENCH_*.json")
    ap.add_argument("new", help="candidate BENCH_*.json")
    ap.add_argument("--fail-on-regression", "--threshold", dest="threshold",
                    type=float, default=None, metavar="PCT",
                    help="exit 1 if any metric regresses more than PCT percent")
    args = ap.parse_args()

    old_name, old = load(args.old)
    new_name, new = load(args.new)
    if old_name != new_name:
        print(f"note: comparing different benches ({old_name} vs {new_name})")

    names = list(old.keys()) + [n for n in new.keys() if n not in old]
    width = max((len(n) for n in names), default=4)
    regressions = []
    print(f"{'metric':<{width}}  {'old':>14}  {'new':>14}  {'delta':>9}")
    for name in names:
        if name not in old:
            value, unit = new[name]
            print(f"{name:<{width}}  {'-':>14}  {value:>14.4g}  {'new':>9}  {unit}")
            continue
        if name not in new:
            value, unit = old[name]
            print(f"{name:<{width}}  {value:>14.4g}  {'-':>14}  {'gone':>9}  {unit}")
            continue
        (ov, unit), (nv, _) = old[name], new[name]
        if ov == 0:
            delta_str = "n/a" if nv == 0 else "inf"
            delta = 0.0
        else:
            delta = 100.0 * (nv - ov) / abs(ov)
            delta_str = f"{delta:+.2f}%"
        print(f"{name:<{width}}  {ov:>14.4g}  {nv:>14.4g}  {delta_str:>9}  {unit}")
        if args.threshold is not None and ov != 0:
            regressed = (-delta if higher_is_better(unit) else delta) > args.threshold
            if regressed:
                regressions.append((name, delta, unit))

    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed beyond "
              f"{args.threshold}%:", file=sys.stderr)
        for name, delta, unit in regressions:
            print(f"  {name}: {delta:+.2f}% ({unit})", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
