#!/usr/bin/env bash
# Critical-path determinism gate: the streaming latency-attribution
# report must be a pure function of the run — not of how the run was
# sharded, threaded, or stored. Runs the traced chaos scenario across a
# (shards x threads) grid and requires
#   1. `fastnet_trace --critical-path` over each cell's spill directory
#      to be byte-identical to the same query over the cell's in-memory
#      canonical export (streaming engine == in-memory engine), and
#   2. every cell's report to be byte-identical to the single-shard
#      single-thread reference (no partition artifacts in attribution),
#   3. the side surfaces to stay wired: --waterfall renders the winning
#      path, --flame emits a chrome trace that --check accepts, the
#      metrics JSON carries the "critical_path" section, and
#      fastnet_report renders it as the slowest-paths table.
# Wired in as the CriticalPathSmoke ctest; also runnable by hand:
#
#   scripts/critical_path_smoke.sh [trace_spill_smoke] [fastnet_trace] [fastnet_report]
set -euo pipefail

smoke_bin="${1:-}"
trace_bin="${2:-}"
report_bin="${3:-}"
if [[ -z "$smoke_bin" || -z "$trace_bin" || -z "$report_bin" ]]; then
    cd "$(dirname "$0")/.."
    for candidate in build/tests/fastnet_trace_spill_smoke build-*/tests/fastnet_trace_spill_smoke; do
        [[ -x "$candidate" ]] && { smoke_bin="${smoke_bin:-$candidate}"; break; }
    done
    for candidate in build/tools/fastnet_trace build-*/tools/fastnet_trace; do
        [[ -x "$candidate" ]] && { trace_bin="${trace_bin:-$candidate}"; break; }
    done
    for candidate in build/tools/fastnet_report build-*/tools/fastnet_report; do
        [[ -x "$candidate" ]] && { report_bin="${report_bin:-$candidate}"; break; }
    done
fi
for bin in "$smoke_bin" "$trace_bin" "$report_bin"; do
    if [[ -z "$bin" || ! -x "$bin" ]]; then
        echo "critical_path_smoke: binaries not found (build first, or pass their paths)" >&2
        exit 2
    fi
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for shards in 1 2 4 7; do
    for threads in 1 2 0; do   # 0 = min(shards, hardware_concurrency)
        cell="$tmp/s${shards}_t${threads}"
        "$smoke_bin" --shards "$shards" --threads "$threads" --dir "$cell"
        # Streaming (spill) vs in-memory (canonical export): same bytes.
        "$trace_bin" "$cell/spill" --critical-path --top 3 > "$cell/cp_spill.txt"
        "$trace_bin" "$cell/canonical.json" --critical-path --top 3 > "$cell/cp_mem.txt"
        diff -u "$cell/cp_spill.txt" "$cell/cp_mem.txt"
    done
done

# Attribution must not depend on the partition or the worker count.
for shards in 1 2 4 7; do
    for threads in 1 2 0; do
        diff -u "$tmp/s1_t1/cp_spill.txt" "$tmp/s${shards}_t${threads}/cp_spill.txt"
    done
done

spill="$tmp/s4_t2/spill"

# Waterfall of the winning path, straight off the spill directory.
"$trace_bin" "$spill" --critical-path --waterfall > "$tmp/waterfall.txt"
grep -q "^waterfall " "$tmp/waterfall.txt" \
    || { echo "critical_path_smoke: --waterfall rendered nothing" >&2; exit 1; }

# Flame export is a valid chrome trace with the overlay track.
"$trace_bin" "$spill" --critical-path --flame "$tmp/flame.json" > /dev/null
"$trace_bin" "$tmp/flame.json" --check
grep -q '"critical path"' "$tmp/flame.json" \
    || { echo "critical_path_smoke: flame export lacks the path overlay track" >&2; exit 1; }

# The metrics JSON carries the section and fastnet_report renders it.
grep -q '"critical_path"' "$tmp/s1_t1/metrics.json" \
    || { echo "critical_path_smoke: metrics JSON lacks the critical_path section" >&2; exit 1; }
"$report_bin" --metrics "$tmp/s1_t1/metrics.json" > "$tmp/report.md"
grep -q "## Critical paths" "$tmp/report.md" \
    || { echo "critical_path_smoke: fastnet_report did not render the section" >&2; exit 1; }
grep -q "| witness |" "$tmp/report.md" \
    || { echo "critical_path_smoke: report table is missing the witness row" >&2; exit 1; }

# --summary over a metrics file prints the handler profile histograms.
"$trace_bin" "$tmp/s1_t1/metrics.json" --summary > "$tmp/summary.txt"
grep -q "profile" "$tmp/summary.txt" \
    || { echo "critical_path_smoke: --summary did not print the profile section" >&2; exit 1; }

echo "critical_path_smoke: attribution byte-identical across the (shards x threads) grid, in-memory vs spill; waterfall, flame, metrics section and report table OK."
