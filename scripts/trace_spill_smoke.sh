#!/usr/bin/env bash
# Spill determinism gate: run the traced chaos scenario through the
# parallel kernel with the trace spilling to disk, across a
# (shards x threads) grid, and require
#   1. the streamed spill exports to be byte-identical to the in-memory
#      merged exports (the binary asserts this in-process per cell), and
#   2. every grid cell's exports to be byte-identical to the
#      single-shard single-thread run (spill must not leak partition
#      artifacts into what the run looks like), and
#   3. fastnet_trace to answer --check/--summary/--calls/--violations/
#      --chain directly over the spill directory, plus recover a
#      crash-truncated spill file.
# Wired in as the TraceSpillSmoke ctest; also runnable by hand:
#
#   scripts/trace_spill_smoke.sh [path/to/trace_spill_smoke] [path/to/fastnet_trace]
set -euo pipefail

smoke_bin="${1:-}"
trace_bin="${2:-}"
if [[ -z "$smoke_bin" || -z "$trace_bin" ]]; then
    cd "$(dirname "$0")/.."
    for candidate in build/tests/fastnet_trace_spill_smoke build-*/tests/fastnet_trace_spill_smoke; do
        if [[ -x "$candidate" ]]; then
            smoke_bin="${smoke_bin:-$candidate}"
            break
        fi
    done
    for candidate in build/tools/fastnet_trace build-*/tools/fastnet_trace; do
        if [[ -x "$candidate" ]]; then
            trace_bin="${trace_bin:-$candidate}"
            break
        fi
    done
fi
if [[ -z "$smoke_bin" || ! -x "$smoke_bin" || -z "$trace_bin" || ! -x "$trace_bin" ]]; then
    echo "trace_spill_smoke: binaries not found (build first, or pass their paths)" >&2
    exit 2
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for shards in 1 2 4 7; do
    for threads in 1 2 0; do   # 0 = min(shards, hardware_concurrency)
        "$smoke_bin" --shards "$shards" --threads "$threads" \
            --dir "$tmp/s${shards}_t${threads}"
    done
done

# Exports must not depend on the partition or the worker count.
for suffix in canonical.json chrome.json metrics.json; do
    for shards in 1 2 4 7; do
        for threads in 1 2 0; do
            diff -u "$tmp/s1_t1/$suffix" "$tmp/s${shards}_t${threads}/$suffix"
        done
    done
done

# fastnet_trace over the spill directory (and over a single spill file).
spill="$tmp/s4_t2/spill"
"$trace_bin" "$spill" --check
"$trace_bin" "$spill" --summary
"$trace_bin" "$spill/shard-0000.fnspill" --check

"$trace_bin" "$spill" --calls > "$tmp/calls.txt"
grep -q " call(s), " "$tmp/calls.txt" \
    || { echo "trace_spill_smoke: --calls found no calls in the spill" >&2; exit 1; }

# The chaos monitors hold on this scenario, so --violations reports none
# (and exits 0); a spill-query failure would exit 2.
"$trace_bin" "$spill" --violations > "$tmp/violations.txt"
grep -q "no violations recorded" "$tmp/violations.txt" \
    || { echo "trace_spill_smoke: unexpected --violations output" >&2; exit 1; }

# Causal chain through the lineage index sidecar: any dropped packet's
# chain must start with its send.
"$trace_bin" "$spill" --kind drop > "$tmp/drops.txt"
lineage=$(head -1 "$tmp/drops.txt" | sed -n 's/.* lin=\([0-9]*\).*/\1/p')
if [[ -n "$lineage" ]]; then
    "$trace_bin" "$spill" --chain "$lineage" > "$tmp/chain.txt"
    grep -q " send " "$tmp/chain.txt" \
        || { echo "trace_spill_smoke: chain of lineage $lineage has no send" >&2; exit 1; }
fi

# Crash recovery: the binary wrote a mid-segment-truncated copy; the CLI
# must read it, flag the recovery, and still answer queries.
crash="$tmp/s4_t2/crash.fnspill"
"$trace_bin" "$crash" --check > "$tmp/crash_check.txt"
grep -q "tail recovered" "$tmp/crash_check.txt" \
    || { echo "trace_spill_smoke: truncated spill not reported as recovered" >&2; exit 1; }
"$trace_bin" "$crash" --summary > /dev/null

echo "trace_spill_smoke: spill exports byte-identical across the (shards x threads) grid; CLI queries and crash recovery OK."
