#!/usr/bin/env bash
# Determinism smoke for the parallel sweep engine: run the same tiny sweep
# at 1 thread, 2 threads and hardware_concurrency, then byte-diff the JSON
# outputs. Wired in as the SweepSmoke ctest; also runnable by hand:
#
#   scripts/sweep_smoke.sh [path/to/fastnet_sweep_smoke]
#
# Exits non-zero if the sweep fails or any pair of outputs differs.
set -euo pipefail

bin="${1:-}"
if [[ -z "$bin" ]]; then
    cd "$(dirname "$0")/.."
    for candidate in build/tests/fastnet_sweep_smoke build-*/tests/fastnet_sweep_smoke; do
        if [[ -x "$candidate" ]]; then
            bin="$candidate"
            break
        fi
    done
fi
if [[ -z "$bin" || ! -x "$bin" ]]; then
    echo "sweep_smoke: binary not found (build first, or pass its path)" >&2
    exit 2
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$bin" --threads 1 --out "$tmp/t1.json"
"$bin" --threads 2 --out "$tmp/t2.json"
"$bin" --threads 0 --out "$tmp/tN.json"   # 0 = hardware_concurrency

diff -u "$tmp/t1.json" "$tmp/t2.json"
diff -u "$tmp/t1.json" "$tmp/tN.json"
echo "sweep_smoke: byte-identical at 1, 2 and hardware_concurrency threads."
