#!/usr/bin/env bash
# Parallel-kernel chaos gate: run the seeded fault sweep through
# node::ParallelCluster (tests/chaos_parallel_main.cpp) at several
# (shards, threads) combinations and byte-diff the JSON outputs against
# the single-shard run. The partitioned kernel's contract is that shard
# count and worker-thread count are invisible in the results: same
# completion times, same cost counters, same oracle and monitor verdicts.
# Wired in as the ChaosParallelSmoke ctest; also runnable by hand:
#
#   scripts/chaos_parallel.sh [path/to/fastnet_chaos_parallel] [--seeds N]
#
# Exits non-zero if any seed violates its oracle or any pair of outputs
# differs.
set -euo pipefail

bin="${1:-}"
seeds="${2:-}"
if [[ -z "$bin" ]]; then
    cd "$(dirname "$0")/.."
    for candidate in build/tests/fastnet_chaos_parallel build-*/tests/fastnet_chaos_parallel; do
        if [[ -x "$candidate" ]]; then
            bin="$candidate"
            break
        fi
    done
fi
if [[ -z "$bin" || ! -x "$bin" ]]; then
    echo "chaos_parallel: binary not found (build first, or pass its path)" >&2
    exit 2
fi

extra=()
if [[ -n "$seeds" ]]; then
    extra=(--seeds "${seeds#--seeds=}")
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$bin" --shards 1 --threads 1 --out "$tmp/s1.json" "${extra[@]}"
"$bin" --shards 2 --threads 1 --out "$tmp/s2t1.json" "${extra[@]}"
"$bin" --shards 4 --threads 2 --out "$tmp/s4t2.json" "${extra[@]}"
"$bin" --shards 7 --threads 0 --out "$tmp/s7tN.json" "${extra[@]}"  # 0 = min(shards, hw)

diff -u "$tmp/s1.json" "$tmp/s2t1.json"
diff -u "$tmp/s1.json" "$tmp/s4t2.json"
diff -u "$tmp/s1.json" "$tmp/s7tN.json"
echo "chaos_parallel: every seed passed its oracle; byte-identical at shards {1,2,4,7} x threads {1,2,N}."
