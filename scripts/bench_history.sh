#!/usr/bin/env bash
# Archive the current revision's bench outputs into bench/history/.
#
# Collects every BENCH_*.json and AUDIT_*.json under the given directory
# (default: build/bench, where the bench binaries drop them) into
# bench/history/<short-sha>/ and appends the sha to bench/history/INDEX
# — once; re-archiving the same revision refreshes its files without
# duplicating the INDEX line. INDEX orders snapshots oldest-first, which
# is exactly what tools/fastnet_report --history consumes for the
# per-bench trajectory tables.
#
#   scripts/bench_history.sh                # archive from build/bench
#   scripts/bench_history.sh build/mydir    # archive from elsewhere
set -euo pipefail

cd "$(dirname "$0")/.."

src=${1:-build/bench}
if [ ! -d "$src" ]; then
    echo "error: source directory $src does not exist (run the benches first)" >&2
    exit 2
fi

sha=$(git rev-parse --short HEAD)
dest="bench/history/$sha"

shopt -s nullglob
files=("$src"/BENCH_*.json "$src"/AUDIT_*.json)
if [ ${#files[@]} -eq 0 ]; then
    echo "error: no BENCH_*.json or AUDIT_*.json in $src" >&2
    exit 2
fi

mkdir -p "$dest"
cp "${files[@]}" "$dest/"

index="bench/history/INDEX"
touch "$index"
if ! grep -qx "$sha" "$index"; then
    echo "$sha" >>"$index"
fi

echo "archived ${#files[@]} file(s) into $dest"
