#!/usr/bin/env bash
# Observability gate: run one chaos scenario with tracing + sampling
# attached, export the trace in both formats (canonical + Chrome
# trace-event JSON) plus the sampled metrics, validate every file with
# `fastnet_trace --check`, and byte-diff all exports across 1, 2 and
# hardware_concurrency worker threads — trace capture must not perturb
# determinism, and export bytes must depend only on the simulation.
# Wired in as the TraceSmoke ctest; also runnable by hand:
#
#   scripts/trace_smoke.sh [path/to/fastnet_chaos_smoke] [path/to/fastnet_trace]
#
# Exits non-zero on any oracle violation, schema error or byte diff.
set -euo pipefail

smoke_bin="${1:-}"
trace_bin="${2:-}"
if [[ -z "$smoke_bin" || -z "$trace_bin" ]]; then
    cd "$(dirname "$0")/.."
    for candidate in build/tests/fastnet_chaos_smoke build-*/tests/fastnet_chaos_smoke; do
        if [[ -x "$candidate" ]]; then
            smoke_bin="${smoke_bin:-$candidate}"
            break
        fi
    done
    for candidate in build/tools/fastnet_trace build-*/tools/fastnet_trace; do
        if [[ -x "$candidate" ]]; then
            trace_bin="${trace_bin:-$candidate}"
            break
        fi
    done
fi
if [[ -z "$smoke_bin" || ! -x "$smoke_bin" || -z "$trace_bin" || ! -x "$trace_bin" ]]; then
    echo "trace_smoke: binaries not found (build first, or pass their paths)" >&2
    exit 2
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# maint/seed1 mixes link flaps, hard crashes and injected loss — the
# richest single scenario in the chaos sweep's first few seeds.
case_name="maint/seed1"

for threads in 1 2 0; do   # 0 = hardware_concurrency
    "$smoke_bin" --threads "$threads" --seeds 4 --out "$tmp/sweep_t$threads.json" \
        --trace-case "$case_name" --trace-prefix "$tmp/trace_t$threads"
done

for threads in 1 2 0; do
    "$trace_bin" "$tmp/trace_t$threads.canonical.json" --check
    "$trace_bin" "$tmp/trace_t$threads.chrome.json" --check
done

for suffix in canonical.json chrome.json metrics.json; do
    diff -u "$tmp/trace_t1.$suffix" "$tmp/trace_t2.$suffix"
    diff -u "$tmp/trace_t1.$suffix" "$tmp/trace_t0.$suffix"
done

# The exported trace alone must answer causal questions: every drop's
# lineage must reconstruct to a chain that starts with its send.
"$trace_bin" "$tmp/trace_t1.canonical.json" --summary
# (via a file: `| head -1` would SIGPIPE the CLI under pipefail)
"$trace_bin" "$tmp/trace_t1.canonical.json" --kind drop > "$tmp/drops.txt"
lineage=$(head -1 "$tmp/drops.txt" | sed -n 's/.* lin=\([0-9]*\).*/\1/p')
if [[ -n "$lineage" ]]; then
    chain=$("$trace_bin" "$tmp/trace_t1.canonical.json" --chain "$lineage")
    echo "$chain" | grep -q " send " \
        || { echo "trace_smoke: causal chain of lineage $lineage has no send" >&2; exit 1; }
fi
"$trace_bin" "$tmp/trace_t1.canonical.json" --reconvergence

echo "trace_smoke: exports schema-valid and byte-identical at 1, 2 and hardware_concurrency threads."
