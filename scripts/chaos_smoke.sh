#!/usr/bin/env bash
# Chaos gate: run the seeded fault-injection sweep (hard node
# crash/restart, link flaps, loss, duplication, NCU stalls — see
# tests/chaos_smoke_main.cpp) at 1 thread, 2 threads and
# hardware_concurrency, hold every seed against the convergence oracle,
# then byte-diff the JSON outputs. Chaos must be deterministic: the same
# seeds produce the same faults and the same verdicts at any parallelism.
# Wired in as the ChaosSmoke ctest; also runnable by hand:
#
#   scripts/chaos_smoke.sh [path/to/fastnet_chaos_smoke] [--seeds N]
#
# Exits non-zero if any seed violates its oracle or any pair of outputs
# differs.
set -euo pipefail

bin="${1:-}"
seeds="${2:-}"
if [[ -z "$bin" ]]; then
    cd "$(dirname "$0")/.."
    for candidate in build/tests/fastnet_chaos_smoke build-*/tests/fastnet_chaos_smoke; do
        if [[ -x "$candidate" ]]; then
            bin="$candidate"
            break
        fi
    done
fi
if [[ -z "$bin" || ! -x "$bin" ]]; then
    echo "chaos_smoke: binary not found (build first, or pass its path)" >&2
    exit 2
fi

extra=()
if [[ -n "$seeds" ]]; then
    extra=(--seeds "${seeds#--seeds=}")
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$bin" --threads 1 --out "$tmp/t1.json" "${extra[@]}"
"$bin" --threads 2 --out "$tmp/t2.json" "${extra[@]}"
"$bin" --threads 0 --out "$tmp/tN.json" "${extra[@]}"   # 0 = hardware_concurrency

diff -u "$tmp/t1.json" "$tmp/t2.json"
diff -u "$tmp/t1.json" "$tmp/tN.json"
echo "chaos_smoke: every seed passed its oracle; byte-identical at 1, 2 and hardware_concurrency threads."
