// gsf_planner — planning distributed aggregation with the Section 5
// machinery.
//
// Given the latency mix of a deployment (hop delay C vs processing
// delay P), prints the optimal gather schedule for a range of fleet
// sizes: the completion time, the shape of the optimal tree, and how
// much a naive star/binary fan-in would lose. Every row is verified by
// running the actual distributed protocol on the simulator.
//
//   $ ./gsf_planner [C] [P]      (defaults: C=2 P=1)
#include <cstdlib>
#include <iostream>

#include "fastnet.hpp"

using namespace fastnet;

int main(int argc, char** argv) {
    const Tick C = argc > 1 ? std::atoll(argv[1]) : 2;
    const Tick P = argc > 2 ? std::atoll(argv[2]) : 1;
    if (C < 0 || P < 1) {
        std::cerr << "usage: gsf_planner [C >= 0] [P >= 1]\n";
        return 2;
    }
    ModelParams params;
    params.hop_delay = C;
    params.ncu_delay = P;
    std::cout << "deployment model: hop delay C=" << C << ", NCU delay P=" << P << "\n";

    util::Table t({"fleet_n", "optimal_time", "simulated", "root_fan_in", "tree_depth",
                   "star_time", "binary_time", "saving_vs_star"});
    for (NodeId n : {8u, 32u, 128u, 512u, 2048u}) {
        const auto plan = gsf::build_optimal_tree(n, C, P);
        Tick simulated = -1;
        if (n <= 512) {  // complete-graph simulation is O(n^2) links
            const auto run = gsf::run_tree_gather(plan.tree, params);
            if (!run.correct) {
                std::cout << "simulation mismatch at n=" << n << "!\n";
                return 1;
            }
            simulated = run.completion;
        }
        const Tick star = gsf::predicted_completion(gsf::make_star_tree(n), C, P);
        const Tick binary = gsf::predicted_completion(gsf::make_kary_gather_tree(n, 2), C, P);
        t.add(n, plan.predicted_time, simulated, plan.tree.children(0).size(),
              plan.tree.height(), star, binary,
              static_cast<double>(star) / static_cast<double>(plan.predicted_time));
    }
    t.print(std::cout, "optimal aggregation schedule (verified by simulation)");

    std::cout << "\nhow the optimum shifts with the latency mix (n = 512):\n";
    util::Table shape({"C", "P", "t_opt", "root_fan_in", "depth"});
    for (auto [c, p] : std::vector<std::pair<Tick, Tick>>{
             {0, 1}, {1, 1}, {4, 1}, {16, 1}, {1, 4}}) {
        const auto plan = gsf::build_optimal_tree(512, c, p);
        shape.add(c, p, plan.predicted_time, plan.tree.children(0).size(),
                  plan.tree.height());
    }
    shape.print(std::cout, "cheap switching (small C/P) => bushy trees; "
                           "expensive switching => deep pipelines");
    return 0;
}
