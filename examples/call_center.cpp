// call_center — running the PARIS call setup application on a backbone.
//
// Simulates a day of traffic on a 20-node network: sources place calls
// with hold times, capacity admission rejects the excess, a link failure
// drops the calls riding it. Prints the resulting admission statistics
// and the A5 comparison (selective copy vs hop-by-hop setup latency).
//
//   $ ./call_center
#include <iostream>

#include "fastnet.hpp"

using namespace fastnet;
using paris::CallRequest;

int main() {
    Rng rng(88);
    graph::Graph g = graph::make_random_connected(20, 2, 10, rng);
    std::cout << "backbone: n=" << g.node_count() << " links=" << g.edge_count()
              << ", per-link capacity 2 units\n\n";

    // Traffic: 40 calls over the day with random hold times.
    std::map<NodeId, std::vector<CallRequest>> scripts;
    for (int i = 0; i < 40; ++i) {
        const NodeId src = static_cast<NodeId>(rng.below(20));
        NodeId dst = static_cast<NodeId>(rng.below(20));
        if (dst == src) dst = (dst + 1) % 20;
        scripts[src].push_back(CallRequest{static_cast<Tick>(1 + rng.below(600)), dst, 1,
                                           static_cast<Tick>(150 + rng.below(300))});
    }

    node::Cluster cluster(g, paris::make_call_agents(g, 2, scripts));
    cluster.start_all(0);
    // An incident at t=400: one link dies (calls riding it drop).
    cluster.simulator().at(400, [&cluster] {
        cluster.network().fail_link(3);
        std::cout << "[t=400] link 3 failed — calls riding it will disconnect\n";
    });
    cluster.run();

    unsigned carried = 0, rejected = 0, failed = 0, still_up = 0;
    for (NodeId u = 0; u < g.node_count(); ++u) {
        const auto& a = cluster.protocol_as<paris::CallAgentProtocol>(u);
        carried += a.calls_released();
        rejected += a.calls_rejected();
        failed += a.calls_failed();
        still_up += a.calls_active();
    }
    util::Table day({"offered", "completed", "rejected_admission", "dropped_by_failure",
                     "still_active"});
    day.add(40u, carried, rejected, failed, still_up);
    day.print(std::cout, "end-of-day statistics");

    std::cout << "\ncall setup economics on this fabric (the Section 2 copy trick):\n";
    util::Table cmp({"path_hops", "copy_setup_ticks", "hop_by_hop_ticks"});
    for (NodeId n : {4u, 16u, 64u}) {
        auto run_mode = [n](bool copy) {
            const graph::Graph path = graph::make_path(n);
            std::map<NodeId, std::vector<CallRequest>> s{{0, {CallRequest{1, n - 1, 1, -1}}}};
            node::Cluster c(path, paris::make_call_agents(path, 4, s, copy));
            c.start_all(0);
            c.run();
            return c.simulator().now();
        };
        cmp.add(n - 1, run_mode(true), run_mode(false));
    }
    cmp.print(std::cout, "one call across k switches");
    std::cout << "\nWith selective copy every on-path NCU hears the setup at once;\n"
                 "without it the request crawls one software hop at a time.\n";
    return 0;
}
