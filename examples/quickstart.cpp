// Quickstart: the fastnet API in ~100 lines.
//
// Builds a small network, shows the hardware model (ANR source routing
// with selective copy), runs the paper's branching-paths broadcast and
// a leader election, and prints the cost reports in the paper's
// measures (system calls / time units).
//
//   $ ./quickstart
#include <iostream>

#include "fastnet.hpp"

using namespace fastnet;

namespace {

/// A payload type: anything immutable deriving from hw::TypedPayload<T>
/// (which gives payload_as<T> an O(1) type test).
struct Hello final : hw::TypedPayload<Hello> {
    explicit Hello(std::string m) : message(std::move(m)) {}
    std::string message;
};

/// A protocol: NCU software reacting to starts / messages / timers.
class GreeterProtocol final : public node::Protocol {
public:
    void on_start(node::Context& ctx) override {
        // Send a greeting two hops down the line: self -> n1 -> n2.
        // The route is a list of outgoing link ids; links() is the local
        // topology every NCU knows a priori.
        if (ctx.links().empty()) return;
        const auto& first = ctx.links()[0];
        std::cout << "[t=" << ctx.now() << "] node " << ctx.self()
                  << " starts; sending a greeting via port " << first.port << "\n";
        // On the path 0-1-2-3, node 1's port 2 is its second incident
        // link, i.e. the one toward node 2.
        hw::AnrHeader route{hw::AnrLabel::normal(first.port), hw::AnrLabel::normal(2),
                            hw::AnrLabel::normal(hw::kNcuPort)};
        ctx.send(std::move(route), std::make_shared<Hello>("hello from the edge"));
    }
    void on_message(node::Context& ctx, const hw::Delivery& d) override {
        if (const auto* hello = hw::payload_as<Hello>(d)) {
            std::cout << "[t=" << ctx.now() << "] node " << ctx.self() << " received \""
                      << hello->message << "\" after " << d.hops
                      << " hardware hops (one system call here)\n";
            // Replying needs no routing tables: the delivery carries a
            // reverse route (Section 2's receiver-reply capability).
            // Only greetings are acknowledged (acks are not).
            if (hello->message != "ack") ctx.reply(d, std::make_shared<Hello>("ack"));
        }
    }
};

}  // namespace

int main() {
    std::cout << "== 1. The node model: SS + NCU, ANR routing =============\n";
    // A 4-node path; model of Sections 3-4: hop delay C=0, NCU delay P=1.
    {
        node::Cluster cluster(graph::make_path(4),
                              [](NodeId) { return std::make_unique<GreeterProtocol>(); });
        cluster.start(0, 0);
        cluster.run();
        std::cout << "total system calls: "
                  << cluster.metrics().total_message_system_calls()
                  << ", hardware hops: " << cluster.metrics().net().hops << "\n";
    }

    std::cout << "\n== 2. Branching-paths broadcast (Section 3) =============\n";
    {
        Rng rng(1);
        const graph::Graph g = graph::make_random_connected(64, 1, 10, rng);
        const auto out =
            topo::run_broadcast(g, topo::BroadcastScheme::kBranchingPaths, 0);
        std::cout << "covered " << g.node_count() << " nodes with "
                  << out.cost.system_calls << " system calls in " << out.time_units
                  << " time units (Theorem 2 bound: " << 1 + floor_log2(g.node_count())
                  << ")\n";
        const auto flood = topo::run_broadcast(g, topo::BroadcastScheme::kFlooding, 0);
        std::cout << "ARPANET flooding needed " << flood.cost.system_calls
                  << " system calls (m = " << g.edge_count() << ")\n";
    }

    std::cout << "\n== 3. Leader election (Section 4) =======================\n";
    {
        Rng rng(2);
        const graph::Graph g = graph::make_random_connected(100, 1, 25, rng);
        const auto out = elect::run_election(g);
        std::cout << "leader: node " << out.leader << "; election used "
                  << out.election_messages << " direct messages (Theorem 5 bound: "
                  << 6 * g.node_count() << ")\n";
    }

    std::cout << "\n== 4. Globally sensitive functions (Section 5) ==========\n";
    {
        const Tick C = 1, P = 1;
        const auto r = gsf::build_optimal_tree(100, C, P);
        const auto out = gsf::run_tree_gather(r.tree, {C, P, 0});
        std::cout << "optimal gather of 100 inputs at C=1,P=1: predicted "
                  << r.predicted_time << " ticks, simulated " << out.completion
                  << " ticks, result " << (out.correct ? "correct" : "WRONG") << "\n";
        std::cout << "a star would take "
                  << gsf::predicted_completion(gsf::make_star_tree(100), C, P)
                  << " ticks on the same complete graph\n";
    }
    return 0;
}
