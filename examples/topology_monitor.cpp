// topology_monitor — operating the Section 3 topology maintenance
// protocol on a live network with failures.
//
// Scenario: a 30-node ISP-ish backbone runs periodic branching-paths
// topology broadcasts. A cascade of link failures hits mid-run (one of
// them partitions the network), then a repair crew restores a link.
// The example prints a timeline of what each event does to global
// knowledge, and closes with the per-round cost accounting that makes
// the paper's case against flooding.
//
//   $ ./topology_monitor
#include <iostream>

#include "fastnet.hpp"

using namespace fastnet;

namespace {

void report(node::Cluster& cluster, Tick at, const char* what) {
    std::size_t converged = 0;
    for (NodeId u = 0; u < cluster.node_count(); ++u) {
        const auto& p = cluster.protocol_as<topo::TopologyMaintenance>(u);
        if (topo::view_converged(p, cluster.network(), u)) ++converged;
    }
    std::cout << "[t=" << at << "] " << what << ": " << converged << "/"
              << cluster.node_count() << " nodes hold an exact view of their component\n";
}

}  // namespace

int main() {
    Rng rng(2024);
    const graph::Graph g = graph::make_random_connected(30, 1, 10, rng);
    std::cout << "backbone: n=" << g.node_count() << " links=" << g.edge_count()
              << " diameter=" << graph::diameter(g) << "\n\n";

    topo::TopologyOptions opt;
    opt.scheme = topo::BroadcastScheme::kBranchingPaths;
    opt.period = 100;
    opt.rounds = 30;
    node::Cluster cluster(g, topo::make_topology_maintenance(g.node_count(), opt));
    cluster.start_all(0);

    // Scripted incidents: three failures, then one repair.
    Rng chaos(7);
    std::vector<EdgeId> victims;
    for (int i = 0; i < 3; ++i)
        victims.push_back(static_cast<EdgeId>(chaos.below(g.edge_count())));
    cluster.simulator().at(550, [&] {
        for (EdgeId e : victims) cluster.network().fail_link(e);
        std::cout << "[t=550] INCIDENT: " << victims.size() << " links failed\n";
    });
    cluster.simulator().at(1450, [&] {
        cluster.network().restore_link(victims[0]);
        std::cout << "[t=1450] REPAIR: link " << victims[0] << " restored\n";
    });

    // Observation points between rounds.
    for (Tick at : {400, 700, 1000, 1300, 1700, 2400}) {
        cluster.simulator().at(at, [&cluster, at] { report(cluster, at, "checkpoint"); });
    }
    cluster.run();
    report(cluster, cluster.simulator().now(), "final");

    // Cost epilogue.
    const auto n = static_cast<std::uint64_t>(g.node_count());
    const auto m = static_cast<std::uint64_t>(g.edge_count());
    const std::uint64_t calls = cluster.metrics().total_message_system_calls();
    const std::uint64_t rounds_total = 30 * n;
    std::cout << "\ncost: " << calls << " message system calls over ~" << rounds_total
              << " broadcasts => " << (calls / rounds_total)
              << " calls per broadcast on average (paper: <= n-1 = " << n - 1
              << "; flooding would pay ~2m = " << 2 * m << " per broadcast)\n";
    return 0;
}
