// election_campaign — watching the Section 4 election at work.
//
// Runs the domains/tours election on a 16x16 grid (a plausible switch
// fabric), prints the capture histogram per phase (Lemma 6), the
// Theorem 5 budget, and then re-runs the same problem with the two
// traditional ring algorithms on a 256-ring for the headline
// system-call comparison.
//
//   $ ./election_campaign
#include <cmath>
#include <iostream>

#include "fastnet.hpp"

using namespace fastnet;

int main() {
    const graph::Graph grid = graph::make_grid(16, 16);
    const NodeId n = grid.node_count();
    std::cout << "fabric: 16x16 grid, n=" << n << ", m=" << grid.edge_count() << "\n\n";

    const auto out = elect::run_election(grid);
    if (!out.unique_leader || !out.all_decided) {
        std::cout << "election failed!\n";
        return 1;
    }
    std::cout << "leader elected: node " << out.leader << "\n";
    std::cout << "direct messages (system calls): " << out.election_messages
              << "   Theorem 5 budget 6n = " << 6 * n << "\n";
    std::cout << "completion: " << out.cost.completion_time << " ticks (O(n) time)\n";
    std::cout << "longest ANR header used: " << out.cost.max_header_len
              << " labels (linear in n = " << n << ")\n\n";

    util::Table phases({"victim_phase", "domains_captured", "lemma6_bound"});
    for (std::size_t p = 0; p < out.captures_by_phase.size(); ++p)
        phases.add(p, out.captures_by_phase[p], n >> p);
    phases.print(std::cout, "capture histogram (Lemma 6: at most n/2^p per phase)");

    std::cout << "\n-- the same job with traditional algorithms (256-ring) --\n";
    elect::ElectionOptions bare;
    bare.announce = false;
    const auto ours_ring = elect::run_election(graph::make_cycle(256), bare);
    const auto cr = elect::run_chang_roberts(256, {}, /*priority_seed=*/3);
    const auto hs = elect::run_hirschberg_sinclair(256, {}, /*priority_seed=*/3);
    util::Table cmp({"algorithm", "system_calls", "vs_ours"});
    const double base = static_cast<double>(ours_ring.election_messages);
    cmp.add("new (Section 4)", ours_ring.election_messages, 1.0);
    cmp.add("Chang-Roberts (avg)", cr.election_messages,
            static_cast<double>(cr.election_messages) / base);
    cmp.add("Hirschberg-Sinclair", hs.election_messages,
            static_cast<double>(hs.election_messages) / base);
    cmp.print(std::cout, "system-call comparison on a 256-node ring");
    std::cout << "\nTraditional algorithms relay hop by hop, so every hop is a\n"
                 "system call; the new algorithm rides the switching hardware\n"
                 "and pays only at tour endpoints — O(n) vs Omega(n log n).\n";
    return 0;
}
