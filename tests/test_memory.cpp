// Memory as a metered resource: Cluster::sample_memory feeding the
// cost::Metrics ledger (MemoryBreakdown, peak bytes/node, the sampled
// bytes_per_node series), the kMemory monitor events, and the
// MemoryBudgetMonitor's fire/clear semantics — including across
// crash/restart epochs, where a node's protocol bytes drop to zero and
// climb back. Companion doc: docs/PERF.md "Memory at scale".

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "node/cluster.hpp"
#include "obs/json.hpp"
#include "obs/metrics_export.hpp"
#include "obs/monitor.hpp"

namespace fastnet {
namespace {

struct Ping final : hw::TypedPayload<Ping> {};

/// Forwards one ping up the node-id order — a minimal workload that
/// exercises queues and links without protocol state.
struct Relay final : node::Protocol {
    void on_start(node::Context& ctx) override { forward(ctx); }
    void on_message(node::Context& ctx, const hw::Delivery&) override { forward(ctx); }
    std::size_t memory_bytes() const override { return sizeof(*this); }

    static void forward(node::Context& ctx) {
        for (const node::LocalLink& l : ctx.links()) {
            if (l.neighbor > ctx.self()) {
                hw::AnrHeader h{hw::AnrLabel::normal(l.port),
                                hw::AnrLabel::normal(hw::kNcuPort)};
                ctx.send(std::move(h), std::make_shared<Ping>());
                return;
            }
        }
    }
};

/// Inflates its reported footprint once started — what a protocol whose
/// tables grow with traffic looks like to the memory ledger.
struct Bloat final : node::Protocol {
    void on_start(node::Context&) override { bytes_.resize(10000); }
    std::size_t memory_bytes() const override {
        return sizeof(*this) + bytes_.capacity();
    }
    std::vector<std::byte> bytes_;
};

// ---- MemoryBudgetMonitor unit behaviour ----------------------------------

obs::MonitorEvent mem_event(Tick at, NodeId node, std::uint64_t bytes) {
    obs::MonitorEvent ev;
    ev.kind = obs::MonitorEvent::Kind::kMemory;
    ev.at = at;
    ev.node = node;
    ev.a = bytes;
    return ev;
}

TEST(MemoryBudgetMonitor, FiresOnUpwardCrossingOnly) {
    obs::MonitorHub hub;
    hub.add(std::make_unique<obs::MemoryBudgetMonitor>(1000));
    hub.dispatch(mem_event(1, 0, 900));   // under: quiet
    EXPECT_EQ(hub.violation_count(), 0u);
    hub.dispatch(mem_event(2, 0, 1001));  // crossing: fires
    EXPECT_EQ(hub.violation_count(), 1u);
    hub.dispatch(mem_event(3, 0, 5000));  // still over: no re-fire
    EXPECT_EQ(hub.violation_count(), 1u);
    hub.dispatch(mem_event(4, 0, 800));   // back under: re-arms, quiet
    EXPECT_EQ(hub.violation_count(), 1u);
    hub.dispatch(mem_event(5, 0, 1200));  // second excursion: fires again
    EXPECT_EQ(hub.violation_count(), 2u);
    EXPECT_EQ(hub.violations()[0].monitor, "memory_budget");
    EXPECT_EQ(hub.violations()[0].node, 0u);
}

TEST(MemoryBudgetMonitor, TracksNodesIndependently) {
    obs::MonitorHub hub;
    hub.add(std::make_unique<obs::MemoryBudgetMonitor>(100));
    hub.dispatch(mem_event(1, 3, 200));
    hub.dispatch(mem_event(1, 7, 50));
    hub.dispatch(mem_event(2, 3, 200));  // 3 still over: quiet
    hub.dispatch(mem_event(2, 7, 200));  // 7 crosses now
    EXPECT_EQ(hub.violation_count(), 2u);
}

// ---- Cluster sampling -----------------------------------------------------

TEST(MemorySampling, LedgerPopulatedAndInternallyConsistent) {
    node::ClusterConfig cfg;
    cfg.sample_window = 4;
    cfg.memory_sample_every = 4;
    node::Cluster cluster(
        graph::make_path(6), [](NodeId) { return std::make_unique<Relay>(); }, cfg);
    cluster.start(0, 0);
    cluster.run();

    const cost::MemorySample* mem = cluster.metrics().memory();
    ASSERT_NE(mem, nullptr);
    EXPECT_GE(cluster.metrics().memory_samples(), 1u);
    EXPECT_GT(mem->breakdown.graph, 0u);
    EXPECT_GT(mem->breakdown.network, 0u);
    EXPECT_GT(mem->breakdown.runtimes, 0u);
    EXPECT_GT(mem->breakdown.protocols, 0u);
    EXPECT_EQ(mem->breakdown.total(), mem->breakdown.graph + mem->breakdown.network +
                                          mem->breakdown.runtimes + mem->breakdown.protocols);
    // The runtime array and link tables live in the cluster's arena.
    EXPECT_GT(mem->breakdown.arena_used, 0u);
    EXPECT_GE(mem->breakdown.arena_reserved, mem->breakdown.arena_used);
    EXPECT_EQ(mem->breakdown.arena_used, cluster.arena().bytes_used());
    ASSERT_NE(mem->max_node, kNoNode);
    EXPECT_LE(mem->max_node_bytes, mem->breakdown.runtimes + mem->breakdown.protocols);
    EXPECT_GE(cluster.metrics().peak_node_bytes(), mem->max_node_bytes);

    // The windowed series saw the same samples.
    const cost::Sampling* s = cluster.metrics().sampling();
    ASSERT_NE(s, nullptr);
    std::uint64_t count = 0;
    for (const auto& w : s->bytes_per_node().windows()) count += w.count;
    EXPECT_EQ(count + s->bytes_per_node().overflow(), cluster.metrics().memory_samples());
}

TEST(MemorySampling, OffByDefaultAndJsonSaysNull) {
    node::Cluster cluster(
        graph::make_path(3), [](NodeId) { return std::make_unique<Relay>(); });
    cluster.start(0, 0);
    cluster.run();
    EXPECT_EQ(cluster.metrics().memory(), nullptr);

    obs::JsonValue doc;
    std::string err;
    ASSERT_TRUE(obs::json_parse(obs::metrics_json(cluster.metrics(), "m"), doc, &err))
        << err;
    const obs::JsonValue* mem = doc.find("memory");
    ASSERT_NE(mem, nullptr);
    EXPECT_EQ(mem->type, obs::JsonValue::Type::kNull);
}

TEST(MemorySampling, JsonMemorySectionCarriesTheBreakdown) {
    node::ClusterConfig cfg;
    cfg.memory_sample_every = 8;
    node::Cluster cluster(
        graph::make_cycle(5), [](NodeId) { return std::make_unique<Relay>(); }, cfg);
    cluster.start(0, 0);
    cluster.run();

    obs::JsonValue doc;
    std::string err;
    ASSERT_TRUE(obs::json_parse(obs::metrics_json(cluster.metrics(), "m"), doc, &err))
        << err;
    const obs::JsonValue* mem = doc.find("memory");
    ASSERT_NE(mem, nullptr);
    ASSERT_TRUE(mem->is_object());
    const cost::MemorySample* latest = cluster.metrics().memory();
    ASSERT_NE(latest, nullptr);
    EXPECT_EQ(mem->find("total")->uint_value, latest->breakdown.total());
    EXPECT_EQ(mem->find("graph")->uint_value, latest->breakdown.graph);
    EXPECT_EQ(mem->find("network")->uint_value, latest->breakdown.network);
    EXPECT_EQ(mem->find("runtimes")->uint_value, latest->breakdown.runtimes);
    EXPECT_EQ(mem->find("protocols")->uint_value, latest->breakdown.protocols);
    EXPECT_EQ(mem->find("arena_used")->uint_value, latest->breakdown.arena_used);
    EXPECT_EQ(mem->find("samples")->uint_value, cluster.metrics().memory_samples());
    EXPECT_EQ(mem->find("peak_node_bytes")->uint_value,
              cluster.metrics().peak_node_bytes());
    EXPECT_NE(mem->find("max_node"), nullptr);
}

TEST(MemorySampling, MeteringDoesNotPerturbTheSimulation) {
    // Sampling reads state between event batches and schedules nothing:
    // every cost the paper counts must be identical with metering on.
    auto run = [](Tick every) {
        node::ClusterConfig cfg;
        cfg.memory_sample_every = every;
        node::Cluster cluster(
            graph::make_grid(4, 5), [](NodeId) { return std::make_unique<Relay>(); }, cfg);
        cluster.start(0, 0);
        const Tick done = cluster.run();
        const auto& m = cluster.metrics();
        return std::tuple{done, m.net().hops, m.total_message_system_calls(),
                          m.total_invocations()};
    };
    EXPECT_EQ(run(0), run(3));
    EXPECT_EQ(run(0), run(64));
}

TEST(MemorySampling, BudgetMonitorSeesCrashRestartEpochs) {
    node::ClusterConfig cfg;
    cfg.monitors = std::make_shared<obs::MonitorHub>();
    // Bloat reports ~10 KB once started; runtimes alone stay far under.
    cfg.monitors->add(std::make_unique<obs::MemoryBudgetMonitor>(5000));
    node::Cluster cluster(
        graph::make_cycle(4), [](NodeId) { return std::make_unique<Bloat>(); }, cfg);
    cluster.start_all(0);
    cluster.run();

    cluster.sample_memory();  // every node over budget -> 4 firings
    EXPECT_EQ(cfg.monitors->violation_count(), 4u);
    cluster.sample_memory();  // still over: no re-fire
    EXPECT_EQ(cfg.monitors->violation_count(), 4u);

    // A crash wipes the protocol: node 0 drops under the ceiling...
    cluster.crash_node(0);
    cluster.sample_memory();
    EXPECT_EQ(cfg.monitors->violation_count(), 4u);

    // ...and the restarted incarnation bloats again: one new excursion.
    cluster.restart_node(0);
    cluster.run();
    cluster.sample_memory();
    EXPECT_EQ(cfg.monitors->violation_count(), 5u);
}

TEST(MemoryLedger, RecordTracksPeakAndResetClears) {
    cost::Metrics m(4);
    cost::MemorySample s;
    s.at = 10;
    s.breakdown.runtimes = 400;
    s.max_node_bytes = 120;
    s.max_node = 2;
    m.record_memory(s);
    s.at = 20;
    s.max_node_bytes = 80;
    m.record_memory(s);
    ASSERT_NE(m.memory(), nullptr);
    EXPECT_EQ(m.memory()->at, 20);        // latest wins...
    EXPECT_EQ(m.peak_node_bytes(), 120u);  // ...peak remembers
    EXPECT_EQ(m.memory_samples(), 2u);
    m.reset();
    EXPECT_EQ(m.memory(), nullptr);
    EXPECT_EQ(m.memory_samples(), 0u);
    EXPECT_EQ(m.peak_node_bytes(), 0u);
}

}  // namespace
}  // namespace fastnet
