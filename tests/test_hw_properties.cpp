// Randomized property sweeps over the hardware fabric: arbitrary routes
// on arbitrary graphs deliver to exactly the intended NCUs, reverse
// routes always work, determinism holds.
#include <gtest/gtest.h>

#include <set>

#include "cost/metrics.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "hw/network.hpp"
#include "sim/simulator.hpp"

namespace fastnet::hw {
namespace {

struct Mark final : TypedPayload<Mark> {
    explicit Mark(int v) : value(v) {}
    int value;
};

struct Fixture {
    explicit Fixture(graph::Graph graph)
        : g(std::move(graph)), metrics(g.node_count()),
          net(sim, g, ModelParams::fast_network(), metrics) {
        inbox.resize(g.node_count());
        for (NodeId u = 0; u < g.node_count(); ++u)
            net.set_ncu_sink(u, [this, u](const Delivery& d) { inbox[u].push_back(d); });
    }
    sim::Simulator sim;
    graph::Graph g;
    cost::Metrics metrics;
    Network net;
    std::vector<std::vector<Delivery>> inbox;
};

/// A random simple path in g starting at `from` with <= max_len hops.
std::vector<NodeId> random_simple_path(const graph::Graph& g, NodeId from,
                                       std::size_t max_len, Rng& rng) {
    std::vector<NodeId> path{from};
    std::set<NodeId> used{from};
    NodeId cur = from;
    while (path.size() <= max_len) {
        std::vector<NodeId> candidates;
        for (const graph::IncidentEdge& ie : g.incident(cur))
            if (!used.count(ie.neighbor)) candidates.push_back(ie.neighbor);
        if (candidates.empty()) break;
        cur = candidates[rng.below(candidates.size())];
        used.insert(cur);
        path.push_back(cur);
    }
    return path;
}

class HwRouteProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HwRouteProperty, RelayRouteDeliversOnlyAtDestination) {
    Rng rng(GetParam());
    Fixture f(graph::make_random_connected(24, 2, 10, rng));
    for (int trial = 0; trial < 20; ++trial) {
        const NodeId from = static_cast<NodeId>(rng.below(24));
        const auto path = random_simple_path(f.g, from, 8, rng);
        if (path.size() < 2) continue;
        for (auto& box : f.inbox) box.clear();
        f.net.send(from, f.net.route(path), std::make_shared<Mark>(trial));
        f.sim.run();
        for (NodeId u = 0; u < 24; ++u) {
            const std::size_t want = (u == path.back()) ? 1 : 0;
            ASSERT_EQ(f.inbox[u].size(), want) << "trial " << trial << " node " << u;
        }
        EXPECT_EQ(f.inbox[path.back()][0].hops, path.size() - 1);
    }
}

TEST_P(HwRouteProperty, CopyRouteDeliversAtEveryPathNodeOnce) {
    Rng rng(GetParam() ^ 0xabcd);
    Fixture f(graph::make_random_connected(24, 2, 10, rng));
    for (int trial = 0; trial < 20; ++trial) {
        const NodeId from = static_cast<NodeId>(rng.below(24));
        const auto path = random_simple_path(f.g, from, 8, rng);
        if (path.size() < 2) continue;
        for (auto& box : f.inbox) box.clear();
        f.net.send(from, f.net.route(path, CopyMode::kIntermediates),
                   std::make_shared<Mark>(trial));
        f.sim.run();
        const std::set<NodeId> on_path(path.begin() + 1, path.end());
        for (NodeId u = 0; u < 24; ++u) {
            const std::size_t want = on_path.count(u) ? 1 : 0;
            ASSERT_EQ(f.inbox[u].size(), want) << "trial " << trial << " node " << u;
        }
    }
}

TEST_P(HwRouteProperty, ReverseRouteAlwaysReturnsToSender) {
    Rng rng(GetParam() ^ 0x1234);
    Fixture f(graph::make_random_connected(20, 2, 10, rng));
    for (int trial = 0; trial < 15; ++trial) {
        const NodeId from = static_cast<NodeId>(rng.below(20));
        const auto path = random_simple_path(f.g, from, 7, rng);
        if (path.size() < 2) continue;
        for (auto& box : f.inbox) box.clear();
        f.net.send(from, f.net.route(path), std::make_shared<Mark>(1));
        f.sim.run();
        ASSERT_EQ(f.inbox[path.back()].size(), 1u);
        const Delivery d = f.inbox[path.back()][0];
        for (auto& box : f.inbox) box.clear();
        f.net.send(path.back(), d.reverse, std::make_shared<Mark>(2));
        f.sim.run();
        ASSERT_EQ(f.inbox[from].size(), 1u) << "trial " << trial;
        EXPECT_EQ(payload_as<Mark>(f.inbox[from][0])->value, 2);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HwRouteProperty,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5));

TEST(HwDeterminism, IdenticalRunsProduceIdenticalMetrics) {
    auto run_once = [] {
        Rng rng(9);
        Fixture f(graph::make_random_connected(16, 3, 10, rng));
        for (int i = 0; i < 10; ++i) {
            const NodeId from = static_cast<NodeId>(rng.below(16));
            const auto path = random_simple_path(f.g, from, 6, rng);
            if (path.size() < 2) continue;
            f.net.send(from, f.net.route(path, CopyMode::kIntermediates),
                       std::make_shared<Mark>(i));
        }
        f.sim.run();
        return std::tuple{f.metrics.net().hops, f.metrics.net().ncu_deliveries,
                          f.metrics.net().header_bits};
    };
    EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace fastnet::hw
