// Randomized property sweeps over the hardware fabric: arbitrary routes
// on arbitrary graphs deliver to exactly the intended NCUs, reverse
// routes always work, determinism holds.
#include <gtest/gtest.h>

#include <set>

#include "cost/metrics.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "hw/network.hpp"
#include "sim/simulator.hpp"

namespace fastnet::hw {
namespace {

struct Mark final : TypedPayload<Mark> {
    explicit Mark(int v) : value(v) {}
    int value;
};

struct Fixture {
    explicit Fixture(graph::Graph graph, NetworkConfig cfg = {})
        : g(std::move(graph)), metrics(g.node_count()),
          net(sim, g, ModelParams::fast_network(), metrics, cfg) {
        inbox.resize(g.node_count());
        for (NodeId u = 0; u < g.node_count(); ++u)
            net.set_ncu_sink(u, [this, u](const Delivery& d) { inbox[u].push_back(d); });
    }
    sim::Simulator sim;
    graph::Graph g;
    cost::Metrics metrics;
    Network net;
    std::vector<std::vector<Delivery>> inbox;
};

/// A random simple path in g starting at `from` with <= max_len hops.
std::vector<NodeId> random_simple_path(const graph::Graph& g, NodeId from,
                                       std::size_t max_len, Rng& rng) {
    std::vector<NodeId> path{from};
    std::set<NodeId> used{from};
    NodeId cur = from;
    while (path.size() <= max_len) {
        std::vector<NodeId> candidates;
        for (const graph::IncidentEdge& ie : g.incident(cur))
            if (!used.count(ie.neighbor)) candidates.push_back(ie.neighbor);
        if (candidates.empty()) break;
        cur = candidates[rng.below(candidates.size())];
        used.insert(cur);
        path.push_back(cur);
    }
    return path;
}

class HwRouteProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HwRouteProperty, RelayRouteDeliversOnlyAtDestination) {
    Rng rng(GetParam());
    Fixture f(graph::make_random_connected(24, 2, 10, rng));
    for (int trial = 0; trial < 20; ++trial) {
        const NodeId from = static_cast<NodeId>(rng.below(24));
        const auto path = random_simple_path(f.g, from, 8, rng);
        if (path.size() < 2) continue;
        for (auto& box : f.inbox) box.clear();
        f.net.send(from, f.net.route(path), std::make_shared<Mark>(trial));
        f.sim.run();
        for (NodeId u = 0; u < 24; ++u) {
            const std::size_t want = (u == path.back()) ? 1 : 0;
            ASSERT_EQ(f.inbox[u].size(), want) << "trial " << trial << " node " << u;
        }
        EXPECT_EQ(f.inbox[path.back()][0].hops, path.size() - 1);
    }
}

TEST_P(HwRouteProperty, CopyRouteDeliversAtEveryPathNodeOnce) {
    Rng rng(GetParam() ^ 0xabcd);
    Fixture f(graph::make_random_connected(24, 2, 10, rng));
    for (int trial = 0; trial < 20; ++trial) {
        const NodeId from = static_cast<NodeId>(rng.below(24));
        const auto path = random_simple_path(f.g, from, 8, rng);
        if (path.size() < 2) continue;
        for (auto& box : f.inbox) box.clear();
        f.net.send(from, f.net.route(path, CopyMode::kIntermediates),
                   std::make_shared<Mark>(trial));
        f.sim.run();
        const std::set<NodeId> on_path(path.begin() + 1, path.end());
        for (NodeId u = 0; u < 24; ++u) {
            const std::size_t want = on_path.count(u) ? 1 : 0;
            ASSERT_EQ(f.inbox[u].size(), want) << "trial " << trial << " node " << u;
        }
    }
}

TEST_P(HwRouteProperty, ReverseRouteAlwaysReturnsToSender) {
    Rng rng(GetParam() ^ 0x1234);
    Fixture f(graph::make_random_connected(20, 2, 10, rng));
    for (int trial = 0; trial < 15; ++trial) {
        const NodeId from = static_cast<NodeId>(rng.below(20));
        const auto path = random_simple_path(f.g, from, 7, rng);
        if (path.size() < 2) continue;
        for (auto& box : f.inbox) box.clear();
        f.net.send(from, f.net.route(path), std::make_shared<Mark>(1));
        f.sim.run();
        ASSERT_EQ(f.inbox[path.back()].size(), 1u);
        const Delivery d = f.inbox[path.back()][0];
        for (auto& box : f.inbox) box.clear();
        f.net.send(path.back(), d.reverse, std::make_shared<Mark>(2));
        f.sim.run();
        ASSERT_EQ(f.inbox[from].size(), 1u) << "trial " << trial;
        EXPECT_EQ(payload_as<Mark>(f.inbox[from][0])->value, 2);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HwRouteProperty,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5));

// ---- epoch-drop and fault-injection properties ------------------------

class HwFaultProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HwFaultProperty, PacketsConservedUnderChurnLossAndDuplication) {
    // Conservation under arbitrary faults: every injected cursor (and
    // every injected duplicate) terminates in exactly one of delivery or
    // a counted drop, and the pool drains — no packet survives a link
    // epoch bump, none leaks.
    Rng rng(GetParam() ^ 0xfau);
    NetworkConfig cfg;
    cfg.seed = GetParam();
    cfg.hop_delay_min = 0;  // jittered hops: packets linger mid-flight
    if (GetParam() % 2 == 1) cfg.loss_ppm = 50'000;
    if (GetParam() % 3 == 0) cfg.dup_ppm = 50'000;
    Fixture f(graph::make_random_connected(16, 2, 10, rng), cfg);
    for (int i = 0; i < 40; ++i) {
        const NodeId from = static_cast<NodeId>(rng.below(16));
        const auto path = random_simple_path(f.g, from, 6, rng);
        if (path.size() < 2) continue;
        const Tick at = static_cast<Tick>(rng.below(150));
        f.sim.at(at, [&f, from, r = f.net.route(path), i] {
            f.net.send(from, r, std::make_shared<Mark>(i));
        });
    }
    for (int i = 0; i < 30; ++i) {
        const EdgeId e = static_cast<EdgeId>(rng.below(f.g.edge_count()));
        const Tick at = static_cast<Tick>(rng.below(200));
        const bool down = rng.chance(1, 2);
        f.sim.at(at, [&f, e, down] { f.net.set_link_active(e, !down); });
    }
    f.sim.run();
    const auto& n = f.metrics.net();
    EXPECT_EQ(f.net.packets_in_flight(), 0u) << "a dropped packet leaked its cursor";
    EXPECT_EQ(n.injections + n.dup_copies,
              n.ncu_deliveries + n.drops_inactive_link + n.drops_no_match +
                  n.drops_empty_header + n.drops_injected);
}

TEST_P(HwFaultProperty, FlapDropsThePacketInFlightOnTheFlappedLink) {
    // A packet mid-flight on a link that fails — or fails and is restored
    // before the nominal arrival — never arrives, for any hop position.
    Rng rng(GetParam() ^ 0x5eedu);
    const graph::Graph g = graph::make_path(6);
    ModelParams p = ModelParams::fast_network();
    p.hop_delay = 4;
    for (int trial = 0; trial < 10; ++trial) {
        sim::Simulator sim;
        cost::Metrics m(6);
        Network net(sim, g, p, m);
        std::vector<Delivery> inbox;
        for (NodeId u = 0; u < 6; ++u)
            net.set_ncu_sink(u, [&inbox](const Delivery& d) { inbox.push_back(d); });
        const std::size_t hop = rng.below(5);  // kill the packet on this hop
        const EdgeId e = g.find_edge(static_cast<NodeId>(hop), static_cast<NodeId>(hop + 1));
        const bool restore = rng.chance(1, 2);
        net.send(0, net.route(std::vector<NodeId>{0, 1, 2, 3, 4, 5}),
                 std::make_shared<Mark>(trial));
        // The packet occupies link `hop` during [4*hop, 4*hop + 4).
        sim.at(static_cast<Tick>(4 * hop + 1), [&net, e] { net.fail_link(e); });
        if (restore)
            sim.at(static_cast<Tick>(4 * hop + 2), [&net, e] { net.restore_link(e); });
        sim.run();
        EXPECT_TRUE(inbox.empty()) << "trial " << trial << " hop " << hop
                                   << (restore ? " (fail+restore)" : " (fail)");
        EXPECT_EQ(m.net().drops_inactive_link, 1u);
        EXPECT_EQ(net.packets_in_flight(), 0u);
    }
}

TEST_P(HwFaultProperty, DetectionDelayReportsExactlyThePersistentStates) {
    // Random alternating flap schedules: an NCU hears about exactly the
    // states that persist for detection_delay — a flap-back within the
    // window suppresses the stale notification, and the last state is
    // always reported.
    Rng rng(GetParam() ^ 0xde7ecu);
    constexpr Tick kDetect = 16;
    for (int trial = 0; trial < 10; ++trial) {
        std::set<Tick> times;
        while (times.size() < 6) times.insert(static_cast<Tick>(rng.below(120)));
        const std::vector<Tick> ts(times.begin(), times.end());
        bool tied = false;  // a gap of exactly kDetect would race the queue
        for (std::size_t i = 0; i + 1 < ts.size(); ++i)
            tied |= ts[i + 1] - ts[i] == kDetect;
        if (tied) continue;

        NetworkConfig cfg;
        cfg.detection_delay = kDetect;
        sim::Simulator sim;
        cost::Metrics m(2);
        const graph::Graph g = graph::make_path(2);  // Network keeps a reference
        Network net(sim, g, ModelParams::fast_network(), m, cfg);
        std::vector<std::vector<bool>> heard(2);
        net.set_link_sink([&heard](NodeId u, EdgeId, bool up) { heard[u].push_back(up); });

        std::vector<bool> expected;
        for (std::size_t i = 0; i < ts.size(); ++i) {
            const bool up = i % 2 == 1;  // fail, restore, fail, ...
            sim.at(ts[i], [&net, up] { net.set_link_active(0, up); });
            if (i + 1 == ts.size() || ts[i + 1] - ts[i] > kDetect) expected.push_back(up);
        }
        sim.run();
        for (NodeId u = 0; u < 2; ++u)
            EXPECT_EQ(heard[u], expected) << "trial " << trial << " node " << u;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HwFaultProperty,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6));

TEST(HwDeterminism, IdenticalRunsProduceIdenticalMetrics) {
    auto run_once = [] {
        Rng rng(9);
        Fixture f(graph::make_random_connected(16, 3, 10, rng));
        for (int i = 0; i < 10; ++i) {
            const NodeId from = static_cast<NodeId>(rng.below(16));
            const auto path = random_simple_path(f.g, from, 6, rng);
            if (path.size() < 2) continue;
            f.net.send(from, f.net.route(path, CopyMode::kIntermediates),
                       std::make_shared<Mark>(i));
        }
        f.sim.run();
        return std::tuple{f.metrics.net().hops, f.metrics.net().ncu_deliveries,
                          f.metrics.net().header_bits};
    };
    EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace fastnet::hw
