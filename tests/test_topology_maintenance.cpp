// Theorem 1 (eventual consistency) and the Section 3 non-convergence
// example, exercised end-to-end through the maintenance protocol.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "topo/topology_maintenance.hpp"

namespace fastnet::topo {
namespace {

using graph::Graph;

node::Cluster make_cluster(const Graph& g, TopologyOptions opt,
                           node::ClusterConfig cfg = {}) {
    return node::Cluster(g, make_topology_maintenance(g.node_count(), opt), cfg);
}

TEST(TopologyMaintenance, StaticNetworkConvergesQuickly) {
    Rng rng(1);
    const Graph g = graph::make_random_connected(20, 2, 10, rng);
    TopologyOptions opt;
    opt.rounds = 6;  // O(d) rounds suffice; d is small here
    node::Cluster c = make_cluster(g, opt);
    c.start_all(0);
    c.run();
    EXPECT_TRUE(all_views_converged(c));
}

TEST(TopologyMaintenance, RingNeedsAboutDiameterRounds) {
    const Graph g = graph::make_cycle(16);  // diameter 8
    TopologyOptions opt;
    opt.rounds = 3;
    node::Cluster few = make_cluster(g, opt);
    few.start_all(0);
    few.run();
    EXPECT_FALSE(all_views_converged(few)) << "3 rounds cannot cover diameter 8";

    opt.rounds = 10;
    node::Cluster enough = make_cluster(g, opt);
    enough.start_all(0);
    enough.run();
    EXPECT_TRUE(all_views_converged(enough));
}

TEST(TopologyMaintenance, FullKnowledgeModeConvergesInLogRounds) {
    // The comment after Theorem 1: broadcasting everything known halves
    // the rounds to O(log d).
    const Graph g = graph::make_cycle(32);  // diameter 16
    TopologyOptions opt;
    opt.full_knowledge = true;
    opt.rounds = 6;  // ~ 1 + log2(16)
    node::Cluster c = make_cluster(g, opt);
    c.start_all(0);
    c.run();
    EXPECT_TRUE(all_views_converged(c));
}

TEST(TopologyMaintenance, LocalModeSlowerThanFullKnowledgeOnRing) {
    const Graph g = graph::make_cycle(32);
    TopologyOptions local;
    local.rounds = 6;
    node::Cluster c = make_cluster(g, local);
    c.start_all(0);
    c.run();
    EXPECT_FALSE(all_views_converged(c));
}

TEST(TopologyMaintenance, ConvergesAfterSingleFailure) {
    Rng rng(9);
    const Graph g = graph::make_random_connected(16, 3, 10, rng);
    TopologyOptions opt;
    opt.rounds = 12;
    opt.period = 64;
    node::Cluster c = make_cluster(g, opt);
    c.start_all(0);
    // Fail one non-cut edge mid-run.
    c.simulator().at(100, [&c] { c.network().fail_link(2); });
    c.run();
    EXPECT_TRUE(all_views_converged(c));
}

TEST(TopologyMaintenance, ConvergesPerComponentAfterPartition) {
    // Path 0-1-2-3: cutting (1,2) splits into {0,1} and {2,3}; each side
    // must converge on its own component.
    const Graph g = graph::make_path(4);
    TopologyOptions opt;
    opt.rounds = 10;
    opt.period = 32;
    node::Cluster c = make_cluster(g, opt);
    c.start_all(0);
    c.simulator().at(50, [&c, &g] { c.network().fail_link(g.find_edge(1, 2)); });
    c.run();
    EXPECT_TRUE(all_views_converged(c));
}

TEST(TopologyMaintenance, ConvergesUnderFailureBurstThenQuiesce) {
    Rng rng(31);
    const Graph g = graph::make_random_connected(18, 4, 10, rng);
    TopologyOptions opt;
    opt.rounds = 20;
    opt.period = 50;
    node::Cluster c = make_cluster(g, opt);
    c.start_all(0);
    // Random fail/restore burst during the first rounds; quiet afterwards.
    Rng chaos(99);
    for (int i = 0; i < 10; ++i) {
        const Tick at = 20 + static_cast<Tick>(chaos.below(200));
        const EdgeId e = static_cast<EdgeId>(chaos.below(g.edge_count()));
        const bool fail = chaos.chance(1, 2);
        c.simulator().at(at, [&c, e, fail] {
            if (fail)
                c.network().fail_link(e);
            else
                c.network().restore_link(e);
        });
    }
    c.run();
    EXPECT_TRUE(all_views_converged(c));
}

/// Builds the paper's Section 3 deadlock scenario: run the DFS-token (or
/// other) scheme on the healthy 6-node example until views converge,
/// then fail all three pendant edges at once and keep broadcasting.
std::unique_ptr<node::Cluster> run_podc_deadlock_scenario(TopologyOptions opt) {
    const Graph g = graph::make_podc_example();
    // Each triangle node's tour dives into the *next* triangle node's
    // (dead) pendant branch first — the paper's adversarial path choice.
    opt.dfs_preference = {{1}, {2}, {0}, {}, {}, {}};
    opt.period = 64;
    auto c = std::make_unique<node::Cluster>(
        g, make_topology_maintenance(g.node_count(), opt));
    c->start_all(0);
    // Rounds happen roughly every `period`; after four of them the
    // healthy network (diameter 3) has converged. Fail the pendants
    // between rounds.
    node::Cluster& cl = *c;
    cl.simulator().at(300, [&cl] {
        const Graph& cg = cl.graph();
        cl.network().fail_link(cg.find_edge(0, 3));
        cl.network().fail_link(cg.find_edge(1, 4));
        cl.network().fail_link(cg.find_edge(2, 5));
    });
    cl.run();
    return c;
}

TEST(TopologyMaintenance, PaperExampleDfsDeadlocksForever) {
    // With local-topology payloads and the adversarial tours, u only
    // ever hears w, v only hears u, w only hears v — the dead pendant
    // links are never learned. No convergence, ever (Section 3 example).
    TopologyOptions opt;
    opt.scheme = BroadcastScheme::kDfsToken;
    opt.rounds = 40;  // "forever" for test purposes
    auto c = run_podc_deadlock_scenario(opt);
    EXPECT_FALSE(all_views_converged(*c));
    // The deadlock is specific: node 0 never learns that (1,4) is down.
    const auto& p0 = c->protocol_as<TopologyMaintenance>(0);
    const auto view = p0.active_view();
    const bool thinks_14_alive =
        std::find(view.begin(), view.end(), std::make_pair(NodeId{1}, NodeId{4})) != view.end();
    EXPECT_TRUE(thinks_14_alive);
}

TEST(TopologyMaintenance, PaperExampleBranchingPathsConverges) {
    // Same failure pattern, same adversarial setting — the one-way
    // branching-paths broadcast converges (Theorem 1).
    TopologyOptions opt;
    opt.scheme = BroadcastScheme::kBranchingPaths;
    opt.rounds = 12;
    auto c = run_podc_deadlock_scenario(opt);
    EXPECT_TRUE(all_views_converged(*c));
}

TEST(TopologyMaintenance, PaperExampleFullKnowledgeRescuesDfs) {
    // Ablation: with full-knowledge payloads the relayed third-party
    // topologies break the deadlock cycle even under the DFS scheme.
    TopologyOptions opt;
    opt.scheme = BroadcastScheme::kDfsToken;
    opt.full_knowledge = true;
    opt.rounds = 40;
    auto c = run_podc_deadlock_scenario(opt);
    EXPECT_TRUE(all_views_converged(*c));
}

TEST(TopologyMaintenance, SystemCallsPerRoundAreLinear) {
    // On a diameter-2 graph: round 1 trees span only the (sole-known)
    // local stars, costing deg(i) receptions each, i.e. 2m in total;
    // from round 2 on every tree spans all n nodes and a full sweep
    // costs exactly n(n-1) — the paper's O(n) per broadcast, compared
    // with flooding's O(m).
    Rng rng(13);
    const Graph g = graph::make_random_connected(24, 5, 10, rng);  // dense
    ASSERT_EQ(graph::diameter(g), 2u);
    TopologyOptions opt;
    opt.rounds = 2;
    opt.period = 64;
    node::Cluster c = make_cluster(g, opt);
    c.start_all(0);
    c.run();
    const auto n = static_cast<std::uint64_t>(g.node_count());
    const auto m = static_cast<std::uint64_t>(g.edge_count());
    EXPECT_EQ(c.metrics().total_message_system_calls(), 2 * m + n * (n - 1));
}

TEST(TopologyMaintenance, KnowledgeRadiusGrowsOnePerRound) {
    // The comment after Theorem 1: "a node's topology knowledge covers
    // at least a distance k just before its k-th broadcast". After r
    // full rounds on a path, a node knows every topology within r hops.
    const Graph g = graph::make_path(12);
    for (unsigned rounds : {1u, 2u, 4u}) {
        TopologyOptions opt;
        opt.rounds = rounds;
        opt.period = 64;
        node::Cluster c = make_cluster(g, opt);
        c.start_all(0);
        c.run();
        const auto& p0 = c.protocol_as<TopologyMaintenance>(0);
        for (NodeId u = 1; u <= rounds && u < g.node_count(); ++u)
            EXPECT_TRUE(p0.view_of(u).known) << "rounds=" << rounds << " u=" << u;
        // And the frontier is tight on a path: distance rounds+1 is
        // still unknown.
        if (rounds + 1 < g.node_count()) {
            EXPECT_FALSE(p0.view_of(rounds + 1).known) << rounds;
        }
    }
}

TEST(TopologyMaintenance, RouteToUsesLearnedView) {
    const Graph g = graph::make_cycle(10);
    TopologyOptions opt;
    opt.rounds = 8;
    node::Cluster c = make_cluster(g, opt);
    c.start_all(0);
    c.run();
    const auto& p = c.protocol_as<TopologyMaintenance>(0);
    const auto route = p.route_to(0, 5);
    ASSERT_TRUE(route.has_value());
    EXPECT_EQ(route->size(), 6u);  // 5 min-hops + NCU label
    EXPECT_FALSE(p.route_to(0, 0)->empty());
}

TEST(TopologyMaintenance, IsolatedNodeStaysQuietAndSelfConsistent) {
    const Graph g = graph::make_star(4);
    TopologyOptions opt;
    opt.rounds = 5;
    opt.period = 16;
    node::Cluster c = make_cluster(g, opt);
    c.network().fail_node(3);
    c.start_all(4);
    c.run();
    // Node 3 is its own component and knows its links are down.
    EXPECT_TRUE(view_converged(c.protocol_as<TopologyMaintenance>(3), c.network(), 3));
    // The rest converge among themselves.
    EXPECT_TRUE(all_views_converged(c));
}

}  // namespace
}  // namespace fastnet::topo
