// Tiny fixed sweep for the SweepSmoke ctest (scripts/sweep_smoke.sh).
//
// Runs a small maintenance-under-churn grid through exec::SweepRunner at
// a caller-chosen thread count and writes the canonical sweep JSON. The
// harness runs this binary at 1, 2 and hardware_concurrency threads and
// byte-diffs the outputs: any scheduling dependence in the engine shows
// up as a diff, straight from the command line, with no gtest in the
// loop. Exits non-zero if any case fails to converge.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "exec/result.hpp"
#include "exec/sweep_runner.hpp"
#include "graph/generators.hpp"
#include "topo/topology_maintenance.hpp"

using namespace fastnet;

int main(int argc, char** argv) {
    unsigned threads = 0;
    std::string out_path = "sweep_smoke.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0] << " [--threads N] [--out FILE]\n"
                      << "  --threads 0 (default) uses hardware_concurrency\n";
            return 2;
        }
    }

    exec::SweepOptions opt;
    opt.threads = threads;
    opt.master_seed = 88;
    exec::SweepRunner runner(opt);

    struct Shape {
        const char* name;
        graph::Graph graph;
    };
    Rng gen(5);
    const Shape shapes[] = {
        {"ring10", graph::make_cycle(10)},
        {"grid3x4", graph::make_grid(3, 4)},
        {"random12", graph::make_random_connected(12, 2, 5, gen)},
    };
    for (const Shape& s : shapes) {
        for (std::uint64_t chaos_seed : {1ull, 2ull}) {
            topo::TopologyOptions topo_opt;
            topo_opt.rounds = 24;
            topo_opt.period = 40;
            node::ClusterConfig cfg;
            cfg.params.hop_delay = 2;
            cfg.params.ncu_delay = 2;
            cfg.net.hop_delay_min = 0;
            cfg.ncu_delay_min = 1;
            Rng chaos(chaos_seed * 17 + 1);
            node::Scenario scenario = node::Scenario::random_churn(s.graph, 6, 30, 300, chaos);
            scenario.heal_all(350);

            exec::ClusterCase c;
            c.name = std::string(s.name) + "/chaos" + std::to_string(chaos_seed);
            c.graph = s.graph;
            c.protocol = topo::make_topology_maintenance(s.graph.node_count(), topo_opt);
            c.config = cfg;
            c.scenario = std::move(scenario);
            c.probe = [](node::Cluster& cluster, exec::CaseResult& r) {
                r.ok = topo::all_views_converged(cluster);
            };
            runner.add(std::move(c));
        }
    }

    const auto rows = runner.run();
    bool all_ok = true;
    for (const auto& r : rows)
        if (!r.ok) {
            std::cerr << "case failed to converge: " << r.name << "\n";
            all_ok = false;
        }
    const std::string json = exec::sweep_json("sweep_smoke", opt.master_seed, rows);
    if (!exec::write_text_file(out_path, json)) {
        std::cerr << "cannot write " << out_path << "\n";
        return 2;
    }
    std::cout << "wrote " << out_path << " (" << rows.size() << " cases, threads="
              << (threads == 0 ? exec::ThreadPool::hardware_threads() : threads) << ")\n";
    return all_ok ? 0 : 1;
}
