// The observability toolchain end to end: the strict JSON parser, the
// canonical + Chrome exporters and their validators, offline causal
// queries, and — the acceptance bar — diagnosing a chaos failure from
// the exported JSON text alone, with no access to the live Trace.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "node/cluster.hpp"
#include "node/scenario.hpp"
#include "obs/json.hpp"
#include "obs/metrics_export.hpp"
#include "obs/trace_export.hpp"
#include "obs/trace_query.hpp"

namespace fastnet::obs {
namespace {

using sim::TraceKind;
using sim::TraceRecord;

// ---- JSON parser -------------------------------------------------------

TEST(Json, ParsesScalarsWithExactIntegers) {
    JsonValue v;
    std::string err;
    ASSERT_TRUE(json_parse(
        R"({"u": 18446744073709551615, "i": -5, "d": 1.5, "e": 2e3,
            "s": "a\nbA", "t": true, "f": false, "z": null})",
        v, &err))
        << err;
    ASSERT_TRUE(v.is_object());
    EXPECT_EQ(v.find("u")->type, JsonValue::Type::kUInt);
    EXPECT_EQ(v.find("u")->uint_value, 18446744073709551615ull);
    EXPECT_EQ(v.find("i")->type, JsonValue::Type::kInt);
    EXPECT_EQ(v.find("i")->int_value, -5);
    EXPECT_EQ(v.find("d")->type, JsonValue::Type::kDouble);
    EXPECT_DOUBLE_EQ(v.find("d")->as_double(), 1.5);
    EXPECT_DOUBLE_EQ(v.find("e")->as_double(), 2000.0);
    EXPECT_EQ(v.find("s")->string, "a\nbA");
    EXPECT_TRUE(v.find("t")->boolean);
    EXPECT_FALSE(v.find("f")->boolean);
    EXPECT_EQ(v.find("z")->type, JsonValue::Type::kNull);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, PreservesKeyOrderAndNests) {
    JsonValue v;
    ASSERT_TRUE(json_parse(R"({"b": [1, [2, {"c": 3}]], "a": 0})", v));
    ASSERT_EQ(v.object.size(), 2u);
    EXPECT_EQ(v.object[0].first, "b");  // written order, not sorted
    EXPECT_EQ(v.object[1].first, "a");
    const JsonValue& arr = *v.find("b");
    ASSERT_TRUE(arr.is_array());
    ASSERT_EQ(arr.array.size(), 2u);
    EXPECT_EQ(arr.array[1].array[1].find("c")->uint_value, 3u);
}

TEST(Json, RejectsNonRfc8259Input) {
    const char* bad[] = {
        "",                      // nothing
        "{",                     // unterminated object
        "[1, 2,]",               // trailing comma
        "{\"a\": 01}",           // leading zero
        "{a: 1}",                // unquoted key
        "NaN",                   // not a JSON value
        "\"unterminated",        // unterminated string
        "\"bad \\x escape\"",    // unknown escape
        "1 2",                   // trailing garbage
        "{\"a\": 1} extra",      // trailing garbage after object
        "[1] ]",                 // trailing bracket
    };
    for (const char* text : bad) {
        JsonValue v;
        std::string err;
        EXPECT_FALSE(json_parse(text, v, &err)) << "accepted: " << text;
        EXPECT_FALSE(err.empty()) << text;
    }
    // Depth cap: 70 nested arrays blow the 64-deep recursion budget.
    std::string deep(70, '[');
    deep += std::string(70, ']');
    JsonValue v;
    EXPECT_FALSE(json_parse(deep, v));
}

TEST(Json, EscapeRoundTripsControlCharacters) {
    const std::string nasty = "quote\" back\\slash \n\t\r\b\f \x01\x1f plain";
    const std::string quoted = json_quote(nasty);
    JsonValue v;
    std::string err;
    ASSERT_TRUE(json_parse(quoted, v, &err)) << err << " in " << quoted;
    ASSERT_TRUE(v.is_string());
    EXPECT_EQ(v.string, nasty);
}

// ---- canonical export round trip --------------------------------------

/// A small hand-recorded trace with every field class exercised.
sim::Trace make_sample_trace() {
    sim::Trace t(64);
    t.record(0, 0, TraceKind::kStart, {.b = 2});
    t.record(3, 0, TraceKind::kSend, {.lineage = 1, .a = 4, .b = 0});
    t.record(5, kNoNode, TraceKind::kHop, {.lineage = 1, .a = 0, .b = 1});
    t.record(7, kNoNode, TraceKind::kDrop,
             {.lineage = 1, .a = 0, .flag = static_cast<std::uint8_t>(
                                        sim::DropReason::kInactiveLink)});
    t.record_detail(9, 1, TraceKind::kCustom, "free-form \"text\"\n",
                    {.lineage = 1});
    return t;
}

TEST(Export, CanonicalRoundTrip) {
    const sim::Trace t = make_sample_trace();
    const graph::Graph g = graph::make_path(2);
    const std::string json = canonical_trace_json(t, make_meta(g, "round/trip"));

    LoadedTrace loaded;
    std::string err;
    ASSERT_TRUE(load_canonical(json, loaded, &err)) << err;
    EXPECT_EQ(loaded.meta.name, "round/trip");
    EXPECT_EQ(loaded.meta.nodes, 2u);
    ASSERT_EQ(loaded.meta.edges.size(), 1u);
    EXPECT_EQ(loaded.meta.edges[0], (std::pair<NodeId, NodeId>{0, 1}));
    EXPECT_EQ(loaded.total_recorded, 5u);
    EXPECT_EQ(loaded.dropped, 0u);

    const std::vector<TraceRecord> original = t.snapshot();
    ASSERT_EQ(loaded.records.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded.records[i].at, original[i].at) << i;
        EXPECT_EQ(loaded.records[i].node, original[i].node) << i;
        EXPECT_EQ(loaded.records[i].kind, original[i].kind) << i;
        EXPECT_EQ(loaded.records[i].flag, original[i].flag) << i;
        EXPECT_EQ(loaded.records[i].lineage, original[i].lineage) << i;
        EXPECT_EQ(loaded.records[i].a, original[i].a) << i;
        EXPECT_EQ(loaded.records[i].b, original[i].b) << i;
        EXPECT_EQ(loaded.records[i].detail, original[i].detail) << i;
    }
    EXPECT_EQ(loaded.records[4].detail, "free-form \"text\"\n");
    EXPECT_TRUE(check_canonical(json, &err)) << err;
}

TEST(Export, CanonicalValidatorCatchesCorruption) {
    std::string err;
    EXPECT_FALSE(check_canonical("{}", &err));
    EXPECT_FALSE(err.empty());

    // Record accounting must add up: records.size() + dropped == total.
    EXPECT_FALSE(check_canonical(
        R"({"fastnet_trace":1,"name":"x","nodes":2,"edges":[[0,1]],
            "total_recorded":3,"dropped":0,"detail_dropped":0,"records":[
            {"at":0,"node":0,"kind":"send","lineage":1,"a":0,"b":0,"flag":0}]})",
        &err))
        << "count mismatch accepted";

    // Records must be chronological.
    EXPECT_FALSE(check_canonical(
        R"({"fastnet_trace":1,"name":"x","nodes":2,"edges":[[0,1]],
            "total_recorded":2,"dropped":0,"detail_dropped":0,"records":[
            {"at":5,"node":0,"kind":"send","lineage":1,"a":0,"b":0,"flag":0},
            {"at":3,"node":0,"kind":"hop","lineage":1,"a":0,"b":1,"flag":0}]})",
        &err))
        << "time went backwards and the validator said nothing";

    // Unknown kind names are schema violations, not kCustom fallbacks.
    EXPECT_FALSE(check_canonical(
        R"({"fastnet_trace":1,"name":"x","nodes":1,"edges":[],
            "total_recorded":1,"dropped":0,"detail_dropped":0,"records":[
            {"at":0,"node":0,"kind":"warp","lineage":0,"a":0,"b":0,"flag":0}]})",
        &err));
}

// ---- Chrome export -----------------------------------------------------

TEST(Export, ChromeOfSampleTraceIsSchemaValid) {
    const sim::Trace t = make_sample_trace();
    const graph::Graph g = graph::make_path(2);
    const std::string json = chrome_trace_json(t, make_meta(g, "chrome/sample"));
    std::string err;
    EXPECT_TRUE(check_chrome(json, &err)) << err << "\n" << json;
}

TEST(Export, ChromeValidatorCatchesCorruption) {
    std::string err;
    EXPECT_FALSE(check_chrome("[]", &err)) << "top-level array accepted";
    EXPECT_FALSE(check_chrome(
        R"({"traceEvents":[{"name":"x","ph":"Z","pid":1,"tid":0,"ts":0}]})",
        &err))
        << "unknown phase accepted";
    EXPECT_FALSE(check_chrome(
        R"({"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":0,"ts":-1,"dur":1}]})",
        &err))
        << "negative timestamp accepted";
    EXPECT_FALSE(check_chrome(
        R"({"traceEvents":[{"name":"x","ph":"i","pid":1,"tid":0,"ts":0,"s":"q"}]})",
        &err))
        << "bogus instant scope accepted";
}

// ---- causal diagnosis from the exported file alone ---------------------

struct Ping final : hw::TypedPayload<Ping> {};

/// Relays one ping down the path: node 0 starts it, every intermediate
/// node's handler re-sends towards the higher-numbered neighbor. Each
/// re-send is a *new* packet whose kSend record carries the incoming
/// lineage as its causal parent — the chain the diagnosis test walks.
struct Relay final : node::Protocol {
    void on_start(node::Context& ctx) override { forward(ctx); }
    void on_message(node::Context& ctx, const hw::Delivery&) override { forward(ctx); }

    static void forward(node::Context& ctx) {
        for (const node::LocalLink& l : ctx.links()) {
            if (l.neighbor > ctx.self()) {
                hw::AnrHeader h{hw::AnrLabel::normal(l.port),
                                hw::AnrLabel::normal(hw::kNcuPort)};
                ctx.send(std::move(h), std::make_shared<Ping>());
                return;
            }
        }
    }
};

TEST(Causal, ChaosDropDiagnosedFromExportedJsonAlone) {
    // 0 --edge-> 1 --DOWN edge-> 2: node 1's relay attempt dies on the
    // failed link. Everything below the export line uses only the JSON
    // text, never the live cluster — the acceptance bar for the trace
    // being a self-sufficient diagnostic artifact.
    node::ClusterConfig cfg;
    cfg.trace = std::make_shared<sim::Trace>(1024);
    node::Cluster cluster(
        graph::make_path(3), [](NodeId) { return std::make_unique<Relay>(); }, cfg);

    EdgeId broken = kNoEdge;
    for (EdgeId e = 0; e < cluster.graph().edge_count(); ++e) {
        const auto& ed = cluster.graph().edge(e);
        if (ed.a == 1 && ed.b == 2) broken = e;
    }
    ASSERT_NE(broken, kNoEdge);
    cluster.network().fail_link(broken);
    cluster.start(0, 0);
    cluster.run();

    const std::string json =
        canonical_trace_json(*cluster.trace(), make_meta(cluster.graph(), "chaos"));

    // ---- offline: JSON text in, diagnosis out --------------------------
    LoadedTrace loaded;
    std::string err;
    ASSERT_TRUE(load_canonical(json, loaded, &err)) << err;

    const auto drops =
        filter_records(loaded.records, {.kind = TraceKind::kDrop});
    ASSERT_EQ(drops.size(), 1u);
    const TraceRecord& drop = drops[0];
    EXPECT_EQ(drop.flag,
              static_cast<std::uint8_t>(sim::DropReason::kInactiveLink));
    // The drop names the edge; the export's meta resolves its endpoints.
    ASSERT_LT(drop.a, loaded.meta.edges.size());
    EXPECT_EQ(loaded.meta.edges[drop.a], (std::pair<NodeId, NodeId>{1, 2}));

    // Causal chain: the dropped packet was sent by node 1's handler,
    // which itself ran because of node 0's original send.
    const auto ancestry = lineage_ancestry(loaded.records, drop.lineage);
    ASSERT_EQ(ancestry.size(), 2u) << "expected root send + relayed send";
    EXPECT_EQ(ancestry.back(), drop.lineage);

    const auto chain = causal_chain(loaded.records, drop.lineage);
    ASSERT_GE(chain.size(), 4u);  // send(0), hop, deliver(1), send(1), drop
    EXPECT_EQ(chain.front().kind, TraceKind::kSend);
    EXPECT_EQ(chain.front().node, 0u);
    EXPECT_EQ(chain.front().lineage, ancestry.front());
    EXPECT_EQ(chain.back().kind, TraceKind::kDrop);

    std::vector<TraceRecord> sends;
    for (const TraceRecord& r : chain)
        if (r.kind == TraceKind::kSend) sends.push_back(r);
    ASSERT_EQ(sends.size(), 2u);
    EXPECT_EQ(sends[1].node, 1u);
    EXPECT_EQ(sends[1].b, ancestry.front()) << "relayed send must name its parent";

    // And the human rendering names the failure cause.
    EXPECT_NE(format_records(drops).find("inactive_link"), std::string::npos);
}

TEST(Causal, DuplicateInheritsLineage) {
    node::ClusterConfig cfg;
    cfg.trace = std::make_shared<sim::Trace>(1024);
    cfg.net.dup_ppm = 1'000'000;  // every transmission duplicates
    node::Cluster cluster(
        graph::make_path(2), [](NodeId) { return std::make_unique<Relay>(); }, cfg);
    cluster.start(0, 0);
    cluster.run();

    const auto records = cluster.trace()->snapshot();
    const auto dups = filter_records(records, {.kind = TraceKind::kDup});
    ASSERT_FALSE(dups.empty());
    const auto sends = filter_records(records, {.kind = TraceKind::kSend});
    ASSERT_EQ(sends.size(), 1u);
    for (const TraceRecord& d : dups)
        EXPECT_EQ(d.lineage, sends[0].lineage)
            << "a link-layer duplicate is causally its original's lineage";
    // Both the original and the duplicate arrived, under one lineage.
    const auto delivers = filter_records(records, {.kind = TraceKind::kDeliver});
    ASSERT_EQ(delivers.size(), 2u);
    EXPECT_EQ(delivers[0].lineage, sends[0].lineage);
    EXPECT_EQ(delivers[1].lineage, sends[0].lineage);
}

TEST(Causal, ClusterChromeExportIsSchemaValid) {
    // The acceptance criterion checked against a *real* cluster run with
    // crash churn, not just the hand-built sample trace.
    node::ClusterConfig cfg;
    cfg.trace = std::make_shared<sim::Trace>(4096);
    node::Cluster cluster(
        graph::make_path(4), [](NodeId) { return std::make_unique<Relay>(); }, cfg);
    cluster.start(0, 0);
    node::Scenario().crash_node(2, 3).restart_node(6, 3).apply(cluster);
    cluster.run();

    const ExportMeta meta = make_meta(cluster.graph(), "chrome/cluster");
    std::string err;
    EXPECT_TRUE(check_chrome(chrome_trace_json(*cluster.trace(), meta), &err)) << err;
    EXPECT_TRUE(check_canonical(canonical_trace_json(*cluster.trace(), meta), &err))
        << err;
}

// ---- offline queries on hand-built histories ---------------------------

std::vector<TraceRecord> crash_history() {
    return {
        {.at = 5, .node = 0, .kind = TraceKind::kSend, .lineage = 1},
        {.at = 10, .node = 2, .kind = TraceKind::kCrash, .a = 0},
        {.at = 12,
         .node = kNoNode,
         .kind = TraceKind::kDrop,
         .flag = static_cast<std::uint8_t>(sim::DropReason::kStaleEpoch),
         .lineage = 1},
        {.at = 14, .node = kNoNode, .kind = TraceKind::kDrop, .lineage = 2},
        {.at = 20, .node = 2, .kind = TraceKind::kRestart, .a = 1},
        {.at = 25, .node = 2, .kind = TraceKind::kDeliver, .lineage = 3, .a = 1},
        {.at = 30, .node = 1, .kind = TraceKind::kDeliver, .lineage = 3, .a = 2},
    };
}

TEST(Query, FilterIsConjunctive) {
    const auto h = crash_history();
    EXPECT_EQ(filter_records(h, {}).size(), h.size());
    EXPECT_EQ(filter_records(h, {.node = 2}).size(), 3u);
    EXPECT_EQ(filter_records(h, {.kind = TraceKind::kDrop}).size(), 2u);
    EXPECT_EQ(filter_records(h, {.lineage = 3}).size(), 2u);
    EXPECT_EQ(filter_records(h, {.from = 12, .to = 20}).size(), 3u);
    EXPECT_EQ(filter_records(h, {.node = 2, .from = 20}).size(), 2u);
    EXPECT_EQ(
        filter_records(h, {.node = 2, .kind = TraceKind::kDeliver, .to = 20}).size(),
        0u);
}

TEST(Query, KindCountsIndexByKind) {
    const auto counts = kind_counts(crash_history());
    EXPECT_EQ(counts[static_cast<unsigned>(TraceKind::kSend)], 1u);
    EXPECT_EQ(counts[static_cast<unsigned>(TraceKind::kDrop)], 2u);
    EXPECT_EQ(counts[static_cast<unsigned>(TraceKind::kDeliver)], 2u);
    EXPECT_EQ(counts[static_cast<unsigned>(TraceKind::kHop)], 0u);
}

TEST(Query, CrashEpisodeReconstruction) {
    const auto episodes = crash_episodes(crash_history());
    ASSERT_EQ(episodes.size(), 1u);
    const CrashEpisode& ep = episodes[0];
    EXPECT_EQ(ep.node, 2u);
    EXPECT_EQ(ep.crashed_at, 10);
    EXPECT_EQ(ep.restarted_at, 20);
    EXPECT_EQ(ep.drops_while_down, 2u);
    EXPECT_EQ(ep.deliveries_after_restart, 1u);  // node 2's own, not node 1's
    EXPECT_EQ(ep.settled_at, 30);

    const std::string report = format_reconvergence(crash_history());
    EXPECT_NE(report.find("node 2"), std::string::npos);
    EXPECT_NE(report.find("t=10"), std::string::npos);
    EXPECT_NE(report.find("drops while down: 2"), std::string::npos);
}

TEST(Query, UnrestartedCrashHasOpenEpisode) {
    std::vector<TraceRecord> h = {
        {.at = 4, .node = 1, .kind = TraceKind::kCrash, .a = 0},
        {.at = 9, .node = kNoNode, .kind = TraceKind::kDrop, .lineage = 7},
    };
    const auto episodes = crash_episodes(h);
    ASSERT_EQ(episodes.size(), 1u);
    EXPECT_EQ(episodes[0].restarted_at, kNever);
    EXPECT_EQ(episodes[0].drops_while_down, 1u);
    EXPECT_EQ(episodes[0].deliveries_after_restart, 0u);
}

// ---- metrics export ----------------------------------------------------

TEST(MetricsExport, SampledRunProducesValidJson) {
    node::ClusterConfig cfg;
    cfg.sample_window = 2;
    node::Cluster cluster(
        graph::make_path(4), [](NodeId) { return std::make_unique<Relay>(); }, cfg);
    cluster.mark_phase(0, 1);
    cluster.start(0, 0);
    cluster.run();

    const std::string json = metrics_json(cluster.metrics(), "sampled/run");
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(json_parse(json, doc, &err)) << err << "\n" << json;
    EXPECT_EQ(doc.find("name")->string, "sampled/run");

    const JsonValue* sampling = doc.find("sampling");
    ASSERT_NE(sampling, nullptr);
    ASSERT_TRUE(sampling->is_object()) << "sampling ran; block must not be null";
    const JsonValue* per_node = sampling->find("per_node");
    ASSERT_NE(per_node, nullptr);
    ASSERT_TRUE(per_node->is_array());
    EXPECT_EQ(per_node->array.size(), 4u);
    EXPECT_NE(sampling->find("phase_calls"), nullptr);
    const JsonValue* histograms = sampling->find("histograms");
    ASSERT_NE(histograms, nullptr);
    EXPECT_NE(histograms->find("hop_latency"), nullptr);
    EXPECT_NE(histograms->find("queue_depth"), nullptr);
}

TEST(MetricsExport, UnsampledRunSerializesNullBlock) {
    node::Cluster cluster(
        graph::make_path(2), [](NodeId) { return std::make_unique<Relay>(); });
    cluster.start(0, 0);
    cluster.run();
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(json_parse(metrics_json(cluster.metrics(), "plain"), doc, &err)) << err;
    const JsonValue* sampling = doc.find("sampling");
    ASSERT_NE(sampling, nullptr);
    EXPECT_EQ(sampling->type, JsonValue::Type::kNull);
}

}  // namespace
}  // namespace fastnet::obs
