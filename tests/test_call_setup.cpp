// Tests for the PARIS call setup/take-down application — the selective
// copy use-case Section 2 cites. Covers: one-shot parallel setup,
// accept/reject, capacity accounting, teardown, contention and link
// failures under active calls.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "paris/call_setup.hpp"

namespace fastnet::paris {
namespace {

using graph::Graph;

struct Harness {
    explicit Harness(Graph graph, std::uint32_t capacity,
                     std::map<NodeId, std::vector<CallRequest>> scripts)
        : g(std::move(graph)),
          cluster(g, make_call_agents(g, capacity, std::move(scripts))) {
        cluster.start_all(0);
    }
    CallAgentProtocol& agent(NodeId u) {
        return cluster.protocol_as<CallAgentProtocol>(u);
    }
    Graph g;
    node::Cluster cluster;
};

TEST(CallSetup, SimpleCallActivatesEndToEnd) {
    Harness h(graph::make_path(4), 4, {{0, {{/*at=*/1, /*dst=*/3, /*demand=*/2, -1}}}});
    h.cluster.run();
    EXPECT_EQ(h.agent(0).calls_active(), 1u);
    EXPECT_EQ(h.agent(0).calls_rejected(), 0u);
    // Every hop holds the reservation.
    const CallId id{0, 1};
    EXPECT_EQ(h.agent(0).state_of(id), CallState::kActive);
    EXPECT_EQ(h.agent(1).state_of(id), CallState::kActive);
    EXPECT_EQ(h.agent(2).state_of(id), CallState::kActive);
    EXPECT_EQ(h.agent(3).state_of(id), CallState::kActive);
    EXPECT_EQ(h.agent(1).free_capacity(h.g.find_edge(1, 2)), 2u);
}

TEST(CallSetup, SetupCostsOneSystemCallPerOnPathNode) {
    // The headline: establishing a call over a k-hop path costs one
    // setup message (k system calls via copies) + one accept message.
    Harness h(graph::make_path(6), 4, {{0, {{1, 5, 1, -1}}}});
    h.cluster.run();
    EXPECT_EQ(h.agent(0).calls_active(), 1u);
    // setup (5 receptions: nodes 1..5) + accept with copies (5 receptions
    // at nodes 4..0).
    EXPECT_EQ(h.cluster.metrics().total_message_system_calls(), 10u);
    EXPECT_EQ(h.cluster.metrics().total_direct_messages(), 2u);
}

TEST(CallSetup, InsufficientCapacityRejectsAndReleasesEverywhere) {
    // Capacity 1; demand 2 -> the source itself cannot reserve.
    Harness h1(graph::make_path(3), 1, {{0, {{1, 2, 2, -1}}}});
    h1.cluster.run();
    EXPECT_EQ(h1.agent(0).calls_rejected(), 1u);
    EXPECT_EQ(h1.agent(0).calls_active(), 0u);

    // Two sequential calls, capacity 1 each hop: the second is rejected
    // and every partial reservation is released.
    Harness h2(graph::make_path(4), 1,
               {{0, {{1, 3, 1, -1}, {50, 3, 1, -1}}}});
    h2.cluster.run();
    EXPECT_EQ(h2.agent(0).calls_active(), 1u);
    EXPECT_EQ(h2.agent(0).calls_rejected(), 1u);
    // The winner's reservation is intact; nothing leaked on top of it.
    EXPECT_EQ(h2.agent(1).free_capacity(h2.g.find_edge(1, 2)), 0u);
    const CallId second{0, 2};
    EXPECT_EQ(h2.agent(0).state_of(second), CallState::kRejected);
    // The source's own first hop was the bottleneck, so no setup packet
    // ever left: downstream nodes never heard of the call.
    EXPECT_EQ(h2.agent(1).state_of(second), CallState::kIdle);
}

TEST(CallSetup, MidPathBottleneckTriggersRejectFromThatNode) {
    // Node 2's outgoing hop is saturated by a cross call 2 -> 3 first;
    // the long call 0 -> 3 then bottlenecks exactly at node 2.
    Harness h(graph::make_path(4), 1,
              {{2, {{1, 3, 1, -1}}}, {0, {{30, 3, 1, -1}}}});
    h.cluster.run();
    EXPECT_EQ(h.agent(2).calls_active(), 1u);
    EXPECT_EQ(h.agent(0).calls_rejected(), 1u);
    const CallId longcall{0, 1};
    EXPECT_EQ(h.agent(2).state_of(longcall), CallState::kRejected);
    // Node 1 reserved in parallel and must have been released by the
    // reject-teardown.
    EXPECT_EQ(h.agent(1).state_of(longcall), CallState::kRejected);
    EXPECT_EQ(h.agent(1).free_capacity(h.g.find_edge(1, 2)), 1u);
}

TEST(CallSetup, HoldTimeTearsDownAndFreesCapacity) {
    Harness h(graph::make_path(3), 2, {{0, {{1, 2, 2, /*hold=*/100}}}});
    h.cluster.run();
    EXPECT_EQ(h.agent(0).calls_active(), 0u);  // no longer up...
    EXPECT_EQ(h.agent(0).calls_released(), 1u);  // ...because it completed
    const CallId id{0, 1};
    EXPECT_EQ(h.agent(0).state_of(id), CallState::kReleased);
    EXPECT_EQ(h.agent(1).state_of(id), CallState::kReleased);
    EXPECT_EQ(h.agent(2).state_of(id), CallState::kReleased);
    EXPECT_EQ(h.agent(0).free_capacity(h.g.find_edge(0, 1)), 2u);
    EXPECT_EQ(h.agent(1).free_capacity(h.g.find_edge(1, 2)), 2u);
}

TEST(CallSetup, SequentialCallsReuseReleasedCapacity) {
    // Hold 60 then a second call at t=200 over the same saturated hop.
    Harness h(graph::make_path(3), 1,
              {{0, {{1, 2, 1, /*hold=*/60}, {200, 2, 1, -1}}}});
    h.cluster.run();
    EXPECT_EQ(h.agent(0).calls_active(), 1u);    // the second, still up
    EXPECT_EQ(h.agent(0).calls_released(), 1u);  // the first
    EXPECT_EQ(h.agent(0).calls_rejected(), 0u);
}

TEST(CallSetup, ContendingSourcesShareByCapacity) {
    // Star: center 0. Leaves 1 and 2 both call leaf 3 through the hub;
    // the hub's outgoing link to 3 has capacity 1: exactly one wins.
    Harness h(graph::make_star(4), 1,
              {{1, {{1, 3, 1, -1}}}, {2, {{1, 3, 1, -1}}}});
    h.cluster.run();
    const unsigned active = h.agent(1).calls_active() + h.agent(2).calls_active();
    const unsigned rejected = h.agent(1).calls_rejected() + h.agent(2).calls_rejected();
    EXPECT_EQ(active, 1u);
    EXPECT_EQ(rejected, 1u);
    EXPECT_EQ(h.agent(0).free_capacity(h.g.find_edge(0, 3)), 0u);
}

TEST(CallSetup, LinkFailureDisconnectsActiveCall) {
    Harness h(graph::make_path(5), 4, {{0, {{1, 4, 1, -1}}}});
    // Fail the middle hop after the call is up.
    h.cluster.simulator().at(100, [&h] {
        h.cluster.network().fail_link(h.g.find_edge(2, 3));
    });
    h.cluster.run();
    EXPECT_EQ(h.agent(0).calls_failed(), 1u);
    EXPECT_EQ(h.agent(0).calls_active(), 0u);
    const CallId id{0, 1};
    // Every node released; upstream learned via the disconnect toward
    // the source, downstream via the disconnect toward the destination.
    for (NodeId u = 0; u < 5; ++u)
        EXPECT_EQ(h.agent(u).state_of(id), CallState::kFailed) << u;
    EXPECT_EQ(h.agent(0).free_capacity(h.g.find_edge(0, 1)), 4u);
    EXPECT_EQ(h.agent(1).free_capacity(h.g.find_edge(1, 2)), 4u);
    EXPECT_EQ(h.agent(3).free_capacity(h.g.find_edge(3, 4)), 4u);
}

TEST(CallSetup, FailureOfOffPathLinkIsHarmless) {
    Harness h(graph::make_cycle(6), 4, {{0, {{1, 2, 1, -1}}}});
    h.cluster.simulator().at(100, [&h] {
        h.cluster.network().fail_link(h.g.find_edge(3, 4));
    });
    h.cluster.run();
    EXPECT_EQ(h.agent(0).calls_active(), 1u);
    EXPECT_EQ(h.agent(0).calls_failed(), 0u);
}

TEST(CallSetup, UnreachableDestinationRejectsLocally) {
    Graph g = graph::disjoint_union(graph::make_path(2), graph::make_path(2));
    Harness h(std::move(g), 4, {{0, {{1, 3, 1, -1}}}});
    h.cluster.run();
    EXPECT_EQ(h.agent(0).calls_rejected(), 1u);
    EXPECT_EQ(h.cluster.metrics().total_direct_messages(), 0u);
}

TEST(CallSetup, ManyCallsRandomizedNoCapacityLeaks) {
    // Property: after all calls are released/torn down/failed, every
    // node's reservations return to zero.
    Rng rng(5);
    Graph g = graph::make_random_connected(16, 2, 10, rng);
    std::map<NodeId, std::vector<CallRequest>> scripts;
    for (int i = 0; i < 30; ++i) {
        const NodeId src = static_cast<NodeId>(rng.below(16));
        NodeId dst = static_cast<NodeId>(rng.below(16));
        if (dst == src) dst = (dst + 1) % 16;
        scripts[src].push_back(CallRequest{static_cast<Tick>(1 + rng.below(400)), dst, 1,
                                           static_cast<Tick>(50 + rng.below(200))});
    }
    Harness h(std::move(g), 2, std::move(scripts));
    h.cluster.run();
    unsigned active = 0, rejected = 0, released = 0;
    for (NodeId u = 0; u < 16; ++u) {
        active += h.agent(u).calls_active();
        rejected += h.agent(u).calls_rejected();
        released += h.agent(u).calls_released();
        for (EdgeId e = 0; e < h.g.edge_count(); ++e)
            EXPECT_EQ(h.agent(u).free_capacity(e), 2u) << "node " << u << " edge " << e;
    }
    EXPECT_EQ(active, 0u);  // every call had a hold time
    EXPECT_EQ(released + rejected, 30u);
    EXPECT_GT(released, 0u);
}

// ---- ablation A5: hop-by-hop (pre-PARIS) setup --------------------------

struct SeqHarness {
    explicit SeqHarness(Graph graph, std::uint32_t capacity,
                        std::map<NodeId, std::vector<CallRequest>> scripts)
        : g(std::move(graph)),
          cluster(g, make_call_agents(g, capacity, std::move(scripts),
                                      /*selective_copy=*/false)) {
        cluster.start_all(0);
    }
    CallAgentProtocol& agent(NodeId u) {
        return cluster.protocol_as<CallAgentProtocol>(u);
    }
    Graph g;
    node::Cluster cluster;
};

TEST(CallSetupSequential, StillActivatesEndToEnd) {
    SeqHarness h(graph::make_path(5), 4, {{0, {{1, 4, 1, -1}}}});
    h.cluster.run();
    EXPECT_EQ(h.agent(0).calls_active(), 1u);
    const CallId id{0, 1};
    for (NodeId u = 1; u < 4; ++u)
        EXPECT_EQ(h.agent(u).state_of(id), CallState::kReserved) << u;
    EXPECT_EQ(h.agent(4).state_of(id), CallState::kActive);
}

TEST(CallSetupSequential, TeardownReleasesHopByHop) {
    SeqHarness h(graph::make_path(5), 1, {{0, {{1, 4, 1, /*hold=*/100}}}});
    h.cluster.run();
    EXPECT_EQ(h.agent(0).calls_released(), 1u);
    for (NodeId u = 0; u + 1 < 5; ++u)
        EXPECT_EQ(h.agent(u).free_capacity(h.g.find_edge(u, u + 1)), 1u) << u;
}

TEST(CallSetupSequential, SelectiveCopyIsFasterSameSystemCalls) {
    // The quantitative point of the ablation: same path, same number of
    // NCU involvements for setup, but establishment latency grows with
    // the path length without the copy mechanism.
    auto run_mode = [](bool copy) {
        const Graph g = graph::make_path(10);
        std::map<NodeId, std::vector<CallRequest>> scripts{{0, {{1, 9, 1, -1}}}};
        node::Cluster c(g, make_call_agents(g, 4, scripts, copy));
        c.start_all(0);
        c.run();
        struct R {
            Tick done;
            std::uint64_t calls;
            bool active;
        };
        return R{c.simulator().now(), c.metrics().total_message_system_calls(),
                 c.protocol_as<CallAgentProtocol>(0).calls_active() == 1};
    };
    const auto fast = run_mode(true);
    const auto slow = run_mode(false);
    ASSERT_TRUE(fast.active);
    ASSERT_TRUE(slow.active);
    // 9 hops: parallel setup finishes ~2 units after launch; sequential
    // needs ~9 units for the setup chain alone.
    EXPECT_LT(fast.done + 5, slow.done);
    // System calls: copy mode pays setup(9) + accept copies(9);
    // sequential pays setup relays(9) + direct accept(1).
    EXPECT_EQ(slow.calls, 10u);
    EXPECT_EQ(fast.calls, 18u);
}

TEST(CallSetupSequential, MidPathRejectReleasesUpstreamOnly) {
    SeqHarness h(graph::make_path(4), 1,
                 {{2, {{1, 3, 1, -1}}}, {0, {{30, 3, 1, -1}}}});
    h.cluster.run();
    EXPECT_EQ(h.agent(0).calls_rejected(), 1u);
    const CallId longcall{0, 1};
    // Downstream of the bottleneck never heard of the call.
    EXPECT_EQ(h.agent(3).state_of(longcall), CallState::kIdle);
    // Upstream reservation was released by the relayed teardown.
    EXPECT_EQ(h.agent(1).free_capacity(h.g.find_edge(1, 2)), 1u);
}

}  // namespace
}  // namespace fastnet::paris
