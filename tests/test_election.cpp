// End-to-end tests of the Section 4 election: Theorem 4 (exactly one
// leader), Theorem 5 (<= 6n system calls) and the supporting lemmas.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "election/election.hpp"

namespace fastnet::elect {
namespace {

using graph::Graph;

TEST(Election, SingleNodeElectsItself) {
    const auto out = run_election(graph::make_path(1));
    EXPECT_TRUE(out.unique_leader);
    EXPECT_EQ(out.leader, 0u);
    EXPECT_TRUE(out.all_decided);
    EXPECT_EQ(out.election_messages, 0u);
}

TEST(Election, TwoNodes) {
    const auto out = run_election(graph::make_path(2));
    EXPECT_TRUE(out.unique_leader);
    EXPECT_TRUE(out.all_decided);
}

TEST(Election, Triangle) {
    const auto out = run_election(graph::make_cycle(3));
    EXPECT_TRUE(out.unique_leader);
    EXPECT_TRUE(out.all_decided);
}

TEST(Election, PaperExampleGraph) {
    const auto out = run_election(graph::make_podc_example());
    EXPECT_TRUE(out.unique_leader);
    EXPECT_TRUE(out.all_decided);
    EXPECT_LE(out.election_messages, 6ull * 6);
}

TEST(Election, SingleInitiatorStillElectsAndInformsAll) {
    Rng rng(2);
    const Graph g = graph::make_random_connected(30, 2, 10, rng);
    const auto out = run_election(g, {}, /*initiators=*/{17});
    EXPECT_TRUE(out.unique_leader);
    EXPECT_TRUE(out.all_decided);
}

TEST(Election, StaggeredStartsStillUnique) {
    Rng rng(3);
    const Graph g = graph::make_random_connected(40, 2, 10, rng);
    const auto out = run_election(g, {}, {}, {}, /*stagger=*/7);
    EXPECT_TRUE(out.unique_leader);
    EXPECT_TRUE(out.all_decided);
}

TEST(Election, Theorem5SixNBoundOnManyTopologies) {
    struct Case {
        const char* name;
        Graph g;
    };
    Rng rng(10);
    std::vector<Case> cases;
    cases.push_back({"path64", graph::make_path(64)});
    cases.push_back({"cycle65", graph::make_cycle(65)});
    cases.push_back({"star64", graph::make_star(64)});
    cases.push_back({"complete32", graph::make_complete(32)});
    cases.push_back({"grid8x8", graph::make_grid(8, 8)});
    cases.push_back({"hypercube6", graph::make_hypercube(6)});
    cases.push_back({"tree100", graph::make_random_tree(100, rng)});
    cases.push_back({"sparse100", graph::make_random_connected(100, 1, 50, rng)});
    ElectionOptions opt;
    opt.announce = false;
    for (auto& c : cases) {
        const auto out = run_election(c.g, opt);
        EXPECT_TRUE(out.unique_leader) << c.name;
        EXPECT_LE(out.election_messages, 6ull * c.g.node_count()) << c.name;
    }
}

TEST(Election, Lemma6DomainCountPerPhase) {
    // At most n / 2^p captures can happen at phase p (a capture at phase
    // p is performed by a domain of size >= 2^p, and a node joins at most
    // one domain per phase).
    Rng rng(21);
    const Graph g = graph::make_random_connected(128, 1, 30, rng);
    const auto out = run_election(g);
    for (std::size_t p = 0; p < out.captures_by_phase.size(); ++p)
        EXPECT_LE(out.captures_by_phase[p], 128ull >> p) << "phase " << p;
}

TEST(Election, TimeIsLinearInN) {
    // O(n) time units (P = 1, C = 0): generous constant-factor check.
    for (NodeId n : {16u, 64u, 128u}) {
        Rng rng(n);
        const Graph g = graph::make_random_connected(n, 1, 20, rng);
        const auto out = run_election(g);
        EXPECT_TRUE(out.unique_leader);
        EXPECT_LE(out.cost.completion_time, 20ll * n) << n;
    }
}

TEST(Election, HeaderLengthsStayLinear) {
    // Every ANR header ever injected stays <= 2n + O(1) labels — the
    // paper's "linear length ANR" requirement (splice of two
    // tree routes).
    for (NodeId n : {20u, 60u}) {
        Rng rng(n + 1);
        const Graph g = graph::make_random_connected(n, 1, 10, rng);
        const auto out = run_election(g);
        EXPECT_TRUE(out.unique_leader);
        EXPECT_LE(out.cost.max_header_len, 2ull * n + 2) << n;
    }
}

TEST(Election, WorksUnderHardwareDelays) {
    Rng rng(5);
    const Graph g = graph::make_random_connected(30, 2, 10, rng);
    node::ClusterConfig cfg;
    cfg.params.hop_delay = 3;  // C = 3, P = 1
    const auto out = run_election(g, {}, {}, cfg);
    EXPECT_TRUE(out.unique_leader);
    EXPECT_TRUE(out.all_decided);
}

TEST(Election, WorksUnderRandomizedDelays) {
    Rng rng(6);
    const Graph g = graph::make_random_connected(25, 2, 10, rng);
    node::ClusterConfig cfg;
    cfg.params.hop_delay = 8;
    cfg.params.ncu_delay = 5;
    cfg.net.hop_delay_min = 0;
    cfg.ncu_delay_min = 1;
    cfg.seed = 1234;
    const auto out = run_election(g, {}, {}, cfg);
    EXPECT_TRUE(out.unique_leader);
    EXPECT_TRUE(out.all_decided);
}

TEST(Election, DisconnectedGraphElectsPerComponent) {
    const Graph g = graph::disjoint_union(graph::make_cycle(5), graph::make_path(4));
    node::Cluster cluster(g, [](NodeId) { return std::make_unique<ElectionProtocol>(); });
    cluster.start_all(0);
    cluster.run();
    int leaders_left = 0, leaders_right = 0;
    for (NodeId u = 0; u < g.node_count(); ++u) {
        const auto& p = cluster.protocol_as<ElectionProtocol>(u);
        EXPECT_NE(p.role(), Role::kUndecided) << u;
        if (p.role() == Role::kLeader) (u < 5 ? leaders_left : leaders_right) += 1;
    }
    EXPECT_EQ(leaders_left, 1);
    EXPECT_EQ(leaders_right, 1);
}

TEST(Election, EveryNodeLearnsTheSameLeader) {
    Rng rng(9);
    const Graph g = graph::make_random_connected(40, 2, 10, rng);
    node::Cluster cluster(g, [](NodeId) { return std::make_unique<ElectionProtocol>(); });
    cluster.start_all(0);
    cluster.run();
    NodeId leader = kNoNode;
    for (NodeId u = 0; u < g.node_count(); ++u) {
        const auto& p = cluster.protocol_as<ElectionProtocol>(u);
        ASSERT_NE(p.known_leader(), kNoNode) << u;
        if (leader == kNoNode) leader = p.known_leader();
        EXPECT_EQ(p.known_leader(), leader) << u;
    }
}

TEST(Election, LeaderDomainSpansComponent) {
    Rng rng(11);
    const Graph g = graph::make_random_connected(35, 2, 10, rng);
    node::Cluster cluster(g, [](NodeId) { return std::make_unique<ElectionProtocol>(); });
    cluster.start_all(0);
    cluster.run();
    for (NodeId u = 0; u < g.node_count(); ++u) {
        const auto& p = cluster.protocol_as<ElectionProtocol>(u);
        if (p.role() == Role::kLeader) {
            EXPECT_EQ(p.domain_size(), g.node_count());
            EXPECT_EQ(p.inout().in_count(), g.node_count());
            EXPECT_EQ(p.inout().out_count(), 0u);
        }
    }
}

// ---- randomized sweep: Theorem 4 under many seeds / shapes -------------

class ElectionProperty
    : public ::testing::TestWithParam<std::tuple<NodeId, std::uint64_t>> {};

TEST_P(ElectionProperty, ExactlyOneLeaderAlwaysAndWithin6N) {
    const auto [n, seed] = GetParam();
    Rng rng(seed);
    const Graph g = graph::make_random_connected(n, 2, 10, rng);
    ElectionOptions opt;
    opt.announce = false;
    // Random initiator subset (at least one).
    std::vector<NodeId> initiators;
    for (NodeId u = 0; u < n; ++u)
        if (rng.chance(1, 3)) initiators.push_back(u);
    if (initiators.empty()) initiators.push_back(static_cast<NodeId>(rng.below(n)));
    node::ClusterConfig cfg;
    cfg.seed = seed * 7 + 1;
    const auto out = run_election(g, opt, initiators, cfg, /*stagger=*/3);
    EXPECT_TRUE(out.unique_leader);
    EXPECT_LE(out.election_messages, 6ull * n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ElectionProperty,
    ::testing::Combine(::testing::Values<NodeId>(4, 9, 16, 33, 64, 120),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5)));

}  // namespace
}  // namespace fastnet::elect
