// The theorem-bound auditor (src/obs/audit.hpp): derived bounds hold on
// real runs across graph families, a forged outcome actually fails the
// audit (the auditor must be falsifiable, not a rubber stamp), and the
// JSON export round-trips deterministically with verdicts recomputed on
// load.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/rooted_tree.hpp"
#include "hw/anr.hpp"
#include "obs/audit.hpp"
#include "topo/broadcast_plan.hpp"
#include "topo/broadcast_protocols.hpp"
#include "topo/labeling.hpp"
#include "topo/lower_bound.hpp"

namespace fastnet::obs {
namespace {

using topo::BroadcastScheme;

// ---- Theorem 2 + flooding contrast across graph families ----------------

TEST(Audit, BranchingPathsBoundsHoldAcrossFamilies) {
    BoundAudit audit("t2");
    Rng rng(7);
    const graph::Graph families[] = {
        graph::make_random_connected(96, 1, 40, rng),
        graph::make_grid(8, 9),
        graph::make_hypercube(6),
        graph::make_complete_binary_tree(6),
    };
    for (const graph::Graph& g : families) {
        const auto out = topo::run_broadcast(g, BroadcastScheme::kBranchingPaths, 0);
        ASSERT_TRUE(out.all_received);
        audit.broadcast(g, BroadcastScheme::kBranchingPaths, nullptr, out,
                        ModelParams::fast_network());
    }
    EXPECT_TRUE(audit.pass()) << audit_json(audit);
    EXPECT_EQ(audit.violation_count(), 0u);
    // Four checks per family: coverage, time units, system calls, hops.
    EXPECT_EQ(audit.checks().size(), 4u * std::size(families));
}

TEST(Audit, FloodingContrastBoundHoldsAcrossFamilies) {
    BoundAudit audit("flood");
    Rng rng(11);
    const graph::Graph families[] = {
        graph::make_random_connected(64, 1, 30, rng),
        graph::make_grid(6, 6),
        graph::make_hypercube(5),
    };
    for (const graph::Graph& g : families) {
        const auto out = topo::run_broadcast(g, BroadcastScheme::kFlooding, 0);
        ASSERT_TRUE(out.all_received);
        audit.broadcast(g, BroadcastScheme::kFlooding, nullptr, out,
                        ModelParams::fast_network());
        // The O(m) bound is the contrast with Theorem 2's O(n): on dense
        // graphs flooding's observed calls exceed branching-paths' n bound.
        if (g.edge_count() > 2 * g.node_count()) {
            EXPECT_GT(out.cost.system_calls, g.node_count());
        }
    }
    EXPECT_TRUE(audit.pass()) << audit_json(audit);
}

TEST(Audit, PlanBoundsAuditedWhenPlanProvided) {
    Rng rng(3);
    const graph::Graph g = graph::make_random_tree(128, rng);
    const graph::RootedTree tree = graph::min_hop_tree(g, 0);
    const hw::PortMap ports = hw::canonical_ports(g);
    const topo::BroadcastPlan plan = topo::plan_branching_paths(tree, ports);
    const auto out = topo::run_broadcast(g, BroadcastScheme::kBranchingPaths, 0);
    BoundAudit audit("plan");
    audit.broadcast(g, BroadcastScheme::kBranchingPaths, &plan, out,
                    ModelParams::fast_network());
    EXPECT_TRUE(audit.pass()) << audit_json(audit);
    bool saw_plan_check = false;
    for (const BoundCheck& c : audit.checks())
        saw_plan_check |= c.name == "branching-paths/plan_time_units";
    EXPECT_TRUE(saw_plan_check);
}

TEST(Audit, TimeUnitCheckOnlyUnderLimitingModel) {
    const graph::Graph g = graph::make_star(32);
    const auto out = topo::run_broadcast(g, BroadcastScheme::kBranchingPaths, 0);
    BoundAudit fast("fast"), traditional("traditional");
    fast.broadcast(g, BroadcastScheme::kBranchingPaths, nullptr, out,
                   ModelParams::fast_network());
    traditional.broadcast(g, BroadcastScheme::kBranchingPaths, nullptr, out,
                          ModelParams::traditional());
    auto has_time_check = [](const BoundAudit& a) {
        for (const BoundCheck& c : a.checks())
            if (c.name == "branching-paths/theorem2_time_units") return true;
        return false;
    };
    EXPECT_TRUE(has_time_check(fast));
    EXPECT_FALSE(has_time_check(traditional));  // time units undefined there
}

// ---- the auditor must be falsifiable ------------------------------------

TEST(Audit, ForgedOutcomeFailsTheAudit) {
    const graph::Graph g = graph::make_grid(5, 5);
    auto out = topo::run_broadcast(g, BroadcastScheme::kBranchingPaths, 0);
    ASSERT_TRUE(out.all_received);

    // Forge the observed costs past the derived bounds: more system
    // calls than Theorem 2 allows, more time units than 1 + log2(n).
    out.cost.system_calls = g.node_count() + 5;
    out.time_units = static_cast<double>(topo::theorem2_time_bound(g.node_count())) + 1;
    BoundAudit audit("forged");
    audit.broadcast(g, BroadcastScheme::kBranchingPaths, nullptr, out,
                    ModelParams::fast_network());
    EXPECT_FALSE(audit.pass());
    EXPECT_EQ(audit.violation_count(), 2u);
    for (const BoundCheck& c : audit.checks()) {
        if (c.name == "branching-paths/theorem2_system_calls") {
            EXPECT_FALSE(c.pass);
            EXPECT_LT(c.slack, 0);
        }
    }
}

TEST(Audit, MissedNodeFailsCoverage) {
    const graph::Graph g = graph::make_cycle(12);
    auto out = topo::run_broadcast(g, BroadcastScheme::kFlooding, 0);
    ASSERT_TRUE(out.all_received);
    out.received[5] = false;  // forge a hole in the coverage
    BoundAudit audit("hole");
    audit.broadcast(g, BroadcastScheme::kFlooding, nullptr, out,
                    ModelParams::fast_network());
    EXPECT_FALSE(audit.pass());
}

// ---- Theorem 3 lower bound ----------------------------------------------

TEST(Audit, LowerBoundHoldsOnBinaryTreeBroadcast) {
    for (unsigned depth : {3u, 5u, 7u}) {
        const graph::Graph g = graph::make_complete_binary_tree(depth);
        const auto out = topo::run_broadcast(g, BroadcastScheme::kBranchingPaths, 0);
        ASSERT_TRUE(out.all_received);
        BoundAudit audit("t3");
        audit.broadcast_lower_bound(depth, out.time_units);
        EXPECT_TRUE(audit.pass())
            << "depth " << depth << ": " << audit_json(audit);
        // And a sub-lower-bound claim must fail.
        BoundAudit forged("t3-forged");
        forged.broadcast_lower_bound(
            depth, static_cast<double>(topo::one_way_lower_bound(depth)));
        EXPECT_FALSE(forged.pass());
    }
}

// ---- election (Theorem 5 + Lemma 6) -------------------------------------

TEST(Audit, ElectionBoundsHold) {
    Rng rng(5);
    const graph::Graph g = graph::make_random_connected(48, 1, 12, rng);
    const auto out = elect::run_election(g);
    ASSERT_TRUE(out.unique_leader);
    BoundAudit audit("e");
    audit.election(g, elect::ElectionOptions{}, out);
    EXPECT_TRUE(audit.pass()) << audit_json(audit);
}

TEST(Audit, ForgedElectionMessageCountFails) {
    const graph::Graph g = graph::make_cycle(16);
    elect::ElectionOptions opt;
    opt.announce = false;
    auto out = elect::run_election(g, opt);
    ASSERT_TRUE(out.unique_leader);
    out.election_messages = elect::theorem5_call_bound(g.node_count()) + 1;
    BoundAudit audit("e-forged");
    audit.election(g, opt, out);
    EXPECT_FALSE(audit.pass());
}

// ---- phase budgets from sampled metrics ---------------------------------

TEST(Audit, PhaseBudgetReadsSampledAttribution) {
    cost::Metrics metrics(4);
    metrics.enable_sampling(16);
    for (int i = 0; i < 5; ++i) metrics.sampling()->phase_call(2);
    BoundAudit ok("pb"), over("pb-over");
    ok.phase_budget(metrics, 2, 5);
    EXPECT_TRUE(ok.pass());
    over.phase_budget(metrics, 2, 4);
    EXPECT_FALSE(over.pass());
}

// ---- JSON export + ingestion --------------------------------------------

TEST(Audit, JsonRoundTripsByteIdentically) {
    const graph::Graph g = graph::make_grid(4, 4);
    const auto out = topo::run_broadcast(g, BroadcastScheme::kBranchingPaths, 0);
    BoundAudit audit("roundtrip");
    audit.broadcast(g, BroadcastScheme::kBranchingPaths, nullptr, out,
                    ModelParams::fast_network());
    const std::string text = audit_json(audit);

    BoundAudit loaded("");
    std::string error;
    ASSERT_TRUE(load_audit(text, loaded, &error)) << error;
    EXPECT_EQ(loaded.name(), "roundtrip");
    EXPECT_EQ(loaded.checks().size(), audit.checks().size());
    EXPECT_EQ(audit_json(loaded), text);
}

TEST(Audit, LoaderRecomputesVerdicts) {
    // A hand-edited export cannot smuggle a passing verdict: flip an
    // observed value past its bound while leaving "pass": true — the
    // loader recomputes slack and verdict from (kind, bound, observed).
    const std::string text =
        "{\n  \"fastnet_audit\": 1,\n  \"name\": \"tampered\",\n"
        "  \"pass\": true,\n  \"violations\": 0,\n  \"checks\": [\n"
        "    {\"name\": \"x\", \"kind\": \"at_most\", \"bound\": 10, "
        "\"observed\": 11, \"slack\": 1, \"pass\": true}\n  ]\n}\n";
    BoundAudit loaded("");
    std::string error;
    ASSERT_TRUE(load_audit(text, loaded, &error)) << error;
    EXPECT_FALSE(loaded.pass());
    ASSERT_EQ(loaded.checks().size(), 1u);
    EXPECT_EQ(loaded.checks()[0].slack, -1);
}

TEST(Audit, LoaderRejectsForeignDocuments) {
    BoundAudit loaded("");
    std::string error;
    EXPECT_FALSE(load_audit("{\"bench\": \"x\", \"results\": []}", loaded, &error));
    EXPECT_FALSE(load_audit("not json", loaded, &error));
    EXPECT_FALSE(load_audit(
        "{\"fastnet_audit\": 1, \"name\": \"x\", \"checks\": "
        "[{\"name\": \"c\", \"kind\": \"sideways\", \"bound\": 1, \"observed\": 1}]}",
        loaded, &error));
}

}  // namespace
}  // namespace fastnet::obs
