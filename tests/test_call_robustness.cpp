// Robustness tests for the hardened call agent (docs/ROBUSTNESS.md
// "Calls under fire"): the capacity-leak regressions the fair-weather
// machine fails, setup timeouts + bounded retry/backoff, source-side
// admission control (in-flight cap, token bucket, record ceiling,
// pressure board), the orphaned-reservation reaper, link cuts during
// setup, crash-incarnation call ids, and the open-loop workload driver —
// all audited by fault::CallOracle.
#include <gtest/gtest.h>

#include "fault/call_oracle.hpp"
#include "graph/generators.hpp"
#include "paris/call_setup.hpp"

namespace fastnet::paris {
namespace {

using graph::Graph;

/// Harness over the full CallAgentOptions surface: per-node scripts ride
/// on one shared base, fault knobs come from the NetworkConfig.
struct Harness {
    Harness(Graph graph, CallAgentOptions base,
            std::map<NodeId, std::vector<CallRequest>> scripts,
            hw::NetworkConfig net = {}, std::uint64_t seed = 42)
        : g(std::make_shared<const Graph>(std::move(graph))),
          cluster(*g, factory(g, std::move(base), std::move(scripts)), config(net, seed)) {
        cluster.start_all(0);
    }
    static node::ProtocolFactory factory(std::shared_ptr<const Graph> g,
                                         CallAgentOptions base,
                                         std::map<NodeId, std::vector<CallRequest>> scripts) {
        return [g = std::move(g), base = std::move(base),
                scripts = std::move(scripts)](NodeId u) {
            CallAgentOptions opt = base;
            if (const auto it = scripts.find(u); it != scripts.end())
                opt.requests = it->second;
            return std::make_unique<CallAgentProtocol>(g, opt);
        };
    }
    static node::ClusterConfig config(hw::NetworkConfig net, std::uint64_t seed) {
        node::ClusterConfig cfg;
        cfg.net = net;
        cfg.seed = seed;
        return cfg;
    }
    CallAgentProtocol& agent(NodeId u) {
        return cluster.protocol_as<CallAgentProtocol>(u);
    }
    std::uint32_t total_reserved() {
        std::uint32_t total = 0;
        for (NodeId u = 0; u < cluster.node_count(); ++u)
            for (const auto& [edge, held] : agent(u).reserved_entries()) total += held;
        return total;
    }
    std::shared_ptr<const Graph> g;
    node::Cluster cluster;
};

CallAgentOptions hardened(std::uint32_t capacity) {
    CallAgentOptions opt;
    opt.link_capacity = capacity;
    opt.setup_timeout = 16;
    opt.max_retries = 3;
    opt.retry_backoff = 8;
    opt.reservation_ttl = 120;
    opt.refresh_interval = 40;
    return opt;
}

// ---- satellite 1: the silent-drop capacity leak --------------------------

TEST(CallLeak, LostSetupLeaksForeverWithoutTimeout) {
    // 100% loss: the setup dies on the first hop. The fair-weather
    // machine (all knobs off) leaves the source in kSettingUp holding
    // its first-hop reservation with no pending event to save it — the
    // leak this PR exists to close. This test pins the failure mode so
    // the default-off contract stays honest.
    CallAgentOptions off;
    off.link_capacity = 4;
    hw::NetworkConfig net;
    net.loss_ppm = 1'000'000;
    Harness h(graph::make_path(3), off, {{0, {{1, 2, 1, -1}}}}, net);
    h.cluster.run();
    EXPECT_EQ(h.agent(0).state_of(CallId{0, 1}), CallState::kSettingUp);
    EXPECT_EQ(h.agent(0).free_capacity(h.g->find_edge(0, 1)), 3u);  // leaked
    const fault::OracleReport rep = fault::check_calls(h.cluster);
    EXPECT_FALSE(rep.ok());  // the oracle sees both the state and the unit
}

TEST(CallLeak, SetupTimeoutReclaimsWhatLossStranded) {
    // Same dead network, hardened agent: every attempt times out
    // (REJECT-equivalent), the reservation is reclaimed each time, and
    // the call ends blocked with zero capacity held anywhere.
    hw::NetworkConfig net;
    net.loss_ppm = 1'000'000;
    Harness h(graph::make_path(3), hardened(4), {{0, {{1, 2, 1, -1}}}}, net);
    h.cluster.run();
    EXPECT_EQ(h.agent(0).calls_rejected(), 1u);
    EXPECT_EQ(h.agent(0).free_capacity(h.g->find_edge(0, 1)), 4u);
    EXPECT_EQ(h.agent(0).stats().timeouts, 4u);  // initial + 3 retries
    EXPECT_EQ(h.agent(0).stats().retries, 3u);
    EXPECT_EQ(h.agent(0).stats().blocked, 1u);
    EXPECT_TRUE(fault::check_calls(h.cluster).ok())
        << fault::check_calls(h.cluster).summary();
}

TEST(CallLeak, PartialLossDrainsCleanAndReapsOrphans) {
    // 25% per-transmission loss over many calls: lost ACCEPTs orphan
    // upstream reservations until the reject-teardown of the timeout
    // arrives — and when *that* is lost too, only the lease reaper
    // stands between the transit node and a permanent leak.
    Rng rng(7);
    Graph g = graph::make_random_connected(12, 2, 8, rng);
    std::map<NodeId, std::vector<CallRequest>> scripts;
    for (int i = 0; i < 120; ++i) {
        const NodeId src = static_cast<NodeId>(rng.below(12));
        NodeId dst = static_cast<NodeId>(rng.below(12));
        if (dst == src) dst = (dst + 1) % 12;
        scripts[src].push_back(CallRequest{static_cast<Tick>(1 + rng.below(600)), dst, 1,
                                           static_cast<Tick>(30 + rng.below(100))});
    }
    hw::NetworkConfig net;
    net.loss_ppm = 250'000;
    Harness h(std::move(g), hardened(3), std::move(scripts), net);
    h.cluster.run();
    const cost::CallStats total = fold_call_stats(h.cluster);
    EXPECT_EQ(total.offered, 120u);
    EXPECT_GT(total.accepted, 0u);
    EXPECT_GT(total.timeouts, 0u);
    EXPECT_EQ(h.total_reserved(), 0u);
    EXPECT_TRUE(fault::check_calls(h.cluster).ok())
        << fault::check_calls(h.cluster).summary();
}

TEST(CallLeak, DuplicateSetupCopiesNeverDoubleReserve) {
    // Aggressive duplication: a transit node receiving the same SETUP
    // twice must not book the demand twice (the legacy agent did).
    Rng rng(11);
    std::map<NodeId, std::vector<CallRequest>> scripts;
    for (int i = 0; i < 40; ++i) {
        const NodeId src = static_cast<NodeId>(rng.below(8));
        NodeId dst = static_cast<NodeId>(rng.below(8));
        if (dst == src) dst = (dst + 1) % 8;
        scripts[src].push_back(CallRequest{static_cast<Tick>(1 + rng.below(300)), dst, 1,
                                           static_cast<Tick>(20 + rng.below(80))});
    }
    hw::NetworkConfig net;
    net.dup_ppm = 500'000;
    Harness h(graph::make_random_connected(8, 2, 6, rng), hardened(3),
              std::move(scripts), net);
    h.cluster.run();
    EXPECT_EQ(h.total_reserved(), 0u);
    EXPECT_TRUE(fault::check_calls(h.cluster).ok())
        << fault::check_calls(h.cluster).summary();
}

// ---- satellite 2: link cuts under setup ----------------------------------

TEST(CallCut, SetupIntoDeadLinkReleasesBothSidesOfTheCut) {
    // Path 0-1-2-3; the (1,2) link dies before the call is placed. The
    // selective-copy setup reserves at node 1, then the packet dies on
    // the cut. Node 1's reservation is a silent orphan (its link events
    // predate the record); only the source's timeout teardown releases
    // it. Nodes 2 and 3 never hear of the call at all.
    Harness h(graph::make_path(4), hardened(4), {{0, {{10, 3, 1, -1}}}});
    h.cluster.simulator().at(2, [&h] {
        h.cluster.network().fail_link(h.g->find_edge(1, 2));
    });
    h.cluster.run();
    EXPECT_EQ(h.agent(0).calls_rejected(), 1u);  // retries exhausted (static route)
    EXPECT_EQ(h.agent(2).call_records().size(), 0u);
    EXPECT_EQ(h.total_reserved(), 0u);
    EXPECT_TRUE(fault::check_calls(h.cluster).ok())
        << fault::check_calls(h.cluster).summary();
}

TEST(CallCut, SourceFirstHopDownMidSetupBacksOffAndRecovers) {
    // The (0,1) link dies while the source is in kSettingUp, then comes
    // back. Hardened: the source releases its hop, backs off, and the
    // retry lands after the repair — the call completes.
    Harness h(graph::make_path(3), hardened(4), {{0, {{1, 2, 1, /*hold=*/400}}}});
    h.cluster.simulator().at(2, [&h] {
        h.cluster.network().fail_link(h.g->find_edge(0, 1));
    });
    h.cluster.simulator().at(6, [&h] {
        h.cluster.network().restore_link(h.g->find_edge(0, 1));
    });
    h.cluster.run();
    EXPECT_EQ(h.agent(0).stats().accepted, 1u);
    EXPECT_GE(h.agent(0).stats().retries, 1u);
    EXPECT_EQ(h.agent(0).calls_failed(), 0u);
    EXPECT_EQ(h.total_reserved(), 0u);
    EXPECT_TRUE(fault::check_calls(h.cluster).ok())
        << fault::check_calls(h.cluster).summary();
}

TEST(CallCut, LegacyModeStillFailsSetupOnLinkDeath) {
    // Knobs off: the same cut is a hard failure (pinned legacy
    // behaviour) — but the source still releases its own hop.
    CallAgentOptions off;
    off.link_capacity = 4;
    Harness h(graph::make_path(3), off, {{0, {{1, 2, 1, -1}}}});
    h.cluster.simulator().at(2, [&h] {
        h.cluster.network().fail_link(h.g->find_edge(0, 1));
    });
    h.cluster.run();
    EXPECT_EQ(h.agent(0).calls_failed(), 1u);
    EXPECT_EQ(h.agent(0).state_of(CallId{0, 1}), CallState::kFailed);
    EXPECT_EQ(h.agent(0).free_capacity(h.g->find_edge(0, 1)), 4u);
}

// ---- retry / backoff ------------------------------------------------------

TEST(CallRetry, CapacityRejectRetriesUntilTheHoldClears) {
    // Node 1's outgoing hop is saturated by a short cross call; the long
    // call's first attempts bounce off the bottleneck, a later retry
    // lands after the hold expires.
    CallAgentOptions opt = hardened(1);
    opt.max_retries = 5;
    opt.retry_backoff = 40;  // attempts at ~t(5)+40, +80, ... — the hold ends at ~66
    Harness h(graph::make_path(4), opt,
              {{1, {{1, 3, 1, /*hold=*/60}}}, {0, {{5, 3, 1, /*hold=*/200}}}});
    h.cluster.run();
    EXPECT_EQ(h.agent(0).stats().accepted, 1u);
    EXPECT_GE(h.agent(0).stats().retries, 1u);
    EXPECT_EQ(h.agent(0).stats().blocked, 0u);
    EXPECT_EQ(h.agent(1).stats().completed, 1u);
    EXPECT_TRUE(fault::check_calls(h.cluster).ok())
        << fault::check_calls(h.cluster).summary();
}

TEST(CallRetry, JitterStaysDeterministicPerSeed) {
    auto run_once = [] {
        CallAgentOptions opt = hardened(1);
        opt.max_retries = 4;
        opt.retry_backoff = 10;
        opt.retry_jitter = 7;
        Harness h(graph::make_path(3), opt,
                  {{0, {{1, 2, 1, /*hold=*/300}}}, {1, {{1, 2, 1, /*hold=*/50}}}},
                  {}, /*seed=*/1234);
        h.cluster.run();
        cost::CallStats s = fold_call_stats(h.cluster);
        return std::tuple{s.accepted, s.retries, s.blocked,
                          s.setup_latency.quantile_bound(0.99)};
    };
    EXPECT_EQ(run_once(), run_once());
}

// ---- admission control ----------------------------------------------------

TEST(CallAdmission, MaxInflightShedsSimultaneousBursts) {
    CallAgentOptions opt = hardened(8);
    opt.max_inflight = 2;
    // Five arrivals in the same handler tick: only two setups may be
    // unresolved at once, the rest are shed at the door.
    Harness h(graph::make_path(3), opt,
              {{0, {{1, 2, 1, 50}, {1, 2, 1, 50}, {1, 2, 1, 50}, {1, 2, 1, 50},
                    {1, 2, 1, 50}}}});
    h.cluster.run();
    const cost::CallStats& s = h.agent(0).stats();
    EXPECT_EQ(s.offered, 5u);
    EXPECT_EQ(s.shed, 3u);
    EXPECT_EQ(s.accepted, 2u);
    EXPECT_TRUE(fault::check_calls(h.cluster).ok());
}

TEST(CallAdmission, TokenBucketAdmitsAtTheConfiguredRate) {
    CallAgentOptions opt = hardened(16);
    opt.bucket_rate_num = 1;
    opt.bucket_rate_den = 20;  // one admission every 20 ticks
    opt.bucket_burst = 1;
    std::vector<CallRequest> reqs;
    // Arrivals every 10 ticks — sparse enough that NCU processing delay
    // cannot move one across a refill boundary.
    for (Tick t = 1; t <= 91; t += 10) reqs.push_back({t, 2, 1, 5});
    Harness h(graph::make_path(3), opt, {{0, std::move(reqs)}});
    h.cluster.run();
    const cost::CallStats& s = h.agent(0).stats();
    // Primed with 1 token at the first arrival; one token accrues per 20
    // ticks: every other arrival finds an empty bucket.
    EXPECT_EQ(s.offered, 10u);
    EXPECT_EQ(s.shed, 5u);
    EXPECT_EQ(s.placed - s.retries, 5u);
    EXPECT_TRUE(fault::check_calls(h.cluster).ok());
}

TEST(CallAdmission, RecordCeilingSheds) {
    CallAgentOptions opt = hardened(8);
    opt.shed_above_records = 1;
    Harness h(graph::make_path(3), opt, {{0, {{1, 2, 1, 100}, {5, 2, 1, 100}}}});
    h.cluster.run();
    EXPECT_EQ(h.agent(0).stats().offered, 2u);
    EXPECT_EQ(h.agent(0).stats().shed, 1u);
    EXPECT_EQ(h.agent(0).stats().accepted, 1u);
}

TEST(CallAdmission, PressureBoardShedsWhileOverBudget) {
    auto board = std::make_shared<obs::PressureBoard>();
    CallAgentOptions opt = hardened(8);
    opt.pressure = board;
    Harness h(graph::make_path(3), opt, {{0, {{1, 2, 1, 40}, {30, 2, 1, 40}}}});
    // Node 0 is over its memory budget for the second arrival only.
    h.cluster.simulator().at(20, [&] { board->set(0, true); });
    h.cluster.simulator().at(60, [&] { board->set(0, false); });
    h.cluster.run();
    EXPECT_EQ(h.agent(0).stats().offered, 2u);
    EXPECT_EQ(h.agent(0).stats().shed, 1u);
    EXPECT_EQ(h.agent(0).stats().accepted, 1u);
}

// ---- crash-recovery incarnation ids ---------------------------------------

TEST(CallCrash, RestartResumesWorkloadUnderANewIncarnation) {
    // A generator node crashes mid-run and comes back: scripted
    // one-shots are gone for good, but the open-loop driver resumes, and
    // every post-restart call id carries the incarnation in its sequence
    // high bits — transit records from before the crash cannot collide.
    CallAgentOptions opt = hardened(4);
    opt.workload.arrivals = ArrivalProcess::kPoisson;
    opt.workload.mean_interarrival = 30.0;
    opt.workload.mean_hold = 40;
    opt.workload.until = 600;
    opt.retain_terminal = true;  // keep ids inspectable
    Harness h(graph::make_path(3), opt, {});
    h.cluster.simulator().at(200, [&h] { h.cluster.crash_node(0); });
    h.cluster.simulator().at(260, [&h] { h.cluster.restart_node(0); });
    h.cluster.run();
    bool saw_second_incarnation = false;
    for (const CallRecord& r : h.agent(0).call_records()) {
        if (r.source != 0) continue;  // node 0 also transits others' calls
        if (r.id.seq >> 24 == 1) saw_second_incarnation = true;
    }
    EXPECT_TRUE(saw_second_incarnation);
    EXPECT_GT(fold_call_stats(h.cluster).accepted, 0u);
    EXPECT_TRUE(fault::check_calls(h.cluster).ok())
        << fault::check_calls(h.cluster).summary();
}

// ---- open-loop workload ----------------------------------------------------

CallAgentOptions workload_opts(std::uint32_t capacity, double mean_gap, Tick until) {
    CallAgentOptions opt = hardened(capacity);
    opt.workload.arrivals = ArrivalProcess::kPoisson;
    opt.workload.mean_interarrival = mean_gap;
    opt.workload.holding = ArrivalProcess::kPoisson;
    opt.workload.mean_hold = 60;
    opt.workload.until = until;
    opt.retain_terminal = false;
    return opt;
}

TEST(CallWorkload, PoissonLoadDrainsCleanAndIsSeedDeterministic) {
    auto run_once = [] {
        Rng rng(3);
        Harness h(graph::make_random_connected(10, 2, 7, rng),
                  workload_opts(3, 40.0, 1500), {}, {}, /*seed=*/99);
        h.cluster.run();
        cost::CallStats s = fold_call_stats(h.cluster);
        EXPECT_GT(s.offered, 100u);
        EXPECT_GT(s.accepted, 0u);
        // Every offered call resolves exactly once at the door: shed,
        // finally blocked, or accepted — and every accepted call later
        // completes or fails (none still active: all holds are finite).
        EXPECT_EQ(s.offered, s.shed + s.blocked + s.accepted);
        EXPECT_EQ(s.accepted, s.completed + s.failed);
        EXPECT_TRUE(fault::check_calls(h.cluster).ok())
            << fault::check_calls(h.cluster).summary();
        return std::tuple{s.offered, s.accepted, s.blocked, s.shed,
                          s.setup_latency.quantile_bound(0.5)};
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(CallWorkload, OverloadRaisesBlockingButNeverLeaks) {
    // Offered load far beyond capacity: blocking must rise, the ledger
    // must still conserve, and everything drains at quiescence.
    Rng rng(5);
    Harness h(graph::make_random_connected(8, 2, 5, rng),
              workload_opts(1, 8.0, 1200), {}, {}, /*seed=*/17);
    h.cluster.run();
    const cost::CallStats s = fold_call_stats(h.cluster);
    EXPECT_GT(s.offered, 400u);
    EXPECT_GT(s.blocking_probability(), 0.10);
    EXPECT_EQ(h.total_reserved(), 0u);
    EXPECT_TRUE(fault::check_calls(h.cluster).ok())
        << fault::check_calls(h.cluster).summary();
}

TEST(CallWorkload, ParetoBurstsStayConserved) {
    CallAgentOptions opt = workload_opts(2, 30.0, 1000);
    opt.workload.arrivals = ArrivalProcess::kPareto;
    opt.workload.arrival_alpha = 1.5;
    Rng rng(9);
    Harness h(graph::make_random_connected(9, 2, 6, rng), opt, {}, {}, /*seed=*/5);
    h.cluster.run();
    const cost::CallStats s = fold_call_stats(h.cluster);
    EXPECT_GT(s.offered, 50u);
    EXPECT_TRUE(fault::check_calls(h.cluster).ok())
        << fault::check_calls(h.cluster).summary();
}

TEST(CallWorkload, RecycledSlotsKeepNoTerminalRecords) {
    // retain_terminal=false: resolved calls leave nothing behind — the
    // record population is bounded by concurrency, not call count.
    Rng rng(2);
    Harness h(graph::make_random_connected(8, 2, 5, rng),
              workload_opts(3, 25.0, 800), {}, {}, /*seed=*/31);
    h.cluster.run();
    EXPECT_GT(fold_call_stats(h.cluster).offered, 50u);
    for (NodeId u = 0; u < h.cluster.node_count(); ++u)
        EXPECT_TRUE(h.agent(u).call_records().empty()) << "node " << u;
}

}  // namespace
}  // namespace fastnet::paris
