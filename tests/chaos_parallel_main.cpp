// Seeded chaos sweep for the parallel event kernel (ChaosParallelSmoke).
//
// The sequential chaos gate (chaos_smoke_main.cpp) stresses the protocol
// stack; this one stresses the *kernel*: every seed's fault script runs
// through node::ParallelCluster — sharded mirrors, bounded windows,
// cross-shard outboxes — and is held against the same convergence
// oracle. The harness (scripts/chaos_parallel.sh) runs this binary at
// several (shards, threads) combinations and byte-diffs the JSON: the
// partitioned execution must produce the same completion times, cost
// counters and monitor verdicts as the single-shard run, at any worker
// parallelism. The tsan preset covers the same binary, so window-barrier
// races would surface here first.
//
// Chaos configs need a positive lookahead: hop delays here are >= 1
// (jittered [1, C] or fixed C), unlike the sequential chaos sweep's
// hop_delay_min = 0.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "exec/result.hpp"
#include "exec/sweep_runner.hpp"
#include "exec/thread_pool.hpp"
#include "fault/call_oracle.hpp"
#include "fault/injector.hpp"
#include "fault/oracle.hpp"
#include "graph/generators.hpp"
#include "node/parallel_cluster.hpp"
#include "obs/monitor.hpp"
#include "paris/call_setup.hpp"
#include "paris/workload.hpp"
#include "topo/topology_maintenance.hpp"

using namespace fastnet;

namespace {

graph::Graph shape_for(std::uint64_t seed) {
    switch (seed % 4) {
        case 0: return graph::make_cycle(12);
        case 1: return graph::make_grid(4, 4);
        case 2: {
            Rng g(seed * 131 + 7);
            return graph::make_random_connected(14, 2, 5, g);
        }
        default: {
            Rng g(seed * 131 + 7);
            return graph::make_random_connected(18, 3, 5, g);
        }
    }
}

}  // namespace

int main(int argc, char** argv) {
    unsigned threads = 0;
    unsigned shards = 1;
    unsigned seeds = 20;
    std::string out_path = "chaos_parallel.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
            shards = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
            seeds = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--shards N] [--threads N] [--seeds N] [--out FILE]\n"
                      << "  --threads 0 (default) uses min(shards, hardware)\n";
            return 2;
        }
    }

    std::vector<exec::CaseResult> rows;
    bool all_ok = true;

    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
        graph::Graph g = shape_for(seed);

        fault::FaultModel model;
        model.link_flaps = 4 + static_cast<unsigned>(seed % 5);
        model.node_crashes = 2 + static_cast<unsigned>(seed % 3);
        model.stalls = (seed % 3 == 0) ? 2 : 0;
        model.stall_max = 6;
        model.window_from = 50;
        model.window_to = 600;
        model.heal_at = 700;
        if (seed % 5 == 1) model.loss_ppm = 20'000;  // 2% per transmission
        if (seed % 5 == 2) model.dup_ppm = 20'000;
        fault::FaultInjector inj(model, seed);

        topo::TopologyOptions topo_opt;
        topo_opt.rounds = 30;
        topo_opt.period = 50;
        topo_opt.full_knowledge = (seed % 2 == 0);

        node::ParallelClusterConfig cfg;
        cfg.params.hop_delay = 2;
        cfg.params.ncu_delay = 2;
        cfg.ncu_delay_min = 1;
        cfg.seed = seed * 7919 + 1988;
        cfg.shards = shards;
        cfg.threads = threads;
        // Alternate delay models, both with positive lookahead: jittered
        // hop delays in [1, C] (window width 1) and fixed C (width 2).
        cfg.net.hop_delay_min = (seed % 2 == 0) ? 1 : -1;
        cfg.net.loss_ppm = model.loss_ppm;
        cfg.net.dup_ppm = model.dup_ppm;
        // A slice of seeds arms the hardware-discipline monitors
        // non-vacuously (same soundness conditions as the sequential
        // chaos sweep: exact A1 gap only with serialized fixed-P sends).
        if (seed % 7 == 3) {
            cfg.free_multisend = false;
            cfg.ncu_delay_min = -1;
        }
        if (seed % 7 == 4) cfg.net.link_spacing = cfg.params.ncu_delay;
        obs::StandardMonitorOptions mon;
        mon.link_spacing = cfg.net.link_spacing;
        if (!cfg.free_multisend && cfg.ncu_delay_min < 0)
            mon.min_send_gap = cfg.params.ncu_delay;
        cfg.monitor_setup = [mon](obs::MonitorHub& hub) {
            obs::add_standard_monitors(hub, mon);
        };

        node::ParallelCluster cluster(
            g, topo::make_topology_maintenance(g.node_count(), topo_opt), cfg);
        cluster.start_all(0);
        cluster.schedule(inj.compile(g));

        exec::CaseResult r;
        r.name = "pmaint/seed" + std::to_string(seed);
        r.index = rows.size();
        r.completion = cluster.run();

        const cost::Metrics m = cluster.merged_metrics();
        r.system_calls = m.total_message_system_calls();
        r.direct_messages = m.total_direct_messages();
        r.hops = m.net().hops;
        r.set("violations", static_cast<double>(cluster.violation_count()));

        const fault::OracleReport rep = fault::check_theorem1(cluster);
        r.ok = rep.ok() && cluster.monitors_ok();
        if (!rep.ok()) std::cerr << r.name << " oracle: " << rep.summary() << "\n";
        if (!cluster.monitors_ok())
            std::cerr << r.name << ": " << cluster.violation_count()
                      << " monitor violation(s)\n";
        all_ok = all_ok && r.ok;
        rows.push_back(std::move(r));
    }

    // --- call workload through the sharded kernel -----------------------
    // The same hardened call agents + open-loop workload as the
    // sequential chaos sweep, run through ParallelCluster: timeouts,
    // backoff retries, leases and refresh packets all cross shard
    // boundaries, and the CallOracle must still find every unit of
    // capacity accounted for at quiescence. Call counters fold into the
    // row so the cross-(shards, threads) byte-diff pins them too.
    const unsigned call_seeds = seeds >= 10 ? 10 : seeds;
    for (std::uint64_t seed = 0; seed < call_seeds; ++seed) {
        auto g = std::make_shared<graph::Graph>(shape_for(seed + 5));

        fault::FaultModel model;
        model.link_flaps = 3 + static_cast<unsigned>(seed % 3);
        model.node_crashes = 2;  // crash-mid-setup inside the arrival window
        model.window_from = 40;
        model.window_to = 700;
        model.heal_at = 800;
        if (seed % 2 == 0) model.loss_ppm = 20'000;
        if (seed % 4 == 1) model.dup_ppm = 20'000;
        fault::FaultInjector inj(model, seed ^ 0xca115ULL);

        paris::CallAgentOptions aopt;
        aopt.link_capacity = 3;
        aopt.setup_timeout = 24;
        aopt.max_retries = 3;
        aopt.retry_backoff = 8;
        aopt.retry_jitter = 4;
        aopt.reservation_ttl = 150;
        aopt.refresh_interval = 50;
        aopt.max_inflight = 4;
        aopt.workload.arrivals = (seed % 3 == 2) ? paris::ArrivalProcess::kPareto
                                                 : paris::ArrivalProcess::kPoisson;
        aopt.workload.mean_interarrival = 60;
        aopt.workload.mean_hold = 80;
        aopt.workload.first_at = 10;
        aopt.workload.until = 700;

        node::ParallelClusterConfig cfg;
        cfg.params.hop_delay = 2;
        cfg.params.ncu_delay = 2;
        cfg.ncu_delay_min = 1;
        cfg.seed = seed * 7919 + 1988;
        cfg.shards = shards;
        cfg.threads = threads;
        cfg.net.hop_delay_min = (seed % 2 == 0) ? 1 : -1;
        cfg.net.loss_ppm = model.loss_ppm;
        cfg.net.dup_ppm = model.dup_ppm;
        obs::StandardMonitorOptions mon;
        cfg.monitor_setup = [mon](obs::MonitorHub& hub) {
            obs::add_standard_monitors(hub, mon);
        };

        node::ParallelCluster cluster(*g, paris::make_call_workload(g, aopt), cfg);
        cluster.start_all(0);
        cluster.schedule(inj.compile(*g));

        exec::CaseResult r;
        r.name = "pcalls/seed" + std::to_string(seed);
        r.index = rows.size();
        r.completion = cluster.run();

        const cost::Metrics m = cluster.merged_metrics();
        r.system_calls = m.total_message_system_calls();
        r.direct_messages = m.total_direct_messages();
        r.hops = m.net().hops;
        const cost::CallStats s = paris::fold_call_stats(cluster);
        r.set("offered", static_cast<double>(s.offered));
        r.set("accepted", static_cast<double>(s.accepted));
        r.set("blocked", static_cast<double>(s.shed + s.blocked));
        r.set("retries", static_cast<double>(s.retries));
        r.set("reaped", static_cast<double>(s.reaped));
        r.set("violations", static_cast<double>(cluster.violation_count()));

        const fault::OracleReport calls = fault::check_calls(cluster);
        r.ok = calls.ok() && cluster.monitors_ok();
        if (!calls.ok()) std::cerr << r.name << " call oracle: " << calls.summary() << "\n";
        if (!cluster.monitors_ok())
            std::cerr << r.name << ": " << cluster.violation_count()
                      << " monitor violation(s)\n";
        all_ok = all_ok && r.ok;
        rows.push_back(std::move(r));
    }

    const std::string json = exec::sweep_json("chaos_parallel", 1988, rows);
    if (!exec::write_text_file(out_path, json)) {
        std::cerr << "cannot write " << out_path << "\n";
        return 2;
    }
    std::cout << "wrote " << out_path << " (" << rows.size() << " cases, shards="
              << shards << ", threads="
              << (threads == 0 ? exec::ThreadPool::hardware_threads() : threads)
              << ")\n";
    return all_ok ? 0 : 1;
}
