// Tests for the immutable Graph container.
#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "graph/graph.hpp"

namespace fastnet::graph {
namespace {

TEST(Graph, EmptyGraph) {
    Graph g;
    EXPECT_EQ(g.node_count(), 0u);
    EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Graph, AddEdgeBasics) {
    Graph g(3);
    const EdgeId e = g.add_edge(0, 1);
    EXPECT_EQ(e, 0u);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(1, 0));
    EXPECT_FALSE(g.has_edge(0, 2));
    EXPECT_EQ(g.edge_count(), 1u);
    EXPECT_EQ(g.degree(0), 1u);
    EXPECT_EQ(g.degree(2), 0u);
}

TEST(Graph, EdgeOtherEndpoint) {
    Graph g(2);
    g.add_edge(0, 1);
    EXPECT_EQ(g.edge(0).other(0), 1u);
    EXPECT_EQ(g.edge(0).other(1), 0u);
    EXPECT_THROW(g.edge(0).other(5), ContractViolation);
}

TEST(Graph, RejectsSelfLoop) {
    Graph g(2);
    EXPECT_THROW(g.add_edge(1, 1), ContractViolation);
}

TEST(Graph, RejectsParallelEdge) {
    Graph g(2);
    g.add_edge(0, 1);
    EXPECT_THROW(g.add_edge(0, 1), ContractViolation);
    EXPECT_THROW(g.add_edge(1, 0), ContractViolation);
}

TEST(Graph, RejectsOutOfRangeEndpoints) {
    Graph g(2);
    EXPECT_THROW(g.add_edge(0, 2), ContractViolation);
}

TEST(Graph, FindEdgeReturnsId) {
    Graph g(4);
    g.add_edge(0, 1);
    const EdgeId e = g.add_edge(2, 3);
    EXPECT_EQ(g.find_edge(2, 3), e);
    EXPECT_EQ(g.find_edge(3, 2), e);
    EXPECT_EQ(g.find_edge(0, 3), kNoEdge);
}

TEST(Graph, IncidentOrderIsInsertionOrder) {
    Graph g(4);
    g.add_edge(0, 2);
    g.add_edge(0, 1);
    g.add_edge(0, 3);
    const auto inc = g.incident(0);
    ASSERT_EQ(inc.size(), 3u);
    EXPECT_EQ(inc[0].neighbor, 2u);
    EXPECT_EQ(inc[1].neighbor, 1u);
    EXPECT_EQ(inc[2].neighbor, 3u);
}

TEST(Graph, NeighborsMatchesIncident) {
    Graph g(5);
    g.add_edge(1, 0);
    g.add_edge(1, 4);
    const auto nb = g.neighbors(1);
    ASSERT_EQ(nb.size(), 2u);
    EXPECT_EQ(nb[0], 0u);
    EXPECT_EQ(nb[1], 4u);
}

TEST(Graph, DegreeSumIsTwiceEdges) {
    Graph g(6);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    g.add_edge(3, 0);
    g.add_edge(4, 5);
    std::size_t sum = 0;
    for (NodeId u = 0; u < g.node_count(); ++u) sum += g.degree(u);
    EXPECT_EQ(sum, 2u * g.edge_count());
}

}  // namespace
}  // namespace fastnet::graph
