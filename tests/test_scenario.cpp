// Tests for the declarative Scenario scripts, including a chaos run of
// the full topology maintenance protocol under a random healed churn.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "node/scenario.hpp"
#include "topo/topology_maintenance.hpp"

namespace fastnet::node {
namespace {

struct Idle final : Protocol {};

TEST(Scenario, BuilderAccumulatesActions) {
    Scenario s;
    s.fail_link(10, 0).restore_link(20, 0).fail_node(30, 2).restore_node(40, 2).start(0, 1);
    EXPECT_EQ(s.size(), 5u);
    EXPECT_EQ(s.actions()[0].kind, ScenarioAction::Kind::kFailLink);
    EXPECT_EQ(s.actions()[4].kind, ScenarioAction::Kind::kStart);
}

TEST(Scenario, ApplyDrivesTheNetwork) {
    Cluster c(graph::make_path(3), [](NodeId) { return std::make_unique<Idle>(); });
    Scenario s;
    s.fail_link(5, 0).restore_link(9, 0).fail_node(12, 2);
    s.apply(c);
    c.run_until(6);
    EXPECT_FALSE(c.network().link_active(0));
    c.run_until(10);
    EXPECT_TRUE(c.network().link_active(0));
    c.run();
    EXPECT_FALSE(c.network().link_active(1));  // node 2's only link
}

TEST(Scenario, StartActionStartsProtocols) {
    Cluster c(graph::make_path(2), [](NodeId) { return std::make_unique<Idle>(); });
    Scenario s;
    s.start(4, 0).start(7, 1);
    s.apply(c);
    c.run();
    EXPECT_EQ(c.metrics().node(0).starts, 1u);
    EXPECT_EQ(c.metrics().node(1).starts, 1u);
}

TEST(Scenario, RandomChurnRespectsProtectedEdges) {
    Rng rng(4);
    const graph::Graph g = graph::make_cycle(8);
    const std::vector<EdgeId> protect{0, 1, 2};
    const Scenario s = Scenario::random_churn(g, 50, 10, 100, rng, protect);
    EXPECT_EQ(s.size(), 50u);
    for (const auto& a : s.actions()) {
        EXPECT_GE(a.at, 10);
        EXPECT_LE(a.at, 100);
        EXPECT_TRUE(std::find(protect.begin(), protect.end(), a.edge) == protect.end());
    }
}

TEST(Scenario, HealAllRestoresEveryFailedLink) {
    Scenario s;
    s.fail_link(10, 3).fail_link(20, 5).restore_link(30, 3).fail_link(40, 7);
    s.heal_all(100);
    // 3 was restored already; 5 and 7 get healing restores.
    unsigned heals = 0;
    for (const auto& a : s.actions())
        if (a.at == 100 && a.kind == ScenarioAction::Kind::kRestoreLink) {
            ++heals;
            EXPECT_TRUE(a.edge == 5 || a.edge == 7);
        }
    EXPECT_EQ(heals, 2u);
}

TEST(Scenario, HealAllUsesTimeOrderNotInsertionOrder) {
    Scenario s;
    // Inserted out of order: the restore at t=50 comes *after* the fail
    // at t=10 in simulated time, so edge 1 ends up healthy.
    s.restore_link(50, 1);
    s.fail_link(10, 1);
    s.heal_all(100);
    for (const auto& a : s.actions()) EXPECT_NE(a.at, 100);
}

TEST(Scenario, RandomChurnSameSeedSameActions) {
    const graph::Graph g = graph::make_grid(4, 4);
    Rng a(31), b(31);
    const Scenario s1 = Scenario::random_churn(g, 40, 5, 200, a, {2, 3});
    const Scenario s2 = Scenario::random_churn(g, 40, 5, 200, b, {2, 3});
    ASSERT_EQ(s1.size(), s2.size());
    for (std::size_t i = 0; i < s1.size(); ++i) {
        EXPECT_EQ(s1.actions()[i].at, s2.actions()[i].at);
        EXPECT_EQ(s1.actions()[i].kind, s2.actions()[i].kind);
        EXPECT_EQ(s1.actions()[i].edge, s2.actions()[i].edge);
    }
    // And a different seed actually changes the script.
    Rng c(32);
    const Scenario s3 = Scenario::random_churn(g, 40, 5, 200, c, {2, 3});
    bool differs = false;
    for (std::size_t i = 0; i < s1.size(); ++i)
        differs |= s1.actions()[i].at != s3.actions()[i].at ||
                   s1.actions()[i].edge != s3.actions()[i].edge ||
                   s1.actions()[i].kind != s3.actions()[i].kind;
    EXPECT_TRUE(differs);
}

TEST(Scenario, RandomChurnHealedLeavesEveryLinkActive) {
    // The property heal_all guarantees, checked against the network truth
    // (not just the action list): after apply + run, every link is up,
    // protected links included (they were never touched at all).
    const graph::Graph g = graph::make_cycle(10);
    const std::vector<EdgeId> protect{0, 4};
    Rng chaos(91);
    Scenario s = Scenario::random_churn(g, 30, 10, 400, chaos, protect);
    s.heal_all(450);
    Cluster c(g, [](NodeId) { return std::make_unique<Idle>(); });
    s.apply(c);
    c.run();
    for (EdgeId e = 0; e < g.edge_count(); ++e)
        EXPECT_TRUE(c.network().link_active(e)) << "edge " << e;
}

TEST(Scenario, HealAllIsIdempotent) {
    Rng chaos(17);
    const graph::Graph g = graph::make_cycle(6);
    Scenario s = Scenario::random_churn(g, 12, 0, 100, chaos);
    s.heal_all(200);
    const std::size_t after_first = s.size();
    // Every link's last action is now a restore, so a second heal pass
    // must add nothing.
    s.heal_all(300);
    EXPECT_EQ(s.size(), after_first);
}

TEST(Scenario, RandomChurnThrowsWhenEveryEdgeIsProtected) {
    // Regression: this used to rejection-sample forever. An impossible
    // request must fail loudly instead of hanging the harness.
    Rng rng(1);
    const graph::Graph g = graph::make_path(3);  // edges 0, 1
    EXPECT_THROW(Scenario::random_churn(g, 5, 0, 100, rng, {0, 1}), ContractViolation);
    ChurnSpec spec;
    spec.node_events = 5;
    spec.to = 100;
    spec.protect_nodes = {0, 1, 2};
    EXPECT_THROW(Scenario::random_churn(g, spec, rng), ContractViolation);
}

TEST(Scenario, ChurnSpecNodeEventsAreCrashRestartAndRespectProtection) {
    Rng rng(23);
    const graph::Graph g = graph::make_cycle(8);
    ChurnSpec spec;
    spec.node_events = 40;
    spec.from = 10;
    spec.to = 300;
    spec.protect_nodes = {0, 5};
    const Scenario s = Scenario::random_churn(g, spec, rng);
    EXPECT_EQ(s.size(), 40u);
    bool saw_crash = false;
    bool saw_restart = false;
    for (const auto& a : s.actions()) {
        ASSERT_TRUE(a.kind == ScenarioAction::Kind::kCrashNode ||
                    a.kind == ScenarioAction::Kind::kRestartNode);
        saw_crash |= a.kind == ScenarioAction::Kind::kCrashNode;
        saw_restart |= a.kind == ScenarioAction::Kind::kRestartNode;
        EXPECT_NE(a.node, NodeId{0});
        EXPECT_NE(a.node, NodeId{5});
        EXPECT_GE(a.at, 10);
        EXPECT_LE(a.at, 300);
    }
    EXPECT_TRUE(saw_crash);
    EXPECT_TRUE(saw_restart);
}

TEST(Scenario, ChurnSpecSoftModeEmitsLinkLayerNodeEvents) {
    Rng rng(7);
    const graph::Graph g = graph::make_cycle(6);
    ChurnSpec spec;
    spec.node_events = 12;
    spec.to = 100;
    spec.crash_nodes = false;
    const Scenario s = Scenario::random_churn(g, spec, rng);
    for (const auto& a : s.actions())
        ASSERT_TRUE(a.kind == ScenarioAction::Kind::kFailNode ||
                    a.kind == ScenarioAction::Kind::kRestoreNode);
}

TEST(Scenario, LastActionAt) {
    EXPECT_EQ(Scenario().last_action_at(), 0);
    Scenario s;
    s.fail_link(120, 0).crash_node(40, 1).stall_node(80, 2, 5);
    EXPECT_EQ(s.last_action_at(), 120);
}

TEST(Scenario, HealAllCoversNodesAndStalls) {
    Scenario s;
    s.fail_node(10, 1)        // left failed -> needs restore
        .crash_node(20, 2)    // left crashed -> needs restart
        .crash_node(30, 3)
        .restart_node(40, 3)  // already recovered -> nothing to add
        .stall_node(50, 4, 9) // left stalled -> needs a stall-clear
        .stall_node(60, 5, 9)
        .stall_node(70, 5, 0);  // already cleared -> nothing to add
    s.heal_all(100);
    unsigned restores = 0, restarts = 0, clears = 0;
    for (const auto& a : s.actions()) {
        if (a.at != 100) continue;
        switch (a.kind) {
            case ScenarioAction::Kind::kRestoreNode:
                ++restores;
                EXPECT_EQ(a.node, NodeId{1});
                break;
            case ScenarioAction::Kind::kRestartNode:
                ++restarts;
                EXPECT_EQ(a.node, NodeId{2});
                break;
            case ScenarioAction::Kind::kStallNode:
                ++clears;
                EXPECT_EQ(a.node, NodeId{4});
                EXPECT_EQ(a.amount, 0);
                break;
            default:
                ADD_FAILURE() << "unexpected heal action kind";
        }
    }
    EXPECT_EQ(restores, 1u);
    EXPECT_EQ(restarts, 1u);
    EXPECT_EQ(clears, 1u);
}

TEST(Scenario, NodeChurnHealedLeavesEveryNodeLive) {
    // heal_all's node guarantee against the cluster truth: after a healed
    // crash/restart churn nothing is left crashed, failed or stalled.
    const graph::Graph g = graph::make_cycle(8);
    ChurnSpec spec;
    spec.link_events = 10;
    spec.node_events = 14;
    spec.from = 10;
    spec.to = 400;
    Rng chaos(41);
    Scenario s = Scenario::random_churn(g, spec, chaos);
    s.heal_all(450);
    Cluster c(g, [](NodeId) { return std::make_unique<Idle>(); });
    s.apply(c);
    c.run();
    for (NodeId u = 0; u < g.node_count(); ++u) {
        EXPECT_FALSE(c.crashed(u)) << "node " << u;
        EXPECT_FALSE(c.network().node_failed(u)) << "node " << u;
    }
    for (EdgeId e = 0; e < g.edge_count(); ++e)
        EXPECT_TRUE(c.network().link_active(e)) << "edge " << e;
}

TEST(Scenario, ChaosChurnThenHealConvergesMaintenance) {
    // End-to-end chaos test: random churn over a ring, healed at t=600,
    // maintenance keeps broadcasting — Theorem 1 requires convergence.
    Rng rng(11);
    const graph::Graph g = graph::make_cycle(12);
    topo::TopologyOptions opt;
    opt.rounds = 24;
    opt.period = 50;
    Cluster c(g, topo::make_topology_maintenance(g.node_count(), opt));
    c.start_all(0);
    Rng chaos(77);
    Scenario s = Scenario::random_churn(g, 25, 20, 550, chaos);
    s.heal_all(600);
    s.apply(c);
    c.run();
    EXPECT_TRUE(topo::all_views_converged(c));
    for (EdgeId e = 0; e < g.edge_count(); ++e) EXPECT_TRUE(c.network().link_active(e));
}

}  // namespace
}  // namespace fastnet::node
