// Tests for the observational trace facility and its wiring through the
// cluster / network / runtime.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "node/cluster.hpp"
#include "sim/trace.hpp"
#include "topo/broadcast_protocols.hpp"

namespace fastnet::sim {
namespace {

TEST(Trace, RecordsInOrder) {
    Trace t;
    t.record(5, 0, TraceKind::kStart);
    t.record_detail(7, 1, TraceKind::kDeliver, "x", {.a = 3});
    const auto snap = t.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].at, 5);
    EXPECT_EQ(snap[1].detail, "x");
    EXPECT_EQ(snap[1].a, 3u);
}

TEST(Trace, TypedArgsRoundTrip) {
    Trace t;
    t.record(9, 4, TraceKind::kDrop,
             {.lineage = 17, .a = 2, .b = 0,
              .flag = static_cast<std::uint8_t>(DropReason::kStaleEpoch)});
    const auto snap = t.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].lineage, 17u);
    EXPECT_EQ(snap[0].a, 2u);
    EXPECT_EQ(static_cast<DropReason>(snap[0].flag), DropReason::kStaleEpoch);
    EXPECT_TRUE(snap[0].detail.empty());
}

TEST(Trace, RingDiscardsOldest) {
    Trace t(3);
    for (std::uint64_t i = 0; i < 5; ++i)
        t.record(static_cast<Tick>(i), 0, TraceKind::kCustom, {.a = i});
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t.total_recorded(), 5u);
    EXPECT_EQ(t.dropped(), 2u);
    const auto snap = t.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].a, 2u);
    EXPECT_EQ(snap[2].a, 4u);
}

TEST(Trace, DroppedAccountingAcrossManyWraps) {
    Trace t(4);
    const std::uint64_t total = 4 * 7 + 3;  // several full wraps + a partial one
    for (std::uint64_t i = 0; i < total; ++i)
        t.record(static_cast<Tick>(i), 0, TraceKind::kCustom, {.a = i});
    EXPECT_EQ(t.total_recorded(), total);
    EXPECT_EQ(t.dropped(), total - 4);
    EXPECT_EQ(t.size(), 4u);
    const auto snap = t.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    // Survivors are exactly the newest `capacity` records, oldest first.
    for (std::size_t i = 0; i < snap.size(); ++i) {
        EXPECT_EQ(snap[i].a, total - 4 + i);
        EXPECT_EQ(snap[i].at, static_cast<Tick>(total - 4 + i));
    }
}

TEST(Trace, PerNodeSnapshotAcrossWrap) {
    Trace t(4);
    // Alternate nodes 0/1; by the end only records 6..9 survive.
    for (std::uint64_t i = 0; i < 10; ++i)
        t.record(static_cast<Tick>(i), static_cast<NodeId>(i % 2), TraceKind::kCustom,
                 {.a = i});
    const auto n0 = t.snapshot(0);
    const auto n1 = t.snapshot(1);
    ASSERT_EQ(n0.size(), 2u);
    ASSERT_EQ(n1.size(), 2u);
    EXPECT_EQ(n0[0].a, 6u);
    EXPECT_EQ(n0[1].a, 8u);
    EXPECT_EQ(n1[0].a, 7u);
    EXPECT_EQ(n1[1].a, 9u);
    EXPECT_TRUE(t.snapshot(9).empty());
}

TEST(Trace, KindFilteringVsTotalRecorded) {
    Trace t;
    t.set_enabled(TraceKind::kSend, false);
    t.record(1, 0, TraceKind::kSend);
    t.record(2, 0, TraceKind::kDeliver);
    // A filtered-out record never reaches the ring: it counts neither as
    // recorded nor as dropped.
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.total_recorded(), 1u);
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_FALSE(t.enabled(TraceKind::kSend));
    EXPECT_TRUE(t.enabled(TraceKind::kDeliver));
    EXPECT_EQ(t.snapshot()[0].kind, TraceKind::kDeliver);
    t.set_enabled(TraceKind::kSend, true);
    t.record(3, 0, TraceKind::kSend);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.total_recorded(), 2u);
}

TEST(Trace, DisableAllSilencesEverything) {
    Trace t;
    t.disable_all();
    for (unsigned k = 0; k < kTraceKindCount; ++k) {
        EXPECT_FALSE(t.enabled(static_cast<TraceKind>(k)));
        t.record(1, 0, static_cast<TraceKind>(k));
    }
    EXPECT_EQ(t.total_recorded(), 0u);
    t.enable_all();
    for (unsigned k = 0; k < kTraceKindCount; ++k)
        EXPECT_TRUE(t.enabled(static_cast<TraceKind>(k)));
}

TEST(Trace, DetailArenaBoundsAndDropCounter) {
    Trace t(16, /*detail_capacity=*/8);
    t.record_detail(1, 0, TraceKind::kCustom, "abcd");
    t.record_detail(2, 0, TraceKind::kCustom, "efgh");
    // Arena full: the record still lands, the detail is dropped.
    t.record_detail(3, 0, TraceKind::kCustom, "ijkl");
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t.detail_dropped(), 1u);
    const auto snap = t.snapshot();
    EXPECT_EQ(snap[0].detail, "abcd");
    EXPECT_EQ(snap[1].detail, "efgh");
    EXPECT_TRUE(snap[2].detail.empty());
}

TEST(Trace, ClearResets) {
    Trace t;
    t.record_detail(1, 0, TraceKind::kStart, "d");
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.total_recorded(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_EQ(t.detail_dropped(), 0u);
}

TEST(Trace, PrintIsHumanReadable) {
    Trace t;
    t.record(4, 2, TraceKind::kDeliver, {.lineage = 5, .a = 3, .b = 10});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("[t=4] node 2 deliver lin=5 hops=3 busy=10"),
              std::string::npos);
}

TEST(Trace, FormatRecordCoversKinds) {
    TraceRecord drop;
    drop.at = 7;
    drop.node = kNoNode;
    drop.kind = TraceKind::kDrop;
    drop.lineage = 3;
    drop.a = 2;
    drop.flag = static_cast<std::uint8_t>(DropReason::kInactiveLink);
    EXPECT_EQ(format_record(drop), "[t=7] net drop lin=3 edge=2 reason=inactive_link");

    TraceRecord phase;
    phase.at = 100;
    phase.node = kNoNode;
    phase.kind = TraceKind::kPhase;
    phase.a = 2;
    EXPECT_EQ(format_record(phase), "[t=100] net phase phase=2");
}

TEST(Trace, KindNamesRoundTrip) {
    EXPECT_STREQ(trace_kind_name(TraceKind::kStart), "start");
    EXPECT_STREQ(trace_kind_name(TraceKind::kDrop), "drop");
    for (unsigned k = 0; k < kTraceKindCount; ++k) {
        TraceKind parsed;
        ASSERT_TRUE(trace_kind_from_name(trace_kind_name(static_cast<TraceKind>(k)), parsed));
        EXPECT_EQ(parsed, static_cast<TraceKind>(k));
    }
    TraceKind parsed;
    EXPECT_FALSE(trace_kind_from_name("no_such_kind", parsed));
}

TEST(TraceWiring, ClusterRecordsProtocolLifecycle) {
    auto trace = std::make_shared<Trace>();
    node::ClusterConfig cfg;
    cfg.trace = trace;
    const graph::Graph g = graph::make_path(4);
    node::Cluster c(g, [&g](NodeId) {
        return std::make_unique<topo::BroadcastProtocol>(
            g, topo::BroadcastScheme::kBranchingPaths);
    }, cfg);
    c.start(0, 0);
    c.run();
    unsigned starts = 0, sends = 0, delivers = 0;
    for (const auto& r : trace->snapshot()) {
        if (r.kind == TraceKind::kStart) ++starts;
        if (r.kind == TraceKind::kSend) ++sends;
        if (r.kind == TraceKind::kDeliver) ++delivers;
    }
    EXPECT_EQ(starts, 1u);
    EXPECT_EQ(sends, 1u);     // a path broadcast is a single message
    EXPECT_EQ(delivers, 3u);  // n-1 receptions
}

TEST(TraceWiring, DropsAreRecordedWithReason) {
    auto trace = std::make_shared<Trace>();
    node::ClusterConfig cfg;
    cfg.trace = trace;
    const graph::Graph g = graph::make_path(3);
    node::Cluster c(g, [&g](NodeId) {
        return std::make_unique<topo::BroadcastProtocol>(
            g, topo::BroadcastScheme::kBranchingPaths);
    }, cfg);
    c.network().fail_link(1);  // edge (1,2)
    c.start(0, 1);
    c.run();
    bool saw_drop = false;
    for (const auto& r : trace->snapshot()) {
        if (r.kind != TraceKind::kDrop) continue;
        saw_drop = true;
        EXPECT_NE(static_cast<DropReason>(r.flag), DropReason::kNone);
        EXPECT_NE(r.lineage, 0u);
    }
    EXPECT_TRUE(saw_drop);
}

TEST(TraceWiring, PhaseMarkerLandsInTrace) {
    auto trace = std::make_shared<Trace>();
    node::ClusterConfig cfg;
    cfg.trace = trace;
    const graph::Graph g = graph::make_path(3);
    node::Cluster c(g, [&g](NodeId) {
        return std::make_unique<topo::BroadcastProtocol>(
            g, topo::BroadcastScheme::kBranchingPaths);
    }, cfg);
    c.mark_phase(5, 2);
    c.start(0, 0);
    c.run();
    bool saw_phase = false;
    for (const auto& r : trace->snapshot()) {
        if (r.kind == TraceKind::kPhase) {
            saw_phase = true;
            EXPECT_EQ(r.node, kNoNode);
            EXPECT_EQ(r.a, 2u);
            EXPECT_EQ(r.at, 5);
        }
    }
    EXPECT_TRUE(saw_phase);
    EXPECT_EQ(c.metrics().phase(), 2u);
}

}  // namespace
}  // namespace fastnet::sim
