// Tests for the observational trace facility and its wiring through the
// cluster / network / runtime.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "node/cluster.hpp"
#include "sim/trace.hpp"
#include "topo/broadcast_protocols.hpp"

namespace fastnet::sim {
namespace {

TEST(Trace, RecordsInOrder) {
    Trace t;
    t.record(5, 0, TraceKind::kStart);
    t.record(7, 1, TraceKind::kDeliver, "x");
    const auto snap = t.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].at, 5);
    EXPECT_EQ(snap[1].detail, "x");
}

TEST(Trace, RingDiscardsOldest) {
    Trace t(3);
    for (int i = 0; i < 5; ++i) t.record(i, 0, TraceKind::kCustom, std::to_string(i));
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t.total_recorded(), 5u);
    EXPECT_EQ(t.dropped(), 2u);
    const auto snap = t.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].detail, "2");
    EXPECT_EQ(snap[2].detail, "4");
}

TEST(Trace, KindFiltering) {
    Trace t;
    t.set_enabled(TraceKind::kSend, false);
    t.record(1, 0, TraceKind::kSend);
    t.record(2, 0, TraceKind::kDeliver);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.snapshot()[0].kind, TraceKind::kDeliver);
    t.set_enabled(TraceKind::kSend, true);
    t.record(3, 0, TraceKind::kSend);
    EXPECT_EQ(t.size(), 2u);
}

TEST(Trace, PerNodeSnapshot) {
    Trace t;
    t.record(1, 0, TraceKind::kStart);
    t.record(2, 1, TraceKind::kStart);
    t.record(3, 0, TraceKind::kDeliver);
    EXPECT_EQ(t.snapshot(0).size(), 2u);
    EXPECT_EQ(t.snapshot(1).size(), 1u);
    EXPECT_TRUE(t.snapshot(9).empty());
}

TEST(Trace, ClearResets) {
    Trace t;
    t.record(1, 0, TraceKind::kStart);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.total_recorded(), 0u);
}

TEST(Trace, PrintIsHumanReadable) {
    Trace t;
    t.record(4, 2, TraceKind::kDeliver, "hops=3");
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("[t=4] node 2 deliver: hops=3"), std::string::npos);
}

TEST(Trace, KindNamesAreDistinct) {
    EXPECT_STREQ(trace_kind_name(TraceKind::kStart), "start");
    EXPECT_STREQ(trace_kind_name(TraceKind::kDrop), "drop");
}

TEST(TraceWiring, ClusterRecordsProtocolLifecycle) {
    auto trace = std::make_shared<Trace>();
    node::ClusterConfig cfg;
    cfg.trace = trace;
    const graph::Graph g = graph::make_path(4);
    node::Cluster c(g, [&g](NodeId) {
        return std::make_unique<topo::BroadcastProtocol>(
            g, topo::BroadcastScheme::kBranchingPaths);
    }, cfg);
    c.start(0, 0);
    c.run();
    unsigned starts = 0, sends = 0, delivers = 0;
    for (const auto& r : trace->snapshot()) {
        if (r.kind == TraceKind::kStart) ++starts;
        if (r.kind == TraceKind::kSend) ++sends;
        if (r.kind == TraceKind::kDeliver) ++delivers;
    }
    EXPECT_EQ(starts, 1u);
    EXPECT_EQ(sends, 1u);     // a path broadcast is a single message
    EXPECT_EQ(delivers, 3u);  // n-1 receptions
}

TEST(TraceWiring, DropsAreRecorded) {
    auto trace = std::make_shared<Trace>();
    node::ClusterConfig cfg;
    cfg.trace = trace;
    const graph::Graph g = graph::make_path(3);
    node::Cluster c(g, [&g](NodeId) {
        return std::make_unique<topo::BroadcastProtocol>(
            g, topo::BroadcastScheme::kBranchingPaths);
    }, cfg);
    c.network().fail_link(1);  // edge (1,2)
    c.start(0, 1);
    c.run();
    bool saw_drop = false;
    for (const auto& r : trace->snapshot())
        if (r.kind == TraceKind::kDrop) saw_drop = true;
    EXPECT_TRUE(saw_drop);
}

}  // namespace
}  // namespace fastnet::sim
