// TraceSpillSmoke harness: byte-identity of the spilled trace path.
//
// Runs one chaos scenario (hardened call agents + fault injection:
// crashes, restarts, link flaps, loss) through node::ParallelCluster
// twice — once with the trace fully resident, once spilling to disk
// under a deliberately tight resident budget — and asserts in-process
// that the streamed spill exports (obs/spill_query.hpp) are
// byte-identical to the in-memory merged exports, that the lineage
// index sidecar reproduces obs::lineage_ancestry exactly, and that a
// crash-truncated spill file (a run killed mid-segment) still opens,
// reports itself recovered, and merges every complete segment.
//
// scripts/trace_spill_smoke.sh runs this binary across a
// (shards x threads) grid, byte-diffs the written exports across the
// grid, and drives fastnet_trace over the spill directory.
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "exec/result.hpp"
#include "fault/injector.hpp"
#include "graph/generators.hpp"
#include "node/parallel_cluster.hpp"
#include "obs/metrics_export.hpp"
#include "obs/monitor.hpp"
#include "obs/spill_query.hpp"
#include "obs/trace_export.hpp"
#include "obs/trace_query.hpp"
#include "paris/call_setup.hpp"
#include "paris/workload.hpp"
#include "sim/trace_spill.hpp"

using namespace fastnet;

namespace {

constexpr std::uint64_t kSeed = 2;

graph::Graph make_shape() {
    Rng g(kSeed * 131 + 7);
    return graph::make_random_connected(14, 2, 5, g);
}

struct RunOutput {
    Tick completion = 0;
    std::string canonical;
    std::string chrome;
    std::string metrics;
    std::string critical_path;  ///< format_critical_path of the run.
    std::uint64_t total_recorded = 0;
    std::vector<sim::TraceRecord> records;  ///< In-memory run only.
};

/// The pcalls/seed2 scenario of the parallel chaos sweep: call setup
/// with retries and leases under crash/restart churn — every record
/// kind the exporters know shows up, including kCallEvent for the CLI's
/// --calls and kCrash/kRestart for --reconvergence.
RunOutput run_case(unsigned shards, unsigned threads, const std::string& spill_dir,
                   std::size_t budget_bytes) {
    auto g = std::make_shared<graph::Graph>(make_shape());

    fault::FaultModel model;
    model.link_flaps = 3;
    model.node_crashes = 2;
    model.window_from = 40;
    model.window_to = 700;
    model.heal_at = 800;
    model.loss_ppm = 20'000;
    fault::FaultInjector inj(model, kSeed ^ 0xca115ULL);

    paris::CallAgentOptions aopt;
    aopt.link_capacity = 3;
    aopt.setup_timeout = 24;
    aopt.max_retries = 3;
    aopt.retry_backoff = 8;
    aopt.retry_jitter = 4;
    aopt.reservation_ttl = 150;
    aopt.refresh_interval = 50;
    aopt.max_inflight = 4;
    aopt.workload.arrivals = paris::ArrivalProcess::kPoisson;
    aopt.workload.mean_interarrival = 60;
    aopt.workload.mean_hold = 80;
    aopt.workload.first_at = 10;
    aopt.workload.until = 700;

    node::ParallelClusterConfig cfg;
    cfg.params.hop_delay = 2;
    cfg.params.ncu_delay = 2;
    cfg.ncu_delay_min = 1;
    cfg.seed = kSeed * 7919 + 1988;
    cfg.shards = shards;
    cfg.threads = threads;
    cfg.net.hop_delay_min = 1;
    cfg.net.loss_ppm = model.loss_ppm;
    cfg.monitor_setup = [](obs::MonitorHub& hub) { obs::add_standard_monitors(hub); };
    if (spill_dir.empty()) {
        // Resident reference: a ring that cannot wrap for this workload.
        cfg.trace_capacity = std::size_t{1} << 20;
        cfg.trace_detail_capacity = std::size_t{1} << 20;
    } else {
        // Spilled run: a tiny ring and a binding resident budget, so the
        // merge has many segments per shard to interleave.
        cfg.trace_capacity = 512;
        cfg.trace_detail_capacity = 4096;
        cfg.trace_spill_dir = spill_dir;
        cfg.trace_budget_bytes = budget_bytes;
    }

    node::ParallelCluster cluster(*g, paris::make_call_workload(g, aopt), cfg);
    cluster.start_all(0);
    cluster.schedule(inj.compile(*g));

    RunOutput out;
    out.completion = cluster.run();
    out.total_recorded = cluster.trace_total_recorded();

    const obs::ExportMeta meta = obs::make_meta(*g, "spill_smoke");
    if (spill_dir.empty()) {
        FASTNET_ENSURES_MSG(cluster.trace_dropped() == 0,
                            "reference ring overflowed; grow trace_capacity");
        FASTNET_ENSURES_MSG(cluster.trace_detail_dropped() == 0,
                            "reference detail arena overflowed");
        out.records = cluster.merged_trace();
        out.canonical = obs::canonical_trace_json(out.records, meta, out.total_recorded,
                                                  0, 0);
        out.chrome = obs::chrome_trace_json(out.records, meta);
        // Price the run's latency: in-memory engine here, streaming
        // spill engine in the other branch — main() byte-diffs the two.
        const obs::CriticalPathReport cp = obs::critical_path(out.records);
        out.critical_path = obs::format_critical_path(cp);
        cost::Metrics metrics = cluster.merged_metrics();
        metrics.set_critical_path(obs::to_path_stats(cp));
        out.metrics = obs::metrics_json(metrics, "spill_smoke");
    } else {
        FASTNET_ENSURES_MSG(cluster.trace_spilled_records() == out.total_recorded,
                            "spill lost records");
        FASTNET_ENSURES_MSG(cluster.trace_resident_bytes_peak() <= budget_bytes,
                            "resident trace bytes exceeded the budget");
        std::string error;
        const std::vector<std::string> files = sim::spill_files(spill_dir, &error);
        FASTNET_ENSURES_MSG(files.size() == shards, "one spill file per shard expected");
        std::ostringstream canonical, chrome;
        FASTNET_ENSURES_MSG(obs::spill_canonical_json(files, meta, canonical, &error),
                            "spill canonical export failed");
        FASTNET_ENSURES_MSG(obs::spill_chrome_json(files, meta, chrome, &error),
                            "spill chrome export failed");
        out.canonical = canonical.str();
        out.chrome = chrome.str();
        obs::CriticalPathReport cp;
        FASTNET_ENSURES_MSG(obs::spill_critical_path(files, {}, cp, &error),
                            "spill critical-path pass failed");
        out.critical_path = obs::format_critical_path(cp);
        cost::Metrics metrics = cluster.merged_metrics();
        metrics.set_critical_path(obs::to_path_stats(cp));
        out.metrics = obs::metrics_json(metrics, "spill_smoke");
    }
    return out;
}

/// Simulates a run killed mid-write: cuts a finished spill file inside
/// its second segment and checks the reader's recovery contract.
void check_crash_recovery(const std::string& spill_file, const std::string& crash_copy) {
    sim::SpillFile full;
    std::string error;
    FASTNET_ENSURES_MSG(full.open(spill_file, &error), "cannot reopen spill file");
    FASTNET_ENSURES_MSG(full.segments().size() >= 2,
                        "need >= 2 segments to cut one in half");
    FASTNET_ENSURES_MSG(!full.truncated(), "finished file must not read as truncated");

    std::ifstream in(spill_file, std::ios::binary);
    std::ostringstream all;
    all << in.rdbuf();
    const std::string bytes = all.str();
    // Cut inside the second segment's record stream: past its header,
    // short of its payload.
    const sim::SpillFile::Segment& second = full.segments()[1];
    const std::size_t cut = static_cast<std::size_t>(second.offset) + 16 +
                            static_cast<std::size_t>(second.payload_bytes) / 2;
    FASTNET_EXPECTS(cut < bytes.size());
    std::ofstream outf(crash_copy, std::ios::binary | std::ios::trunc);
    outf.write(bytes.data(), static_cast<std::streamsize>(cut));
    outf.close();

    sim::SpillFile crashed;
    FASTNET_ENSURES_MSG(crashed.open(crash_copy, &error),
                        "truncated spill file must still open");
    FASTNET_ENSURES_MSG(crashed.truncated(), "cut file must report recovery");
    FASTNET_ENSURES_MSG(crashed.segments().size() == 1,
                        "partial segment must be discarded");
    FASTNET_ENSURES_MSG(crashed.stats().recovered, "stats must be rebuilt");

    // The surviving segments still merge and stream.
    sim::SpillMerge merge;
    FASTNET_ENSURES_MSG(merge.open({crash_copy}, &error), "crash copy must merge");
    std::uint64_t n = 0;
    for (sim::TraceRecord r; merge.next(r);) ++n;
    FASTNET_ENSURES_MSG(n == crashed.segments()[0].records,
                        "crash copy must stream its complete segment");
}

bool write_file(const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
    unsigned shards = 1, threads = 1;
    std::string dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
            shards = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
            dir = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0] << " --dir OUT [--shards N] [--threads N]\n"
                      << "  --threads 0 uses min(shards, hardware)\n";
            return 2;
        }
    }
    if (dir.empty()) {
        std::cerr << "--dir is required\n";
        return 2;
    }
    std::filesystem::create_directories(dir);
    const std::string spill_dir = dir + "/spill";

    const RunOutput resident = run_case(shards, threads, "", 0);
    const RunOutput spilled = run_case(shards, threads, spill_dir, 16 * 1024);

    // The tentpole contract: the spilled run's streamed exports are the
    // in-memory run's exports, byte for byte.
    FASTNET_ENSURES_MSG(resident.completion == spilled.completion,
                        "spill changed the simulation");
    FASTNET_ENSURES_MSG(resident.canonical == spilled.canonical,
                        "canonical export differs between resident and spilled runs");
    FASTNET_ENSURES_MSG(resident.chrome == spilled.chrome,
                        "chrome export differs between resident and spilled runs");
    FASTNET_ENSURES_MSG(resident.critical_path == spilled.critical_path,
                        "critical-path report differs between the in-memory engine "
                        "and the streaming spill engine");

    // Lineage index sidecar == the in-memory ancestry relation.
    std::string error;
    const std::vector<std::string> files = sim::spill_files(spill_dir, &error);
    obs::LineageIndex idx;
    FASTNET_ENSURES_MSG(idx.build(files, &error), "lineage index build failed");
    FASTNET_ENSURES_MSG(idx.save(obs::lineage_index_path(spill_dir), &error),
                        "lineage index save failed");
    obs::LineageIndex loaded;
    FASTNET_ENSURES_MSG(loaded.load(obs::lineage_index_path(spill_dir), &error),
                        "lineage index load failed");
    unsigned checked = 0;
    for (const sim::TraceRecord& r : resident.records) {
        if (r.kind != sim::TraceKind::kSend || checked >= 200) continue;
        ++checked;
        FASTNET_ENSURES_MSG(
            loaded.ancestry(r.lineage) == obs::lineage_ancestry(resident.records, r.lineage),
            "sidecar ancestry diverges from obs::lineage_ancestry");
    }
    FASTNET_ENSURES_MSG(checked > 0, "scenario recorded no sends");

    check_crash_recovery(files.front(), dir + "/crash.fnspill");

    if (!write_file(dir + "/canonical.json", resident.canonical) ||
        !write_file(dir + "/chrome.json", resident.chrome) ||
        !write_file(dir + "/metrics.json", resident.metrics)) {
        std::cerr << "cannot write exports into " << dir << "\n";
        return 1;
    }
    std::cout << "trace_spill_smoke: shards=" << shards << " threads=" << threads
              << ": " << resident.total_recorded << " records, "
              << files.size() << " spill file(s), exports byte-identical\n";
    return 0;
}
