// Tests for the Section 3.1 labelling: base cases, Lemma 1, and the
// 2^l-subtree property behind Theorem 2, swept over many random trees.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "topo/labeling.hpp"

namespace fastnet::topo {
namespace {

using graph::Graph;
using graph::RootedTree;

RootedTree rooted(const Graph& g, NodeId root = 0) { return graph::min_hop_tree(g, root); }

TEST(Labeling, SingleNodeIsZero) {
    const RootedTree t(0, {kNoNode});
    const auto labels = label_tree(t);
    EXPECT_EQ(labels[0], 0u);
}

TEST(Labeling, PathIsAllZero) {
    // A path has one leaf below the root: every label stays 0.
    const auto t = rooted(graph::make_path(10));
    const auto labels = label_tree(t);
    for (NodeId u = 0; u < 10; ++u) EXPECT_EQ(labels[u], 0u);
}

TEST(Labeling, StarRootGetsOne) {
    const auto t = rooted(graph::make_star(5));
    const auto labels = label_tree(t);
    EXPECT_EQ(labels[0], 1u);
    for (NodeId u = 1; u < 5; ++u) EXPECT_EQ(labels[u], 0u);
}

TEST(Labeling, TwoLeafStarRootGetsOne) {
    const auto t = rooted(graph::make_star(3));
    EXPECT_EQ(label_tree(t)[0], 1u);
}

TEST(Labeling, CompleteBinaryTreeLabelEqualsHeight) {
    const auto t = rooted(graph::make_complete_binary_tree(4));
    const auto labels = label_tree(t);
    // Node at height h (leaves h=0) has two children of equal label, so
    // labels increase by one per level: label = height.
    EXPECT_EQ(labels[0], 4u);       // root
    EXPECT_EQ(labels[1], 3u);       // its children
    EXPECT_EQ(labels[3], 2u);
    EXPECT_EQ(labels[15], 0u);      // a leaf
}

TEST(Labeling, CaterpillarSpineStaysLow) {
    // Each spine node has one leg (leaf, label 0) and one spine child.
    const auto t = rooted(graph::make_caterpillar(6, 1));
    const auto labels = label_tree(t);
    EXPECT_LE(max_label(t, labels), 1u);
}

TEST(Labeling, AbsentNodesGetNoLabel) {
    const Graph g = graph::disjoint_union(graph::make_path(3), graph::make_path(2));
    const auto t = rooted(g, 0);
    const auto labels = label_tree(t);
    EXPECT_EQ(labels[3], kNoLabel);
    EXPECT_EQ(labels[4], kNoLabel);
    EXPECT_NE(labels[2], kNoLabel);
}

class LabelingProperty : public ::testing::TestWithParam<std::tuple<NodeId, std::uint64_t>> {
protected:
    RootedTree make_tree() {
        auto [n, seed] = GetParam();
        Rng rng(seed);
        const Graph g = graph::make_random_tree(n, rng);
        return graph::min_hop_tree(g, static_cast<NodeId>(rng.below(n)));
    }
};

TEST_P(LabelingProperty, Lemma1Holds) {
    const RootedTree t = make_tree();
    EXPECT_TRUE(satisfies_lemma1(t, label_tree(t)));
}

TEST_P(LabelingProperty, SubtreeOfLabelLHasAtLeast2ToLNodes) {
    const RootedTree t = make_tree();
    const auto labels = label_tree(t);
    const auto sizes = t.subtree_sizes();
    for (NodeId u : t.preorder())
        EXPECT_GE(sizes[u], (NodeId{1} << labels[u]))
            << "node " << u << " label " << labels[u];
}

TEST_P(LabelingProperty, RootLabelAtMostFloorLog2N) {
    const RootedTree t = make_tree();
    const auto labels = label_tree(t);
    EXPECT_LE(max_label(t, labels), floor_log2(t.size()));
}

TEST_P(LabelingProperty, ChildLabelsNeverExceedParent) {
    const RootedTree t = make_tree();
    const auto labels = label_tree(t);
    for (NodeId u : t.preorder())
        for (NodeId c : t.children(u)) EXPECT_LE(labels[c], labels[u]);
}

INSTANTIATE_TEST_SUITE_P(
    RandomTrees, LabelingProperty,
    ::testing::Combine(::testing::Values<NodeId>(2, 3, 7, 16, 65, 256, 1000),
                       ::testing::Values<std::uint64_t>(11, 22, 33, 44)));

}  // namespace
}  // namespace fastnet::topo
