// Tests for the compute-and-disseminate extension of the Section 5
// gather: after node 1 knows f, everyone learns it via a downcast over
// the same tree.
#include <gtest/gtest.h>

#include "gsf/gather.hpp"
#include "gsf/opt_tree.hpp"

namespace fastnet::gsf {
namespace {

ModelParams params_of(Tick c, Tick p) {
    ModelParams m;
    m.hop_delay = c;
    m.ncu_delay = p;
    return m;
}

TEST(Disseminate, EveryNodeLearnsTheResult) {
    const auto r = build_optimal_tree(25, 1, 1);
    const auto out = run_tree_gather(r.tree, params_of(1, 1), combine_sum(), {}, 7,
                                     /*disseminate=*/true);
    EXPECT_TRUE(out.correct);
    EXPECT_TRUE(out.all_know_final);
    EXPECT_GT(out.dissemination_completion, out.completion);
}

TEST(Disseminate, SingleNodeKnowsImmediately) {
    const auto r = build_optimal_tree(1, 1, 1);
    const auto out = run_tree_gather(r.tree, params_of(1, 1), combine_sum(), {5}, 7, true);
    EXPECT_TRUE(out.all_know_final);
    EXPECT_EQ(out.dissemination_completion, out.completion);
}

TEST(Disseminate, OffByDefault) {
    const auto r = build_optimal_tree(9, 1, 1);
    const auto out = run_tree_gather(r.tree, params_of(1, 1));
    EXPECT_FALSE(out.all_know_final);
    EXPECT_EQ(out.dissemination_completion, 0);
}

TEST(Disseminate, DowncastCostsNMinus1MoreMessages) {
    const auto r = build_optimal_tree(30, 1, 1);
    const auto up = run_tree_gather(r.tree, params_of(1, 1));
    const auto both = run_tree_gather(r.tree, params_of(1, 1), combine_sum(), {}, 7, true);
    EXPECT_EQ(up.cost.direct_messages, 29u);
    EXPECT_EQ(both.cost.direct_messages, 2u * 29u);
}

TEST(Disseminate, RoundTripIsAtMostTwiceOptimalPlusDepthSlack) {
    // The downcast re-traverses the tree; with free multi-send each level
    // costs C + P, so dissemination finishes within
    // t_opt + height * (C + P) + P.
    for (auto [c, p] : std::vector<std::pair<Tick, Tick>>{{0, 1}, {1, 1}, {3, 2}}) {
        for (std::uint64_t n : {8ull, 64ull, 200ull}) {
            const auto r = build_optimal_tree(n, c, p);
            const auto out =
                run_tree_gather(r.tree, params_of(c, p), combine_xor(), {}, 3, true);
            EXPECT_TRUE(out.all_know_final);
            const Tick slack = static_cast<Tick>(r.tree.height()) * (c + p) + p;
            EXPECT_LE(out.dissemination_completion, r.predicted_time + slack)
                << "C=" << c << " P=" << p << " n=" << n;
        }
    }
}

TEST(Disseminate, LeavesEndUpHoldingF) {
    // Every node's result() equals f afterwards (their accumulator is
    // overwritten by the final value).
    const auto r = build_optimal_tree(12, 2, 1);
    std::vector<std::uint64_t> inputs(12);
    for (std::size_t i = 0; i < 12; ++i) inputs[i] = i * i + 1;
    const auto out =
        run_tree_gather(r.tree, params_of(2, 1), combine_max(), inputs, 7, true);
    EXPECT_TRUE(out.all_know_final);
    EXPECT_EQ(out.result, 122u);  // 11^2 + 1
}

}  // namespace
}  // namespace fastnet::gsf
