// Live invariant monitors (src/obs/monitor.hpp): unit-level checks of
// each built-in monitor via manual event dispatch, the violation
// bookkeeping (storage cap, first-violation trace record), and the
// integration path — a hub attached to a real Cluster run stays clean on
// healthy workloads and trips deterministically on a rigged one.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "obs/monitor.hpp"
#include "sim/trace.hpp"
#include "topo/broadcast_protocols.hpp"

namespace fastnet::obs {
namespace {

MonitorEvent ev(MonitorEvent::Kind kind, Tick at, NodeId node, std::uint64_t lineage = 0,
                std::uint64_t a = 0, std::uint64_t b = 0) {
    MonitorEvent e;
    e.kind = kind;
    e.at = at;
    e.node = node;
    e.lineage = lineage;
    e.a = a;
    e.b = b;
    return e;
}

// ---- hub bookkeeping ----------------------------------------------------

TEST(Monitor, EmptyHubIsInactiveAndOk) {
    MonitorHub hub;
    EXPECT_FALSE(hub.active());
    EXPECT_EQ(hub.monitor_count(), 0u);
    EXPECT_TRUE(hub.ok());
    hub.finish(100);  // no monitors, no effect
    EXPECT_TRUE(hub.violations().empty());
}

TEST(Monitor, StorageCapCountsBeyondStoredViolations) {
    MonitorHub hub;
    hub.add(std::make_unique<QueueDepthMonitor>(0));
    for (Tick t = 0; t < 40; ++t)
        hub.dispatch(ev(MonitorEvent::Kind::kEnqueue, t, 1, 0, /*depth=*/5));
    EXPECT_EQ(hub.violation_count(), 40u);
    EXPECT_EQ(hub.violations().size(), MonitorHub::kMaxStoredPerMonitor);
    EXPECT_FALSE(hub.ok());
}

TEST(Monitor, FirstViolationLandsInTheAttachedTrace) {
    MonitorHub hub;
    hub.add(std::make_unique<LineageConservationMonitor>());
    hub.add(std::make_unique<QueueDepthMonitor>(2));
    sim::Trace trace(128);
    hub.attach_trace(&trace);

    hub.dispatch(ev(MonitorEvent::Kind::kEnqueue, 7, 3, 0, /*depth=*/9));
    hub.dispatch(ev(MonitorEvent::Kind::kEnqueue, 8, 3, 0, /*depth=*/9));

    const auto records = trace.snapshot();
    ASSERT_EQ(records.size(), 1u);  // only the monitor's first violation
    EXPECT_EQ(records[0].kind, sim::TraceKind::kViolation);
    EXPECT_EQ(records[0].at, 7);
    EXPECT_EQ(records[0].node, 3u);
    EXPECT_EQ(records[0].a, 1u);  // registration index of the queue monitor
    EXPECT_EQ(records[0].detail.rfind("queue_depth: ", 0), 0u) << records[0].detail;
    EXPECT_EQ(hub.violation_count(), 2u);
}

// ---- lineage conservation -----------------------------------------------

TEST(Monitor, LineageConservationBalancedBooksStayClean) {
    MonitorHub hub;
    hub.add(std::make_unique<LineageConservationMonitor>());
    hub.dispatch(ev(MonitorEvent::Kind::kSend, 1, 0, /*lineage=*/10));
    hub.dispatch(ev(MonitorEvent::Kind::kDup, 2, 0, 10));  // link-layer duplicate
    hub.dispatch(ev(MonitorEvent::Kind::kRetire, 5, kNoNode, 10));
    hub.dispatch(ev(MonitorEvent::Kind::kRetire, 6, kNoNode, 10));
    hub.finish(10);
    EXPECT_TRUE(hub.ok()) << violations_json(hub, "t");
}

TEST(Monitor, RetireWithoutLiveCopyFiresImmediately) {
    MonitorHub hub;
    hub.add(std::make_unique<LineageConservationMonitor>());
    hub.dispatch(ev(MonitorEvent::Kind::kRetire, 3, kNoNode, /*lineage=*/42));
    ASSERT_EQ(hub.violation_count(), 1u);
    EXPECT_EQ(hub.violations()[0].monitor, std::string("lineage_conservation"));
    EXPECT_EQ(hub.violations()[0].lineage, 42u);
    EXPECT_EQ(hub.violations()[0].at, 3);
}

TEST(Monitor, UnretiredCopiesFireAtFinish) {
    MonitorHub hub;
    hub.add(std::make_unique<LineageConservationMonitor>());
    hub.dispatch(ev(MonitorEvent::Kind::kSend, 1, 0, /*lineage=*/7));
    hub.dispatch(ev(MonitorEvent::Kind::kSend, 2, 0, 9));
    hub.dispatch(ev(MonitorEvent::Kind::kRetire, 4, kNoNode, 9));
    EXPECT_TRUE(hub.ok());  // nothing wrong until the books close
    hub.finish(50);
    ASSERT_EQ(hub.violation_count(), 1u);
    EXPECT_EQ(hub.violations()[0].lineage, 7u);
    EXPECT_EQ(hub.violations()[0].at, 50);
}

// ---- queue depth ---------------------------------------------------------

TEST(Monitor, QueueDepthCeilingIsInclusive) {
    MonitorHub hub;
    hub.add(std::make_unique<QueueDepthMonitor>(3));
    hub.dispatch(ev(MonitorEvent::Kind::kEnqueue, 1, 0, 0, /*depth=*/3));
    EXPECT_TRUE(hub.ok());
    hub.dispatch(ev(MonitorEvent::Kind::kEnqueue, 2, 0, 0, 4));
    EXPECT_EQ(hub.violation_count(), 1u);
}

// ---- busy-window monotonicity -------------------------------------------

TEST(Monitor, BusyWindowsSerialPerNodeStayClean) {
    MonitorHub hub;
    hub.add(std::make_unique<BusyWindowMonitor>());
    using K = MonitorEvent::Kind;
    hub.dispatch(ev(K::kInvoke, 10, 0, 0, 0, /*busy=*/4));  // [6, 10] on node 0
    hub.dispatch(ev(K::kInvoke, 12, 1, 0, 0, 6));           // [6, 12] on node 1 — fine
    hub.dispatch(ev(K::kInvoke, 15, 0, 0, 0, 5));           // [10, 15] abuts exactly
    EXPECT_TRUE(hub.ok()) << violations_json(hub, "t");
}

TEST(Monitor, OverlappingBusyWindowViolates) {
    MonitorHub hub;
    hub.add(std::make_unique<BusyWindowMonitor>());
    using K = MonitorEvent::Kind;
    hub.dispatch(ev(K::kInvoke, 10, 0, 0, 0, /*busy=*/4));  // ends at 10
    hub.dispatch(ev(K::kInvoke, 12, 0, 0, 0, 4));           // [8, 12] overlaps
    ASSERT_EQ(hub.violation_count(), 1u);
    EXPECT_EQ(hub.violations()[0].monitor, std::string("busy_window"));
}

TEST(Monitor, CompletionTimeGoingBackwardsViolates) {
    MonitorHub hub;
    hub.add(std::make_unique<BusyWindowMonitor>());
    using K = MonitorEvent::Kind;
    hub.dispatch(ev(K::kInvoke, 20, 0));
    hub.dispatch(ev(K::kInvoke, 15, 1));  // the simulator never runs backwards
    EXPECT_EQ(hub.violation_count(), 1u);
}

// ---- phase budgets -------------------------------------------------------

TEST(Monitor, PhaseBudgetCountsOnlyItsPhaseAndReportsOnce) {
    MonitorHub hub;
    hub.add(std::make_unique<PhaseBudgetMonitor>(/*phase=*/1, /*max_calls=*/2));
    using K = MonitorEvent::Kind;
    const auto delivery = static_cast<std::uint64_t>(MonitorEvent::InvokeKind::kDelivery);
    const auto timer = static_cast<std::uint64_t>(MonitorEvent::InvokeKind::kTimer);
    // Phase 0 deliveries do not count.
    hub.dispatch(ev(K::kInvoke, 1, 0, 0, delivery));
    hub.dispatch(ev(K::kPhase, 2, kNoNode, 0, /*phase=*/1));
    hub.dispatch(ev(K::kInvoke, 3, 0, 0, delivery));
    hub.dispatch(ev(K::kInvoke, 4, 0, 0, timer));  // not a delivery
    hub.dispatch(ev(K::kInvoke, 5, 0, 0, delivery));
    EXPECT_TRUE(hub.ok());
    hub.dispatch(ev(K::kInvoke, 6, 0, 0, delivery));  // budget + 1 -> fires
    hub.dispatch(ev(K::kInvoke, 7, 0, 0, delivery));  // beyond: counted, not re-filed
    EXPECT_EQ(hub.violation_count(), 1u);
    // Leaving the phase stops the counting.
    hub.dispatch(ev(K::kPhase, 8, kNoNode, 0, 2));
    hub.dispatch(ev(K::kInvoke, 9, 0, 0, delivery));
    EXPECT_EQ(hub.violation_count(), 1u);
}

// ---- integration: a hub riding a real simulation -------------------------

TEST(Monitor, StandardMonitorsStayCleanOnRealBroadcasts) {
    Rng rng(17);
    const graph::Graph g = graph::make_random_connected(40, 1, 15, rng);
    for (auto scheme : {topo::BroadcastScheme::kBranchingPaths,
                        topo::BroadcastScheme::kFlooding}) {
        node::ClusterConfig cfg;
        cfg.monitors = std::make_shared<MonitorHub>();
        add_standard_monitors(*cfg.monitors);
        const auto out = topo::run_broadcast(g, scheme, 0, cfg);
        ASSERT_TRUE(out.all_received);
        EXPECT_TRUE(cfg.monitors->ok())
            << violations_json(*cfg.monitors, topo::scheme_name(scheme));
    }
}

TEST(Monitor, RiggedCeilingTripsOnARealRunAndHitsTheTrace) {
    // A star flood hammers the hub node's NCU queue; a zero ceiling must
    // trip, and the first violating event must land in the trace with
    // the kViolation kind.
    const graph::Graph g = graph::make_star(24);
    node::ClusterConfig cfg;
    cfg.monitors = std::make_shared<MonitorHub>();
    cfg.monitors->add(std::make_unique<QueueDepthMonitor>(0));
    cfg.trace = std::make_shared<sim::Trace>(std::size_t{1} << 12);
    const auto out = topo::run_broadcast(g, topo::BroadcastScheme::kFlooding, 1, cfg);
    ASSERT_TRUE(out.all_received);
    EXPECT_FALSE(cfg.monitors->ok());

    bool saw_violation_record = false;
    for (const sim::TraceRecord& r : cfg.trace->snapshot())
        if (r.kind == sim::TraceKind::kViolation) {
            saw_violation_record = true;
            EXPECT_EQ(r.detail.rfind("queue_depth: ", 0), 0u) << r.detail;
        }
    EXPECT_TRUE(saw_violation_record);
}

TEST(Monitor, ViolationsJsonIsWellFormedAndDeterministic) {
    auto make = [] {
        MonitorHub hub;
        hub.add(std::make_unique<LineageConservationMonitor>());
        hub.dispatch(ev(MonitorEvent::Kind::kSend, 1, 2, 5));
        hub.finish(9);
        return violations_json(hub, "vj");
    };
    const std::string a = make();
    EXPECT_EQ(a, make());
    EXPECT_NE(a.find("\"fastnet_monitors\": 1"), std::string::npos);
    EXPECT_NE(a.find("\"violation_count\": 1"), std::string::npos);
    EXPECT_NE(a.find("lineage_conservation"), std::string::npos);
}

}  // namespace
}  // namespace fastnet::obs
