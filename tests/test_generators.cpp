// Tests for topology generators, including parameterized property sweeps.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace fastnet::graph {
namespace {

TEST(Generators, Path) {
    const Graph g = make_path(5);
    EXPECT_EQ(g.node_count(), 5u);
    EXPECT_EQ(g.edge_count(), 4u);
    EXPECT_TRUE(is_tree(g));
    EXPECT_EQ(g.degree(0), 1u);
    EXPECT_EQ(g.degree(2), 2u);
}

TEST(Generators, SingleNodePath) {
    const Graph g = make_path(1);
    EXPECT_EQ(g.node_count(), 1u);
    EXPECT_EQ(g.edge_count(), 0u);
    EXPECT_TRUE(is_tree(g));
}

TEST(Generators, Cycle) {
    const Graph g = make_cycle(6);
    EXPECT_EQ(g.edge_count(), 6u);
    for (NodeId u = 0; u < 6; ++u) EXPECT_EQ(g.degree(u), 2u);
    EXPECT_TRUE(is_connected(g));
    EXPECT_FALSE(is_tree(g));
}

TEST(Generators, Star) {
    const Graph g = make_star(7);
    EXPECT_EQ(g.degree(0), 6u);
    for (NodeId u = 1; u < 7; ++u) EXPECT_EQ(g.degree(u), 1u);
    EXPECT_TRUE(is_tree(g));
}

TEST(Generators, Complete) {
    const Graph g = make_complete(6);
    EXPECT_EQ(g.edge_count(), 15u);
    for (NodeId u = 0; u < 6; ++u) EXPECT_EQ(g.degree(u), 5u);
    EXPECT_EQ(diameter(g), 1u);
}

TEST(Generators, CompleteBinaryTree) {
    const Graph g = make_complete_binary_tree(3);
    EXPECT_EQ(g.node_count(), 15u);
    EXPECT_TRUE(is_tree(g));
    EXPECT_EQ(g.degree(0), 2u);   // root
    EXPECT_EQ(g.degree(14), 1u);  // a leaf
}

TEST(Generators, KaryTree) {
    const Graph g = make_kary_tree(13, 3);
    EXPECT_TRUE(is_tree(g));
    EXPECT_EQ(g.degree(0), 3u);
}

TEST(Generators, Caterpillar) {
    const Graph g = make_caterpillar(4, 2);
    EXPECT_EQ(g.node_count(), 12u);
    EXPECT_TRUE(is_tree(g));
}

TEST(Generators, Grid) {
    const Graph g = make_grid(3, 4);
    EXPECT_EQ(g.node_count(), 12u);
    EXPECT_EQ(g.edge_count(), 3u * 3u + 2u * 4u);  // vertical + horizontal
    EXPECT_TRUE(is_connected(g));
    EXPECT_EQ(diameter(g), 2u + 3u);
}

TEST(Generators, Hypercube) {
    const Graph g = make_hypercube(4);
    EXPECT_EQ(g.node_count(), 16u);
    for (NodeId u = 0; u < 16; ++u) EXPECT_EQ(g.degree(u), 4u);
    EXPECT_EQ(diameter(g), 4u);
}

TEST(Generators, PodcExampleMatchesPaper) {
    const Graph g = make_podc_example();
    EXPECT_EQ(g.node_count(), 6u);
    EXPECT_EQ(g.edge_count(), 6u);
    // Triangle u,v,w = 0,1,2.
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(1, 2));
    EXPECT_TRUE(g.has_edge(2, 0));
    // Pendants.
    EXPECT_TRUE(g.has_edge(0, 3));
    EXPECT_TRUE(g.has_edge(1, 4));
    EXPECT_TRUE(g.has_edge(2, 5));
}

TEST(Generators, DisjointUnionKeepsComponents) {
    const Graph g = disjoint_union(make_cycle(3), make_path(4));
    EXPECT_EQ(g.node_count(), 7u);
    const auto comp = connected_components(g);
    EXPECT_EQ(comp[0], comp[2]);
    EXPECT_EQ(comp[3], comp[6]);
    EXPECT_NE(comp[0], comp[3]);
}

// ---- randomized property sweeps ------------------------------------

class RandomTreeProperty : public ::testing::TestWithParam<std::tuple<NodeId, std::uint64_t>> {};

TEST_P(RandomTreeProperty, IsAlwaysATree) {
    const auto [n, seed] = GetParam();
    Rng rng(seed);
    const Graph g = make_random_tree(n, rng);
    EXPECT_EQ(g.node_count(), n);
    EXPECT_EQ(g.edge_count(), n - 1);
    EXPECT_TRUE(is_tree(g));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomTreeProperty,
                         ::testing::Combine(::testing::Values<NodeId>(2, 3, 5, 17, 64, 257),
                                            ::testing::Values<std::uint64_t>(1, 2, 3, 99)));

class RandomConnectedProperty
    : public ::testing::TestWithParam<std::tuple<NodeId, std::uint64_t>> {};

TEST_P(RandomConnectedProperty, IsConnectedAndSimple) {
    const auto [n, seed] = GetParam();
    Rng rng(seed);
    const Graph g = make_random_connected(n, 1, 10, rng);
    EXPECT_TRUE(is_connected(g));
    EXPECT_GE(g.edge_count(), n - 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomConnectedProperty,
                         ::testing::Combine(::testing::Values<NodeId>(2, 8, 33, 100),
                                            ::testing::Values<std::uint64_t>(5, 6, 7)));

TEST(Generators, RandomTreeIsDeterministicPerSeed) {
    Rng r1(77), r2(77);
    const Graph a = make_random_tree(40, r1);
    const Graph b = make_random_tree(40, r2);
    ASSERT_EQ(a.edge_count(), b.edge_count());
    for (EdgeId e = 0; e < a.edge_count(); ++e) {
        EXPECT_EQ(a.edge(e).a, b.edge(e).a);
        EXPECT_EQ(a.edge(e).b, b.edge(e).b);
    }
}

TEST(Generators, RandomSpanningTreeSpansAndIsSubgraph) {
    Rng rng(31);
    const Graph g = make_random_connected(30, 2, 10, rng);
    const RootedTree t = random_spanning_tree(g, 5, rng);
    EXPECT_EQ(t.root(), 5u);
    EXPECT_EQ(t.size(), g.node_count());
    EXPECT_TRUE(t.is_subgraph_of(g));
}

}  // namespace
}  // namespace fastnet::graph
