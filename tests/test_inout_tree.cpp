// Tests for the INOUT tree: domain bookkeeping, linear-length routes and
// the capture merge (Section 4.1's data-structure mechanics).
#include <gtest/gtest.h>

#include "election/inout_tree.hpp"

namespace fastnet::elect {
namespace {

using hw::AnrLabel;

TEST(InOutTree, SingletonDomain) {
    const InOutTree t(3);
    EXPECT_EQ(t.root(), 3u);
    EXPECT_TRUE(t.is_in(3));
    EXPECT_EQ(t.in_count(), 1u);
    EXPECT_EQ(t.out_count(), 0u);
    EXPECT_EQ(t.pick_out(), kNoNode);
    EXPECT_TRUE(t.invariants_hold());
}

TEST(InOutTree, AddOutNeighbors) {
    InOutTree t(0);
    t.add_out(5, 0, /*port_at_parent=*/1, /*port_at_u=*/2);
    t.add_out(7, 0, 2, 1);
    EXPECT_TRUE(t.is_out(5));
    EXPECT_TRUE(t.is_out(7));
    EXPECT_EQ(t.out_count(), 2u);
    EXPECT_EQ(t.pick_out(), 5u);  // smallest id
    EXPECT_TRUE(t.invariants_hold());
}

TEST(InOutTree, AddOutIsIdempotent) {
    InOutTree t(0);
    t.add_out(5, 0, 1, 2);
    t.add_out(5, 0, 9, 9);  // ignored
    EXPECT_EQ(t.out_count(), 1u);
    EXPECT_EQ(t.entry(5).port_from_parent, 1u);
}

TEST(InOutTree, RouteFromRootToOutLeaf) {
    InOutTree t(0);
    t.add_out(5, 0, 3, 4);
    const hw::AnrHeader h = t.route_from_root(5);
    ASSERT_EQ(h.size(), 2u);
    EXPECT_EQ(h[0], AnrLabel::normal(3));
    EXPECT_EQ(h[1], AnrLabel::normal(hw::kNcuPort));
}

TEST(InOutTree, RouteToRootReversesPorts) {
    InOutTree t(0);
    t.add_out(5, 0, 3, 4);
    const hw::AnrHeader h = t.route_to_root(5);
    ASSERT_EQ(h.size(), 2u);
    EXPECT_EQ(h[0], AnrLabel::normal(4));  // at node 5, toward 0
    EXPECT_EQ(h[1], AnrLabel::normal(hw::kNcuPort));
}

TEST(InOutTree, RouteToSelfIsJustNcu) {
    const InOutTree t(2);
    const hw::AnrHeader h = t.route_from_root(2);
    ASSERT_EQ(h.size(), 1u);
    EXPECT_EQ(h[0], AnrLabel::normal(hw::kNcuPort));
}

/// Builds the domain {root} with OUT = given neighbors using distinct
/// port numbers derived from ids (ports only need local uniqueness).
InOutTree domain_with_outs(NodeId root, std::initializer_list<NodeId> outs) {
    InOutTree t(root);
    hw::PortId p = 1;
    for (NodeId o : outs) {
        t.add_out(o, root, p, p + 10);
        ++p;
    }
    return t;
}

TEST(InOutTree, AbsorbSingletonVictim) {
    // Domain {0} with OUT {1}; captures domain {1} whose OUT is {0, 2}.
    InOutTree mine = domain_with_outs(0, {1});
    InOutTree victim = domain_with_outs(1, {0, 2});
    mine.absorb(victim, /*via=*/1);
    EXPECT_TRUE(mine.is_in(0));
    EXPECT_TRUE(mine.is_in(1));
    EXPECT_TRUE(mine.is_out(2));
    EXPECT_EQ(mine.in_count(), 2u);
    // 0 is IN here, so victim's OUT entry for 0 must not demote it.
    EXPECT_FALSE(mine.is_out(0));
    EXPECT_TRUE(mine.invariants_hold());
}

TEST(InOutTree, AbsorbKeepsGraftAttachment) {
    InOutTree mine = domain_with_outs(0, {1});
    const InOutTree victim = domain_with_outs(1, {2});
    mine.absorb(victim, 1);
    // 1 keeps its parent 0 from *our* tree.
    EXPECT_EQ(mine.entry(1).parent, 0u);
    // 2 hangs under 1 with the victim's ports.
    EXPECT_EQ(mine.entry(2).parent, 1u);
}

TEST(InOutTree, AbsorbRerootsDeepVictim) {
    // Victim domain rooted at 9: 9 -IN- 4 -IN- 1, OUT {2 under 1, 7 under 9}.
    InOutTree victim(9);
    victim.add_out(4, 9, 1, 2);
    // Promote 4 into the victim domain by absorbing singleton {4}.
    InOutTree d4 = domain_with_outs(4, {1, 7});
    // give 4's tree the right shape: 4 is root with OUT 1 and 7
    victim.absorb(d4, 4);
    InOutTree d1 = domain_with_outs(1, {2});
    victim.absorb(d1, 1);
    ASSERT_TRUE(victim.is_in(9));
    ASSERT_TRUE(victim.is_in(4));
    ASSERT_TRUE(victim.is_in(1));
    ASSERT_TRUE(victim.invariants_hold());

    // Now a domain {0} with OUT {1} captures the whole chain via node 1:
    // the victim must be re-rooted at 1 (9 and 4 flip under it).
    InOutTree mine = domain_with_outs(0, {1});
    mine.absorb(victim, 1);
    EXPECT_TRUE(mine.invariants_hold());
    EXPECT_EQ(mine.in_count(), 4u);  // 0, 1, 4, 9
    EXPECT_EQ(mine.entry(1).parent, 0u);
    EXPECT_EQ(mine.entry(4).parent, 1u);
    EXPECT_EQ(mine.entry(9).parent, 4u);
    // OUT leaves survive: 2 under 1, 7 under... 7 was OUT under 4 in d4.
    EXPECT_TRUE(mine.is_out(2));
    EXPECT_TRUE(mine.is_out(7));
}

TEST(InOutTree, AbsorbFlipsPortDirections) {
    InOutTree victim(9);
    {
        InOutTree d4(4);
        d4.add_out(9, 4, /*at 4*/ 6, /*at 9*/ 5);
        InOutTree tmp = d4;  // domain {4} sees 9 as OUT
        // 9 captures 4 through via=4:
        victim.add_out(4, 9, 5, 6);
        victim.absorb(tmp, 4);
    }
    // victim: 9 (root) - 4 (IN child), edge ports: at9=5, at4=6.
    ASSERT_EQ(victim.entry(4).port_from_parent, 5u);
    ASSERT_EQ(victim.entry(4).port_to_parent, 6u);

    InOutTree mine = domain_with_outs(0, {4});
    mine.absorb(victim, 4);
    // Edge 4-9 flipped: 9's parent is 4; from-parent port = at 4 toward 9.
    EXPECT_EQ(mine.entry(9).parent, 4u);
    EXPECT_EQ(mine.entry(9).port_from_parent, 6u);
    EXPECT_EQ(mine.entry(9).port_to_parent, 5u);
}

TEST(InOutTree, RoutesStayLinearAfterManyMerges) {
    // Chain-capture n singleton domains; route lengths must stay <= n+1.
    const NodeId n = 64;
    InOutTree big(0);
    big.add_out(1, 0, 1, 1);
    for (NodeId v = 1; v < n; ++v) {
        InOutTree single(v);
        if (v + 1 < n) single.add_out(v + 1, v, 1, 1);
        big.absorb(single, v);
    }
    EXPECT_EQ(big.in_count(), n);
    for (NodeId v = 0; v < n; ++v)
        EXPECT_LE(big.route_from_root(v).size(), static_cast<std::size_t>(n) + 1);
    EXPECT_TRUE(big.invariants_hold());
}

TEST(InOutTree, AbsorbRejectsBadGraftPoint) {
    InOutTree mine = domain_with_outs(0, {1});
    const InOutTree victim = domain_with_outs(2, {3});
    // 2 is not an OUT node of mine.
    EXPECT_THROW(mine.absorb(victim, 2), ContractViolation);
    // 3 is OUT in the victim, not IN.
    InOutTree mine2 = domain_with_outs(0, {3});
    EXPECT_THROW(mine2.absorb(victim, 3), ContractViolation);
}

}  // namespace
}  // namespace fastnet::elect
