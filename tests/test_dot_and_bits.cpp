// Tests for the DOT exporter and the ANR header-bit accounting
// (the k = O(log m) label width of Section 2).
#include <gtest/gtest.h>

#include "cost/metrics.hpp"
#include "graph/algorithms.hpp"
#include "graph/dot.hpp"
#include "graph/generators.hpp"
#include "hw/network.hpp"
#include "sim/simulator.hpp"

namespace fastnet {
namespace {

TEST(Dot, GraphExportContainsAllEdges) {
    const graph::Graph g = graph::make_cycle(3);
    const std::string dot = graph::to_dot(g);
    EXPECT_NE(dot.find("graph fastnet {"), std::string::npos);
    EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
    EXPECT_NE(dot.find("n1 -- n2"), std::string::npos);
    EXPECT_NE(dot.find("n2 -- n0"), std::string::npos);
}

TEST(Dot, TreeExportIsDirected) {
    const graph::RootedTree t(0, {kNoNode, 0, 0});
    const std::string dot = graph::to_dot(t);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
    EXPECT_NE(dot.find("n0 -> n2"), std::string::npos);
    EXPECT_EQ(dot.find("--"), std::string::npos);
}

TEST(Dot, AnnotationsAndHighlights) {
    const graph::Graph g = graph::make_path(3);
    graph::DotStyle style;
    style.node_annotations = {"root", "", "leaf"};
    style.highlighted_edges = {1};
    const std::string dot = graph::to_dot(g, style);
    EXPECT_NE(dot.find("0\\nroot"), std::string::npos);
    EXPECT_NE(dot.find("2\\nleaf"), std::string::npos);
    EXPECT_NE(dot.find("penwidth=3"), std::string::npos);
}

// ---- header-bit accounting ---------------------------------------------

struct BitFixture {
    explicit BitFixture(graph::Graph graph)
        : g(std::move(graph)), metrics(g.node_count()),
          net(sim, g, ModelParams::fast_network(), metrics) {
        for (NodeId u = 0; u < g.node_count(); ++u)
            net.set_ncu_sink(u, [](const hw::Delivery&) {});
    }
    sim::Simulator sim;
    graph::Graph g;
    cost::Metrics metrics;
    hw::Network net;
};

struct Nothing final : hw::TypedPayload<Nothing> {};

TEST(HeaderBits, LabelWidthIsLogOfMaxDegreePlusCopyBit) {
    // Path: max degree 2 -> ports 0..2 -> 2 bits + copy = 3.
    BitFixture path(graph::make_path(5));
    EXPECT_EQ(path.net.label_bits(), ceil_log2(3) + 1);
    // Star with 9 leaves: hub degree 9 -> ports 0..9 -> 4 bits + copy.
    BitFixture star(graph::make_star(10));
    EXPECT_EQ(star.net.label_bits(), ceil_log2(10) + 1);
}

TEST(HeaderBits, AccumulatePerHopRemainingHeader) {
    BitFixture f(graph::make_path(4));
    const std::vector<NodeId> path{0, 1, 2, 3};
    f.net.send(0, f.net.route(path), std::make_shared<Nothing>());
    f.sim.run();
    // Header after injection pop: 3 labels ride hop 1, 2 ride hop 2,
    // 1 rides hop 3: (3+2+1) * k bits.
    const std::uint64_t k = f.net.label_bits();
    EXPECT_EQ(f.metrics.net().header_bits, (3 + 2 + 1) * k);
}

TEST(HeaderBits, LongRoutesPayQuadraticallyOverall) {
    // The dmax rationale quantified: total header bits for one end-to-end
    // message grow quadratically with path length.
    auto bits_for = [](NodeId n) {
        BitFixture f(graph::make_path(n));
        std::vector<NodeId> path(n);
        for (NodeId i = 0; i < n; ++i) path[i] = i;
        f.net.send(0, f.net.route(path), std::make_shared<Nothing>());
        f.sim.run();
        return f.metrics.net().header_bits;
    };
    const auto b8 = bits_for(8);
    const auto b16 = bits_for(16);
    const auto b32 = bits_for(32);
    // Doubling the path roughly quadruples the header traffic.
    EXPECT_GT(b16, 3 * b8);
    EXPECT_GT(b32, 3 * b16);
}

TEST(HeaderBits, ZeroForLocalNcuDelivery) {
    BitFixture f(graph::make_path(2));
    f.net.send(0, {hw::AnrLabel::normal(hw::kNcuPort)}, std::make_shared<Nothing>());
    f.sim.run();
    EXPECT_EQ(f.metrics.net().header_bits, 0u);
}

}  // namespace
}  // namespace fastnet
