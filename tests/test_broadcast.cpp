// End-to-end broadcast protocol tests on the simulated fabric: coverage,
// Theorem 2 timing, exact system-call counts, and scheme comparisons.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "topo/broadcast_protocols.hpp"

namespace fastnet::topo {
namespace {

using graph::Graph;

TEST(BranchingPaths, CoversAPathGraphInOneUnit) {
    const Graph g = graph::make_path(8);
    const auto out = run_broadcast(g, BroadcastScheme::kBranchingPaths, 0);
    EXPECT_TRUE(out.all_received);
    EXPECT_DOUBLE_EQ(out.time_units, 1.0);
    // Exactly n-1 receptions.
    EXPECT_EQ(out.cost.system_calls, 7u);
    // One message, 7 hops.
    EXPECT_EQ(out.cost.direct_messages, 1u);
    EXPECT_EQ(out.cost.hops, 7u);
}

TEST(BranchingPaths, SystemCallsAreExactlyNMinus1OnTrees) {
    for (std::uint64_t seed : {1, 2, 3}) {
        Rng rng(seed);
        const Graph g = graph::make_random_tree(60, rng);
        const auto out = run_broadcast(g, BroadcastScheme::kBranchingPaths, 0);
        EXPECT_TRUE(out.all_received);
        EXPECT_EQ(out.cost.system_calls, 59u) << "seed " << seed;
    }
}

TEST(BranchingPaths, Theorem2TimeBoundOnRandomGraphs) {
    for (std::uint64_t seed : {10, 20, 30, 40}) {
        Rng rng(seed);
        const Graph g = graph::make_random_connected(80, 1, 20, rng);
        const auto out = run_broadcast(g, BroadcastScheme::kBranchingPaths, 3);
        EXPECT_TRUE(out.all_received);
        EXPECT_LE(out.time_units, 1 + floor_log2(80)) << "seed " << seed;
        EXPECT_EQ(out.cost.system_calls, 79u);
    }
}

TEST(BranchingPaths, CompleteBinaryTreeTakesDepthUnits) {
    const Graph g = graph::make_complete_binary_tree(4);
    const auto out = run_broadcast(g, BroadcastScheme::kBranchingPaths, 0);
    EXPECT_TRUE(out.all_received);
    EXPECT_DOUBLE_EQ(out.time_units, 4.0);
}

TEST(BranchingPaths, WorksFromEveryOrigin) {
    Rng rng(5);
    const Graph g = graph::make_random_connected(24, 2, 10, rng);
    for (NodeId origin = 0; origin < g.node_count(); ++origin) {
        const auto out = run_broadcast(g, BroadcastScheme::kBranchingPaths, origin);
        EXPECT_TRUE(out.all_received) << "origin " << origin;
        EXPECT_EQ(out.cost.system_calls, 23u);
    }
}

TEST(Flooding, CoversButCostsOrderM) {
    Rng rng(8);
    const Graph g = graph::make_random_connected(40, 3, 10, rng);
    const auto out = run_broadcast(g, BroadcastScheme::kFlooding, 0);
    EXPECT_TRUE(out.all_received);
    // Every node except the origin forwards on deg-1 links, the origin on
    // deg links; every emitted message is received: ~2m - (n-1) calls.
    EXPECT_GT(out.cost.system_calls, static_cast<std::uint64_t>(g.node_count()));
    EXPECT_LE(out.cost.system_calls, 2ull * g.edge_count());
    EXPECT_GE(out.cost.system_calls, 2ull * g.edge_count() - (g.node_count() - 1));
}

TEST(Flooding, TimeGrowsWithEccentricityNotLogN) {
    const Graph g = graph::make_path(32);
    const auto out = run_broadcast(g, BroadcastScheme::kFlooding, 0);
    EXPECT_TRUE(out.all_received);
    // Each hop costs a software delay: 31 units down the path.
    EXPECT_DOUBLE_EQ(out.time_units, 31.0);
}

TEST(DfsToken, SingleMessageCoversTreeInOneUnit) {
    const Graph g = graph::make_complete_binary_tree(3);
    const auto out = run_broadcast(g, BroadcastScheme::kDfsToken, 0);
    EXPECT_TRUE(out.all_received);
    EXPECT_EQ(out.cost.direct_messages, 1u);
    EXPECT_EQ(out.cost.system_calls, 14u);
    EXPECT_DOUBLE_EQ(out.time_units, 1.0);
}

TEST(LayeredBfs, OneUnitWithQuadraticHeader) {
    const Graph g = graph::make_complete_binary_tree(3);
    const auto out = run_broadcast(g, BroadcastScheme::kLayeredBfs, 0);
    EXPECT_TRUE(out.all_received);
    EXPECT_DOUBLE_EQ(out.time_units, 1.0);
    EXPECT_EQ(out.cost.system_calls, 14u);
    // Header revisits layers: strictly longer than the DFS tour.
    const auto dfs = run_broadcast(g, BroadcastScheme::kDfsToken, 0);
    EXPECT_GT(out.cost.max_header_len, dfs.cost.max_header_len);
}

TEST(LayeredBfs, RejectsBoundedDmax) {
    node::ClusterConfig cfg;
    cfg.params.dmax = 8;
    EXPECT_THROW(
        run_broadcast(graph::make_path(4), BroadcastScheme::kLayeredBfs, 0, cfg),
        ContractViolation);
}

TEST(DirectUnicast, OneUnitNMinus1Messages) {
    Rng rng(4);
    const Graph g = graph::make_random_tree(20, rng);
    const auto out = run_broadcast(g, BroadcastScheme::kDirectUnicast, 0);
    EXPECT_TRUE(out.all_received);
    EXPECT_EQ(out.cost.direct_messages, 19u);
    EXPECT_EQ(out.cost.system_calls, 19u);
    EXPECT_DOUBLE_EQ(out.time_units, 1.0);
}

TEST(Broadcast, SchemesAgreeOnCoverage) {
    Rng rng(77);
    const Graph g = graph::make_random_connected(30, 2, 10, rng);
    for (auto scheme : {BroadcastScheme::kBranchingPaths, BroadcastScheme::kFlooding,
                        BroadcastScheme::kDfsToken, BroadcastScheme::kLayeredBfs,
                        BroadcastScheme::kDirectUnicast}) {
        const auto out = run_broadcast(g, scheme, 11);
        EXPECT_TRUE(out.all_received) << scheme_name(scheme);
    }
}

TEST(Broadcast, DmaxDiameterSufficesForBranchingPathsOnTrees) {
    // With dmax = n every decomposition path fits (paths are tree paths).
    Rng rng(12);
    const Graph g = graph::make_random_tree(50, rng);
    node::ClusterConfig cfg;
    cfg.params.dmax = 51;  // path of <= 50 nodes -> header <= 50 labels
    const auto out = run_broadcast(g, BroadcastScheme::kBranchingPaths, 0, cfg);
    EXPECT_TRUE(out.all_received);
}

TEST(Broadcast, HardwareDelayShiftsTimesButNotCalls) {
    const Graph g = graph::make_path(8);
    node::ClusterConfig cfg;
    cfg.params.hop_delay = 10;  // C = 10, P = 1
    const auto out = run_broadcast(g, BroadcastScheme::kBranchingPaths, 0, cfg);
    EXPECT_TRUE(out.all_received);
    EXPECT_EQ(out.cost.system_calls, 7u);
    // 7 hops of C each dominate: elapsed >= 70.
    EXPECT_GE(out.elapsed, 70);
}

}  // namespace
}  // namespace fastnet::topo
