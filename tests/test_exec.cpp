// Tests for the parallel experiment engine: the work-stealing pool, the
// deterministic sweep map, result aggregation, and the headline contract
// — the same sweep at 1, 2 and hardware_concurrency threads serializes
// to byte-identical JSON.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "exec/result.hpp"
#include "exec/sweep_runner.hpp"
#include "exec/thread_pool.hpp"
#include "graph/generators.hpp"
#include "topo/topology_maintenance.hpp"

namespace fastnet::exec {
namespace {

TEST(ThreadPool, RunsEveryTask) {
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 1000; ++i) pool.submit([&count] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, ReusableAfterWaitIdle) {
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 50; ++i) pool.submit([&count] { ++count; });
        pool.wait_idle();
        EXPECT_EQ(count.load(), (round + 1) * 50);
    }
}

TEST(ThreadPool, TasksMaySubmitTasks) {
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&pool, &count] {
            for (int j = 0; j < 10; ++j) pool.submit([&count] { ++count; });
        });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 80);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 200; ++i) pool.submit([&count] { ++count; });
        // No wait_idle: the destructor must still run everything.
    }
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturns) {
    ThreadPool pool(2);
    pool.wait_idle();  // must not hang
    SUCCEED();
}

TEST(ThreadPool, HardwareThreadsIsAtLeastOne) {
    EXPECT_GE(ThreadPool::hardware_threads(), 1u);
    ThreadPool pool(0);  // 0 = hardware default
    EXPECT_GE(pool.thread_count(), 1u);
}

TEST(SweepMap, ResultsInSubmissionOrder) {
    std::vector<int> items;
    for (int i = 0; i < 64; ++i) items.push_back(i);
    SweepOptions opt;
    opt.threads = 4;
    const auto out = sweep_map(
        items, [](int v, TaskContext& ctx) { return v * 10 + static_cast<int>(ctx.index % 10); },
        opt);
    ASSERT_EQ(out.size(), items.size());
    for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], i * 10 + i % 10);
}

TEST(SweepMap, TaskStreamsDependOnIndexNotThreads) {
    std::vector<int> items(32, 0);
    auto draw = [](int, TaskContext& ctx) { return ctx.rng.next(); };
    SweepOptions serial;
    serial.threads = 1;
    SweepOptions wide;
    wide.threads = 4;
    const auto a = sweep_map(items, draw, serial);
    const auto b = sweep_map(items, draw, wide);
    EXPECT_EQ(a, b);
    // And the streams are pairwise distinct.
    std::set<std::uint64_t> unique(a.begin(), a.end());
    EXPECT_EQ(unique.size(), a.size());
}

TEST(SweepMap, FirstExceptionByIndexPropagates) {
    std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7};
    SweepOptions opt;
    opt.threads = 4;
    try {
        sweep_map(
            items,
            [](int v, TaskContext&) -> int {
                if (v == 3 || v == 6) throw std::runtime_error("task " + std::to_string(v));
                return v;
            },
            opt);
        FAIL() << "should have thrown";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "task 3");  // lowest index wins, not completion order
    }
}

TEST(Result, AggregateKnownValues) {
    const Aggregate odd = aggregate({5, 1, 9, 3, 7});
    EXPECT_EQ(odd.count, 5u);
    EXPECT_DOUBLE_EQ(odd.min, 1);
    EXPECT_DOUBLE_EQ(odd.max, 9);
    EXPECT_DOUBLE_EQ(odd.mean, 5);
    EXPECT_DOUBLE_EQ(odd.median, 5);
    const Aggregate even = aggregate({4, 1, 3, 2});
    EXPECT_DOUBLE_EQ(even.median, 2.5);
    EXPECT_EQ(aggregate({}).count, 0u);
}

TEST(Result, FormatDoubleIsCanonical) {
    EXPECT_EQ(format_double(7), "7");
    EXPECT_EQ(format_double(2.5), "2.5");
    EXPECT_EQ(format_double(0.1), "0.1");  // shortest round-trip, not 0.1000000...
}

// ---- the headline determinism contract ---------------------------------

/// A small but non-trivial sweep: topology maintenance under jittered
/// delays and seeded link churn across four topology families. Scenario
/// randomness is generated here, serially, from fixed seeds; cluster
/// jitter seeds are derived per task by the runner.
SweepRunner make_maintenance_sweep(unsigned threads) {
    SweepOptions opt;
    opt.threads = threads;
    opt.master_seed = 2026;
    SweepRunner runner(opt);
    struct Shape {
        const char* name;
        graph::Graph graph;
    };
    std::vector<Shape> shapes;
    shapes.push_back({"ring12", graph::make_cycle(12)});
    shapes.push_back({"grid4x4", graph::make_grid(4, 4)});
    {
        Rng g1(7);
        shapes.push_back({"random16", graph::make_random_connected(16, 2, 6, g1)});
        shapes.push_back({"tree16", graph::make_random_tree(16, g1)});
    }
    for (const Shape& s : shapes) {
        for (std::uint64_t chaos_seed : {1ull, 2ull}) {
            topo::TopologyOptions topo_opt;
            topo_opt.rounds = 30;
            topo_opt.period = 50;
            node::ClusterConfig cfg;
            cfg.params.hop_delay = 3;
            cfg.params.ncu_delay = 2;
            cfg.net.hop_delay_min = 0;
            cfg.ncu_delay_min = 1;
            Rng chaos(chaos_seed * 31 + 3);
            node::Scenario scenario =
                node::Scenario::random_churn(s.graph, 8, 40, 500, chaos);
            scenario.heal_all(600);

            ClusterCase c;
            c.name = std::string(s.name) + "/chaos" + std::to_string(chaos_seed);
            c.graph = s.graph;
            c.protocol = topo::make_topology_maintenance(s.graph.node_count(), topo_opt);
            c.config = cfg;
            c.scenario = std::move(scenario);
            c.probe = [](node::Cluster& cluster, CaseResult& r) {
                r.ok = topo::all_views_converged(cluster);
                r.set("invocations",
                      static_cast<double>(cluster.metrics().total_invocations()));
            };
            runner.add(std::move(c));
        }
    }
    return runner;
}

TEST(SweepDeterminism, ByteIdenticalJsonAtOneTwoAndNThreads) {
    const unsigned hw = ThreadPool::hardware_threads();
    const auto rows1 = make_maintenance_sweep(1).run();
    const auto rows2 = make_maintenance_sweep(2).run();
    const auto rowsN = make_maintenance_sweep(hw).run();

    // Every case must actually pass (the sweep is a real Theorem 1 check,
    // not just a determinism fixture).
    for (const CaseResult& r : rows1) EXPECT_TRUE(r.ok) << r.name;

    const std::string j1 = sweep_json("maintenance_envelope", 2026, rows1);
    const std::string j2 = sweep_json("maintenance_envelope", 2026, rows2);
    const std::string jN = sweep_json("maintenance_envelope", 2026, rowsN);
    EXPECT_EQ(j1, j2);
    EXPECT_EQ(j1, jN);
}

TEST(SweepRunner, DerivedSeedsVaryByCaseAndMasterSeed) {
    auto build = [](std::uint64_t master) {
        SweepOptions opt;
        opt.threads = 1;
        opt.master_seed = master;
        SweepRunner runner(opt);
        for (int i = 0; i < 2; ++i) {
            ClusterCase c;
            c.name = "ring";
            c.graph = graph::make_cycle(8);
            topo::TopologyOptions topo_opt;
            topo_opt.rounds = 4;
            topo_opt.period = 32;
            c.protocol = topo::make_topology_maintenance(8, topo_opt);
            c.config.params.hop_delay = 4;
            c.config.params.ncu_delay = 3;
            c.config.net.hop_delay_min = 0;
            c.config.ncu_delay_min = 1;
            runner.add(std::move(c));
        }
        return runner.run();
    };
    const auto a = build(1);
    const auto b = build(1);
    const auto c = build(99);
    ASSERT_EQ(a.size(), 2u);
    // Same master seed: identical rows. Different master seed: the
    // jittered schedules (and hence completion times) should differ for
    // at least one case.
    EXPECT_EQ(a[0].completion, b[0].completion);
    EXPECT_EQ(a[1].completion, b[1].completion);
    EXPECT_TRUE(a[0].completion != c[0].completion || a[1].completion != c[1].completion);
    // Two identical case descriptions still get distinct derived seeds
    // (per-index streams), so their jitter differs.
    EXPECT_NE(a[0].completion, a[1].completion);
}

}  // namespace
}  // namespace fastnet::exec
