// Tests for the hardware model: labels, switch matching, ANR routing,
// selective copy, reverse routes, failures and dmax — the Section 2 model.
#include <gtest/gtest.h>

#include <vector>

#include "cost/metrics.hpp"
#include "graph/generators.hpp"
#include "hw/network.hpp"
#include "hw/switch.hpp"
#include "sim/simulator.hpp"

namespace fastnet::hw {
namespace {

using graph::Graph;

// Deliberately NOT a TypedPayload: exercises the RTTI fallback of
// payload_as<T> behind its static_assert-checked opt-in.
struct TextPayload : Payload {
    static constexpr bool kRttiPayload = true;
    explicit TextPayload(std::string s) : text(std::move(s)) {}
    std::string text;
};

TEST(AnrLabel, NormalAndCopyEncoding) {
    const AnrLabel n = AnrLabel::normal(3);
    EXPECT_EQ(n.port(), 3u);
    EXPECT_FALSE(n.is_copy());
    const AnrLabel c = AnrLabel::copy(3);
    EXPECT_EQ(c.port(), 3u);
    EXPECT_TRUE(c.is_copy());
    EXPECT_FALSE(n == c);
}

TEST(AnrLabel, NcuPortHasNoCopyId) {
    EXPECT_THROW(AnrLabel::copy(kNcuPort), ContractViolation);
}

TEST(Switch, NormalIdMatchesExactlyItsPort) {
    const SwitchingSubsystem ss(4);
    const auto d = ss.match(AnrLabel::normal(2));
    EXPECT_FALSE(d.to_ncu);
    ASSERT_TRUE(d.forward_port.has_value());
    EXPECT_EQ(*d.forward_port, 2u);
}

TEST(Switch, NcuIdMatchesNcuOnly) {
    const SwitchingSubsystem ss(4);
    const auto d = ss.match(AnrLabel::normal(kNcuPort));
    EXPECT_TRUE(d.to_ncu);
    EXPECT_FALSE(d.forward_port.has_value());
}

TEST(Switch, CopyIdFansOutToLinkAndNcu) {
    const SwitchingSubsystem ss(4);
    const auto d = ss.match(AnrLabel::copy(1));
    EXPECT_TRUE(d.to_ncu);
    ASSERT_TRUE(d.forward_port.has_value());
    EXPECT_EQ(*d.forward_port, 1u);
}

TEST(Switch, UnknownPortMatchesNothing) {
    const SwitchingSubsystem ss(2);
    EXPECT_FALSE(ss.match(AnrLabel::normal(9)).matched());
    EXPECT_FALSE(ss.match(AnrLabel::copy(9)).matched());
}

TEST(Anr, SpliceRemovesIntermediateNcuStop) {
    AnrHeader a{AnrLabel::normal(1), AnrLabel::normal(kNcuPort)};
    const AnrHeader b{AnrLabel::normal(2), AnrLabel::normal(kNcuPort)};
    const AnrHeader s = splice(std::move(a), b);
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s[0].port(), 1u);
    EXPECT_EQ(s[1].port(), 2u);
    EXPECT_EQ(s[2].port(), kNcuPort);
}

TEST(Anr, SpliceRequiresNcuTerminatedPrefix) {
    AnrHeader a{AnrLabel::normal(1)};
    EXPECT_THROW(splice(std::move(a), {}), ContractViolation);
}

// ---- transport fixture ----------------------------------------------

struct Fixture {
    explicit Fixture(Graph graph, ModelParams params = ModelParams::fast_network(),
                     NetworkConfig cfg = {})
        : g(std::move(graph)), metrics(g.node_count()), net(sim, g, params, metrics, cfg) {
        for (NodeId u = 0; u < g.node_count(); ++u)
            net.set_ncu_sink(u, [this, u](const Delivery& d) { inbox[u].push_back(d); });
        inbox.resize(g.node_count());
    }
    sim::Simulator sim;
    Graph g;
    cost::Metrics metrics;
    Network net;
    std::vector<std::vector<Delivery>> inbox;
};

TEST(Network, RelaysAlongPathWithoutIntermediateDeliveries) {
    Fixture f(graph::make_path(4));
    const std::vector<NodeId> path{0, 1, 2, 3};
    f.net.send(0, f.net.route(path), std::make_shared<TextPayload>("hi"));
    f.sim.run();
    EXPECT_TRUE(f.inbox[1].empty());
    EXPECT_TRUE(f.inbox[2].empty());
    ASSERT_EQ(f.inbox[3].size(), 1u);
    const Delivery& d = f.inbox[3][0];
    EXPECT_EQ(d.at, 3u);
    EXPECT_EQ(d.hops, 3u);
    EXPECT_TRUE(d.remaining.empty());
    EXPECT_EQ(payload_as<TextPayload>(d)->text, "hi");
}

TEST(Network, SelectiveCopyDropsAtIntermediates) {
    Fixture f(graph::make_path(4));
    const std::vector<NodeId> path{0, 1, 2, 3};
    f.net.send(0, f.net.route(path, CopyMode::kIntermediates),
               std::make_shared<TextPayload>("bcast"));
    f.sim.run();
    ASSERT_EQ(f.inbox[1].size(), 1u);
    ASSERT_EQ(f.inbox[2].size(), 1u);
    ASSERT_EQ(f.inbox[3].size(), 1u);
    EXPECT_TRUE(f.inbox[0].empty()) << "sender must not receive its own copy";
    // A mid-route copy still shows the remaining route.
    EXPECT_FALSE(f.inbox[1][0].remaining.empty());
    EXPECT_TRUE(f.inbox[3][0].remaining.empty());
}

TEST(Network, ReverseRouteReachesSender) {
    Fixture f(graph::make_path(5));
    const std::vector<NodeId> path{0, 1, 2, 3, 4};
    f.net.send(0, f.net.route(path), std::make_shared<TextPayload>("ping"));
    f.sim.run();
    ASSERT_EQ(f.inbox[4].size(), 1u);
    f.net.send(4, f.inbox[4][0].reverse, std::make_shared<TextPayload>("pong"));
    f.sim.run();
    ASSERT_EQ(f.inbox[0].size(), 1u);
    EXPECT_EQ(payload_as<TextPayload>(f.inbox[0][0])->text, "pong");
    EXPECT_EQ(f.inbox[0][0].hops, 4u);
}

TEST(Network, ReverseRouteOfCopyDeliveryWorksMidPath) {
    Fixture f(graph::make_path(4));
    const std::vector<NodeId> path{0, 1, 2, 3};
    f.net.send(0, f.net.route(path, CopyMode::kIntermediates),
               std::make_shared<TextPayload>("x"));
    f.sim.run();
    ASSERT_EQ(f.inbox[2].size(), 1u);
    f.net.send(2, f.inbox[2][0].reverse, std::make_shared<TextPayload>("back"));
    f.sim.run();
    ASSERT_EQ(f.inbox[0].size(), 1u);
    EXPECT_EQ(payload_as<TextPayload>(f.inbox[0][0])->text, "back");
}

TEST(Network, HopDelayAccumulates) {
    ModelParams p;
    p.hop_delay = 7;
    p.ncu_delay = 1;
    Fixture f(graph::make_path(4), p);
    const std::vector<NodeId> path{0, 1, 2, 3};
    f.net.send(0, f.net.route(path), std::make_shared<TextPayload>(""));
    f.sim.run();
    EXPECT_EQ(f.sim.now(), 21);  // 3 hops * C
}

TEST(Network, InactiveLinkDropsPacket) {
    Fixture f(graph::make_path(3));
    f.net.fail_link(f.g.find_edge(1, 2));
    const std::vector<NodeId> path{0, 1, 2};
    f.net.send(0, f.net.route(path), std::make_shared<TextPayload>(""));
    f.sim.run();
    EXPECT_TRUE(f.inbox[2].empty());
    EXPECT_EQ(f.metrics.net().drops_inactive_link, 1u);
}

TEST(Network, PacketInFlightAcrossFailureIsDropped) {
    ModelParams p;
    p.hop_delay = 10;
    Fixture f(graph::make_path(2), p);
    const std::vector<NodeId> path{0, 1};
    f.net.send(0, f.net.route(path), std::make_shared<TextPayload>(""));
    // Fail the link while the packet is on the wire.
    f.sim.at(5, [&] { f.net.fail_link(0); });
    f.sim.run();
    EXPECT_TRUE(f.inbox[1].empty());
    EXPECT_EQ(f.metrics.net().drops_inactive_link, 1u);
}

TEST(Network, FailRestoreCycleStillDropsInFlight) {
    ModelParams p;
    p.hop_delay = 10;
    Fixture f(graph::make_path(2), p);
    const std::vector<NodeId> path{0, 1};
    f.net.send(0, f.net.route(path), std::make_shared<TextPayload>(""));
    f.sim.at(3, [&] { f.net.fail_link(0); });
    f.sim.at(5, [&] { f.net.restore_link(0); });
    f.sim.run();
    EXPECT_TRUE(f.inbox[1].empty()) << "flapped link must not resurrect old packets";
}

TEST(Network, DmaxRejectsOverlongHeaders) {
    ModelParams p = ModelParams::fast_network();
    p.dmax = 3;
    Fixture f(graph::make_path(6), p);
    const std::vector<NodeId> ok{0, 1, 2};
    EXPECT_NO_THROW(f.net.send(0, f.net.route(ok), std::make_shared<TextPayload>("")));
    const std::vector<NodeId> toolong{0, 1, 2, 3, 4, 5};
    EXPECT_THROW(f.net.send(0, f.net.route(toolong), std::make_shared<TextPayload>("")),
                 ContractViolation);
}

TEST(Network, MisrouteIsCountedNotFatal) {
    Fixture f(graph::make_path(2));
    // Port 5 does not exist at node 0 (degree 1).
    f.net.send(0, {AnrLabel::normal(5)}, std::make_shared<TextPayload>(""));
    f.sim.run();
    EXPECT_EQ(f.metrics.net().drops_no_match, 1u);
}

TEST(Network, LinkNotificationReachesBothEndpointsAfterDetectionDelay) {
    NetworkConfig cfg;
    cfg.detection_delay = 4;
    Fixture f(graph::make_path(3), ModelParams::fast_network(), cfg);
    std::vector<std::tuple<NodeId, EdgeId, bool>> events;
    f.net.set_link_sink([&](NodeId at, EdgeId e, bool up) { events.emplace_back(at, e, up); });
    f.sim.at(10, [&] { f.net.fail_link(0); });
    f.sim.run();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(f.sim.now(), 14);
    EXPECT_EQ(std::get<2>(events[0]), false);
}

TEST(Network, FlappingLinkSuppressesStaleNotification) {
    NetworkConfig cfg;
    cfg.detection_delay = 10;
    Fixture f(graph::make_path(2), ModelParams::fast_network(), cfg);
    std::vector<bool> states;
    f.net.set_link_sink([&](NodeId, EdgeId, bool up) { states.push_back(up); });
    f.sim.at(0, [&] { f.net.fail_link(0); });
    f.sim.at(5, [&] { f.net.restore_link(0); });
    f.sim.run();
    // Only the final (persistent) state is reported, to both endpoints.
    ASSERT_EQ(states.size(), 2u);
    EXPECT_TRUE(states[0]);
    EXPECT_TRUE(states[1]);
}

TEST(Network, FifoPreservedUnderJitter) {
    ModelParams p;
    p.hop_delay = 20;
    NetworkConfig cfg;
    cfg.hop_delay_min = 1;
    cfg.seed = 5;
    Fixture f(graph::make_path(2), p, cfg);
    const std::vector<NodeId> path{0, 1};
    for (int i = 0; i < 50; ++i)
        f.net.send(0, f.net.route(path), std::make_shared<TextPayload>(std::to_string(i)));
    f.sim.run();
    ASSERT_EQ(f.inbox[1].size(), 50u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(payload_as<TextPayload>(f.inbox[1][i])->text, std::to_string(i));
}

TEST(Network, MetricsCountHopsAndDeliveries) {
    Fixture f(graph::make_path(4));
    const std::vector<NodeId> path{0, 1, 2, 3};
    f.net.send(0, f.net.route(path, CopyMode::kIntermediates),
               std::make_shared<TextPayload>(""));
    f.sim.run();
    EXPECT_EQ(f.metrics.net().injections, 1u);
    EXPECT_EQ(f.metrics.net().hops, 3u);
    EXPECT_EQ(f.metrics.net().ncu_deliveries, 3u);
    EXPECT_EQ(f.metrics.net().max_header_len, 4u);
}

TEST(Network, NodeFailureDeactivatesAllIncidentLinks) {
    Fixture f(graph::make_star(4));
    f.net.fail_node(0);
    for (EdgeId e = 0; e < f.g.edge_count(); ++e) EXPECT_FALSE(f.net.link_active(e));
    f.net.restore_node(0);
    for (EdgeId e = 0; e < f.g.edge_count(); ++e) EXPECT_TRUE(f.net.link_active(e));
}

TEST(Network, PortGeometryRoundTrips) {
    Fixture f(graph::make_star(5));
    for (NodeId u = 0; u < 5; ++u) {
        for (const auto& ie : f.g.incident(u)) {
            const PortId p = f.net.port_for_edge(u, ie.edge);
            EXPECT_NE(p, kNoPort);
            EXPECT_EQ(f.net.edge_at_port(u, p), ie.edge);
            EXPECT_EQ(f.net.port_to_neighbor(u, ie.neighbor), p);
        }
    }
    EXPECT_EQ(f.net.port_to_neighbor(1, 2), kNoPort);  // leaves not adjacent
}

}  // namespace
}  // namespace fastnet::hw
