// Property tests for the spatial partitioner behind the parallel kernel.
//
// partition_bfs must be an exact cover (every node in exactly one
// shard), balanced (sizes differ by at most one), and a pure function
// of (graph, shard count) — the parallel kernel's cross-shard event
// order is built on top of it, so any instability here would surface as
// trace divergence between runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"

namespace fastnet::graph {
namespace {

/// Checks the structural invariants every partition must satisfy.
void expect_valid(const Graph& g, const Partition& p) {
    ASSERT_GE(p.shard_count, 1u);
    ASSERT_EQ(p.shard_of.size(), g.node_count());
    ASSERT_EQ(p.shard_size.size(), p.shard_count);

    // Exact cover: shard_of is total, in range, and shard_size counts it.
    std::vector<std::uint32_t> counted(p.shard_count, 0);
    for (NodeId u = 0; u < g.node_count(); ++u) {
        ASSERT_LT(p.shard_of[u], p.shard_count) << "node " << u;
        ++counted[p.shard_of[u]];
    }
    EXPECT_EQ(counted, p.shard_size);

    // Boundary list: exactly the cross-shard edges, ascending, unique.
    std::vector<EdgeId> expected;
    for (EdgeId e = 0; e < g.edge_count(); ++e)
        if (p.shard_of[g.edge(e).a] != p.shard_of[g.edge(e).b]) expected.push_back(e);
    EXPECT_EQ(expected, p.boundary_edges);
    for (EdgeId e : p.boundary_edges) EXPECT_TRUE(p.boundary(g, e));
}

TEST(Partition, SingleShardCoversEverythingWithNoBoundary) {
    Rng rng(7);
    const Graph g = make_random_connected(17, 1, 3, rng);
    const Partition p = partition_bfs(g, 1);
    expect_valid(g, p);
    EXPECT_EQ(p.shard_count, 1u);
    EXPECT_TRUE(p.boundary_edges.empty());
    EXPECT_EQ(p.shard_size[0], g.node_count());
}

TEST(Partition, CoversAllNodesExactlyOnceAcrossShapes) {
    Rng rng(11);
    const Graph graphs[] = {
        make_path(1),          make_path(2),           make_cycle(9),
        make_star(12),         make_grid(5, 7),        make_complete(8),
        make_hypercube(4),     make_caterpillar(6, 3), make_podc_example(),
        make_random_connected(40, 1, 4, rng),
    };
    for (const Graph& g : graphs)
        for (std::uint32_t s : {1u, 2u, 3u, 5u, 8u})
            expect_valid(g, partition_bfs(g, s));
}

TEST(Partition, ShardSizesDifferByAtMostOne) {
    Rng rng(23);
    const Graph g = make_random_connected(37, 1, 5, rng);
    for (std::uint32_t s : {2u, 3u, 4u, 7u, 12u, 36u}) {
        const Partition p = partition_bfs(g, s);
        const auto [lo, hi] =
            std::minmax_element(p.shard_size.begin(), p.shard_size.end());
        EXPECT_LE(*hi - *lo, 1u) << "shards=" << s;
    }
}

TEST(Partition, ClampsShardCountToNodes) {
    const Graph g = make_cycle(6);
    const Partition over = partition_bfs(g, 100);
    expect_valid(g, over);
    EXPECT_EQ(over.shard_count, 6u);
    for (std::uint32_t size : over.shard_size) EXPECT_EQ(size, 1u);

    const Partition zero = partition_bfs(g, 0);
    expect_valid(g, zero);
    EXPECT_EQ(zero.shard_count, 1u);
}

TEST(Partition, HandlesDisconnectedGraphs) {
    // Two triangles and an isolated node; BFS must restart per component.
    Graph g(7);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 0);
    g.add_edge(3, 4);
    g.add_edge(4, 5);
    g.add_edge(5, 3);
    for (std::uint32_t s : {1u, 2u, 3u, 7u}) expect_valid(g, partition_bfs(g, s));
}

TEST(Partition, EmptyGraphYieldsOneEmptyShard) {
    const Graph g;
    const Partition p = partition_bfs(g, 4);
    EXPECT_EQ(p.shard_count, 1u);
    EXPECT_TRUE(p.shard_of.empty());
    EXPECT_TRUE(p.boundary_edges.empty());
}

TEST(Partition, IsDeterministic) {
    Rng rng(5);
    const Graph g = make_random_connected(29, 2, 5, rng);
    for (std::uint32_t s : {2u, 5u, 9u}) {
        const Partition a = partition_bfs(g, s);
        const Partition b = partition_bfs(g, s);
        EXPECT_EQ(a.shard_of, b.shard_of);
        EXPECT_EQ(a.boundary_edges, b.boundary_edges);
        EXPECT_EQ(a.shard_size, b.shard_size);
    }
}

// ---- delay-aware variant -------------------------------------------------

/// Deterministic heterogeneous delays in [1, 9] per edge.
std::vector<Tick> synth_delays(const Graph& g, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<Tick> d(g.edge_count());
    for (EdgeId e = 0; e < g.edge_count(); ++e) d[e] = rng.range(1, 9);
    return d;
}

Tick min_boundary_delay(const Partition& p, const std::vector<Tick>& delays) {
    Tick best = kNever;
    for (EdgeId e : p.boundary_edges) best = std::min(best, delays[e]);
    return best;
}

TEST(PartitionWeighted, SatisfiesAllStructuralInvariants) {
    Rng rng(31);
    const Graph graphs[] = {
        make_path(1),      make_cycle(9),          make_star(12),
        make_grid(5, 7),   make_complete(8),       make_podc_example(),
        make_random_connected(40, 1, 4, rng),
    };
    for (const Graph& g : graphs) {
        const std::vector<Tick> delays = synth_delays(g, 3);
        for (std::uint32_t s : {1u, 2u, 3u, 5u, 8u}) {
            const Partition p = partition_bfs_weighted(g, s, delays);
            expect_valid(g, p);
            const auto [lo, hi] =
                std::minmax_element(p.shard_size.begin(), p.shard_size.end());
            EXPECT_LE(*hi - *lo, 1u);
        }
    }
}

TEST(PartitionWeighted, IsDeterministic) {
    Rng rng(13);
    const Graph g = make_random_connected(33, 2, 5, rng);
    const std::vector<Tick> delays = synth_delays(g, 17);
    for (std::uint32_t s : {2u, 5u, 9u}) {
        const Partition a = partition_bfs_weighted(g, s, delays);
        const Partition b = partition_bfs_weighted(g, s, delays);
        EXPECT_EQ(a.shard_of, b.shard_of);
        EXPECT_EQ(a.boundary_edges, b.boundary_edges);
        EXPECT_EQ(a.shard_size, b.shard_size);
    }
}

TEST(PartitionWeighted, PrefersToCutTheExpensiveEdge) {
    // Two 3-cliques of cheap (delay 1) edges joined by one expensive
    // (delay 9) bridge: a 2-way split must cut exactly the bridge.
    Graph g(6);
    const std::vector<std::pair<NodeId, NodeId>> cheap = {
        {0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}};
    for (auto [a, b] : cheap) g.add_edge(a, b);
    const EdgeId bridge = g.add_edge(2, 3);
    std::vector<Tick> delays(g.edge_count(), 1);
    delays[bridge] = 9;
    const Partition p = partition_bfs_weighted(g, 2, delays);
    expect_valid(g, p);
    ASSERT_EQ(p.boundary_edges.size(), 1u);
    EXPECT_EQ(p.boundary_edges[0], bridge);
}

TEST(PartitionWeighted, BoundaryLookaheadAtLeastMatchesUnweighted) {
    // On heterogeneous-delay graphs the delay-aware cut's minimum
    // boundary delay (the parallel kernel's lookahead) must never be
    // worse than the delay-blind one's.
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull, 6ull, 7ull, 8ull}) {
        Rng rng(seed);
        const Graph g = make_random_connected(48, 1, 3, rng);
        const std::vector<Tick> delays = synth_delays(g, seed * 101);
        for (std::uint32_t s : {2u, 4u}) {
            const Partition blind = partition_bfs(g, s);
            const Partition aware = partition_bfs_weighted(g, s, delays);
            expect_valid(g, aware);
            if (blind.boundary_edges.empty() || aware.boundary_edges.empty()) continue;
            EXPECT_GE(min_boundary_delay(aware, delays),
                      min_boundary_delay(blind, delays))
                << "seed=" << seed << " shards=" << s;
        }
    }
}

TEST(PartitionWeighted, UniformDelaysStillBalancedAndContiguousish) {
    // With uniform delays the weighted variant has no signal; it must
    // still produce a valid balanced partition of a disconnected graph.
    Graph g(7);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 0);
    g.add_edge(3, 4);
    g.add_edge(4, 5);
    g.add_edge(5, 3);
    const std::vector<Tick> delays(g.edge_count(), 4);
    for (std::uint32_t s : {1u, 2u, 3u, 7u})
        expect_valid(g, partition_bfs_weighted(g, s, delays));
}

TEST(Partition, ShardsAreBfsContiguousOnAPath) {
    // On a path, contiguous BFS regions are intervals: every shard's
    // nodes form one consecutive block.
    const Graph g = make_path(12);
    const Partition p = partition_bfs(g, 4);
    expect_valid(g, p);
    for (NodeId u = 0; u + 1 < g.node_count(); ++u)
        EXPECT_LE(p.shard_of[u], p.shard_of[u + 1]);
}

}  // namespace
}  // namespace fastnet::graph
