// Baseline ring elections under the system-call measure (Section 4's
// motivation): Chang-Roberts and Hirschberg-Sinclair.
#include <gtest/gtest.h>

#include <cmath>

#include "election/ring_election.hpp"
#include "graph/generators.hpp"

namespace fastnet::elect {
namespace {

TEST(ChangRoberts, ElectsMaxIdOnRing) {
    const auto out = run_chang_roberts(8);
    EXPECT_TRUE(out.unique_leader);
    EXPECT_EQ(out.leader, 7u);  // max id wins CR
    EXPECT_TRUE(out.all_decided);
}

TEST(ChangRoberts, BestCaseSortedRingIsTwoNMinusOne) {
    // Priorities increase clockwise: every token except the winner's is
    // swallowed after one hop, and the winner's token does one full lap:
    // (n - 1) + n = 2n - 1 election messages exactly.
    const auto out = run_chang_roberts(16);
    EXPECT_TRUE(out.unique_leader);
    EXPECT_EQ(out.election_messages, 2u * 16 - 1);
}

TEST(ChangRoberts, RandomPrioritiesCostMoreThanBestCase) {
    std::uint64_t total = 0;
    const NodeId n = 64;
    for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
        const auto out = run_chang_roberts(n, {}, seed);
        EXPECT_TRUE(out.unique_leader) << seed;
        total += out.election_messages;
    }
    // Expected ~ n H_n + n ~ 64*(4.7 + 1) ~ 365 per run; far above 2n-1.
    EXPECT_GT(total / 5, 2ull * n - 1);
}

TEST(ChangRoberts, SystemCallsEqualDirectMessages) {
    // Every baseline message is one hop: hardware helps not at all.
    const auto out = run_chang_roberts(12);
    EXPECT_EQ(out.cost.system_calls, out.cost.direct_messages);
    EXPECT_EQ(out.cost.hops, out.cost.direct_messages);
}

TEST(HirschbergSinclair, ElectsMaxPriority) {
    // Sorted priorities: the max node id wins.
    for (NodeId n : {3u, 4u, 9u, 32u, 33u}) {
        const auto out = run_hirschberg_sinclair(n);
        EXPECT_TRUE(out.unique_leader) << n;
        EXPECT_EQ(out.leader, n - 1) << n;
        EXPECT_TRUE(out.all_decided) << n;
    }
    // Random priorities: some unique leader, everyone agrees.
    for (std::uint64_t seed : {1, 2, 3}) {
        const auto out = run_hirschberg_sinclair(32, {}, seed);
        EXPECT_TRUE(out.unique_leader) << seed;
        EXPECT_TRUE(out.all_decided) << seed;
    }
}

TEST(HirschbergSinclair, MessagesAreOrderNLogN) {
    for (NodeId n : {32u, 64u, 128u, 256u}) {
        const auto out = run_hirschberg_sinclair(n, {}, /*priority_seed=*/7);
        const double upper = 10.0 * n * (std::log2(n) + 1);
        const double lower = 0.5 * n * std::log2(n);
        EXPECT_LE(out.election_messages, upper) << n;
        EXPECT_GE(out.election_messages, lower) << n;
    }
}

TEST(HirschbergSinclair, RandomPrioritiesCostMoreThanSorted) {
    const NodeId n = 256;
    const auto sorted = run_hirschberg_sinclair(n);
    const auto random = run_hirschberg_sinclair(n, {}, 5);
    EXPECT_GT(random.election_messages, sorted.election_messages);
}

TEST(Baselines, NewAlgorithmBeatsThemOnLargeRings) {
    // The headline comparison on a 512-ring: <= 6n for the new algorithm
    // versus n log n-ish for the traditional ones (system calls). CR is
    // run in its average case (random priorities).
    const NodeId n = 512;
    ElectionOptions opt;
    opt.announce = false;
    const auto ours = run_election(graph::make_cycle(n), opt);
    const auto cr = run_chang_roberts(n, {}, /*priority_seed=*/42);
    const auto hs = run_hirschberg_sinclair(n, {}, /*priority_seed=*/42);
    EXPECT_TRUE(ours.unique_leader);
    EXPECT_LE(ours.election_messages, 6ull * n);
    EXPECT_GT(cr.election_messages, ours.election_messages);
    EXPECT_GT(hs.election_messages, ours.election_messages);
}

}  // namespace
}  // namespace fastnet::elect
