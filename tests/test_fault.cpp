// The crash-recovery story end to end: hard crash semantics at the NCU,
// selective node restore at the link layer, seeded loss/duplication,
// the fault injector's determinism, and the convergence oracle — both
// on hand-built clusters and on the real protocols (maintenance, router,
// election) surviving scripted crash churn.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "election/election.hpp"
#include "fault/injector.hpp"
#include "fault/oracle.hpp"
#include "graph/generators.hpp"
#include "node/scenario.hpp"
#include "topo/router.hpp"
#include "topo/topology_maintenance.hpp"

namespace fastnet::fault {
namespace {

struct Ping final : hw::TypedPayload<Ping> {};

/// Records handler invocations across protocol instances: the shared
/// block survives the crash that destroys the instance, so tests can see
/// both lives of a node.
struct Probe final : node::Protocol {
    struct Shared {
        int starts = 0;
        int restarts = 0;
        int timer_fires = 0;
        int deliveries = 0;
        std::vector<std::uint64_t> incarnations;
    };

    explicit Probe(std::shared_ptr<Shared> s, Tick timer_delay = 0)
        : s_(std::move(s)), timer_delay_(timer_delay) {}

    void on_start(node::Context& ctx) override {
        s_->starts += 1;
        s_->incarnations.push_back(ctx.incarnation());
        if (timer_delay_ > 0) ctx.set_timer(timer_delay_, 7);
    }
    void on_restart(node::Context& ctx) override {
        s_->restarts += 1;
        s_->incarnations.push_back(ctx.incarnation());
    }
    void on_timer(node::Context&, std::uint64_t) override { s_->timer_fires += 1; }
    void on_message(node::Context&, const hw::Delivery&) override { s_->deliveries += 1; }

    std::shared_ptr<Shared> s_;
    Tick timer_delay_;
};

struct ProbeCluster {
    ProbeCluster(graph::Graph g, node::ClusterConfig cfg = {}, Tick timer_delay = 0)
        : shared(g.node_count()) {
        for (auto& s : shared) s = std::make_shared<Probe::Shared>();
        cluster = std::make_unique<node::Cluster>(
            std::move(g),
            [this, timer_delay](NodeId u) {
                return std::make_unique<Probe>(shared[u], timer_delay);
            },
            cfg);
    }
    std::vector<std::shared_ptr<Probe::Shared>> shared;
    std::unique_ptr<node::Cluster> cluster;
};

node::ProtocolFactory idle_factory() {
    return [](NodeId) { return std::make_unique<node::Protocol>(); };
}

// ---- crash semantics at the NCU ---------------------------------------

TEST(Crash, WipesPendingTimers) {
    ProbeCluster pc(graph::make_path(2), {}, /*timer_delay=*/1000);
    pc.cluster->start(0, 0);
    node::Scenario().crash_node(10, 0).apply(*pc.cluster);
    pc.cluster->run();
    EXPECT_EQ(pc.shared[0]->starts, 1);
    EXPECT_EQ(pc.shared[0]->timer_fires, 0) << "a crashed node's timers must not fire";
    EXPECT_TRUE(pc.cluster->crashed(0));
    EXPECT_EQ(pc.cluster->metrics().node(0).crashes, 1u);
}

TEST(Crash, RestartBuildsFreshInstanceUnderBumpedIncarnation) {
    ProbeCluster pc(graph::make_path(2), {}, /*timer_delay=*/1000);
    pc.cluster->start(0, 0);
    node::Scenario().crash_node(10, 0).restart_node(20, 0).apply(*pc.cluster);
    pc.cluster->run();
    EXPECT_EQ(pc.shared[0]->starts, 1);
    EXPECT_EQ(pc.shared[0]->restarts, 1);
    ASSERT_EQ(pc.shared[0]->incarnations.size(), 2u);
    EXPECT_EQ(pc.shared[0]->incarnations[0], 0u);
    EXPECT_EQ(pc.shared[0]->incarnations[1], 1u);
    EXPECT_FALSE(pc.cluster->crashed(0));
    EXPECT_EQ(pc.cluster->metrics().node(0).restarts, 1u);
    // The first life's timer died with the first instance.
    EXPECT_EQ(pc.shared[0]->timer_fires, 0);
}

TEST(Crash, IdempotentAndRestartIsNoopOnLiveNodes) {
    ProbeCluster pc(graph::make_path(2));
    pc.cluster->crash_node(0);
    pc.cluster->crash_node(0);  // second crash of a dead node: no-op
    EXPECT_EQ(pc.cluster->metrics().node(0).crashes, 1u);
    pc.cluster->restart_node(0);
    pc.cluster->restart_node(0);  // already live again: no-op
    pc.cluster->restart_node(1);  // never crashed: no-op
    pc.cluster->run();
    EXPECT_EQ(pc.cluster->metrics().node(0).restarts, 1u);
    EXPECT_EQ(pc.cluster->metrics().node(1).restarts, 0u);
    EXPECT_EQ(pc.shared[1]->restarts, 0);
}

TEST(Crash, DropsInFlightPacketsViaEpochBump) {
    node::ClusterConfig cfg;
    cfg.params.hop_delay = 10;
    ProbeCluster pc(graph::make_path(2), cfg);
    auto& c = *pc.cluster;
    c.simulator().at(0, [&c] {
        c.network().send(0, c.network().route(std::vector<NodeId>{0, 1}),
                         std::make_shared<Ping>());
    });
    c.simulator().at(5, [&c] { c.crash_node(1); });  // packet is mid-link
    c.run();
    EXPECT_EQ(pc.shared[1]->deliveries, 0) << "packet must die with the epoch";
    EXPECT_EQ(c.metrics().net().ncu_deliveries, 0u);
    EXPECT_EQ(c.network().packets_in_flight(), 0u) << "dropped packet leaked its cursor";
}

// ---- selective node restore at the link layer -------------------------

TEST(NodeRestore, SkipsLinksThatFailedIndependently) {
    node::Cluster c(graph::make_complete(3), idle_factory());
    const EdgeId e01 = c.graph().find_edge(0, 1);
    const EdgeId e02 = c.graph().find_edge(0, 2);
    c.network().fail_link(e01);  // independent failure, not the crash's doing
    c.crash_node(0);             // downs e02 (e01 was already down)
    c.restart_node(0);
    c.run();
    EXPECT_TRUE(c.network().link_active(e02)) << "the crash's own link must come back";
    EXPECT_FALSE(c.network().link_active(e01)) << "an independent failure must persist";
}

TEST(NodeRestore, SkipsLinksTouchedSinceTheCrash) {
    node::Cluster c(graph::make_path(2), idle_factory());
    const EdgeId e01 = c.graph().find_edge(0, 1);
    c.crash_node(1);                   // downs e01, records its epoch
    c.network().restore_link(e01);     // repaired by someone else meanwhile
    EXPECT_TRUE(c.network().link_active(e01));
    c.restart_node(1);                 // stale record: epoch moved on, skip
    c.run();
    EXPECT_TRUE(c.network().link_active(e01));
}

TEST(NodeRestore, DefersSharedLinkUntilBothEndpointsAreBack) {
    node::Cluster c(graph::make_path(3), idle_factory());
    const EdgeId e01 = c.graph().find_edge(0, 1);
    const EdgeId e12 = c.graph().find_edge(1, 2);
    c.crash_node(1);  // downs e01 and e12
    c.crash_node(2);  // e12 already down; attributed to node 1's record
    c.restart_node(1);
    EXPECT_TRUE(c.network().link_active(e01));
    EXPECT_FALSE(c.network().link_active(e12)) << "peer still down: link must wait";
    c.restart_node(2);
    EXPECT_TRUE(c.network().link_active(e12));
    c.run();
}

// ---- seeded packet-level faults ---------------------------------------

TEST(PacketFaults, CertainLossDropsEveryTransmission) {
    node::ClusterConfig cfg;
    cfg.net.loss_ppm = 1'000'000;
    ProbeCluster pc(graph::make_path(2), cfg);
    auto& c = *pc.cluster;
    c.simulator().at(0, [&c] {
        c.network().send(0, c.network().route(std::vector<NodeId>{0, 1}),
                         std::make_shared<Ping>());
    });
    c.run();
    EXPECT_EQ(pc.shared[1]->deliveries, 0);
    EXPECT_EQ(c.metrics().net().drops_injected, 1u);
    EXPECT_EQ(c.network().packets_in_flight(), 0u);
}

TEST(PacketFaults, CertainDuplicationDeliversTwiceAndIsAccounted) {
    node::ClusterConfig cfg;
    cfg.net.dup_ppm = 1'000'000;
    ProbeCluster pc(graph::make_path(2), cfg);
    auto& c = *pc.cluster;
    c.simulator().at(0, [&c] {
        c.network().send(0, c.network().route(std::vector<NodeId>{0, 1}),
                         std::make_shared<Ping>());
    });
    c.run();
    EXPECT_EQ(pc.shared[1]->deliveries, 2) << "dup_ppm=100% must deliver both copies";
    EXPECT_EQ(c.metrics().net().dup_copies, 1u);
    EXPECT_EQ(c.network().packets_in_flight(), 0u);
}

// ---- NCU stalls -------------------------------------------------------

TEST(Stall, InflatesProcessingDelayDeterministically) {
    auto timed_run = [](Tick stall) {
        ProbeCluster pc(graph::make_path(2));
        pc.cluster->stall_node(0, stall);
        pc.cluster->start(0, 0);
        return pc.cluster->run();
    };
    const Tick base = timed_run(0);
    EXPECT_EQ(timed_run(50), base + 50);
}

// ---- the fault injector ----------------------------------------------

bool same_actions(const node::Scenario& a, const node::Scenario& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto& x = a.actions()[i];
        const auto& y = b.actions()[i];
        if (x.at != y.at || x.kind != y.kind || x.edge != y.edge || x.node != y.node ||
            x.amount != y.amount)
            return false;
    }
    return true;
}

FaultModel busy_model() {
    FaultModel m;
    m.link_flaps = 6;
    m.node_crashes = 3;
    m.stalls = 2;
    m.stall_max = 5;
    m.window_from = 10;
    m.window_to = 200;
    m.heal_at = 250;
    return m;
}

TEST(Injector, CompileIsPureInModelSeedGraph) {
    const graph::Graph g = graph::make_cycle(8);
    const FaultInjector inj(busy_model(), 77);
    EXPECT_TRUE(same_actions(inj.compile(g), inj.compile(g)));
    const FaultInjector twin(busy_model(), 77);
    EXPECT_TRUE(same_actions(inj.compile(g), twin.compile(g)));
    const FaultInjector other(busy_model(), 78);
    EXPECT_FALSE(same_actions(inj.compile(g), other.compile(g)));
}

TEST(Injector, HealLeavesTheNetworkWhole) {
    node::Cluster c(graph::make_cycle(8), idle_factory());
    const FaultInjector inj(busy_model(), 5);
    const node::Scenario s = inj.compile(c.graph());
    EXPECT_EQ(s.last_action_at(), busy_model().heal_at);
    s.apply(c);
    c.run();
    for (EdgeId e = 0; e < c.graph().edge_count(); ++e)
        EXPECT_TRUE(c.network().link_active(e)) << "edge " << e;
    for (NodeId u = 0; u < c.node_count(); ++u) {
        EXPECT_FALSE(c.crashed(u)) << "node " << u;
        EXPECT_FALSE(c.network().node_failed(u)) << "node " << u;
    }
}

TEST(Injector, RespectsProtectionAndWindow) {
    const graph::Graph g = graph::make_cycle(6);
    FaultModel m;
    m.node_crashes = 8;
    m.window_from = 100;
    m.window_to = 300;
    m.protect_nodes = {0, 3};
    const node::Scenario s = FaultInjector(m, 9).compile(g);
    ASSERT_GT(s.size(), 0u);
    for (const auto& a : s.actions()) {
        EXPECT_TRUE(a.kind == node::ScenarioAction::Kind::kCrashNode ||
                    a.kind == node::ScenarioAction::Kind::kRestartNode);
        EXPECT_NE(a.node, NodeId{0});
        EXPECT_NE(a.node, NodeId{3});
        EXPECT_GE(a.at, m.window_from);
        EXPECT_LE(a.at, m.window_to);
    }
}

TEST(Injector, CrashNodesFalseYieldsSoftLinkLayerEvents) {
    const graph::Graph g = graph::make_cycle(6);
    FaultModel m;
    m.node_crashes = 6;
    m.window_from = 10;
    m.window_to = 100;
    m.crash_nodes = false;
    const node::Scenario s = FaultInjector(m, 4).compile(g);
    ASSERT_GT(s.size(), 0u);
    for (const auto& a : s.actions())
        EXPECT_TRUE(a.kind == node::ScenarioAction::Kind::kFailNode ||
                    a.kind == node::ScenarioAction::Kind::kRestoreNode);
}

TEST(Injector, ConfigureAppliesPacketFaults) {
    FaultModel m;
    m.loss_ppm = 123;
    m.dup_ppm = 456;
    node::ClusterConfig cfg;
    FaultInjector(m, 0).configure(cfg);
    EXPECT_EQ(cfg.net.loss_ppm, 123u);
    EXPECT_EQ(cfg.net.dup_ppm, 456u);
}

// ---- the convergence oracle -------------------------------------------

topo::TopologyOptions quick_topo() {
    topo::TopologyOptions o;
    o.rounds = 10;
    o.period = 50;
    return o;
}

TEST(OracleCheck, AcceptsAConvergedMaintenanceCluster) {
    node::Cluster c(graph::make_cycle(6), topo::make_topology_maintenance(6, quick_topo()));
    c.start_all(0);
    c.run();
    const OracleReport rep = check_theorem1(c);
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_EQ(rep.summary(), "ok");
}

TEST(OracleCheck, FlagsAStaleViewAndPendingWork) {
    node::Cluster c(graph::make_cycle(4), topo::make_topology_maintenance(4, quick_topo()));
    c.start_all(0);
    c.run();
    // A failure after the protocol's last round: nobody will re-learn.
    c.network().fail_link(0);
    Oracle o(c);
    o.require_views_converged();
    EXPECT_FALSE(o.ok());
    EXPECT_FALSE(o.report().summary().empty());
}

TEST(OracleCheck, FlagsAMissingDelivery) {
    topo::RouterOptions ropt;
    ropt.topology = quick_topo();
    node::Cluster c(graph::make_path(2), topo::make_routers(2, ropt));
    c.start_all(0);
    c.run();
    Oracle o(c);
    o.require_quiescent().require_no_inflight().require_received(1, 0, 999);
    EXPECT_FALSE(o.ok());
}

// ---- Theorem 1 and friends under real crash churn ---------------------

TEST(Recovery, MaintenanceReconvergesAfterCrashRestart) {
    topo::TopologyOptions topt;
    topt.rounds = 20;
    topt.period = 50;
    node::Cluster c(graph::make_cycle(6), topo::make_topology_maintenance(6, topt));
    c.start_all(0);
    node::Scenario().crash_node(100, 2).restart_node(400, 2).apply(c);
    c.run();
    EXPECT_EQ(c.metrics().node(2).crashes, 1u);
    EXPECT_EQ(c.metrics().node(2).restarts, 1u);
    const OracleReport rep = check_theorem1(c);
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(Recovery, RouterDeliversAcrossACrashedRelay) {
    topo::RouterOptions ropt;
    ropt.topology.rounds = 20;
    ropt.topology.period = 50;
    ropt.topology.full_knowledge = true;
    ropt.retry_period = 64;
    ropt.max_retries = 30;
    std::map<NodeId, std::vector<topo::SendRequest>> sends;
    sends[0] = {{40, 5, 42}};
    node::Cluster c(graph::make_cycle(6), topo::make_routers(6, ropt, sends));
    c.start_all(0);
    node::Scenario().crash_node(60, 2).restart_node(300, 2).apply(c);
    c.run();
    Oracle o(c);
    o.require_quiescent().require_no_inflight().require_views_converged()
        .require_received(5, 0, 42);
    EXPECT_TRUE(o.ok()) << o.report().summary();
}

TEST(Recovery, ElectionStaysSafeUnderCrashRestart) {
    node::Cluster c(graph::make_cycle(6),
                    [](NodeId) { return std::make_unique<elect::ElectionProtocol>(); });
    c.start_all(0);
    node::Scenario().crash_node(30, 1).restart_node(200, 1).apply(c);
    c.run();
    Oracle o(c);
    o.require_quiescent().require_no_inflight().require_at_most_one_leader();
    EXPECT_TRUE(o.ok()) << o.report().summary();
}

}  // namespace
}  // namespace fastnet::fault
