// Tests for the deterministic discrete-event core.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace fastnet::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(5); });
    q.schedule(1, [&] { order.push_back(1); });
    q.schedule(3, [&] { order.push_back(3); });
    while (!q.empty()) q.run_next();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
}

TEST(EventQueue, TieBreaksByScheduleOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(2, [&] { order.push_back(1); });
    q.schedule(2, [&] { order.push_back(2); });
    q.schedule(2, [&] { order.push_back(3); });
    while (!q.empty()) q.run_next();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelPreventsExecution) {
    EventQueue q;
    bool ran = false;
    const EventId id = q.schedule(1, [&] { ran = true; });
    q.cancel(id);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelOneOfMany) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(1, [&] { order.push_back(1); });
    const EventId id = q.schedule(2, [&] { order.push_back(2); });
    q.schedule(3, [&] { order.push_back(3); });
    q.cancel(id);
    while (!q.empty()) q.run_next();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
    EventQueue q;
    const EventId id = q.schedule(1, [] {});
    q.schedule(7, [] {});
    q.cancel(id);
    EXPECT_EQ(q.next_time(), 7);
}

TEST(EventQueue, ReentrantScheduling) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(1, [&] {
        order.push_back(1);
        q.schedule(2, [&] { order.push_back(2); });
    });
    while (!q.empty()) q.run_next();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// ---- pooled-queue edge cases -------------------------------------------

TEST(EventQueue, StaleIdDoesNotCancelSlotReuse) {
    EventQueue q;
    bool a = false, b = false;
    const EventId ida = q.schedule(1, [&] { a = true; });
    q.cancel(ida);
    // The freed slot is recycled immediately (LIFO free list); the new
    // tenant must be immune to the stale handle.
    const EventId idb = q.schedule(1, [&] { b = true; });
    EXPECT_NE(ida, idb);
    q.cancel(ida);  // stale: must be a no-op
    EXPECT_EQ(q.size(), 1u);
    while (!q.empty()) q.run_next();
    EXPECT_FALSE(a);
    EXPECT_TRUE(b);
}

TEST(EventQueue, IdOfRanEventIsStale) {
    EventQueue q;
    bool b = false;
    const EventId ida = q.schedule(1, [] {});
    q.run_next();
    const EventId idb = q.schedule(2, [&] { b = true; });  // reuses the slot
    EXPECT_NE(ida, idb);
    q.cancel(ida);  // already ran; must not hit the new tenant
    EXPECT_EQ(q.size(), 1u);
    q.run_next();
    EXPECT_TRUE(b);
}

TEST(EventQueue, CancelFrontEvent) {
    EventQueue q;
    std::vector<int> order;
    const EventId front = q.schedule(1, [&] { order.push_back(1); });
    q.schedule(2, [&] { order.push_back(2); });
    q.schedule(3, [&] { order.push_back(3); });
    ASSERT_EQ(q.next_time(), 1);  // forces the front into the ordered structures
    q.cancel(front);              // cancel *after* it reached the front
    EXPECT_EQ(q.next_time(), 2);
    while (!q.empty()) q.run_next();
    EXPECT_EQ(order, (std::vector<int>{2, 3}));
}

TEST(EventQueue, FifoTieBreakSurvivesSlotRecycling) {
    EventQueue q;
    // Drive the pool through 2^16 tenancies of the same hot slot, so the
    // sequence counter is far ahead of the slot's generation counter.
    for (int i = 0; i < (1 << 16); ++i) {
        q.schedule(0, [] {});
        q.run_next();
    }
    // Equal-tick FIFO must still hold exactly.
    std::vector<int> order;
    for (int i = 0; i < 64; ++i)
        q.schedule(7, [&order, i] { order.push_back(i); });
    while (!q.empty()) q.run_next();
    std::vector<int> expect(64);
    for (int i = 0; i < 64; ++i) expect[i] = i;
    EXPECT_EQ(order, expect);
}

TEST(EventQueue, HybridMergeKeepsGlobalOrder) {
    // A large shuffled batch goes down the sort+merge path; a later small
    // batch lands in the heap. Draining must interleave both into the
    // exact (time, schedule-order) sequence.
    EventQueue q;
    std::vector<std::pair<Tick, int>> ran;
    std::vector<std::pair<Tick, int>> batch;
    int id = 0;
    auto add = [&](Tick t) {
        batch.emplace_back(t, id);
        q.schedule(t, [&ran, t, seq = id] { ran.emplace_back(t, seq); });
        ++id;
    };
    // ids follow schedule order, so sorting by (time, id) reproduces the
    // queue's (time, seq) contract exactly.
    auto by_time_then_seq = [](auto& v) {
        std::sort(v.begin(), v.end());
    };

    for (int i = 0; i < 2000; ++i) add((i * 7919) % 1024);
    by_time_then_seq(batch);
    for (int i = 0; i < 1000; ++i) q.run_next();  // consume part of the sorted run
    std::vector<std::pair<Tick, int>> expect(batch.begin(), batch.begin() + 1000);

    // Stragglers land in the heap; times at/after the drained prefix's
    // frontier so none is scheduled into the already-executed past.
    std::vector<std::pair<Tick, int>> tail(batch.begin() + 1000, batch.end());
    batch.clear();
    for (int i = 0; i < 8; ++i) add(expect.back().first + 1 + (i * 131) % 512);
    tail.insert(tail.end(), batch.begin(), batch.end());
    by_time_then_seq(tail);
    expect.insert(expect.end(), tail.begin(), tail.end());

    while (!q.empty()) q.run_next();
    EXPECT_EQ(ran, expect);
}

// ---- InlineFn ----------------------------------------------------------

TEST(InlineFn, HeapFallbackForLargeCaptures) {
    std::array<std::uint64_t, 16> big{};  // 128 B, past the inline buffer
    big[15] = 42;
    std::uint64_t got = 0;
    InlineFn fn([big, &got] { got = big[15]; });
    fn();
    EXPECT_EQ(got, 42u);
}

TEST(InlineFn, MoveTransfersCallable) {
    int calls = 0;
    InlineFn a([&calls] { ++calls; });
    InlineFn b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(calls, 1);
}

TEST(InlineFn, NonTrivialCaptureIsDestroyed) {
    auto token = std::make_shared<int>(5);
    std::weak_ptr<int> watch = token;
    {
        InlineFn fn([token] {});
        token.reset();
        EXPECT_FALSE(watch.expired());  // the closure keeps it alive
    }
    EXPECT_TRUE(watch.expired());  // InlineFn's dtor ran the capture's dtor
}

TEST(Simulator, NowAdvancesToEventTime) {
    Simulator s;
    Tick seen = -1;
    s.at(10, [&] { seen = s.now(); });
    s.run();
    EXPECT_EQ(seen, 10);
    EXPECT_EQ(s.now(), 10);
}

TEST(Simulator, AfterIsRelative) {
    Simulator s;
    std::vector<Tick> times;
    s.at(5, [&] {
        s.after(3, [&] { times.push_back(s.now()); });
    });
    s.run();
    EXPECT_EQ(times, (std::vector<Tick>{8}));
}

TEST(Simulator, SchedulingIntoThePastThrows) {
    Simulator s;
    s.at(10, [&] { EXPECT_THROW(s.at(5, [] {}), ContractViolation); });
    s.run();
}

TEST(Simulator, RunUntilStopsAtBoundary) {
    Simulator s;
    int count = 0;
    for (Tick t = 1; t <= 10; ++t) s.at(t, [&] { ++count; });
    s.run_until(5);
    EXPECT_EQ(count, 5);
    EXPECT_FALSE(s.idle());
    s.run();
    EXPECT_EQ(count, 10);
    EXPECT_TRUE(s.idle());
}

TEST(Simulator, RunUntilBoundaryIsInclusiveAndClockIsExact) {
    Simulator s;
    std::vector<Tick> ran;
    s.at(5, [&] { ran.push_back(s.now()); });
    s.at(6, [&] { ran.push_back(s.now()); });
    EXPECT_EQ(s.run_until(5), 1u);  // the boundary tick itself executes
    EXPECT_EQ(ran, (std::vector<Tick>{5}));
    EXPECT_EQ(s.now(), 5);
    EXPECT_EQ(s.run_until(5), 0u);  // nothing left at or before the boundary
    EXPECT_EQ(s.now(), 5);          // the clock does not jump to the horizon
    EXPECT_EQ(s.run_until(6), 1u);
    EXPECT_EQ(ran, (std::vector<Tick>{5, 6}));
    EXPECT_TRUE(s.idle());
}

TEST(Simulator, StopReturnsEarly) {
    Simulator s;
    int count = 0;
    s.at(1, [&] {
        ++count;
        s.stop();
    });
    s.at(2, [&] { ++count; });
    s.run();
    EXPECT_EQ(count, 1);
    s.run();
    EXPECT_EQ(count, 2);
}

TEST(Simulator, EventBudgetGuardsRunaway) {
    Simulator s;
    // Self-rescheduling event = infinite protocol.
    std::function<void()> loop = [&] { s.after(1, loop); };
    s.after(1, loop);
    EXPECT_THROW(s.run(/*max_events=*/1000), ContractViolation);
}

TEST(Simulator, ZeroDelayEventsCascadeAtSameTime) {
    Simulator s;
    std::vector<Tick> times;
    s.at(4, [&] {
        times.push_back(s.now());
        s.after(0, [&] { times.push_back(s.now()); });
    });
    s.run();
    EXPECT_EQ(times, (std::vector<Tick>{4, 4}));
}

}  // namespace
}  // namespace fastnet::sim
