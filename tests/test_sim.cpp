// Tests for the deterministic discrete-event core.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace fastnet::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(5); });
    q.schedule(1, [&] { order.push_back(1); });
    q.schedule(3, [&] { order.push_back(3); });
    while (!q.empty()) q.run_next();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
}

TEST(EventQueue, TieBreaksByScheduleOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(2, [&] { order.push_back(1); });
    q.schedule(2, [&] { order.push_back(2); });
    q.schedule(2, [&] { order.push_back(3); });
    while (!q.empty()) q.run_next();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelPreventsExecution) {
    EventQueue q;
    bool ran = false;
    const EventId id = q.schedule(1, [&] { ran = true; });
    q.cancel(id);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelOneOfMany) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(1, [&] { order.push_back(1); });
    const EventId id = q.schedule(2, [&] { order.push_back(2); });
    q.schedule(3, [&] { order.push_back(3); });
    q.cancel(id);
    while (!q.empty()) q.run_next();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
    EventQueue q;
    const EventId id = q.schedule(1, [] {});
    q.schedule(7, [] {});
    q.cancel(id);
    EXPECT_EQ(q.next_time(), 7);
}

TEST(EventQueue, ReentrantScheduling) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(1, [&] {
        order.push_back(1);
        q.schedule(2, [&] { order.push_back(2); });
    });
    while (!q.empty()) q.run_next();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, NowAdvancesToEventTime) {
    Simulator s;
    Tick seen = -1;
    s.at(10, [&] { seen = s.now(); });
    s.run();
    EXPECT_EQ(seen, 10);
    EXPECT_EQ(s.now(), 10);
}

TEST(Simulator, AfterIsRelative) {
    Simulator s;
    std::vector<Tick> times;
    s.at(5, [&] {
        s.after(3, [&] { times.push_back(s.now()); });
    });
    s.run();
    EXPECT_EQ(times, (std::vector<Tick>{8}));
}

TEST(Simulator, SchedulingIntoThePastThrows) {
    Simulator s;
    s.at(10, [&] { EXPECT_THROW(s.at(5, [] {}), ContractViolation); });
    s.run();
}

TEST(Simulator, RunUntilStopsAtBoundary) {
    Simulator s;
    int count = 0;
    for (Tick t = 1; t <= 10; ++t) s.at(t, [&] { ++count; });
    s.run_until(5);
    EXPECT_EQ(count, 5);
    EXPECT_FALSE(s.idle());
    s.run();
    EXPECT_EQ(count, 10);
    EXPECT_TRUE(s.idle());
}

TEST(Simulator, StopReturnsEarly) {
    Simulator s;
    int count = 0;
    s.at(1, [&] {
        ++count;
        s.stop();
    });
    s.at(2, [&] { ++count; });
    s.run();
    EXPECT_EQ(count, 1);
    s.run();
    EXPECT_EQ(count, 2);
}

TEST(Simulator, EventBudgetGuardsRunaway) {
    Simulator s;
    // Self-rescheduling event = infinite protocol.
    std::function<void()> loop = [&] { s.after(1, loop); };
    s.after(1, loop);
    EXPECT_THROW(s.run(/*max_events=*/1000), ContractViolation);
}

TEST(Simulator, ZeroDelayEventsCascadeAtSameTime) {
    Simulator s;
    std::vector<Tick> times;
    s.at(4, [&] {
        times.push_back(s.now());
        s.after(0, [&] { times.push_back(s.now()); });
    });
    s.run();
    EXPECT_EQ(times, (std::vector<Tick>{4, 4}));
}

}  // namespace
}  // namespace fastnet::sim
