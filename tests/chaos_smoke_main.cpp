// Seeded chaos sweep for the ChaosSmoke ctest (scripts/chaos_smoke.sh).
//
// Compiles fault models (link flaps, hard node crash/restart, message
// loss and duplication, NCU stalls) into scenarios via fault::FaultInjector,
// runs them at sweep scale through exec::SweepRunner, and holds every
// seed against the fault::Oracle:
//
//   * maintenance cases — the full Theorem-1 bundle: quiescent, zero
//     in-flight packet cursors, every live view exact after the heal;
//   * router cases     — datagrams scripted before/during the faults must
//     arrive (retried over the re-converged view) despite loss + dup;
//   * election cases   — safety under crash churn: quiescent, no
//     in-flight, at most one live leader (liveness may be lost to a
//     killed token; safety never).
//
// The harness (scripts/chaos_smoke.sh) runs this binary at 1, 2 and
// hardware_concurrency threads and byte-diffs the JSON — chaos itself
// must be deterministic. Exits non-zero if any seed violates its oracle.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "election/election.hpp"
#include "exec/result.hpp"
#include "exec/sweep_runner.hpp"
#include "fault/call_oracle.hpp"
#include "fault/injector.hpp"
#include "fault/oracle.hpp"
#include "graph/generators.hpp"
#include "obs/metrics_export.hpp"
#include "obs/monitor.hpp"
#include "obs/trace_export.hpp"
#include "paris/call_setup.hpp"
#include "paris/workload.hpp"
#include "topo/router.hpp"
#include "topo/topology_maintenance.hpp"

using namespace fastnet;

namespace {

node::ClusterConfig base_config() {
    node::ClusterConfig cfg;
    cfg.params.hop_delay = 2;
    cfg.params.ncu_delay = 2;
    cfg.net.hop_delay_min = 0;
    cfg.ncu_delay_min = 1;
    return cfg;
}

graph::Graph shape_for(std::uint64_t seed) {
    switch (seed % 4) {
        case 0: return graph::make_cycle(10);
        case 1: return graph::make_grid(3, 4);
        case 2: {
            Rng g(seed * 131 + 7);
            return graph::make_random_connected(12, 2, 5, g);
        }
        default: {
            Rng g(seed * 131 + 7);
            return graph::make_random_connected(14, 3, 5, g);
        }
    }
}

}  // namespace

int main(int argc, char** argv) {
    unsigned threads = 0;
    unsigned seeds = 100;
    std::string out_path = "chaos_smoke.json";
    std::string trace_case;
    std::string trace_prefix = "chaos_trace";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
            seeds = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-case") == 0 && i + 1 < argc) {
            trace_case = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-prefix") == 0 && i + 1 < argc) {
            trace_prefix = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--threads N] [--seeds N] [--out FILE]\n"
                      << "  [--trace-case NAME] [--trace-prefix P]\n"
                      << "  --threads 0 (default) uses hardware_concurrency\n"
                      << "  --trace-case attaches a trace + sampling to the named case\n"
                      << "  and exports P.canonical.json / P.chrome.json / P.metrics.json\n";
            return 2;
        }
    }

    exec::SweepOptions opt;
    opt.threads = threads;
    opt.master_seed = 1988;  // the paper's year
    exec::SweepRunner runner(opt);

    // Observability hook: the named case records into its own trace and
    // exports both formats (plus sampled metrics) from its probe. Export
    // content derives only from the case's deterministic simulation, so
    // the files byte-diff clean across thread counts — the TraceSmoke
    // ctest (scripts/trace_smoke.sh) relies on it.
    bool trace_case_found = false;
    auto maybe_trace = [&](exec::ClusterCase& c) {
        // Every chaos case runs with the full standard monitor set
        // (lineage conservation, busy-window monotonicity, queue-depth
        // ceiling, per-edge link FIFO, A1 serialized send): a violating
        // seed clears its row's ok and records the first violating event
        // into the case's trace. The per-case hub keeps the sweep
        // byte-identical at any thread count. The hardware-discipline
        // thresholds come from the case's own config, so they are exact:
        // spacing is checked when the fabric enforces it, and the A1 send
        // gap is P only when sends are serialized at a fixed P (jittered
        // NCU delays make consecutive handlers finish closer than P).
        obs::StandardMonitorOptions mon;
        mon.link_spacing = c.config.net.link_spacing;
        if (!c.config.free_multisend && c.config.ncu_delay_min < 0)
            mon.min_send_gap = c.config.params.ncu_delay;
        c.monitor_setup = [mon](obs::MonitorHub& hub) {
            obs::add_standard_monitors(hub, mon);
        };
        if (trace_case.empty() || c.name != trace_case) return;
        trace_case_found = true;
        c.config.trace = std::make_shared<sim::Trace>(std::size_t{1} << 20);
        c.config.sample_window = 50;
        auto inner = std::move(c.probe);
        c.probe = [inner, prefix = trace_prefix, name = c.name](
                      node::Cluster& cluster, exec::CaseResult& r) {
            if (inner) inner(cluster, r);
            const obs::ExportMeta meta = obs::make_meta(cluster.graph(), name);
            const sim::Trace& trace = *cluster.trace();
            if (!exec::write_text_file(prefix + ".canonical.json",
                                       obs::canonical_trace_json(trace, meta)) ||
                !exec::write_text_file(prefix + ".chrome.json",
                                       obs::chrome_trace_json(trace, meta)) ||
                !exec::write_text_file(prefix + ".metrics.json",
                                       obs::metrics_json(cluster.metrics(), name)) ||
                !exec::write_text_file(prefix + ".monitors.json",
                                       obs::violations_json(*cluster.monitors(), name))) {
                std::cerr << "cannot write trace exports with prefix " << prefix << "\n";
                r.ok = false;
            }
        };
    };

    // --- maintenance under crash churn: the Theorem-1 oracle -----------
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
        graph::Graph g = shape_for(seed);

        fault::FaultModel model;
        model.link_flaps = 4 + static_cast<unsigned>(seed % 5);
        model.node_crashes = 2 + static_cast<unsigned>(seed % 3);
        model.stalls = (seed % 3 == 0) ? 2 : 0;
        model.stall_max = 6;
        model.window_from = 50;
        model.window_to = 600;
        model.heal_at = 700;
        if (seed % 5 == 1) model.loss_ppm = 20'000;   // 2% per transmission
        if (seed % 5 == 2) model.dup_ppm = 20'000;
        fault::FaultInjector inj(model, seed);

        topo::TopologyOptions topo_opt;
        topo_opt.rounds = 30;
        topo_opt.period = 50;
        // Mix modes: full-knowledge floods the database (fast recovery of
        // a restarted node); plain mode makes it relearn peer by peer.
        topo_opt.full_knowledge = (seed % 2 == 0);

        node::ClusterConfig cfg = base_config();
        inj.configure(cfg);
        // A slice of seeds exercises the hardware-discipline monitors
        // non-vacuously: A1 serialized sends at a fixed P (the monitor
        // then checks the exact gap) and finite link capacity.
        if (seed % 7 == 3) {
            cfg.free_multisend = false;
            cfg.ncu_delay_min = -1;
        }
        if (seed % 7 == 4) cfg.net.link_spacing = cfg.params.ncu_delay;

        exec::ClusterCase c;
        c.name = "maint/seed" + std::to_string(seed);
        c.protocol = topo::make_topology_maintenance(g.node_count(), topo_opt);
        c.config = cfg;
        c.scenario = inj.compile(g);
        c.graph = std::move(g);
        c.probe = [](node::Cluster& cluster, exec::CaseResult& r) {
            const fault::OracleReport rep = fault::check_theorem1(cluster);
            r.ok = rep.ok();
            if (!rep.ok()) std::cerr << "oracle: " << rep.summary() << "\n";
        };
        maybe_trace(c);
        runner.add(std::move(c));
    }

    // --- router delivery across crash + loss + duplication -------------
    const unsigned router_cases = seeds >= 20 ? 20 : seeds;
    for (std::uint64_t seed = 0; seed < router_cases; ++seed) {
        graph::Graph g = shape_for(seed + 3);
        const NodeId src = 0;
        const NodeId dst = g.node_count() - 1;

        fault::FaultModel model;
        model.link_flaps = 4;
        model.node_crashes = 2;
        model.window_from = 50;
        model.window_to = 600;
        model.heal_at = 700;
        model.protect_nodes = {src, dst};  // the measured pair stays up
        model.loss_ppm = 20'000;
        model.dup_ppm = 20'000;
        fault::FaultInjector inj(model, seed ^ 0x907e5ULL);

        topo::RouterOptions ropt;
        ropt.topology.rounds = 30;
        ropt.topology.period = 50;
        ropt.topology.full_knowledge = true;
        ropt.retry_period = 128;
        ropt.max_retries = 40;

        std::map<NodeId, std::vector<topo::SendRequest>> sends;
        sends[src] = {{40, dst, 7001}, {300, dst, 7002}};

        node::ClusterConfig cfg = base_config();
        inj.configure(cfg);

        exec::ClusterCase c;
        c.name = "router/seed" + std::to_string(seed);
        c.protocol = topo::make_routers(g.node_count(), ropt, sends);
        c.config = cfg;
        c.scenario = inj.compile(g);
        c.graph = std::move(g);
        c.probe = [src, dst](node::Cluster& cluster, exec::CaseResult& r) {
            fault::Oracle o(cluster);
            o.require_quiescent()
                .require_no_inflight()
                .require_views_converged()
                .require_received(dst, src, 7001)
                .require_received(dst, src, 7002);
            r.ok = o.ok();
            if (!o.ok()) std::cerr << "oracle: " << o.report().summary() << "\n";
        };
        maybe_trace(c);
        runner.add(std::move(c));
    }

    // --- election safety under crash churn ------------------------------
    const unsigned election_cases = seeds >= 12 ? 12 : seeds;
    for (std::uint64_t seed = 0; seed < election_cases; ++seed) {
        graph::Graph g = shape_for(seed + 1);

        fault::FaultModel model;
        model.link_flaps = 3;
        model.node_crashes = 3;
        model.window_from = 20;
        model.window_to = 400;
        model.heal_at = 500;
        // No loss/dup: duplicated tokens would break the election's
        // mutual-exclusion premise (see fault/injector.hpp).
        fault::FaultInjector inj(model, seed ^ 0xe1ec7ULL);

        exec::ClusterCase c;
        c.name = "election/seed" + std::to_string(seed);
        c.protocol = [](NodeId) { return std::make_unique<elect::ElectionProtocol>(); };
        c.config = base_config();
        c.scenario = inj.compile(g);
        c.graph = std::move(g);
        c.probe = [](node::Cluster& cluster, exec::CaseResult& r) {
            fault::Oracle o(cluster);
            o.require_quiescent().require_no_inflight().require_at_most_one_leader();
            r.ok = o.ok();
            if (!o.ok()) std::cerr << "oracle: " << o.report().summary() << "\n";
        };
        maybe_trace(c);
        runner.add(std::move(c));
    }

    // --- sustained call workload under loss, cuts and crash-mid-setup ---
    // Hardened PARIS call agents driven by an open-loop Poisson/Pareto
    // workload while the injector flaps links, drops/dups packets and
    // crashes nodes inside the arrival window (so setups are cut mid
    // flight and sources crash with reservations outstanding). The
    // CallOracle then audits capacity conservation at quiescence:
    // records == ledger at every node, nothing over capacity, nothing
    // still reserved, no call left in a non-terminal state.
    const unsigned call_cases = seeds >= 16 ? 16 : seeds;
    for (std::uint64_t seed = 0; seed < call_cases; ++seed) {
        auto g = std::make_shared<graph::Graph>(shape_for(seed + 5));

        fault::FaultModel model;
        model.link_flaps = 3 + static_cast<unsigned>(seed % 3);
        model.node_crashes = 2;  // crash-mid-setup: inside the arrival window
        model.window_from = 40;
        model.window_to = 700;
        model.heal_at = 800;
        if (seed % 2 == 0) model.loss_ppm = 20'000;  // 2% per transmission
        if (seed % 4 == 1) model.dup_ppm = 20'000;
        fault::FaultInjector inj(model, seed ^ 0xca115ULL);

        paris::CallAgentOptions aopt;
        aopt.link_capacity = 3;
        aopt.setup_timeout = 24;
        aopt.max_retries = 3;
        aopt.retry_backoff = 8;
        aopt.retry_jitter = 4;
        aopt.reservation_ttl = 150;
        aopt.refresh_interval = 50;
        aopt.max_inflight = 4;
        aopt.workload.arrivals = (seed % 3 == 2) ? paris::ArrivalProcess::kPareto
                                                 : paris::ArrivalProcess::kPoisson;
        aopt.workload.mean_interarrival = 60;
        aopt.workload.mean_hold = 80;  // finite: leases + refresh need quiescence
        aopt.workload.first_at = 10;
        aopt.workload.until = 700;

        node::ClusterConfig cfg = base_config();
        inj.configure(cfg);

        exec::ClusterCase c;
        c.name = "calls/seed" + std::to_string(seed);
        c.protocol = paris::make_call_workload(g, aopt);
        c.config = cfg;
        c.scenario = inj.compile(*g);
        c.graph = *g;
        c.probe = [](node::Cluster& cluster, exec::CaseResult& r) {
            const fault::OracleReport calls = fault::check_calls(cluster);
            fault::Oracle o(cluster);
            o.require_quiescent().require_no_inflight();
            r.ok = calls.ok() && o.ok();
            if (!calls.ok()) std::cerr << "call oracle: " << calls.summary() << "\n";
            if (!o.ok()) std::cerr << "oracle: " << o.report().summary() << "\n";
            // Fold the call counters into the row so the cross-thread
            // byte-diff also pins the workload + retry/backoff behaviour.
            const cost::CallStats s = paris::fold_call_stats(cluster);
            r.set("offered", static_cast<double>(s.offered));
            r.set("accepted", static_cast<double>(s.accepted));
            r.set("blocked", static_cast<double>(s.shed + s.blocked));
            r.set("retries", static_cast<double>(s.retries));
            r.set("reaped", static_cast<double>(s.reaped));
        };
        maybe_trace(c);
        runner.add(std::move(c));
    }

    if (!trace_case.empty() && !trace_case_found) {
        std::cerr << "--trace-case " << trace_case << " matches no case\n";
        return 2;
    }

    const auto rows = runner.run();
    bool all_ok = true;
    for (const auto& r : rows)
        if (!r.ok) {
            std::cerr << "seed violated its oracle: " << r.name << "\n";
            all_ok = false;
        }
    const std::string json = exec::sweep_json("chaos_smoke", opt.master_seed, rows);
    if (!exec::write_text_file(out_path, json)) {
        std::cerr << "cannot write " << out_path << "\n";
        return 2;
    }
    std::cout << "wrote " << out_path << " (" << rows.size() << " cases, threads="
              << (threads == 0 ? exec::ThreadPool::hardware_threads() : threads) << ")\n";
    return all_ok ? 0 : 1;
}
