// OT(t) materialization, pruning, the predicted-completion model and
// its agreement with the S(t) recursion.
#include <gtest/gtest.h>

#include "gsf/opt_tree.hpp"

namespace fastnet::gsf {
namespace {

TEST(OptTree, SingleNode) {
    const auto r = build_optimal_tree(1, 3, 2);
    EXPECT_EQ(r.tree.size(), 1u);
    EXPECT_EQ(r.predicted_time, 2);
}

TEST(OptTree, TwoNodesTake2PPlusC) {
    const auto r = build_optimal_tree(2, 3, 2);
    EXPECT_EQ(r.tree.size(), 2u);
    EXPECT_EQ(r.predicted_time, 2 * 2 + 3);
}

TEST(OptTree, BinomialShapeForC0P1) {
    // OT(k) under C=0,P=1 is the binomial tree B_(k-1): the root of
    // OT(k) has k-1 children.
    const auto r = build_optimal_tree(16, 0, 1);
    EXPECT_EQ(r.predicted_time, 5);  // 2^(5-1) = 16
    EXPECT_EQ(r.tree.children(0).size(), 4u);
}

TEST(OptTree, SizeMatchesRecursionWhenUnpruned) {
    // For n = S(t_opt) exactly, no pruning happens and the materialized
    // size equals the recursion's answer.
    for (auto [c, p] : std::vector<std::pair<Tick, Tick>>{{0, 1}, {1, 1}, {2, 1}, {1, 2}}) {
        ScheduleSolver s(c, p);
        for (Tick t = p; t <= 14 * (c + p); ++t) {
            const std::uint64_t n = s.size_at(t);
            if (n < 2 || n > 5000) continue;
            if (s.size_at(t - 1) == n) continue;  // not a growth point
            const auto r = build_optimal_tree(n, c, p);
            EXPECT_EQ(r.tree.size(), n) << "C=" << c << " P=" << p;
            EXPECT_EQ(r.predicted_time, t);
        }
    }
}

TEST(OptTree, PredictedCompletionEqualsOptimalTime) {
    // Both pruned and unpruned optimal trees must finish at exactly
    // t_opt under the FIFO serial-NCU model (Theorem 6 optimality: no
    // n-node tree does better; subtrees of OT(t_opt) do no worse).
    for (auto [c, p] : std::vector<std::pair<Tick, Tick>>{{0, 1}, {1, 1}, {5, 2}, {2, 5}, {7, 3}}) {
        for (std::uint64_t n : {2ull, 3ull, 5ull, 17ull, 100ull, 511ull, 512ull, 513ull}) {
            const auto r = build_optimal_tree(n, c, p);
            EXPECT_EQ(predicted_completion(r.tree, c, p), r.predicted_time)
                << "C=" << c << " P=" << p << " n=" << n;
        }
    }
}

TEST(OptTree, NoSmallerTreeBeatsTheOptimum) {
    // Exhaustive-ish adversary: k-ary and star baselines never beat
    // t_opt (and are strictly worse somewhere).
    const Tick c = 1, p = 1;
    bool star_strictly_worse = false;
    for (std::uint64_t n : {4ull, 8ull, 32ull, 128ull}) {
        const auto r = build_optimal_tree(n, c, p);
        const Tick star = predicted_completion(make_star_tree(static_cast<NodeId>(n)), c, p);
        EXPECT_GE(star, r.predicted_time);
        if (star > r.predicted_time) star_strictly_worse = true;
        for (unsigned k : {2u, 3u, 8u}) {
            const Tick kary =
                predicted_completion(make_kary_gather_tree(static_cast<NodeId>(n), k), c, p);
            EXPECT_GE(kary, r.predicted_time) << "n=" << n << " k=" << k;
        }
    }
    EXPECT_TRUE(star_strictly_worse);
}

TEST(OptTree, StarCompletionFormula) {
    // Star with P > 0: root start P, n-1 serial arrivals from time P+C:
    // completion = max(P, P + C) + (n-1) P = C + nP.
    for (Tick c : {0, 1, 4})
        for (Tick p : {1, 2, 5})
            for (NodeId n : {2u, 5u, 33u})
                EXPECT_EQ(predicted_completion(make_star_tree(n), c, p),
                          c + static_cast<Tick>(n) * p)
                    << c << " " << p << " " << n;
}

TEST(OptTree, PathTreeCompletionFormula) {
    // A path (1-ary tree): each level adds C + P after the previous
    // one's send: completion = P + (n-1)(C + P).
    const graph::RootedTree path = make_kary_gather_tree(6, 1);
    EXPECT_EQ(predicted_completion(path, 3, 2), 2 + 5 * (3 + 2));
}

TEST(OptTree, RejectsTraditionalModel) {
    EXPECT_THROW(build_optimal_tree(4, 1, 0), ContractViolation);
}

TEST(OptTree, FibonacciTreeShape) {
    // C=1, P=1: OT(k) = OT(k-1) <- OT(k-2); sizes follow Fibonacci.
    for (unsigned k = 3; k <= 15; ++k) {
        const std::uint64_t n = fibonacci_size(k);
        if (n < 2) continue;
        const auto r = build_optimal_tree(n, 1, 1);
        EXPECT_EQ(r.predicted_time, static_cast<Tick>(k));
        EXPECT_EQ(r.tree.size(), n);
    }
}

}  // namespace
}  // namespace fastnet::gsf
