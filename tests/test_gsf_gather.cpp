// End-to-end Section 5: the tree-based algorithm running as NCU software
// on a simulated complete graph — correctness of the computed function
// and exact agreement between simulated and predicted completion times.
#include <gtest/gtest.h>

#include "gsf/gather.hpp"
#include "gsf/opt_tree.hpp"

namespace fastnet::gsf {
namespace {

ModelParams params_of(Tick c, Tick p) {
    ModelParams m;
    m.hop_delay = c;
    m.ncu_delay = p;
    return m;
}

TEST(Gather, ComputesSumOnOptimalTree) {
    const auto r = build_optimal_tree(20, 1, 1);
    const auto out = run_tree_gather(r.tree, params_of(1, 1));
    EXPECT_TRUE(out.correct);
    EXPECT_EQ(out.completion, r.predicted_time);
}

TEST(Gather, SingleNode) {
    const auto r = build_optimal_tree(1, 1, 1);
    const auto out = run_tree_gather(r.tree, params_of(1, 1), combine_sum(), {42});
    EXPECT_TRUE(out.correct);
    EXPECT_EQ(out.result, 42u);
    EXPECT_EQ(out.completion, 1);
}

TEST(Gather, AllCombinersAgreeWithSequentialFold) {
    const auto r = build_optimal_tree(17, 2, 1);
    for (auto& [name, fn] :
         std::vector<std::pair<const char*, Combine>>{{"sum", combine_sum()},
                                                      {"max", combine_max()},
                                                      {"xor", combine_xor()},
                                                      {"gcd", combine_gcd()}}) {
        const auto out = run_tree_gather(r.tree, params_of(2, 1), fn, {}, /*seed=*/99);
        EXPECT_TRUE(out.correct) << name;
    }
}

TEST(Gather, SimulationMatchesPredictionAcrossParams) {
    // The strongest Section 5 check: for many (C, P, n), the simulated
    // completion on the real event-driven fabric equals both the static
    // prediction and optimal_time(n) — eq. 1-3 made executable.
    for (auto [c, p] : std::vector<std::pair<Tick, Tick>>{{0, 1}, {1, 1}, {3, 1}, {1, 3}, {4, 2}}) {
        ScheduleSolver solver(c, p);
        for (std::uint64_t n : {2ull, 3ull, 7ull, 16ull, 45ull, 100ull}) {
            const auto r = build_optimal_tree(n, c, p);
            const auto out = run_tree_gather(r.tree, params_of(c, p));
            EXPECT_TRUE(out.correct);
            EXPECT_EQ(out.completion, solver.optimal_time(n))
                << "C=" << c << " P=" << p << " n=" << n;
            EXPECT_EQ(out.completion, predicted_completion(r.tree, c, p));
        }
    }
}

TEST(Gather, StarMatchesClosedFormUnderSimulation) {
    for (auto [c, p] : std::vector<std::pair<Tick, Tick>>{{0, 1}, {2, 1}, {1, 3}}) {
        const NodeId n = 12;
        const auto out = run_tree_gather(make_star_tree(n), params_of(c, p));
        EXPECT_TRUE(out.correct);
        EXPECT_EQ(out.completion, c + static_cast<Tick>(n) * p);
    }
}

TEST(Gather, TraditionalModelStarFinishesInC) {
    // C=1, P=0 on a complete graph: the star completes at t = C for any
    // n — the paper's Example 2, where the recursion blows up.
    for (NodeId n : {4u, 16u, 64u}) {
        const auto out = run_tree_gather(make_star_tree(n), params_of(1, 0));
        EXPECT_TRUE(out.correct);
        EXPECT_EQ(out.completion, 1) << n;
    }
}

TEST(Gather, NewModelDoesNotDegenerateOnCompleteGraphs) {
    // Same complete graph, same star, but P = 1: the root serializes and
    // time grows linearly with n; the optimal tree grows only as log n.
    const auto star16 = run_tree_gather(make_star_tree(16), params_of(1, 1));
    const auto star64 = run_tree_gather(make_star_tree(64), params_of(1, 1));
    EXPECT_EQ(star64.completion - star16.completion, 48);
    const auto opt16 = build_optimal_tree(16, 1, 1);
    const auto opt64 = build_optimal_tree(64, 1, 1);
    const auto o16 = run_tree_gather(opt16.tree, params_of(1, 1));
    const auto o64 = run_tree_gather(opt64.tree, params_of(1, 1));
    EXPECT_LE(o64.completion - o16.completion, 5);  // ~log-phi growth
    EXPECT_LT(o64.completion, star64.completion);
}

TEST(Gather, MessageCountIsExactlyNMinus1) {
    // Theorem 6's tree-based algorithm sends one message per non-root
    // node — also the system-call count (each is processed once).
    const auto r = build_optimal_tree(30, 1, 1);
    const auto out = run_tree_gather(r.tree, params_of(1, 1));
    EXPECT_EQ(out.cost.direct_messages, 29u);
    EXPECT_EQ(out.cost.system_calls, 29u);
    EXPECT_EQ(out.cost.hops, 29u);  // complete graph: one hop each
}

TEST(Gather, WorksOnArbitraryTrees) {
    const auto kary = make_kary_gather_tree(26, 3);
    const auto out = run_tree_gather(kary, params_of(2, 3), combine_max());
    EXPECT_TRUE(out.correct);
    EXPECT_EQ(out.completion, predicted_completion(kary, 2, 3));
}

class GatherSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Tick, Tick>> {};

TEST_P(GatherSweep, PredictionExactEverywhere) {
    const auto [n, c, p] = GetParam();
    const auto r = build_optimal_tree(n, c, p);
    const auto out = run_tree_gather(r.tree, params_of(c, p), combine_xor());
    EXPECT_TRUE(out.correct);
    EXPECT_EQ(out.completion, r.predicted_time);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GatherSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(2, 5, 13, 64, 200),
                       ::testing::Values<Tick>(0, 1, 5),
                       ::testing::Values<Tick>(1, 2)));

}  // namespace
}  // namespace fastnet::gsf
