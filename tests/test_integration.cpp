// Cross-module integration: the paper's pieces composed into pipelines
// a real network control plane would run.
//
//  1. elect a leader (Section 4), then broadcast over the leader's own
//     INOUT spanning tree with the Section 3 branching-paths planner;
//  2. run topology maintenance until convergence, then source-route a
//     direct message using only one node's learned database;
//  3. elect a leader, then let it orchestrate an optimal Section 5
//     gather tree for the measured (C, P).
#include <gtest/gtest.h>

#include "fastnet.hpp"

namespace fastnet {
namespace {

TEST(Integration, ElectionYieldsABroadcastReadySpanningTree) {
    Rng rng(1);
    const graph::Graph g = graph::make_random_connected(48, 2, 10, rng);

    // Phase 1: election.
    node::Cluster c(g, [](NodeId) { return std::make_unique<elect::ElectionProtocol>(); });
    c.start_all(0);
    c.run();
    NodeId leader = kNoNode;
    for (NodeId u = 0; u < g.node_count(); ++u)
        if (c.protocol_as<elect::ElectionProtocol>(u).role() == elect::Role::kLeader)
            leader = u;
    ASSERT_NE(leader, kNoNode);

    // Phase 2: the leader's domain tree is a spanning subgraph...
    const auto& p = c.protocol_as<elect::ElectionProtocol>(leader);
    const graph::RootedTree tree = p.inout().to_rooted_tree(g.node_count());
    EXPECT_EQ(tree.size(), g.node_count());
    EXPECT_TRUE(tree.is_subgraph_of(g));

    // ...so the Section 3 planner can broadcast over it directly: n-1
    // system calls, log-bounded time.
    const auto plan = topo::plan_branching_paths(tree, hw::canonical_ports(g));
    EXPECT_EQ(plan.covered_nodes, g.node_count());
    EXPECT_LE(plan.time_units, 1 + floor_log2(g.node_count()));
    // And the decomposition is structurally sound on this tree.
    const auto labels = topo::label_tree(tree);
    EXPECT_TRUE(topo::valid_decomposition(tree, labels, topo::decompose_paths(tree, labels)));
}

TEST(Integration, LearnedTopologySupportsSourceRouting) {
    Rng rng(2);
    const graph::Graph g = graph::make_random_connected(24, 2, 10, rng);

    topo::TopologyOptions opt;
    opt.rounds = 8;
    node::Cluster c(g, topo::make_topology_maintenance(g.node_count(), opt));
    c.start_all(0);
    c.run();
    ASSERT_TRUE(topo::all_views_converged(c));

    // Node 0 routes a packet to the farthest node using only its DB.
    const auto& db = c.protocol_as<topo::TopologyMaintenance>(0);
    const graph::BfsResult bfs = graph::bfs(g, 0);
    NodeId far = 0;
    for (NodeId u = 0; u < g.node_count(); ++u)
        if (bfs.dist[u] != graph::BfsResult::kUnreached && bfs.dist[u] > bfs.dist[far])
            far = u;
    ASSERT_NE(far, 0u);

    // Build the route from learned records: ports straight out of the DB.
    std::vector<NodeId> path;
    for (NodeId v = far; v != kNoNode; v = bfs.parent[v]) path.push_back(v);
    std::reverse(path.begin(), path.end());
    hw::PortMap learned_ports = [&db](NodeId u, NodeId v) -> hw::PortId {
        for (const auto& r : db.view_of(u).links)
            if (r.neighbor == v) return r.port;
        return hw::kNoPort;
    };
    const hw::AnrHeader route = hw::route_for_path(path, learned_ports);

    // Inject it on the real fabric and confirm single-system-call delivery.
    c.metrics().reset();
    struct Probe final : hw::TypedPayload<Probe> {};
    bool delivered = false;
    c.network().set_ncu_sink(far, [&delivered](const hw::Delivery& d) {
        delivered = hw::payload_as<Probe>(d) != nullptr;
    });
    c.network().send(0, route, std::make_shared<Probe>());
    c.run();
    EXPECT_TRUE(delivered);
    EXPECT_EQ(c.metrics().net().ncu_deliveries, 1u);
    EXPECT_EQ(c.metrics().net().hops, bfs.dist[far]);
}

TEST(Integration, LeaderOrchestratesOptimalGather) {
    // A complete "control plane" flow: elect on a complete graph, then
    // the leader plans the optimal aggregation tree for the deployment's
    // (C, P) and the cluster executes it.
    const NodeId n = 32;
    const Tick C = 2, P = 1;
    node::ClusterConfig ecfg;
    ecfg.params.hop_delay = C;
    ecfg.params.ncu_delay = P;
    const auto election = elect::run_election(graph::make_complete(n), {}, {}, ecfg);
    ASSERT_TRUE(election.unique_leader);

    // The leader plans; the plan is optimal for the same model.
    const auto plan = gsf::build_optimal_tree(n, C, P);
    ModelParams params;
    params.hop_delay = C;
    params.ncu_delay = P;
    const auto gather = gsf::run_tree_gather(plan.tree, params, gsf::combine_max());
    EXPECT_TRUE(gather.correct);
    EXPECT_EQ(gather.completion, plan.predicted_time);
    // The optimal plan beats the naive star the leader might have used.
    EXPECT_LT(gather.completion,
              gsf::predicted_completion(gsf::make_star_tree(n), C, P));
}

TEST(Integration, MaintenanceThenElectionOnSurvivingComponent) {
    // Failures partition the network; maintenance converges per
    // component; an election on the survivors still elects one leader
    // per component.
    const graph::Graph g = graph::make_cycle(12);
    topo::TopologyOptions opt;
    opt.rounds = 12;
    opt.period = 32;
    node::Cluster c(g, topo::make_topology_maintenance(g.node_count(), opt));
    c.start_all(0);
    c.simulator().at(40, [&c, &g] {
        c.network().fail_link(g.find_edge(0, 1));
        c.network().fail_link(g.find_edge(6, 7));
    });
    c.run();
    ASSERT_TRUE(topo::all_views_converged(c));

    // Fresh cluster with the same failure pattern, running the election.
    node::Cluster e(g, [](NodeId) { return std::make_unique<elect::ElectionProtocol>(); });
    e.network().fail_link(g.find_edge(0, 1));
    e.network().fail_link(g.find_edge(6, 7));
    e.start_all(1);
    e.run();
    int leaders = 0;
    for (NodeId u = 0; u < g.node_count(); ++u) {
        const auto& p = e.protocol_as<elect::ElectionProtocol>(u);
        if (p.role() == elect::Role::kLeader) ++leaders;
        EXPECT_NE(p.role(), elect::Role::kUndecided) << u;
    }
    EXPECT_EQ(leaders, 2);  // one per surviving arc
}

TEST(Integration, LatticeContainsEveryOptimalTime) {
    // Section 5.2: optimal times always lie on the iP + jC lattice.
    for (auto [c, p] : std::vector<std::pair<Tick, Tick>>{{0, 1}, {1, 1}, {3, 2}, {5, 3}}) {
        for (std::uint64_t n : {2ull, 7ull, 50ull, 300ull}) {
            const Tick t = gsf::optimal_gather_time(n, c, p);
            const auto lattice = gsf::time_lattice(n, c, p, t);
            EXPECT_FALSE(lattice.empty());
            EXPECT_TRUE(std::find(lattice.begin(), lattice.end(), t) != lattice.end())
                << "C=" << c << " P=" << p << " n=" << n << " t=" << t;
            // ... and the lattice is quadratically bounded, as claimed.
            EXPECT_LE(lattice.size(), (n + 1) * (n + 1));
        }
    }
}

}  // namespace
}  // namespace fastnet
