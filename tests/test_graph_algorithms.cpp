// Tests for BFS / trees / components / diameter, including RootedTree.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace fastnet::graph {
namespace {

TEST(Bfs, DistancesOnPath) {
    const Graph g = make_path(5);
    const BfsResult r = bfs(g, 0);
    for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(r.dist[u], u);
    EXPECT_EQ(r.parent[0], kNoNode);
    EXPECT_EQ(r.parent[4], 3u);
}

TEST(Bfs, FilterRestrictsEdges) {
    const Graph g = make_cycle(4);  // edges 0:(0,1) 1:(1,2) 2:(2,3) 3:(3,0)
    const auto r = bfs(g, 0, [](EdgeId e) { return e != 3; });  // cut (3,0)
    EXPECT_EQ(r.dist[3], 3u);  // must go the long way round
}

TEST(Bfs, UnreachableNodesMarked) {
    Graph g(4);
    g.add_edge(0, 1);
    const auto r = bfs(g, 0);
    EXPECT_EQ(r.dist[2], BfsResult::kUnreached);
    EXPECT_EQ(r.parent[2], kNoNode);
}

TEST(MinHopTree, IsMinHopAndSubgraph) {
    Rng rng(3);
    const Graph g = make_random_connected(40, 2, 10, rng);
    const RootedTree t = min_hop_tree(g, 7);
    EXPECT_TRUE(t.is_subgraph_of(g));
    const BfsResult r = bfs(g, 7);
    for (NodeId u = 0; u < g.node_count(); ++u) EXPECT_EQ(t.depth(u), r.dist[u]);
}

TEST(MinHopTree, CoversOnlyReachableComponent) {
    const Graph g = disjoint_union(make_path(3), make_path(2));
    const RootedTree t = min_hop_tree(g, 0);
    EXPECT_EQ(t.size(), 3u);
    EXPECT_TRUE(t.contains(2));
    EXPECT_FALSE(t.contains(3));
}

TEST(Components, LabelsByComponent) {
    const Graph g = disjoint_union(make_cycle(3), make_complete(4));
    const auto c = connected_components(g);
    EXPECT_EQ(c[0], 0u);
    EXPECT_EQ(c[1], 0u);
    EXPECT_EQ(c[3], 1u);
    EXPECT_EQ(c[6], 1u);
}

TEST(Connectivity, DetectsDisconnection) {
    EXPECT_TRUE(is_connected(make_cycle(5)));
    EXPECT_FALSE(is_connected(disjoint_union(make_path(2), make_path(2))));
}

TEST(IsTree, Recognition) {
    EXPECT_TRUE(is_tree(make_path(7)));
    EXPECT_TRUE(is_tree(make_star(5)));
    EXPECT_FALSE(is_tree(make_cycle(4)));
    EXPECT_FALSE(is_tree(disjoint_union(make_path(2), make_path(2))));
}

TEST(Diameter, KnownValues) {
    EXPECT_EQ(diameter(make_path(10)), 9u);
    EXPECT_EQ(diameter(make_star(10)), 2u);
    EXPECT_EQ(diameter(make_complete(10)), 1u);
    EXPECT_EQ(diameter(make_cycle(8)), 4u);
    EXPECT_EQ(diameter(make_cycle(9)), 4u);
    EXPECT_EQ(diameter(make_complete_binary_tree(3)), 6u);
}

TEST(Eccentricity, CenterVersusLeafOfPath) {
    const Graph g = make_path(9);
    EXPECT_EQ(eccentricity(g, 4), 4u);
    EXPECT_EQ(eccentricity(g, 0), 8u);
}

// ---- RootedTree -----------------------------------------------------

RootedTree chain_tree() {
    // 0 <- 1 <- 2 <- 3
    return RootedTree(0, {kNoNode, 0, 1, 2});
}

TEST(RootedTree, BasicAccessors) {
    const RootedTree t = chain_tree();
    EXPECT_EQ(t.root(), 0u);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.parent(3), 2u);
    EXPECT_TRUE(t.is_leaf(3));
    EXPECT_FALSE(t.is_leaf(0));
    EXPECT_EQ(t.depth(3), 3u);
    EXPECT_EQ(t.height(), 3u);
}

TEST(RootedTree, RejectsCyclicParentVector) {
    // 1 <- 2 <- 1 cycle detached from root 0.
    EXPECT_THROW(RootedTree(0, {kNoNode, 2, 1}), ContractViolation);
}

TEST(RootedTree, RejectsRootWithParent) {
    EXPECT_THROW(RootedTree(0, {1, kNoNode}), ContractViolation);
}

TEST(RootedTree, PreorderParentBeforeChild) {
    Rng rng(5);
    const Graph g = make_random_tree(30, rng);
    const RootedTree t = min_hop_tree(g, 0);
    const auto order = t.preorder();
    ASSERT_EQ(order.size(), 30u);
    std::vector<int> pos(30, -1);
    for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = static_cast<int>(i);
    for (NodeId u = 0; u < 30; ++u) {
        if (u != t.root()) {
            EXPECT_LT(pos[t.parent(u)], pos[u]);
        }
    }
}

TEST(RootedTree, PostorderChildBeforeParent) {
    const RootedTree t = chain_tree();
    const auto order = t.postorder();
    std::vector<int> pos(4, -1);
    for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = static_cast<int>(i);
    for (NodeId u = 1; u < 4; ++u) EXPECT_LT(pos[u], pos[t.parent(u)]);
}

TEST(RootedTree, SubtreeSizes) {
    // Star rooted at 0.
    const RootedTree t(0, {kNoNode, 0, 0, 0});
    const auto sizes = t.subtree_sizes();
    EXPECT_EQ(sizes[0], 4u);
    EXPECT_EQ(sizes[1], 1u);
}

TEST(RootedTree, PathFromRoot) {
    const RootedTree t = chain_tree();
    const auto p = t.path_from_root(3);
    const std::vector<NodeId> want{0, 1, 2, 3};
    EXPECT_EQ(p, want);
}

TEST(RootedTree, DepthMatchesPathLength) {
    Rng rng(8);
    const Graph g = make_random_tree(50, rng);
    const RootedTree t = min_hop_tree(g, 10);
    for (NodeId u = 0; u < 50; ++u)
        EXPECT_EQ(t.depth(u) + 1, t.path_from_root(u).size());
}

}  // namespace
}  // namespace fastnet::graph
