// Tests for the cost ledger (the paper's measures) and the table
// formatter used by benches/examples.
#include <gtest/gtest.h>

#include <sstream>

#include "common/expect.hpp"
#include "cost/metrics.hpp"
#include "util/table.hpp"

namespace fastnet {
namespace {

TEST(Metrics, InvocationsSumAllNcuWork) {
    cost::NodeCounters c;
    c.message_deliveries = 3;
    c.starts = 1;
    c.timer_fires = 2;
    c.link_events = 4;
    EXPECT_EQ(c.invocations(), 10u);
}

TEST(Metrics, TotalsAggregateAcrossNodes) {
    cost::Metrics m(3);
    m.node(0).message_deliveries = 5;
    m.node(1).message_deliveries = 7;
    m.node(2).starts = 1;
    EXPECT_EQ(m.total_message_system_calls(), 12u);
    EXPECT_EQ(m.total_invocations(), 13u);
}

TEST(Metrics, ResetClearsEverything) {
    cost::Metrics m(2);
    m.node(0).message_deliveries = 5;
    m.net().hops = 9;
    m.reset();
    EXPECT_EQ(m.total_message_system_calls(), 0u);
    EXPECT_EQ(m.net().hops, 0u);
}

TEST(Metrics, SnapshotCopiesHeadlineNumbers) {
    cost::Metrics m(2);
    m.node(0).message_deliveries = 4;
    m.node(1).sends = 3;
    m.net().injections = 3;
    m.net().hops = 11;
    m.net().max_header_len = 6;
    const cost::CostReport r = cost::snapshot(m, 99);
    EXPECT_EQ(r.system_calls, 4u);
    EXPECT_EQ(r.direct_messages, 3u);
    EXPECT_EQ(r.hops, 11u);
    EXPECT_EQ(r.max_header_len, 6u);
    EXPECT_EQ(r.completion_time, 99);
}

TEST(Metrics, ReportStreamsReadably) {
    cost::Metrics m(1);
    m.node(0).message_deliveries = 2;
    std::ostringstream os;
    os << cost::snapshot(m, 5);
    EXPECT_NE(os.str().find("system_calls=2"), std::string::npos);
    EXPECT_NE(os.str().find("time=5"), std::string::npos);
}

TEST(Table, AlignsColumns) {
    util::Table t({"a", "long_header"});
    t.add(1, 2);
    t.add(100000, "x");
    std::ostringstream os;
    t.print(os, "demo");
    const std::string s = os.str();
    EXPECT_NE(s.find("== demo =="), std::string::npos);
    EXPECT_NE(s.find("long_header"), std::string::npos);
    EXPECT_NE(s.find("100000"), std::string::npos);
}

TEST(Table, RejectsWidthMismatch) {
    util::Table t({"a", "b"});
    EXPECT_THROW(t.row({"only one"}), ContractViolation);
}

TEST(Table, FormatsBoolsAndDoubles) {
    util::Table t({"flag", "ratio"});
    t.add(true, 0.3333333);
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("yes"), std::string::npos);
    EXPECT_NE(os.str().find("0.333"), std::string::npos);
}

TEST(Table, CsvOutput) {
    util::Table t({"x", "y"});
    t.add(1, 2);
    t.add(3, 4);
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
}

TEST(Table, RowCount) {
    util::Table t({"x"});
    EXPECT_EQ(t.row_count(), 0u);
    t.add(1);
    t.add(2);
    EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace fastnet
