// Regression guard for the zero-allocation steady state of the hop fast
// path (see docs/PERF.md). A pure relay along a warm path must not touch
// the allocator per hop: packets come from Network's pool, transmit
// events fit InlineFn's inline buffer, the route blob is shared by every
// hop. This binary overrides global operator new to *count* — it lives
// outside fastnet_tests because the gtest framework's own allocator
// traffic would drown the signal.
#include <cstdio>
#include <cstdlib>
#include <new>

#include "fastnet.hpp"

namespace {
std::uint64_t g_allocs = 0;
}

// These counting operators intentionally delegate storage to
// malloc/free; once make_shared below is inlined against them, GCC
// pairs the allocation sites with std::free and mis-reports a mismatch.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
    ++g_allocs;
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
    ++g_allocs;
    void* p = nullptr;
    if (posix_memalign(&p, static_cast<std::size_t>(al), size ? size : 1) != 0)
        throw std::bad_alloc();
    return p;
}
void* operator new[](std::size_t size, std::align_val_t al) { return ::operator new(size, al); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

struct RelayPing final : fastnet::hw::TypedPayload<RelayPing> {};

/// Forwards one ping up the node-id order (full Cluster phase below).
struct RelayProto final : fastnet::node::Protocol {
    void on_start(fastnet::node::Context& ctx) override { forward(ctx); }
    void on_message(fastnet::node::Context& ctx, const fastnet::hw::Delivery&) override {
        forward(ctx);
    }
    static void forward(fastnet::node::Context& ctx) {
        for (const fastnet::node::LocalLink& l : ctx.links()) {
            if (l.neighbor > ctx.self()) {
                fastnet::hw::AnrHeader h{fastnet::hw::AnrLabel::normal(l.port),
                                         fastnet::hw::AnrLabel::normal(fastnet::hw::kNcuPort)};
                ctx.send(std::move(h), std::make_shared<RelayPing>());
                return;
            }
        }
    }
};

/// Arena-path guard: a full Cluster (arena-resident runtimes, RingQueue
/// work queues) relaying along a warm path must also hold a steady-state
/// allocation budget, and the arena must not grow once warm — bump
/// allocation happens at construction, never on the hop/handler path.
int check_cluster_steady_state() {
    using namespace fastnet;
    constexpr NodeId kNodes = 256;
    node::Cluster cluster(
        graph::make_path(kNodes), [](NodeId) { return std::make_unique<RelayProto>(); });

    // Warm: the first relay wave sizes every queue, slab and Delivery
    // buffer. Each handler allocates its payload (one make_shared), so
    // the budget is per *handler*, not per hop.
    cluster.start(0, 0);
    cluster.run();
    const std::size_t arena_reserved = cluster.arena().bytes_reserved();
    const std::size_t arena_used = cluster.arena().bytes_used();

    const std::uint64_t before = g_allocs;
    cluster.start(0, cluster.simulator().now());
    cluster.run();
    const std::uint64_t steady = g_allocs - before;

    // kNodes handlers run, each forwarding one fresh payload: a few
    // allocations per handler are legitimate (payload control block,
    // header labels, the Delivery's reverse route). Measured ~6/handler;
    // 8 keeps slack without tolerating a per-hop leak.
    constexpr std::uint64_t kPerHandlerBudget = 8;
    if (steady > kNodes * kPerHandlerBudget) {
        std::fprintf(stderr,
                     "FAIL: %llu allocations across a warm %u-node cluster relay "
                     "(budget %llu)\n",
                     static_cast<unsigned long long>(steady), kNodes,
                     static_cast<unsigned long long>(kNodes * kPerHandlerBudget));
        return 1;
    }
    if (cluster.arena().bytes_reserved() != arena_reserved ||
        cluster.arena().bytes_used() != arena_used) {
        std::fprintf(stderr,
                     "FAIL: cluster arena grew after warm-up (%zu -> %zu reserved, "
                     "%zu -> %zu used) — something bump-allocates on the hot path\n",
                     arena_reserved, cluster.arena().bytes_reserved(), arena_used,
                     cluster.arena().bytes_used());
        return 1;
    }
    std::printf("OK: %llu allocations across a warm %u-node cluster relay "
                "(%.3f per handler), arena stable at %zu bytes\n",
                static_cast<unsigned long long>(steady), kNodes,
                static_cast<double>(steady) / kNodes, arena_used);
    return 0;
}

/// Call-agent guard: a warm call workload must hold a bounded per-call
/// allocation budget and must not grow the agent's bookkeeping. With
/// retain_terminal off, resolved calls recycle their slab slots and
/// FlatMap64 index entries (backward-shift erase keeps capacity), so a
/// second wave of calls reuses everything the first wave sized: only
/// the per-message payloads remain.
int check_call_agent_steady_state() {
    using namespace fastnet;
    constexpr NodeId kNodes = 16;
    constexpr std::uint64_t kCalls = 8;
    auto g = std::make_shared<graph::Graph>(graph::make_path(kNodes));

    paris::CallAgentOptions base;
    base.link_capacity = 4;
    base.setup_timeout = 32;
    base.max_retries = 2;
    base.retry_backoff = 8;
    base.reservation_ttl = 400;
    base.refresh_interval = 128;
    base.retain_terminal = false;
    for (std::uint64_t i = 0; i < kCalls; ++i)
        base.requests.push_back(
            {static_cast<Tick>(1 + i * 40), kNodes - 1, 1, 60});

    node::Cluster cluster(*g, [&](NodeId u) {
        paris::CallAgentOptions o = base;
        if (u != 0) o.requests.clear();
        return std::make_unique<paris::CallAgentProtocol>(g, std::move(o));
    });

    // Warm: the first wave sizes the slab, index, ledger, route cache
    // and every payload pool along the path.
    cluster.start_all(0);
    cluster.run();
    const auto* agent =
        dynamic_cast<const paris::CallAgentProtocol*>(&cluster.protocol(0));
    if (agent == nullptr || agent->stats().completed != kCalls) {
        std::fprintf(stderr, "FAIL: warm call wave did not complete (%llu/%llu)\n",
                     static_cast<unsigned long long>(agent ? agent->stats().completed : 0),
                     static_cast<unsigned long long>(kCalls));
        return 1;
    }
    const std::size_t warm_bytes = agent->memory_bytes();

    // Steady wave: restarting the source replays the scripted requests
    // shifted to now. Slots freed by the warm wave are recycled, so the
    // only legitimate allocations are the per-leg message payloads.
    const std::uint64_t before = g_allocs;
    cluster.start(0, cluster.simulator().now());
    cluster.run();
    const std::uint64_t steady = g_allocs - before;

    if (agent->stats().completed != 2 * kCalls) {
        std::fprintf(stderr, "FAIL: steady call wave did not complete (%llu/%llu)\n",
                     static_cast<unsigned long long>(agent->stats().completed),
                     static_cast<unsigned long long>(2 * kCalls));
        return 1;
    }
    // Each call delivers ~60 message legs on this path (selective-copy
    // setup drops a copy at every one of the 15 hops, then accept,
    // teardown and refresh add theirs), and every delivered leg costs
    // the same handful of allocations as any message handler (payload
    // control block, Delivery buffers — see the cluster phase above).
    // Measured ~380 per call warm; 512 keeps slack without tolerating
    // per-call bookkeeping growth on top of the per-leg cost.
    constexpr std::uint64_t kPerCallBudget = 512;
    if (steady > kCalls * kPerCallBudget) {
        std::fprintf(stderr,
                     "FAIL: %llu allocations across %llu warm calls (budget %llu) "
                     "— the call path is allocating per hop again\n",
                     static_cast<unsigned long long>(steady),
                     static_cast<unsigned long long>(kCalls),
                     static_cast<unsigned long long>(kCalls * kPerCallBudget));
        return 1;
    }
    if (agent->memory_bytes() > warm_bytes) {
        std::fprintf(stderr,
                     "FAIL: call agent bookkeeping grew after warm-up (%zu -> %zu "
                     "bytes) — slots or index entries are not being recycled\n",
                     warm_bytes, agent->memory_bytes());
        return 1;
    }
    std::printf("OK: %llu allocations across %llu warm calls (%.1f per call), "
                "agent bookkeeping stable at %zu bytes\n",
                static_cast<unsigned long long>(steady),
                static_cast<unsigned long long>(kCalls),
                static_cast<double>(steady) / kCalls, warm_bytes);
    return 0;
}

}  // namespace

int main() {
    using namespace fastnet;

    constexpr NodeId kNodes = 512;
    const graph::Graph g = graph::make_path(kNodes);
    sim::Simulator sim;
    cost::Metrics metrics(g.node_count());
    // A disabled trace must be free on the fast path: the guard runs with
    // one attached so any record() sneaking past the enabled() gate (or
    // allocating despite being filtered) trips the budget below. Same for
    // an attached-but-empty monitor hub: no registered monitors means no
    // events get built, so it must contribute zero allocations too.
    hw::NetworkConfig net_cfg;
    net_cfg.trace = std::make_shared<sim::Trace>(std::size_t{1} << 12);
    net_cfg.trace->disable_all();
    net_cfg.monitors = std::make_shared<obs::MonitorHub>();
    hw::Network net(sim, g, ModelParams::traditional(), metrics, net_cfg);
    std::uint64_t delivered = 0;
    net.set_ncu_sink(kNodes - 1, [&](const hw::Delivery&) { ++delivered; });

    std::vector<NodeId> path(kNodes);
    for (NodeId u = 0; u < kNodes; ++u) path[u] = u;
    const hw::AnrHeader header = net.route(path);

    // Warm every pool: packet slab, event slabs, staging capacities.
    constexpr int kWarmSends = 4;
    for (int i = 0; i < kWarmSends; ++i) {
        net.send(0, header, nullptr);
        sim.run();
    }

    const std::uint64_t before = g_allocs;
    constexpr std::uint64_t kSends = 8;
    for (std::uint64_t i = 0; i < kSends; ++i) {
        net.send(0, header, nullptr);
        sim.run();
    }
    const std::uint64_t steady = g_allocs - before;

    if (delivered != kWarmSends + kSends) {
        std::fprintf(stderr, "FAIL: expected %llu deliveries, got %llu\n",
                     static_cast<unsigned long long>(kWarmSends + kSends),
                     static_cast<unsigned long long>(delivered));
        return 1;
    }

    // Per warm send, O(1) allocations are legitimate (the shared route
    // blob at send(), the Delivery vectors materialized once at the NCU
    // boundary) — but the 511 relay hops in between must contribute
    // nothing. A budget of 8 per send keeps the bound far below even
    // one-allocation-per-hundred-hops.
    constexpr std::uint64_t kPerSendBudget = 8;
    if (steady > kSends * kPerSendBudget) {
        std::fprintf(stderr,
                     "FAIL: %llu allocations across %llu warm sends of %u hops "
                     "(budget %llu) — the hop fast path is allocating again\n",
                     static_cast<unsigned long long>(steady),
                     static_cast<unsigned long long>(kSends), kNodes - 1,
                     static_cast<unsigned long long>(kSends * kPerSendBudget));
        return 1;
    }

    std::printf("OK: %llu allocations across %llu warm sends of %u hops each "
                "(%.4f per hop)\n",
                static_cast<unsigned long long>(steady),
                static_cast<unsigned long long>(kSends), kNodes - 1,
                static_cast<double>(steady) /
                    static_cast<double>(kSends * (kNodes - 1)));
    if (const int rc = check_cluster_steady_state()) return rc;
    return check_call_agent_steady_state();
}
