// Regression guard for the zero-allocation steady state of the hop fast
// path (see docs/PERF.md). A pure relay along a warm path must not touch
// the allocator per hop: packets come from Network's pool, transmit
// events fit InlineFn's inline buffer, the route blob is shared by every
// hop. This binary overrides global operator new to *count* — it lives
// outside fastnet_tests because the gtest framework's own allocator
// traffic would drown the signal.
#include <cstdio>
#include <cstdlib>
#include <new>

#include "fastnet.hpp"

namespace {
std::uint64_t g_allocs = 0;
}

// These counting operators intentionally delegate storage to
// malloc/free; once make_shared below is inlined against them, GCC
// pairs the allocation sites with std::free and mis-reports a mismatch.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
    ++g_allocs;
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
    ++g_allocs;
    void* p = nullptr;
    if (posix_memalign(&p, static_cast<std::size_t>(al), size ? size : 1) != 0)
        throw std::bad_alloc();
    return p;
}
void* operator new[](std::size_t size, std::align_val_t al) { return ::operator new(size, al); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

struct RelayPing final : fastnet::hw::TypedPayload<RelayPing> {};

/// Forwards one ping up the node-id order (full Cluster phase below).
struct RelayProto final : fastnet::node::Protocol {
    void on_start(fastnet::node::Context& ctx) override { forward(ctx); }
    void on_message(fastnet::node::Context& ctx, const fastnet::hw::Delivery&) override {
        forward(ctx);
    }
    static void forward(fastnet::node::Context& ctx) {
        for (const fastnet::node::LocalLink& l : ctx.links()) {
            if (l.neighbor > ctx.self()) {
                fastnet::hw::AnrHeader h{fastnet::hw::AnrLabel::normal(l.port),
                                         fastnet::hw::AnrLabel::normal(fastnet::hw::kNcuPort)};
                ctx.send(std::move(h), std::make_shared<RelayPing>());
                return;
            }
        }
    }
};

/// Arena-path guard: a full Cluster (arena-resident runtimes, RingQueue
/// work queues) relaying along a warm path must also hold a steady-state
/// allocation budget, and the arena must not grow once warm — bump
/// allocation happens at construction, never on the hop/handler path.
int check_cluster_steady_state() {
    using namespace fastnet;
    constexpr NodeId kNodes = 256;
    node::Cluster cluster(
        graph::make_path(kNodes), [](NodeId) { return std::make_unique<RelayProto>(); });

    // Warm: the first relay wave sizes every queue, slab and Delivery
    // buffer. Each handler allocates its payload (one make_shared), so
    // the budget is per *handler*, not per hop.
    cluster.start(0, 0);
    cluster.run();
    const std::size_t arena_reserved = cluster.arena().bytes_reserved();
    const std::size_t arena_used = cluster.arena().bytes_used();

    const std::uint64_t before = g_allocs;
    cluster.start(0, cluster.simulator().now());
    cluster.run();
    const std::uint64_t steady = g_allocs - before;

    // kNodes handlers run, each forwarding one fresh payload: a few
    // allocations per handler are legitimate (payload control block,
    // header labels, the Delivery's reverse route). Measured ~6/handler;
    // 8 keeps slack without tolerating a per-hop leak.
    constexpr std::uint64_t kPerHandlerBudget = 8;
    if (steady > kNodes * kPerHandlerBudget) {
        std::fprintf(stderr,
                     "FAIL: %llu allocations across a warm %u-node cluster relay "
                     "(budget %llu)\n",
                     static_cast<unsigned long long>(steady), kNodes,
                     static_cast<unsigned long long>(kNodes * kPerHandlerBudget));
        return 1;
    }
    if (cluster.arena().bytes_reserved() != arena_reserved ||
        cluster.arena().bytes_used() != arena_used) {
        std::fprintf(stderr,
                     "FAIL: cluster arena grew after warm-up (%zu -> %zu reserved, "
                     "%zu -> %zu used) — something bump-allocates on the hot path\n",
                     arena_reserved, cluster.arena().bytes_reserved(), arena_used,
                     cluster.arena().bytes_used());
        return 1;
    }
    std::printf("OK: %llu allocations across a warm %u-node cluster relay "
                "(%.3f per handler), arena stable at %zu bytes\n",
                static_cast<unsigned long long>(steady), kNodes,
                static_cast<double>(steady) / kNodes, arena_used);
    return 0;
}

}  // namespace

int main() {
    using namespace fastnet;

    constexpr NodeId kNodes = 512;
    const graph::Graph g = graph::make_path(kNodes);
    sim::Simulator sim;
    cost::Metrics metrics(g.node_count());
    // A disabled trace must be free on the fast path: the guard runs with
    // one attached so any record() sneaking past the enabled() gate (or
    // allocating despite being filtered) trips the budget below. Same for
    // an attached-but-empty monitor hub: no registered monitors means no
    // events get built, so it must contribute zero allocations too.
    hw::NetworkConfig net_cfg;
    net_cfg.trace = std::make_shared<sim::Trace>(std::size_t{1} << 12);
    net_cfg.trace->disable_all();
    net_cfg.monitors = std::make_shared<obs::MonitorHub>();
    hw::Network net(sim, g, ModelParams::traditional(), metrics, net_cfg);
    std::uint64_t delivered = 0;
    net.set_ncu_sink(kNodes - 1, [&](const hw::Delivery&) { ++delivered; });

    std::vector<NodeId> path(kNodes);
    for (NodeId u = 0; u < kNodes; ++u) path[u] = u;
    const hw::AnrHeader header = net.route(path);

    // Warm every pool: packet slab, event slabs, staging capacities.
    constexpr int kWarmSends = 4;
    for (int i = 0; i < kWarmSends; ++i) {
        net.send(0, header, nullptr);
        sim.run();
    }

    const std::uint64_t before = g_allocs;
    constexpr std::uint64_t kSends = 8;
    for (std::uint64_t i = 0; i < kSends; ++i) {
        net.send(0, header, nullptr);
        sim.run();
    }
    const std::uint64_t steady = g_allocs - before;

    if (delivered != kWarmSends + kSends) {
        std::fprintf(stderr, "FAIL: expected %llu deliveries, got %llu\n",
                     static_cast<unsigned long long>(kWarmSends + kSends),
                     static_cast<unsigned long long>(delivered));
        return 1;
    }

    // Per warm send, O(1) allocations are legitimate (the shared route
    // blob at send(), the Delivery vectors materialized once at the NCU
    // boundary) — but the 511 relay hops in between must contribute
    // nothing. A budget of 8 per send keeps the bound far below even
    // one-allocation-per-hundred-hops.
    constexpr std::uint64_t kPerSendBudget = 8;
    if (steady > kSends * kPerSendBudget) {
        std::fprintf(stderr,
                     "FAIL: %llu allocations across %llu warm sends of %u hops "
                     "(budget %llu) — the hop fast path is allocating again\n",
                     static_cast<unsigned long long>(steady),
                     static_cast<unsigned long long>(kSends), kNodes - 1,
                     static_cast<unsigned long long>(kSends * kPerSendBudget));
        return 1;
    }

    std::printf("OK: %llu allocations across %llu warm sends of %u hops each "
                "(%.4f per hop)\n",
                static_cast<unsigned long long>(steady),
                static_cast<unsigned long long>(kSends), kNodes - 1,
                static_cast<double>(steady) /
                    static_cast<double>(kSends * (kNodes - 1)));
    return check_cluster_steady_state();
}
