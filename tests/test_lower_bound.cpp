// Theorem 3: the Omega(log n) one-way broadcast lower bound and its
// matching branching-paths upper bound.
#include <gtest/gtest.h>

#include "common/types.hpp"
#include "topo/lower_bound.hpp"

namespace fastnet::topo {
namespace {

TEST(LowerBound, ShallowTreesAreVacuous) {
    EXPECT_EQ(one_way_lower_bound(1), 0u);
    EXPECT_EQ(one_way_lower_bound(10), 0u);
}

TEST(LowerBound, GrowsLinearlyInDepth) {
    EXPECT_EQ(one_way_lower_bound(11), 1u);
    EXPECT_EQ(one_way_lower_bound(16), 2u);
    EXPECT_EQ(one_way_lower_bound(26), 4u);
    EXPECT_EQ(one_way_lower_bound(56), 10u);
}

TEST(LowerBound, IsOmegaLogN) {
    // depth D tree has n = 2^(D+1) - 1 nodes; bound ~ D/5 ~ (log2 n)/5.
    for (unsigned depth = 11; depth <= 61; depth += 10) {
        const double log_n = depth + 1;  // log2 n up to rounding
        EXPECT_GE(one_way_lower_bound(depth), (log_n - 11) / 5.0);
    }
}

TEST(LowerBound, CertificateArithmeticHolds) {
    for (unsigned depth = 1; depth <= 63; ++depth)
        EXPECT_TRUE(lower_bound_certificate_holds(depth)) << "depth " << depth;
}

TEST(LowerBound, BranchingPathsMatchesDepthExactly) {
    for (unsigned depth : {1u, 2u, 5u, 9u, 14u})
        EXPECT_EQ(branching_paths_rounds(depth), depth);
}

TEST(LowerBound, UpperAndLowerBracketTheOptimum) {
    // lower bound < optimal <= branching-paths = depth, and both are
    // Theta(log n): their ratio stays bounded (~5x plus the offset).
    for (unsigned depth = 11; depth <= 16; ++depth) {
        const unsigned lb = one_way_lower_bound(depth);
        const unsigned ub = branching_paths_rounds(depth);
        EXPECT_LT(lb, ub);
        EXPECT_LE(ub, 5 * lb + 11);
    }
}

}  // namespace
}  // namespace fastnet::topo
