// Tests for the NCU runtime: serial processing, P accounting, timers,
// link notifications and the Cluster assembly.
#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "node/cluster.hpp"

namespace fastnet::node {
namespace {

struct Note : hw::TypedPayload<Note> {
    explicit Note(int v) : value(v) {}
    int value;
};

/// Records everything that happens to it; replies when asked.
class Recorder : public Protocol {
public:
    void on_start(Context& ctx) override { start_times.push_back(ctx.now()); }
    void on_message(Context& ctx, const hw::Delivery& d) override {
        message_times.push_back(ctx.now());
        values.push_back(hw::payload_as<Note>(d) ? hw::payload_as<Note>(d)->value : -1);
        if (reply_value) ctx.reply(d, std::make_shared<Note>(*reply_value));
    }
    void on_link_state(Context& ctx, const LocalLink& l, bool up) override {
        link_events.emplace_back(ctx.now(), l.edge, up);
    }
    void on_timer(Context& ctx, std::uint64_t cookie) override {
        timer_cookies.emplace_back(ctx.now(), cookie);
    }

    std::vector<Tick> start_times;
    std::vector<Tick> message_times;
    std::vector<int> values;
    std::vector<std::tuple<Tick, EdgeId, bool>> link_events;
    std::vector<std::pair<Tick, std::uint64_t>> timer_cookies;
    std::optional<int> reply_value;
};

ProtocolFactory recorder_factory() {
    return [](NodeId) { return std::make_unique<Recorder>(); };
}

TEST(Runtime, StartCostsOneNcuDelay) {
    node::Cluster c(graph::make_path(2), recorder_factory());
    c.start(0, 0);
    c.run();
    auto& r = c.protocol_as<Recorder>(0);
    ASSERT_EQ(r.start_times.size(), 1u);
    EXPECT_EQ(r.start_times[0], 1);  // P = 1: handler completes at t+P
    EXPECT_EQ(c.metrics().node(0).starts, 1u);
}

/// Sends one direct message to the other node on start.
class Pinger : public Recorder {
public:
    void on_start(Context& ctx) override {
        Recorder::on_start(ctx);
        ASSERT_FALSE(ctx.links().empty());
        hw::AnrHeader h{hw::AnrLabel::normal(ctx.links()[0].port),
                        hw::AnrLabel::normal(hw::kNcuPort)};
        ctx.send(std::move(h), std::make_shared<Note>(7));
    }
};

TEST(Runtime, MessageDeliveryTimingFastModel) {
    // C=0, P=1: start processed at 1, message sent at 1, arrives at 1,
    // receiver handler completes at 2.
    node::Cluster c(graph::make_path(2),
                    [](NodeId) { return std::make_unique<Pinger>(); });
    c.start(0, 0);
    c.run();
    auto& r = c.protocol_as<Recorder>(1);
    ASSERT_EQ(r.message_times.size(), 1u);
    EXPECT_EQ(r.message_times[0], 2);
    EXPECT_EQ(r.values[0], 7);
    EXPECT_EQ(c.metrics().node(1).message_deliveries, 1u);
    EXPECT_EQ(c.metrics().total_message_system_calls(), 1u);
    EXPECT_EQ(c.metrics().total_direct_messages(), 1u);
}

TEST(Runtime, MessageDeliveryTimingWithHardwareDelay) {
    ClusterConfig cfg;
    cfg.params.hop_delay = 5;  // C=5, P=1
    node::Cluster c(graph::make_path(2),
                    [](NodeId) { return std::make_unique<Pinger>(); }, cfg);
    c.start(0, 0);
    c.run();
    auto& r = c.protocol_as<Recorder>(1);
    ASSERT_EQ(r.message_times.size(), 1u);
    EXPECT_EQ(r.message_times[0], 1 + 5 + 1);  // start P + hop C + receive P
}

/// Sends `count` messages to the neighbor in one system call.
class Burster : public Recorder {
public:
    explicit Burster(int count) : count_(count) {}
    void on_start(Context& ctx) override {
        for (int i = 0; i < count_; ++i) {
            hw::AnrHeader h{hw::AnrLabel::normal(ctx.links()[0].port),
                            hw::AnrLabel::normal(hw::kNcuPort)};
            ctx.send(std::move(h), std::make_shared<Note>(i));
        }
    }

private:
    int count_;
};

TEST(Runtime, NcuSerializesDeliveries) {
    // Five messages arrive together at t=1; the single NCU processes them
    // one per P, finishing at 2,3,4,5,6 — and in FIFO order.
    node::Cluster c(graph::make_path(2), [](NodeId u) -> std::unique_ptr<Protocol> {
        if (u == 0) return std::make_unique<Burster>(5);
        return std::make_unique<Recorder>();
    });
    c.start(0, 0);
    c.run();
    auto& r = c.protocol_as<Recorder>(1);
    ASSERT_EQ(r.message_times.size(), 5u);
    EXPECT_EQ(r.message_times, (std::vector<Tick>{2, 3, 4, 5, 6}));
    EXPECT_EQ(r.values, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(c.metrics().node(1).busy_time, 5);
}

TEST(Runtime, MultiSendInOneSystemCallCostsOneInvocation) {
    node::Cluster c(graph::make_path(2), [](NodeId u) -> std::unique_ptr<Protocol> {
        if (u == 0) return std::make_unique<Burster>(8);
        return std::make_unique<Recorder>();
    });
    c.start(0, 0);
    c.run();
    // The model's free multicast: 8 sends, but node 0 was involved once.
    EXPECT_EQ(c.metrics().node(0).invocations(), 1u);
    EXPECT_EQ(c.metrics().node(0).sends, 8u);
}

TEST(Runtime, ReplyUsesReverseRoute) {
    node::Cluster c(graph::make_path(3), [](NodeId u) -> std::unique_ptr<Protocol> {
        auto r = std::make_unique<Recorder>();
        if (u == 2) r->reply_value = 42;
        return r;
    });
    // Node 0 sends 0->1->2 manually.
    c.simulator().at(0, [&c] {
        const std::vector<NodeId> path{0, 1, 2};
        c.network().send(0, c.network().route(path), std::make_shared<Note>(1));
    });
    c.run();
    auto& r0 = c.protocol_as<Recorder>(0);
    ASSERT_EQ(r0.values.size(), 1u);
    EXPECT_EQ(r0.values[0], 42);
}

class TimerUser : public Recorder {
public:
    void on_start(Context& ctx) override {
        keep_ = ctx.set_timer(10, 100);
        const TimerId doomed = ctx.set_timer(5, 200);
        ctx.cancel_timer(doomed);
    }

private:
    TimerId keep_ = 0;
};

TEST(Runtime, TimersFireAndCancel) {
    node::Cluster c(graph::make_path(2),
                    [](NodeId) { return std::make_unique<TimerUser>(); });
    c.start(0, 0);
    c.run();
    auto& r = c.protocol_as<Recorder>(0);
    ASSERT_EQ(r.timer_cookies.size(), 1u);
    EXPECT_EQ(r.timer_cookies[0].second, 100u);
    EXPECT_EQ(r.timer_cookies[0].first, 1 + 10 + 1);  // set at 1, fires 11, P=1
    EXPECT_EQ(c.metrics().node(0).timer_fires, 1u);
}

TEST(Runtime, LinkStateChangeInvokesHandlerOnBothEndpoints) {
    node::Cluster c(graph::make_path(3), recorder_factory());
    c.simulator().at(5, [&c] { c.network().fail_link(0); });
    c.run();
    auto& r0 = c.protocol_as<Recorder>(0);
    auto& r1 = c.protocol_as<Recorder>(1);
    auto& r2 = c.protocol_as<Recorder>(2);
    ASSERT_EQ(r0.link_events.size(), 1u);
    ASSERT_EQ(r1.link_events.size(), 1u);
    EXPECT_TRUE(r2.link_events.empty());
    EXPECT_FALSE(std::get<2>(r0.link_events[0]));
    EXPECT_EQ(c.metrics().node(0).link_events, 1u);
}

TEST(Runtime, LocalLinkViewTracksActivity) {
    node::Cluster c(graph::make_path(2), recorder_factory());
    c.simulator().at(1, [&c] { c.network().fail_link(0); });
    c.run();
    // After processing the notification the protocol's view is updated.
    struct Probe : Protocol {};
    // Inspect through a fresh handler call: check the runtime's view via
    // the recorded link event plus links() seen in a later timer.
    auto& r = c.protocol_as<Recorder>(0);
    ASSERT_EQ(r.link_events.size(), 1u);
}

TEST(Runtime, NcuDelayJitterStaysWithinBounds) {
    ClusterConfig cfg;
    cfg.params.ncu_delay = 9;
    cfg.ncu_delay_min = 3;
    cfg.seed = 17;
    node::Cluster c(graph::make_path(2),
                    [](NodeId) { return std::make_unique<Pinger>(); }, cfg);
    c.start(0, 0);
    c.run();
    auto& r = c.protocol_as<Recorder>(1);
    ASSERT_EQ(r.message_times.size(), 1u);
    // start P in [3,9], hop 0, receive P in [3,9].
    EXPECT_GE(r.message_times[0], 6);
    EXPECT_LE(r.message_times[0], 18);
}

TEST(Cluster, QuiescentAfterRun) {
    node::Cluster c(graph::make_path(3), recorder_factory());
    c.start_all(0);
    EXPECT_FALSE(c.quiescent());
    c.run();
    EXPECT_TRUE(c.quiescent());
}

TEST(Cluster, DeterministicAcrossIdenticalRuns) {
    auto run_once = [] {
        ClusterConfig cfg;
        cfg.seed = 99;
        node::Cluster c(graph::make_complete(5), [](NodeId u) -> std::unique_ptr<Protocol> {
            if (u == 0) return std::make_unique<Burster>(4);
            return std::make_unique<Recorder>();
        }, cfg);
        c.start_all(0);
        c.run();
        return c.metrics().total_invocations();
    };
    EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace fastnet::node
