// Tests for the branching-paths decomposition (Section 3.1) and the
// Theorem 2 time bound, over structured and random trees.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "topo/paths.hpp"

namespace fastnet::topo {
namespace {

using graph::Graph;
using graph::RootedTree;

struct Decomposed {
    RootedTree tree;
    std::vector<unsigned> labels;
    PathDecomposition d;
};

Decomposed decompose(const Graph& g, NodeId root = 0) {
    RootedTree t = graph::min_hop_tree(g, root);
    auto labels = label_tree(t);
    auto d = decompose_paths(t, labels);
    return {std::move(t), std::move(labels), std::move(d)};
}

TEST(Paths, SingleNodeHasNoPaths) {
    const auto r = decompose(graph::make_path(1));
    EXPECT_TRUE(r.d.paths.empty());
    EXPECT_EQ(r.d.time_units, 0u);
}

TEST(Paths, PathGraphIsOnePath) {
    const auto r = decompose(graph::make_path(8));
    ASSERT_EQ(r.d.paths.size(), 1u);
    EXPECT_EQ(r.d.paths[0].nodes.size(), 8u);
    EXPECT_EQ(r.d.time_units, 1u);
}

TEST(Paths, StarIsOnePathPlusBranches) {
    // Star rooted at the hub: every leaf chain is a separate path [hub, leaf],
    // all sent at wave 1.
    const auto r = decompose(graph::make_star(6));
    EXPECT_EQ(r.d.paths.size(), 5u);
    EXPECT_EQ(r.d.time_units, 1u);
    for (const auto& p : r.d.paths) {
        EXPECT_EQ(p.nodes.front(), 0u);
        EXPECT_EQ(p.nodes.size(), 2u);
    }
}

TEST(Paths, CompleteBinaryTreeNeedsDepthWaves) {
    // Every path is a single edge (all branches), so waves = depth.
    const auto r = decompose(graph::make_complete_binary_tree(5));
    EXPECT_EQ(r.d.time_units, 5u);
    EXPECT_EQ(r.d.paths.size(), r.tree.size() - 1);  // one path per edge
}

TEST(Paths, ValidatorAcceptsRealDecompositions) {
    const auto r = decompose(graph::make_caterpillar(5, 2));
    EXPECT_TRUE(valid_decomposition(r.tree, r.labels, r.d));
}

TEST(Paths, ValidatorRejectsDoubleCoverage) {
    auto r = decompose(graph::make_path(4));
    // Duplicate the only path: nodes now covered twice.
    r.d.paths.push_back(r.d.paths[0]);
    EXPECT_FALSE(valid_decomposition(r.tree, r.labels, r.d));
}

TEST(Paths, ValidatorRejectsNonTreeEdges) {
    auto r = decompose(graph::make_path(4));
    r.d.paths[0].nodes = {0, 2, 1, 3};  // not parent-child chains
    EXPECT_FALSE(valid_decomposition(r.tree, r.labels, r.d));
}

class PathsProperty : public ::testing::TestWithParam<std::tuple<NodeId, std::uint64_t>> {
protected:
    Decomposed make() {
        auto [n, seed] = GetParam();
        Rng rng(seed);
        const Graph g = graph::make_random_tree(n, rng);
        return decompose(g, static_cast<NodeId>(rng.below(n)));
    }
};

TEST_P(PathsProperty, StructurallyValid) {
    const auto r = make();
    EXPECT_TRUE(valid_decomposition(r.tree, r.labels, r.d));
}

TEST_P(PathsProperty, EveryNonRootCoveredExactlyOnce) {
    const auto r = make();
    std::vector<int> covered(r.tree.node_capacity(), 0);
    for (const auto& p : r.d.paths)
        for (std::size_t i = 1; i < p.nodes.size(); ++i) covered[p.nodes[i]] += 1;
    for (NodeId u : r.tree.preorder()) EXPECT_EQ(covered[u], u == r.tree.root() ? 0 : 1);
}

TEST_P(PathsProperty, Theorem2TimeBound) {
    const auto r = make();
    // time <= 1 + x where x = root label <= floor(log2 n).
    EXPECT_LE(r.d.time_units, 1 + r.labels[r.tree.root()]);
    EXPECT_LE(r.d.time_units, 1 + floor_log2(r.tree.size()));
}

TEST_P(PathsProperty, WaveRespects1PlusXMinusY) {
    const auto r = make();
    const unsigned x = r.labels[r.tree.root()];
    for (const auto& p : r.d.paths) EXPECT_LE(p.wave, 1 + x - p.label);
}

TEST_P(PathsProperty, PathStartsAreInformedBeforeTheirWave) {
    const auto r = make();
    // Reconstruct per-node informed-wave and check causality.
    std::vector<unsigned> informed(r.tree.node_capacity(), ~0u);
    informed[r.tree.root()] = 0;
    for (const auto& p : r.d.paths) {
        ASSERT_NE(informed[p.nodes.front()], ~0u);
        ASSERT_LT(informed[p.nodes.front()], p.wave);
        for (std::size_t i = 1; i < p.nodes.size(); ++i) informed[p.nodes[i]] = p.wave;
    }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTrees, PathsProperty,
    ::testing::Combine(::testing::Values<NodeId>(2, 3, 5, 9, 17, 64, 255, 1024),
                       ::testing::Values<std::uint64_t>(7, 21, 63)));

}  // namespace
}  // namespace fastnet::topo
