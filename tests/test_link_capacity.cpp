// Ablation A6: finite link capacity (one packet per link direction per
// spacing interval). Theorem 3's counting argument implicitly assumes a
// node launches at most ~degree messages per time unit — with infinite-
// capacity links the "direct unicast" scheme trivially beats the lower
// bound, with spaced links it cannot.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "node/cluster.hpp"
#include "topo/broadcast_protocols.hpp"
#include "topo/lower_bound.hpp"

namespace fastnet::topo {
namespace {

BroadcastOutcome run_spaced(const graph::Graph& g, BroadcastScheme scheme, Tick spacing) {
    node::ClusterConfig cfg;
    cfg.net.link_spacing = spacing;
    return run_broadcast(g, scheme, 0, cfg);
}

TEST(LinkCapacity, SpacingSerializesSameLinkPackets) {
    // Star: the root sends n-1 direct messages through distinct links —
    // spacing does not hurt (one packet per link).
    const graph::Graph star = graph::make_star(9);
    const auto out = run_spaced(star, BroadcastScheme::kDirectUnicast, 1);
    EXPECT_TRUE(out.all_received);
    EXPECT_DOUBLE_EQ(out.time_units, 1.0);
}

TEST(LinkCapacity, DirectUnicastLosesItsMagicOnSharedLinks) {
    // Complete binary tree: every direct message to the left subtree
    // shares the root's left link. With spacing 1 they arrive one per
    // unit: coverage time becomes Omega(n / 2), not 1.
    const graph::Graph g = graph::make_complete_binary_tree(4);  // n = 31
    const auto free = run_spaced(g, BroadcastScheme::kDirectUnicast, 0);
    const auto spaced = run_spaced(g, BroadcastScheme::kDirectUnicast, 1);
    EXPECT_TRUE(free.all_received);
    EXPECT_TRUE(spaced.all_received);
    EXPECT_DOUBLE_EQ(free.time_units, 1.0);
    // 15 messages share each root link: the last arrives ~14 units late.
    EXPECT_GE(spaced.time_units, 14.0);
}

TEST(LinkCapacity, BranchingPathsIsUnaffected) {
    // The paper's algorithm sends at most one message per link per wave,
    // so finite capacity costs it nothing — it lives inside the
    // constrained class the Theorem 3 bound applies to.
    const graph::Graph g = graph::make_complete_binary_tree(4);
    const auto free = run_spaced(g, BroadcastScheme::kBranchingPaths, 0);
    const auto spaced = run_spaced(g, BroadcastScheme::kBranchingPaths, 1);
    EXPECT_TRUE(spaced.all_received);
    EXPECT_DOUBLE_EQ(spaced.time_units, free.time_units);
}

TEST(LinkCapacity, SpacedBroadcastRespectsLowerBoundShape) {
    // Under spacing, every scheme's coverage time on the complete binary
    // tree is at least the Theorem 3 adversary bound.
    for (unsigned depth : {3u, 5u, 7u}) {
        const graph::Graph g = graph::make_complete_binary_tree(depth);
        const unsigned lb = one_way_lower_bound(depth);
        for (auto scheme : {BroadcastScheme::kBranchingPaths, BroadcastScheme::kDirectUnicast}) {
            const auto out = run_spaced(g, scheme, 1);
            EXPECT_TRUE(out.all_received);
            EXPECT_GT(out.time_units, static_cast<double>(lb))
                << scheme_name(scheme) << " depth " << depth;
        }
    }
}

TEST(LinkCapacity, FifoStillHoldsUnderSpacing) {
    node::ClusterConfig cfg;
    cfg.net.link_spacing = 3;
    const graph::Graph g = graph::make_path(2);
    const auto out = run_broadcast(g, BroadcastScheme::kBranchingPaths, 0, cfg);
    EXPECT_TRUE(out.all_received);
}

}  // namespace
}  // namespace fastnet::topo
