// Section 5's S(t) recursion: base cases, the paper's three worked
// examples (binomial / traditional blow-up / Fibonacci), and structural
// properties of optimal_time.
#include <gtest/gtest.h>

#include <cmath>

#include "common/expect.hpp"
#include "gsf/schedule.hpp"

namespace fastnet::gsf {
namespace {

TEST(Schedule, BaseCases) {
    ScheduleSolver s(/*C=*/2, /*P=*/3);
    EXPECT_EQ(s.size_at(-1), 0u);
    EXPECT_EQ(s.size_at(0), 0u);
    EXPECT_EQ(s.size_at(2), 0u);        // t < P
    EXPECT_EQ(s.size_at(3), 1u);        // P <= t < 2P + C = 8
    EXPECT_EQ(s.size_at(7), 1u);
    EXPECT_EQ(s.size_at(8), 2u);        // S(5) + S(3) = 1 + 1
}

TEST(Schedule, RecursionMatchesDirectEvaluation) {
    ScheduleSolver s(5, 2);
    for (Tick t = 9; t <= 60; ++t)
        EXPECT_EQ(s.size_at(t), s.size_at(t - 2) + s.size_at(t - 7)) << t;
}

TEST(Schedule, Example1BinomialTrees) {
    // C=0, P=1: S(k) = 2^(k-1)  (paper eq. 6).
    ScheduleSolver s(0, 1);
    for (unsigned k = 1; k <= 30; ++k)
        EXPECT_EQ(s.size_at(static_cast<Tick>(k)), binomial_size(k)) << k;
}

TEST(Schedule, Example2TraditionalBlowUp) {
    // C=1, P=0: any size by t = C (star); the recursion "blows up".
    ScheduleSolver s(1, 0);
    EXPECT_EQ(s.size_at(0), 1u);
    EXPECT_EQ(s.size_at(1), kUnboundedSize);
    EXPECT_EQ(s.optimal_time(1'000'000), 1);
    ScheduleSolver s5(5, 0);
    EXPECT_EQ(s5.size_at(4), 1u);
    EXPECT_EQ(s5.size_at(5), kUnboundedSize);
}

TEST(Schedule, Example3FibonacciTrees) {
    // C=1, P=1: S(k) = Fib(k)  (paper eq. 9).
    ScheduleSolver s(1, 1);
    for (unsigned k = 1; k <= 40; ++k)
        EXPECT_EQ(s.size_at(static_cast<Tick>(k)), fibonacci_size(k)) << k;
}

TEST(Schedule, FibonacciClosedFormGoldenRatio) {
    // Paper eq. 11: S(k) = (phi^k - psi^k) / sqrt(5).
    const double phi = (1 + std::sqrt(5.0)) / 2;
    const double psi = (1 - std::sqrt(5.0)) / 2;
    for (unsigned k = 1; k <= 40; ++k) {
        const double closed = (std::pow(phi, k) - std::pow(psi, k)) / std::sqrt(5.0);
        EXPECT_EQ(fibonacci_size(k), static_cast<std::uint64_t>(std::llround(closed))) << k;
    }
}

TEST(Schedule, SizeIsMonotoneInTime) {
    for (auto [c, p] : std::vector<std::pair<Tick, Tick>>{{0, 1}, {1, 1}, {3, 1}, {1, 3}, {7, 2}}) {
        ScheduleSolver s(c, p);
        std::uint64_t prev = 0;
        for (Tick t = 0; t <= 80; ++t) {
            EXPECT_GE(s.size_at(t), prev) << "C=" << c << " P=" << p << " t=" << t;
            prev = s.size_at(t);
        }
    }
}

TEST(Schedule, LargerDelaysNeverHelp) {
    ScheduleSolver fast(1, 1), slow_c(4, 1), slow_p(1, 4);
    for (Tick t = 0; t <= 60; ++t) {
        EXPECT_LE(slow_c.size_at(t), fast.size_at(t));
        EXPECT_LE(slow_p.size_at(t), fast.size_at(t));
    }
}

TEST(Schedule, OptimalTimeInvertsSize) {
    for (auto [c, p] : std::vector<std::pair<Tick, Tick>>{{0, 1}, {1, 1}, {5, 2}, {2, 5}}) {
        ScheduleSolver s(c, p);
        for (std::uint64_t n : {1ull, 2ull, 3ull, 7ull, 64ull, 1000ull}) {
            const Tick t = s.optimal_time(n);
            EXPECT_GE(s.size_at(t), n);
            if (n > 1) {
                EXPECT_LT(s.size_at(t - 1), n);
            }
        }
    }
}

TEST(Schedule, OptimalTimeSingleNodeIsP) {
    EXPECT_EQ(optimal_gather_time(1, 9, 4), 4);
}

TEST(Schedule, BinomialOptimalTimeIsCeilLog2Plus1) {
    // C=0, P=1: S(k) = 2^(k-1) >= n  <=>  k >= log2(n) + 1.
    ScheduleSolver s(0, 1);
    EXPECT_EQ(s.optimal_time(2), 2);
    EXPECT_EQ(s.optimal_time(3), 3);
    EXPECT_EQ(s.optimal_time(4), 3);
    EXPECT_EQ(s.optimal_time(5), 4);
    EXPECT_EQ(s.optimal_time(1024), 11);
    EXPECT_EQ(s.optimal_time(1025), 12);
}

TEST(Schedule, TraditionalModelIsInsensitiveToN) {
    // The paper's point: under C=1, P=0 a complete graph computes any
    // globally sensitive function in one unit regardless of n...
    ScheduleSolver trad(1, 0);
    EXPECT_EQ(trad.optimal_time(10), trad.optimal_time(1'000'000));
    // ...but with any P > 0 the new model does NOT degenerate: time
    // grows with n even on a complete graph.
    ScheduleSolver fast(1, 1);
    EXPECT_LT(fast.optimal_time(10), fast.optimal_time(1'000'000));
}

TEST(Schedule, RejectsDegenerateParameters) {
    EXPECT_THROW(ScheduleSolver(0, 0), ContractViolation);
    EXPECT_THROW(ScheduleSolver(-1, 1), ContractViolation);
}

TEST(Schedule, SaturatesInsteadOfOverflowing) {
    ScheduleSolver s(0, 1);
    EXPECT_EQ(s.size_at(64), std::uint64_t{1} << 63);  // exact up to 2^63
    // Beyond that the doubling saturates just below the unbounded marker
    // instead of wrapping around.
    EXPECT_EQ(s.size_at(500), kUnboundedSize - 1);
    EXPECT_LT(s.size_at(500), kUnboundedSize);
}

class ScheduleSweep : public ::testing::TestWithParam<std::tuple<Tick, Tick>> {};

TEST_P(ScheduleSweep, DoublesWithinCPlus2P) {
    // Crude growth sanity: S(t + C + 2P) >= 2 S(t) for t past the base,
    // since OT(t + C + 2P) contains two disjoint OT(t)'s worth of slots.
    const auto [c, p] = GetParam();
    ScheduleSolver s(c, p);
    for (Tick t = 2 * p + c; t <= 20 * (c + p); ++t)
        EXPECT_GE(s.size_at(t + c + 2 * p), 2 * s.size_at(t)) << t;
}

INSTANTIATE_TEST_SUITE_P(Params, ScheduleSweep,
                         ::testing::Values(std::tuple<Tick, Tick>{0, 1},
                                           std::tuple<Tick, Tick>{1, 1},
                                           std::tuple<Tick, Tick>{1, 2},
                                           std::tuple<Tick, Tick>{4, 1},
                                           std::tuple<Tick, Tick>{3, 3}));

}  // namespace
}  // namespace fastnet::gsf
