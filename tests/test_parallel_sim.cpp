// Determinism and correctness of the parallel event kernel.
//
// The contract (node/parallel_cluster.hpp): one scripted run, executed
// at any shard count and any worker-thread count, merges to the SAME
// bytes — canonical trace, metrics JSON, violations JSON — and to the
// same completion time. These tests sweep shards {1, 2, 7, 16} x
// threads {1, 2} over an irregular topology under churn and byte-compare
// every serialization, then hand the quiesced cluster to the convergence
// oracle (Theorem 1 must survive the partitioning).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/oracle.hpp"
#include "graph/generators.hpp"
#include "node/parallel_cluster.hpp"
#include "obs/metrics_export.hpp"
#include "obs/monitor.hpp"
#include "obs/trace_export.hpp"
#include "topo/topology_maintenance.hpp"

namespace fastnet::node {
namespace {

graph::Graph irregular_graph() {
    Rng rng(0xfeedULL);
    return graph::make_random_connected(23, 1, 3, rng);
}

ParallelClusterConfig base_config(unsigned shards, unsigned threads) {
    ParallelClusterConfig cfg;
    cfg.params.hop_delay = 3;   // C = 3, fixed -> lookahead 3
    cfg.params.ncu_delay = 2;   // P = 2
    cfg.net.hop_delay_min = -1;
    cfg.net.detection_delay = 2;
    cfg.seed = 99;
    cfg.shards = shards;
    cfg.threads = threads;
    cfg.trace_capacity = std::size_t{1} << 17;
    cfg.sample_window = 64;
    cfg.monitor_setup = [](obs::MonitorHub& hub) {
        obs::add_standard_monitors(hub, obs::StandardMonitorOptions{});
    };
    return cfg;
}

topo::TopologyOptions maintenance_options() {
    topo::TopologyOptions opt;
    opt.period = 48;
    opt.rounds = 6;
    return opt;
}

/// Scripts the shared churn timeline: link flaps, a crash + restart, a
/// stall, and phase marks. Every action heals well before quiescence so
/// Theorem 1 applies to the full graph.
void script_churn(ParallelCluster& c) {
    const graph::Graph& g = c.graph();
    c.start_all(0);
    c.mark_phase(1, 1);
    c.fail_link(40, 0);
    c.fail_link(55, g.edge_count() / 2);
    c.stall_node(60, 3, 7);
    c.restore_link(90, 0);
    c.crash_node(100, 5);
    c.restore_link(110, g.edge_count() / 2);
    c.mark_phase(120, 2);
    c.restart_node(140, 5);
}

struct RunResult {
    Tick completion = 0;
    std::string trace_json;
    std::string metrics_json;
    std::string violations_json;
    fault::OracleReport oracle;
};

RunResult run_config(unsigned shards, unsigned threads) {
    ParallelCluster c(irregular_graph(),
                      topo::make_topology_maintenance(23, maintenance_options()),
                      base_config(shards, threads));
    script_churn(c);

    RunResult r;
    r.completion = c.run();
    EXPECT_EQ(c.trace_dropped(), 0u) << "ring too small for byte-stable merge";
    const obs::ExportMeta meta = obs::make_meta(c.graph(), "parallel_sweep");
    r.trace_json =
        obs::canonical_trace_json(c.merged_trace(), meta, c.trace_total_recorded(),
                                  c.trace_dropped(), c.trace_detail_dropped());
    r.metrics_json = obs::metrics_json(c.merged_metrics(), "parallel_sweep");
    r.violations_json = obs::violations_json(c.monitor_count(), c.violation_count(),
                                             c.merged_violations(), "parallel_sweep");
    r.oracle = fault::check_theorem1(c);
    return r;
}

TEST(ParallelSim, ByteIdenticalAcrossShardAndThreadCounts) {
    const RunResult baseline = run_config(1, 1);
    EXPECT_GT(baseline.completion, 0);
    EXPECT_TRUE(baseline.oracle.ok()) << baseline.oracle.summary();

    const unsigned shard_counts[] = {2, 7, 16};
    const unsigned thread_counts[] = {1, 2};
    for (unsigned s : shard_counts) {
        for (unsigned t : thread_counts) {
            SCOPED_TRACE("shards=" + std::to_string(s) + " threads=" + std::to_string(t));
            const RunResult r = run_config(s, t);
            EXPECT_EQ(r.completion, baseline.completion);
            EXPECT_EQ(r.trace_json, baseline.trace_json);
            EXPECT_EQ(r.metrics_json, baseline.metrics_json);
            EXPECT_EQ(r.violations_json, baseline.violations_json);
            EXPECT_TRUE(r.oracle.ok()) << r.oracle.summary();
        }
    }
}

TEST(ParallelSim, MonitorsStayCleanUnderChurn) {
    const RunResult r = run_config(4, 2);
    EXPECT_NE(r.violations_json.find("\"violation_count\": 0"), std::string::npos)
        << r.violations_json;
}

TEST(ParallelSim, LookaheadIsMinBoundaryHopDelay) {
    const auto factory = topo::make_topology_maintenance(23, maintenance_options());

    {  // Fixed C = 3: window width 3.
        ParallelClusterConfig cfg = base_config(4, 1);
        ParallelCluster c(irregular_graph(), factory, cfg);
        ASSERT_GT(c.shard_count(), 1u);
        EXPECT_EQ(c.lookahead(), 3);
    }
    {  // Jittered delays in [1, 4]: the conservative bound is the min.
        ParallelClusterConfig cfg = base_config(4, 1);
        cfg.params.hop_delay = 4;
        cfg.net.hop_delay_min = 1;
        ParallelCluster c(irregular_graph(), factory, cfg);
        ASSERT_GT(c.shard_count(), 1u);
        EXPECT_EQ(c.lookahead(), 1);
    }
    {  // Single shard: no boundary, one unbounded window.
        ParallelClusterConfig cfg = base_config(1, 1);
        ParallelCluster c(irregular_graph(), factory, cfg);
        EXPECT_EQ(c.shard_count(), 1u);
        EXPECT_EQ(c.lookahead(), kNever);
        EXPECT_TRUE(c.partition().boundary_edges.empty());
    }
}

TEST(ParallelSim, ZeroLookaheadFallsBackToOneShard) {
    const auto factory = topo::make_topology_maintenance(23, maintenance_options());
    {  // Jitter floor 0 with C > 0: a boundary packet could arrive "now".
        ParallelClusterConfig cfg = base_config(4, 1);
        cfg.params.hop_delay = 3;
        cfg.net.hop_delay_min = 0;
        ParallelCluster c(irregular_graph(), factory, cfg);
        EXPECT_EQ(c.shard_count(), 1u);
    }
    {  // The limiting model (C = 0) has no lookahead at all.
        ParallelClusterConfig cfg = base_config(4, 1);
        cfg.params = ModelParams::fast_network();
        cfg.net.hop_delay_min = -1;
        ParallelCluster c(irregular_graph(), factory, cfg);
        EXPECT_EQ(c.shard_count(), 1u);
    }
}

TEST(ParallelSim, PartitionBoundaryDelaysAreNeverBelowWindowWidth) {
    // The conservative-safety property the whole kernel rests on: every
    // boundary edge's minimum delay >= the window width (lookahead).
    ParallelClusterConfig cfg = base_config(5, 1);
    cfg.params.hop_delay = 4;
    cfg.net.hop_delay_min = 2;
    ParallelCluster c(irregular_graph(),
                      topo::make_topology_maintenance(23, maintenance_options()), cfg);
    ASSERT_GT(c.shard_count(), 1u);
    const Tick link_min = cfg.net.hop_delay_min;  // uniform delays: min is global
    for (EdgeId e : c.partition().boundary_edges) {
        EXPECT_TRUE(c.partition().boundary(c.graph(), e));
        EXPECT_GE(link_min, c.lookahead());
    }
    EXPECT_EQ(c.lookahead(), link_min);
}

TEST(ParallelSim, RunUntilAdvancesInWindows) {
    ParallelCluster c(irregular_graph(),
                      topo::make_topology_maintenance(23, maintenance_options()),
                      base_config(3, 1));
    c.start_all(0);
    c.run_until(50);
    EXPECT_LE(c.now(), 50);
    EXPECT_FALSE(c.quiescent());
    const Tick done = c.run();
    EXPECT_GT(done, 50);
    EXPECT_TRUE(c.quiescent());

    // Identical to a one-shot run of the same script.
    ParallelCluster whole(irregular_graph(),
                          topo::make_topology_maintenance(23, maintenance_options()),
                          base_config(3, 1));
    whole.start_all(0);
    EXPECT_EQ(whole.run(), done);
}

}  // namespace
}  // namespace fastnet::node
