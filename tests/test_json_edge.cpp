// Edge cases of the strict JSON parser (src/obs/json.cpp) that the
// mainline test_obs.cpp round-trips do not reach: the recursion depth
// limit, duplicate keys, exact integer handling at the 2^63 / 2^64
// boundaries, and the malformed-input rejections the exporter validators
// (and fastnet_report's ingestion) depend on.
#include <gtest/gtest.h>

#include <string>

#include "obs/json.hpp"

namespace fastnet::obs {
namespace {

std::string nested_arrays(int depth) {
    std::string s;
    for (int i = 0; i < depth; ++i) s += '[';
    s += '1';
    for (int i = 0; i < depth; ++i) s += ']';
    return s;
}

TEST(JsonEdge, AcceptsDeepButBoundedNesting) {
    JsonValue v;
    std::string err;
    EXPECT_TRUE(json_parse(nested_arrays(60), v, &err)) << err;
}

TEST(JsonEdge, RejectsNestingBeyondDepthLimit) {
    // kMaxDepth = 64; a malicious or corrupted export must not be able
    // to blow the parser's stack.
    JsonValue v;
    std::string err;
    EXPECT_FALSE(json_parse(nested_arrays(100), v, &err));
    EXPECT_NE(err.find("deep"), std::string::npos) << err;
}

TEST(JsonEdge, DuplicateKeysKeepBothButFindReturnsFirst) {
    JsonValue v;
    ASSERT_TRUE(json_parse(R"({"k": 1, "k": 2})", v));
    ASSERT_EQ(v.object.size(), 2u);  // both retained in written order
    EXPECT_EQ(v.find("k")->uint_value, 1u);
}

TEST(JsonEdge, ExactUInt64AtTheBoundaries) {
    JsonValue v;
    // 2^63 does not fit int64 but is an exact uint64.
    ASSERT_TRUE(json_parse("9223372036854775808", v));
    ASSERT_EQ(v.type, JsonValue::Type::kUInt);
    EXPECT_EQ(v.uint_value, 1ull << 63);
    // 2^64 - 1 is the last exact integer.
    ASSERT_TRUE(json_parse("18446744073709551615", v));
    ASSERT_EQ(v.type, JsonValue::Type::kUInt);
    EXPECT_EQ(v.uint_value, 18446744073709551615ull);
}

TEST(JsonEdge, UInt64OverflowFallsBackToDouble) {
    JsonValue v;
    ASSERT_TRUE(json_parse("18446744073709551616", v));  // 2^64
    EXPECT_EQ(v.type, JsonValue::Type::kDouble);
    EXPECT_DOUBLE_EQ(v.as_double(), 18446744073709551616.0);
}

TEST(JsonEdge, MostNegativeInt64IsExact) {
    JsonValue v;
    ASSERT_TRUE(json_parse("-9223372036854775808", v));  // -2^63
    ASSERT_EQ(v.type, JsonValue::Type::kInt);
    EXPECT_EQ(v.int_value, std::int64_t{-9223372036854775807LL - 1});
}

TEST(JsonEdge, RejectsMalformedNumbersAndStrings) {
    JsonValue v;
    for (const char* bad : {
             "[1, 2,]",        // trailing comma
             R"({"a": 1,})",   // trailing comma in object
             "01",             // leading zero
             "+1",             // explicit plus
             "1.",             // dangling fraction
             ".5",             // missing integer part
             "1e",             // dangling exponent
             "\"unterminated", // unterminated string
             R"("bad \u12g4")",// malformed \u escape
             "1 2",            // trailing content
             "{\"a\" 1}",      // missing colon
             "nul",            // truncated literal
             "",               // empty input
         }) {
        std::string err;
        EXPECT_FALSE(json_parse(bad, v, &err)) << "accepted: " << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

}  // namespace
}  // namespace fastnet::obs
