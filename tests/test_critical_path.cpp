// Causal critical-path engine (src/obs/critical_path.hpp): unit-level
// checks on handcrafted record streams — the exact-sum conservation law,
// segment classification (hop splits, timer wait vs retry backoff),
// witness and top-N selection, the bounded-memory controls (horizon
// pruning, live/blame caps) and their confidence counters — plus the
// BoundAudit bridge, the latency SLO monitor, and the PR's spill-side
// satellites: LineageIndex ancestry under link-layer duplication
// (dup_ppm) and spill inputs split across multiple directories.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "graph/generators.hpp"
#include "node/parallel_cluster.hpp"
#include "obs/audit.hpp"
#include "obs/critical_path.hpp"
#include "obs/monitor.hpp"
#include "obs/spill_query.hpp"
#include "obs/trace_query.hpp"
#include "paris/call_setup.hpp"
#include "paris/workload.hpp"
#include "sim/trace.hpp"
#include "sim/trace_spill.hpp"

namespace fastnet::obs {
namespace {

sim::TraceRecord rec(sim::TraceKind kind, Tick at, NodeId node, std::uint64_t lineage,
                     std::uint64_t a = 0, std::uint64_t b = 0, std::uint64_t c = 0) {
    sim::TraceRecord r;
    r.kind = kind;
    r.at = at;
    r.node = node;
    r.lineage = lineage;
    r.a = a;
    r.b = b;
    r.c = c;
    return r;
}

Tick seg(const SegmentTotals& t, SegmentKind k) {
    return t.ticks[static_cast<unsigned>(k)];
}

// ---- exact-sum attribution on handcrafted chains ------------------------

TEST(CriticalPath, TwoLegChainTilesExactly) {
    // Root send at t=0, delivered at t=10 (busy 2): transit 8, handler 2.
    // Child injected in the delivery handler, delivered at t=25 (busy 3):
    // transit 12, handler 3. Latency 25 = 8+2+12+3.
    std::vector<sim::TraceRecord> rs;
    rs.push_back(rec(sim::TraceKind::kSend, 0, 0, 1, 0, /*parent=*/0, /*sent=*/0));
    rs.push_back(rec(sim::TraceKind::kDeliver, 10, 1, 1, 0, /*busy=*/2, /*sent=*/0));
    rs.push_back(rec(sim::TraceKind::kSend, 10, 1, 2, 0, /*parent=*/1, /*sent=*/10));
    rs.push_back(rec(sim::TraceKind::kDeliver, 25, 2, 2, 0, /*busy=*/3, /*sent=*/10));

    const CriticalPathReport report = critical_path(rs);
    ASSERT_TRUE(report.has_witness);
    const PathSummary& w = report.witness;
    EXPECT_EQ(w.root, 1u);
    EXPECT_EQ(w.root_start, 0);
    EXPECT_EQ(w.end, 25);
    EXPECT_EQ(w.terminal, 2u);
    EXPECT_EQ(w.terminal_node, 2u);
    EXPECT_EQ(w.depth, 2u);
    EXPECT_EQ(w.latency(), 25);
    EXPECT_EQ(seg(w.totals, SegmentKind::kTransit), 20);
    EXPECT_EQ(seg(w.totals, SegmentKind::kHandler), 5);
    EXPECT_EQ(seg(w.totals, SegmentKind::kQueueing), 0);
    EXPECT_EQ(w.totals.total(), w.latency());
    EXPECT_EQ(report.clamped, 0u);
    EXPECT_EQ(report.unanchored_sends, 0u);
}

TEST(CriticalPath, DeferredSendGapIsQueueing) {
    // The child is injected 4 ticks after its parent's completion (A1
    // serialization): the gap must be priced as queueing, and the sum
    // must still tile.
    std::vector<sim::TraceRecord> rs;
    rs.push_back(rec(sim::TraceKind::kDeliver, 10, 1, 1, 0, 2, 0));
    rs.push_back(rec(sim::TraceKind::kSend, 14, 1, 2, 0, 1, 14));
    rs.push_back(rec(sim::TraceKind::kDeliver, 20, 2, 2, 0, 1, 14));

    const CriticalPathReport report = critical_path(rs);
    const PathSummary& w = report.witness;
    EXPECT_EQ(w.latency(), 20);
    EXPECT_EQ(seg(w.totals, SegmentKind::kQueueing), 4);
    EXPECT_EQ(w.totals.total(), w.latency());
}

TEST(CriticalPath, HopRecordSplitsTransitFromSwitchQueueing) {
    // Last hop lands at t=6; handler starts at t=8. With the hop record:
    // transit [0,6], queueing [6,8], handler [8,10]. Without it, the
    // whole pre-handler span folds into transit.
    std::vector<sim::TraceRecord> with_hop;
    with_hop.push_back(rec(sim::TraceKind::kSend, 0, 0, 1, 0, 0, 0));
    with_hop.push_back(rec(sim::TraceKind::kHop, 6, 1, 1, /*edge=*/7, 0, /*hop_sent=*/0));
    with_hop.push_back(rec(sim::TraceKind::kDeliver, 10, 1, 1, 0, 2, 0));
    const CriticalPathReport split = critical_path(with_hop);
    EXPECT_EQ(seg(split.witness.totals, SegmentKind::kTransit), 6);
    EXPECT_EQ(seg(split.witness.totals, SegmentKind::kQueueing), 2);
    EXPECT_EQ(seg(split.witness.totals, SegmentKind::kHandler), 2);
    EXPECT_EQ(split.witness.totals.total(), split.witness.latency());
    // The hop also prices its edge in link blame.
    ASSERT_EQ(split.link_blame.size(), 1u);
    EXPECT_EQ(split.link_blame[0].key, kLinkBlameBit | 7u);
    EXPECT_EQ(seg(split.link_blame[0].totals, SegmentKind::kTransit), 6);

    std::vector<sim::TraceRecord> no_hop = {with_hop[0], with_hop[2]};
    const CriticalPathReport folded = critical_path(no_hop);
    EXPECT_EQ(seg(folded.witness.totals, SegmentKind::kTransit), 8);
    EXPECT_EQ(seg(folded.witness.totals, SegmentKind::kQueueing), 0);
}

TEST(CriticalPath, TimerCookieKindSelectsRetryBackoff) {
    // A timer armed at the delivery (t=10) fires at t=30 (busy 1, wait
    // 19) and its handler sends a child delivered at t=35 — the witness
    // path crosses the timer leg. Cookie low nibble 5 = paris retry =>
    // the wait is retry backoff; any other nibble stays timer wait.
    const auto run = [](std::uint64_t cookie) {
        std::vector<sim::TraceRecord> rs;
        rs.push_back(rec(sim::TraceKind::kDeliver, 10, 1, 1, 0, 2, 0));
        rs.push_back(rec(sim::TraceKind::kTimer, 30, 1, 1, cookie, /*busy=*/1,
                         /*armed=*/10));
        rs.push_back(rec(sim::TraceKind::kSend, 30, 1, 2, 0, /*parent=*/1, 30));
        rs.push_back(rec(sim::TraceKind::kDeliver, 35, 2, 2, 0, /*busy=*/2, 30));
        return critical_path(rs);
    };
    const CriticalPathReport retry = run(0x25);  // kind nibble 5
    EXPECT_EQ(retry.witness.latency(), 35);
    EXPECT_EQ(seg(retry.witness.totals, SegmentKind::kRetryBackoff), 19);
    EXPECT_EQ(seg(retry.witness.totals, SegmentKind::kTimerWait), 0);
    EXPECT_EQ(retry.witness.totals.total(), retry.witness.latency());
    EXPECT_EQ(retry.timer_fires, 1u);

    const CriticalPathReport lease = run(0x26);  // kind nibble 6
    EXPECT_EQ(seg(lease.witness.totals, SegmentKind::kTimerWait), 19);
    EXPECT_EQ(seg(lease.witness.totals, SegmentKind::kRetryBackoff), 0);
    EXPECT_EQ(lease.witness.totals.total(), lease.witness.latency());
}

TEST(CriticalPath, UnanchoredTimerWithoutRootEntries) {
    // With anchor_root_deliveries off, the root delivery leaves no live
    // entry, so a later timer on that lineage self-anchors at its arming
    // tick and is counted as unanchored. The downstream delivery then
    // reports a path rooted at the arming anchor — shorter, never wrong.
    std::vector<sim::TraceRecord> rs;
    rs.push_back(rec(sim::TraceKind::kDeliver, 10, 1, 1, 0, 2, 0));
    rs.push_back(rec(sim::TraceKind::kTimer, 30, 1, 1, 0, 1, 10));
    rs.push_back(rec(sim::TraceKind::kSend, 30, 1, 2, 0, /*parent=*/1, 30));
    rs.push_back(rec(sim::TraceKind::kDeliver, 35, 2, 2, 0, /*busy=*/1, 30));
    CriticalPathConfig cfg;
    cfg.anchor_root_deliveries = false;
    const CriticalPathReport report = critical_path(rs, cfg);
    EXPECT_EQ(report.unanchored_timers, 1u);
    EXPECT_EQ(report.witness.root_start, 10);
    EXPECT_EQ(report.witness.latency(), 25);
    EXPECT_EQ(report.witness.totals.total(), 25);
}

TEST(CriticalPath, AnchorClampsAreCountedNotSmeared) {
    // A delivery claiming it was sent *after* it arrived (c > at) must
    // clamp, count, and keep the tiling exact.
    std::vector<sim::TraceRecord> rs;
    rs.push_back(rec(sim::TraceKind::kDeliver, 5, 1, 1, 0, /*busy=*/0, /*sent=*/9));
    const CriticalPathReport report = critical_path(rs);
    EXPECT_GE(report.clamped, 1u);
    EXPECT_EQ(report.witness.totals.total(), report.witness.latency());
}

// ---- witness and top-N selection ----------------------------------------

TEST(CriticalPath, WitnessTieKeepsFirstInMergeOrder) {
    std::vector<sim::TraceRecord> rs;
    rs.push_back(rec(sim::TraceKind::kDeliver, 10, 1, 1, 0, 1, 0));
    rs.push_back(rec(sim::TraceKind::kDeliver, 10, 2, 2, 0, 1, 3));
    const CriticalPathReport report = critical_path(rs);
    EXPECT_EQ(report.witness.root, 1u);  // strict > keeps the first
    EXPECT_EQ(report.witness.end, 10);
}

TEST(CriticalPath, TopNSortsByLatencyThenRootAndTruncates) {
    std::vector<sim::TraceRecord> rs;
    rs.push_back(rec(sim::TraceKind::kDeliver, 10, 1, 5, 0, 1, 0));   // latency 10
    rs.push_back(rec(sim::TraceKind::kDeliver, 30, 2, 3, 0, 1, 0));   // latency 30
    rs.push_back(rec(sim::TraceKind::kDeliver, 40, 3, 7, 0, 1, 20));  // latency 20
    CriticalPathConfig cfg;
    cfg.top = 2;
    const CriticalPathReport report = critical_path(rs, cfg);
    ASSERT_EQ(report.top.size(), 2u);
    EXPECT_EQ(report.top[0].root, 3u);
    EXPECT_EQ(report.top[0].latency(), 30);
    EXPECT_EQ(report.top[1].root, 7u);
    EXPECT_EQ(report.top[1].latency(), 20);
    EXPECT_EQ(report.roots_tracked, 3u);
    // The witness is the max-completion delivery, independent of top-N.
    EXPECT_EQ(report.witness.root, 7u);
}

TEST(CriticalPath, WitnessOnlyModeTracksNoTrees) {
    std::vector<sim::TraceRecord> rs;
    rs.push_back(rec(sim::TraceKind::kDeliver, 10, 1, 1, 0, 1, 0));
    rs.push_back(rec(sim::TraceKind::kDeliver, 30, 2, 2, 0, 1, 0));
    CriticalPathConfig cfg;
    cfg.top = 0;
    const CriticalPathReport report = critical_path(rs, cfg);
    EXPECT_TRUE(report.top.empty());
    EXPECT_EQ(report.roots_tracked, 0u);
    EXPECT_EQ(report.witness.latency(), 30);
}

// ---- bounded-memory controls --------------------------------------------

TEST(CriticalPath, HorizonPrunesStaleChainsAndCountsThem) {
    std::vector<sim::TraceRecord> rs;
    rs.push_back(rec(sim::TraceKind::kDeliver, 0, 1, 1, 0, 0, 0));
    // Far in the future: the sweep fires and evicts lineage 1's entry.
    rs.push_back(rec(sim::TraceKind::kDeliver, 10'000, 2, 2, 0, 0, 9'990));
    rs.push_back(rec(sim::TraceKind::kTimer, 10'050, 1, 1, 0, 1, 10'040));
    CriticalPathConfig cfg;
    cfg.horizon = 100;
    const CriticalPathReport report = critical_path(rs, cfg);
    EXPECT_GE(report.live_pruned, 1u);
    EXPECT_EQ(report.unanchored_timers, 1u);  // its chain state was swept
}

TEST(CriticalPath, BlameIsExactUnderPruning) {
    // Blame is priced per record, so sweeping chain state must not change
    // it: same records, aggressive horizon vs none, identical blame.
    std::vector<sim::TraceRecord> rs;
    for (Tick t = 0; t < 20; ++t) {
        const std::uint64_t lin = static_cast<std::uint64_t>(t) + 1;
        rs.push_back(rec(sim::TraceKind::kSend, t * 500, 0, lin, 0, 0, t * 500));
        rs.push_back(
            rec(sim::TraceKind::kDeliver, t * 500 + 9, 1, lin, 0, /*busy=*/3, t * 500));
    }
    CriticalPathConfig tight;
    tight.horizon = 50;
    const CriticalPathReport pruned = critical_path(rs, tight);
    const CriticalPathReport full = critical_path(rs);
    ASSERT_EQ(pruned.node_blame.size(), full.node_blame.size());
    for (std::size_t i = 0; i < full.node_blame.size(); ++i) {
        EXPECT_EQ(pruned.node_blame[i].key, full.node_blame[i].key);
        EXPECT_EQ(pruned.node_blame[i].totals.ticks, full.node_blame[i].totals.ticks);
    }
}

TEST(CriticalPath, LiveCapSkipsAndCounts) {
    std::vector<sim::TraceRecord> rs;
    rs.push_back(rec(sim::TraceKind::kDeliver, 10, 1, 1, 0, 1, 0));  // entry for root 1
    rs.push_back(rec(sim::TraceKind::kSend, 10, 1, 2, 0, /*parent=*/1, 10));
    CriticalPathConfig cfg;
    cfg.max_live = 1;
    const CriticalPathReport report = critical_path(rs, cfg);
    EXPECT_EQ(report.live_skipped, 1u);
}

TEST(CriticalPath, BlameCapEvictsAndCounts) {
    std::vector<sim::TraceRecord> rs;
    for (NodeId u = 0; u < 8; ++u)
        rs.push_back(rec(sim::TraceKind::kDeliver, 10, u, u + 1, 0, 1, 0));
    CriticalPathConfig cfg;
    cfg.blame_capacity = 3;
    const CriticalPathReport report = critical_path(rs, cfg);
    EXPECT_EQ(report.node_blame.size(), 3u);
    EXPECT_GE(report.blame_evicted, 5u);
}

// ---- audit bridge and stats folding -------------------------------------

TEST(CriticalPath, ToPathStatsFoldsReportCounters) {
    std::vector<sim::TraceRecord> rs;
    rs.push_back(rec(sim::TraceKind::kDeliver, 10, 1, 1, 0, 2, 0));
    rs.push_back(rec(sim::TraceKind::kTimer, 30, 1, 1, 0x25, 1, 10));
    const CriticalPathReport report = critical_path(rs);
    const cost::CriticalPathStats stats = to_path_stats(report);
    EXPECT_TRUE(stats.computed);
    EXPECT_EQ(stats.witness.end, report.witness.end);
    EXPECT_EQ(stats.witness.segments, report.witness.totals.ticks);
    EXPECT_EQ(stats.witness.segment_sum(), stats.witness.latency());
    EXPECT_EQ(stats.deliveries, report.deliveries);
    EXPECT_EQ(stats.top.size(), report.top.size());
}

TEST(CriticalPath, BoundAuditPassesWithinBoundAndTripsBeyond) {
    std::vector<sim::TraceRecord> rs;
    rs.push_back(rec(sim::TraceKind::kDeliver, 25, 1, 1, 0, 2, 0));
    const cost::CriticalPathStats stats = to_path_stats(critical_path(rs));

    BoundAudit ok("cp");
    ok.critical_path(stats, 25.0);
    EXPECT_TRUE(ok.pass());

    BoundAudit trip("cp");
    trip.critical_path(stats, 24.0);
    EXPECT_FALSE(trip.pass());
    EXPECT_EQ(trip.violation_count(), 1u);
}

// ---- latency SLO monitor ------------------------------------------------

MonitorEvent mev(MonitorEvent::Kind kind, Tick at, NodeId node, std::uint64_t lineage,
                 std::uint64_t b) {
    MonitorEvent e;
    e.kind = kind;
    e.at = at;
    e.node = node;
    e.lineage = lineage;
    e.b = b;
    return e;
}

TEST(CriticalPath, LatencySloMonitorFiresOnCeilingBreach) {
    MonitorHub hub;
    hub.add(std::make_unique<LatencySloMonitor>(50));
    sim::Trace trace(16);
    hub.attach_trace(&trace);

    // Root chain 10 -> 11: the root start (t=0) propagates through the
    // child send, so the t=100 delivery is a 100-tick path.
    hub.dispatch(mev(MonitorEvent::Kind::kSend, 0, 0, 10, /*parent=*/0));
    hub.dispatch(mev(MonitorEvent::Kind::kSend, 5, 1, 11, /*parent=*/10));
    hub.dispatch(mev(MonitorEvent::Kind::kDeliver, 100, 2, 11, /*injected=*/5));
    EXPECT_EQ(hub.violation_count(), 1u);
    EXPECT_FALSE(hub.ok());
    const auto records = trace.snapshot();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].kind, sim::TraceKind::kViolation);
    EXPECT_EQ(records[0].detail.rfind("latency_slo: ", 0), 0u) << records[0].detail;
}

TEST(CriticalPath, LatencySloMonitorStaysCleanUnderCeilingAndFallsBack) {
    MonitorHub hub;
    hub.add(std::make_unique<LatencySloMonitor>(50));
    hub.dispatch(mev(MonitorEvent::Kind::kSend, 0, 0, 10, 0));
    hub.dispatch(mev(MonitorEvent::Kind::kDeliver, 40, 1, 10, 0));
    // Unseen chain: falls back to the delivery's own injection tick
    // (one-leg latency 10), not a spurious whole-run latency.
    hub.dispatch(mev(MonitorEvent::Kind::kDeliver, 100, 1, 99, /*injected=*/90));
    EXPECT_TRUE(hub.ok());
}

// ---- spill satellites: duplication and multi-directory inputs -----------

/// A small sharded paris call scenario with link-layer duplication,
/// traced to a spill directory (one file per shard) and resident in
/// parallel for reference.
struct DupRun {
    std::vector<sim::TraceRecord> records;
    std::vector<std::string> spill_paths;
};

DupRun run_dup_scenario(const std::string& spill_dir) {
    Rng shape(1234);
    auto g = std::make_shared<graph::Graph>(graph::make_random_connected(10, 2, 4, shape));

    paris::CallAgentOptions aopt;
    aopt.setup_timeout = 24;
    aopt.max_retries = 2;
    aopt.retry_backoff = 8;
    aopt.workload.arrivals = paris::ArrivalProcess::kPoisson;
    aopt.workload.mean_interarrival = 40;
    aopt.workload.mean_hold = 60;
    aopt.workload.first_at = 5;
    aopt.workload.until = 300;

    node::ParallelClusterConfig cfg;
    cfg.params.hop_delay = 2;
    cfg.params.ncu_delay = 2;
    cfg.seed = 99;
    cfg.shards = 2;
    cfg.threads = 1;
    cfg.net.dup_ppm = 80'000;  // the satellite under test: duplicate copies
    if (spill_dir.empty()) {
        cfg.trace_capacity = std::size_t{1} << 18;
        cfg.trace_detail_capacity = std::size_t{1} << 18;
    } else {
        cfg.trace_capacity = 256;
        cfg.trace_detail_capacity = 4096;
        cfg.trace_spill_dir = spill_dir;
        cfg.trace_budget_bytes = 16 * 1024;
    }
    node::ParallelCluster cluster(*g, paris::make_call_workload(g, aopt), cfg);
    cluster.start_all(0);
    cluster.run();

    DupRun out;
    if (spill_dir.empty()) {
        out.records = cluster.merged_trace();
    } else {
        std::string error;
        out.spill_paths = sim::spill_files(spill_dir, &error);
    }
    return out;
}

TEST(CriticalPath, LineageIndexAncestryUnderDuplication) {
    const std::string dir = "test_cp_dup.spill";
    std::filesystem::remove_all(dir);
    const DupRun resident = run_dup_scenario("");
    const DupRun spilled = run_dup_scenario(dir);
    ASSERT_EQ(spilled.spill_paths.size(), 2u);

    LineageIndex idx;
    std::string error;
    ASSERT_TRUE(idx.build(spilled.spill_paths, &error)) << error;
    ASSERT_GT(idx.size(), 0u);

    // Duplicated copies re-deliver existing lineages but never mint new
    // kSend records, so the index must still agree with the in-memory
    // ancestry walk for every lineage in the run.
    unsigned checked = 0;
    for (const sim::TraceRecord& r : resident.records) {
        if (r.kind != sim::TraceKind::kSend || checked >= 300) continue;
        ++checked;
        EXPECT_EQ(idx.ancestry(r.lineage), lineage_ancestry(resident.records, r.lineage))
            << "lineage " << r.lineage;
    }
    ASSERT_GT(checked, 0u);
    std::filesystem::remove_all(dir);
}

TEST(CriticalPath, MultiDirectorySpillInputsMergeLikeOneDirectory) {
    const std::string dir = "test_cp_multi.spill";
    const std::string dir_a = dir + "/a";
    const std::string dir_b = dir + "/b";
    std::filesystem::remove_all(dir);
    const DupRun spilled = run_dup_scenario(dir + "/all");
    ASSERT_EQ(spilled.spill_paths.size(), 2u);

    // Split the per-shard files across two directories — the operator
    // handing fastnet_trace several spill locations of one run.
    std::filesystem::create_directories(dir_a);
    std::filesystem::create_directories(dir_b);
    std::filesystem::copy_file(spilled.spill_paths[0],
                               dir_a + "/shard0.fnspill");
    std::filesystem::copy_file(spilled.spill_paths[1],
                               dir_b + "/shard1.fnspill");
    std::string error;
    std::vector<std::string> multi = sim::spill_files(dir_a, &error);
    const std::vector<std::string> b = sim::spill_files(dir_b, &error);
    multi.insert(multi.end(), b.begin(), b.end());
    ASSERT_EQ(multi.size(), 2u);

    // Index, attribution and chain collection must all be invariant to
    // how the same files are spread over directories.
    LineageIndex one, two;
    ASSERT_TRUE(one.build(spilled.spill_paths, &error)) << error;
    ASSERT_TRUE(two.build(multi, &error)) << error;
    ASSERT_EQ(one.size(), two.size());

    CriticalPathReport r_one, r_two;
    ASSERT_TRUE(spill_critical_path(spilled.spill_paths, {}, r_one, &error)) << error;
    ASSERT_TRUE(spill_critical_path(multi, {}, r_two, &error)) << error;
    EXPECT_EQ(format_critical_path(r_one), format_critical_path(r_two));
    ASSERT_TRUE(r_one.has_witness);

    std::vector<sim::TraceRecord> chain_one, chain_two;
    ASSERT_TRUE(spill_chain_records(spilled.spill_paths, one, r_one.witness.terminal,
                                    chain_one, &error))
        << error;
    ASSERT_TRUE(spill_chain_records(multi, two, r_two.witness.terminal, chain_two, &error))
        << error;
    ASSERT_FALSE(chain_one.empty());
    ASSERT_EQ(chain_one.size(), chain_two.size());
    for (std::size_t i = 0; i < chain_one.size(); ++i) {
        EXPECT_EQ(chain_one[i].at, chain_two[i].at);
        EXPECT_EQ(chain_one[i].lineage, chain_two[i].lineage);
    }

    // The witness chain supports an exact backward waterfall: segments
    // tile [root_start, end] with no gaps.
    const PathWaterfall wf = path_waterfall(chain_one, r_one.witness);
    ASSERT_FALSE(wf.segments.empty());
    Tick covered = 0;
    for (const PathSegment& s : wf.segments) covered += s.end - s.start;
    if (wf.elided == 0) {
        EXPECT_EQ(covered, r_one.witness.latency());
    }
    std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fastnet::obs
