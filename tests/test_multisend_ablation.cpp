// Unit-level tests of the A1 ablation semantics: with free_multisend
// off, the i-th send of a handler leaves i*P later and the NCU stays
// busy until the last one has left.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "node/cluster.hpp"

namespace fastnet::node {
namespace {

struct Note final : hw::TypedPayload<Note> {
    explicit Note(int v) : value(v) {}
    int value;
};

class FanOut : public Protocol {
public:
    explicit FanOut(int count) : count_(count) {}
    void on_start(Context& ctx) override {
        for (int i = 0; i < count_; ++i) {
            hw::AnrHeader h{hw::AnrLabel::normal(ctx.links()[0].port),
                            hw::AnrLabel::normal(hw::kNcuPort)};
            ctx.send(std::move(h), std::make_shared<Note>(i));
        }
    }

private:
    int count_;
};

class Sink : public Protocol {
public:
    void on_message(Context& ctx, const hw::Delivery& d) override {
        arrivals.emplace_back(ctx.now(), hw::payload_as<Note>(d)->value);
    }
    std::vector<std::pair<Tick, int>> arrivals;
};

ProtocolFactory fan_factory(int count) {
    return [count](NodeId u) -> std::unique_ptr<Protocol> {
        if (u == 0) return std::make_unique<FanOut>(count);
        return std::make_unique<Sink>();
    };
}

TEST(MultisendAblation, SerializedSendsLeaveStaggered) {
    ClusterConfig cfg;
    cfg.free_multisend = false;
    Cluster c(graph::make_path(2), fan_factory(4), cfg);
    c.start(0, 0);
    c.run();
    auto& sink = c.protocol_as<Sink>(1);
    ASSERT_EQ(sink.arrivals.size(), 4u);
    // Handler completes at 1; sends leave at 1, 2, 3, 4 (C=0); the sink
    // serializes processing on top: completion times 2, 3, 4, 5.
    EXPECT_EQ(sink.arrivals[0].first, 2);
    EXPECT_EQ(sink.arrivals[1].first, 3);
    EXPECT_EQ(sink.arrivals[2].first, 4);
    EXPECT_EQ(sink.arrivals[3].first, 5);
    // FIFO order of values preserved.
    for (int i = 0; i < 4; ++i) EXPECT_EQ(sink.arrivals[i].second, i);
}

TEST(MultisendAblation, FreeModeAllLeaveTogether) {
    Cluster c(graph::make_path(2), fan_factory(4));
    c.start(0, 0);
    c.run();
    auto& sink = c.protocol_as<Sink>(1);
    ASSERT_EQ(sink.arrivals.size(), 4u);
    // All arrive at t=1; the sink's serial NCU spreads completions.
    EXPECT_EQ(sink.arrivals[0].first, 2);
    EXPECT_EQ(sink.arrivals[3].first, 5);
    // The *sender* worked once either way.
    EXPECT_EQ(c.metrics().node(0).invocations(), 1u);
}

TEST(MultisendAblation, SerializedSenderStaysBusy) {
    // With sends serialized, a second work item at the sender must wait
    // for the send train to finish.
    ClusterConfig cfg;
    cfg.free_multisend = false;
    Cluster c(graph::make_path(2), fan_factory(5), cfg);
    c.start(0, 0);   // handler at 1, sends until 1 + 4*P = 5
    c.start(0, 2);   // queued behind the busy NCU
    c.run();
    // Second start processes only after the extra busy window: its
    // handler completes at 5 + P = 6 (it sends 5 more, last at 10).
    auto& sink = c.protocol_as<Sink>(1);
    ASSERT_EQ(sink.arrivals.size(), 10u);
    EXPECT_GE(sink.arrivals[5].first, 6);
    EXPECT_EQ(c.metrics().node(0).busy_time, 2 + 2 * 4);  // 2 starts + 2 trains
}

TEST(MultisendAblation, SingleSendCostsNothingExtra) {
    ClusterConfig cfg;
    cfg.free_multisend = false;
    Cluster c(graph::make_path(2), fan_factory(1), cfg);
    c.start(0, 0);
    c.run();
    EXPECT_EQ(c.metrics().node(0).busy_time, 1);
    auto& sink = c.protocol_as<Sink>(1);
    ASSERT_EQ(sink.arrivals.size(), 1u);
    EXPECT_EQ(sink.arrivals[0].first, 2);
}

}  // namespace
}  // namespace fastnet::node
