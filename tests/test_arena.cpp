// Tests for the scale-oriented storage primitives behind the arena/SoA
// node-state refactor: util::Arena (bump allocation, O(1) reset with
// chunk reuse, stable addresses), util::RingQueue (the deque replacement
// for NCU work queues) and util::FlatMap64 (the monitors' compact
// ledger). These are the structures a million-node cluster stands on;
// docs/PERF.md "Memory at scale" explains why each exists.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <set>
#include <vector>

#include "common/expect.hpp"
#include "util/arena.hpp"
#include "util/flat_map.hpp"
#include "util/ring_queue.hpp"

namespace fastnet::util {
namespace {

// ---- Arena ---------------------------------------------------------------

TEST(Arena, HandsOutDisjointWritableMemory) {
    Arena a;
    auto* x = a.allocate_uninitialized<std::uint64_t>(16);
    auto* y = a.allocate_uninitialized<std::uint64_t>(16);
    for (int i = 0; i < 16; ++i) x[i] = 100 + i;
    for (int i = 0; i < 16; ++i) y[i] = 200 + i;
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(x[i], 100u + i);
        EXPECT_EQ(y[i], 200u + i);
    }
    EXPECT_GE(a.bytes_used(), 32 * sizeof(std::uint64_t));
    EXPECT_GE(a.bytes_reserved(), a.bytes_used());
}

TEST(Arena, RespectsAlignmentRequests) {
    Arena a;
    for (std::size_t align : {1ul, 2ul, 4ul, 8ul, alignof(std::max_align_t)}) {
        a.allocate(1, 1);  // misalign the cursor
        void* p = a.allocate(8, align);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u) << align;
    }
}

TEST(Arena, RejectsBadAlignment) {
    Arena a;
    EXPECT_THROW(a.allocate(8, 3), fastnet::ContractViolation);
    EXPECT_THROW(a.allocate(8, 0), fastnet::ContractViolation);
    EXPECT_THROW(a.allocate(8, alignof(std::max_align_t) * 2),
                 fastnet::ContractViolation);
}

TEST(Arena, AddressesAreStableAcrossFurtherAllocation) {
    // Chunks never move: growth adds chunks instead of reallocating, so
    // earlier objects keep their addresses (what lets runtimes hold raw
    // pointers into the arena for the cluster's lifetime).
    Arena a(64);  // tiny chunks force many chunk transitions
    std::vector<std::uint32_t*> ptrs;
    for (std::uint32_t i = 0; i < 1000; ++i) {
        auto* p = a.allocate_uninitialized<std::uint32_t>(1);
        *p = i;
        ptrs.push_back(p);
    }
    EXPECT_GT(a.chunk_count(), 1u);
    for (std::uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(*ptrs[i], i);
}

TEST(Arena, IndexStabilityOfContiguousArrays) {
    // One allocation = one contiguous block: 32-bit indices into it are
    // stable however much else is allocated afterwards.
    Arena a;
    auto* block = a.allocate_uninitialized<std::uint64_t>(4096);
    for (std::uint32_t i = 0; i < 4096; ++i) block[i] = i;
    a.allocate(1 << 19);  // unrelated pressure
    a.allocate(1 << 19);
    for (std::uint32_t i = 0; i < 4096; ++i) EXPECT_EQ(block[i], i);
}

TEST(Arena, OversizeAllocationGetsDedicatedChunk) {
    Arena a(64);
    void* p = a.allocate(10000);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xab, 10000);
    EXPECT_GE(a.bytes_used(), 10000u);
    EXPECT_GE(a.bytes_reserved(), 10000u);
}

TEST(Arena, ResetRetainsChunksAndReusesThem) {
    Arena a(256);
    for (int i = 0; i < 100; ++i) a.allocate(64);
    const std::size_t reserved = a.bytes_reserved();
    const std::size_t chunks = a.chunk_count();
    EXPECT_GT(chunks, 1u);

    a.reset();
    EXPECT_EQ(a.bytes_used(), 0u);
    EXPECT_EQ(a.bytes_reserved(), reserved);

    // A warm rebuild of the same shape must not grow the reservation.
    for (int i = 0; i < 100; ++i) a.allocate(64);
    EXPECT_EQ(a.bytes_reserved(), reserved);
    EXPECT_EQ(a.chunk_count(), chunks);
}

TEST(Arena, ZeroSizeAllocationYieldsDistinctAddresses) {
    Arena a;
    void* p = a.allocate(0);
    void* q = a.allocate(0);
    EXPECT_NE(p, q);
}

// ---- RingQueue -----------------------------------------------------------

TEST(RingQueue, EmptyQueueOwnsNoMemory) {
    RingQueue<std::uint64_t> q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.capacity(), 0u);
    EXPECT_EQ(q.memory_bytes(), 0u);
}

TEST(RingQueue, PreservesFifoOrderAcrossGrowthAndWraparound) {
    RingQueue<int> q;
    int next_push = 0, next_pop = 0;
    // Interleaved push/pop drives head_ around the buffer while the
    // queue repeatedly doubles — both the wrap and the relocation paths.
    for (int round = 0; round < 200; ++round) {
        for (int i = 0; i < 3; ++i) q.push_back(next_push++);
        for (int i = 0; i < 2 && !q.empty(); ++i) {
            ASSERT_EQ(q.front(), next_pop);
            q.pop_front();
            ++next_pop;
        }
    }
    while (!q.empty()) {
        ASSERT_EQ(q.front(), next_pop++);
        q.pop_front();
    }
    EXPECT_EQ(next_pop, next_push);
}

TEST(RingQueue, RunsNonTrivialDestructors) {
    auto counter = std::make_shared<int>(0);
    struct Probe {
        std::shared_ptr<int> c;
        ~Probe() {
            if (c) ++*c;
        }
        Probe(std::shared_ptr<int> p) : c(std::move(p)) {}
        Probe(Probe&& o) = default;
    };
    {
        RingQueue<Probe> q;
        for (int i = 0; i < 10; ++i) q.push_back(Probe(counter));
        q.pop_front();
        q.pop_front();
        EXPECT_EQ(*counter, 2);
        q.clear();
        EXPECT_EQ(*counter, 10);
        for (int i = 0; i < 3; ++i) q.push_back(Probe(counter));
    }  // dtor destroys the remaining 3
    EXPECT_EQ(*counter, 13);
}

TEST(RingQueue, FrontAndPopOnEmptyAreContractViolations) {
    RingQueue<int> q;
    EXPECT_THROW(q.front(), fastnet::ContractViolation);
    EXPECT_THROW(q.pop_front(), fastnet::ContractViolation);
}

TEST(RingQueue, ClearKeepsBufferForReuse) {
    RingQueue<int> q;
    for (int i = 0; i < 100; ++i) q.push_back(i);
    const std::size_t cap = q.capacity();
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.capacity(), cap);
}

// ---- FlatMap64 -----------------------------------------------------------

TEST(FlatMap64, InsertFindRoundTrip) {
    FlatMap64<std::uint64_t> m;
    for (std::uint64_t k = 0; k < 1000; ++k) m[k * 0x10001] = k;
    EXPECT_EQ(m.size(), 1000u);
    for (std::uint64_t k = 0; k < 1000; ++k) {
        auto* v = m.find(k * 0x10001);
        ASSERT_NE(v, nullptr) << k;
        EXPECT_EQ(*v, k);
    }
    EXPECT_EQ(m.find(0xdeadbeefULL), nullptr);
}

TEST(FlatMap64, KeyZeroIsAnOrdinaryKey) {
    FlatMap64<int> m;
    EXPECT_EQ(m.find(0), nullptr);
    m[0] = 42;
    ASSERT_NE(m.find(0), nullptr);
    EXPECT_EQ(*m.find(0), 42);
}

TEST(FlatMap64, EraseRemovesOnlyTheRequestedKey) {
    FlatMap64<std::uint64_t> m;
    for (std::uint64_t k = 0; k < 500; ++k) m[k * 0x10001] = k;
    EXPECT_FALSE(m.erase(0xdeadbeefULL));
    EXPECT_EQ(m.size(), 500u);
    for (std::uint64_t k = 0; k < 500; k += 3) EXPECT_TRUE(m.erase(k * 0x10001));
    for (std::uint64_t k = 0; k < 500; ++k) {
        auto* v = m.find(k * 0x10001);
        if (k % 3 == 0) {
            EXPECT_EQ(v, nullptr) << k;
        } else {
            ASSERT_NE(v, nullptr) << k;
            EXPECT_EQ(*v, k);
        }
    }
    EXPECT_EQ(m.size(), 500u - 167u);
}

TEST(FlatMap64, EraseBackwardShiftKeepsProbeRunsReachable) {
    // Backward-shift deletion must never strand an entry behind a hole
    // in its probe run. Churn insert/erase through a pseudo-random
    // schedule and audit the survivors against a reference set — any
    // probe-run corruption shows up as a key find() can no longer reach.
    FlatMap64<std::uint64_t> m;
    std::set<std::uint64_t> ref;
    std::uint64_t x = 88172645463325252ULL;
    auto next = [&x] {  // xorshift64: dense keys stress collision runs
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x % 4096;
    };
    for (int round = 0; round < 20000; ++round) {
        const std::uint64_t k = next();
        if (ref.count(k)) {
            EXPECT_TRUE(m.erase(k)) << k;
            ref.erase(k);
        } else {
            m[k] = k ^ 0xabcdULL;
            ref.insert(k);
        }
    }
    EXPECT_EQ(m.size(), ref.size());
    for (const std::uint64_t k : ref) {
        auto* v = m.find(k);
        ASSERT_NE(v, nullptr) << k;
        EXPECT_EQ(*v, k ^ 0xabcdULL);
    }
    std::size_t occupied = 0;
    for (const auto& e : m.raw_entries())
        if (e.occupied) {
            ++occupied;
            EXPECT_TRUE(ref.count(e.key)) << e.key;
        }
    EXPECT_EQ(occupied, ref.size());
}

TEST(FlatMap64, EraseToEmptyThenReuse) {
    FlatMap64<int> m;
    for (std::uint64_t k = 0; k < 32; ++k) m[k] = static_cast<int>(k);
    for (std::uint64_t k = 0; k < 32; ++k) EXPECT_TRUE(m.erase(k));
    EXPECT_TRUE(m.empty());
    EXPECT_FALSE(m.erase(7));
    m[7] = 99;
    ASSERT_NE(m.find(7), nullptr);
    EXPECT_EQ(*m.find(7), 99);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap64, RawEntriesExposeExactlyTheOccupiedSet) {
    FlatMap64<std::uint64_t> m;
    std::set<std::uint64_t> keys;
    for (std::uint64_t k = 1; k <= 64; ++k) {
        m[k * k] = k;
        keys.insert(k * k);
    }
    std::set<std::uint64_t> seen;
    for (const auto& e : m.raw_entries())
        if (e.occupied) seen.insert(e.key);
    EXPECT_EQ(seen, keys);
}

}  // namespace
}  // namespace fastnet::util
