// Final stress sweeps: the paper's correctness claims under the full
// adversarial envelope — randomized hardware and software delays,
// randomized start patterns, randomized (healed) link churn — across a
// grid of topologies and seeds.
//
// The grids run through the parallel experiment engine (exec::sweep_map /
// exec::SweepRunner) at hardware_concurrency workers, and every grid is
// additionally executed serially and compared row-by-row: the stress
// sweep doubles as an end-to-end determinism check of the engine on real
// protocol workloads (ISSUE 2's headline requirement).
#include <gtest/gtest.h>

#include "election/election.hpp"
#include "exec/result.hpp"
#include "exec/sweep_runner.hpp"
#include "graph/generators.hpp"
#include "node/scenario.hpp"
#include "topo/topology_maintenance.hpp"

namespace fastnet {
namespace {

enum class Shape { kRing, kGrid, kRandom, kTree, kHypercube };

const char* shape_name(Shape s) {
    switch (s) {
        case Shape::kRing: return "ring";
        case Shape::kGrid: return "grid";
        case Shape::kRandom: return "random";
        case Shape::kTree: return "tree";
        case Shape::kHypercube: return "hypercube";
    }
    return "?";
}

graph::Graph make_shape(Shape s, std::uint64_t seed) {
    Rng rng(seed);
    switch (s) {
        case Shape::kRing: return graph::make_cycle(32);
        case Shape::kGrid: return graph::make_grid(6, 6);
        case Shape::kRandom: return graph::make_random_connected(40, 2, 10, rng);
        case Shape::kTree: return graph::make_random_tree(40, rng);
        case Shape::kHypercube: return graph::make_hypercube(5);
    }
    return graph::make_path(2);
}

// ---- election envelope --------------------------------------------------

struct ElectionPoint {
    Shape shape;
    std::uint64_t seed;
};

struct ElectionRow {
    bool unique_leader = false;
    bool all_decided = false;
    std::uint64_t election_messages = 0;
    std::uint64_t n = 0;
    Tick completion = 0;
};

ElectionRow run_election_point(const ElectionPoint& p) {
    const graph::Graph g = make_shape(p.shape, p.seed);
    node::ClusterConfig cfg;
    cfg.params.hop_delay = 6;   // C jittered in [0, 6]
    cfg.params.ncu_delay = 4;   // P jittered in [1, 4]
    cfg.net.hop_delay_min = 0;
    cfg.ncu_delay_min = 1;
    cfg.seed = p.seed * 1337 + 1;
    // Random initiator subset with staggered starts.
    Rng rng(p.seed + 5);
    std::vector<NodeId> initiators;
    for (NodeId u = 0; u < g.node_count(); ++u)
        if (rng.chance(1, 4)) initiators.push_back(u);
    if (initiators.empty()) initiators.push_back(0);
    const auto out = elect::run_election(g, {}, initiators, cfg, /*stagger=*/11);
    ElectionRow row;
    row.unique_leader = out.unique_leader;
    row.all_decided = out.all_decided;
    row.election_messages = out.election_messages;
    row.n = g.node_count();
    row.completion = out.cost.completion_time;
    return row;
}

TEST(StressSweeps, ElectionEnvelopeOneLeaderUnderFullJitter) {
    std::vector<ElectionPoint> grid;
    for (Shape s : {Shape::kRing, Shape::kGrid, Shape::kRandom, Shape::kTree,
                    Shape::kHypercube})
        for (std::uint64_t seed : {1ull, 2ull, 3ull}) grid.push_back({s, seed});

    exec::SweepOptions wide;
    wide.threads = 0;  // hardware_concurrency
    const auto rows = exec::sweep_map(
        grid, [](const ElectionPoint& p, exec::TaskContext&) { return run_election_point(p); },
        wide);

    ASSERT_EQ(rows.size(), grid.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        SCOPED_TRACE(std::string(shape_name(grid[i].shape)) + "/seed" +
                     std::to_string(grid[i].seed));
        EXPECT_TRUE(rows[i].unique_leader);
        EXPECT_TRUE(rows[i].all_decided);
        // The 6n bound is a worst-case count: it holds under jitter too.
        EXPECT_LE(rows[i].election_messages, 6ull * rows[i].n);
    }

    // The parallel rows must equal the serial rows, field for field.
    exec::SweepOptions serial;
    serial.threads = 1;
    const auto serial_rows = exec::sweep_map(
        grid, [](const ElectionPoint& p, exec::TaskContext&) { return run_election_point(p); },
        serial);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].election_messages, serial_rows[i].election_messages);
        EXPECT_EQ(rows[i].completion, serial_rows[i].completion);
    }
}

// ---- maintenance envelope -----------------------------------------------

exec::SweepRunner make_maintenance_envelope(unsigned threads) {
    exec::SweepOptions opt;
    opt.threads = threads;
    opt.master_seed = 4242;
    exec::SweepRunner runner(opt);
    for (Shape shape : {Shape::kRing, Shape::kGrid, Shape::kRandom, Shape::kHypercube}) {
        for (std::uint64_t seed : {4ull, 5ull}) {
            const graph::Graph g = make_shape(shape, seed);
            topo::TopologyOptions topo_opt;
            topo_opt.rounds = 50;
            topo_opt.period = 60;
            node::ClusterConfig cfg;
            cfg.params.hop_delay = 3;
            cfg.params.ncu_delay = 2;
            cfg.net.hop_delay_min = 0;
            cfg.ncu_delay_min = 1;
            cfg.seed = seed * 99 + 7;
            Rng chaos(seed * 31 + 3);
            node::Scenario s = node::Scenario::random_churn(g, 15, 50, 900, chaos);
            s.heal_all(1000);

            exec::ClusterCase c;
            c.name = std::string(shape_name(shape)) + "/seed" + std::to_string(seed);
            c.graph = g;
            c.protocol = topo::make_topology_maintenance(g.node_count(), topo_opt);
            c.config = cfg;
            c.scenario = std::move(s);
            // Keep the historical pinned seeds: this sweep reproduces the
            // exact pre-engine runs, jitter and all.
            c.derive_seed = false;
            c.probe = [](node::Cluster& cluster, exec::CaseResult& r) {
                r.ok = topo::all_views_converged(cluster);
            };
            runner.add(std::move(c));
        }
    }
    return runner;
}

TEST(StressSweeps, MaintenanceEnvelopeConvergesAfterHealedChurnUnderJitter) {
    const auto rows = make_maintenance_envelope(0).run();
    ASSERT_EQ(rows.size(), 8u);
    for (const auto& r : rows) {
        SCOPED_TRACE(r.name);
        EXPECT_TRUE(r.ok);
    }
    // Serial/parallel agreement, down to the serialized bytes.
    const auto serial_rows = make_maintenance_envelope(1).run();
    EXPECT_EQ(exec::sweep_json("maintenance_envelope", 4242, rows),
              exec::sweep_json("maintenance_envelope", 4242, serial_rows));
}

}  // namespace
}  // namespace fastnet
