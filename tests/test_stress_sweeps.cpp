// Final stress sweeps: the paper's correctness claims under the full
// adversarial envelope — randomized hardware and software delays,
// randomized start patterns, randomized (healed) link churn — across a
// grid of topologies and seeds.
#include <gtest/gtest.h>

#include "election/election.hpp"
#include "graph/generators.hpp"
#include "node/scenario.hpp"
#include "topo/topology_maintenance.hpp"

namespace fastnet {
namespace {

enum class Shape { kRing, kGrid, kRandom, kTree, kHypercube };

graph::Graph make_shape(Shape s, std::uint64_t seed) {
    Rng rng(seed);
    switch (s) {
        case Shape::kRing: return graph::make_cycle(32);
        case Shape::kGrid: return graph::make_grid(6, 6);
        case Shape::kRandom: return graph::make_random_connected(40, 2, 10, rng);
        case Shape::kTree: return graph::make_random_tree(40, rng);
        case Shape::kHypercube: return graph::make_hypercube(5);
    }
    return graph::make_path(2);
}

class ElectionEnvelope
    : public ::testing::TestWithParam<std::tuple<Shape, std::uint64_t>> {};

TEST_P(ElectionEnvelope, OneLeaderUnderFullJitter) {
    const auto [shape, seed] = GetParam();
    const graph::Graph g = make_shape(shape, seed);
    node::ClusterConfig cfg;
    cfg.params.hop_delay = 6;   // C jittered in [0, 6]
    cfg.params.ncu_delay = 4;   // P jittered in [1, 4]
    cfg.net.hop_delay_min = 0;
    cfg.ncu_delay_min = 1;
    cfg.seed = seed * 1337 + 1;
    // Random initiator subset with staggered starts.
    Rng rng(seed + 5);
    std::vector<NodeId> initiators;
    for (NodeId u = 0; u < g.node_count(); ++u)
        if (rng.chance(1, 4)) initiators.push_back(u);
    if (initiators.empty()) initiators.push_back(0);
    const auto out = elect::run_election(g, {}, initiators, cfg, /*stagger=*/11);
    EXPECT_TRUE(out.unique_leader);
    EXPECT_TRUE(out.all_decided);
    // The 6n bound is a worst-case count: it holds under jitter too.
    EXPECT_LE(out.election_messages, 6ull * g.node_count());
}

INSTANTIATE_TEST_SUITE_P(
    Envelope, ElectionEnvelope,
    ::testing::Combine(::testing::Values(Shape::kRing, Shape::kGrid, Shape::kRandom,
                                         Shape::kTree, Shape::kHypercube),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

class MaintenanceEnvelope
    : public ::testing::TestWithParam<std::tuple<Shape, std::uint64_t>> {};

TEST_P(MaintenanceEnvelope, ConvergesAfterHealedChurnUnderJitter) {
    const auto [shape, seed] = GetParam();
    const graph::Graph g = make_shape(shape, seed);
    topo::TopologyOptions opt;
    opt.rounds = 50;
    opt.period = 60;
    node::ClusterConfig cfg;
    cfg.params.hop_delay = 3;
    cfg.params.ncu_delay = 2;
    cfg.net.hop_delay_min = 0;
    cfg.ncu_delay_min = 1;
    cfg.seed = seed * 99 + 7;
    node::Cluster c(g, topo::make_topology_maintenance(g.node_count(), opt), cfg);
    c.start_all(0);
    Rng chaos(seed * 31 + 3);
    node::Scenario s = node::Scenario::random_churn(g, 15, 50, 900, chaos);
    s.heal_all(1000);
    s.apply(c);
    c.run();
    EXPECT_TRUE(topo::all_views_converged(c));
}

INSTANTIATE_TEST_SUITE_P(
    Envelope, MaintenanceEnvelope,
    ::testing::Combine(::testing::Values(Shape::kRing, Shape::kGrid, Shape::kRandom,
                                         Shape::kHypercube),
                       ::testing::Values<std::uint64_t>(4, 5)));

}  // namespace
}  // namespace fastnet
