// Broadcast behaviour under link failures: Lemma 2 (one-way prefix
// delivery) for branching paths versus total loss for the DFS token.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "node/cluster.hpp"
#include "topo/broadcast_protocols.hpp"

namespace fastnet::topo {
namespace {

using graph::Graph;

/// Runs a broadcast over `g` from `origin` with `dead` edges failed
/// before the start.
BroadcastOutcome run_with_failures(const Graph& g, BroadcastScheme scheme, NodeId origin,
                                   const std::vector<EdgeId>& dead) {
    node::Cluster cluster(g, [&g, scheme](NodeId) {
        return std::make_unique<BroadcastProtocol>(g, scheme);
    });
    for (EdgeId e : dead) cluster.network().fail_link(e);
    // Note: the protocol still *plans* over the full graph — the origin
    // has not yet learned of the failures, exactly the Section 3 setting.
    cluster.start(origin, 1);
    cluster.run();
    BroadcastOutcome out;
    out.received.resize(g.node_count());
    for (NodeId u = 0; u < g.node_count(); ++u)
        out.received[u] = cluster.protocol_as<BroadcastProtocol>(u).received();
    out.cost = cost::snapshot(cluster.metrics(), cluster.simulator().now());
    return out;
}

TEST(FailureBroadcast, Lemma2PrefixDelivery) {
    // Path 0-1-2-3-4-5 with edge (3,4) dead: branching paths (one path
    // here) must still reach 1, 2, 3 — every node whose route from the
    // origin is intact.
    const Graph g = graph::make_path(6);
    const auto out = run_with_failures(g, BroadcastScheme::kBranchingPaths, 0,
                                       {g.find_edge(3, 4)});
    EXPECT_TRUE(out.received[1]);
    EXPECT_TRUE(out.received[2]);
    EXPECT_TRUE(out.received[3]);
    EXPECT_FALSE(out.received[4]);
    EXPECT_FALSE(out.received[5]);
}

TEST(FailureBroadcast, BranchingPathsLosesOnlyAffectedBranch) {
    // Star: hub 0; kill one spoke. Only that leaf misses the broadcast.
    const Graph g = graph::make_star(8);
    const auto out = run_with_failures(g, BroadcastScheme::kBranchingPaths, 0,
                                       {g.find_edge(0, 3)});
    for (NodeId u = 1; u < 8; ++u) EXPECT_EQ(out.received[u], u != 3) << u;
}

TEST(FailureBroadcast, DfsTokenLosesEverythingPastTheBreak) {
    // Complete binary tree depth 2; kill the first edge the Euler tour
    // crosses after some prefix: the token dies there.
    const Graph g = graph::make_complete_binary_tree(2);
    // Tour from 0: [0,1,3,1,4,...]; kill (1,3).
    const auto out = run_with_failures(g, BroadcastScheme::kDfsToken, 0,
                                       {g.find_edge(1, 3)});
    EXPECT_TRUE(out.received[1]);   // copied at 1 before the dead hop
    EXPECT_FALSE(out.received[3]);  // unreachable anyway? no: only edge (1,3) died
    // Everything after the break in tour order is lost even though the
    // network still connects it:
    EXPECT_FALSE(out.received[4]);
    EXPECT_FALSE(out.received[2]);
    EXPECT_FALSE(out.received[5]);
    EXPECT_FALSE(out.received[6]);
}

TEST(FailureBroadcast, BranchingPathsOutlivesDfsOnSameFailure) {
    const Graph g = graph::make_complete_binary_tree(2);
    const std::vector<EdgeId> dead{g.find_edge(1, 3)};
    const auto bp = run_with_failures(g, BroadcastScheme::kBranchingPaths, 0, dead);
    const auto dfs = run_with_failures(g, BroadcastScheme::kDfsToken, 0, dead);
    std::size_t bp_cover = 0, dfs_cover = 0;
    for (NodeId u = 1; u < g.node_count(); ++u) {
        bp_cover += bp.received[u];
        dfs_cover += dfs.received[u];
    }
    // Branching paths: everything except node 3 (which is truly cut off).
    EXPECT_EQ(bp_cover, g.node_count() - 2);
    EXPECT_LT(dfs_cover, bp_cover);
}

TEST(FailureBroadcast, OneWayPropertyRandomized) {
    // Property: for any single failed tree edge, branching paths delivers
    // to every node whose tree path from the origin avoids that edge.
    for (std::uint64_t seed : {3, 14, 159}) {
        Rng rng(seed);
        const Graph g = graph::make_random_tree(24, rng);
        const graph::RootedTree t = graph::min_hop_tree(g, 0);
        const EdgeId dead = static_cast<EdgeId>(rng.below(g.edge_count()));
        const auto out = run_with_failures(g, BroadcastScheme::kBranchingPaths, 0, {dead});
        // Which nodes are separated from 0 by `dead`?
        const auto reach = graph::bfs(g, 0, [dead](EdgeId e) { return e != dead; });
        for (NodeId u = 1; u < g.node_count(); ++u) {
            const bool connected = reach.dist[u] != graph::BfsResult::kUnreached;
            EXPECT_EQ(out.received[u], connected) << "seed " << seed << " node " << u;
        }
    }
}

TEST(FailureBroadcast, MidFlightFailureWithSlowLinks) {
    // With C > 0 a failure can hit while the path message is in transit.
    const Graph g = graph::make_path(5);
    node::ClusterConfig cfg;
    cfg.params.hop_delay = 10;
    node::Cluster cluster(g, [&g](NodeId) {
        return std::make_unique<BroadcastProtocol>(g, BroadcastScheme::kBranchingPaths);
    }, cfg);
    cluster.start(0, 0);
    // The single path message leaves at t=1; it crosses edge (2,3) during
    // [21, 31). Kill it at t=25.
    cluster.simulator().at(25, [&cluster, &g] { cluster.network().fail_link(g.find_edge(2, 3)); });
    cluster.run();
    EXPECT_TRUE(cluster.protocol_as<BroadcastProtocol>(1).received());
    EXPECT_TRUE(cluster.protocol_as<BroadcastProtocol>(2).received());
    EXPECT_FALSE(cluster.protocol_as<BroadcastProtocol>(3).received());
    EXPECT_FALSE(cluster.protocol_as<BroadcastProtocol>(4).received());
}

}  // namespace
}  // namespace fastnet::topo
