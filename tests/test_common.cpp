// Tests for the common kernel: contracts, RNG determinism, integer math.
#include <gtest/gtest.h>

#include <set>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace fastnet {
namespace {

TEST(Expect, PassingCheckIsSilent) {
    EXPECT_NO_THROW(FASTNET_EXPECTS(1 + 1 == 2));
    EXPECT_NO_THROW(FASTNET_ENSURES(true));
}

TEST(Expect, FailingPreconditionThrowsContractViolation) {
    EXPECT_THROW(FASTNET_EXPECTS(false), ContractViolation);
    EXPECT_THROW(FASTNET_EXPECTS_MSG(false, "ctx"), ContractViolation);
}

TEST(Expect, MessageNamesTheExpressionAndContext) {
    try {
        FASTNET_EXPECTS_MSG(2 > 3, "my context");
        FAIL() << "should have thrown";
    } catch (const ContractViolation& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("2 > 3"), std::string::npos);
        EXPECT_NE(what.find("my context"), std::string::npos);
    }
}

TEST(Rng, SameSeedSameStream) {
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next()) ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
    Rng r(7);
    for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues) {
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) seen.insert(r.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusiveBounds) {
    Rng r(11);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= (v == -3);
        hit_hi |= (v == 3);
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, ChanceZeroAndOne) {
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0, 10));
        EXPECT_TRUE(r.chance(10, 10));
    }
}

TEST(Rng, PermutationIsAPermutation) {
    Rng r(17);
    const auto p = r.permutation(50);
    std::set<std::uint32_t> s(p.begin(), p.end());
    EXPECT_EQ(s.size(), 50u);
    EXPECT_EQ(*s.begin(), 0u);
    EXPECT_EQ(*s.rbegin(), 49u);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
    Rng a(23);
    Rng child = a.fork();
    // Child must not replay the parent stream.
    Rng a2(23);
    (void)a2.next();  // same draw the fork consumed
    EXPECT_NE(child.next(), a2.next());
}

// ---- cross-platform stream stability ------------------------------------
// xoshiro256++/splitmix64 are pure 64-bit integer recurrences, so every
// stream is bit-exact on any conforming platform. These golden values pin
// that down: a refactor that silently changes seeding, fork order
// semantics or stream derivation breaks reproducibility of every seeded
// experiment in the repo, and must show up here first.

TEST(Rng, GoldenRawStream) {
    Rng r(123);
    EXPECT_EQ(r.next(), 11913805753561946234ull);
    EXPECT_EQ(r.next(), 15461216248872658478ull);
}

TEST(Rng, GoldenPerNodeForkStreams) {
    // Cluster forks per-node streams from the master in node order; the
    // first draw of nodes 0 and 1 under master seed 42 is load-bearing
    // for every default-config simulation.
    Rng master(42);
    Rng node0 = master.fork();
    Rng node1 = master.fork();
    EXPECT_EQ(node0.next(), 11061806072122077463ull);
    EXPECT_EQ(node1.next(), 11103674674314088501ull);
}

TEST(Rng, GoldenTaskStreams) {
    Rng s0 = Rng::stream(42, 0);
    EXPECT_EQ(s0.next(), 1173605832601359775ull);
    EXPECT_EQ(s0.next(), 2577965015408705928ull);
    EXPECT_EQ(Rng::stream(42, 1).next(), 5912107648147866747ull);
    EXPECT_EQ(Rng::stream(7, 0).next(), 15877132756158354588ull);
}

TEST(Rng, StreamIsIndependentOfDerivationOrder) {
    // stream() is a pure function: deriving other streams first (in any
    // order, from any thread) cannot change what stream k yields —
    // unlike fork(), which consumes parent draws.
    std::vector<std::uint64_t> forward, backward;
    for (int k = 0; k < 8; ++k) forward.push_back(Rng::stream(99, k).next());
    for (int k = 7; k >= 0; --k)
        backward.insert(backward.begin(), Rng::stream(99, k).next());
    EXPECT_EQ(forward, backward);
    std::set<std::uint64_t> unique(forward.begin(), forward.end());
    EXPECT_EQ(unique.size(), forward.size());
}

TEST(Rng, StreamsDecorrelatedAcrossMasterSeeds) {
    // Task index k under different master seeds must not collide (the
    // classic seed+k pitfall the derivation avoids).
    std::set<std::uint64_t> seen;
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull})
        for (std::uint64_t k = 0; k < 16; ++k) seen.insert(Rng::stream(seed, k).next());
    EXPECT_EQ(seen.size(), 64u);
}

TEST(Types, FloorLog2) {
    EXPECT_EQ(floor_log2(1), 0u);
    EXPECT_EQ(floor_log2(2), 1u);
    EXPECT_EQ(floor_log2(3), 1u);
    EXPECT_EQ(floor_log2(4), 2u);
    EXPECT_EQ(floor_log2(1023), 9u);
    EXPECT_EQ(floor_log2(1024), 10u);
}

TEST(Types, CeilLog2) {
    EXPECT_EQ(ceil_log2(1), 0u);
    EXPECT_EQ(ceil_log2(2), 1u);
    EXPECT_EQ(ceil_log2(3), 2u);
    EXPECT_EQ(ceil_log2(4), 2u);
    EXPECT_EQ(ceil_log2(5), 3u);
    EXPECT_EQ(ceil_log2(1024), 10u);
    EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Types, ModelPresets) {
    constexpr auto fast = ModelParams::fast_network();
    EXPECT_EQ(fast.hop_delay, 0);
    EXPECT_EQ(fast.ncu_delay, 1);
    constexpr auto trad = ModelParams::traditional();
    EXPECT_EQ(trad.hop_delay, 1);
    EXPECT_EQ(trad.ncu_delay, 0);
}

}  // namespace
}  // namespace fastnet
