// Tests for the common kernel: contracts, RNG determinism, integer math.
#include <gtest/gtest.h>

#include <set>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace fastnet {
namespace {

TEST(Expect, PassingCheckIsSilent) {
    EXPECT_NO_THROW(FASTNET_EXPECTS(1 + 1 == 2));
    EXPECT_NO_THROW(FASTNET_ENSURES(true));
}

TEST(Expect, FailingPreconditionThrowsContractViolation) {
    EXPECT_THROW(FASTNET_EXPECTS(false), ContractViolation);
    EXPECT_THROW(FASTNET_EXPECTS_MSG(false, "ctx"), ContractViolation);
}

TEST(Expect, MessageNamesTheExpressionAndContext) {
    try {
        FASTNET_EXPECTS_MSG(2 > 3, "my context");
        FAIL() << "should have thrown";
    } catch (const ContractViolation& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("2 > 3"), std::string::npos);
        EXPECT_NE(what.find("my context"), std::string::npos);
    }
}

TEST(Rng, SameSeedSameStream) {
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next()) ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
    Rng r(7);
    for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues) {
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) seen.insert(r.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusiveBounds) {
    Rng r(11);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= (v == -3);
        hit_hi |= (v == 3);
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, ChanceZeroAndOne) {
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0, 10));
        EXPECT_TRUE(r.chance(10, 10));
    }
}

TEST(Rng, PermutationIsAPermutation) {
    Rng r(17);
    const auto p = r.permutation(50);
    std::set<std::uint32_t> s(p.begin(), p.end());
    EXPECT_EQ(s.size(), 50u);
    EXPECT_EQ(*s.begin(), 0u);
    EXPECT_EQ(*s.rbegin(), 49u);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
    Rng a(23);
    Rng child = a.fork();
    // Child must not replay the parent stream.
    Rng a2(23);
    (void)a2.next();  // same draw the fork consumed
    EXPECT_NE(child.next(), a2.next());
}

TEST(Types, FloorLog2) {
    EXPECT_EQ(floor_log2(1), 0u);
    EXPECT_EQ(floor_log2(2), 1u);
    EXPECT_EQ(floor_log2(3), 1u);
    EXPECT_EQ(floor_log2(4), 2u);
    EXPECT_EQ(floor_log2(1023), 9u);
    EXPECT_EQ(floor_log2(1024), 10u);
}

TEST(Types, CeilLog2) {
    EXPECT_EQ(ceil_log2(1), 0u);
    EXPECT_EQ(ceil_log2(2), 1u);
    EXPECT_EQ(ceil_log2(3), 2u);
    EXPECT_EQ(ceil_log2(4), 2u);
    EXPECT_EQ(ceil_log2(5), 3u);
    EXPECT_EQ(ceil_log2(1024), 10u);
    EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Types, ModelPresets) {
    constexpr auto fast = ModelParams::fast_network();
    EXPECT_EQ(fast.hop_delay, 0);
    EXPECT_EQ(fast.ncu_delay, 1);
    constexpr auto trad = ModelParams::traditional();
    EXPECT_EQ(trad.hop_delay, 1);
    EXPECT_EQ(trad.ncu_delay, 0);
}

}  // namespace
}  // namespace fastnet
