// Tests for the datagram router composed on topology maintenance:
// route computation from learned views, acks, retries across failures.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "topo/router.hpp"

namespace fastnet::topo {
namespace {

using graph::Graph;

struct Harness {
    Harness(Graph graph, std::map<NodeId, std::vector<SendRequest>> sends,
            RouterOptions opt = make_default_options())
        : g(std::move(graph)),
          cluster(g, make_routers(g.node_count(), opt, std::move(sends))) {
        cluster.start_all(0);
    }
    static RouterOptions make_default_options() {
        RouterOptions opt;
        opt.topology.rounds = 10;
        opt.topology.period = 50;
        opt.retry_period = 200;
        return opt;
    }
    RouterProtocol& router(NodeId u) { return cluster.protocol_as<RouterProtocol>(u); }
    Graph g;
    node::Cluster cluster;
};

TEST(Router, DeliversAfterConvergence) {
    // The send fires before node 0's view can possibly reach node 7
    // (cold start): the datagram waits in the pending queue until the
    // maintenance rounds have spread the topology, then goes through.
    Harness h(graph::make_cycle(8), {{0, {{/*at=*/5, /*dst=*/4, /*tag=*/99}}}});
    h.cluster.run();
    ASSERT_EQ(h.router(4).received().size(), 1u);
    EXPECT_EQ(h.router(4).received()[0], (std::pair<NodeId, std::uint64_t>{0, 99}));
    EXPECT_EQ(h.router(0).delivered_and_acked(), 1u);
    EXPECT_EQ(h.router(0).still_pending(), 0u);
}

TEST(Router, ImmediateNeighborNeedsNoConvergence) {
    Harness h(graph::make_path(3), {{0, {{1, 1, 7}}}});
    h.cluster.run();
    ASSERT_EQ(h.router(1).received().size(), 1u);
    EXPECT_EQ(h.router(0).delivered_and_acked(), 1u);
}

TEST(Router, ManyToManyAllDelivered) {
    Rng rng(3);
    const Graph g = graph::make_random_connected(16, 2, 10, rng);
    std::map<NodeId, std::vector<SendRequest>> sends;
    unsigned expected = 0;
    for (NodeId u = 0; u < 16; ++u) {
        sends[u].push_back({static_cast<Tick>(10 + u), (u + 5) % 16, u * 100ull});
        ++expected;
    }
    Harness h(g, std::move(sends));
    h.cluster.run();
    unsigned acked = 0, received = 0;
    for (NodeId u = 0; u < 16; ++u) {
        acked += h.router(u).delivered_and_acked();
        received += static_cast<unsigned>(h.router(u).received().size());
        EXPECT_EQ(h.router(u).still_pending(), 0u) << u;
    }
    EXPECT_EQ(acked, expected);
    EXPECT_EQ(received, expected);
}

TEST(Router, RetriesAcrossLinkFailure) {
    // The only 0 -> 3 route on a path graph is broken when the datagram
    // first flies; after the link is restored and the view re-converges,
    // a retry delivers it.
    RouterOptions opt = Harness::make_default_options();
    opt.topology.rounds = 30;
    opt.topology.period = 50;
    opt.retry_period = 120;
    Harness h(graph::make_path(4), {{0, {{/*at=*/600, 3, 42}}}}, opt);
    // Break (1,2) before the send; repair later.
    h.cluster.simulator().at(500, [&h] { h.cluster.network().fail_link(1); });
    h.cluster.simulator().at(800, [&h] { h.cluster.network().restore_link(1); });
    h.cluster.run();
    ASSERT_EQ(h.router(3).received().size(), 1u);
    EXPECT_EQ(h.router(0).delivered_and_acked(), 1u);
    EXPECT_EQ(h.router(0).given_up(), 0u);
}

TEST(Router, ReroutesAroundPermanentFailure) {
    // On a cycle there are two routes; killing one mid-flight forces the
    // retry onto the other side once the view updates.
    RouterOptions opt = Harness::make_default_options();
    opt.topology.rounds = 30;
    opt.retry_period = 150;
    Harness h(graph::make_cycle(8), {{0, {{/*at=*/600, 4, 5}}}}, opt);
    h.cluster.simulator().at(590, [&h] {
        // Kill the clockwise route's first link just before the send.
        h.cluster.network().fail_link(h.g.find_edge(0, 1));
    });
    h.cluster.run();
    ASSERT_EQ(h.router(4).received().size(), 1u);
    EXPECT_EQ(h.router(0).given_up(), 0u);
}

TEST(Router, GivesUpOnUnreachableDestination) {
    RouterOptions opt = Harness::make_default_options();
    opt.topology.rounds = 6;
    opt.retry_period = 60;
    opt.max_retries = 3;
    Graph g = graph::disjoint_union(graph::make_path(3), graph::make_path(2));
    Harness h(std::move(g), {{0, {{10, 4, 1}}}}, opt);
    h.cluster.run();
    EXPECT_EQ(h.router(0).delivered_and_acked(), 0u);
    // Never routable: stays pending until retries exhaust, then dropped.
    EXPECT_EQ(h.router(0).still_pending(), 0u);
    EXPECT_EQ(h.router(0).given_up(), 1u);
}

TEST(Router, DuplicateRetriesAreFilteredAtTheReceiver) {
    // Force a lost ACK by cutting the reverse path right after delivery
    // is impossible to time externally; instead use an aggressive retry
    // period so retries overlap the first ack in flight with C > 0.
    RouterOptions opt = Harness::make_default_options();
    opt.retry_period = 2;    // retries fire long before the ack round-trip
    opt.max_retries = 1000;  // ...but the sender must not give up early
    node::ClusterConfig cfg;
    cfg.params.hop_delay = 40;  // C = 40: several retries race the ack
    const Graph g = graph::make_path(3);
    std::map<NodeId, std::vector<SendRequest>> sends{{0, {{300, 2, 9}}}};
    node::Cluster cluster(g, make_routers(3, opt, std::move(sends)), cfg);
    cluster.start_all(0);
    cluster.run();
    auto& receiver = cluster.protocol_as<RouterProtocol>(2);
    // Exactly one logical delivery despite duplicate transmissions.
    ASSERT_EQ(receiver.received().size(), 1u);
    EXPECT_EQ(receiver.received()[0].second, 9u);
    auto& sender = cluster.protocol_as<RouterProtocol>(0);
    EXPECT_EQ(sender.delivered_and_acked(), 1u);
    EXPECT_EQ(sender.still_pending(), 0u);
}

TEST(Router, EmbeddedMaintenanceStillConverges) {
    Harness h(graph::make_cycle(10), {});
    h.cluster.run();
    for (NodeId u = 0; u < 10; ++u)
        EXPECT_TRUE(view_converged(h.router(u).topology(), h.cluster.network(), u)) << u;
}

}  // namespace
}  // namespace fastnet::topo
