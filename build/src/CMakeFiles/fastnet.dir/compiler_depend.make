# Empty compiler generated dependencies file for fastnet.
# This may be replaced when dependencies are built.
