
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/expect.cpp" "src/CMakeFiles/fastnet.dir/common/expect.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/common/expect.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/fastnet.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/common/rng.cpp.o.d"
  "/root/repo/src/cost/metrics.cpp" "src/CMakeFiles/fastnet.dir/cost/metrics.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/cost/metrics.cpp.o.d"
  "/root/repo/src/election/election.cpp" "src/CMakeFiles/fastnet.dir/election/election.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/election/election.cpp.o.d"
  "/root/repo/src/election/inout_tree.cpp" "src/CMakeFiles/fastnet.dir/election/inout_tree.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/election/inout_tree.cpp.o.d"
  "/root/repo/src/election/ring_election.cpp" "src/CMakeFiles/fastnet.dir/election/ring_election.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/election/ring_election.cpp.o.d"
  "/root/repo/src/graph/algorithms.cpp" "src/CMakeFiles/fastnet.dir/graph/algorithms.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/graph/algorithms.cpp.o.d"
  "/root/repo/src/graph/dot.cpp" "src/CMakeFiles/fastnet.dir/graph/dot.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/graph/dot.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/fastnet.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/fastnet.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/rooted_tree.cpp" "src/CMakeFiles/fastnet.dir/graph/rooted_tree.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/graph/rooted_tree.cpp.o.d"
  "/root/repo/src/gsf/gather.cpp" "src/CMakeFiles/fastnet.dir/gsf/gather.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/gsf/gather.cpp.o.d"
  "/root/repo/src/gsf/opt_tree.cpp" "src/CMakeFiles/fastnet.dir/gsf/opt_tree.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/gsf/opt_tree.cpp.o.d"
  "/root/repo/src/gsf/schedule.cpp" "src/CMakeFiles/fastnet.dir/gsf/schedule.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/gsf/schedule.cpp.o.d"
  "/root/repo/src/hw/anr.cpp" "src/CMakeFiles/fastnet.dir/hw/anr.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/hw/anr.cpp.o.d"
  "/root/repo/src/hw/link.cpp" "src/CMakeFiles/fastnet.dir/hw/link.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/hw/link.cpp.o.d"
  "/root/repo/src/hw/network.cpp" "src/CMakeFiles/fastnet.dir/hw/network.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/hw/network.cpp.o.d"
  "/root/repo/src/hw/switch.cpp" "src/CMakeFiles/fastnet.dir/hw/switch.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/hw/switch.cpp.o.d"
  "/root/repo/src/node/cluster.cpp" "src/CMakeFiles/fastnet.dir/node/cluster.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/node/cluster.cpp.o.d"
  "/root/repo/src/node/runtime.cpp" "src/CMakeFiles/fastnet.dir/node/runtime.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/node/runtime.cpp.o.d"
  "/root/repo/src/node/scenario.cpp" "src/CMakeFiles/fastnet.dir/node/scenario.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/node/scenario.cpp.o.d"
  "/root/repo/src/paris/call_setup.cpp" "src/CMakeFiles/fastnet.dir/paris/call_setup.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/paris/call_setup.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/fastnet.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/fastnet.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/fastnet.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/sim/trace.cpp.o.d"
  "/root/repo/src/topo/broadcast_plan.cpp" "src/CMakeFiles/fastnet.dir/topo/broadcast_plan.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/topo/broadcast_plan.cpp.o.d"
  "/root/repo/src/topo/broadcast_protocols.cpp" "src/CMakeFiles/fastnet.dir/topo/broadcast_protocols.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/topo/broadcast_protocols.cpp.o.d"
  "/root/repo/src/topo/labeling.cpp" "src/CMakeFiles/fastnet.dir/topo/labeling.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/topo/labeling.cpp.o.d"
  "/root/repo/src/topo/lower_bound.cpp" "src/CMakeFiles/fastnet.dir/topo/lower_bound.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/topo/lower_bound.cpp.o.d"
  "/root/repo/src/topo/paths.cpp" "src/CMakeFiles/fastnet.dir/topo/paths.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/topo/paths.cpp.o.d"
  "/root/repo/src/topo/router.cpp" "src/CMakeFiles/fastnet.dir/topo/router.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/topo/router.cpp.o.d"
  "/root/repo/src/topo/topology_maintenance.cpp" "src/CMakeFiles/fastnet.dir/topo/topology_maintenance.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/topo/topology_maintenance.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/fastnet.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/fastnet.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
