file(REMOVE_RECURSE
  "libfastnet.a"
)
