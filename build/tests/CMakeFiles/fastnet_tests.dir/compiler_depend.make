# Empty compiler generated dependencies file for fastnet_tests.
# This may be replaced when dependencies are built.
