
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_broadcast.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_broadcast.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_broadcast.cpp.o.d"
  "/root/repo/tests/test_broadcast_failures.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_broadcast_failures.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_broadcast_failures.cpp.o.d"
  "/root/repo/tests/test_call_setup.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_call_setup.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_call_setup.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_cost_and_table.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_cost_and_table.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_cost_and_table.cpp.o.d"
  "/root/repo/tests/test_dot_and_bits.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_dot_and_bits.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_dot_and_bits.cpp.o.d"
  "/root/repo/tests/test_election.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_election.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_election.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_graph_algorithms.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_graph_algorithms.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_graph_algorithms.cpp.o.d"
  "/root/repo/tests/test_gsf_disseminate.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_gsf_disseminate.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_gsf_disseminate.cpp.o.d"
  "/root/repo/tests/test_gsf_gather.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_gsf_gather.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_gsf_gather.cpp.o.d"
  "/root/repo/tests/test_gsf_schedule.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_gsf_schedule.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_gsf_schedule.cpp.o.d"
  "/root/repo/tests/test_gsf_tree.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_gsf_tree.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_gsf_tree.cpp.o.d"
  "/root/repo/tests/test_hw.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_hw.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_hw.cpp.o.d"
  "/root/repo/tests/test_hw_properties.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_hw_properties.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_hw_properties.cpp.o.d"
  "/root/repo/tests/test_inout_tree.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_inout_tree.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_inout_tree.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_labeling.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_labeling.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_labeling.cpp.o.d"
  "/root/repo/tests/test_link_capacity.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_link_capacity.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_link_capacity.cpp.o.d"
  "/root/repo/tests/test_lower_bound.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_lower_bound.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_lower_bound.cpp.o.d"
  "/root/repo/tests/test_multisend_ablation.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_multisend_ablation.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_multisend_ablation.cpp.o.d"
  "/root/repo/tests/test_paths.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_paths.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_paths.cpp.o.d"
  "/root/repo/tests/test_ring_election.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_ring_election.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_ring_election.cpp.o.d"
  "/root/repo/tests/test_router.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_router.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_router.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_scenario.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_scenario.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_stress_sweeps.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_stress_sweeps.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_stress_sweeps.cpp.o.d"
  "/root/repo/tests/test_topology_maintenance.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_topology_maintenance.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_topology_maintenance.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/fastnet_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/fastnet_tests.dir/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fastnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
