# Empty dependencies file for bench_calls.
# This may be replaced when dependencies are built.
