file(REMOVE_RECURSE
  "CMakeFiles/bench_calls.dir/bench_calls.cpp.o"
  "CMakeFiles/bench_calls.dir/bench_calls.cpp.o.d"
  "bench_calls"
  "bench_calls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_calls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
