# Empty compiler generated dependencies file for bench_gsf_opt.
# This may be replaced when dependencies are built.
