file(REMOVE_RECURSE
  "CMakeFiles/bench_gsf_opt.dir/bench_gsf_opt.cpp.o"
  "CMakeFiles/bench_gsf_opt.dir/bench_gsf_opt.cpp.o.d"
  "bench_gsf_opt"
  "bench_gsf_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gsf_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
