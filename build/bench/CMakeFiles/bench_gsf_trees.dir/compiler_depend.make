# Empty compiler generated dependencies file for bench_gsf_trees.
# This may be replaced when dependencies are built.
