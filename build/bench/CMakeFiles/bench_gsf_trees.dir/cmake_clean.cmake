file(REMOVE_RECURSE
  "CMakeFiles/bench_gsf_trees.dir/bench_gsf_trees.cpp.o"
  "CMakeFiles/bench_gsf_trees.dir/bench_gsf_trees.cpp.o.d"
  "bench_gsf_trees"
  "bench_gsf_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gsf_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
