file(REMOVE_RECURSE
  "CMakeFiles/gsf_planner.dir/gsf_planner.cpp.o"
  "CMakeFiles/gsf_planner.dir/gsf_planner.cpp.o.d"
  "gsf_planner"
  "gsf_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsf_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
