# Empty compiler generated dependencies file for gsf_planner.
# This may be replaced when dependencies are built.
