file(REMOVE_RECURSE
  "CMakeFiles/topology_monitor.dir/topology_monitor.cpp.o"
  "CMakeFiles/topology_monitor.dir/topology_monitor.cpp.o.d"
  "topology_monitor"
  "topology_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
