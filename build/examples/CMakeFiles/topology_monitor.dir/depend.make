# Empty dependencies file for topology_monitor.
# This may be replaced when dependencies are built.
