# Empty dependencies file for election_campaign.
# This may be replaced when dependencies are built.
