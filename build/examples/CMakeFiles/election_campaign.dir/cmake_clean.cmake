file(REMOVE_RECURSE
  "CMakeFiles/election_campaign.dir/election_campaign.cpp.o"
  "CMakeFiles/election_campaign.dir/election_campaign.cpp.o.d"
  "election_campaign"
  "election_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/election_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
