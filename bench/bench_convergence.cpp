// Experiments E4 + E5 (Theorem 1 and the Section 3 example).
//
// E4 — the paper's 6-node deadlock scenario: a converged network whose
//      three pendant links fail simultaneously. The DFS-token scheme
//      with the paper's adversarial tours never re-converges; the
//      one-way branching-paths broadcast always does; full-knowledge
//      payloads rescue even the DFS scheme.
//
// E5 — rounds-to-convergence from a cold start: O(d) with local-
//      topology payloads, O(log d) with full-knowledge payloads
//      (the comment after Theorem 1).
//
// The E5 grids run through exec::sweep_map — each (topology, payload
// mode) probe is one task — and the bench times the identical grid at 1
// thread and at hardware_concurrency, reporting the sweep speedup in
// BENCH_convergence.json (docs/PERF.md, "Parallel sweeps").
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <memory>

#include "fastnet.hpp"
#include "json_reporter.hpp"

namespace {

using namespace fastnet;
using topo::BroadcastScheme;
using topo::TopologyOptions;

std::unique_ptr<node::Cluster> podc_scenario(TopologyOptions opt) {
    const graph::Graph g = graph::make_podc_example();
    opt.dfs_preference = {{1}, {2}, {0}, {}, {}, {}};
    opt.period = 64;
    auto c = std::make_unique<node::Cluster>(
        g, topo::make_topology_maintenance(g.node_count(), opt));
    c->start_all(0);
    node::Cluster& cl = *c;
    cl.simulator().at(300, [&cl] {
        const graph::Graph& cg = cl.graph();
        cl.network().fail_link(cg.find_edge(0, 3));
        cl.network().fail_link(cg.find_edge(1, 4));
        cl.network().fail_link(cg.find_edge(2, 5));
    });
    cl.run();
    return c;
}

void experiment_e4(bench::JsonReporter& out) {
    struct Case {
        const char* name;
        BroadcastScheme scheme;
        bool full;
    };
    const std::vector<Case> cases{{"dfs-token", BroadcastScheme::kDfsToken, false},
                                  {"dfs-token", BroadcastScheme::kDfsToken, true},
                                  {"branching-paths", BroadcastScheme::kBranchingPaths, false},
                                  {"branching-paths", BroadcastScheme::kBranchingPaths, true}};
    struct Row {
        bool converged = false;
        std::uint64_t calls = 0;
    };
    const auto rows = exec::sweep_map(cases, [](const Case& c, exec::TaskContext&) {
        TopologyOptions opt;
        opt.scheme = c.scheme;
        opt.full_knowledge = c.full;
        opt.rounds = 40;
        auto cl = podc_scenario(opt);
        return Row{topo::all_views_converged(*cl),
                   cl->metrics().total_message_system_calls()};
    });
    util::Table t({"scheme", "payload", "rounds_run", "converged", "system_calls"});
    for (std::size_t i = 0; i < cases.size(); ++i) {
        t.add(cases[i].name, cases[i].full ? "full-knowledge" : "local-topology", 40u,
              rows[i].converged, rows[i].calls);
        out.add(std::string("e4_") + cases[i].name +
                    (cases[i].full ? "_full_converged" : "_local_converged"),
                rows[i].converged ? 1 : 0, "bool");
    }
    t.print(std::cout,
            "E4: the Section 3 deadlock example — DFS token never converges with "
            "local payloads; one-way branching paths always does (Theorem 1)");
}

/// Smallest round budget after which all views converge from cold start.
unsigned rounds_to_converge(const graph::Graph& g, bool full_knowledge, unsigned max_rounds) {
    for (unsigned r = 1; r <= max_rounds; ++r) {
        TopologyOptions opt;
        opt.rounds = r;
        opt.full_knowledge = full_knowledge;
        opt.period = 64;
        node::Cluster c(g, topo::make_topology_maintenance(g.node_count(), opt));
        c.start_all(0);
        c.run();
        if (topo::all_views_converged(c)) return r;
    }
    return max_rounds + 1;
}

struct E5Point {
    std::string name;
    graph::Graph graph;
    bool full_knowledge = false;
};

struct E5Row {
    unsigned rounds = 0;
    unsigned diameter = 0;
};

std::vector<E5Point> e5_grid() {
    std::vector<E5Point> grid;
    auto both = [&grid](const char* name, const graph::Graph& g) {
        grid.push_back({name, g, false});
        grid.push_back({name, g, true});
    };
    both("cycle32", graph::make_cycle(32));
    both("cycle64", graph::make_cycle(64));
    both("path48", graph::make_path(48));
    both("grid8x8", graph::make_grid(8, 8));
    Rng rng(5);
    both("random96", graph::make_random_connected(96, 1, 30, rng));
    return grid;
}

std::vector<E5Row> run_e5_grid(const std::vector<E5Point>& grid, unsigned threads) {
    exec::SweepOptions opt;
    opt.threads = threads;
    return exec::sweep_map(
        grid,
        [](const E5Point& p, exec::TaskContext&) {
            const unsigned d = graph::diameter(p.graph);
            return E5Row{rounds_to_converge(p.graph, p.full_knowledge, d + 4), d};
        },
        opt);
}

void experiment_e5(bench::JsonReporter& out) {
    const std::vector<E5Point> grid = e5_grid();

    // The same grid, serial then parallel: the rows must match and the
    // wall-clock ratio is the engine's headline number.
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    const auto serial = run_e5_grid(grid, 1);
    const auto t1 = Clock::now();
    const unsigned hw = exec::ThreadPool::hardware_threads();
    const auto parallel = run_e5_grid(grid, hw);
    const auto t2 = Clock::now();

    util::Table t({"topology", "n", "diameter", "rounds_local", "rounds_full",
                   "~d", "~1+log2(d)"});
    for (std::size_t i = 0; i + 1 < grid.size(); i += 2) {
        const E5Point& p = grid[i];
        const unsigned d = serial[i].diameter;
        FASTNET_ENSURES_MSG(serial[i].rounds == parallel[i].rounds &&
                                serial[i + 1].rounds == parallel[i + 1].rounds,
                            "serial/parallel sweep divergence");
        t.add(p.name.c_str(), p.graph.node_count(), d, serial[i].rounds,
              serial[i + 1].rounds, d, 1 + ceil_log2(d + 1));
        out.add("e5_rounds_local_" + p.name, serial[i].rounds, "rounds");
        out.add("e5_rounds_full_" + p.name, serial[i + 1].rounds, "rounds");
    }
    t.print(std::cout,
            "E5: rounds to converge from cold start — O(d) local vs O(log d) "
            "full-knowledge (comment after Theorem 1)");

    const double serial_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(t1 - t0).count();
    const double parallel_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(t2 - t1).count();
    out.add("e5_sweep_serial_ms", serial_ms, "ms");
    out.add("e5_sweep_parallel_ms", parallel_ms, "ms");
    out.add("e5_sweep_threads", hw, "threads");
    out.add("e5_sweep_speedup", serial_ms / parallel_ms, "x");
}

void experiment_e5_failures(bench::JsonReporter& out) {
    const std::vector<unsigned> kill_counts{1u, 3u, 6u};
    struct Row {
        bool converged = false;
        NodeId n = 0;
    };
    const auto rows = exec::sweep_map(kill_counts, [](unsigned kills, exec::TaskContext&) {
        Rng rng(kills);
        const graph::Graph g = graph::make_random_connected(48, 3, 10, rng);
        TopologyOptions opt;
        opt.rounds = 16;
        opt.period = 64;
        node::Cluster c(g, topo::make_topology_maintenance(g.node_count(), opt));
        c.start_all(0);
        Rng chaos(kills * 17 + 1);
        for (unsigned i = 0; i < kills; ++i) {
            const EdgeId e = static_cast<EdgeId>(chaos.below(g.edge_count()));
            c.simulator().at(100 + 40 * i, [&c, e] { c.network().fail_link(e); });
        }
        c.run();
        return Row{topo::all_views_converged(c), g.node_count()};
    });
    util::Table t({"n", "failures", "converged", "final_rounds"});
    for (std::size_t i = 0; i < kill_counts.size(); ++i) {
        t.add(rows[i].n, kill_counts[i], rows[i].converged, 16u);
        out.add("e5b_converged_kills" + std::to_string(kill_counts[i]),
                rows[i].converged ? 1 : 0, "bool");
    }
    t.print(std::cout, "E5b: convergence after failure bursts (then quiescence)");
}

void bm_maintenance_round(benchmark::State& state) {
    const NodeId n = static_cast<NodeId>(state.range(0));
    Rng rng(7);
    const graph::Graph g = graph::make_random_connected(n, 1, 10, rng);
    for (auto _ : state) {
        TopologyOptions opt;
        opt.rounds = 2;
        opt.period = 64;
        node::Cluster c(g, topo::make_topology_maintenance(n, opt));
        c.start_all(0);
        c.run();
        benchmark::DoNotOptimize(c.metrics().total_message_system_calls());
    }
}
BENCHMARK(bm_maintenance_round)->Range(32, 128);

}  // namespace

int main(int argc, char** argv) {
    bench::JsonReporter out("convergence");
    experiment_e4(out);
    experiment_e5(out);
    experiment_e5_failures(out);
    out.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
