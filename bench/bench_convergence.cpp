// Experiments E4 + E5 (Theorem 1 and the Section 3 example).
//
// E4 — the paper's 6-node deadlock scenario: a converged network whose
//      three pendant links fail simultaneously. The DFS-token scheme
//      with the paper's adversarial tours never re-converges; the
//      one-way branching-paths broadcast always does; full-knowledge
//      payloads rescue even the DFS scheme.
//
// E5 — rounds-to-convergence from a cold start: O(d) with local-
//      topology payloads, O(log d) with full-knowledge payloads
//      (the comment after Theorem 1).
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "fastnet.hpp"

namespace {

using namespace fastnet;
using topo::BroadcastScheme;
using topo::TopologyOptions;

std::unique_ptr<node::Cluster> podc_scenario(TopologyOptions opt) {
    const graph::Graph g = graph::make_podc_example();
    opt.dfs_preference = {{1}, {2}, {0}, {}, {}, {}};
    opt.period = 64;
    auto c = std::make_unique<node::Cluster>(
        g, topo::make_topology_maintenance(g.node_count(), opt));
    c->start_all(0);
    node::Cluster& cl = *c;
    cl.simulator().at(300, [&cl] {
        const graph::Graph& cg = cl.graph();
        cl.network().fail_link(cg.find_edge(0, 3));
        cl.network().fail_link(cg.find_edge(1, 4));
        cl.network().fail_link(cg.find_edge(2, 5));
    });
    cl.run();
    return c;
}

void experiment_e4() {
    util::Table t({"scheme", "payload", "rounds_run", "converged", "system_calls"});
    struct Case {
        const char* name;
        BroadcastScheme scheme;
        bool full;
    };
    for (const Case& c : {Case{"dfs-token", BroadcastScheme::kDfsToken, false},
                          Case{"dfs-token", BroadcastScheme::kDfsToken, true},
                          Case{"branching-paths", BroadcastScheme::kBranchingPaths, false},
                          Case{"branching-paths", BroadcastScheme::kBranchingPaths, true}}) {
        TopologyOptions opt;
        opt.scheme = c.scheme;
        opt.full_knowledge = c.full;
        opt.rounds = 40;
        auto cl = podc_scenario(opt);
        t.add(c.name, c.full ? "full-knowledge" : "local-topology", 40u,
              topo::all_views_converged(*cl),
              cl->metrics().total_message_system_calls());
    }
    t.print(std::cout,
            "E4: the Section 3 deadlock example — DFS token never converges with "
            "local payloads; one-way branching paths always does (Theorem 1)");
}

/// Smallest round budget after which all views converge from cold start.
unsigned rounds_to_converge(const graph::Graph& g, bool full_knowledge, unsigned max_rounds) {
    for (unsigned r = 1; r <= max_rounds; ++r) {
        TopologyOptions opt;
        opt.rounds = r;
        opt.full_knowledge = full_knowledge;
        opt.period = 64;
        node::Cluster c(g, topo::make_topology_maintenance(g.node_count(), opt));
        c.start_all(0);
        c.run();
        if (topo::all_views_converged(c)) return r;
    }
    return max_rounds + 1;
}

void experiment_e5() {
    util::Table t({"topology", "n", "diameter", "rounds_local", "rounds_full",
                   "~d", "~1+log2(d)"});
    auto probe = [&t](const char* name, const graph::Graph& g) {
        const unsigned d = graph::diameter(g);
        const unsigned local = rounds_to_converge(g, false, d + 4);
        const unsigned full = rounds_to_converge(g, true, d + 4);
        t.add(name, g.node_count(), d, local, full, d, 1 + ceil_log2(d + 1));
    };
    probe("cycle32", graph::make_cycle(32));
    probe("cycle64", graph::make_cycle(64));
    probe("path48", graph::make_path(48));
    probe("grid8x8", graph::make_grid(8, 8));
    Rng rng(5);
    probe("random96", graph::make_random_connected(96, 1, 30, rng));
    t.print(std::cout,
            "E5: rounds to converge from cold start — O(d) local vs O(log d) "
            "full-knowledge (comment after Theorem 1)");
}

void experiment_e5_failures() {
    util::Table t({"n", "failures", "converged", "final_rounds"});
    for (unsigned kills : {1u, 3u, 6u}) {
        Rng rng(kills);
        const graph::Graph g = graph::make_random_connected(48, 3, 10, rng);
        TopologyOptions opt;
        opt.rounds = 16;
        opt.period = 64;
        node::Cluster c(g, topo::make_topology_maintenance(g.node_count(), opt));
        c.start_all(0);
        Rng chaos(kills * 17 + 1);
        for (unsigned i = 0; i < kills; ++i) {
            const EdgeId e = static_cast<EdgeId>(chaos.below(g.edge_count()));
            c.simulator().at(100 + 40 * i, [&c, e] { c.network().fail_link(e); });
        }
        c.run();
        t.add(g.node_count(), kills, topo::all_views_converged(c), 16u);
    }
    t.print(std::cout, "E5b: convergence after failure bursts (then quiescence)");
}

void bm_maintenance_round(benchmark::State& state) {
    const NodeId n = static_cast<NodeId>(state.range(0));
    Rng rng(7);
    const graph::Graph g = graph::make_random_connected(n, 1, 10, rng);
    for (auto _ : state) {
        TopologyOptions opt;
        opt.rounds = 2;
        opt.period = 64;
        node::Cluster c(g, topo::make_topology_maintenance(n, opt));
        c.start_all(0);
        c.run();
        benchmark::DoNotOptimize(c.metrics().total_message_system_calls());
    }
}
BENCHMARK(bm_maintenance_round)->Range(32, 128);

}  // namespace

int main(int argc, char** argv) {
    experiment_e4();
    experiment_e5();
    experiment_e5_failures();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
