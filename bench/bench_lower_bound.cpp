// Experiment E3 (Theorem 3): the Omega(log n) one-way broadcast lower
// bound on complete binary trees, bracketed by the branching-paths
// upper bound (= tree depth, measured through the real planner and
// through full simulation for the smaller instances).
#include <benchmark/benchmark.h>

#include <iostream>

#include "fastnet.hpp"
#include "json_reporter.hpp"

namespace {

using namespace fastnet;

void experiment_e3(bench::JsonReporter& rep) {
    util::Table t({"depth", "n", "lower_bound", "branching_paths_units",
                   "simulated_units", "certificate_ok"});
    bool all_certified = true;
    for (unsigned depth = 2; depth <= 14; ++depth) {
        const std::uint64_t n = (1ull << (depth + 1)) - 1;
        const unsigned lb = topo::one_way_lower_bound(depth);
        const unsigned ub = topo::branching_paths_rounds(depth);
        double sim_units = -1;
        if (depth <= 12) {
            const graph::Graph g = graph::make_complete_binary_tree(depth);
            const auto out =
                topo::run_broadcast(g, topo::BroadcastScheme::kBranchingPaths, 0);
            FASTNET_ENSURES(out.all_received);
            sim_units = out.time_units;
        }
        all_certified &= topo::lower_bound_certificate_holds(depth);
        t.add(depth, n, lb, ub, sim_units, topo::lower_bound_certificate_holds(depth));
        if (depth == 12) {
            rep.add("e3_lb_depth12", lb, "units");
            rep.add("e3_ub_depth12", ub, "units");
        }
    }
    rep.add("e3_all_certificates_hold", all_certified ? 1 : 0, "bool");
    t.print(std::cout,
            "E3: one-way broadcast on complete binary trees — Omega(log n) lower "
            "bound vs branching-paths upper bound (both Theta(log n))");
}

void experiment_e3_asymptotics() {
    // lb / log2(n) and ub / log2(n) stay within constant factors.
    util::Table t({"depth", "log2_n", "lb/log2n", "ub/log2n"});
    for (unsigned depth = 16; depth <= 56; depth += 10) {
        const double log2n = depth + 1.0;
        t.add(depth, log2n, topo::one_way_lower_bound(depth) / log2n,
              depth / log2n);  // branching-paths takes exactly `depth` units
    }
    t.print(std::cout, "E3b: both bounds are Theta(log n)");
}

void bm_lower_bound_certificate(benchmark::State& state) {
    const unsigned depth = static_cast<unsigned>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(topo::lower_bound_certificate_holds(depth));
}
BENCHMARK(bm_lower_bound_certificate)->Arg(16)->Arg(32)->Arg(63);

void bm_branching_paths_on_binary_tree(benchmark::State& state) {
    const unsigned depth = static_cast<unsigned>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(topo::branching_paths_rounds(depth));
}
BENCHMARK(bm_branching_paths_on_binary_tree)->Arg(8)->Arg(12)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
    fastnet::bench::JsonReporter rep("lower_bound");
    experiment_e3(rep);
    experiment_e3_asymptotics();
    rep.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
