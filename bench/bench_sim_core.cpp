// Simulation-core fast-path microbenchmarks + perf regression baseline.
//
// Everything the repo measures — the Section 3 broadcast benches, the
// Section 4 election tours, the E1/E2 sweeps — funnels through two hot
// paths: sim::EventQueue and hw::Network's per-hop packet processing.
// This bench pins their cost with machine-readable output
// (BENCH_sim_core.json, see docs/PERF.md) so any future PR that regresses
// the core shows up as a hard number, not a feeling:
//
//   event_schedule_run   — schedule N events with a transmit-sized (32 B)
//                          capture at shuffled times, drain the queue.
//   event_cancel         — schedule N, cancel every other one, drain.
//   hop_ns               — steady-state cost of one hardware hop on a
//                          long pure-relay route (no NCU involvement).
//   hop_allocs           — heap allocations per steady-state hop
//                          (global operator new counter; target: 0).
//   broadcast_e2e_<n>    — wall time of one full branching-paths
//                          broadcast (plan + simulate) at n nodes.
#include <atomic>
#include <cstdlib>
#include <new>

#include "fastnet.hpp"
#include "json_reporter.hpp"

// ---- global allocation counter -----------------------------------------
// Replacing global operator new in the bench binary lets us count, not
// guess, the allocator traffic of the hop loop.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}

void* operator new(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void* p = nullptr;
    if (posix_memalign(&p, static_cast<std::size_t>(al), size ? size : 1) != 0)
        throw std::bad_alloc();
    return p;
}
void* operator new[](std::size_t size, std::align_val_t al) { return ::operator new(size, al); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace fastnet;

// The capture size of Network's hot transmit event (this + ids + packet
// state); using the same size here keeps the microbench honest about what
// the callback type must hold inline.
struct TransmitSizedCapture {
    std::uint64_t* sink;
    std::uint64_t a, b;
    std::uint32_t c, d;
};

void bench_event_schedule_run(bench::JsonReporter& out) {
    constexpr std::uint64_t kEvents = 100'000;
    // Shuffled times exercise real heap churn rather than an append-only
    // pattern; the schedule is identical every repetition (fixed seed).
    std::vector<Tick> times(kEvents);
    Rng rng(42);
    for (auto& t : times) t = static_cast<Tick>(rng.below(1 << 20));

    std::uint64_t side_effect = 0;
    const double ns = bench::min_time_ns([&] {
        sim::Simulator s;
        for (std::uint64_t i = 0; i < kEvents; ++i) {
            TransmitSizedCapture cap{&side_effect, i, i ^ 0x9e37u,
                                     static_cast<std::uint32_t>(i), 7};
            s.at(times[i], [cap] { *cap.sink += cap.a + cap.c; });
        }
        s.run();
    });
    out.add("event_schedule_run_ns_per_event", ns / static_cast<double>(kEvents), "ns");
    out.add("event_schedule_run_throughput",
            1e9 * static_cast<double>(kEvents) / ns, "events_per_sec");
    if (side_effect == 0xdead) std::abort();  // defeat optimizing the loop away
}

void bench_event_cancel(bench::JsonReporter& out) {
    constexpr std::uint64_t kEvents = 20'000;
    std::uint64_t side_effect = 0;
    const double ns = bench::min_time_ns([&] {
        sim::Simulator s;
        std::vector<sim::EventId> ids;
        ids.reserve(kEvents);
        for (std::uint64_t i = 0; i < kEvents; ++i)
            ids.push_back(s.at(static_cast<Tick>(i % 997), [&side_effect] { ++side_effect; }));
        for (std::uint64_t i = 0; i < kEvents; i += 2) s.cancel(ids[i]);
        s.run();
    });
    out.add("event_cancel_ns_per_event", ns / static_cast<double>(kEvents), "ns");
    out.add("event_cancel_throughput", 1e9 * static_cast<double>(kEvents) / ns,
            "events_per_sec");
}

void bench_hop_cost(bench::JsonReporter& out) {
    // A pure relay along a path: every hop is hardware-only work (switch
    // match + forward), the NCU is touched only at the far end. This is
    // the steady state the paper says must be cheap.
    constexpr NodeId kNodes = 4096;
    const graph::Graph g = graph::make_path(kNodes);
    sim::Simulator sim;
    cost::Metrics metrics(g.node_count());
    hw::Network net(sim, g, ModelParams::traditional(), metrics);
    std::uint64_t delivered = 0;
    net.set_ncu_sink(kNodes - 1, [&](const hw::Delivery&) { ++delivered; });

    std::vector<NodeId> path(kNodes);
    for (NodeId u = 0; u < kNodes; ++u) path[u] = u;
    const hw::AnrHeader header = net.route(path);

    // Warm every pool/cache, then count allocations over a fixed number
    // of steady-state hops.
    net.send(0, header, nullptr);
    sim.run();
    const std::uint64_t allocs_before = g_alloc_count.load();
    net.send(0, header, nullptr);
    sim.run();
    const std::uint64_t allocs_one_send = g_alloc_count.load() - allocs_before;

    const double ns = bench::min_time_ns([&] {
        net.send(0, header, nullptr);
        sim.run();
    });
    const double hops = static_cast<double>(kNodes - 1);
    out.add("hop_ns", ns / hops, "ns");
    out.add("hop_throughput", 1e9 * hops / ns, "hops_per_sec");
    // Allocations attributable to the per-hop steady state: total for one
    // warm send divided across its hops (send-time route construction and
    // final-delivery materialization amortize to ~0 on a long route only
    // if the per-hop cost itself is 0).
    out.add("allocs_per_hop", static_cast<double>(allocs_one_send) / hops, "allocs");
    if (delivered == 0) std::abort();
}

void bench_broadcast(bench::JsonReporter& out, NodeId n) {
    Rng rng(3);
    const graph::Graph g = graph::make_random_connected(n, 1, 2 * n, rng);
    const double ns = bench::min_time_ns(
        [&] {
            const auto res = topo::run_broadcast(g, topo::BroadcastScheme::kBranchingPaths, 0);
            FASTNET_ENSURES(res.all_received);
        },
        std::chrono::milliseconds(500));
    out.add("broadcast_e2e_" + std::to_string(n) + "_ms", ns / 1e6, "ms");
}

}  // namespace

int main() {
    bench::JsonReporter out("sim_core");
    std::cout << "== sim core fast-path bench ==\n";
    bench_event_schedule_run(out);
    bench_event_cancel(out);
    bench_hop_cost(out);
    for (NodeId n : {1024u, 4096u, 16384u}) bench_broadcast(out, n);
    out.write();
    return 0;
}
