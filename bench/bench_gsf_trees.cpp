// Experiments E8 + E9 + E10 (Section 5's worked examples).
//
// E8 — C=0, P=1: S(k) = 2^(k-1), binomial trees (eq. 4-6);
// E9 — C=1, P=1: S(k) = Fibonacci(k), golden-ratio growth (eq. 7-11);
// E10 — C=1, P=0 (traditional model): the recursion blows up — a star
//       finishes any n at t = C.
// Each row cross-checks recursion, closed form, and (for feasible sizes)
// the completion time of the real simulated gather.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "fastnet.hpp"
#include "json_reporter.hpp"

namespace {

using namespace fastnet;

ModelParams params_of(Tick c, Tick p) {
    ModelParams m;
    m.hop_delay = c;
    m.ncu_delay = p;
    return m;
}

void experiment_e8(bench::JsonReporter& rep) {
    gsf::ScheduleSolver solver(0, 1);
    util::Table t({"k", "S(k)_recursion", "2^(k-1)", "match", "simulated_time"});
    bool all_match = true;
    for (unsigned k = 1; k <= 20; ++k) {
        const std::uint64_t s = solver.size_at(static_cast<Tick>(k));
        const std::uint64_t closed = gsf::binomial_size(k);
        all_match &= s == closed;
        Tick sim = -1;
        if (s >= 1 && s <= 4096) {
            const auto r = gsf::build_optimal_tree(s, 0, 1);
            sim = gsf::run_tree_gather(r.tree, params_of(0, 1)).completion;
        }
        t.add(k, s, closed, s == closed, sim);
    }
    rep.add("e8_binomial_matches", all_match ? 1 : 0, "bool");
    t.print(std::cout, "E8: C=0,P=1 — binomial trees, S(k) = 2^(k-1) (eq. 6)");
}

void experiment_e9(bench::JsonReporter& rep) {
    gsf::ScheduleSolver solver(1, 1);
    util::Table t({"k", "S(k)_recursion", "fibonacci", "golden_ratio_est", "simulated_time"});
    const double phi = (1 + std::sqrt(5.0)) / 2;
    bool all_match = true;
    for (unsigned k = 1; k <= 25; ++k) {
        const std::uint64_t s = solver.size_at(static_cast<Tick>(k));
        const double est = std::pow(phi, k) / std::sqrt(5.0);
        all_match &= s == gsf::fibonacci_size(k);
        Tick sim = -1;
        if (s >= 1 && s <= 4096) {
            const auto r = gsf::build_optimal_tree(s, 1, 1);
            sim = gsf::run_tree_gather(r.tree, params_of(1, 1)).completion;
        }
        t.add(k, s, gsf::fibonacci_size(k), est, sim);
    }
    rep.add("e9_fibonacci_matches", all_match ? 1 : 0, "bool");
    t.print(std::cout, "E9: C=1,P=1 — Fibonacci trees (eq. 9-11)");
}

void experiment_e10(bench::JsonReporter& rep) {
    util::Table t({"n", "star_time_P0", "equals_C", "star_time_P1", "optimal_time_P1"});
    for (NodeId n : {4u, 16u, 64u, 256u}) {
        const auto trad = gsf::run_tree_gather(gsf::make_star_tree(n), params_of(1, 0));
        const auto star_p1 = gsf::run_tree_gather(gsf::make_star_tree(n), params_of(1, 1));
        const Tick opt_p1 = gsf::optimal_gather_time(n, 1, 1);
        t.add(n, trad.completion, trad.completion == 1, star_p1.completion, opt_p1);
        if (n == 256u)
            rep.add("e10_star_over_optimal_n256",
                    static_cast<double>(star_p1.completion) / static_cast<double>(opt_p1),
                    "x");
    }
    t.print(std::cout,
            "E10: C=1,P=0 (traditional) — any n finishes at t=C via a star; the "
            "same star under P=1 degrades to C+nP while the optimal tree stays "
            "logarithmic: the new model does not degenerate on complete graphs");
}

void experiment_growth_rates() {
    // The growth factor per time unit for different C/P mixes.
    util::Table t({"C", "P", "S(40)", "S(44)", "ratio^(1/4)"});
    for (auto [c, p] : std::vector<std::pair<Tick, Tick>>{{0, 1}, {1, 1}, {2, 1}, {4, 1}, {1, 2}}) {
        gsf::ScheduleSolver s(c, p);
        const double a = static_cast<double>(s.size_at(40));
        const double b = static_cast<double>(s.size_at(44));
        t.add(c, p, s.size_at(40), s.size_at(44), std::pow(b / a, 0.25));
    }
    t.print(std::cout, "E9b: asymptotic growth rate of S(t) by (C, P)");
}

void bm_schedule_solver(benchmark::State& state) {
    const Tick t = state.range(0);
    for (auto _ : state) {
        gsf::ScheduleSolver s(3, 2);
        benchmark::DoNotOptimize(s.size_at(t));
    }
}
BENCHMARK(bm_schedule_solver)->Arg(100)->Arg(1000)->Arg(10000);

void bm_build_optimal_tree(benchmark::State& state) {
    const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        const auto r = gsf::build_optimal_tree(n, 1, 1);
        benchmark::DoNotOptimize(r.predicted_time);
    }
}
BENCHMARK(bm_build_optimal_tree)->Range(64, 65536);

void bm_simulated_gather(benchmark::State& state) {
    const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
    const auto r = gsf::build_optimal_tree(n, 1, 1);
    for (auto _ : state) {
        const auto out = gsf::run_tree_gather(r.tree, params_of(1, 1));
        benchmark::DoNotOptimize(out.result);
    }
}
BENCHMARK(bm_simulated_gather)->Range(16, 256);

}  // namespace

int main(int argc, char** argv) {
    fastnet::bench::JsonReporter rep("gsf_trees");
    experiment_e8(rep);
    experiment_e9(rep);
    experiment_e10(rep);
    experiment_growth_rates();
    rep.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
