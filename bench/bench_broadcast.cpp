// Experiments E1 + E2 (Section 3 headline claims).
//
// E1 — per-broadcast cost of topology dissemination:
//        branching-paths:  n-1 system calls,  <= 1 + floor(log2 n) units
//        ARPANET flooding: ~2m system calls,  O(eccentricity) units
//        direct unicast:   n-1 system calls,  1 unit, n-1 root sends
//      over random connected graphs of growing size and density.
//
// E2 — Theorem 2 time bound across adversarial tree shapes: paths,
//      stars, complete binary trees, caterpillars, random trees.
//
// The absolute tick counts are simulator units, not the authors' 1988
// testbed; the claims under test are the *shapes*: who is O(n) vs O(m)
// in calls and O(log n) vs O(n) in time.
#include <benchmark/benchmark.h>

#include <iostream>

#include "fastnet.hpp"
#include "json_reporter.hpp"

namespace {

using namespace fastnet;
using topo::BroadcastScheme;

void experiment_e1(bench::JsonReporter& rep, obs::BoundAudit& audit) {
    util::Table t({"n", "m", "scheme", "system_calls", "time_units", "messages",
                   "bound_1+log2n"});
    for (NodeId n : {16u, 64u, 256u, 1024u, 4096u}) {
        Rng rng(n);
        const graph::Graph g = graph::make_random_connected(n, 1, 2 * n, rng);
        for (auto scheme : {BroadcastScheme::kBranchingPaths, BroadcastScheme::kFlooding,
                            BroadcastScheme::kDirectUnicast}) {
            const auto out = topo::run_broadcast(g, scheme, 0);
            FASTNET_ENSURES(out.all_received);
            audit.broadcast(g, scheme, nullptr, out, ModelParams::fast_network());
            t.add(n, g.edge_count(), topo::scheme_name(scheme), out.cost.system_calls,
                  out.time_units, out.cost.direct_messages, 1 + floor_log2(n));
            if (scheme == BroadcastScheme::kBranchingPaths) {
                rep.add("e1_bp_calls_n" + std::to_string(n),
                        static_cast<double>(out.cost.system_calls), "calls");
                rep.add("e1_bp_time_n" + std::to_string(n),
                        static_cast<double>(out.time_units), "units");
            }
        }
    }
    t.print(std::cout,
            "E1: broadcast cost per scheme (paper: O(n) calls + O(log n) time vs "
            "O(m) calls + O(n) time)");
}

void experiment_e1_density(bench::JsonReporter& rep) {
    // Same n, growing density: branching-paths calls stay n-1 while
    // flooding tracks m.
    util::Table t({"n", "m", "bp_calls", "flood_calls", "flood/bp"});
    const NodeId n = 512;
    for (std::uint64_t p_num : {1u, 4u, 16u, 64u}) {
        Rng rng(p_num);
        const graph::Graph g = graph::make_random_connected(n, p_num, 1000, rng);
        const auto bp = topo::run_broadcast(g, BroadcastScheme::kBranchingPaths, 0);
        const auto fl = topo::run_broadcast(g, BroadcastScheme::kFlooding, 0);
        t.add(n, g.edge_count(), bp.cost.system_calls, fl.cost.system_calls,
              static_cast<double>(fl.cost.system_calls) /
                  static_cast<double>(bp.cost.system_calls));
        rep.add("e1b_flood_over_bp_m" + std::to_string(g.edge_count()),
                static_cast<double>(fl.cost.system_calls) /
                    static_cast<double>(bp.cost.system_calls),
                "x");
    }
    t.print(std::cout, "E1b: density sweep at n=512 — flooding scales with m, "
                       "branching-paths does not");
}

void experiment_e2(bench::JsonReporter& rep, obs::BoundAudit& audit) {
    util::Table t({"tree_shape", "n", "time_units", "bound_1+log2n", "within_bound"});
    bool all_within = true;
    auto run_tree = [&t, &all_within, &audit](const char* name, const graph::Graph& g) {
        const auto out = topo::run_broadcast(g, BroadcastScheme::kBranchingPaths, 0);
        FASTNET_ENSURES(out.all_received);
        audit.broadcast(g, BroadcastScheme::kBranchingPaths, nullptr, out,
                        ModelParams::fast_network());
        const unsigned bound = 1 + floor_log2(g.node_count());
        all_within &= out.time_units <= bound;
        t.add(name, g.node_count(), out.time_units, bound, out.time_units <= bound);
    };
    run_tree("path", graph::make_path(1024));
    run_tree("star", graph::make_star(1024));
    run_tree("binary", graph::make_complete_binary_tree(9));
    run_tree("caterpillar", graph::make_caterpillar(256, 3));
    run_tree("kary3", graph::make_kary_tree(1023, 3));
    for (std::uint64_t seed : {1, 2, 3}) {
        Rng rng(seed);
        run_tree("random", graph::make_random_tree(1024, rng));
    }
    rep.add("e2_all_within_bound", all_within ? 1 : 0, "bool");
    t.print(std::cout, "E2: Theorem 2 time bound across tree shapes");
}

// ---- microbenchmarks ----------------------------------------------------

void bm_label_and_decompose(benchmark::State& state) {
    const NodeId n = static_cast<NodeId>(state.range(0));
    Rng rng(1);
    const graph::Graph g = graph::make_random_tree(n, rng);
    const graph::RootedTree tree = graph::min_hop_tree(g, 0);
    for (auto _ : state) {
        auto labels = topo::label_tree(tree);
        auto d = topo::decompose_paths(tree, labels);
        benchmark::DoNotOptimize(d.time_units);
    }
    state.SetComplexityN(n);
}
BENCHMARK(bm_label_and_decompose)->Range(64, 16384)->Complexity(benchmark::oN);

void bm_plan_branching_paths(benchmark::State& state) {
    const NodeId n = static_cast<NodeId>(state.range(0));
    Rng rng(2);
    const graph::Graph g = graph::make_random_tree(n, rng);
    const graph::RootedTree tree = graph::min_hop_tree(g, 0);
    const hw::PortMap ports = hw::canonical_ports(g);
    for (auto _ : state) {
        auto plan = topo::plan_branching_paths(tree, ports);
        benchmark::DoNotOptimize(plan.messages.size());
    }
}
BENCHMARK(bm_plan_branching_paths)->Range(64, 4096);

void bm_full_broadcast_simulation(benchmark::State& state) {
    const NodeId n = static_cast<NodeId>(state.range(0));
    Rng rng(3);
    const graph::Graph g = graph::make_random_connected(n, 1, 2 * n, rng);
    for (auto _ : state) {
        const auto out =
            topo::run_broadcast(g, BroadcastScheme::kBranchingPaths, 0);
        benchmark::DoNotOptimize(out.cost.system_calls);
    }
}
BENCHMARK(bm_full_broadcast_simulation)->Range(64, 1024);

}  // namespace

int main(int argc, char** argv) {
    fastnet::bench::JsonReporter rep("broadcast");
    // Theorem 2 + flooding-contrast bounds, audited across every run and
    // exported for fastnet_report; a violated bound fails the bench.
    fastnet::obs::BoundAudit audit("broadcast");
    experiment_e1(rep, audit);
    experiment_e1_density(rep);
    experiment_e2(rep, audit);
    rep.write();
    fastnet::exec::write_text_file("AUDIT_broadcast.json", fastnet::obs::audit_json(audit));
    if (!audit.pass()) {
        std::cerr << "AUDIT FAILED: " << audit.violation_count()
                  << " theorem-bound violation(s); see AUDIT_broadcast.json\n";
        return 1;
    }
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
