// M1: memory at scale — bytes/node and ns/hop from 2^14 to 10^6 nodes.
//
// The arena/SoA node-state refactor (docs/PERF.md "Memory at scale")
// claims two things a microbench cannot show: (1) per-node footprint is
// flat in n — a million-node cluster costs the same bytes/node as a
// sixteen-thousand-node one, because nothing per-node is O(degree
// envelope) or O(n); (2) the compaction did not tax the hop fast path.
// This bench proves both with hard gates:
//
//   bytes_per_node_n<k>   — total cluster footprint / n after a full E6
//                           ring election at n (ledger from
//                           Cluster::sample_memory; capacity-based, so
//                           machine-independent). GATE: the 10^6-node
//                           figure must stay within 1.5x of the 2^14 one.
//   ns_per_hop_n<k>       — steady-state relay hop cost on an n-node
//                           path, same harness as bench_sim_core's
//                           hop_ns but across the size sweep.
//   hop_ns / broadcast_e2e_16384_ms
//                         — exact mirrors of the bench_sim_core
//                           configurations. GATE: within 5% of the
//                           recorded baseline (bench/history/<rev>/
//                           BENCH_sim_core.json, resolved through the
//                           history INDEX or $FASTNET_BENCH_BASELINE;
//                           the gate logs and skips when no baseline
//                           file is reachable).
//   build_allocs_per_node_n<k>
//                         — heap allocations per node while
//                           constructing the cluster (the arena turns
//                           per-node container churn into a handful of
//                           chunk mmaps; target: O(0.1)/node).
//
// Everything is deterministic except wall-clock: fixed seeds, fixed
// priorities (node id — Chang-Roberts' 2n-1 best case, so the election
// stays O(n) messages at n = 10^6 on the one-core CI container).
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>
#include <string>

#include "fastnet.hpp"
#include "json_reporter.hpp"
#include "obs/json.hpp"
#include "sim/trace_spill.hpp"

// ---- global allocation counter -----------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}

void* operator new(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void* p = nullptr;
    if (posix_memalign(&p, static_cast<std::size_t>(al), size ? size : 1) != 0)
        throw std::bad_alloc();
    return p;
}
void* operator new[](std::size_t size, std::align_val_t al) { return ::operator new(size, al); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace fastnet;

constexpr NodeId kSizes[] = {16'384, 65'536, 262'144, 1'000'000};
constexpr NodeId kSmallest = kSizes[0];
constexpr NodeId kLargest = kSizes[3];

// ---- baseline (PR 6 snapshot) ------------------------------------------

/// The two bench_sim_core numbers this PR must not regress past 5%.
struct Baseline {
    double hop_ns = 0;
    double broadcast_e2e_16384_ms = 0;
    bool loaded = false;
    std::string path;
};

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) return {};
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string last_nonempty_line(const std::string& text) {
    std::string last;
    std::istringstream in(text);
    for (std::string line; std::getline(in, line);)
        if (!line.empty()) last = line;
    return last;
}

/// Resolves the most recent recorded BENCH_sim_core.json: explicit
/// $FASTNET_BENCH_BASELINE wins; otherwise walk candidate prefixes to
/// bench/history, read the INDEX's last entry, and load that snapshot.
Baseline load_baseline() {
    Baseline b;
    std::string json;
    if (const char* env = std::getenv("FASTNET_BENCH_BASELINE")) {
        b.path = env;
        json = read_file(b.path);
    } else {
        for (const char* prefix : {"bench/history", "../bench/history", "../../bench/history"}) {
            const std::string index = read_file(std::string(prefix) + "/INDEX");
            if (index.empty()) continue;
            b.path = std::string(prefix) + "/" + last_nonempty_line(index) +
                     "/BENCH_sim_core.json";
            json = read_file(b.path);
            if (!json.empty()) break;
        }
    }
    if (json.empty()) return b;

    obs::JsonValue doc;
    std::string err;
    if (!obs::json_parse(json, doc, &err)) {
        std::cout << "  baseline " << b.path << " unparsable: " << err << "\n";
        return b;
    }
    const obs::JsonValue* results = doc.find("results");
    if (results == nullptr || !results->is_array()) return b;
    for (const obs::JsonValue& entry : results->array) {
        const obs::JsonValue* name = entry.find("name");
        const obs::JsonValue* value = entry.find("value");
        if (name == nullptr || value == nullptr || !value->is_number()) continue;
        if (name->string == "hop_ns") b.hop_ns = value->as_double();
        if (name->string == "broadcast_e2e_16384_ms")
            b.broadcast_e2e_16384_ms = value->as_double();
    }
    b.loaded = b.hop_ns > 0 && b.broadcast_e2e_16384_ms > 0;
    return b;
}

// ---- bytes/node across the size sweep ----------------------------------

/// Builds an n-node E6 ring election cluster, runs it to completion and
/// returns the memory ledger plus build-time allocation stats. Sampling
/// is manual (sample_memory at quiescence): the footprint it reads is
/// capacity-based and deterministic, so one sample at the end is the
/// whole story and the 10^6-node run skips the windowed re-entry loop.
struct ScalePoint {
    double bytes_per_node = 0;
    double arena_bytes_per_node = 0;
    double build_allocs_per_node = 0;
    double election_ms = 0;
    std::uint64_t peak_node_bytes = 0;
};

ScalePoint measure_ring_election(NodeId n) {
    const graph::Graph g = graph::make_cycle(n);

    const std::uint64_t allocs_before = g_alloc_count.load();
    node::Cluster cluster(g, [](NodeId u) {
        return std::make_unique<elect::ChangRobertsProtocol>(u);
    });
    const std::uint64_t build_allocs = g_alloc_count.load() - allocs_before;

    const auto t0 = std::chrono::steady_clock::now();
    cluster.start_all(0);
    cluster.run();
    const auto t1 = std::chrono::steady_clock::now();

    // Every node must have decided — the run actually happened.
    FASTNET_ENSURES(cluster.protocol_as<elect::ChangRobertsProtocol>(0).known_leader() !=
                    kNoNode);

    cluster.sample_memory();
    const cost::MemorySample* mem = cluster.metrics().memory();
    FASTNET_ENSURES(mem != nullptr);

    ScalePoint p;
    p.bytes_per_node = static_cast<double>(mem->breakdown.total()) / n;
    p.arena_bytes_per_node = static_cast<double>(mem->breakdown.arena_used) / n;
    p.build_allocs_per_node = static_cast<double>(build_allocs) / n;
    p.election_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    p.peak_node_bytes = cluster.metrics().peak_node_bytes();
    return p;
}

// ---- ns/hop across the size sweep --------------------------------------

double measure_hop_ns(NodeId n) {
    const graph::Graph g = graph::make_path(n);
    sim::Simulator sim;
    cost::Metrics metrics(g.node_count());
    hw::Network net(sim, g, ModelParams::traditional(), metrics);
    std::uint64_t delivered = 0;
    net.set_ncu_sink(n - 1, [&](const hw::Delivery&) { ++delivered; });

    std::vector<NodeId> path(n);
    for (NodeId u = 0; u < n; ++u) path[u] = u;
    const hw::AnrHeader header = net.route(path);

    net.send(0, header, nullptr);  // warm pools and caches
    sim.run();
    const double ns = bench::min_time_ns([&] {
        net.send(0, header, nullptr);
        sim.run();
    });
    if (delivered == 0) std::abort();
    return ns / static_cast<double>(n - 1);
}

// ---- spill-bounded tracing at 10^6 nodes -------------------------------

/// A fully traced million-node election with the trace spilling to disk
/// under a hard resident budget — the acceptance run of the streaming
/// observability PR: resident trace memory stays under the configured
/// budget (ENSURES; resident_bytes() is capacity-based and never
/// shrinks, so one end-of-run check is the peak) while every record
/// survives on disk (no ring truncation, merge count == recorded
/// count).
struct SpillPoint {
    double election_ms = 0;
    std::uint64_t recorded = 0;
    std::uint64_t spilled_bytes = 0;
    std::size_t resident_bytes = 0;
};

SpillPoint measure_spill_traced_election(NodeId n) {
    constexpr std::size_t kBudget = 4 << 20;  // 4 MiB resident for ~10^7 records
    const std::string path = "BENCH_memory_scale.fnspill";

    auto trace = std::make_shared<sim::Trace>(std::size_t{1} << 16);
    // Message-level kinds only: per-hop records of a 10^6-node ring lap
    // would be pure volume without changing what the gate proves.
    trace->disable_all();
    trace->set_enabled(sim::TraceKind::kSend, true);
    trace->set_enabled(sim::TraceKind::kDeliver, true);
    sim::TraceSpillConfig spill;
    spill.path = path;
    spill.resident_budget_bytes = kBudget;
    std::string error;
    FASTNET_ENSURES_MSG(trace->enable_spill(spill, &error), "spill enable failed");

    node::ClusterConfig cfg;
    cfg.trace = trace;
    node::Cluster cluster(graph::make_cycle(n), [](NodeId u) {
        return std::make_unique<elect::ChangRobertsProtocol>(u);
    }, cfg);

    const auto t0 = std::chrono::steady_clock::now();
    cluster.start_all(0);
    cluster.run();  // finishes the spill and folds TraceStats into metrics
    const auto t1 = std::chrono::steady_clock::now();
    FASTNET_ENSURES(cluster.protocol_as<elect::ChangRobertsProtocol>(0).known_leader() !=
                    kNoNode);

    SpillPoint p;
    p.election_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    p.resident_bytes = trace->resident_bytes();
    const cost::TraceStats& stats = cluster.metrics().trace_stats();
    p.recorded = stats.total_recorded;
    p.spilled_bytes = stats.spilled_bytes;

    // The gates: bounded memory, nothing truncated, everything on disk.
    FASTNET_ENSURES_MSG(p.resident_bytes <= kBudget,
                        "resident trace memory exceeded the spill budget");
    FASTNET_ENSURES_MSG(stats.dropped == 0, "spill-enabled trace dropped records");
    FASTNET_ENSURES_MSG(stats.spilled_records == stats.total_recorded,
                        "spill file is missing records");
    sim::SpillMerge merge;
    FASTNET_ENSURES_MSG(merge.open({path}, &error), "spill file unreadable");
    std::uint64_t merged = 0;
    for (sim::TraceRecord r; merge.next(r);) ++merged;
    FASTNET_ENSURES_MSG(merged == stats.total_recorded,
                        "merged record count != recorded count");

    std::error_code ec;
    std::filesystem::remove(path, ec);
    return p;
}

// ---- bench_sim_core mirrors (the 5% regression gates) ------------------

/// Exact copy of bench_sim_core's hop harness (4096-node path) so the
/// number is comparable to the recorded hop_ns baseline.
double mirror_hop_ns() { return measure_hop_ns(4096); }

/// Exact copy of bench_sim_core's 16384-node broadcast configuration.
double mirror_broadcast_e2e_ms() {
    Rng rng(3);
    const graph::Graph g = graph::make_random_connected(16'384, 1, 2 * 16'384, rng);
    const double ns = bench::min_time_ns(
        [&] {
            const auto res = topo::run_broadcast(g, topo::BroadcastScheme::kBranchingPaths, 0);
            FASTNET_ENSURES(res.all_received);
        },
        std::chrono::milliseconds(500));
    return ns / 1e6;
}

}  // namespace

int main() {
    bench::JsonReporter out("memory_scale");
    std::cout << "== M1: memory at scale (" << kSmallest << " .. " << kLargest
              << " nodes) ==\n";

    double bpn_smallest = 0, bpn_largest = 0;
    for (NodeId n : kSizes) {
        const ScalePoint p = measure_ring_election(n);
        const std::string suffix = "_n" + std::to_string(n);
        out.add("bytes_per_node" + suffix, p.bytes_per_node, "bytes");
        out.add("arena_bytes_per_node" + suffix, p.arena_bytes_per_node, "bytes");
        out.add("build_allocs_per_node" + suffix, p.build_allocs_per_node, "allocs");
        out.add("election_e2e" + suffix + "_ms", p.election_ms, "ms");
        std::cout << "  n=" << n << ": " << p.bytes_per_node << " bytes/node ("
                  << p.arena_bytes_per_node << " arena), "
                  << p.build_allocs_per_node << " build allocs/node, election "
                  << p.election_ms << " ms, peak node " << p.peak_node_bytes
                  << " B\n";
        if (n == kSmallest) bpn_smallest = p.bytes_per_node;
        if (n == kLargest) bpn_largest = p.bytes_per_node;
    }

    for (NodeId n : kSizes) {
        const double ns = measure_hop_ns(n);
        out.add("ns_per_hop_n" + std::to_string(n), ns, "ns");
        std::cout << "  n=" << n << ": " << ns << " ns/hop\n";
    }

    // GATE 1 — flatness: growing the cluster 61x may not grow the
    // per-node footprint past 1.5x. (In practice it *shrinks*: fixed
    // costs amortize; the margin absorbs allocator capacity rounding.)
    std::cout << "  flatness: " << bpn_largest << " / " << bpn_smallest << " = "
              << bpn_largest / bpn_smallest << " (gate 1.5)\n";
    FASTNET_ENSURES_MSG(bpn_largest <= 1.5 * bpn_smallest,
                        "bytes/node grew superlinearly with n");

    // GATE — bounded-memory tracing at 10^6 nodes (spill to disk).
    {
        const SpillPoint sp = measure_spill_traced_election(kLargest);
        out.add("spill_traced_election_n1000000_ms", sp.election_ms, "ms");
        out.add("spill_recorded_n1000000", static_cast<double>(sp.recorded), "records");
        out.add("spill_bytes_n1000000", static_cast<double>(sp.spilled_bytes), "bytes");
        out.add("spill_resident_bytes_n1000000",
                static_cast<double>(sp.resident_bytes), "bytes");
        std::cout << "  spill-traced n=" << kLargest << ": " << sp.recorded
                  << " records, " << sp.spilled_bytes << " B on disk, "
                  << sp.resident_bytes << " B resident (budget 4 MiB), election "
                  << sp.election_ms << " ms\n";
    }

    // GATE 2 — fast-path regression vs the recorded PR 6 snapshot.
    const double hop = mirror_hop_ns();
    const double bcast = mirror_broadcast_e2e_ms();
    out.add("hop_ns", hop, "ns");
    out.add("broadcast_e2e_16384_ms", bcast, "ms");

    const Baseline base = load_baseline();
    if (base.loaded) {
        std::cout << "  baseline " << base.path << ": hop " << base.hop_ns
                  << " ns (now " << hop << "), broadcast "
                  << base.broadcast_e2e_16384_ms << " ms (now " << bcast << ")\n";
        FASTNET_ENSURES_MSG(hop <= 1.05 * base.hop_ns,
                            "hop fast path regressed more than 5% vs baseline");
        FASTNET_ENSURES_MSG(bcast <= 1.05 * base.broadcast_e2e_16384_ms,
                            "broadcast e2e regressed more than 5% vs baseline");
    } else {
        std::cout << "  no baseline snapshot reachable "
                  << "(set FASTNET_BENCH_BASELINE); regression gate skipped\n";
    }

    out.write();
    return 0;
}
