// Experiments E6 + E7 + E13 (Section 4).
//
// E6 — the new election: <= 6n direct messages (system calls), O(n)
//      time, across topology families and sizes (Theorem 5).
// E7 — traditional baselines under the system-call measure: Chang-
//      Roberts (random priorities, expected Theta(n log n)) and
//      Hirschberg-Sinclair (worst-case Theta(n log n)) versus 6n.
// E13 — Lemma 6: capture histogram by victim phase (<= n / 2^p).
//
// The E6/E7 grids — dozens of independent elections — run through
// exec::sweep_map; the E7 grid is additionally timed serial vs parallel
// and everything lands in BENCH_election.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <iostream>

#include "fastnet.hpp"
#include "json_reporter.hpp"

namespace {

using namespace fastnet;
using elect::ElectionOptions;

struct E6Point {
    std::string name;
    graph::Graph graph;
};

void experiment_e6(bench::JsonReporter& out, obs::BoundAudit& audit) {
    std::vector<E6Point> grid;
    for (NodeId n : {64u, 256u, 1024u}) {
        Rng rng(n);
        grid.push_back({"ring" + std::to_string(n), graph::make_cycle(n)});
        grid.push_back({"random" + std::to_string(n),
                        graph::make_random_connected(n, 1, 20, rng)});
        grid.push_back({"tree" + std::to_string(n), graph::make_random_tree(n, rng)});
    }
    grid.push_back({"complete128", graph::make_complete(128)});
    grid.push_back({"grid32x32", graph::make_grid(32, 32)});
    grid.push_back({"hypercube10", graph::make_hypercube(10)});

    const auto rows = exec::sweep_map(grid, [](const E6Point& p, exec::TaskContext&) {
        ElectionOptions opt;
        opt.announce = false;
        const auto r = elect::run_election(p.graph, opt);
        FASTNET_ENSURES(r.unique_leader);
        return r;
    });

    util::Table t({"topology", "n", "messages", "6n", "within", "time_ticks",
                   "max_anr_len"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const NodeId n = grid[i].graph.node_count();
        ElectionOptions audit_opt;
        audit_opt.announce = false;
        audit.election(grid[i].graph, audit_opt, rows[i]);
        t.add(grid[i].name.c_str(), n, rows[i].election_messages, 6ull * n,
              rows[i].election_messages <= 6ull * n, rows[i].cost.completion_time,
              rows[i].cost.max_header_len);
        out.add("e6_messages_" + grid[i].name,
                static_cast<double>(rows[i].election_messages), "messages");
    }
    t.print(std::cout, "E6: new election — Theorem 5's 6n message bound and O(n) time");
}

// ---- E7: ours vs ring baselines, one task per (n, algorithm, run) -------

struct E7Point {
    NodeId n = 0;
    enum class Algo { kOurs, kChangRoberts, kHirschbergSinclair } algo = Algo::kOurs;
    int run = 0;  ///< Priority-permutation seed for the baselines.
};

std::uint64_t run_e7_point(const E7Point& p) {
    switch (p.algo) {
        case E7Point::Algo::kOurs: {
            ElectionOptions opt;
            opt.announce = false;
            return elect::run_election(graph::make_cycle(p.n), opt).election_messages;
        }
        case E7Point::Algo::kChangRoberts:
            return elect::run_chang_roberts(p.n, {}, p.run).election_messages;
        case E7Point::Algo::kHirschbergSinclair:
            return elect::run_hirschberg_sinclair(p.n, {}, p.run).election_messages;
    }
    return 0;
}

void experiment_e7(bench::JsonReporter& out) {
    const std::vector<NodeId> sizes{32u, 64u, 128u, 256u, 512u, 1024u};
    const int runs = 5;
    std::vector<E7Point> grid;
    for (NodeId n : sizes) {
        grid.push_back({n, E7Point::Algo::kOurs, 0});
        for (int s = 1; s <= runs; ++s) grid.push_back({n, E7Point::Algo::kChangRoberts, s});
        for (int s = 1; s <= runs; ++s)
            grid.push_back({n, E7Point::Algo::kHirschbergSinclair, s});
    }

    using Clock = std::chrono::steady_clock;
    auto run_grid = [&grid](unsigned threads) {
        exec::SweepOptions opt;
        opt.threads = threads;
        return exec::sweep_map(
            grid, [](const E7Point& p, exec::TaskContext&) { return run_e7_point(p); }, opt);
    };
    const auto t0 = Clock::now();
    const auto serial = run_grid(1);
    const auto t1 = Clock::now();
    const auto rows = run_grid(exec::ThreadPool::hardware_threads());
    const auto t2 = Clock::now();
    FASTNET_ENSURES_MSG(serial == rows, "serial/parallel sweep divergence");

    util::Table t({"n", "ours", "chang_roberts_avg", "hirschberg_sinclair",
                   "n*log2n", "cr/ours", "hs/ours"});
    std::size_t i = 0;
    for (NodeId n : sizes) {
        const std::uint64_t ours = rows[i++];
        std::uint64_t cr_total = 0, hs_total = 0;
        for (int s = 0; s < runs; ++s) cr_total += rows[i++];
        for (int s = 0; s < runs; ++s) hs_total += rows[i++];
        const std::uint64_t cr = cr_total / runs;
        const std::uint64_t hs_avg = hs_total / runs;
        t.add(n, ours, cr, hs_avg, static_cast<std::uint64_t>(n * std::log2(n)),
              static_cast<double>(cr) / static_cast<double>(ours),
              static_cast<double>(hs_avg) / static_cast<double>(ours));
        out.add("e7_ours_n" + std::to_string(n), static_cast<double>(ours), "messages");
        out.add("e7_cr_avg_n" + std::to_string(n), static_cast<double>(cr), "messages");
        out.add("e7_hs_avg_n" + std::to_string(n), static_cast<double>(hs_avg), "messages");
    }
    t.print(std::cout,
            "E7: rings — traditional algorithms pay Theta(n log n) system calls; "
            "the new algorithm stays <= 6n (crossover grows with n)");

    const double serial_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(t1 - t0).count();
    const double parallel_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(t2 - t1).count();
    out.add("e7_sweep_serial_ms", serial_ms, "ms");
    out.add("e7_sweep_parallel_ms", parallel_ms, "ms");
    out.add("e7_sweep_threads", exec::ThreadPool::hardware_threads(), "threads");
    out.add("e7_sweep_speedup", serial_ms / parallel_ms, "x");
}

void experiment_e13(bench::JsonReporter& out, obs::BoundAudit& audit) {
    const NodeId n = 2048;
    Rng rng(13);
    const graph::Graph g = graph::make_random_connected(n, 1, 100, rng);
    const auto r = elect::run_election(g);
    FASTNET_ENSURES(r.unique_leader);
    audit.election(g, ElectionOptions{}, r);
    util::Table t({"victim_phase", "captures", "lemma6_bound_n/2^p", "within"});
    bool all_within = true;
    for (std::size_t p = 0; p < r.captures_by_phase.size(); ++p) {
        const bool within = r.captures_by_phase[p] <= (static_cast<std::uint64_t>(n) >> p);
        all_within &= within;
        t.add(p, r.captures_by_phase[p], static_cast<std::uint64_t>(n) >> p, within);
    }
    out.add("e13_lemma6_all_within", all_within ? 1 : 0, "bool");
    t.print(std::cout, "E13: Lemma 6 — captured domains per phase (n = 2048)");
}

void experiment_e6_time(bench::JsonReporter& out) {
    const std::vector<NodeId> sizes{128u, 256u, 512u, 1024u, 2048u};
    const auto rows = exec::sweep_map(sizes, [](NodeId n, exec::TaskContext&) {
        Rng rng(n + 3);
        const graph::Graph g = graph::make_random_connected(n, 1, 40, rng);
        return elect::run_election(g).cost.completion_time;
    });
    util::Table t({"n", "completion_ticks", "ticks/n"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        t.add(sizes[i], rows[i], static_cast<double>(rows[i]) / sizes[i]);
        out.add("e6b_ticks_per_n_" + std::to_string(sizes[i]),
                static_cast<double>(rows[i]) / sizes[i], "ticks_per_node");
    }
    t.print(std::cout, "E6b: election time grows O(n) (P = 1, C = 0)");
}

void bm_election_end_to_end(benchmark::State& state) {
    const NodeId n = static_cast<NodeId>(state.range(0));
    Rng rng(9);
    const graph::Graph g = graph::make_random_connected(n, 1, 20, rng);
    for (auto _ : state) {
        const auto out = elect::run_election(g);
        benchmark::DoNotOptimize(out.leader);
    }
}
BENCHMARK(bm_election_end_to_end)->Range(32, 1024);

void bm_inout_absorb(benchmark::State& state) {
    const NodeId n = static_cast<NodeId>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        elect::InOutTree big(0);
        big.add_out(1, 0, 1, 1);
        state.ResumeTiming();
        for (NodeId v = 1; v < n; ++v) {
            elect::InOutTree single(v);
            if (v + 1 < n) single.add_out(v + 1, v, 1, 1);
            big.absorb(single, v);
        }
        benchmark::DoNotOptimize(big.in_count());
    }
}
BENCHMARK(bm_inout_absorb)->Range(64, 512);

}  // namespace

int main(int argc, char** argv) {
    bench::JsonReporter out("election");
    // Theorem 5 / Lemma 6 bounds, audited across the E6/E13 runs and
    // exported for fastnet_report; a violated bound fails the bench.
    obs::BoundAudit audit("election");
    experiment_e6(out, audit);
    experiment_e6_time(out);
    experiment_e7(out);
    experiment_e13(out, audit);
    out.write();
    exec::write_text_file("AUDIT_election.json", obs::audit_json(audit));
    if (!audit.pass()) {
        std::cerr << "AUDIT FAILED: " << audit.violation_count()
                  << " theorem-bound violation(s); see AUDIT_election.json\n";
        return 1;
    }
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
