// Experiments E6 + E7 + E13 (Section 4).
//
// E6 — the new election: <= 6n direct messages (system calls), O(n)
//      time, across topology families and sizes (Theorem 5).
// E7 — traditional baselines under the system-call measure: Chang-
//      Roberts (random priorities, expected Theta(n log n)) and
//      Hirschberg-Sinclair (worst-case Theta(n log n)) versus 6n.
// E13 — Lemma 6: capture histogram by victim phase (<= n / 2^p).
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "fastnet.hpp"

namespace {

using namespace fastnet;
using elect::ElectionOptions;

void experiment_e6() {
    util::Table t({"topology", "n", "messages", "6n", "within", "time_ticks",
                   "max_anr_len"});
    ElectionOptions opt;
    opt.announce = false;
    auto probe = [&](const char* name, const graph::Graph& g) {
        const auto out = elect::run_election(g, opt);
        FASTNET_ENSURES(out.unique_leader);
        t.add(name, g.node_count(), out.election_messages, 6ull * g.node_count(),
              out.election_messages <= 6ull * g.node_count(), out.cost.completion_time,
              out.cost.max_header_len);
    };
    for (NodeId n : {64u, 256u, 1024u}) {
        Rng rng(n);
        probe("ring", graph::make_cycle(n));
        probe("random", graph::make_random_connected(n, 1, 20, rng));
        probe("tree", graph::make_random_tree(n, rng));
    }
    probe("complete128", graph::make_complete(128));
    probe("grid32x32", graph::make_grid(32, 32));
    probe("hypercube10", graph::make_hypercube(10));
    t.print(std::cout, "E6: new election — Theorem 5's 6n message bound and O(n) time");
}

void experiment_e7() {
    util::Table t({"n", "ours", "chang_roberts_avg", "hirschberg_sinclair",
                   "n*log2n", "cr/ours", "hs/ours"});
    ElectionOptions opt;
    opt.announce = false;
    for (NodeId n : {32u, 64u, 128u, 256u, 512u, 1024u}) {
        const auto ours = elect::run_election(graph::make_cycle(n), opt);
        // Baseline expected costs: average over priority permutations.
        std::uint64_t cr_total = 0, hs_total = 0;
        const int runs = 5;
        for (int s = 1; s <= runs; ++s) {
            cr_total += elect::run_chang_roberts(n, {}, s).election_messages;
            hs_total += elect::run_hirschberg_sinclair(n, {}, s).election_messages;
        }
        const std::uint64_t cr = cr_total / runs;
        const std::uint64_t hs_avg = hs_total / runs;
        t.add(n, ours.election_messages, cr, hs_avg,
              static_cast<std::uint64_t>(n * std::log2(n)),
              static_cast<double>(cr) / static_cast<double>(ours.election_messages),
              static_cast<double>(hs_avg) /
                  static_cast<double>(ours.election_messages));
    }
    t.print(std::cout,
            "E7: rings — traditional algorithms pay Theta(n log n) system calls; "
            "the new algorithm stays <= 6n (crossover grows with n)");
}

void experiment_e13() {
    const NodeId n = 2048;
    Rng rng(13);
    const graph::Graph g = graph::make_random_connected(n, 1, 100, rng);
    const auto out = elect::run_election(g);
    FASTNET_ENSURES(out.unique_leader);
    util::Table t({"victim_phase", "captures", "lemma6_bound_n/2^p", "within"});
    for (std::size_t p = 0; p < out.captures_by_phase.size(); ++p)
        t.add(p, out.captures_by_phase[p], static_cast<std::uint64_t>(n) >> p,
              out.captures_by_phase[p] <= (static_cast<std::uint64_t>(n) >> p));
    t.print(std::cout, "E13: Lemma 6 — captured domains per phase (n = 2048)");
}

void experiment_e6_time() {
    util::Table t({"n", "completion_ticks", "ticks/n"});
    for (NodeId n : {128u, 256u, 512u, 1024u, 2048u}) {
        Rng rng(n + 3);
        const graph::Graph g = graph::make_random_connected(n, 1, 40, rng);
        const auto out = elect::run_election(g);
        t.add(n, out.cost.completion_time,
              static_cast<double>(out.cost.completion_time) / n);
    }
    t.print(std::cout, "E6b: election time grows O(n) (P = 1, C = 0)");
}

void bm_election_end_to_end(benchmark::State& state) {
    const NodeId n = static_cast<NodeId>(state.range(0));
    Rng rng(9);
    const graph::Graph g = graph::make_random_connected(n, 1, 20, rng);
    for (auto _ : state) {
        const auto out = elect::run_election(g);
        benchmark::DoNotOptimize(out.leader);
    }
}
BENCHMARK(bm_election_end_to_end)->Range(32, 1024);

void bm_inout_absorb(benchmark::State& state) {
    const NodeId n = static_cast<NodeId>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        elect::InOutTree big(0);
        big.add_out(1, 0, 1, 1);
        state.ResumeTiming();
        for (NodeId v = 1; v < n; ++v) {
            elect::InOutTree single(v);
            if (v + 1 < n) single.add_out(v + 1, v, 1, 1);
            big.absorb(single, v);
        }
        benchmark::DoNotOptimize(big.in_count());
    }
}
BENCHMARK(bm_inout_absorb)->Range(64, 512);

}  // namespace

int main(int argc, char** argv) {
    experiment_e6();
    experiment_e6_time();
    experiment_e7();
    experiment_e13();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
