// Experiments E11 + E12 (Section 5.2).
//
// E11 — optimal completion time for n nodes as a function of the C/P
//       mix, computed over the iP+jC time lattice (the paper's "at most
//       n^2 points" observation), and how the optimal tree's shape
//       (root degree / depth) shifts with C/P.
// E12 — optimal tree versus star and k-ary baselines on the simulated
//       complete graph: crossovers and the non-degeneracy of the new
//       model.
#include <benchmark/benchmark.h>

#include <iostream>

#include "fastnet.hpp"
#include "json_reporter.hpp"

namespace {

using namespace fastnet;

ModelParams params_of(Tick c, Tick p) {
    ModelParams m;
    m.hop_delay = c;
    m.ncu_delay = p;
    return m;
}

void experiment_e11() {
    util::Table t({"C", "P", "n", "t_opt", "root_degree", "depth"});
    for (auto [c, p] : std::vector<std::pair<Tick, Tick>>{
             {0, 1}, {1, 4}, {1, 2}, {1, 1}, {2, 1}, {4, 1}, {16, 1}}) {
        for (std::uint64_t n : {16ull, 256ull, 4096ull}) {
            const auto r = gsf::build_optimal_tree(n, c, p);
            t.add(c, p, n, r.predicted_time, r.tree.children(0).size(), r.tree.height());
        }
    }
    t.print(std::cout,
            "E11: optimal time and tree shape vs C/P — small C/P favors bushy "
            "(binomial-like) trees, large C/P favors deeper pipelines");
}

void experiment_e11_traditional_limit() {
    util::Table t({"P (C=8)", "t_opt(n=1024)", "root_degree"});
    for (Tick p : {8, 4, 2, 1}) {
        const auto r = gsf::build_optimal_tree(1024, 8, p);
        t.add(p, r.predicted_time, r.tree.children(0).size());
    }
    // P = 0 is the traditional model: the star absorbs everything at t = C.
    t.add(0, gsf::optimal_gather_time(1024, 8, 0), std::size_t{1023});
    t.print(std::cout,
            "E11b: as P -> 0 the optimum approaches the traditional model's star");
}

void experiment_e12(bench::JsonReporter& rep) {
    util::Table t({"C", "P", "n", "optimal", "star", "binary", "8-ary",
                   "star/optimal"});
    for (auto [c, p] : std::vector<std::pair<Tick, Tick>>{{0, 1}, {1, 1}, {4, 1}, {1, 2}}) {
        for (NodeId n : {16u, 64u, 256u}) {
            const auto r = gsf::build_optimal_tree(n, c, p);
            const auto opt = gsf::run_tree_gather(r.tree, params_of(c, p));
            const auto star = gsf::run_tree_gather(gsf::make_star_tree(n), params_of(c, p));
            const auto bin =
                gsf::run_tree_gather(gsf::make_kary_gather_tree(n, 2), params_of(c, p));
            const auto k8 =
                gsf::run_tree_gather(gsf::make_kary_gather_tree(n, 8), params_of(c, p));
            FASTNET_ENSURES(opt.correct && star.correct && bin.correct && k8.correct);
            FASTNET_ENSURES(opt.completion == r.predicted_time);
            t.add(c, p, n, opt.completion, star.completion, bin.completion,
                  k8.completion,
                  static_cast<double>(star.completion) /
                      static_cast<double>(opt.completion));
            if (n == 256u)
                rep.add("e12_star_over_opt_c" + std::to_string(c) + "_p" + std::to_string(p),
                        static_cast<double>(star.completion) /
                            static_cast<double>(opt.completion),
                        "x");
        }
    }
    t.print(std::cout,
            "E12: simulated gather on complete graphs — the optimal tree beats "
            "star and k-ary baselines; the gap grows with n and with P/C");
}

void experiment_e12_crossover(bench::JsonReporter& rep) {
    // Where does the star stop being competitive? For tiny n the star IS
    // the optimal tree; find the first n where it is strictly worse.
    util::Table t({"C", "P", "first_n_star_suboptimal"});
    for (auto [c, p] : std::vector<std::pair<Tick, Tick>>{{1, 1}, {4, 1}, {16, 1}, {64, 1}}) {
        NodeId crossover = 0;
        for (NodeId n = 2; n <= 512; ++n) {
            const Tick star = gsf::predicted_completion(gsf::make_star_tree(n), c, p);
            const Tick opt = gsf::optimal_gather_time(n, c, p);
            if (star > opt) {
                crossover = n;
                break;
            }
        }
        t.add(c, p, crossover);
        rep.add("e12b_crossover_c" + std::to_string(c), crossover, "n");
    }
    t.print(std::cout,
            "E12b: star-vs-optimal crossover — larger C/P keeps the star "
            "competitive longer (the traditional model is the C/P -> inf limit)");
}

void bm_optimal_time(benchmark::State& state) {
    const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(gsf::optimal_gather_time(n, 3, 2));
}
BENCHMARK(bm_optimal_time)->Range(256, 1 << 20);

void bm_predicted_completion(benchmark::State& state) {
    const auto r = gsf::build_optimal_tree(static_cast<std::uint64_t>(state.range(0)), 1, 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(gsf::predicted_completion(r.tree, 1, 1));
}
BENCHMARK(bm_predicted_completion)->Range(256, 65536);

}  // namespace

int main(int argc, char** argv) {
    fastnet::bench::JsonReporter rep("gsf_opt");
    experiment_e11();
    experiment_e11_traditional_limit();
    experiment_e12(rep);
    experiment_e12_crossover(rep);
    rep.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
