// Ablation A5 + application-level demonstration: PARIS call setup with
// selective copy versus hop-by-hop (pre-PARIS software forwarding).
//
// The model's promise for its motivating application: establishing a
// call across k switches costs ONE time unit and k system calls with
// the copy mechanism; without it, latency grows linearly with k.
// A second table runs a call-churn workload and reports admission
// behaviour under varying link capacity.
#include <benchmark/benchmark.h>

#include <iostream>

#include "fastnet.hpp"
#include "json_reporter.hpp"

namespace {

using namespace fastnet;
using paris::CallRequest;

void experiment_setup_latency(bench::JsonReporter& rep) {
    util::Table t({"path_hops", "copy_setup_ticks", "seq_setup_ticks", "slowdown",
                   "copy_calls", "seq_calls"});
    for (NodeId n : {4u, 8u, 16u, 32u, 64u}) {
        auto run_mode = [n](bool copy) {
            const graph::Graph g = graph::make_path(n);
            std::map<NodeId, std::vector<CallRequest>> scripts{
                {0, {CallRequest{1, n - 1, 1, -1}}}};
            node::Cluster c(g, paris::make_call_agents(g, 4, scripts, copy));
            c.start_all(0);
            c.run();
            FASTNET_ENSURES(c.protocol_as<paris::CallAgentProtocol>(0).calls_active() == 1);
            return std::pair{c.simulator().now(),
                             c.metrics().total_message_system_calls()};
        };
        const auto [t_copy, c_copy] = run_mode(true);
        const auto [t_seq, c_seq] = run_mode(false);
        t.add(n - 1, t_copy, t_seq,
              static_cast<double>(t_seq) / static_cast<double>(t_copy), c_copy, c_seq);
        rep.add("a5_seq_over_copy_hops" + std::to_string(n - 1),
                static_cast<double>(t_seq) / static_cast<double>(t_copy), "x");
    }
    t.print(std::cout,
            "A5: call establishment — selective copy is O(1) time units, the "
            "hop-by-hop software path is O(path)");
}

void experiment_admission(bench::JsonReporter& rep) {
    util::Table t({"capacity", "offered", "carried", "rejected", "failed",
                   "capacity_leaks"});
    for (std::uint32_t cap : {1u, 2u, 4u, 8u}) {
        Rng rng(cap * 11 + 1);
        graph::Graph g = graph::make_random_connected(24, 2, 10, rng);
        std::map<NodeId, std::vector<CallRequest>> scripts;
        const int offered = 60;
        for (int i = 0; i < offered; ++i) {
            const NodeId src = static_cast<NodeId>(rng.below(24));
            NodeId dst = static_cast<NodeId>(rng.below(24));
            if (dst == src) dst = (dst + 1) % 24;
            scripts[src].push_back(CallRequest{static_cast<Tick>(1 + rng.below(500)), dst,
                                               1, static_cast<Tick>(100 + rng.below(300))});
        }
        node::Cluster c(g, paris::make_call_agents(g, cap, scripts));
        c.start_all(0);
        c.run();
        unsigned carried = 0, rejected = 0, failed = 0;
        bool leaks = false;
        for (NodeId u = 0; u < 24; ++u) {
            const auto& a = c.protocol_as<paris::CallAgentProtocol>(u);
            carried += a.calls_released() + a.calls_active();
            rejected += a.calls_rejected();
            failed += a.calls_failed();
            for (EdgeId e = 0; e < g.edge_count(); ++e)
                if (a.free_capacity(e) != cap) leaks = true;
        }
        t.add(cap, offered, carried, rejected, failed, leaks);
        rep.add("admission_carried_cap" + std::to_string(cap), carried, "calls");
        FASTNET_ENSURES(!leaks);
    }
    t.print(std::cout,
            "call-churn workload (60 offered calls, hold-and-release): carried "
            "load rises with capacity; reservations never leak");
}

void bm_call_setup_roundtrip(benchmark::State& state) {
    const NodeId n = static_cast<NodeId>(state.range(0));
    const graph::Graph g = graph::make_path(n);
    for (auto _ : state) {
        std::map<NodeId, std::vector<CallRequest>> scripts{
            {0, {CallRequest{1, n - 1, 1, -1}}}};
        node::Cluster c(g, paris::make_call_agents(g, 4, scripts));
        c.start_all(0);
        c.run();
        benchmark::DoNotOptimize(c.simulator().now());
    }
}
BENCHMARK(bm_call_setup_roundtrip)->Range(8, 128);

}  // namespace

int main(int argc, char** argv) {
    fastnet::bench::JsonReporter rep("calls");
    experiment_setup_latency(rep);
    experiment_admission(rep);
    rep.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
