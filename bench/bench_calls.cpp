// Ablation A5 + application-level demonstration: PARIS call setup with
// selective copy versus hop-by-hop (pre-PARIS software forwarding).
//
// The model's promise for its motivating application: establishing a
// call across k switches costs ONE time unit and k system calls with
// the copy mechanism; without it, latency grows linearly with k.
// A second table runs a call-churn workload and reports admission
// behaviour under varying link capacity.
#include <benchmark/benchmark.h>

#include <iostream>

#include "fastnet.hpp"
#include "json_reporter.hpp"

namespace {

using namespace fastnet;
using paris::CallRequest;

void experiment_setup_latency(bench::JsonReporter& rep) {
    util::Table t({"path_hops", "copy_setup_ticks", "seq_setup_ticks", "slowdown",
                   "copy_calls", "seq_calls"});
    for (NodeId n : {4u, 8u, 16u, 32u, 64u}) {
        auto run_mode = [n](bool copy) {
            const graph::Graph g = graph::make_path(n);
            std::map<NodeId, std::vector<CallRequest>> scripts{
                {0, {CallRequest{1, n - 1, 1, -1}}}};
            node::Cluster c(g, paris::make_call_agents(g, 4, scripts, copy));
            c.start_all(0);
            c.run();
            FASTNET_ENSURES(c.protocol_as<paris::CallAgentProtocol>(0).calls_active() == 1);
            return std::pair{c.simulator().now(),
                             c.metrics().total_message_system_calls()};
        };
        const auto [t_copy, c_copy] = run_mode(true);
        const auto [t_seq, c_seq] = run_mode(false);
        t.add(n - 1, t_copy, t_seq,
              static_cast<double>(t_seq) / static_cast<double>(t_copy), c_copy, c_seq);
        rep.add("a5_seq_over_copy_hops" + std::to_string(n - 1),
                static_cast<double>(t_seq) / static_cast<double>(t_copy), "x");
    }
    t.print(std::cout,
            "A5: call establishment — selective copy is O(1) time units, the "
            "hop-by-hop software path is O(path)");
}

void experiment_admission(bench::JsonReporter& rep) {
    util::Table t({"capacity", "offered", "carried", "rejected", "failed",
                   "capacity_leaks"});
    for (std::uint32_t cap : {1u, 2u, 4u, 8u}) {
        Rng rng(cap * 11 + 1);
        graph::Graph g = graph::make_random_connected(24, 2, 10, rng);
        std::map<NodeId, std::vector<CallRequest>> scripts;
        const int offered = 60;
        for (int i = 0; i < offered; ++i) {
            const NodeId src = static_cast<NodeId>(rng.below(24));
            NodeId dst = static_cast<NodeId>(rng.below(24));
            if (dst == src) dst = (dst + 1) % 24;
            scripts[src].push_back(CallRequest{static_cast<Tick>(1 + rng.below(500)), dst,
                                               1, static_cast<Tick>(100 + rng.below(300))});
        }
        node::Cluster c(g, paris::make_call_agents(g, cap, scripts));
        c.start_all(0);
        c.run();
        unsigned carried = 0, rejected = 0, failed = 0;
        bool leaks = false;
        for (NodeId u = 0; u < 24; ++u) {
            const auto& a = c.protocol_as<paris::CallAgentProtocol>(u);
            carried += a.calls_released() + a.calls_active();
            rejected += a.calls_rejected();
            failed += a.calls_failed();
            for (EdgeId e = 0; e < g.edge_count(); ++e)
                if (a.free_capacity(e) != cap) leaks = true;
        }
        t.add(cap, offered, carried, rejected, failed, leaks);
        rep.add("admission_carried_cap" + std::to_string(cap), carried, "calls");
        FASTNET_ENSURES(!leaks);
    }
    t.print(std::cout,
            "call-churn workload (60 offered calls, hold-and-release): carried "
            "load rises with capacity; reservations never leak");
}

// ---- sustained offered-load sweep (ROADMAP item 3) ----------------------
//
// A million generated calls pushed through hardened agents at offered
// loads from half capacity to double capacity, plus one row that adds
// packet loss and node crashes mid-run. Every row must come out of the
// CallOracle clean — capacity conserved, everything released — and the
// sweep pins the Erlang-style story: blocking rises with offered load
// while the p99 setup latency stays bounded (admission control and
// timeouts shed excess instead of queueing it).
void experiment_sustained_load(bench::JsonReporter& rep) {
    constexpr NodeId kSide = 8;
    constexpr std::uint32_t kCap = 4;
    constexpr double kMeanHold = 200;
    constexpr Tick kUntil = 170'000;
    auto g = std::make_shared<graph::Graph>(graph::make_grid(kSide, kSide));
    const NodeId n = g->node_count();

    // Capacity calibration: a call on an h-hop route holds h units of
    // the pool (one per upstream link) for its holding time, and the
    // pool is every directed link times its capacity. Offered utilization
    // u then fixes the per-node mean inter-arrival gap.
    double path_sum = 0;
    for (NodeId u = 0; u < n; ++u) {
        const graph::BfsResult b = graph::bfs(*g, u);
        for (NodeId v = 0; v < n; ++v)
            if (v != u) path_sum += b.dist[v];
    }
    const double mean_path = path_sum / (static_cast<double>(n) * (n - 1));
    const double pool = 2.0 * static_cast<double>(g->edge_count()) * kCap;

    struct RowSpec {
        const char* name;
        double util;
        std::uint32_t loss_ppm;
        bool crashes;
    };
    const RowSpec rows[] = {
        {"load0.5", 0.5, 0, false},  {"load0.75", 0.75, 0, false},
        {"load1.0", 1.0, 0, false},  {"load1.25", 1.25, 0, false},
        {"load1.5", 1.5, 0, false},  {"load2.0", 2.0, 0, false},
        {"faulty1.0", 1.0, 2'000, true},
    };

    util::Table t({"row", "offered", "blocking_pct", "retries", "reaped",
                   "p50_setup", "p99_setup", "kcalls_per_sec"});
    std::uint64_t offered_total = 0;
    // Gap for offered utilization 1.0 — also the token-bucket refill
    // period: admission is calibrated so each source places at most its
    // fair share of the pool, and overload is shed at arrival instead of
    // melting the NCUs with doomed setup traffic.
    const double gap_at_capacity =
        static_cast<double>(n) * kMeanHold * mean_path / pool;

    for (const RowSpec& row : rows) {
        const double gap = gap_at_capacity / row.util;

        paris::CallAgentOptions opt;
        opt.link_capacity = kCap;
        // Setup timers must ride out NCU queueing under load, not just
        // the wire round trip — too tight and every queued accept turns
        // into a spurious timeout + retry storm.
        opt.setup_timeout = 200;
        opt.max_retries = 3;
        opt.retry_backoff = 16;
        opt.retry_jitter = 4;
        opt.reservation_ttl = 400;
        opt.refresh_interval = 100;
        opt.max_inflight = 8;
        opt.bucket_rate_num = 1;
        opt.bucket_rate_den = static_cast<Tick>(gap_at_capacity);
        opt.bucket_burst = 4;
        opt.retain_terminal = false;  // million calls: recycle slots
        opt.workload.arrivals = paris::ArrivalProcess::kPoisson;
        opt.workload.mean_interarrival = gap;
        opt.workload.mean_hold = kMeanHold;
        opt.workload.first_at = 1;
        opt.workload.until = kUntil;

        node::ClusterConfig cfg;
        cfg.net.loss_ppm = row.loss_ppm;
        node::Cluster c(*g, paris::make_call_workload(g, opt), cfg);
        c.start_all(0);
        if (row.crashes) {
            node::Scenario s;
            // Crash mid-window with reservations in flight, restart
            // while the workload is still offering load.
            s.crash_node(kUntil / 3, 27).restart_node(kUntil / 3 + 500, 27);
            s.crash_node(kUntil / 2, 36).restart_node(kUntil / 2 + 500, 36);
            s.apply(c);
        }

        const auto t0 = std::chrono::steady_clock::now();
        c.run();
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();

        const fault::OracleReport oracle = fault::check_calls(c);
        if (!oracle.ok()) std::cerr << oracle.summary() << "\n";
        FASTNET_ENSURES_MSG(oracle.ok(), "call oracle violated under load");

        const cost::CallStats s = paris::fold_call_stats(c);
        offered_total += s.offered;
        const double blocking = 100.0 * s.blocking_probability();
        const auto p50 = s.setup_latency.quantile_bound(0.50);
        const auto p99 = s.setup_latency.quantile_bound(0.99);
        const double kcps = static_cast<double>(s.offered) / secs / 1000.0;
        t.add(row.name, s.offered, blocking, s.retries, s.reaped, p50, p99, kcps);
        rep.add(std::string("sustained_blocking_pct_") + row.name, blocking, "pct");
        rep.add(std::string("sustained_retries_") + row.name,
                static_cast<double>(s.retries), "retries");
        rep.add(std::string("sustained_p50_setup_") + row.name,
                static_cast<double>(p50), "ticks");
        rep.add(std::string("sustained_p99_setup_") + row.name,
                static_cast<double>(p99), "ticks");
        rep.add(std::string("sustained_rate_") + row.name, kcps * 1000.0,
                "per_sec");
        // The sweep's contract: overload sheds, it does not queue — the
        // p99 setup latency must stay inside the retry envelope (every
        // attempt resolves within setup_timeout, plus the backoff chain),
        // not grow with offered load. Factor 2 absorbs the histogram's
        // power-of-two bucket bound and timer-fire queueing.
        const std::uint64_t envelope =
            2 * ((opt.max_retries + 1) * opt.setup_timeout +
                 7 * opt.retry_backoff + opt.max_retries * opt.retry_jitter);
        FASTNET_ENSURES_MSG(p99 <= envelope, "p99 setup latency left the retry envelope");
    }
    FASTNET_ENSURES_MSG(offered_total >= 1'000'000,
                        "sustained sweep offered fewer than one million calls");
    t.print(std::cout,
            "sustained open-loop workload (one million+ offered calls): blocking "
            "absorbs overload, capacity stays conserved under loss and crashes");
}

void bm_call_setup_roundtrip(benchmark::State& state) {
    const NodeId n = static_cast<NodeId>(state.range(0));
    const graph::Graph g = graph::make_path(n);
    for (auto _ : state) {
        std::map<NodeId, std::vector<CallRequest>> scripts{
            {0, {CallRequest{1, n - 1, 1, -1}}}};
        node::Cluster c(g, paris::make_call_agents(g, 4, scripts));
        c.start_all(0);
        c.run();
        benchmark::DoNotOptimize(c.simulator().now());
    }
}
BENCHMARK(bm_call_setup_roundtrip)->Range(8, 128);

}  // namespace

int main(int argc, char** argv) {
    fastnet::bench::JsonReporter rep("calls");
    experiment_setup_latency(rep);
    experiment_admission(rep);
    experiment_sustained_load(rep);
    rep.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
