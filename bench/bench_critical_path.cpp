// O3: causal critical-path engine — determinism, exactness, bounded memory.
//
// The streaming attribution engine (obs/critical_path.hpp) claims three
// things this bench turns into hard gates:
//
//   1. DETERMINISM — `format_critical_path` over the chaos call workload
//      is byte-identical across shard x thread configurations AND between
//      the in-memory engine and the streaming spill engine
//      (scripts/critical_path_smoke.sh re-checks the same property from
//      the CLI side; here it is in-process and part of the perf snapshot).
//   2. EXACTNESS — every reported path's five-way segment decomposition
//      (queueing / transit / handler / timer_wait / retry_backoff) sums
//      exactly to its end-to-end latency. Checked directly and through
//      BoundAudit::critical_path, which also bounds the witness latency
//      by the run's completion tick.
//   3. BOUNDED MEMORY — the critical path of a fully traced 10^6-node
//      ring election is extracted from spill files with the builder's
//      peak resident footprint under the same 4 MiB budget
//      bench_memory_scale's spill gate runs under. This is the ISSUE's
//      acceptance run: trace -> spill -> streaming attribution without
//      ever holding the trace (or per-lineage state proportional to it)
//      in memory.
//
// Reported numbers (BENCH_critical_path.json): witness latency and depth,
// per-segment ticks, streaming throughput (ns/record), and the million-
// node extraction's peak resident bytes — units `path_ticks` and
// `segments` are lower-is-better in scripts/bench_diff.py.
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "fastnet.hpp"
#include "json_reporter.hpp"
#include "obs/critical_path.hpp"
#include "obs/spill_query.hpp"
#include "sim/trace_spill.hpp"

namespace {

using namespace fastnet;

constexpr std::uint64_t kSeed = 2;

// ---- the chaos call workload (pcalls/seed2, as in trace_spill_smoke) ----

graph::Graph make_shape() {
    Rng g(kSeed * 131 + 7);
    return graph::make_random_connected(14, 2, 5, g);
}

struct ChaosRun {
    Tick completion = 0;
    std::vector<sim::TraceRecord> records;      ///< Resident runs only.
    std::vector<std::string> spill_paths;       ///< Spill runs only.
};

/// Call setup with retries and leases under crash/restart churn — the
/// workload exercises every segment kind: hop transit, A1 queueing,
/// handler busy spans, refresh timer waits and retry backoff.
ChaosRun run_chaos(unsigned shards, unsigned threads, const std::string& spill_dir) {
    auto g = std::make_shared<graph::Graph>(make_shape());

    fault::FaultModel model;
    model.link_flaps = 3;
    model.node_crashes = 2;
    model.window_from = 40;
    model.window_to = 700;
    model.heal_at = 800;
    model.loss_ppm = 20'000;
    fault::FaultInjector inj(model, kSeed ^ 0xca115ULL);

    paris::CallAgentOptions aopt;
    aopt.link_capacity = 3;
    aopt.setup_timeout = 24;
    aopt.max_retries = 3;
    aopt.retry_backoff = 8;
    aopt.retry_jitter = 4;
    aopt.reservation_ttl = 150;
    aopt.refresh_interval = 50;
    aopt.max_inflight = 4;
    aopt.workload.arrivals = paris::ArrivalProcess::kPoisson;
    aopt.workload.mean_interarrival = 60;
    aopt.workload.mean_hold = 80;
    aopt.workload.first_at = 10;
    aopt.workload.until = 700;

    node::ParallelClusterConfig cfg;
    cfg.params.hop_delay = 2;
    cfg.params.ncu_delay = 2;
    cfg.ncu_delay_min = 1;
    cfg.seed = kSeed * 7919 + 1988;
    cfg.shards = shards;
    cfg.threads = threads;
    cfg.net.hop_delay_min = 1;
    cfg.net.loss_ppm = model.loss_ppm;
    if (spill_dir.empty()) {
        cfg.trace_capacity = std::size_t{1} << 20;
        cfg.trace_detail_capacity = std::size_t{1} << 20;
    } else {
        cfg.trace_capacity = 512;
        cfg.trace_detail_capacity = 4096;
        cfg.trace_spill_dir = spill_dir;
        cfg.trace_budget_bytes = 16 * 1024;
    }

    node::ParallelCluster cluster(*g, paris::make_call_workload(g, aopt), cfg);
    cluster.start_all(0);
    cluster.schedule(inj.compile(*g));

    ChaosRun out;
    out.completion = cluster.run();
    if (spill_dir.empty()) {
        FASTNET_ENSURES_MSG(cluster.trace_dropped() == 0, "reference ring overflowed");
        out.records = cluster.merged_trace();
    } else {
        std::string error;
        out.spill_paths = sim::spill_files(spill_dir, &error);
        FASTNET_ENSURES_MSG(out.spill_paths.size() == shards,
                            "one spill file per shard expected");
    }
    return out;
}

/// Segment sums must tile the latency of every reported path — the
/// engine's conservation law, checked on the witness and the whole
/// top-N table.
void check_exact_sums(const obs::CriticalPathReport& report) {
    FASTNET_ENSURES_MSG(report.has_witness, "chaos run produced no deliveries");
    FASTNET_ENSURES_MSG(report.witness.totals.total() == report.witness.latency(),
                        "witness segments do not sum to its latency");
    for (const obs::PathSummary& p : report.top)
        FASTNET_ENSURES_MSG(p.totals.total() == p.latency(),
                            "a top-N path's segments do not sum to its latency");
}

// ---- million-node spill extraction (the 4 MiB gate) ---------------------

struct MillionPoint {
    double extract_ms = 0;
    std::uint64_t records = 0;
    std::size_t peak_bytes = 0;
    obs::CriticalPathReport report;
};

/// Mirrors bench_memory_scale::measure_spill_traced_election — same
/// trace kinds (kSend/kDeliver), same 4 MiB resident budget, same ring
/// election — then streams the spill through the attribution engine in
/// witness-only mode. `anchor_root_deliveries` is off (kTimer is not
/// traced here, so nothing downstream needs a root anchor entry) and a
/// horizon sweeps chain state the election has moved past, so the
/// builder's footprint is a window, not the trace.
MillionPoint measure_million_node_extraction(NodeId n, std::size_t budget) {
    const std::string path = "BENCH_critical_path.fnspill";

    auto trace = std::make_shared<sim::Trace>(std::size_t{1} << 16);
    trace->disable_all();
    trace->set_enabled(sim::TraceKind::kSend, true);
    trace->set_enabled(sim::TraceKind::kDeliver, true);
    sim::TraceSpillConfig spill;
    spill.path = path;
    spill.resident_budget_bytes = budget;
    std::string error;
    FASTNET_ENSURES_MSG(trace->enable_spill(spill, &error), "spill enable failed");

    node::ClusterConfig cfg;
    cfg.trace = trace;
    node::Cluster cluster(graph::make_cycle(n), [](NodeId u) {
        return std::make_unique<elect::ChangRobertsProtocol>(u);
    }, cfg);
    cluster.start_all(0);
    cluster.run();
    FASTNET_ENSURES(cluster.protocol_as<elect::ChangRobertsProtocol>(0).known_leader() !=
                    kNoNode);
    const cost::TraceStats& stats = cluster.metrics().trace_stats();
    FASTNET_ENSURES_MSG(stats.dropped == 0, "spill-enabled trace dropped records");
    FASTNET_ENSURES_MSG(stats.spilled_records == stats.total_recorded,
                        "spill file is missing records");

    obs::CriticalPathConfig cp;
    cp.top = 0;                          // witness-only: O(1) chain state
    cp.horizon = 4096;                   // sweep chain state the ring moved past
    cp.anchor_root_deliveries = false;   // no timers traced; root legs self-anchor
    MillionPoint p;
    p.records = stats.total_recorded;
    const auto t0 = std::chrono::steady_clock::now();
    FASTNET_ENSURES_MSG(
        obs::spill_critical_path({path}, cp, p.report, &error, &p.peak_bytes),
        "spill critical-path pass failed");
    const auto t1 = std::chrono::steady_clock::now();
    p.extract_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

    FASTNET_ENSURES_MSG(p.report.has_witness, "million-node election has no witness path");
    FASTNET_ENSURES_MSG(p.report.witness.totals.total() == p.report.witness.latency(),
                        "million-node witness segments do not tile its latency");
    // THE gate: streaming attribution inherits bench_memory_scale's
    // resident budget — the engine never holds the trace.
    FASTNET_ENSURES_MSG(p.peak_bytes <= budget,
                        "critical-path builder exceeded the 4 MiB resident budget");

    std::error_code ec;
    std::filesystem::remove(path, ec);
    return p;
}

}  // namespace

int main() {
    bench::JsonReporter out("critical_path");
    std::cout << "== O3: causal critical-path engine ==\n";

    // ---- determinism across shards x threads, in-memory vs spill -------
    const ChaosRun base = run_chaos(1, 1, "");
    const obs::CriticalPathReport report = obs::critical_path(base.records);
    const std::string formatted = obs::format_critical_path(report);
    check_exact_sums(report);
    FASTNET_ENSURES(report.deliveries > 0 && report.timer_fires > 0);

    struct GridPoint { unsigned shards, threads; };
    for (const GridPoint gp : {GridPoint{2, 2}, GridPoint{4, 2}}) {
        const ChaosRun run = run_chaos(gp.shards, gp.threads, "");
        FASTNET_ENSURES_MSG(run.completion == base.completion,
                            "sharding changed the simulation");
        const std::string other =
            obs::format_critical_path(obs::critical_path(run.records));
        FASTNET_ENSURES_MSG(other == formatted,
                            "critical-path report differs across shard/thread configs");
    }
    {
        const std::string spill_dir = "BENCH_critical_path.spill";
        const ChaosRun run = run_chaos(4, 2, spill_dir);
        obs::CriticalPathReport streamed;
        std::string error;
        FASTNET_ENSURES_MSG(
            obs::spill_critical_path(run.spill_paths, {}, streamed, &error),
            "spill critical-path pass failed");
        FASTNET_ENSURES_MSG(obs::format_critical_path(streamed) == formatted,
                            "streaming spill engine disagrees with the in-memory engine");
        std::error_code ec;
        std::filesystem::remove_all(spill_dir, ec);
    }
    std::cout << "  determinism: in-memory {1x1,2x2,4x2} and spilled 4x2 byte-identical\n";

    // ---- exactness as an executable audit -------------------------------
    obs::BoundAudit audit("critical_path_bench");
    audit.critical_path(obs::to_path_stats(report),
                        static_cast<double>(base.completion));
    FASTNET_ENSURES_MSG(audit.pass(), "critical-path bound audit failed");

    const obs::PathSummary& w = report.witness;
    out.add("chaos_witness_latency", static_cast<double>(w.latency()), "path_ticks");
    out.add("chaos_witness_depth", static_cast<double>(w.depth), "segments");
    for (unsigned k = 0; k < obs::kSegmentKindCount; ++k)
        out.add(std::string("chaos_witness_") +
                    cost::path_segment_kind_name(static_cast<cost::PathSegmentKind>(k)),
                static_cast<double>(w.totals.ticks[k]), "path_ticks");
    std::cout << "  chaos witness: latency " << w.latency() << " ticks over "
              << w.depth << " segments (audit: "
              << audit.checks().size() << " checks pass)\n";

    // ---- streaming throughput -------------------------------------------
    const double pass_ns = bench::min_time_ns([&] {
        obs::CriticalPathBuilder b;
        for (const sim::TraceRecord& r : base.records) b.add(r);
        const obs::CriticalPathReport rep = b.finish();
        if (!rep.has_witness) std::abort();
    });
    const double ns_per_record = pass_ns / static_cast<double>(base.records.size());
    out.add("attribution_ns_per_record", ns_per_record, "ns");
    std::cout << "  attribution pass: " << ns_per_record << " ns/record over "
              << base.records.size() << " records\n";

    // ---- the million-node 4 MiB extraction gate -------------------------
    {
        constexpr std::size_t kBudget = 4 << 20;  // bench_memory_scale's budget
        const MillionPoint mp = measure_million_node_extraction(1'000'000, kBudget);
        out.add("million_node_extract_ms", mp.extract_ms, "ms");
        out.add("million_node_records", static_cast<double>(mp.records), "records");
        out.add("million_node_peak_bytes", static_cast<double>(mp.peak_bytes), "bytes");
        out.add("million_node_witness_latency",
                static_cast<double>(mp.report.witness.latency()), "path_ticks");
        out.add("million_node_witness_depth",
                static_cast<double>(mp.report.witness.depth), "segments");
        std::cout << "  million-node extraction: " << mp.records << " records, witness "
                  << mp.report.witness.latency() << " ticks / "
                  << mp.report.witness.depth << " segments, peak "
                  << mp.peak_bytes << " B (budget " << kBudget << "), "
                  << mp.extract_ms << " ms\n";
    }

    out.write();
    return 0;
}
