// Experiment P1 (docs/PERF.md, "The parallel event kernel"): the
// spatially-partitioned conservative-PDES kernel on one large run.
//
// Three claims are held here, every run of the bench:
//
//   1. Determinism — the same scripted run merges to byte-identical
//      canonical trace / metrics / violations JSON at shard counts
//      {1, 2, 7} and worker threads {1, 2, hardware}; FASTNET_ENSURES
//      aborts the bench on the first diverging byte.
//   2. Overhead — the single-shard parallel kernel's per-hop cost stays
//      within +/-5% of the sequential node::Cluster on the same
//      workload (the keyed event path must be as cheap as the global
//      counter it replaces).
//   3. Scale — an E1-scale run (n = 512 maintenance broadcast load)
//      reports ns/hop and speedup for sharded execution. On a 1-core
//      container the honest speedup is ~1.0x or below (barriers are pure
//      overhead without parallel hardware); the structural win is that
//      shards share nothing between barriers, so the same binary scales
//      with cores (docs/PERF.md discusses the trade-off).
//
// Results go to BENCH_parallel_sim.json.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "fastnet.hpp"
#include "json_reporter.hpp"

namespace {

using namespace fastnet;

// ---------------------------------------------------------------------
// Shared workload: a maintenance broadcast storm with a little scripted
// churn — every node floods its topology `rounds` times while two links
// flap. Fixed hop delay C = 2 gives the partitioned kernel lookahead 2.

graph::Graph load_graph(NodeId n) {
    Rng rng(404);
    return graph::make_random_connected(n, 2, 7, rng);
}

topo::TopologyOptions load_options(unsigned rounds) {
    topo::TopologyOptions opt;
    opt.period = 64;
    opt.rounds = rounds;
    return opt;
}

node::ParallelClusterConfig parallel_config(unsigned shards, unsigned threads,
                                            std::size_t trace_capacity) {
    node::ParallelClusterConfig cfg;
    cfg.params.hop_delay = 2;
    cfg.params.ncu_delay = 1;
    cfg.net.hop_delay_min = -1;
    cfg.seed = 1988;
    cfg.shards = shards;
    cfg.threads = threads;
    cfg.trace_capacity = trace_capacity;
    if (trace_capacity > 0)
        cfg.monitor_setup = [](obs::MonitorHub& hub) {
            obs::add_standard_monitors(hub, obs::StandardMonitorOptions{});
        };
    return cfg;
}

void script_load(node::ParallelCluster& c) {
    c.start_all(0);
    c.fail_link(70, 0);
    c.restore_link(130, 0);
    c.fail_link(200, 1);
    c.restore_link(260, 1);
}

struct ParallelRun {
    Tick completion = 0;
    std::uint64_t hops = 0;
    std::string trace_json;
    std::string metrics_json;
    std::string violations_json;
};

ParallelRun run_parallel(NodeId n, unsigned rounds, unsigned shards, unsigned threads,
                         std::size_t trace_capacity) {
    node::ParallelCluster c(load_graph(n),
                            topo::make_topology_maintenance(n, load_options(rounds)),
                            parallel_config(shards, threads, trace_capacity));
    script_load(c);
    ParallelRun r;
    r.completion = c.run();
    const cost::Metrics m = c.merged_metrics();
    r.hops = m.net().hops;
    r.metrics_json = obs::metrics_json(m, "parallel_load");
    if (trace_capacity > 0) {
        FASTNET_ENSURES_MSG(c.trace_dropped() == 0, "trace ring too small for identity");
        const obs::ExportMeta meta = obs::make_meta(c.graph(), "parallel_load");
        r.trace_json =
            obs::canonical_trace_json(c.merged_trace(), meta, c.trace_total_recorded(),
                                      c.trace_dropped(), c.trace_detail_dropped());
        r.violations_json = obs::violations_json(c.monitor_count(), c.violation_count(),
                                                 c.merged_violations(), "parallel_load");
        FASTNET_ENSURES_MSG(c.monitors_ok(), "monitor violation in the load scenario");
    }
    return r;
}

// ---------------------------------------------------------------------
// Claim 1: byte-identity across (shards, threads), traced + monitored.

void experiment_identity(bench::JsonReporter& out) {
    constexpr NodeId kNodes = 96;
    constexpr unsigned kRounds = 6;
    constexpr std::size_t kRing = std::size_t{1} << 19;

    const ParallelRun base = run_parallel(kNodes, kRounds, 1, 1, kRing);
    const struct {
        unsigned shards, threads;
    } grid[] = {{2, 1}, {2, 2}, {7, 0}};
    for (const auto& p : grid) {
        const ParallelRun r = run_parallel(kNodes, kRounds, p.shards, p.threads, kRing);
        FASTNET_ENSURES_MSG(r.completion == base.completion,
                            "completion time diverged across shard counts");
        FASTNET_ENSURES_MSG(r.trace_json == base.trace_json,
                            "canonical trace diverged across (shards, threads)");
        FASTNET_ENSURES_MSG(r.metrics_json == base.metrics_json,
                            "metrics diverged across (shards, threads)");
        FASTNET_ENSURES_MSG(r.violations_json == base.violations_json,
                            "violations diverged across (shards, threads)");
    }
    std::cout << "P1 identity: trace/metrics/violations byte-identical at shards "
                 "{1,2,7} x threads {1,2,hw} (n=96, churned, monitored)\n";
    out.add("p1_identity_configs_checked", 3, "runs");
    out.add("p1_identity_trace_bytes", static_cast<double>(base.trace_json.size()),
            "bytes");
}

// ---------------------------------------------------------------------
// Claims 2 + 3: per-hop cost and E1-scale throughput.

double time_sequential(NodeId n, unsigned rounds, std::uint64_t& hops_out) {
    const graph::Graph g = load_graph(n);
    const auto factory = topo::make_topology_maintenance(n, load_options(rounds));
    node::ClusterConfig cfg;
    cfg.params.hop_delay = 2;
    cfg.params.ncu_delay = 1;
    cfg.seed = 1988;
    node::Scenario churn;
    churn.fail_link(70, 0).restore_link(130, 0).fail_link(200, 1).restore_link(260, 1);
    return bench::min_time_ns([&] {
        node::Cluster c(g, factory, cfg);
        c.start_all(0);
        churn.apply(c);
        c.run();
        hops_out = c.metrics().net().hops;
    });
}

double time_parallel(NodeId n, unsigned rounds, unsigned shards, unsigned threads,
                     std::uint64_t& hops_out) {
    const graph::Graph g = load_graph(n);
    const auto factory = topo::make_topology_maintenance(n, load_options(rounds));
    return bench::min_time_ns([&] {
        node::ParallelCluster c(g, factory, parallel_config(shards, threads, 0));
        script_load(c);
        c.run();
        hops_out = c.merged_metrics().net().hops;
    });
}

void experiment_perf(bench::JsonReporter& out) {
    constexpr NodeId kNodes = 512;  // E1-scale single run
    constexpr unsigned kRounds = 4;

    std::uint64_t seq_hops = 0, s1_hops = 0, s7_hops = 0;
    const double seq_ns = time_sequential(kNodes, kRounds, seq_hops);
    const double s1_ns = time_parallel(kNodes, kRounds, 1, 1, s1_hops);
    const unsigned hw = exec::ThreadPool::hardware_threads();
    const double s7_ns = time_parallel(kNodes, kRounds, 7, 0, s7_hops);

    const double seq_per_hop = seq_ns / static_cast<double>(seq_hops);
    const double s1_per_hop = s1_ns / static_cast<double>(s1_hops);
    const double s7_per_hop = s7_ns / static_cast<double>(s7_hops);
    const double overhead = s1_per_hop / seq_per_hop - 1.0;
    const double speedup = seq_ns / s7_ns;

    util::Table t({"kernel", "ns_total", "hops", "ns_per_hop", "vs_sequential"});
    t.add("sequential", seq_ns, static_cast<double>(seq_hops), seq_per_hop, 1.0);
    t.add("parallel_s1", s1_ns, static_cast<double>(s1_hops), s1_per_hop,
          seq_ns / s1_ns);
    t.add("parallel_s7", s7_ns, static_cast<double>(s7_hops), s7_per_hop, speedup);
    t.print(std::cout,
            "P1: one E1-scale maintenance run (n=512, C=2) — sequential kernel vs "
            "single-shard and 7-shard parallel kernel (hw threads = " +
                std::to_string(hw) + ")");

    out.add("p1_seq_ns_per_hop", seq_per_hop, "ns");
    out.add("p1_par_s1_ns_per_hop", s1_per_hop, "ns");
    out.add("p1_par_s7_ns_per_hop", s7_per_hop, "ns");
    out.add("p1_par_s1_overhead_frac", overhead, "fraction");
    out.add("p1_par_s7_speedup", speedup, "x");
    out.add("p1_seq_events_per_sec", 1e9 * static_cast<double>(seq_hops) / seq_ns,
            "events_per_sec");
    out.add("p1_par_s7_events_per_sec", 1e9 * static_cast<double>(s7_hops) / s7_ns,
            "events_per_sec");

    // The single-shard gate: the keyed event path must not tax the common
    // case. One-sided — faster-than-sequential is noise, not a failure;
    // observed run-to-run spread on the 1-core container is about +/-6%,
    // so the bound carries headroom over it. The exact fraction ships in
    // the JSON above for trajectory tracking.
    FASTNET_ENSURES_MSG(overhead <= 0.10,
                        "single-shard parallel kernel per-hop cost is more than "
                        "10% above the sequential kernel");
}

// ---------------------------------------------------------------------
// Microbenchmarks.

void bm_parallel_window_loop(benchmark::State& state) {
    const auto shards = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        std::uint64_t hops = 0;
        node::ParallelCluster c(load_graph(64),
                                topo::make_topology_maintenance(64, load_options(3)),
                                parallel_config(shards, 1, 0));
        c.start_all(0);
        c.run();
        hops = c.merged_metrics().net().hops;
        benchmark::DoNotOptimize(hops);
    }
}
BENCHMARK(bm_parallel_window_loop)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void bm_sequential_same_load(benchmark::State& state) {
    const graph::Graph g = load_graph(64);
    const auto factory = topo::make_topology_maintenance(64, load_options(3));
    node::ClusterConfig cfg;
    cfg.params.hop_delay = 2;
    cfg.params.ncu_delay = 1;
    cfg.seed = 1988;
    for (auto _ : state) {
        node::Cluster c(g, factory, cfg);
        c.start_all(0);
        c.run();
        benchmark::DoNotOptimize(c.metrics().net().hops);
    }
}
BENCHMARK(bm_sequential_same_load)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    bench::JsonReporter out("parallel_sim");
    experiment_perf(out);
    experiment_identity(out);
    out.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
