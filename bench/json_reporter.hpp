// Machine-readable benchmark output.
//
// Every perf-tracking bench in this repo emits a BENCH_<name>.json file
// next to the binary so that successive PRs can diff hard numbers instead
// of eyeballing stdout tables (see docs/PERF.md, "Reading BENCH_*.json").
// The format is deliberately flat: one object with a `bench` name and a
// `results` array of {name, value, unit} entries, values always plain
// numbers (ns, events/s, bytes — never pre-formatted strings).
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace fastnet::bench {

class JsonReporter {
public:
    explicit JsonReporter(std::string bench_name) : bench_name_(std::move(bench_name)) {}

    /// Records one measurement. `unit` is free-form but stable across PRs
    /// ("ns", "events_per_sec", "ms", "allocs", ...).
    void add(const std::string& name, double value, const std::string& unit) {
        results_.push_back(Result{name, value, unit});
        std::cout << "  " << name << " = " << value << " " << unit << "\n";
    }

    /// Writes BENCH_<bench>.json into the current directory (the build
    /// tree when run via ctest/cmake; .gitignore'd either way). Names and
    /// units pass through JSON escaping — a quote or backslash in a bench
    /// label must not corrupt the file (scripts/bench_diff.py parses it).
    void write() const {
        const std::string path = "BENCH_" + bench_name_ + ".json";
        std::ofstream out(path);
        out << "{\n  \"bench\": " << obs::json_quote(bench_name_) << ",\n  \"results\": [\n";
        for (std::size_t i = 0; i < results_.size(); ++i) {
            const Result& r = results_[i];
            out << "    {\"name\": " << obs::json_quote(r.name) << ", \"value\": " << r.value
                << ", \"unit\": " << obs::json_quote(r.unit) << "}"
                << (i + 1 < results_.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
        std::cout << "wrote " << path << "\n";
    }

private:
    struct Result {
        std::string name;
        double value;
        std::string unit;
    };
    std::string bench_name_;
    std::vector<Result> results_;
};

/// Runs `body` repeatedly until at least `min_total` has elapsed (and at
/// least 3 repetitions), returning the *minimum* single-repetition wall
/// time in nanoseconds — the most noise-robust point estimate on a busy
/// machine.
template <typename F>
double min_time_ns(F&& body, std::chrono::nanoseconds min_total = std::chrono::milliseconds(300)) {
    using Clock = std::chrono::steady_clock;
    double best = 1e300;
    Clock::duration total{0};
    int reps = 0;
    while (reps < 3 || total < min_total) {
        const auto t0 = Clock::now();
        body();
        const auto dt = Clock::now() - t0;
        total += dt;
        best = std::min(
            best,
            static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
        ++reps;
    }
    return best;
}

}  // namespace fastnet::bench
