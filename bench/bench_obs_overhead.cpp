// Observability overhead gate (BENCH_obs_overhead.json).
//
// The tentpole promise of the tracing rework: with tracing *disabled*
// the steady-state hop path costs the same as having no trace at all —
// one pointer test, no allocation, no formatting. This bench measures
// the per-hop cost of a long pure-relay route in four configurations:
//
//   hop_ns_no_trace        — no trace attached (PR 1's baseline shape).
//   hop_ns_trace_disabled  — trace attached, every kind disabled. The
//                            acceptance gate: within 5% of no_trace
//                            (see trace_disabled_overhead_pct).
//   hop_ns_trace_enabled   — trace attached, all kinds recording.
//   hop_ns_sampling        — no trace, windowed metrics sampling on.
//   hop_ns_monitors_empty  — empty obs::MonitorHub attached (no
//                            monitors registered): same ±5% / zero-alloc
//                            gate as the disabled trace.
//   hop_ns_monitors_std    — standard invariant monitors registered.
//
// Plus allocs_per_hop_trace_disabled via the global operator-new counter
// (target: 0 — the same invariant Alloc.SteadyStateHopPath enforces).
#include <atomic>
#include <cstdlib>
#include <new>

#include "fastnet.hpp"
#include "json_reporter.hpp"

// ---- global allocation counter (same trick as bench_sim_core) ----------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}

// These counting operators intentionally delegate storage to
// malloc/free; once make_shared below is inlined against them, GCC
// pairs the allocation sites with std::free and mis-reports a mismatch.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void* p = nullptr;
    if (posix_memalign(&p, static_cast<std::size_t>(al), size ? size : 1) != 0)
        throw std::bad_alloc();
    return p;
}
void* operator new[](std::size_t size, std::align_val_t al) { return ::operator new(size, al); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace fastnet;

struct HopMeasurement {
    double ns_per_hop = 0;
    double allocs_per_hop = 0;
};

/// Steady-state per-hop cost of a 4095-hop pure relay (identical to
/// bench_sim_core's hop_ns rig) under the given observability config.
HopMeasurement measure_hops(std::shared_ptr<sim::Trace> trace, Tick sample_window,
                            std::shared_ptr<obs::MonitorHub> monitors = nullptr) {
    constexpr NodeId kNodes = 4096;
    const graph::Graph g = graph::make_path(kNodes);
    sim::Simulator sim;
    cost::Metrics metrics(g.node_count());
    if (sample_window > 0) metrics.enable_sampling(sample_window);
    hw::NetworkConfig cfg;
    cfg.trace = std::move(trace);
    cfg.monitors = std::move(monitors);
    hw::Network net(sim, g, ModelParams::traditional(), metrics, cfg);
    std::uint64_t delivered = 0;
    net.set_ncu_sink(kNodes - 1, [&](const hw::Delivery&) { ++delivered; });

    std::vector<NodeId> path(kNodes);
    for (NodeId u = 0; u < kNodes; ++u) path[u] = u;
    const hw::AnrHeader header = net.route(path);

    // Warm pools/caches, then count allocations over one warm send.
    net.send(0, header, nullptr);
    sim.run();
    const std::uint64_t allocs_before = g_alloc_count.load();
    net.send(0, header, nullptr);
    sim.run();
    const std::uint64_t allocs_one_send = g_alloc_count.load() - allocs_before;

    const double ns = bench::min_time_ns([&] {
        net.send(0, header, nullptr);
        sim.run();
    });
    if (delivered == 0) std::abort();
    const double hops = static_cast<double>(kNodes - 1);
    return {ns / hops, static_cast<double>(allocs_one_send) / hops};
}

}  // namespace

int main() {
    bench::JsonReporter out("obs_overhead");
    std::cout << "== observability overhead bench ==\n";

    const HopMeasurement none = measure_hops(nullptr, 0);

    auto disabled_trace = std::make_shared<sim::Trace>(std::size_t{1} << 16);
    disabled_trace->disable_all();
    const HopMeasurement disabled = measure_hops(disabled_trace, 0);

    const HopMeasurement enabled =
        measure_hops(std::make_shared<sim::Trace>(std::size_t{1} << 16), 0);

    const HopMeasurement sampled = measure_hops(nullptr, 64);

    // Attached-but-empty monitor hub: the gate configuration of this PR.
    const HopMeasurement empty_hub = measure_hops(nullptr, 0, std::make_shared<obs::MonitorHub>());

    // Standard invariant monitors registered (the honest price of live
    // checking; informational, not gated).
    auto std_hub = std::make_shared<obs::MonitorHub>();
    obs::add_standard_monitors(*std_hub);
    const HopMeasurement std_monitors = measure_hops(nullptr, 0, std_hub);
    if (!std_hub->ok()) std::abort();  // the relay rig must not violate invariants

    out.add("hop_ns_no_trace", none.ns_per_hop, "ns");
    out.add("hop_ns_trace_disabled", disabled.ns_per_hop, "ns");
    out.add("hop_ns_trace_enabled", enabled.ns_per_hop, "ns");
    out.add("hop_ns_sampling", sampled.ns_per_hop, "ns");
    out.add("trace_disabled_overhead_pct",
            100.0 * (disabled.ns_per_hop - none.ns_per_hop) / none.ns_per_hop, "pct");
    out.add("trace_enabled_overhead_pct",
            100.0 * (enabled.ns_per_hop - none.ns_per_hop) / none.ns_per_hop, "pct");
    out.add("sampling_overhead_pct",
            100.0 * (sampled.ns_per_hop - none.ns_per_hop) / none.ns_per_hop, "pct");
    out.add("hop_ns_monitors_empty", empty_hub.ns_per_hop, "ns");
    out.add("hop_ns_monitors_std", std_monitors.ns_per_hop, "ns");
    out.add("monitors_empty_overhead_pct",
            100.0 * (empty_hub.ns_per_hop - none.ns_per_hop) / none.ns_per_hop, "pct");
    out.add("monitors_std_overhead_pct",
            100.0 * (std_monitors.ns_per_hop - none.ns_per_hop) / none.ns_per_hop, "pct");
    out.add("allocs_per_hop_no_trace", none.allocs_per_hop, "allocs");
    out.add("allocs_per_hop_trace_disabled", disabled.allocs_per_hop, "allocs");
    out.add("allocs_per_hop_monitors_empty", empty_hub.allocs_per_hop, "allocs");
    out.write();
    return 0;
}
