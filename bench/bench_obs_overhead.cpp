// Observability overhead gate (BENCH_obs_overhead.json).
//
// The tentpole promise of the tracing rework: with tracing *disabled*
// the steady-state hop path costs the same as having no trace at all —
// one pointer test, no allocation, no formatting. This bench measures
// the per-hop cost of a long pure-relay route in four configurations:
//
//   hop_ns_no_trace        — no trace attached (PR 1's baseline shape).
//   hop_ns_trace_disabled  — trace attached, every kind disabled. The
//                            acceptance gate: within 5% of no_trace
//                            (see trace_disabled_overhead_pct).
//   hop_ns_trace_enabled   — trace attached, all kinds recording.
//   hop_ns_sampling        — no trace, windowed metrics sampling on.
//   hop_ns_monitors_empty  — empty obs::MonitorHub attached (no
//                            monitors registered): same ±5% / zero-alloc
//                            gate as the disabled trace.
//   hop_ns_monitors_std    — standard invariant monitors registered.
//
// Plus allocs_per_hop_trace_disabled via the global operator-new counter
// (target: 0 — the same invariant Alloc.SteadyStateHopPath enforces).
//
// This PR adds the always-on handler profiler (cost::Profiler) to the
// gate: a two-node ping-pong cluster prices one handler invocation with
// the profiler recording versus the identical cluster with registration
// off (the hook still runs, it just hits the kNoProtocol no-op). Gated
// in-binary: overhead <= 5% and zero steady-state allocations per
// invocation — FASTNET_ENSURES aborts the bench otherwise.
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>

#include "fastnet.hpp"
#include "json_reporter.hpp"

// ---- global allocation counter (same trick as bench_sim_core) ----------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}

// These counting operators intentionally delegate storage to
// malloc/free; once make_shared below is inlined against them, GCC
// pairs the allocation sites with std::free and mis-reports a mismatch.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t al) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void* p = nullptr;
    if (posix_memalign(&p, static_cast<std::size_t>(al), size ? size : 1) != 0)
        throw std::bad_alloc();
    return p;
}
void* operator new[](std::size_t size, std::align_val_t al) { return ::operator new(size, al); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace fastnet;

struct HopMeasurement {
    double ns_per_hop = 0;
    double allocs_per_hop = 0;
};

/// Steady-state per-hop cost of a 4095-hop pure relay (identical to
/// bench_sim_core's hop_ns rig) under the given observability config.
HopMeasurement measure_hops(std::shared_ptr<sim::Trace> trace, Tick sample_window,
                            std::shared_ptr<obs::MonitorHub> monitors = nullptr) {
    constexpr NodeId kNodes = 4096;
    const graph::Graph g = graph::make_path(kNodes);
    sim::Simulator sim;
    cost::Metrics metrics(g.node_count());
    if (sample_window > 0) metrics.enable_sampling(sample_window);
    hw::NetworkConfig cfg;
    cfg.trace = std::move(trace);
    cfg.monitors = std::move(monitors);
    hw::Network net(sim, g, ModelParams::traditional(), metrics, cfg);
    std::uint64_t delivered = 0;
    net.set_ncu_sink(kNodes - 1, [&](const hw::Delivery&) { ++delivered; });

    std::vector<NodeId> path(kNodes);
    for (NodeId u = 0; u < kNodes; ++u) path[u] = u;
    const hw::AnrHeader header = net.route(path);

    // Warm pools/caches, then count allocations over one warm send.
    net.send(0, header, nullptr);
    sim.run();
    const std::uint64_t allocs_before = g_alloc_count.load();
    net.send(0, header, nullptr);
    sim.run();
    const std::uint64_t allocs_one_send = g_alloc_count.load() - allocs_before;

    const double ns = bench::min_time_ns([&] {
        net.send(0, header, nullptr);
        sim.run();
    });
    if (delivered == 0) std::abort();
    const double hops = static_cast<double>(kNodes - 1);
    return {ns / hops, static_cast<double>(allocs_one_send) / hops};
}

// ---- profiler invocation rig -------------------------------------------

constexpr int kVolley = 2048;

/// Two nodes exchanging a packet kVolley times: every message is one
/// hop plus one delivery-handler invocation, so the per-invocation cost
/// isolates the NCU system-call path the profiler hooks.
struct PingPong final : public node::Protocol {
    const char* name() const override { return "pingpong"; }

    void on_start(node::Context& ctx) override {
        remaining_ = kVolley;
        const auto links = ctx.links();
        ctx.send({hw::AnrLabel::normal(links[0].port),
                  hw::AnrLabel::normal(hw::kNcuPort)},
                 nullptr);
    }
    void on_message(node::Context& ctx, const hw::Delivery& d) override {
        if (ctx.self() == 0 && --remaining_ <= 0) return;
        ctx.reply(d, nullptr);
    }
    std::size_t memory_bytes() const override { return sizeof(*this); }

private:
    int remaining_ = 0;
};

struct ProfilerMeasurement {
    double ns_on = 0, ns_off = 0;          ///< Per invocation, min over rounds.
    double allocs_on = 0, allocs_off = 0;  ///< Per invocation, one warm volley.
    std::uint64_t profiled_invocations = 0;
};

/// Prices the profiler hook on ONE cluster, toggling it between
/// alternating timing rounds: two separately constructed clusters
/// differ by more machine noise (allocator layout, cache aliasing) than
/// the few-ns hook, so only a same-cluster A/B isolates the delta.
ProfilerMeasurement measure_profiler() {
    node::Cluster c(graph::make_path(2),
                    [](NodeId) { return std::make_unique<PingPong>(); });
    auto volley = [&] {
        c.start(0, c.simulator().now() + 1);
        c.run();
    };
    volley();  // warm pools/caches
    ProfilerMeasurement m;
    const double invocations = 2.0 * kVolley;
    auto count_allocs = [&] {
        const std::uint64_t before = g_alloc_count.load();
        volley();
        return static_cast<double>(g_alloc_count.load() - before) / invocations;
    };
    m.allocs_on = count_allocs();
    c.set_profile(false);
    m.allocs_off = count_allocs();
    double on = 0, off = 0;
    for (int round = 0; round < 4; ++round) {
        c.set_profile(true);
        const double t_on = bench::min_time_ns(volley) / invocations;
        c.set_profile(false);
        const double t_off = bench::min_time_ns(volley) / invocations;
        on = round == 0 ? t_on : std::min(on, t_on);
        off = round == 0 ? t_off : std::min(off, t_off);
    }
    m.ns_on = on;
    m.ns_off = off;
    for (const auto& e : c.metrics().profiler().entries())
        m.profiled_invocations += e.invocations();
    return m;
}

}  // namespace

int main() {
    bench::JsonReporter out("obs_overhead");
    std::cout << "== observability overhead bench ==\n";

    const HopMeasurement none = measure_hops(nullptr, 0);

    auto disabled_trace = std::make_shared<sim::Trace>(std::size_t{1} << 16);
    disabled_trace->disable_all();
    const HopMeasurement disabled = measure_hops(disabled_trace, 0);

    const HopMeasurement enabled =
        measure_hops(std::make_shared<sim::Trace>(std::size_t{1} << 16), 0);

    const HopMeasurement sampled = measure_hops(nullptr, 64);

    // Attached-but-empty monitor hub: the gate configuration of this PR.
    const HopMeasurement empty_hub = measure_hops(nullptr, 0, std::make_shared<obs::MonitorHub>());

    // Standard invariant monitors registered (the honest price of live
    // checking; informational, not gated).
    auto std_hub = std::make_shared<obs::MonitorHub>();
    obs::add_standard_monitors(*std_hub);
    const HopMeasurement std_monitors = measure_hops(nullptr, 0, std_hub);
    if (!std_hub->ok()) std::abort();  // the relay rig must not violate invariants

    out.add("hop_ns_no_trace", none.ns_per_hop, "ns");
    out.add("hop_ns_trace_disabled", disabled.ns_per_hop, "ns");
    out.add("hop_ns_trace_enabled", enabled.ns_per_hop, "ns");
    out.add("hop_ns_sampling", sampled.ns_per_hop, "ns");
    out.add("trace_disabled_overhead_pct",
            100.0 * (disabled.ns_per_hop - none.ns_per_hop) / none.ns_per_hop, "pct");
    out.add("trace_enabled_overhead_pct",
            100.0 * (enabled.ns_per_hop - none.ns_per_hop) / none.ns_per_hop, "pct");
    out.add("sampling_overhead_pct",
            100.0 * (sampled.ns_per_hop - none.ns_per_hop) / none.ns_per_hop, "pct");
    out.add("hop_ns_monitors_empty", empty_hub.ns_per_hop, "ns");
    out.add("hop_ns_monitors_std", std_monitors.ns_per_hop, "ns");
    out.add("monitors_empty_overhead_pct",
            100.0 * (empty_hub.ns_per_hop - none.ns_per_hop) / none.ns_per_hop, "pct");
    out.add("monitors_std_overhead_pct",
            100.0 * (std_monitors.ns_per_hop - none.ns_per_hop) / none.ns_per_hop, "pct");
    out.add("allocs_per_hop_no_trace", none.allocs_per_hop, "allocs");
    out.add("allocs_per_hop_trace_disabled", disabled.allocs_per_hop, "allocs");
    out.add("allocs_per_hop_monitors_empty", empty_hub.allocs_per_hop, "allocs");

    // Always-on handler profiler: same-cluster A/B of the hook.
    const ProfilerMeasurement prof = measure_profiler();
    const double profiler_pct = 100.0 * (prof.ns_on - prof.ns_off) / prof.ns_off;
    out.add("invocation_ns_profiler_off", prof.ns_off, "ns");
    out.add("invocation_ns_profiler_on", prof.ns_on, "ns");
    out.add("profiler_overhead_pct", profiler_pct, "pct");
    // The rig's reply path allocates (fresh reverse-route headers); the
    // profiler itself must add nothing on top of that baseline.
    out.add("profiler_allocs_per_invocation", prof.allocs_on - prof.allocs_off, "allocs");
    out.add("profiler_invocations", static_cast<double>(prof.profiled_invocations),
            "invocations");
    FASTNET_ENSURES_MSG(prof.profiled_invocations > 0,
                        "profiler recorded no invocations");
    FASTNET_ENSURES_MSG(profiler_pct <= 5.0, "profiler overhead above the 5% gate");
    FASTNET_ENSURES_MSG(prof.allocs_on == prof.allocs_off,
                        "profiler must not allocate in steady state");
    out.write();
    return 0;
}
