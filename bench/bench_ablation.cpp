// Ablations of the model features DESIGN.md calls out.
//
// A1 — the free multi-link send ("at no extra processing cost",
//      Section 2, validated on PARIS): without it every extra packet
//      injected by a handler costs P, so high-degree branch points of
//      the broadcast serialize and the Theorem 2 time bound degrades
//      by a degree factor.
// A2 — the dmax path-length restriction: maximum ANR header lengths per
//      broadcast scheme (layered-BFS needs O(n^2); the rest O(n)).
// A3 — the election's INOUT-tree return routes versus naive reverse
//      concatenation (the paper rejects the latter because its length
//      "may be more than n").
// A4 — the FIFO requirement of Section 5: with randomized (sub-worst-
//      case) delays the gather finishes no later than the prediction;
//      the prediction is exactly the worst case.
//
// Every ablation grid is a set of independent simulations, so they all
// run through exec::sweep_map, and the headline numbers land in
// BENCH_ablation.json.
#include <benchmark/benchmark.h>

#include <iostream>

#include "fastnet.hpp"
#include "json_reporter.hpp"

namespace {

using namespace fastnet;
using topo::BroadcastScheme;

void ablation_a1(bench::JsonReporter& out) {
    struct Point {
        std::string name;
        graph::Graph graph;
    };
    std::vector<Point> grid;
    grid.push_back({"star", graph::make_star(256)});
    grid.push_back({"binary", graph::make_complete_binary_tree(7)});
    grid.push_back({"path", graph::make_path(256)});
    grid.push_back({"caterpillar", graph::make_caterpillar(64, 3)});
    Rng rng(4);
    grid.push_back({"random", graph::make_random_tree(256, rng)});

    struct Row {
        double with = 0, without = 0;
    };
    const auto rows = exec::sweep_map(grid, [](const Point& p, exec::TaskContext&) {
        const auto with = topo::run_broadcast(p.graph, BroadcastScheme::kBranchingPaths, 0);
        node::ClusterConfig cfg;
        cfg.free_multisend = false;
        const auto without =
            topo::run_broadcast(p.graph, BroadcastScheme::kBranchingPaths, 0, cfg);
        FASTNET_ENSURES(with.all_received && without.all_received);
        return Row{static_cast<double>(with.time_units),
                   static_cast<double>(without.time_units)};
    });
    util::Table t({"topology", "n", "units_free_multisend", "units_serialized",
                   "slowdown"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
        t.add(grid[i].name.c_str(), grid[i].graph.node_count(), rows[i].with,
              rows[i].without, rows[i].without / rows[i].with);
        out.add("a1_slowdown_" + grid[i].name, rows[i].without / rows[i].with, "x");
    }
    t.print(std::cout,
            "A1: broadcast time with vs without the free multi-link send — "
            "high-degree roots serialize without it");
}

void ablation_a2(bench::JsonReporter& out) {
    struct Point {
        std::string shape;
        graph::Graph graph;
        BroadcastScheme scheme;
    };
    std::vector<Point> grid;
    auto add_shape = [&grid](const char* shape, const graph::Graph& g) {
        for (auto scheme : {BroadcastScheme::kBranchingPaths, BroadcastScheme::kDfsToken,
                            BroadcastScheme::kLayeredBfs, BroadcastScheme::kDirectUnicast})
            grid.push_back({shape, g, scheme});
    };
    for (NodeId exp : {5u, 7u}) add_shape("binary", graph::make_complete_binary_tree(exp));
    // Deep trees are the worst case for layered BFS: the header revisits
    // every prefix layer — Theta(n^2) labels on a path.
    for (NodeId n : {32u, 64u, 128u}) add_shape("path", graph::make_path(n));

    const auto rows = exec::sweep_map(grid, [](const Point& p, exec::TaskContext&) {
        return topo::run_broadcast(p.graph, p.scheme, 0).cost.max_header_len;
    });
    util::Table t({"shape", "n", "scheme", "max_header_len", "len/n"});
    double worst_len_over_n = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const NodeId n = grid[i].graph.node_count();
        const double growth = static_cast<double>(rows[i]) / static_cast<double>(n);
        worst_len_over_n = std::max(worst_len_over_n, growth);
        t.add(grid[i].shape.c_str(), n, topo::scheme_name(grid[i].scheme), rows[i], growth);
    }
    out.add("a2_worst_header_len_over_n", worst_len_over_n, "labels_per_node");
    t.print(std::cout,
            "A2: maximum ANR header length (labels) — layered-BFS needs "
            "Theta(n^2) headers on deep trees, hence unbounded dmax; the "
            "others stay O(n)");
}

void ablation_a3(bench::JsonReporter& out) {
    const std::vector<NodeId> sizes{64u, 256u, 1024u};
    struct Row {
        std::size_t actual = 0, naive = 0;
    };
    const auto rows = exec::sweep_map(sizes, [](NodeId n, exec::TaskContext&) {
        Rng rng(n + 7);
        const graph::Graph g = graph::make_random_connected(n, 1, 20, rng);
        const auto r = elect::run_election(g);
        FASTNET_ENSURES(r.unique_leader);
        return Row{r.max_return_len, r.max_naive_return_len};
    });
    util::Table t({"n", "actual_max_return_anr", "naive_reverse_concat", "naive/n"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        t.add(sizes[i], rows[i].actual, rows[i].naive,
              static_cast<double>(rows[i].naive) / sizes[i]);
        out.add("a3_max_return_anr_n" + std::to_string(sizes[i]),
                static_cast<double>(rows[i].actual), "labels");
    }
    t.print(std::cout,
            "A3: election return routes — INOUT-tree splices stay <= 2n while "
            "naive reverse concatenation keeps growing");
}

void ablation_a4(bench::JsonReporter& out) {
    struct Point {
        std::uint64_t n = 0;
        Tick c = 0, p = 0;
    };
    std::vector<Point> grid;
    for (std::uint64_t n : {32ull, 128ull})
        for (auto [c, p] : std::vector<std::pair<Tick, Tick>>{{4, 2}, {8, 4}})
            grid.push_back({n, c, p});

    struct Row {
        Tick worst = 0, jittered = 0;
    };
    const auto rows = exec::sweep_map(grid, [](const Point& pt, exec::TaskContext&) {
        const auto r = gsf::build_optimal_tree(pt.n, pt.c, pt.p);
        ModelParams params;
        params.hop_delay = pt.c;
        params.ncu_delay = pt.p;
        const auto worst = gsf::run_tree_gather(r.tree, params);
        // Re-run with randomized sub-worst-case delays: C' in [0, C],
        // P' in [1, P]; FIFO still enforced per link.
        node::ClusterConfig cfg;
        cfg.params = params;
        cfg.net.hop_delay_min = 0;
        cfg.ncu_delay_min = 1;
        cfg.seed = pt.n * 31 + static_cast<std::uint64_t>(pt.c);
        auto spec = std::make_shared<gsf::GatherSpec>();
        spec->tree = r.tree;
        spec->combine = gsf::combine_sum();
        Rng rin(99);
        spec->inputs.resize(pt.n);
        for (auto& v : spec->inputs) v = rin.below(1000);
        node::Cluster cluster(graph::make_complete(static_cast<NodeId>(pt.n)),
                              [&spec](NodeId) {
                                  return std::make_unique<gsf::TreeGatherProtocol>(spec);
                              },
                              cfg);
        cluster.start_all(0);
        cluster.run();
        const auto& root = cluster.protocol_as<gsf::TreeGatherProtocol>(0);
        return Row{worst.completion, root.done_time()};
    });
    util::Table t({"n", "C", "P", "worst_case_completion", "jittered_completion",
                   "jittered<=worst"});
    bool all_within = true;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        all_within &= rows[i].jittered <= rows[i].worst;
        t.add(grid[i].n, grid[i].c, grid[i].p, rows[i].worst, rows[i].jittered,
              rows[i].jittered <= rows[i].worst);
    }
    out.add("a4_jittered_within_worst", all_within ? 1 : 0, "bool");
    t.print(std::cout,
            "A4: the S(t) prediction is a worst case — randomized (smaller) "
            "delays always finish no later");
}

void ablation_a6(bench::JsonReporter& out) {
    struct Point {
        unsigned depth = 0;
        BroadcastScheme scheme = BroadcastScheme::kBranchingPaths;
    };
    std::vector<Point> grid;
    for (unsigned depth : {4u, 6u, 8u})
        for (auto scheme : {BroadcastScheme::kBranchingPaths, BroadcastScheme::kDirectUnicast})
            grid.push_back({depth, scheme});

    struct Row {
        double free_units = 0, spaced_units = 0;
        NodeId n = 0;
    };
    const auto rows = exec::sweep_map(grid, [](const Point& p, exec::TaskContext&) {
        const graph::Graph g = graph::make_complete_binary_tree(p.depth);
        const auto free = topo::run_broadcast(g, p.scheme, 0);
        node::ClusterConfig cfg;
        cfg.net.link_spacing = 1;
        const auto spaced = topo::run_broadcast(g, p.scheme, 0, cfg);
        return Row{static_cast<double>(free.time_units),
                   static_cast<double>(spaced.time_units), g.node_count()};
    });
    util::Table t({"depth", "n", "scheme", "units_infinite_links", "units_spaced",
                   "thm3_lower_bound"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
        t.add(grid[i].depth, rows[i].n, topo::scheme_name(grid[i].scheme),
              rows[i].free_units, rows[i].spaced_units,
              topo::one_way_lower_bound(grid[i].depth));
        if (grid[i].scheme == BroadcastScheme::kDirectUnicast)
            out.add("a6_unicast_spaced_depth" + std::to_string(grid[i].depth),
                    rows[i].spaced_units, "units");
    }
    t.print(std::cout,
            "A6: finite link capacity (1 packet/link/unit) — direct unicast's "
            "1-unit trick evaporates; branching paths, which already sends one "
            "message per link per wave, is untouched (Theorem 3's implicit "
            "model)");
}

void bm_broadcast_serialized_sends(benchmark::State& state) {
    const graph::Graph g = graph::make_star(static_cast<NodeId>(state.range(0)));
    node::ClusterConfig cfg;
    cfg.free_multisend = false;
    for (auto _ : state) {
        const auto out = topo::run_broadcast(g, BroadcastScheme::kBranchingPaths, 0, cfg);
        benchmark::DoNotOptimize(out.elapsed);
    }
}
BENCHMARK(bm_broadcast_serialized_sends)->Range(64, 1024);

}  // namespace

int main(int argc, char** argv) {
    bench::JsonReporter out("ablation");
    ablation_a1(out);
    ablation_a2(out);
    ablation_a3(out);
    ablation_a4(out);
    ablation_a6(out);
    out.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
