// Ablations of the model features DESIGN.md calls out.
//
// A1 — the free multi-link send ("at no extra processing cost",
//      Section 2, validated on PARIS): without it every extra packet
//      injected by a handler costs P, so high-degree branch points of
//      the broadcast serialize and the Theorem 2 time bound degrades
//      by a degree factor.
// A2 — the dmax path-length restriction: maximum ANR header lengths per
//      broadcast scheme (layered-BFS needs O(n^2); the rest O(n)).
// A3 — the election's INOUT-tree return routes versus naive reverse
//      concatenation (the paper rejects the latter because its length
//      "may be more than n").
// A4 — the FIFO requirement of Section 5: with randomized (sub-worst-
//      case) delays the gather finishes no later than the prediction;
//      the prediction is exactly the worst case.
#include <benchmark/benchmark.h>

#include <iostream>

#include "fastnet.hpp"

namespace {

using namespace fastnet;
using topo::BroadcastScheme;

void ablation_a1() {
    util::Table t({"topology", "n", "units_free_multisend", "units_serialized",
                   "slowdown"});
    auto probe = [&t](const char* name, const graph::Graph& g) {
        const auto with = topo::run_broadcast(g, BroadcastScheme::kBranchingPaths, 0);
        node::ClusterConfig cfg;
        cfg.free_multisend = false;
        const auto without = topo::run_broadcast(g, BroadcastScheme::kBranchingPaths, 0, cfg);
        FASTNET_ENSURES(with.all_received && without.all_received);
        t.add(name, g.node_count(), with.time_units, without.time_units,
              without.time_units / with.time_units);
    };
    probe("star", graph::make_star(256));
    probe("binary", graph::make_complete_binary_tree(7));
    probe("path", graph::make_path(256));
    probe("caterpillar", graph::make_caterpillar(64, 3));
    Rng rng(4);
    probe("random", graph::make_random_tree(256, rng));
    t.print(std::cout,
            "A1: broadcast time with vs without the free multi-link send — "
            "high-degree roots serialize without it");
}

void ablation_a2() {
    util::Table t({"shape", "n", "scheme", "max_header_len", "len/n"});
    auto probe = [&t](const char* shape, const graph::Graph& g) {
        const NodeId n = g.node_count();
        for (auto scheme : {BroadcastScheme::kBranchingPaths, BroadcastScheme::kDfsToken,
                            BroadcastScheme::kLayeredBfs, BroadcastScheme::kDirectUnicast}) {
            const auto out = topo::run_broadcast(g, scheme, 0);
            const double growth =
                static_cast<double>(out.cost.max_header_len) / static_cast<double>(n);
            t.add(shape, n, topo::scheme_name(scheme), out.cost.max_header_len, growth);
        }
    };
    for (NodeId exp : {5u, 7u}) probe("binary", graph::make_complete_binary_tree(exp));
    // Deep trees are the worst case for layered BFS: the header revisits
    // every prefix layer — Theta(n^2) labels on a path.
    for (NodeId n : {32u, 64u, 128u}) probe("path", graph::make_path(n));
    t.print(std::cout,
            "A2: maximum ANR header length (labels) — layered-BFS needs "
            "Theta(n^2) headers on deep trees, hence unbounded dmax; the "
            "others stay O(n)");
}

void ablation_a3() {
    util::Table t({"n", "actual_max_return_anr", "naive_reverse_concat", "naive/n"});
    for (NodeId n : {64u, 256u, 1024u}) {
        Rng rng(n + 7);
        const graph::Graph g = graph::make_random_connected(n, 1, 20, rng);
        const auto out = elect::run_election(g);
        FASTNET_ENSURES(out.unique_leader);
        t.add(n, out.max_return_len, out.max_naive_return_len,
              static_cast<double>(out.max_naive_return_len) / n);
    }
    t.print(std::cout,
            "A3: election return routes — INOUT-tree splices stay <= 2n while "
            "naive reverse concatenation keeps growing");
}

void ablation_a4() {
    util::Table t({"n", "C", "P", "worst_case_completion", "jittered_completion",
                   "jittered<=worst"});
    for (std::uint64_t n : {32ull, 128ull}) {
        for (auto [c, p] : std::vector<std::pair<Tick, Tick>>{{4, 2}, {8, 4}}) {
            const auto r = gsf::build_optimal_tree(n, c, p);
            ModelParams params;
            params.hop_delay = c;
            params.ncu_delay = p;
            const auto worst = gsf::run_tree_gather(r.tree, params);
            // Re-run with randomized sub-worst-case delays: C' in [0, C],
            // P' in [1, P]; FIFO still enforced per link.
            node::ClusterConfig cfg;
            cfg.params = params;
            cfg.net.hop_delay_min = 0;
            cfg.ncu_delay_min = 1;
            cfg.seed = n * 31 + static_cast<std::uint64_t>(c);
            auto spec_tree = r.tree;
            // run via the protocol directly to pass the cluster config
            auto spec = std::make_shared<gsf::GatherSpec>();
            spec->tree = spec_tree;
            spec->combine = gsf::combine_sum();
            Rng rin(99);
            spec->inputs.resize(n);
            for (auto& v : spec->inputs) v = rin.below(1000);
            node::Cluster cluster(graph::make_complete(static_cast<NodeId>(n)),
                                  [&spec](NodeId) {
                                      return std::make_unique<gsf::TreeGatherProtocol>(spec);
                                  },
                                  cfg);
            cluster.start_all(0);
            cluster.run();
            const auto& root = cluster.protocol_as<gsf::TreeGatherProtocol>(0);
            t.add(n, c, p, worst.completion, root.done_time(),
                  root.done_time() <= worst.completion);
        }
    }
    t.print(std::cout,
            "A4: the S(t) prediction is a worst case — randomized (smaller) "
            "delays always finish no later");
}

void ablation_a6() {
    util::Table t({"depth", "n", "scheme", "units_infinite_links", "units_spaced",
                   "thm3_lower_bound"});
    for (unsigned depth : {4u, 6u, 8u}) {
        const graph::Graph g = graph::make_complete_binary_tree(depth);
        for (auto scheme : {BroadcastScheme::kBranchingPaths, BroadcastScheme::kDirectUnicast}) {
            const auto free = topo::run_broadcast(g, scheme, 0);
            node::ClusterConfig cfg;
            cfg.net.link_spacing = 1;
            const auto spaced = topo::run_broadcast(g, scheme, 0, cfg);
            t.add(depth, g.node_count(), topo::scheme_name(scheme), free.time_units,
                  spaced.time_units, topo::one_way_lower_bound(depth));
        }
    }
    t.print(std::cout,
            "A6: finite link capacity (1 packet/link/unit) — direct unicast's "
            "1-unit trick evaporates; branching paths, which already sends one "
            "message per link per wave, is untouched (Theorem 3's implicit "
            "model)");
}

void bm_broadcast_serialized_sends(benchmark::State& state) {
    const graph::Graph g = graph::make_star(static_cast<NodeId>(state.range(0)));
    node::ClusterConfig cfg;
    cfg.free_multisend = false;
    for (auto _ : state) {
        const auto out = topo::run_broadcast(g, BroadcastScheme::kBranchingPaths, 0, cfg);
        benchmark::DoNotOptimize(out.elapsed);
    }
}
BENCHMARK(bm_broadcast_serialized_sends)->Range(64, 1024);

}  // namespace

int main(int argc, char** argv) {
    ablation_a1();
    ablation_a2();
    ablation_a3();
    ablation_a4();
    ablation_a6();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
