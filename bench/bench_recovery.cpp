// Experiment R1 (docs/ROBUSTNESS.md): ticks-to-reconvergence vs churn.
//
// A healed fault burst — link flaps plus hard node crash/restarts over a
// fixed window — hits a maintenance cluster that keeps broadcasting.
// Theorem 1 says every view becomes exact again after the last
// topological change; this bench measures *how long* that takes as the
// churn intensity grows, for local-topology vs full-knowledge payloads,
// and holds every run against the convergence oracle. Results go to
// BENCH_recovery.json (see docs/PERF.md, "Reading BENCH_*.json").
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "fastnet.hpp"
#include "json_reporter.hpp"

namespace {

using namespace fastnet;

constexpr Tick kHealAt = 600;
constexpr Tick kProbeStep = 25;  // reconvergence-time resolution

struct ChurnLevel {
    const char* name;
    unsigned crashes;
    unsigned flaps;
};

const std::vector<ChurnLevel> kLevels{
    {"calm", 0, 0}, {"light", 1, 2}, {"medium", 2, 4}, {"heavy", 4, 8}, {"extreme", 8, 16}};

struct Point {
    ChurnLevel level;
    bool full_knowledge = false;
    std::uint64_t seed = 0;
};

struct Row {
    Tick recovery_ticks = -1;  ///< -1: never reconverged within the run
    bool oracle_ok = false;
    std::uint64_t crashes = 0;
};

Row run_point(const Point& p) {
    Rng rng(33);
    const graph::Graph g = graph::make_random_connected(32, 2, 10, rng);

    fault::FaultModel model;
    model.link_flaps = p.level.flaps;
    model.node_crashes = p.level.crashes;
    model.window_from = 50;
    model.window_to = 500;
    model.heal_at = kHealAt;
    const fault::FaultInjector inj(model, 1988 + p.seed);

    topo::TopologyOptions topt;
    topt.rounds = 60;
    topt.period = 50;
    topt.full_knowledge = p.full_knowledge;

    node::ClusterConfig cfg;
    inj.configure(cfg);
    node::Cluster c(g, topo::make_topology_maintenance(g.node_count(), topt), cfg);
    c.start_all(0);
    inj.compile(c.graph()).apply(c);

    // Step past the heal and probe every kProbeStep ticks: the first
    // instant all views are exact again, relative to the heal.
    Row row;
    for (Tick t = kHealAt + kProbeStep; t <= kHealAt + 60 * 50; t += kProbeStep) {
        c.run_until(t);
        if (topo::all_views_converged(c)) {
            row.recovery_ticks = t - kHealAt;
            break;
        }
    }
    c.run();
    row.oracle_ok = fault::check_theorem1(c).ok();
    for (NodeId u = 0; u < c.node_count(); ++u) row.crashes += c.metrics().node(u).crashes;
    return row;
}

void experiment_r1(bench::JsonReporter& out) {
    constexpr unsigned kSeeds = 5;
    std::vector<Point> grid;
    for (const ChurnLevel& lvl : kLevels)
        for (int full = 0; full < 2; ++full)
            for (std::uint64_t s = 0; s < kSeeds; ++s)
                grid.push_back({lvl, full == 1, s});

    const auto rows =
        exec::sweep_map(grid, [](const Point& p, exec::TaskContext&) { return run_point(p); });

    util::Table t({"churn", "crashes_mean", "recovery_local", "recovery_full", "oracle"});
    for (std::size_t lvl = 0; lvl < kLevels.size(); ++lvl) {
        double mean[2] = {0, 0};
        double crashes = 0;
        bool all_ok = true;
        bool all_recovered = true;
        for (std::size_t i = 0; i < grid.size(); ++i) {
            if (std::string(grid[i].level.name) != kLevels[lvl].name) continue;
            const int m = grid[i].full_knowledge ? 1 : 0;
            all_ok &= rows[i].oracle_ok;
            all_recovered &= rows[i].recovery_ticks >= 0;
            mean[m] += static_cast<double>(rows[i].recovery_ticks) / kSeeds;
            if (m == 0) crashes += static_cast<double>(rows[i].crashes) / kSeeds;
        }
        FASTNET_ENSURES_MSG(all_ok && all_recovered,
                            "a recovery run violated the convergence oracle");
        t.add(kLevels[lvl].name, crashes, mean[0], mean[1], all_ok);
        out.add(std::string("r1_recovery_ticks_local_") + kLevels[lvl].name, mean[0], "ticks");
        out.add(std::string("r1_recovery_ticks_full_") + kLevels[lvl].name, mean[1], "ticks");
    }
    t.print(std::cout,
            "R1: mean ticks from heal to exact views (5 seeds, n=32) — Theorem 1's "
            "reconvergence vs churn intensity and payload mode");
}

// Phase-budget audit: one heavy-churn recovery run with live phase
// attribution (Cluster::mark_phase + sampled metrics). Phase 1 is the
// clean broadcast prefix, phase 2 the fault window, phase 3 everything
// after the heal. Each phase's system calls are held against an
// executable bound — a broadcast round costs at most n*(n-1) receptions
// plus n initiations, i.e. < n^2 calls, and a phase spanning T ticks
// holds at most ceil(T / period) + 1 round starts per node (restarts can
// re-initiate, hence the slack factor). Verdicts ship as
// AUDIT_recovery.json for fastnet_report ingestion.
void experiment_phase_audit(bench::JsonReporter& out) {
    constexpr Tick kFaultsFrom = 50;
    Rng rng(33);
    const graph::Graph g = graph::make_random_connected(32, 2, 10, rng);

    fault::FaultModel model;
    model.link_flaps = 8;
    model.node_crashes = 4;
    model.window_from = kFaultsFrom;
    model.window_to = 500;
    model.heal_at = kHealAt;
    const fault::FaultInjector inj(model, 1988);

    topo::TopologyOptions topt;
    topt.rounds = 60;
    topt.period = 50;
    topt.full_knowledge = true;

    node::ClusterConfig cfg;
    inj.configure(cfg);
    cfg.sample_window = 50;

    node::Cluster c(g, topo::make_topology_maintenance(g.node_count(), topt), cfg);
    c.mark_phase(0, 1);
    c.mark_phase(kFaultsFrom, 2);
    c.mark_phase(kHealAt, 3);
    c.start_all(0);
    inj.compile(c.graph()).apply(c);
    c.run();
    FASTNET_ENSURES_MSG(fault::check_theorem1(c).ok(),
                        "phase-audit run violated the convergence oracle");

    const double n = static_cast<double>(g.node_count());
    const double per_round = n * n;
    const auto rounds_in = [&](Tick span) {
        return static_cast<double>(span / topt.period + 2);
    };
    obs::BoundAudit audit("recovery_phases");
    audit.phase_budget(c.metrics(), 1,
                       static_cast<std::uint64_t>(per_round * rounds_in(kFaultsFrom)));
    audit.phase_budget(
        c.metrics(), 2,
        static_cast<std::uint64_t>(per_round * rounds_in(kHealAt - kFaultsFrom)));
    audit.phase_budget(c.metrics(), 3,
                       static_cast<std::uint64_t>(per_round * topt.rounds));
    FASTNET_ENSURES_MSG(audit.pass(), "a recovery phase blew its system-call budget");
    if (!exec::write_text_file("AUDIT_recovery.json", obs::audit_json(audit))) {
        std::cerr << "cannot write AUDIT_recovery.json\n";
    } else {
        std::cout << "wrote AUDIT_recovery.json (" << audit.checks().size()
                  << " phase budgets, pass=" << (audit.pass() ? "true" : "false")
                  << ")\n";
    }
    for (const auto& [phase, calls] : c.metrics().sampling()->phase_calls())
        out.add("r1_phase" + std::to_string(phase) + "_calls",
                static_cast<double>(calls), "calls");
}

void bm_crash_restart_cycle(benchmark::State& state) {
    const graph::Graph g = graph::make_cycle(8);
    node::Cluster c(g, [](NodeId) { return std::make_unique<node::Protocol>(); });
    c.run();
    for (auto _ : state) {
        c.crash_node(3);
        c.restart_node(3);
        c.run();
        benchmark::DoNotOptimize(c.metrics().node(3).restarts);
    }
}
BENCHMARK(bm_crash_restart_cycle);

void bm_chaos_maintenance_run(benchmark::State& state) {
    const auto level = kLevels[3];  // heavy
    for (auto _ : state) {
        Point p;
        p.level = level;
        p.full_knowledge = true;
        const Row r = run_point(p);
        benchmark::DoNotOptimize(r.recovery_ticks);
    }
}
BENCHMARK(bm_chaos_maintenance_run)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    bench::JsonReporter out("recovery");
    experiment_r1(out);
    experiment_phase_audit(out);
    out.write();
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
