// The simulation clock and run loop.
//
// A Simulator owns an EventQueue and a current time; components schedule
// relative ("after") or absolute ("at") events. The loop runs until the
// queue drains, a step budget trips (runaway-protocol guard), or an
// explicit stop. Time never goes backwards.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "sim/event_queue.hpp"

namespace fastnet::sim {

class Simulator {
public:
    Tick now() const { return now_; }

    /// Schedules fn at absolute time `at` >= now().
    EventId at(Tick when, InlineFn fn);

    /// Schedules fn `delay` ticks from now (delay >= 0).
    EventId after(Tick delay, InlineFn fn);

    /// Schedules fn at `when` >= now() with a caller-supplied tie-break
    /// priority (see EventQueue::schedule_keyed). Used by the parallel
    /// kernel, where event order must not depend on schedule-call order.
    EventId at_keyed(Tick when, std::uint64_t pri, InlineFn fn);

    void cancel(EventId id) { queue_.cancel(id); }

    /// Runs until the queue is empty or `max_events` have executed.
    /// Returns the number of events executed.
    std::uint64_t run(std::uint64_t max_events = kDefaultEventBudget);

    /// Runs until simulated time would exceed `until` (events at exactly
    /// `until` still run). Returns the number of events executed.
    std::uint64_t run_until(Tick until, std::uint64_t max_events = kDefaultEventBudget);

    /// Requests the run loop to return after the current event.
    void stop() { stopped_ = true; }

    /// Advances the clock to `t` >= now() without running anything.
    /// Requires that no pending event is earlier than `t`. The parallel
    /// kernel uses this at window barriers so control actions applied
    /// between windows schedule against the barrier time.
    void advance_to(Tick t);

    bool idle() const { return queue_.empty(); }
    std::size_t pending_events() const { return queue_.size(); }

    /// Time of the earliest pending event; kNever when idle.
    Tick next_time() const { return queue_.next_time(); }

    static constexpr std::uint64_t kDefaultEventBudget = 200'000'000ULL;

private:
    EventQueue queue_;
    Tick now_ = 0;
    bool stopped_ = false;
};

}  // namespace fastnet::sim
