#include "sim/trace_spill.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/expect.hpp"

namespace fastnet::sim {

namespace {

/// Fixed-size part of one on-disk record (the detail bytes follow).
constexpr std::size_t kRecordFixedBytes = 8 * 6 + 4 + 4 + 1 + 1;
/// v1 records lacked the `c` word.
constexpr std::size_t kRecordFixedBytesV1 = 8 * 5 + 4 + 4 + 1 + 1;
constexpr std::size_t kSegmentHeaderBytes = 4 + 4 + 8;
constexpr std::size_t kFileHeaderBytes = 8 + 4 + 4;
constexpr std::size_t kStatsPayloadBytes = 8 * 4;

void put_u32(std::string& buf, std::uint32_t v) {
    for (unsigned i = 0; i < 4; ++i) buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& buf, std::uint64_t v) {
    for (unsigned i = 0; i < 8; ++i) buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(const unsigned char* p) {
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t get_u64(const unsigned char* p) {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

bool fail(std::string* error, const std::string& message) {
    if (error) *error = message;
    return false;
}

}  // namespace

bool SpillWriter::open(const std::string& path, std::uint32_t shard, std::string* error) {
    FASTNET_EXPECTS(!out_.is_open());
    out_.open(path, std::ios::binary | std::ios::trunc);
    if (!out_) return fail(error, "cannot open spill file " + path);
    path_ = path;
    buf_.clear();
    buf_.append(kSpillMagic, sizeof(kSpillMagic));
    put_u32(buf_, kSpillVersion);
    put_u32(buf_, shard);
    out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    bytes_ = buf_.size();
    return static_cast<bool>(out_);
}

bool SpillWriter::write_segment(std::vector<Item>& items) {
    FASTNET_EXPECTS(out_.is_open());
    if (items.empty()) return true;
    // Each segment is one sorted run: (at, node_sort_key, seq). `seq` is
    // already unique per shard, so the sort is total.
    std::sort(items.begin(), items.end(), [](const Item& x, const Item& y) {
        if (x.at != y.at) return x.at < y.at;
        const std::uint64_t xk = trace_node_sort_key(x.node);
        const std::uint64_t yk = trace_node_sort_key(y.node);
        if (xk != yk) return xk < yk;
        return x.seq < y.seq;
    });
    buf_.clear();
    put_u32(buf_, kSpillSegmentMagic);
    put_u32(buf_, static_cast<std::uint32_t>(items.size()));
    put_u64(buf_, 0);  // payload_bytes backpatched below
    for (const Item& it : items) {
        put_u64(buf_, static_cast<std::uint64_t>(it.at));
        put_u64(buf_, it.seq);
        put_u64(buf_, it.lineage);
        put_u64(buf_, it.a);
        put_u64(buf_, it.b);
        put_u64(buf_, it.c);
        put_u32(buf_, it.node);
        put_u32(buf_, static_cast<std::uint32_t>(it.detail.size()));
        buf_.push_back(static_cast<char>(it.kind));
        buf_.push_back(static_cast<char>(it.flag));
        buf_.append(it.detail.data(), it.detail.size());
    }
    const std::uint64_t payload = buf_.size() - kSegmentHeaderBytes;
    for (unsigned i = 0; i < 8; ++i)
        buf_[8 + i] = static_cast<char>((payload >> (8 * i)) & 0xff);
    out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    out_.flush();
    ++segments_;
    records_ += items.size();
    bytes_ += buf_.size();
    return static_cast<bool>(out_);
}

bool SpillWriter::finish(const SpillStats& stats) {
    FASTNET_EXPECTS(out_.is_open());
    buf_.clear();
    put_u32(buf_, kSpillStatsMagic);
    put_u32(buf_, 0);
    put_u64(buf_, kStatsPayloadBytes);
    put_u64(buf_, stats.total_recorded);
    put_u64(buf_, stats.dropped);
    put_u64(buf_, stats.detail_dropped);
    put_u64(buf_, stats.spilled_records);
    out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    bytes_ += buf_.size();
    out_.close();
    return static_cast<bool>(out_);
}

bool SpillFile::open(const std::string& path, std::string* error) {
    path_ = path;
    segments_.clear();
    stats_ = {};
    truncated_ = false;
    std::ifstream in(path, std::ios::binary);
    if (!in) return fail(error, "cannot open spill file " + path);
    in.seekg(0, std::ios::end);
    const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
    in.seekg(0);
    unsigned char header[kFileHeaderBytes];
    if (!in.read(reinterpret_cast<char*>(header), sizeof(header)))
        return fail(error, path + ": not a spill file (short header)");
    if (std::memcmp(header, kSpillMagic, sizeof(kSpillMagic)) != 0)
        return fail(error, path + ": not a spill file (bad magic)");
    version_ = get_u32(header + 8);
    if (version_ < kSpillMinVersion || version_ > kSpillVersion)
        return fail(error,
                    path + ": unsupported spill version " + std::to_string(version_));
    shard_ = get_u32(header + 12);

    std::uint64_t offset = kFileHeaderBytes;
    bool saw_stats = false;
    while (offset + kSegmentHeaderBytes <= file_size) {
        unsigned char seg[kSegmentHeaderBytes];
        in.seekg(static_cast<std::streamoff>(offset));
        if (!in.read(reinterpret_cast<char*>(seg), sizeof(seg))) break;
        const std::uint32_t magic = get_u32(seg);
        const std::uint32_t count = get_u32(seg + 4);
        const std::uint64_t payload = get_u64(seg + 8);
        if (offset + kSegmentHeaderBytes + payload > file_size) {
            // Crash mid-segment: drop the partial tail.
            truncated_ = true;
            break;
        }
        if (magic == kSpillSegmentMagic) {
            Segment s;
            s.offset = offset + kSegmentHeaderBytes;
            s.records = count;
            s.payload_bytes = payload;
            segments_.push_back(s);
        } else if (magic == kSpillStatsMagic) {
            if (payload != kStatsPayloadBytes)
                return fail(error, path + ": malformed stats trailer");
            unsigned char body[kStatsPayloadBytes];
            if (!in.read(reinterpret_cast<char*>(body), sizeof(body))) break;
            stats_.total_recorded = get_u64(body);
            stats_.dropped = get_u64(body + 8);
            stats_.detail_dropped = get_u64(body + 16);
            stats_.spilled_records = get_u64(body + 24);
            saw_stats = true;
        } else {
            return fail(error, path + ": corrupt segment header at offset " +
                                   std::to_string(offset));
        }
        offset += kSegmentHeaderBytes + payload;
    }
    if (offset < file_size && !truncated_) truncated_ = true;
    if (!saw_stats) {
        // Crash before the trailer: rebuild what the segments prove.
        truncated_ = true;
        stats_.recovered = true;
        for (const Segment& s : segments_) stats_.spilled_records += s.records;
        stats_.total_recorded = stats_.spilled_records;
    }
    return true;
}

bool SpillSegmentCursor::open(const SpillFile& file, std::size_t segment_index,
                              std::string* error) {
    FASTNET_EXPECTS(segment_index < file.segments().size());
    const SpillFile::Segment& seg = file.segments()[segment_index];
    in_.open(file.path(), std::ios::binary);
    if (!in_) return fail(error, "cannot open spill file " + file.path());
    in_.seekg(static_cast<std::streamoff>(seg.offset));
    remaining_ = seg.records;
    has_c_ = file.version() >= 2;
    return true;
}

bool SpillSegmentCursor::next(TraceRecord& out, std::uint64_t& seq) {
    if (remaining_ == 0) return false;
    unsigned char fixed[kRecordFixedBytes];
    const std::size_t fixed_bytes = has_c_ ? kRecordFixedBytes : kRecordFixedBytesV1;
    if (!in_.read(reinterpret_cast<char*>(fixed), static_cast<std::streamsize>(fixed_bytes))) {
        error_ = "short read inside segment";
        remaining_ = 0;
        return false;
    }
    out.at = static_cast<Tick>(get_u64(fixed));
    seq = get_u64(fixed + 8);
    out.lineage = get_u64(fixed + 16);
    out.a = get_u64(fixed + 24);
    out.b = get_u64(fixed + 32);
    // Past `b` the v1 layout simply omits the 8-byte `c` word.
    const std::size_t tail = has_c_ ? 40 : 32;
    out.c = has_c_ ? get_u64(fixed + 40) : 0;
    out.node = get_u32(fixed + tail + 8);
    const std::uint32_t detail_len = get_u32(fixed + tail + 12);
    out.kind = static_cast<TraceKind>(fixed[tail + 16]);
    out.flag = fixed[tail + 17];
    out.detail.clear();
    if (detail_len != 0) {
        out.detail.resize(detail_len);
        if (!in_.read(out.detail.data(), detail_len)) {
            error_ = "short detail read inside segment";
            remaining_ = 0;
            return false;
        }
    }
    --remaining_;
    return true;
}

std::string spill_shard_path(const std::string& dir, std::uint32_t shard) {
    char name[32];
    std::snprintf(name, sizeof(name), "shard-%04u.fnspill", shard);
    return (std::filesystem::path(dir) / name).string();
}

bool is_spill_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    char magic[sizeof(kSpillMagic)];
    if (!in.read(magic, sizeof(magic))) return false;
    return std::memcmp(magic, kSpillMagic, sizeof(kSpillMagic)) == 0;
}

std::vector<std::string> spill_files(const std::string& path, std::string* error) {
    std::vector<std::string> out;
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
        for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
            if (!entry.is_regular_file()) continue;
            if (entry.path().extension() == ".fnspill")
                out.push_back(entry.path().string());
        }
        std::sort(out.begin(), out.end());
        if (out.empty()) fail(error, path + ": no *.fnspill files in directory");
        return out;
    }
    if (!std::filesystem::is_regular_file(path, ec)) {
        fail(error, path + ": no such file or directory");
        return out;
    }
    out.push_back(path);
    return out;
}

bool SpillMerge::open(const std::vector<std::string>& paths, std::string* error) {
    files_.clear();
    cursors_.clear();
    heap_.clear();
    totals_ = {};
    truncated_ = false;
    if (paths.empty()) return fail(error, "no spill files to merge");
    for (const std::string& p : paths) {
        auto file = std::make_unique<SpillFile>();
        if (!file->open(p, error)) return false;
        totals_.total_recorded += file->stats().total_recorded;
        totals_.dropped += file->stats().dropped;
        totals_.detail_dropped += file->stats().detail_dropped;
        totals_.spilled_records += file->stats().spilled_records;
        totals_.recovered = totals_.recovered || file->stats().recovered;
        truncated_ = truncated_ || file->truncated();
        for (std::size_t s = 0; s < file->segments().size(); ++s) {
            cursors_.emplace_back();
            Cursor& c = cursors_.back();
            c.shard = file->shard();
            if (!c.reader.open(*file, s, error)) return false;
        }
        files_.push_back(std::move(file));
    }
    for (std::size_t i = 0; i < cursors_.size(); ++i)
        if (advance(i)) heap_.push_back(i);
    // Order the heap: a simple make_heap over the merge key.
    auto greater = [this](std::size_t x, std::size_t y) {
        const Cursor& a = cursors_[x];
        const Cursor& b = cursors_[y];
        if (a.head.at != b.head.at) return a.head.at > b.head.at;
        const std::uint64_t ak = trace_node_sort_key(a.head.node);
        const std::uint64_t bk = trace_node_sort_key(b.head.node);
        if (ak != bk) return ak > bk;
        if (a.shard != b.shard) return a.shard > b.shard;
        return a.seq > b.seq;
    };
    std::make_heap(heap_.begin(), heap_.end(), greater);
    return true;
}

bool SpillMerge::advance(std::size_t idx) {
    Cursor& c = cursors_[idx];
    return c.reader.next(c.head, c.seq);
}

bool SpillMerge::next(TraceRecord& out) {
    if (heap_.empty()) return false;
    auto greater = [this](std::size_t x, std::size_t y) {
        const Cursor& a = cursors_[x];
        const Cursor& b = cursors_[y];
        if (a.head.at != b.head.at) return a.head.at > b.head.at;
        const std::uint64_t ak = trace_node_sort_key(a.head.node);
        const std::uint64_t bk = trace_node_sort_key(b.head.node);
        if (ak != bk) return ak > bk;
        if (a.shard != b.shard) return a.shard > b.shard;
        return a.seq > b.seq;
    };
    std::pop_heap(heap_.begin(), heap_.end(), greater);
    const std::size_t idx = heap_.back();
    out = std::move(cursors_[idx].head);
    if (advance(idx)) {
        std::push_heap(heap_.begin(), heap_.end(), greater);
    } else {
        heap_.pop_back();
    }
    return true;
}

}  // namespace fastnet::sim
