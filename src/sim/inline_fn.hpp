// Small-buffer-optimized move-only callback for the event fast path.
//
// Every scheduled event in the simulator used to be a std::function whose
// capture, past libstdc++'s 16-byte SBO, cost one heap allocation per
// event — and the hot captures (Network's transmit event: this pointer,
// node/edge ids, a pooled Packet*) are ~32 bytes. InlineFn stores any
// callable up to kInlineSize bytes inline in the event-pool slot itself;
// larger callables (rare: protocol lambdas dragging whole headers along)
// fall back to the heap transparently. Move-only, since events execute
// exactly once; the old copy-on-run of std::function is exactly the kind
// of hidden cost this type exists to delete.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace fastnet::sim {

class InlineFn {
public:
    /// Inline capacity. Sized for the simulator's hot captures (a this
    /// pointer plus a few ids and a pooled pointer) with headroom; one
    /// event-pool slot is `kInlineSize + vtable pointer` wide, so keep it
    /// cache-friendly.
    static constexpr std::size_t kInlineSize = 48;

    InlineFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, InlineFn> &&
                  std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
    InlineFn(F&& f) {  // NOLINT(google-explicit-constructor) — callable sink
        using Fn = std::remove_cvref_t<F>;
        if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
            ops_ = &inline_ops<Fn>;
        } else {
            ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
            ops_ = &heap_ops<Fn>;
        }
    }

    InlineFn(InlineFn&& o) noexcept { move_from(o); }

    InlineFn& operator=(InlineFn&& o) noexcept {
        if (this != &o) {
            reset();
            move_from(o);
        }
        return *this;
    }

    InlineFn(const InlineFn&) = delete;
    InlineFn& operator=(const InlineFn&) = delete;

    ~InlineFn() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    void operator()() { ops_->invoke(buf_); }

    /// Destroys the held callable (if any); leaves the fn empty.
    void reset() {
        if (ops_ != nullptr) {
            if (ops_->destroy != nullptr) ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

private:
    // Null move_construct/destroy mark a trivially-relocatable callable:
    // moves become a straight buffer copy and destruction a no-op, which
    // removes two indirect calls per event for the hot captures (plain
    // pointers and ids).
    struct Ops {
        void (*invoke)(void*);
        void (*move_construct)(void* dst, void* src);  // src left destructible
        void (*destroy)(void*);
    };

    template <typename Fn>
    static constexpr bool is_trivial_fn =
        std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>;

    template <typename Fn>
    static constexpr Ops inline_ops = {
        [](void* p) { (*static_cast<Fn*>(p))(); },
        is_trivial_fn<Fn> ? nullptr
                          : +[](void* dst, void* src) {
                                ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
                            },
        is_trivial_fn<Fn> ? nullptr
                          : +[](void* p) { static_cast<Fn*>(p)->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops heap_ops = {
        [](void* p) { (**static_cast<Fn**>(p))(); },
        [](void* dst, void* src) {
            ::new (dst) Fn*(*static_cast<Fn**>(src));
            *static_cast<Fn**>(src) = nullptr;
        },
        [](void* p) { delete *static_cast<Fn**>(p); },
    };

    void move_from(InlineFn& o) noexcept {
        if (o.ops_ != nullptr) {
            if (o.ops_->move_construct == nullptr) {
                std::memcpy(buf_, o.buf_, kInlineSize);
            } else {
                o.ops_->move_construct(buf_, o.buf_);
                o.ops_->destroy(o.buf_);
            }
            ops_ = o.ops_;
            o.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineSize];
    const Ops* ops_ = nullptr;
};

}  // namespace fastnet::sim
