// Spill-to-disk backing store for sim::Trace — the piece that lets a
// million-node traced run keep a bounded resident footprint.
//
// A Trace with spill enabled never overwrites its ring: whenever the
// ring (or the configured resident budget) fills, the resident records
// and their detail-arena slices are drained to an append-only binary
// *spill file* as one chunked segment, and the ring restarts empty.
// Each segment is sorted by (at, node_sort_key, seq) at drain time,
// where `seq` is the per-shard recording index — so every segment is a
// sorted run, and a k-way merge over all segments of all shards
// (SpillMerge, ordered by (at, node_sort_key, shard, seq)) reproduces
// exactly the order `node::ParallelCluster::merged_trace` produces with
// std::stable_sort over concatenated in-memory snapshots. That identity
// is what makes spilled exports byte-identical to the in-memory path
// (see docs/OBSERVABILITY.md, "Tracing at scale").
//
// On-disk layout (all integers little-endian):
//   file   := header segment* stats?
//   header := "FNSPILL1" u32 version=2 u32 shard
//   segment:= u32 0x46534547 ("GESF") u32 record_count u64 payload_bytes
//             record*            — payload_bytes of records
//   record := i64 at  u64 seq  u64 lineage  u64 a  u64 b  u64 c
//             u32 node  u32 detail_len  u8 kind  u8 flag  detail bytes
//   stats  := u32 0x46535354 ("TSSF") u32 0 u64 32
//             u64 total_recorded  u64 dropped  u64 detail_dropped
//             u64 spilled_records
//
// Version history: v1 records had no `c` word (50 fixed bytes instead
// of 58). Readers accept both; v1 records materialize with c = 0.
// Writers always emit the current version.
//
// A reader tolerates a truncated tail (crash mid-segment): complete
// segments are kept, the partial one is discarded, and when the stats
// trailer is missing the totals are rebuilt from the surviving segments
// and flagged `recovered`.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "sim/trace.hpp"

namespace fastnet::sim {

/// Sort key that places network-scope records (node == kNoNode) after
/// every real node at the same tick — the merged-trace ordering contract
/// shared by ParallelCluster::merged_trace and SpillMerge.
inline std::uint64_t trace_node_sort_key(NodeId node) {
    return node == kNoNode ? ~0ULL : static_cast<std::uint64_t>(node);
}

inline constexpr char kSpillMagic[8] = {'F', 'N', 'S', 'P', 'I', 'L', 'L', '1'};
inline constexpr std::uint32_t kSpillVersion = 2;
/// Oldest version the readers still accept (records without `c`).
inline constexpr std::uint32_t kSpillMinVersion = 1;
inline constexpr std::uint32_t kSpillSegmentMagic = 0x46534547;  // "GESF"
inline constexpr std::uint32_t kSpillStatsMagic = 0x46535354;    // "TSSF"

/// Run totals carried in the stats trailer (or rebuilt by the reader
/// after a crash-truncated file).
struct SpillStats {
    std::uint64_t total_recorded = 0;
    std::uint64_t dropped = 0;
    std::uint64_t detail_dropped = 0;
    std::uint64_t spilled_records = 0;
    bool recovered = false;  ///< Reader-side: trailer missing, totals rebuilt.
};

/// Appends segments to one shard's spill file. Owned by sim::Trace when
/// spill is enabled; also usable directly by tests.
class SpillWriter {
public:
    /// One record as drained from the ring; `detail` views the trace's
    /// arena and is copied into the segment payload.
    struct Item {
        Tick at = 0;
        std::uint64_t seq = 0;
        std::uint64_t lineage = 0;
        std::uint64_t a = 0;
        std::uint64_t b = 0;
        std::uint64_t c = 0;
        NodeId node = kNoNode;
        TraceKind kind = TraceKind::kCustom;
        std::uint8_t flag = 0;
        std::string_view detail{};
    };

    SpillWriter() = default;

    bool open(const std::string& path, std::uint32_t shard, std::string* error = nullptr);
    bool is_open() const { return out_.is_open(); }
    const std::string& path() const { return path_; }

    /// Sorts `items` by (at, node_sort_key, seq) and appends them as one
    /// segment. Empty batches write nothing.
    bool write_segment(std::vector<Item>& items);

    /// Writes the stats trailer and closes the file.
    bool finish(const SpillStats& stats);

    std::uint64_t segments() const { return segments_; }
    std::uint64_t records() const { return records_; }
    std::uint64_t bytes_written() const { return bytes_; }

private:
    std::ofstream out_;
    std::string path_;
    std::string buf_;  ///< Reused segment build buffer.
    std::uint64_t segments_ = 0;
    std::uint64_t records_ = 0;
    std::uint64_t bytes_ = 0;
};

/// Directory of one spill file: segment table + stats, parsed up front.
class SpillFile {
public:
    struct Segment {
        std::uint64_t offset = 0;  ///< File offset of the first record.
        std::uint32_t records = 0;
        std::uint64_t payload_bytes = 0;
    };

    bool open(const std::string& path, std::string* error = nullptr);
    const std::string& path() const { return path_; }
    std::uint32_t shard() const { return shard_; }
    /// Format version of this file (see kSpillVersion history note).
    std::uint32_t version() const { return version_; }
    const std::vector<Segment>& segments() const { return segments_; }
    const SpillStats& stats() const { return stats_; }
    /// True when the file ended mid-segment (crash); the partial segment
    /// was discarded.
    bool truncated() const { return truncated_; }

private:
    std::string path_;
    std::uint32_t shard_ = 0;
    std::uint32_t version_ = kSpillVersion;
    std::vector<Segment> segments_;
    SpillStats stats_;
    bool truncated_ = false;
};

/// Streams the records of one segment of one spill file.
class SpillSegmentCursor {
public:
    bool open(const SpillFile& file, std::size_t segment_index,
              std::string* error = nullptr);
    /// False at end of segment (or on a decode error — see error()).
    bool next(TraceRecord& out, std::uint64_t& seq);
    const std::string& error() const { return error_; }

private:
    std::ifstream in_;
    std::uint32_t remaining_ = 0;
    bool has_c_ = true;  ///< False for v1 files (no `c` word; reads 0).
    std::string error_;
};

/// Canonical per-shard spill file name inside `dir`:
/// `<dir>/shard-NNNN.fnspill` (zero-padded, so lexicographic directory
/// order equals shard order).
std::string spill_shard_path(const std::string& dir, std::uint32_t shard);

/// True when `path` names a file starting with the spill magic.
bool is_spill_file(const std::string& path);

/// Expands `path` to the spill files it names: the file itself, or every
/// `*.fnspill` in the directory (sorted by name, which matches shard
/// order for writer-produced files). Empty result + error on failure.
std::vector<std::string> spill_files(const std::string& path, std::string* error = nullptr);

/// Deterministic k-way merge over every segment of every given spill
/// file, ordered by (at, node_sort_key, shard, seq) — the stable-sort
/// order of the in-memory merged trace. Streams one record at a time;
/// resident memory is O(total segments), not O(total records).
class SpillMerge {
public:
    bool open(const std::vector<std::string>& paths, std::string* error = nullptr);
    /// Pops the next record in merged order; false at end of stream.
    bool next(TraceRecord& out);
    /// Summed trailer stats of every input file.
    const SpillStats& totals() const { return totals_; }
    /// True when any input file was crash-truncated.
    bool truncated() const { return truncated_; }
    std::size_t file_count() const { return files_.size(); }

private:
    struct Cursor {
        SpillSegmentCursor reader;
        TraceRecord head;
        std::uint64_t seq = 0;
        std::uint32_t shard = 0;
    };

    bool advance(std::size_t idx);

    std::vector<std::unique_ptr<SpillFile>> files_;
    std::vector<Cursor> cursors_;
    std::vector<std::size_t> heap_;  ///< Indices into cursors_, min-heap.
    SpillStats totals_;
    bool truncated_ = false;
};

}  // namespace fastnet::sim
