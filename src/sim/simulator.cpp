#include "sim/simulator.hpp"

namespace fastnet::sim {

EventId Simulator::at(Tick when, InlineFn fn) {
    FASTNET_EXPECTS_MSG(when >= now_, "cannot schedule into the past");
    return queue_.schedule(when, std::move(fn));
}

EventId Simulator::after(Tick delay, InlineFn fn) {
    FASTNET_EXPECTS(delay >= 0);
    return at(now_ + delay, std::move(fn));
}

EventId Simulator::at_keyed(Tick when, std::uint64_t pri, InlineFn fn) {
    FASTNET_EXPECTS_MSG(when >= now_, "cannot schedule into the past");
    return queue_.schedule_keyed(when, pri, std::move(fn));
}

void Simulator::advance_to(Tick t) {
    FASTNET_EXPECTS_MSG(t >= now_, "clock cannot go backwards");
    FASTNET_EXPECTS_MSG(queue_.next_time() >= t, "advance_to would skip pending events");
    now_ = t;
}

std::uint64_t Simulator::run(std::uint64_t max_events) {
    return run_until(kNever, max_events);
}

std::uint64_t Simulator::run_until(Tick until, std::uint64_t max_events) {
    stopped_ = false;
    std::uint64_t executed = 0;
    while (!stopped_ && executed < max_events) {
        if (queue_.run_next_bounded(until, now_) == kNever) break;
        ++executed;
    }
    const bool budget_hit = executed >= max_events && queue_.next_time() != kNever &&
                            queue_.next_time() <= until;
    FASTNET_ENSURES_MSG(!budget_hit, "event budget exhausted — runaway protocol?");
    return executed;
}

}  // namespace fastnet::sim
