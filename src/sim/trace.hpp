// Structured, low-overhead event tracing — the repo's causal record of
// what the hardware and the NCUs actually did.
//
// A Trace is a bounded ring of typed records. Each record is a small
// fixed-size POD — a timestamp, a node, a kind, a lineage id and three
// kind-specific argument words — so the hot paths (per-hop, per-send)
// never build a std::string. Free-form text goes through an optional
// bounded detail *arena* (record_detail); callers must check
// enabled(kind) before formatting such a detail, so a filtered-out or
// detached trace costs nothing.
//
// Lineage: every packet injected into the network is stamped with a
// monotonically assigned lineage id (hw::Network::send). The id rides
// the packet through SS hops, selective copies, link-layer duplicates,
// drops and NCU deliveries, and handler-caused sends record their
// causal parent — so any delivery can be traced back to the send that
// caused it, and any timer back to the invocation that armed it (see
// docs/OBSERVABILITY.md for the full model and src/obs/ for the
// exporters and the query toolchain).
//
// Traces are purely observational: they never influence the simulation,
// and with recording disabled the steady-state hop path stays
// zero-allocation (bench/bench_obs_overhead.cpp guards the cost).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace fastnet::sim {

class SpillWriter;

enum class TraceKind : std::uint8_t {
    kStart,       ///< Spontaneous protocol start ran.       b = busy ticks
    kSend,        ///< NCU injected a packet.                a = header len, b = parent lineage
    kHop,         ///< Packet traversed a link.              a = edge, b = hops so far, c = hop sent at
    kDeliver,     ///< Delivery handler completed.           a = hops, b = busy ticks, c = packet sent at
    kTimer,       ///< Timer handler completed.              a = cookie, b = busy ticks, c = armed at
    kLinkChange,  ///< Data-link notification processed.     a = edge, flag = up, b = busy ticks
    kDrop,        ///< Packet died.                          a = edge (kNoEdge off-link), flag = DropReason
    kCrash,       ///< Node hard-crashed.                    a = incarnation being killed
    kRestart,     ///< Node came back.                       a = new incarnation
    kDup,         ///< Link-layer duplicate was minted.      a = edge, b = new packet id
    kPhase,       ///< Experiment phase marker.              a = phase id (node = kNoNode)
    kViolation,   ///< Invariant monitor tripped.            a = monitor index, detail = message
    kCallEvent,   ///< Call state-machine transition.        a = packed call id, b = event code, flag = attempt
    kCustom,      ///< Free-form (detail arena).
};

inline constexpr unsigned kTraceKindCount = 14;

const char* trace_kind_name(TraceKind k);

/// Parses a kind name as printed by trace_kind_name; returns false on an
/// unknown name (used by the obs loaders and the fastnet_trace CLI).
bool trace_kind_from_name(std::string_view name, TraceKind& out);

/// Why a packet died (TraceRecord::flag of a kDrop record).
enum class DropReason : std::uint8_t {
    kNone = 0,
    kInactiveLink,  ///< Transmit attempted over a down link.
    kStaleEpoch,    ///< Link failed/flapped while the packet was in flight.
    kInjectedLoss,  ///< Fault injection: data-link CRC rejected the frame.
    kNoMatch,       ///< Label matched no port at the switch.
    kEmptyHeader,   ///< Header exhausted mid-switch.
};

const char* drop_reason_name(DropReason r);

/// Spill-to-disk configuration for one Trace (see sim/trace_spill.hpp
/// for the file format and the merge contract). With spill enabled the
/// ring never overwrites: a full ring (or an exceeded resident budget)
/// drains to the spill file as one sorted segment and restarts empty.
struct TraceSpillConfig {
    std::string path;     ///< Spill file to create (truncated on enable).
    std::uint32_t shard = 0;  ///< Stamped into the file header; merge tie-break.
    /// Optional cap on resident trace bytes (ring + detail arena). 0
    /// keeps the default drain point (a full ring). When set, the drain
    /// threshold shrinks so ring + arena capacity stay within budget.
    std::size_t resident_budget_bytes = 0;
};

/// Kind-specific arguments of one record; see the TraceKind table above
/// for what each kind stores where.
///
/// The third word `c` is the *causal anchor*: the simulated instant the
/// interval ending at this record began (kDeliver: when the packet was
/// injected; kTimer: when the timer was armed; kHop: when this hop's
/// transmit started). It makes every record self-describing for latency
/// attribution (obs/critical_path.hpp) — no cross-record state is
/// needed to price a leg. 0 = not applicable.
struct TraceArgs {
    std::uint64_t lineage = 0;  ///< Causal lineage id (0 = none).
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;        ///< Causal anchor tick (see above).
    std::uint8_t flag = 0;
};

/// One materialized record, as returned by snapshot(). The in-ring
/// representation is a fixed-size POD; the detail string (if any) is
/// copied out of the arena here.
struct TraceRecord {
    Tick at = 0;
    NodeId node = kNoNode;
    TraceKind kind = TraceKind::kCustom;
    std::uint8_t flag = 0;
    std::uint64_t lineage = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;  ///< Causal anchor tick (see TraceArgs).
    std::string detail{};
};

class Trace {
public:
    /// `capacity` bounds the record ring; older records are discarded
    /// first. `detail_capacity` bounds the detail arena (bytes); once
    /// full, further details are silently omitted (detail_dropped()).
    explicit Trace(std::size_t capacity = 65536, std::size_t detail_capacity = 1 << 16);
    ~Trace();
    // Movable, not copyable (the spill writer owns an open file).
    Trace(Trace&&) noexcept;
    Trace& operator=(Trace&&) noexcept;

    /// Appends one typed record. No allocation beyond amortized ring
    /// growth up to `capacity`.
    void record(Tick at, NodeId node, TraceKind kind, TraceArgs args = {});

    /// Appends a record with a free-form detail. Callers on any path that
    /// formats the detail must check enabled(kind) *before* building the
    /// string — this function only pays for the arena copy.
    void record_detail(Tick at, NodeId node, TraceKind kind, std::string_view detail,
                       TraceArgs args = {});

    /// Enables/disables recording of one kind (all enabled initially).
    void set_enabled(TraceKind kind, bool enabled);
    bool enabled(TraceKind kind) const;
    /// Disables every kind at once (an attached-but-silent trace; the
    /// overhead gate runs in this configuration).
    void disable_all() { enabled_mask_ = 0; }
    void enable_all() { enabled_mask_ = 0xffff; }

    /// Records in chronological order (oldest first).
    std::vector<TraceRecord> snapshot() const;

    /// Records for one node, chronological.
    std::vector<TraceRecord> snapshot(NodeId node) const;

    std::size_t size() const { return ring_.size(); }
    std::size_t capacity() const { return capacity_; }
    std::uint64_t total_recorded() const { return count_; }
    /// Records lost to ring overwrite (never when spill is enabled —
    /// overflow drains to disk instead of truncating).
    std::uint64_t dropped() const {
        const std::uint64_t kept = spilled_records_ + ring_.size();
        return count_ > kept ? count_ - kept : 0;
    }
    std::uint64_t detail_dropped() const { return detail_dropped_; }
    void clear();

    /// Switches overflow handling from ring overwrite to disk spill.
    /// Must be called on an empty trace (before any record). Returns
    /// false (with `error`) when the spill file cannot be created.
    bool enable_spill(const TraceSpillConfig& config, std::string* error = nullptr);
    bool spill_enabled() const { return spill_ != nullptr; }

    /// Drains every resident record (and its detail bytes) to the spill
    /// file as one sorted segment; the ring and arena restart empty.
    /// No-op without spill or with an empty ring.
    void flush_spill();

    /// Final flush + stats trailer; closes the spill file. The trace
    /// reverts to plain ring behaviour afterwards. Returns false when
    /// the write failed.
    bool finish_spill();

    std::uint64_t spilled_records() const { return spilled_records_; }
    std::uint64_t spill_segments() const { return spill_segments_; }
    std::uint64_t spilled_bytes() const { return spilled_bytes_; }
    const std::string& spill_path() const { return spill_path_; }

    /// Resident trace footprint right now: ring + detail arena capacity
    /// (capacity-based, so it is an upper bound that never shrinks —
    /// the quantity the spill budget constrains).
    std::size_t resident_bytes() const;

    /// Human-readable dump (one line per record).
    void print(std::ostream& os) const;

private:
    /// In-ring representation: fixed size, no heap per record.
    struct Rec {
        Tick at = 0;
        std::uint64_t lineage = 0;
        std::uint64_t a = 0;
        std::uint64_t b = 0;
        std::uint64_t c = 0;
        NodeId node = kNoNode;
        std::uint32_t detail_pos = 0;  ///< 1-based offset into arena_; 0 = none.
        std::uint32_t detail_len = 0;
        TraceKind kind = TraceKind::kCustom;
        std::uint8_t flag = 0;
    };

    void push(Rec rec);
    TraceRecord materialize(const Rec& r) const;

    std::size_t capacity_;
    std::size_t detail_capacity_;
    std::uint64_t count_ = 0;  ///< Total ever recorded.
    std::uint64_t detail_dropped_ = 0;
    std::size_t next_ = 0;     ///< Ring write position.
    std::vector<Rec> ring_;
    std::vector<char> arena_;  ///< Append-only bounded detail storage.
    std::uint16_t enabled_mask_ = 0xffff;

    // Spill state (null without enable_spill).
    std::unique_ptr<SpillWriter> spill_;
    std::string spill_path_;
    std::size_t drain_records_ = 0;   ///< Ring size that triggers a drain.
    std::uint64_t spilled_records_ = 0;
    std::uint64_t spill_segments_ = 0;
    std::uint64_t spilled_bytes_ = 0;
};

/// Renders one record the way Trace::print does (shared with the
/// fastnet_trace CLI, which renders records loaded from disk).
std::string format_record(const TraceRecord& r);

}  // namespace fastnet::sim
