// Lightweight event tracing for debugging protocols and for the
// examples' timelines.
//
// A Trace is a bounded ring of (time, node, kind, detail) records.
// Components append through a shared pointer; recording can be filtered
// by kind and is cheap enough to stay on in tests. Traces are purely
// observational: they never influence the simulation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace fastnet::sim {

enum class TraceKind : std::uint8_t {
    kStart,
    kSend,
    kDeliver,
    kTimer,
    kLinkChange,
    kDrop,
    kCrash,
    kRestart,
    kCustom,
};

const char* trace_kind_name(TraceKind k);

struct TraceRecord {
    Tick at = 0;
    NodeId node = kNoNode;
    TraceKind kind = TraceKind::kCustom;
    std::string detail;
};

class Trace {
public:
    /// `capacity` bounds memory; older records are discarded first.
    explicit Trace(std::size_t capacity = 65536);

    void record(Tick at, NodeId node, TraceKind kind, std::string detail = {});

    /// Enables/disables recording of one kind (all enabled initially).
    void set_enabled(TraceKind kind, bool enabled);
    bool enabled(TraceKind kind) const;

    /// Records in chronological order (oldest first).
    std::vector<TraceRecord> snapshot() const;

    /// Records for one node, chronological.
    std::vector<TraceRecord> snapshot(NodeId node) const;

    std::size_t size() const { return count_ < capacity_ ? count_ : capacity_; }
    std::uint64_t total_recorded() const { return count_; }
    std::uint64_t dropped() const {
        return count_ > capacity_ ? count_ - capacity_ : 0;
    }
    void clear();

    /// Human-readable dump (one line per record).
    void print(std::ostream& os) const;

private:
    std::size_t capacity_;
    std::uint64_t count_ = 0;      ///< Total ever recorded.
    std::size_t next_ = 0;         ///< Ring write position.
    std::vector<TraceRecord> ring_;
    std::uint16_t enabled_mask_ = 0xffff;
};

}  // namespace fastnet::sim
