// Deterministic discrete-event queue.
//
// Events at equal timestamps execute in schedule order (a monotone
// sequence number breaks ties), so a run is a pure function of the seed
// and the protocol code — essential for reproducing the paper's exact
// integer cost accounting and for property tests that replay schedules.
#pragma once

#include <functional>
#include <queue>
#include <vector>

#include "common/expect.hpp"
#include "common/types.hpp"

namespace fastnet::sim {

/// Opaque handle identifying a scheduled event (for cancellation).
using EventId = std::uint64_t;

class EventQueue {
public:
    /// Schedules `fn` at absolute time `at` (must be >= the time of the
    /// event currently executing). Returns a handle for cancel().
    EventId schedule(Tick at, std::function<void()> fn);

    /// Cancels a pending event; no-op if it already ran or was cancelled.
    void cancel(EventId id);

    bool empty() const { return live_count_ == 0; }
    std::size_t size() const { return live_count_; }

    /// Time of the earliest pending event; kNever when empty.
    Tick next_time() const;

    /// Pops and runs the earliest event. Returns its timestamp.
    /// Precondition: !empty().
    Tick run_next();

private:
    struct Entry {
        Tick at;
        EventId id;
        std::function<void()> fn;  // empty == cancelled
        bool operator>(const Entry& o) const {
            return at != o.at ? at > o.at : id > o.id;
        }
    };
    // cancelled_ is tracked inside the heap entries lazily: cancel() marks
    // the id; run_next() skips marked entries.
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
    std::vector<EventId> cancelled_;  // small, scanned linearly
    EventId next_id_ = 0;
    std::size_t live_count_ = 0;

    bool is_cancelled(EventId id) const;
    void drop_cancelled_front();
};

}  // namespace fastnet::sim
