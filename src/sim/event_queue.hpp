// Deterministic discrete-event queue, pool-backed.
//
// Events at equal timestamps execute in schedule order (a monotone
// sequence number breaks ties), so a run is a pure function of the seed
// and the protocol code — essential for reproducing the paper's exact
// integer cost accounting and for property tests that replay schedules.
//
// Storage layout (the fast path the benches in bench_sim_core pin):
//   - Event state lives in fixed-size slabs of slots; a slot holds the
//     callback (InlineFn — no per-event allocation for hot captures), the
//     timestamp, the tie-break sequence number and a generation counter.
//     Slots are recycled through a LIFO free list, so steady-state
//     schedule/run cycles never touch the allocator.
//   - EventId packs {generation, slot}: cancel() is an O(1) slot lookup
//     plus a generation check (stale or already-run ids are no-ops), not
//     a scan of a cancelled-list.
//   - Ordering is hybrid (the ladder-queue idea, simplified): schedule()
//     appends a 16-byte {time, seq|slot} record to an *unsorted* staging
//     buffer — O(1), sequential memory. At drain time a large staged
//     batch is std::sort'ed and merged into a sorted run consumed by a
//     cursor (sorting is far more cache-friendly than sifting each
//     record through a big heap), while small interleaved batches go
//     into a 4-ary min-heap of the same records (children share a cache
//     line; half the depth of a binary heap). A pop takes the smaller of
//     the two fronts, so the exact (time, seq) total order is preserved.
//     A record whose seq no longer matches its slot is a cancelled
//     leftover, skipped lazily.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/expect.hpp"
#include "common/types.hpp"
#include "sim/inline_fn.hpp"

namespace fastnet::sim {

/// Opaque handle identifying a scheduled event (for cancellation).
/// Layout: high 32 bits = slot generation, low 32 bits = slot index.
using EventId = std::uint64_t;

class EventQueue {
public:
    /// Schedules `fn` at absolute time `at` (must be >= the time of the
    /// event currently executing). Returns a handle for cancel().
    EventId schedule(Tick at, InlineFn fn);

    /// Like schedule(), but the caller supplies the tie-break priority
    /// instead of the queue's monotone counter: events at equal `at`
    /// execute in ascending `pri` order. Priorities must be unique across
    /// the queue's lifetime (they double as the slot-liveness check) and
    /// < 2^40. The parallel kernel uses this to give every event a
    /// priority derived from its *scheduling context* rather than from
    /// the global call order, which is what makes a sharded run's event
    /// order independent of how work interleaves across shards. A queue
    /// that has seen one keyed schedule must stay keyed: mixing modes
    /// would collide caller priorities with counter values.
    EventId schedule_keyed(Tick at, std::uint64_t pri, InlineFn fn);

    /// Cancels a pending event in O(1); no-op if it already ran or was
    /// cancelled (the generation tag makes stale handles harmless).
    void cancel(EventId id);

    bool empty() const { return live_count_ == 0; }
    std::size_t size() const { return live_count_; }

    /// Time of the earliest pending event; kNever when empty.
    Tick next_time() const {
        auto* self = const_cast<EventQueue*>(this);
        const HeapRec* front = self->front();
        return front == nullptr ? kNever : front->at;
    }

    /// Pops and runs the earliest event. Returns its timestamp.
    /// Precondition: !empty().
    Tick run_next();

    /// Fused peek+pop for the simulator's run loop: if the earliest event
    /// is at or before `until`, sets `clock` to its timestamp, runs it and
    /// returns that timestamp; otherwise runs nothing and returns kNever.
    /// Touches the heap front once per event instead of twice
    /// (next_time + run_next). `clock` is written *before* the handler
    /// executes so re-entrant reads of the simulation time are exact.
    Tick run_next_bounded(Tick until, Tick& clock);

private:
    // One pooled event. `seq` doubles as the liveness check for heap
    // records (it is globally unique across the queue's lifetime); `gen`
    // validates EventIds across slot reuse.
    struct Slot {
        InlineFn fn;
        std::uint64_t seq = 0;
        std::uint32_t gen = 0;
        bool live = false;
    };

    // Heap record: 16 bytes. `key` packs (seq << kSlotBits) | slot — seq
    // is globally unique, so comparing keys compares seqs, and the slot
    // rides along for free.
    struct HeapRec {
        Tick at;
        std::uint64_t key;
        std::uint32_t slot() const { return static_cast<std::uint32_t>(key & (kMaxSlots - 1)); }
        std::uint64_t seq() const { return key >> kSlotBits; }
        bool before(const HeapRec& o) const {
            return at != o.at ? at < o.at : key < o.key;
        }
    };

    static constexpr std::uint32_t kSlabBits = 8;  // 256 slots per slab
    static constexpr std::uint32_t kSlabSize = 1u << kSlabBits;
    static constexpr std::uint32_t kSlotBits = 24;  // <= 16.7M concurrently pending
    static constexpr std::uint64_t kMaxSlots = 1ull << kSlotBits;
    static constexpr std::uint64_t kMaxSeq = 1ull << (64 - kSlotBits);

    Slot& slot(std::uint32_t index) {
        return slabs_[index >> kSlabBits][index & (kSlabSize - 1)];
    }
    const Slot& slot(std::uint32_t index) const {
        return slabs_[index >> kSlabBits][index & (kSlabSize - 1)];
    }

    std::uint32_t alloc_slot();
    void free_slot(std::uint32_t index);

    // A heap record is current iff its seq still matches its slot's.
    bool stale(const HeapRec& r) const {
        const Slot& s = slot(r.slot());
        return !s.live || s.seq != r.seq();
    }

    void heap_push(HeapRec r);
    void heap_pop();

    /// Moves staged records into an ordered structure (sort+merge for
    /// large batches, heap pushes for small ones).
    void flush_staging();

    /// Exact (at, key) sort of a staging batch: stable radix by time for
    /// large batches (append order already supplies the seq tie-break),
    /// std::sort below the radix break-even point.
    void sort_batch(std::vector<HeapRec>& a);

    /// Flushes, skips stale fronts, and returns a pointer to the earliest
    /// record (inside sorted_ or heap_), or nullptr when drained. Call
    /// pop_front() to consume exactly that record.
    const HeapRec* front();
    void pop_front();

    /// Consumes `top` (which front() just returned): pops it, sets
    /// `clock`, runs its callback in place, then recycles the slot.
    Tick dispatch(HeapRec top, Tick& clock);

    // Slabs give slots stable addresses (no reallocation moves of live
    // callbacks) and allocator-free recycling.
    std::vector<std::unique_ptr<Slot[]>> slabs_;
    std::vector<std::uint32_t> free_slots_;  // LIFO: hot slots stay cache-warm
    std::vector<HeapRec> staging_;           // unsorted, append-only
    std::vector<HeapRec> sorted_;            // ascending; consumed from cursor_
    std::vector<HeapRec> merge_buf_;         // scratch for sort+merge flushes
    std::vector<HeapRec> scratch_;           // radix-sort ping-pong buffer
    std::size_t cursor_ = 0;
    std::vector<HeapRec> heap_;              // 4-ary min-heap by (at, seq)
    std::uint64_t next_seq_ = 0;
    std::size_t live_count_ = 0;
    // Set by the first schedule_keyed(): caller priorities do not follow
    // append order, so sort_batch must compare full (at, key) instead of
    // relying on the staging order for the tie-break.
    bool keyed_ = false;
};

}  // namespace fastnet::sim
