#include "sim/event_queue.hpp"

#include <algorithm>

namespace fastnet::sim {

EventId EventQueue::schedule(Tick at, std::function<void()> fn) {
    FASTNET_EXPECTS(fn != nullptr);
    FASTNET_EXPECTS(at >= 0);
    const EventId id = next_id_++;
    heap_.push(Entry{at, id, std::move(fn)});
    ++live_count_;
    return id;
}

void EventQueue::cancel(EventId id) {
    if (id >= next_id_) return;
    if (is_cancelled(id)) return;
    cancelled_.push_back(id);
    if (live_count_ > 0) --live_count_;
}

bool EventQueue::is_cancelled(EventId id) const {
    return std::find(cancelled_.begin(), cancelled_.end(), id) != cancelled_.end();
}

void EventQueue::drop_cancelled_front() {
    while (!heap_.empty() && is_cancelled(heap_.top().id)) {
        auto it = std::find(cancelled_.begin(), cancelled_.end(), heap_.top().id);
        cancelled_.erase(it);
        heap_.pop();
    }
}

Tick EventQueue::next_time() const {
    auto* self = const_cast<EventQueue*>(this);
    self->drop_cancelled_front();
    return heap_.empty() ? kNever : heap_.top().at;
}

Tick EventQueue::run_next() {
    drop_cancelled_front();
    FASTNET_EXPECTS_MSG(!heap_.empty(), "run_next on empty queue");
    // Move the callback out before popping so re-entrant schedule() calls
    // from inside the callback see a consistent heap.
    Entry top = heap_.top();
    heap_.pop();
    --live_count_;
    top.fn();
    return top.at;
}

}  // namespace fastnet::sim
