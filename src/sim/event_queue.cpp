#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace fastnet::sim {

namespace {
constexpr std::uint32_t kSlotMask = 0xffff'ffffu;

constexpr std::uint32_t slot_of(EventId id) { return static_cast<std::uint32_t>(id & kSlotMask); }
constexpr std::uint32_t gen_of(EventId id) { return static_cast<std::uint32_t>(id >> 32); }
constexpr EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
}

// Staged batches at or below this size are sifted into the heap; larger
// ones take the sort+merge path. Small enough that interleaved
// schedule/run traffic (a handler scheduling a handful of events) never
// pays a merge, large enough that mass scheduling amortizes the sort.
constexpr std::size_t kSmallBatch = 32;
}  // namespace

std::uint32_t EventQueue::alloc_slot() {
    if (!free_slots_.empty()) {
        const std::uint32_t index = free_slots_.back();
        free_slots_.pop_back();
        return index;
    }
    const auto base = static_cast<std::uint32_t>(slabs_.size() << kSlabBits);
    FASTNET_EXPECTS_MSG(base + kSlabSize <= kMaxSlots, "too many concurrently pending events");
    slabs_.push_back(std::make_unique<Slot[]>(kSlabSize));
    // Hand out the new slab's slots low-to-high (push high-to-low so the
    // LIFO free list pops them in index order — keeps ids predictable).
    free_slots_.reserve(free_slots_.size() + kSlabSize - 1);
    for (std::uint32_t i = kSlabSize; i-- > 1;) free_slots_.push_back(base + i);
    return base;
}

void EventQueue::free_slot(std::uint32_t index) {
    Slot& s = slot(index);
    s.live = false;
    s.fn.reset();
    free_slots_.push_back(index);
}

// 4-ary heap: children of i are 4i+1..4i+4. With 16-byte records the four
// children straddle at most two cache lines, and the tree is half as deep
// as a binary heap's, which is what the sift-down pays per level.
void EventQueue::heap_push(HeapRec r) {
    heap_.push_back(r);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 4;
        if (!heap_[i].before(heap_[parent])) break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

void EventQueue::heap_pop() {
    const HeapRec moved = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0) return;
    std::size_t i = 0;
    for (;;) {
        const std::size_t first = 4 * i + 1;
        if (first >= n) break;
        const std::size_t last = first + 4 < n ? first + 4 : n;
        std::size_t best = first;
        for (std::size_t c = first + 1; c < last; ++c)
            if (heap_[c].before(heap_[best])) best = c;
        if (!heap_[best].before(moved)) break;
        heap_[i] = heap_[best];
        i = best;
    }
    heap_[i] = moved;
}

// Sorts `a` into exact (at, key) order. In counter mode `a` is a staging
// batch whose keys (monotone seqs) already follow append order: a
// *stable* sort by `at` alone is enough, and large batches take a
// byte-wise LSD radix sort. Keyed queues lose that invariant (caller
// priorities are arbitrary), so they always take the comparison sort.
// The radix path is — O(bytes-that-vary * n) sequential passes, no comparison
// mispredicts, which beats std::sort by ~8x on big shuffled batches.
// `at` is guaranteed non-negative (schedule checks), so unsigned byte
// order matches signed order.
void EventQueue::sort_batch(std::vector<HeapRec>& a) {
    if (keyed_ || a.size() < 512) {
        std::sort(a.begin(), a.end(),
                  [](const HeapRec& x, const HeapRec& y) { return x.before(y); });
        return;
    }
    Tick lo = a.front().at, hi = a.front().at;
    for (const HeapRec& r : a) {
        lo = r.at < lo ? r.at : lo;
        hi = r.at > hi ? r.at : hi;
    }
    // Bytes above the highest bit of lo^hi are identical across the whole
    // batch — only the low `bytes` positions need passes.
    std::uint64_t diff = static_cast<std::uint64_t>(lo) ^ static_cast<std::uint64_t>(hi);
    int bytes = 0;
    while (diff != 0) {
        ++bytes;
        diff >>= 8;
    }
    if (bytes == 0) return;  // all timestamps equal: append order is the answer
    scratch_.resize(a.size());
    std::vector<HeapRec>* src = &a;
    std::vector<HeapRec>* dst = &scratch_;
    for (int b = 0; b < bytes; ++b) {
        const int shift = 8 * b;
        std::size_t count[256] = {};
        for (const HeapRec& r : *src)
            ++count[(static_cast<std::uint64_t>(r.at) >> shift) & 0xff];
        std::size_t pos[256];
        std::size_t run = 0;
        for (int i = 0; i < 256; ++i) {
            pos[i] = run;
            run += count[i];
        }
        if (run == count[(static_cast<std::uint64_t>((*src)[0].at) >> shift) & 0xff])
            continue;  // byte constant across the batch: pass is a no-op
        for (const HeapRec& r : *src)
            (*dst)[pos[(static_cast<std::uint64_t>(r.at) >> shift) & 0xff]++] = r;
        std::swap(src, dst);
    }
    if (src != &a) a.swap(scratch_);
}

void EventQueue::flush_staging() {
    const std::size_t remaining = sorted_.size() - cursor_;
    if (staging_.size() <= kSmallBatch || staging_.size() * 8 < remaining) {
        // Small (or small relative to the sorted run): sift individually.
        for (const HeapRec& r : staging_) heap_push(r);
        staging_.clear();
        return;
    }
    sort_batch(staging_);
    if (remaining == 0) {
        sorted_.swap(staging_);
    } else {
        merge_buf_.clear();
        merge_buf_.reserve(remaining + staging_.size());
        std::merge(sorted_.begin() + static_cast<std::ptrdiff_t>(cursor_), sorted_.end(),
                   staging_.begin(), staging_.end(), std::back_inserter(merge_buf_),
                   [](const HeapRec& a, const HeapRec& b) { return a.before(b); });
        sorted_.swap(merge_buf_);
    }
    cursor_ = 0;
    staging_.clear();  // keeps capacity — steady-state appends stay allocation-free
}

const EventQueue::HeapRec* EventQueue::front() {
    if (!staging_.empty()) flush_staging();
    // Skip cancelled leftovers at both fronts.
    while (cursor_ < sorted_.size() && stale(sorted_[cursor_])) ++cursor_;
    while (!heap_.empty() && stale(heap_.front())) heap_pop();
    const bool have_sorted = cursor_ < sorted_.size();
    if (!have_sorted && heap_.empty()) {
        sorted_.clear();
        cursor_ = 0;
        return nullptr;
    }
    if (have_sorted &&
        (heap_.empty() || sorted_[cursor_].before(heap_.front())))
        return &sorted_[cursor_];
    return &heap_.front();
}

void EventQueue::pop_front() {
    // Precondition: front() just returned non-null; the same winner is
    // still at its front.
    if (cursor_ < sorted_.size() &&
        (heap_.empty() || sorted_[cursor_].before(heap_.front()))) {
        ++cursor_;
        return;
    }
    heap_pop();
}

EventId EventQueue::schedule(Tick at, InlineFn fn) {
    FASTNET_EXPECTS(static_cast<bool>(fn));
    FASTNET_EXPECTS(at >= 0);
    FASTNET_EXPECTS_MSG(next_seq_ < kMaxSeq, "event sequence space exhausted");
    const std::uint32_t index = alloc_slot();
    Slot& s = slot(index);
    s.gen += 1;  // distinguishes this tenancy from any outstanding stale id
    s.seq = next_seq_++;
    s.live = true;
    s.fn = std::move(fn);
    staging_.push_back(HeapRec{at, (s.seq << kSlotBits) | index});
    ++live_count_;
    return make_id(s.gen, index);
}

EventId EventQueue::schedule_keyed(Tick at, std::uint64_t pri, InlineFn fn) {
    FASTNET_EXPECTS(static_cast<bool>(fn));
    FASTNET_EXPECTS(at >= 0);
    FASTNET_EXPECTS_MSG(pri < kMaxSeq, "keyed priority out of range");
    keyed_ = true;
    const std::uint32_t index = alloc_slot();
    Slot& s = slot(index);
    s.gen += 1;
    s.seq = pri;
    s.live = true;
    s.fn = std::move(fn);
    staging_.push_back(HeapRec{at, (pri << kSlotBits) | index});
    ++live_count_;
    return make_id(s.gen, index);
}

void EventQueue::cancel(EventId id) {
    const std::uint32_t index = slot_of(id);
    if (index >= (slabs_.size() << kSlabBits)) return;
    Slot& s = slot(index);
    if (!s.live || s.gen != gen_of(id)) return;  // already ran / cancelled / recycled
    free_slot(index);
    --live_count_;
    // Any staged/sorted/heap record stays behind; the fronts skip it by
    // its now-mismatched seq when it surfaces.
}

// Pops and invokes the record's callback *in place*. The slot is marked
// dead (so a re-entrant cancel of the running event is a no-op) but not
// put back on the free list until after the handler returns, so nothing
// the handler schedules can be assigned this slot while its closure is
// still alive. Slab storage is address-stable, so re-entrant schedule()
// calls cannot move it either. Skipping the move-out saves an indirect
// call plus a 48-byte copy per event.
Tick EventQueue::dispatch(const HeapRec top, Tick& clock) {
    pop_front();
    // Prefetch the *next* winner's slot so its cache-line miss overlaps
    // the current handler's execution (the sorted run makes it known).
    if (cursor_ < sorted_.size())
        __builtin_prefetch(&slot(sorted_[cursor_].slot()));
    else if (!heap_.empty())
        __builtin_prefetch(&slot(heap_.front().slot()));
    Slot& s = slot(top.slot());
    s.live = false;
    --live_count_;
    clock = top.at;  // advance the caller's clock before the handler runs
    s.fn();
    s.fn.reset();
    free_slots_.push_back(top.slot());
    return top.at;
}

Tick EventQueue::run_next() {
    const HeapRec* front_rec = front();
    FASTNET_EXPECTS_MSG(front_rec != nullptr, "run_next on empty queue");
    Tick discard;
    return dispatch(*front_rec, discard);
}

Tick EventQueue::run_next_bounded(Tick until, Tick& clock) {
    const HeapRec* front_rec = front();
    if (front_rec == nullptr || front_rec->at > until) return kNever;
    return dispatch(*front_rec, clock);
}

}  // namespace fastnet::sim
