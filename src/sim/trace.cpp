#include "sim/trace.hpp"

#include <algorithm>
#include <ostream>

#include "common/expect.hpp"

namespace fastnet::sim {

const char* trace_kind_name(TraceKind k) {
    switch (k) {
        case TraceKind::kStart: return "start";
        case TraceKind::kSend: return "send";
        case TraceKind::kDeliver: return "deliver";
        case TraceKind::kTimer: return "timer";
        case TraceKind::kLinkChange: return "link";
        case TraceKind::kDrop: return "drop";
        case TraceKind::kCrash: return "crash";
        case TraceKind::kRestart: return "restart";
        case TraceKind::kCustom: return "custom";
    }
    return "?";
}

Trace::Trace(std::size_t capacity) : capacity_(capacity) {
    FASTNET_EXPECTS(capacity >= 1);
    ring_.reserve(std::min<std::size_t>(capacity, 1024));
}

void Trace::record(Tick at, NodeId node, TraceKind kind, std::string detail) {
    if (!enabled(kind)) return;
    TraceRecord rec{at, node, kind, std::move(detail)};
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(rec));
    } else {
        ring_[next_] = std::move(rec);
    }
    next_ = (next_ + 1) % capacity_;
    ++count_;
}

void Trace::set_enabled(TraceKind kind, bool on) {
    const auto bit = static_cast<std::uint16_t>(1u << static_cast<unsigned>(kind));
    if (on)
        enabled_mask_ |= bit;
    else
        enabled_mask_ &= static_cast<std::uint16_t>(~bit);
}

bool Trace::enabled(TraceKind kind) const {
    return (enabled_mask_ >> static_cast<unsigned>(kind)) & 1u;
}

std::vector<TraceRecord> Trace::snapshot() const {
    std::vector<TraceRecord> out;
    out.reserve(size());
    if (count_ <= capacity_) {
        out = ring_;
    } else {
        // Ring wrapped: oldest record sits at next_.
        out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_), ring_.end());
        out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(next_));
    }
    return out;
}

std::vector<TraceRecord> Trace::snapshot(NodeId node) const {
    std::vector<TraceRecord> all = snapshot();
    std::vector<TraceRecord> out;
    for (auto& r : all)
        if (r.node == node) out.push_back(std::move(r));
    return out;
}

void Trace::clear() {
    ring_.clear();
    next_ = 0;
    count_ = 0;
}

void Trace::print(std::ostream& os) const {
    for (const TraceRecord& r : snapshot()) {
        os << "[t=" << r.at << "] node " << r.node << ' ' << trace_kind_name(r.kind);
        if (!r.detail.empty()) os << ": " << r.detail;
        os << '\n';
    }
}

}  // namespace fastnet::sim
