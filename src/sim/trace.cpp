#include "sim/trace.hpp"

#include <algorithm>
#include <ostream>

#include "common/expect.hpp"
#include "sim/trace_spill.hpp"

namespace fastnet::sim {

const char* trace_kind_name(TraceKind k) {
    switch (k) {
        case TraceKind::kStart: return "start";
        case TraceKind::kSend: return "send";
        case TraceKind::kHop: return "hop";
        case TraceKind::kDeliver: return "deliver";
        case TraceKind::kTimer: return "timer";
        case TraceKind::kLinkChange: return "link";
        case TraceKind::kDrop: return "drop";
        case TraceKind::kCrash: return "crash";
        case TraceKind::kRestart: return "restart";
        case TraceKind::kDup: return "dup";
        case TraceKind::kPhase: return "phase";
        case TraceKind::kViolation: return "violation";
        case TraceKind::kCallEvent: return "call";
        case TraceKind::kCustom: return "custom";
    }
    return "?";
}

bool trace_kind_from_name(std::string_view name, TraceKind& out) {
    for (unsigned k = 0; k < kTraceKindCount; ++k) {
        const auto kind = static_cast<TraceKind>(k);
        if (name == trace_kind_name(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

const char* drop_reason_name(DropReason r) {
    switch (r) {
        case DropReason::kNone: return "none";
        case DropReason::kInactiveLink: return "inactive_link";
        case DropReason::kStaleEpoch: return "stale_epoch";
        case DropReason::kInjectedLoss: return "injected_loss";
        case DropReason::kNoMatch: return "no_match";
        case DropReason::kEmptyHeader: return "empty_header";
    }
    return "?";
}

Trace::Trace(std::size_t capacity, std::size_t detail_capacity)
    : capacity_(capacity), detail_capacity_(detail_capacity) {
    FASTNET_EXPECTS(capacity >= 1);
    ring_.reserve(std::min<std::size_t>(capacity, 1024));
}

Trace::~Trace() = default;
Trace::Trace(Trace&&) noexcept = default;
Trace& Trace::operator=(Trace&&) noexcept = default;

void Trace::push(Rec rec) {
    if (ring_.size() < capacity_) {
        ring_.push_back(rec);
    } else {
        ring_[next_] = rec;
    }
    next_ = (next_ + 1) % capacity_;
    ++count_;
}

void Trace::record(Tick at, NodeId node, TraceKind kind, TraceArgs args) {
    if (!enabled(kind)) return;
    if (spill_ && ring_.size() >= drain_records_) flush_spill();
    Rec rec;
    rec.at = at;
    rec.node = node;
    rec.kind = kind;
    rec.flag = args.flag;
    rec.lineage = args.lineage;
    rec.a = args.a;
    rec.b = args.b;
    rec.c = args.c;
    push(rec);
}

void Trace::record_detail(Tick at, NodeId node, TraceKind kind, std::string_view detail,
                          TraceArgs args) {
    if (!enabled(kind)) return;
    if (spill_ && ring_.size() >= drain_records_) flush_spill();
    Rec rec;
    rec.at = at;
    rec.node = node;
    rec.kind = kind;
    rec.flag = args.flag;
    rec.lineage = args.lineage;
    rec.a = args.a;
    rec.b = args.b;
    rec.c = args.c;
    if (!detail.empty()) {
        // With spill enabled a full arena drains to disk instead of
        // dropping the detail (only a single over-budget string still
        // cannot be stored).
        if (spill_ && arena_.size() + detail.size() > detail_capacity_ && !ring_.empty())
            flush_spill();
        if (arena_.size() + detail.size() <= detail_capacity_) {
            rec.detail_pos = static_cast<std::uint32_t>(arena_.size() + 1);
            rec.detail_len = static_cast<std::uint32_t>(detail.size());
            arena_.insert(arena_.end(), detail.begin(), detail.end());
        } else {
            ++detail_dropped_;
        }
    }
    push(rec);
}

void Trace::set_enabled(TraceKind kind, bool on) {
    const auto bit = static_cast<std::uint16_t>(1u << static_cast<unsigned>(kind));
    if (on)
        enabled_mask_ |= bit;
    else
        enabled_mask_ &= static_cast<std::uint16_t>(~bit);
}

bool Trace::enabled(TraceKind kind) const {
    return (enabled_mask_ >> static_cast<unsigned>(kind)) & 1u;
}

TraceRecord Trace::materialize(const Rec& r) const {
    TraceRecord out;
    out.at = r.at;
    out.node = r.node;
    out.kind = r.kind;
    out.flag = r.flag;
    out.lineage = r.lineage;
    out.a = r.a;
    out.b = r.b;
    out.c = r.c;
    if (r.detail_pos != 0)
        out.detail.assign(arena_.data() + (r.detail_pos - 1), r.detail_len);
    return out;
}

std::vector<TraceRecord> Trace::snapshot() const {
    std::vector<TraceRecord> out;
    out.reserve(size());
    if (count_ <= capacity_) {
        for (const Rec& r : ring_) out.push_back(materialize(r));
    } else {
        // Ring wrapped: oldest record sits at next_.
        for (std::size_t i = next_; i < ring_.size(); ++i) out.push_back(materialize(ring_[i]));
        for (std::size_t i = 0; i < next_; ++i) out.push_back(materialize(ring_[i]));
    }
    return out;
}

std::vector<TraceRecord> Trace::snapshot(NodeId node) const {
    std::vector<TraceRecord> all = snapshot();
    std::vector<TraceRecord> out;
    for (auto& r : all)
        if (r.node == node) out.push_back(std::move(r));
    return out;
}

void Trace::clear() {
    ring_.clear();
    arena_.clear();
    next_ = 0;
    count_ = 0;
    detail_dropped_ = 0;
    spill_.reset();
    spill_path_.clear();
    drain_records_ = 0;
    spilled_records_ = 0;
    spill_segments_ = 0;
    spilled_bytes_ = 0;
}

bool Trace::enable_spill(const TraceSpillConfig& config, std::string* error) {
    // Spill must see every record from the first one: a ring that
    // already wrapped has lost records no segment can recover.
    FASTNET_EXPECTS(count_ == 0 && !spill_);
    auto writer = std::make_unique<SpillWriter>();
    if (!writer->open(config.path, config.shard, error)) return false;
    spill_ = std::move(writer);
    spill_path_ = config.path;
    drain_records_ = capacity_;
    if (config.resident_budget_bytes != 0) {
        const std::size_t budget = config.resident_budget_bytes;
        const std::size_t for_ring =
            budget > detail_capacity_ ? budget - detail_capacity_ : 0;
        const std::size_t budget_records = for_ring / sizeof(Rec);
        FASTNET_EXPECTS(budget_records >= 1);
        drain_records_ = std::min(capacity_, budget_records);
    }
    // Reserve the exact resident footprint once so resident_bytes() is a
    // true fixed bound (vector growth would otherwise overshoot; the
    // constructor's default reserve may already exceed a tight budget,
    // so release it first — the ring is empty here).
    if (ring_.capacity() > drain_records_) std::vector<Rec>().swap(ring_);
    ring_.reserve(drain_records_);
    arena_.reserve(detail_capacity_);
    return true;
}

void Trace::flush_spill() {
    if (!spill_ || ring_.empty()) return;
    std::vector<SpillWriter::Item> items;
    items.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        const Rec& r = ring_[i];
        SpillWriter::Item it;
        it.at = r.at;
        it.seq = spilled_records_ + i;  // per-shard recording index
        it.lineage = r.lineage;
        it.a = r.a;
        it.b = r.b;
        it.c = r.c;
        it.node = r.node;
        it.kind = r.kind;
        it.flag = r.flag;
        if (r.detail_pos != 0)
            it.detail = std::string_view(arena_.data() + (r.detail_pos - 1), r.detail_len);
        items.push_back(it);
    }
    spill_->write_segment(items);
    spilled_records_ += ring_.size();
    spill_segments_ = spill_->segments();
    spilled_bytes_ = spill_->bytes_written();
    ring_.clear();
    arena_.clear();
    next_ = 0;
}

bool Trace::finish_spill() {
    if (!spill_) return true;
    flush_spill();
    SpillStats stats;
    stats.total_recorded = count_;
    stats.dropped = dropped();
    stats.detail_dropped = detail_dropped_;
    stats.spilled_records = spilled_records_;
    const bool ok = spill_->finish(stats);
    spilled_bytes_ = spill_->bytes_written();
    spill_.reset();
    drain_records_ = 0;
    return ok;
}

std::size_t Trace::resident_bytes() const {
    return ring_.capacity() * sizeof(Rec) + arena_.capacity();
}

std::string format_record(const TraceRecord& r) {
    std::string line = "[t=" + std::to_string(r.at) + "] ";
    line += r.node == kNoNode ? std::string("net") : "node " + std::to_string(r.node);
    line += ' ';
    line += trace_kind_name(r.kind);
    if (r.lineage != 0) line += " lin=" + std::to_string(r.lineage);
    switch (r.kind) {
        case TraceKind::kSend:
            line += " header_len=" + std::to_string(r.a);
            if (r.b != 0) line += " parent=" + std::to_string(r.b);
            break;
        case TraceKind::kHop:
            line += " edge=" + std::to_string(r.a) + " hops=" + std::to_string(r.b);
            if (r.c != 0) line += " tx_at=" + std::to_string(r.c);
            break;
        case TraceKind::kDeliver:
            line += " hops=" + std::to_string(r.a) + " busy=" + std::to_string(r.b);
            if (r.c != 0) line += " sent_at=" + std::to_string(r.c);
            break;
        case TraceKind::kTimer:
            line += " cookie=" + std::to_string(r.a) + " busy=" + std::to_string(r.b);
            if (r.c != 0) line += " armed_at=" + std::to_string(r.c);
            break;
        case TraceKind::kLinkChange:
            line += " edge=" + std::to_string(r.a);
            line += r.flag ? " up" : " down";
            break;
        case TraceKind::kDrop:
            if (r.a != kNoEdge) line += " edge=" + std::to_string(r.a);
            line += " reason=";
            line += drop_reason_name(static_cast<DropReason>(r.flag));
            break;
        case TraceKind::kDup:
            line += " edge=" + std::to_string(r.a) + " copy_id=" + std::to_string(r.b);
            break;
        case TraceKind::kCrash:
        case TraceKind::kRestart:
            line += " incarnation=" + std::to_string(r.a);
            break;
        case TraceKind::kPhase:
            line += " phase=" + std::to_string(r.a);
            break;
        case TraceKind::kViolation:
            line += " monitor=" + std::to_string(r.a);
            break;
        case TraceKind::kCallEvent:
            line += " call=" + std::to_string(r.a >> 32) + "." +
                    std::to_string(r.a & 0xffffffffULL);
            line += " event=" + std::to_string(r.b);
            if (r.flag != 0) line += " attempt=" + std::to_string(r.flag);
            break;
        case TraceKind::kStart:
        case TraceKind::kCustom:
            break;
    }
    if (!r.detail.empty()) {
        line += ": ";
        line += r.detail;
    }
    return line;
}

void Trace::print(std::ostream& os) const {
    for (const TraceRecord& r : snapshot()) os << format_record(r) << '\n';
}

}  // namespace fastnet::sim
