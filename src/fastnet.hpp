// fastnet — umbrella header.
//
// A C++20 reproduction of Cidon, Gopal & Kutten, "New Models and
// Algorithms for Future Networks" (PODC 1988): the switching-subsystem /
// NCU node model with ANR source routing and selective copy, the
// system-call cost measure, and the paper's three algorithm suites
// (topology maintenance, leader election, globally sensitive functions)
// with their baselines, all running on a deterministic discrete-event
// simulator.
//
// Layering (each header is independently includable):
//   common/  — ids, contracts, deterministic RNG
//   graph/   — graphs, generators, BFS/trees
//   sim/     — event queue and clock
//   hw/      — packets, ANR headers, switches, links, the network fabric
//   node/    — NCU runtime, protocol API, cluster assembly
//   cost/    — the paper's cost measures
//   obs/     — exporters, live invariant monitors, theorem-bound audits
//   exec/    — multi-core sweep engine (deterministic parallel experiments)
//   fault/   — crash-recovery fault injection + convergence oracle
//   topo/    — Section 3: labelling, branching-paths broadcast,
//              topology maintenance, the Omega(log n) lower bound
//   election/— Section 4: domains/tours election + ring baselines
//   gsf/     — Section 5: S(t) recursion, OT(t) trees, tree gather
//   util/    — table formatting for benches/examples
#pragma once

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "cost/metrics.hpp"
#include "election/election.hpp"
#include "exec/result.hpp"
#include "exec/sweep_runner.hpp"
#include "exec/thread_pool.hpp"
#include "election/inout_tree.hpp"
#include "fault/call_oracle.hpp"
#include "fault/injector.hpp"
#include "fault/oracle.hpp"
#include "election/ring_election.hpp"
#include "graph/algorithms.hpp"
#include "graph/dot.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/rooted_tree.hpp"
#include "gsf/gather.hpp"
#include "gsf/opt_tree.hpp"
#include "gsf/schedule.hpp"
#include "hw/anr.hpp"
#include "hw/link.hpp"
#include "hw/network.hpp"
#include "hw/packet.hpp"
#include "hw/switch.hpp"
#include "node/cluster.hpp"
#include "node/parallel_cluster.hpp"
#include "node/protocol.hpp"
#include "obs/audit.hpp"
#include "obs/json.hpp"
#include "obs/metrics_export.hpp"
#include "obs/monitor.hpp"
#include "obs/trace_export.hpp"
#include "obs/trace_query.hpp"
#include "node/runtime.hpp"
#include "node/scenario.hpp"
#include "paris/call_setup.hpp"
#include "paris/workload.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "topo/broadcast_plan.hpp"
#include "topo/broadcast_protocols.hpp"
#include "topo/labeling.hpp"
#include "topo/lower_bound.hpp"
#include "topo/paths.hpp"
#include "topo/router.hpp"
#include "topo/topology_maintenance.hpp"
#include "util/table.hpp"
