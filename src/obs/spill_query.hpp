// Query and export over spill files (sim/trace_spill.hpp) without ever
// materializing the full trace.
//
// The exporters stream a SpillMerge through the shared per-record
// serializer pieces of obs/trace_export.hpp — the output is
// byte-identical to canonical_trace_json / chrome_trace_json over the
// in-memory merged trace of the same run (scripts/trace_spill_smoke.sh
// diffs exactly this across shard and thread counts).
//
// Causal queries (--chain / --violations in fastnet_trace) need the
// lineage parent map: the `b` field of each lineage's first kSend
// record. LineageIndex builds that map in one streaming pass and can
// persist it as a tiny sidecar file next to the spill data, so repeated
// queries against a large spill directory skip the scan entirely.
//
// Sidecar layout (little-endian): "FNLIDX01" u64 count, then count
// (u64 lineage, u64 parent) pairs sorted by lineage.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/critical_path.hpp"
#include "obs/trace_export.hpp"
#include "obs/trace_query.hpp"
#include "sim/trace_spill.hpp"

namespace fastnet::obs {

/// Streams the merged records of `paths` (spill files; see
/// sim::spill_files for directory expansion) as a canonical trace
/// export. The header counters come from the files' stats trailers.
/// Byte-identical to canonical_trace_json over the merged trace.
bool spill_canonical_json(const std::vector<std::string>& paths, const ExportMeta& meta,
                          std::ostream& os, std::string* error = nullptr);

/// Streams the merged records as a Chrome trace-event export,
/// byte-identical to chrome_trace_json over the merged trace.
bool spill_chrome_json(const std::vector<std::string>& paths, const ExportMeta& meta,
                       std::ostream& os, std::string* error = nullptr);

/// Streams the merge and collects only the records `keep` accepts —
/// resident memory scales with the match set, not the trace.
bool spill_collect(const std::vector<std::string>& paths,
                   const std::function<bool(const sim::TraceRecord&)>& keep,
                   std::vector<sim::TraceRecord>& out, std::string* error = nullptr);

/// Streams the merged records of `paths` through a CriticalPathBuilder
/// in one bounded-memory pass — the spill-side twin of
/// obs::critical_path over in-memory records. `peak_memory_bytes`
/// (optional) receives the builder's maximum resident footprint, what
/// bench_critical_path gates against the 4 MiB budget.
bool spill_critical_path(const std::vector<std::string>& paths,
                         const CriticalPathConfig& config, CriticalPathReport& out,
                         std::string* error = nullptr,
                         std::size_t* peak_memory_bytes = nullptr);

/// One-pass summary of a spill data set.
struct SpillSummary {
    sim::SpillStats stats;
    std::array<std::uint64_t, sim::kTraceKindCount> counts{};
    Tick first_at = 0;
    Tick last_at = 0;
    std::uint64_t records = 0;  ///< Records actually present in segments.
    std::size_t files = 0;
    bool truncated = false;  ///< Any input crash-truncated (tail recovered).
};

bool spill_summarize(const std::vector<std::string>& paths, SpillSummary& out,
                     std::string* error = nullptr);

/// The lineage -> causal parent map of a spill data set: for each
/// lineage, the `b` of its first kSend record in merge order — the
/// exact relation obs::lineage_ancestry walks on in-memory records.
class LineageIndex {
public:
    /// Builds the map by streaming `paths` (kSend records only).
    bool build(const std::vector<std::string>& paths, std::string* error = nullptr);

    /// Sidecar I/O (format in the header comment above).
    bool save(const std::string& path, std::string* error = nullptr) const;
    bool load(const std::string& path, std::string* error = nullptr);

    /// Causal parent of `lineage`; 0 = root / unknown.
    std::uint64_t parent_of(std::uint64_t lineage) const;

    /// Ancestry path, oldest first, ending with `lineage` — the same
    /// walk (including the cycle guard) as obs::lineage_ancestry.
    std::vector<std::uint64_t> ancestry(std::uint64_t lineage) const;

    std::size_t size() const { return pairs_.size(); }

private:
    /// Sorted by lineage; binary-searched by parent_of.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs_;
};

/// Collects the full record set of one reported chain (every record of
/// the terminal lineage's ancestry, merge order) — exactly the
/// chain_records input obs::path_waterfall wants. Streams the spill
/// once; resident memory scales with the chain, not the trace.
bool spill_chain_records(const std::vector<std::string>& paths, const LineageIndex& index,
                         std::uint64_t terminal, std::vector<sim::TraceRecord>& out,
                         std::string* error = nullptr);

/// Canonical sidecar location for a spill file or directory:
/// `<file>.fnlidx` / `<dir>/lineage.fnlidx`.
std::string lineage_index_path(const std::string& spill_path);

}  // namespace fastnet::obs
