// Trace exporters + loaders: the bridge from sim::Trace to files.
//
// Two formats, both deterministic (byte-identical for identical traces,
// regardless of thread count or host — scripts/trace_smoke.sh diffs
// them across runs):
//
//  * Canonical JSON — the repo's own flat schema. Every record with all
//    typed fields; exact integers; loadable back (load_canonical) for
//    offline querying by fastnet_trace and the tests. Schema:
//      {"fastnet_trace": 1, "name": ..., "nodes": N,
//       "edges": [[a,b], ...], "total_recorded": T, "dropped": D,
//       "detail_dropped": DD, "records": [
//         {"at":..,"node":..,"kind":"send","lineage":..,"a":..,"b":..,
//          "flag":..}, ...]}
//    ("node": -1 encodes a network-scope record; "detail" appears only
//     when non-empty.)
//
//  * Chrome trace-event JSON — loadable in Perfetto / chrome://tracing.
//    pid 1 ("ncu") has one thread track per node carrying "X" complete
//    events for handler executions (ts = completion − busy, dur = busy)
//    and instants for sends/crashes/restarts; pid 2 ("links") has one
//    thread track per edge carrying instants for hops, drops and
//    duplicates. One tick renders as one microsecond. Lineage ids ride
//    in each event's "args".
//
// check_canonical / check_chrome are strict schema validators (used by
// `fastnet_trace --check` and the tests): they parse with obs::json and
// verify every required key, type and enum value.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"
#include "sim/trace.hpp"

namespace fastnet::obs {

/// Static context an exported trace carries along: where it came from
/// and the topology needed to label tracks / resolve edge endpoints.
struct ExportMeta {
    std::string name;     ///< Scenario / case name.
    NodeId nodes = 0;     ///< Node count.
    /// Edge endpoints, indexed by EdgeId.
    std::vector<std::pair<NodeId, NodeId>> edges;
};

/// Builds the meta block from a topology.
ExportMeta make_meta(const graph::Graph& g, std::string name);

/// The canonical flat serialization (schema above).
std::string canonical_trace_json(const sim::Trace& trace, const ExportMeta& meta);

/// The Chrome trace-event serialization (schema above).
std::string chrome_trace_json(const sim::Trace& trace, const ExportMeta& meta);

/// Canonical serialization over an already-merged record list — the
/// parallel kernel sorts its per-shard snapshots and exports them with
/// this overload. The counters are the summed per-shard totals, so the
/// output is byte-identical to a sequential export of the same run.
std::string canonical_trace_json(const std::vector<sim::TraceRecord>& records,
                                 const ExportMeta& meta, std::uint64_t total_recorded,
                                 std::uint64_t dropped, std::uint64_t detail_dropped);

/// Chrome serialization over an already-merged record list.
std::string chrome_trace_json(const std::vector<sim::TraceRecord>& records,
                              const ExportMeta& meta);

// ---- streaming export pieces ---------------------------------------
// The serializers above are header + per-record append + footer; the
// pieces are exposed so the spill-file exporters (obs/spill_query.hpp)
// can emit the same bytes one record at a time without materializing
// the trace — that sharing is the byte-identity guarantee between the
// in-memory and spilled paths.

/// Everything before the first record of a canonical export (ends just
/// after `"records": [\n`).
std::string canonical_trace_header(const ExportMeta& meta, std::uint64_t total_recorded,
                                   std::uint64_t dropped, std::uint64_t detail_dropped);
/// One canonical record object (no separator).
void append_canonical_record(std::string& out, const sim::TraceRecord& r);
/// Everything after the last record of a canonical export.
std::string canonical_trace_footer();

/// Everything before the first record event of a Chrome export (the
/// traceEvents opener plus process/thread naming metadata).
std::string chrome_trace_header(const ExportMeta& meta);
/// The Chrome event(s) for one record, each ending in ",\n".
void append_chrome_record(std::string& out, const sim::TraceRecord& r);
/// The closing metadata event + array/object terminators.
std::string chrome_trace_footer(const ExportMeta& meta);

/// A canonical export read back from disk.
struct LoadedTrace {
    ExportMeta meta;
    std::uint64_t total_recorded = 0;
    std::uint64_t dropped = 0;
    std::uint64_t detail_dropped = 0;
    std::vector<sim::TraceRecord> records;
};

/// Parses + validates a canonical export. Returns false (with a message
/// in `error` when non-null) on malformed JSON or schema violations.
bool load_canonical(std::string_view json_text, LoadedTrace& out,
                    std::string* error = nullptr);

/// Validates a canonical export without keeping the records.
bool check_canonical(std::string_view json_text, std::string* error = nullptr);

/// Validates a Chrome trace-event export: traceEvents array, known
/// phases, required per-phase fields, non-negative integer timestamps.
bool check_chrome(std::string_view json_text, std::string* error = nullptr);

}  // namespace fastnet::obs
