#include "obs/trace_query.hpp"

#include <algorithm>

namespace fastnet::obs {

std::vector<sim::TraceRecord> filter_records(std::span<const sim::TraceRecord> records,
                                             const TraceFilter& f) {
    std::vector<sim::TraceRecord> out;
    for (const sim::TraceRecord& r : records) {
        if (f.node && r.node != *f.node) continue;
        if (f.kind && r.kind != *f.kind) continue;
        if (f.lineage && r.lineage != *f.lineage) continue;
        if (f.from && r.at < *f.from) continue;
        if (f.to && r.at > *f.to) continue;
        out.push_back(r);
    }
    return out;
}

namespace {

/// The causal parent of `lineage` (the lineage whose handler performed
/// its send), or 0 when unknown / spontaneous.
std::uint64_t parent_of(std::span<const sim::TraceRecord> records, std::uint64_t lineage) {
    for (const sim::TraceRecord& r : records)
        if (r.kind == sim::TraceKind::kSend && r.lineage == lineage) return r.b;
    return 0;
}

}  // namespace

std::vector<std::uint64_t> lineage_ancestry(std::span<const sim::TraceRecord> records,
                                            std::uint64_t lineage) {
    std::vector<std::uint64_t> chain;
    std::uint64_t cur = lineage;
    while (cur != 0) {
        // Cycle guard: lineage ids are assigned monotonically so a real
        // trace cannot cycle, but a hand-edited file must not hang us.
        if (std::find(chain.begin(), chain.end(), cur) != chain.end()) break;
        chain.push_back(cur);
        cur = parent_of(records, cur);
    }
    std::reverse(chain.begin(), chain.end());
    return chain;
}

std::vector<sim::TraceRecord> causal_chain(std::span<const sim::TraceRecord> records,
                                           std::uint64_t lineage) {
    const std::vector<std::uint64_t> lineages = lineage_ancestry(records, lineage);
    std::vector<sim::TraceRecord> out;
    for (const sim::TraceRecord& r : records) {
        if (r.lineage == 0) continue;
        if (std::find(lineages.begin(), lineages.end(), r.lineage) != lineages.end())
            out.push_back(r);
    }
    return out;  // records is chronological, so out is too
}

std::vector<CrashEpisode> crash_episodes(std::span<const sim::TraceRecord> records) {
    std::vector<CrashEpisode> out;
    for (std::size_t i = 0; i < records.size(); ++i) {
        const sim::TraceRecord& r = records[i];
        if (r.kind != sim::TraceKind::kCrash) continue;
        CrashEpisode ep;
        ep.node = r.node;
        ep.crashed_at = r.at;
        for (std::size_t j = i + 1; j < records.size(); ++j) {
            const sim::TraceRecord& s = records[j];
            if (ep.restarted_at == kNever) {
                if (s.kind == sim::TraceKind::kDrop) ++ep.drops_while_down;
                if (s.kind == sim::TraceKind::kRestart && s.node == r.node)
                    ep.restarted_at = s.at;
                continue;
            }
            ep.settled_at = s.at;
            if (s.kind == sim::TraceKind::kDeliver && s.node == r.node)
                ++ep.deliveries_after_restart;
        }
        if (ep.restarted_at != kNever && ep.settled_at == kNever)
            ep.settled_at = ep.restarted_at;
        out.push_back(ep);
    }
    return out;
}

std::array<std::uint64_t, sim::kTraceKindCount> kind_counts(
    std::span<const sim::TraceRecord> records) {
    std::array<std::uint64_t, sim::kTraceKindCount> counts{};
    for (const sim::TraceRecord& r : records)
        counts[static_cast<std::size_t>(r.kind)] += 1;
    return counts;
}

std::string format_records(std::span<const sim::TraceRecord> records) {
    std::string out;
    for (const sim::TraceRecord& r : records) {
        out += sim::format_record(r);
        out += '\n';
    }
    return out;
}

std::string format_reconvergence(std::span<const sim::TraceRecord> records) {
    const std::vector<CrashEpisode> episodes = crash_episodes(records);
    if (episodes.empty()) return "no crashes in trace\n";
    std::string out;
    for (const CrashEpisode& ep : episodes) {
        out += "node " + std::to_string(ep.node) + " crashed at t=" +
               std::to_string(ep.crashed_at);
        if (ep.restarted_at == kNever) {
            out += ", never restarted";
        } else {
            out += ", restarted at t=" + std::to_string(ep.restarted_at) + " (down " +
                   std::to_string(ep.restarted_at - ep.crashed_at) + " ticks)";
        }
        out += "; drops while down: " + std::to_string(ep.drops_while_down);
        if (ep.restarted_at != kNever) {
            out += "; deliveries after restart: " +
                   std::to_string(ep.deliveries_after_restart);
            out += "; last trace activity t=" + std::to_string(ep.settled_at);
        }
        out += '\n';
    }
    return out;
}

}  // namespace fastnet::obs
