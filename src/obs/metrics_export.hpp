// JSON export of the sampled cost ledger (cost::Sampling).
//
// Serializes the windowed time-series and log-scale histograms that
// Metrics::enable_sampling collects: per-node software-P and hardware-C
// budgets over time, delivery/queue series, the latency/header/queue
// histograms, and per-phase system-call counts. Deterministic bytes —
// doubles go through exec::format_double (shortest round-trip form) and
// every collection is serialized in index / first-use order, never hash
// order, so sampled sweeps stay diffable across thread counts.
#pragma once

#include <string>

#include "cost/metrics.hpp"

namespace fastnet::obs {

/// Serializes `metrics`'s sampling block (plus the headline totals).
/// `name` labels the run. Works with sampling disabled too — the
/// "sampling" member is then null.
std::string metrics_json(const cost::Metrics& metrics, const std::string& name);

}  // namespace fastnet::obs
