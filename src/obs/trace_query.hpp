// Offline trace querying: filtering, causal reconstruction, timelines.
//
// Operates on materialized record vectors (a live Trace::snapshot() or a
// canonical export read back via load_canonical) — the same functions
// serve the tests and the fastnet_trace CLI, so anything diagnosable
// in-process is diagnosable from the exported file alone.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace fastnet::obs {

/// Conjunctive record filter; unset fields match everything.
struct TraceFilter {
    std::optional<NodeId> node{};
    std::optional<sim::TraceKind> kind{};
    std::optional<std::uint64_t> lineage{};
    std::optional<Tick> from{};  ///< at >= from
    std::optional<Tick> to{};    ///< at <= to
};

std::vector<sim::TraceRecord> filter_records(std::span<const sim::TraceRecord> records,
                                             const TraceFilter& f);

/// Reconstructs the causal history of lineage `lineage`: every record of
/// that lineage (send, hops, duplicates, drops, deliveries, timers) plus
/// — transitively — the full history of each causal ancestor, i.e. the
/// lineage whose handler performed the send (a kSend record's `b`).
/// Chronological; empty when the lineage never appears.
std::vector<sim::TraceRecord> causal_chain(std::span<const sim::TraceRecord> records,
                                           std::uint64_t lineage);

/// The ancestry path of `lineage` itself, oldest ancestor first (ending
/// with `lineage`). A lineage with no recorded kSend parent is a root.
std::vector<std::uint64_t> lineage_ancestry(std::span<const sim::TraceRecord> records,
                                            std::uint64_t lineage);

/// One crash episode of one node, as reconstructed from the trace.
struct CrashEpisode {
    NodeId node = kNoNode;
    Tick crashed_at = 0;
    Tick restarted_at = kNever;       ///< kNever = never restarted in-trace.
    /// Last trace activity (any kind, any node) at/after the restart —
    /// an upper bound on when the network reconverged.
    Tick settled_at = kNever;
    std::uint64_t drops_while_down = 0;       ///< Network-wide kDrop count in the gap.
    std::uint64_t deliveries_after_restart = 0;  ///< At this node, post-restart.
};

/// Crash/restart episodes in crash order (pairs each kCrash with the
/// next kRestart of the same node).
std::vector<CrashEpisode> crash_episodes(std::span<const sim::TraceRecord> records);

/// Per-kind record counts, indexed by TraceKind value.
std::array<std::uint64_t, sim::kTraceKindCount> kind_counts(
    std::span<const sim::TraceRecord> records);

/// Renders records one per line via sim::format_record.
std::string format_records(std::span<const sim::TraceRecord> records);

/// Human-readable reconvergence report: every crash episode with its
/// down-window, drop count and post-restart delivery count.
std::string format_reconvergence(std::span<const sim::TraceRecord> records);

}  // namespace fastnet::obs
