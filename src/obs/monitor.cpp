#include "obs/monitor.hpp"

#include <algorithm>
#include <utility>

namespace fastnet::obs {

void Monitor::on_finish(MonitorHub&, Tick) {}

void MonitorHub::add(std::unique_ptr<Monitor> m) {
    Entry e;
    e.monitor = std::move(m);
    monitors_.push_back(std::move(e));
}

void MonitorHub::dispatch(const MonitorEvent& ev) {
    for (Entry& e : monitors_) e.monitor->on_event(*this, ev);
}

void MonitorHub::finish(Tick now) {
    for (Entry& e : monitors_) e.monitor->on_finish(*this, now);
}

void MonitorHub::report(const Monitor& monitor, Tick at, NodeId node, std::uint64_t lineage,
                        std::string message) {
    ++violation_count_;
    std::size_t index = monitors_.size();
    Entry* entry = nullptr;
    for (std::size_t i = 0; i < monitors_.size(); ++i) {
        if (monitors_[i].monitor.get() == &monitor) {
            index = i;
            entry = &monitors_[i];
            break;
        }
    }
    const std::uint64_t prior = entry ? entry->reported : 0;
    if (entry) ++entry->reported;
    if (prior >= kMaxStoredPerMonitor) return;
    if (prior == 0 && trace_ && trace_->enabled(sim::TraceKind::kViolation)) {
        std::string detail = monitor.name();
        detail += ": ";
        detail += message;
        sim::TraceArgs args;
        args.lineage = lineage;
        args.a = index;
        trace_->record_detail(at, node, sim::TraceKind::kViolation, detail, args);
    }
    Violation v;
    v.monitor = monitor.name();
    v.message = std::move(message);
    v.at = at;
    v.node = node;
    v.lineage = lineage;
    violations_.push_back(std::move(v));
}

// ---- LineageConservationMonitor ------------------------------------------

void LineageConservationMonitor::on_event(MonitorHub& hub, const MonitorEvent& ev) {
    switch (ev.kind) {
        case MonitorEvent::Kind::kSend:
        case MonitorEvent::Kind::kDup:
        case MonitorEvent::Kind::kHandoff:
            ++live_[ev.lineage];
            last_at_ = ev.at;
            break;
        case MonitorEvent::Kind::kRetire: {
            std::int64_t* copies = live_.find(ev.lineage);
            if (copies == nullptr || *copies <= 0) {
                hub.report(*this, ev.at, ev.node, ev.lineage,
                           "retire without a live copy (lineage " +
                               std::to_string(ev.lineage) + ")");
                break;
            }
            --*copies;  // balanced entries stay at 0 (no erase; see on_finish)
            last_at_ = ev.at;
            break;
        }
        default:
            break;
    }
}

void LineageConservationMonitor::on_finish(MonitorHub& hub, Tick now) {
    // The map is probe-ordered; collect the unbalanced lineages and sort
    // so the report order is a function of the run, not the hash layout.
    std::vector<std::pair<std::uint64_t, std::int64_t>> open;
    for (const auto& e : live_.raw_entries()) {
        if (e.occupied && e.value != 0) open.emplace_back(e.key, e.value);
    }
    std::sort(open.begin(), open.end());
    for (const auto& [lineage, copies] : open) {
        hub.report(*this, now > last_at_ ? now : last_at_, kNoNode, lineage,
                   std::to_string(copies) + " live cop" + (copies == 1 ? "y" : "ies") +
                       " never retired (lineage " + std::to_string(lineage) + ")");
    }
}

// ---- QueueDepthMonitor ---------------------------------------------------

void QueueDepthMonitor::on_event(MonitorHub& hub, const MonitorEvent& ev) {
    if (ev.kind != MonitorEvent::Kind::kEnqueue) return;
    if (ev.a <= ceiling_) return;
    hub.report(*this, ev.at, ev.node, ev.lineage,
               "queue depth " + std::to_string(ev.a) + " exceeds ceiling " +
                   std::to_string(ceiling_));
}

// ---- BusyWindowMonitor ---------------------------------------------------

void BusyWindowMonitor::on_event(MonitorHub& hub, const MonitorEvent& ev) {
    if (ev.kind != MonitorEvent::Kind::kInvoke) return;
    if (ev.at < last_global_) {
        hub.report(*this, ev.at, ev.node, ev.lineage,
                   "invocation completed at t=" + std::to_string(ev.at) +
                       " after a later completion at t=" + std::to_string(last_global_));
    }
    last_global_ = ev.at > last_global_ ? ev.at : last_global_;
    if (ev.node == kNoNode) return;
    if (ev.node >= last_end_.size()) last_end_.resize(ev.node + 1, kNever);
    const Tick busy = static_cast<Tick>(ev.b);
    const Tick begin = ev.at - busy;
    const Tick prev = last_end_[ev.node];
    if (prev != kNever && begin < prev) {
        hub.report(*this, ev.at, ev.node, ev.lineage,
                   "busy window [" + std::to_string(begin) + "," + std::to_string(ev.at) +
                       "] overlaps previous completion at t=" + std::to_string(prev));
    }
    last_end_[ev.node] = ev.at;
}

// ---- PhaseBudgetMonitor --------------------------------------------------

void PhaseBudgetMonitor::on_event(MonitorHub& hub, const MonitorEvent& ev) {
    if (ev.kind == MonitorEvent::Kind::kPhase) {
        current_phase_ = ev.a;
        return;
    }
    if (ev.kind != MonitorEvent::Kind::kInvoke) return;
    if (static_cast<MonitorEvent::InvokeKind>(ev.a) != MonitorEvent::InvokeKind::kDelivery)
        return;
    if (current_phase_ != phase_) return;
    ++calls_;
    if (calls_ == max_calls_ + 1) {
        hub.report(*this, ev.at, ev.node, ev.lineage,
                   "phase " + std::to_string(phase_) + " exceeded its system-call budget of " +
                       std::to_string(max_calls_));
    }
}

// ---- LinkFifoMonitor -----------------------------------------------------

void LinkFifoMonitor::on_event(MonitorHub& hub, const MonitorEvent& ev) {
    if (ev.kind != MonitorEvent::Kind::kHop) return;
    // One direction = (edge, arriving node); edges and nodes are 32-bit.
    const std::uint64_t key = (ev.a << 32) | ev.node;
    if (Tick* prev = last_arrival_.find(key)) {
        if (ev.at < *prev) {
            hub.report(*this, ev.at, ev.node, ev.lineage,
                       "FIFO order broken on edge " + std::to_string(ev.a) +
                           ": arrival at t=" + std::to_string(ev.at) +
                           " after one at t=" + std::to_string(*prev));
        } else if (spacing_ > 0 && ev.at - *prev < spacing_) {
            hub.report(*this, ev.at, ev.node, ev.lineage,
                       "arrivals " + std::to_string(ev.at - *prev) +
                           " apart on edge " + std::to_string(ev.a) +
                           " (link spacing " + std::to_string(spacing_) + ")");
        }
        *prev = ev.at > *prev ? ev.at : *prev;
        return;
    }
    last_arrival_[key] = ev.at;
}

// ---- MemoryBudgetMonitor -------------------------------------------------

void MemoryBudgetMonitor::on_event(MonitorHub& hub, const MonitorEvent& ev) {
    if (ev.kind != MonitorEvent::Kind::kMemory || ev.node == kNoNode) return;
    if (ev.node >= over_.size()) over_.resize(ev.node + 1, 0);
    const bool over = ev.a > ceiling_;
    if (over && !over_[ev.node]) {
        hub.report(*this, ev.at, ev.node, 0,
                   "node footprint " + std::to_string(ev.a) + " bytes exceeds budget " +
                       std::to_string(ceiling_));
    }
    over_[ev.node] = over ? 1 : 0;
    if (board_) board_->set(ev.node, over);
}

// ---- SerializedSendMonitor -----------------------------------------------

void SerializedSendMonitor::on_event(MonitorHub& hub, const MonitorEvent& ev) {
    if (ev.kind == MonitorEvent::Kind::kInvoke && ev.node != kNoNode &&
        static_cast<MonitorEvent::InvokeKind>(ev.a) == MonitorEvent::InvokeKind::kRestart) {
        if (ev.node < last_send_.size()) last_send_[ev.node] = kNever;
        return;
    }
    if (ev.kind != MonitorEvent::Kind::kSend || ev.node == kNoNode) return;
    if (ev.node >= last_send_.size()) last_send_.resize(ev.node + 1, kNever);
    const Tick prev = last_send_[ev.node];
    if (prev != kNever && min_gap_ > 0 && ev.at - prev < min_gap_) {
        hub.report(*this, ev.at, ev.node, ev.lineage,
                   "sends " + std::to_string(ev.at - prev) + " apart at node " +
                       std::to_string(ev.node) + " (serialized-send gap " +
                       std::to_string(min_gap_) + ")");
    }
    last_send_[ev.node] = ev.at;
}

// ---- TraceOverflowMonitor ------------------------------------------------

void TraceOverflowMonitor::on_event(MonitorHub& hub, const MonitorEvent& ev) {
    if (ev.kind != MonitorEvent::Kind::kTraceDrop) return;
    if (ev.a != 0 && !reported_records_) {
        reported_records_ = true;
        hub.report(*this, ev.at, ev.node, 0,
                   "trace ring overflowed: " + std::to_string(ev.a) +
                       " record(s) dropped (size the ring up or enable spill)");
    }
    if (ev.b != 0 && !reported_details_) {
        reported_details_ = true;
        hub.report(*this, ev.at, ev.node, 0,
                   "trace detail arena overflowed: " + std::to_string(ev.b) +
                       " detail string(s) dropped");
    }
}

void LatencySloMonitor::on_event(MonitorHub& hub, const MonitorEvent& ev) {
    if (ev.kind == MonitorEvent::Kind::kSend) {
        if (ev.lineage == 0) return;
        Tick root_start = ev.at;
        if (ev.b != 0)
            if (const Tick* parent = start_.find(ev.b)) root_start = *parent;
        start_[ev.lineage] = root_start;
        return;
    }
    if (ev.kind != MonitorEvent::Kind::kDeliver) return;
    Tick root_start = static_cast<Tick>(ev.b);  // fallback: own injection
    if (const Tick* s = start_.find(ev.lineage)) root_start = *s;
    const Tick latency = ev.at - root_start;
    if (latency <= ceiling_) return;
    hub.report(*this, ev.at, ev.node, ev.lineage,
               "path latency " + std::to_string(latency) + " exceeds ceiling " +
                   std::to_string(ceiling_) + " (root injection at t=" +
                   std::to_string(root_start) + ")");
}

void add_standard_monitors(MonitorHub& hub, std::uint64_t queue_ceiling) {
    hub.add(std::make_unique<LineageConservationMonitor>());
    hub.add(std::make_unique<BusyWindowMonitor>());
    hub.add(std::make_unique<QueueDepthMonitor>(queue_ceiling));
}

void add_standard_monitors(MonitorHub& hub, const StandardMonitorOptions& options) {
    add_standard_monitors(hub, options.queue_ceiling);
    hub.add(std::make_unique<LinkFifoMonitor>(options.link_spacing));
    hub.add(std::make_unique<SerializedSendMonitor>(options.min_send_gap));
    hub.add(std::make_unique<TraceOverflowMonitor>());
}

std::string violations_json(const MonitorHub& hub, const std::string& name) {
    return violations_json(hub.monitor_count(), hub.violation_count(), hub.violations(),
                           name);
}

std::string violations_json(std::size_t monitor_count, std::uint64_t violation_count,
                            const std::vector<Violation>& violations,
                            const std::string& name) {
    auto quote = [](const std::string& s) {
        std::string out = "\"";
        for (char c : s) {
            switch (c) {
                case '"': out += "\\\""; break;
                case '\\': out += "\\\\"; break;
                case '\n': out += "\\n"; break;
                case '\t': out += "\\t"; break;
                default: out += c; break;
            }
        }
        out += '"';
        return out;
    };
    std::string out = "{\n";
    out += "  \"fastnet_monitors\": 1,\n";
    out += "  \"name\": ";
    out += quote(name);
    out += ",\n";
    out += "  \"monitors\": " + std::to_string(monitor_count) + ",\n";
    out += "  \"violation_count\": " + std::to_string(violation_count) + ",\n";
    out += "  \"ok\": ";
    out += violation_count == 0 ? "true" : "false";
    out += ",\n";
    out += "  \"violations\": [";
    bool first = true;
    for (const Violation& v : violations) {
        if (!first) out += ',';
        first = false;
        out += "\n    {\"monitor\": ";
        out += quote(v.monitor);
        out += ", \"at\": " + std::to_string(v.at);
        out += ", \"node\": ";
        out += v.node == kNoNode ? std::string("null") : std::to_string(v.node);
        out += ", \"lineage\": " + std::to_string(v.lineage);
        out += ", \"message\": ";
        out += quote(v.message);
        out += '}';
    }
    if (!first) out += "\n  ";
    out += "]\n}\n";
    return out;
}

}  // namespace fastnet::obs
