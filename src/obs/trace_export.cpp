#include "obs/trace_export.hpp"

#include "obs/json.hpp"

namespace fastnet::obs {

namespace {

/// Signed render of a NodeId where kNoNode becomes -1 (network scope).
std::string node_field(NodeId node) {
    return node == kNoNode ? std::string("-1") : std::to_string(node);
}

}  // namespace

void append_canonical_record(std::string& out, const sim::TraceRecord& r) {
    out += "{\"at\":" + std::to_string(r.at);
    out += ",\"node\":" + node_field(r.node);
    out += ",\"kind\":\"";
    out += sim::trace_kind_name(r.kind);
    out += "\",\"lineage\":" + std::to_string(r.lineage);
    out += ",\"a\":" + std::to_string(r.a);
    out += ",\"b\":" + std::to_string(r.b);
    // Causal anchor: emitted only when set, so records without one (and
    // pre-anchor exports) keep their exact historical bytes.
    if (r.c != 0) out += ",\"c\":" + std::to_string(r.c);
    out += ",\"flag\":" + std::to_string(r.flag);
    if (!r.detail.empty()) {
        out += ",\"detail\":";
        out += json_quote(r.detail);
    }
    out += "}";
}

ExportMeta make_meta(const graph::Graph& g, std::string name) {
    ExportMeta meta;
    meta.name = std::move(name);
    meta.nodes = g.node_count();
    meta.edges.reserve(g.edge_count());
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
        const graph::Edge& edge = g.edge(e);
        meta.edges.emplace_back(edge.a, edge.b);
    }
    return meta;
}

std::string canonical_trace_json(const sim::Trace& trace, const ExportMeta& meta) {
    return canonical_trace_json(trace.snapshot(), meta, trace.total_recorded(),
                                trace.dropped(), trace.detail_dropped());
}

std::string canonical_trace_header(const ExportMeta& meta, std::uint64_t total_recorded,
                                   std::uint64_t dropped, std::uint64_t detail_dropped) {
    std::string out;
    out += "{\n\"fastnet_trace\": 1,\n\"name\": ";
    out += json_quote(meta.name);
    out += ",\n\"nodes\": ";
    out += std::to_string(meta.nodes);
    out += ",\n\"edges\": [";
    for (std::size_t e = 0; e < meta.edges.size(); ++e) {
        if (e != 0) out += ",";
        out += "[";
        out += std::to_string(meta.edges[e].first);
        out += ",";
        out += std::to_string(meta.edges[e].second);
        out += "]";
    }
    out += "],\n\"total_recorded\": ";
    out += std::to_string(total_recorded);
    out += ",\n\"dropped\": ";
    out += std::to_string(dropped);
    out += ",\n\"detail_dropped\": ";
    out += std::to_string(detail_dropped);
    out += ",\n\"records\": [\n";
    return out;
}

std::string canonical_trace_footer() { return "]\n}\n"; }

std::string canonical_trace_json(const std::vector<sim::TraceRecord>& records,
                                 const ExportMeta& meta, std::uint64_t total_recorded,
                                 std::uint64_t dropped, std::uint64_t detail_dropped) {
    std::string out = canonical_trace_header(meta, total_recorded, dropped, detail_dropped);
    for (std::size_t i = 0; i < records.size(); ++i) {
        append_canonical_record(out, records[i]);
        out += i + 1 < records.size() ? ",\n" : "\n";
    }
    out += canonical_trace_footer();
    return out;
}

namespace {

constexpr int kNcuPid = 1;
constexpr int kLinkPid = 2;

void append_event_prefix(std::string& out, std::string_view name, char ph, int pid) {
    out += "{\"name\":";
    out += json_quote(name);
    out += ",\"ph\":\"";
    out.push_back(ph);
    out += "\",\"pid\":" + std::to_string(pid);
}

void append_instant(std::string& out, std::string_view name, int pid, std::uint64_t tid,
                    Tick ts, const std::string& args) {
    append_event_prefix(out, name, 'i', pid);
    out += ",\"tid\":" + std::to_string(tid);
    out += ",\"ts\":" + std::to_string(ts);
    out += ",\"s\":\"t\",\"args\":{" + args + "}},\n";
}

void append_complete(std::string& out, std::string_view name, std::uint64_t tid, Tick end,
                     std::uint64_t busy, const std::string& args) {
    // Clamp at the epoch: a handler's busy window cannot render before
    // t=0 (negative timestamps are schema violations), so an oversized
    // busy value just shortens the drawn duration.
    Tick dur = static_cast<Tick>(busy);
    if (dur > end) dur = end;
    append_event_prefix(out, name, 'X', kNcuPid);
    out += ",\"tid\":" + std::to_string(tid);
    out += ",\"ts\":" + std::to_string(end - dur);
    out += ",\"dur\":" + std::to_string(dur);
    out += ",\"args\":{" + args + "}},\n";
}

std::string lin_arg(std::uint64_t lineage) { return "\"lin\":" + std::to_string(lineage); }

}  // namespace

std::string chrome_trace_json(const sim::Trace& trace, const ExportMeta& meta) {
    return chrome_trace_json(trace.snapshot(), meta);
}

std::string chrome_trace_header(const ExportMeta& meta) {
    std::string out;
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    // Track naming metadata: one process per layer, one thread per node
    // NCU and one per link.
    append_event_prefix(out, "process_name", 'M', kNcuPid);
    out += ",\"args\":{\"name\":\"ncu\"}},\n";
    append_event_prefix(out, "process_name", 'M', kLinkPid);
    out += ",\"args\":{\"name\":\"links\"}},\n";
    for (NodeId u = 0; u < meta.nodes; ++u) {
        append_event_prefix(out, "thread_name", 'M', kNcuPid);
        out += ",\"tid\":" + std::to_string(u);
        out += ",\"args\":{\"name\":\"node " + std::to_string(u) + "\"}},\n";
    }
    for (std::size_t e = 0; e < meta.edges.size(); ++e) {
        append_event_prefix(out, "thread_name", 'M', kLinkPid);
        out += ",\"tid\":" + std::to_string(e);
        out += ",\"args\":{\"name\":\"link " + std::to_string(e) + " (" +
               std::to_string(meta.edges[e].first) + "-" +
               std::to_string(meta.edges[e].second) + ")\"}},\n";
    }
    return out;
}

void append_chrome_record(std::string& out, const sim::TraceRecord& r) {
    const std::uint64_t ncu_tid = r.node == kNoNode ? 0 : r.node;
    switch (r.kind) {
        case sim::TraceKind::kStart:
            append_complete(out, "start", ncu_tid, r.at, r.b, "");
            break;
        case sim::TraceKind::kDeliver:
            append_complete(out, "deliver", ncu_tid, r.at, r.b,
                            lin_arg(r.lineage) + ",\"hops\":" + std::to_string(r.a));
            break;
        case sim::TraceKind::kTimer:
            append_complete(out, "timer", ncu_tid, r.at, r.b,
                            lin_arg(r.lineage) + ",\"cookie\":" + std::to_string(r.a));
            break;
        case sim::TraceKind::kLinkChange:
            append_complete(out, r.flag ? "link_up" : "link_down", ncu_tid, r.at, r.b,
                            "\"edge\":" + std::to_string(r.a));
            break;
        case sim::TraceKind::kSend:
            append_instant(out, "send", kNcuPid, ncu_tid, r.at,
                           lin_arg(r.lineage) +
                               ",\"header_len\":" + std::to_string(r.a) +
                               ",\"parent\":" + std::to_string(r.b));
            break;
        case sim::TraceKind::kCrash:
            append_instant(out, "crash", kNcuPid, ncu_tid, r.at,
                           "\"incarnation\":" + std::to_string(r.a));
            break;
        case sim::TraceKind::kRestart:
            append_instant(out, "restart", kNcuPid, ncu_tid, r.at,
                           "\"incarnation\":" + std::to_string(r.a));
            break;
        case sim::TraceKind::kPhase:
            append_instant(out, "phase", kNcuPid, 0, r.at,
                           "\"phase\":" + std::to_string(r.a));
            break;
        case sim::TraceKind::kHop:
            append_instant(out, "hop", kLinkPid, r.a, r.at,
                           lin_arg(r.lineage) + ",\"hops\":" + std::to_string(r.b));
            break;
        case sim::TraceKind::kDup:
            append_instant(out, "dup", kLinkPid, r.a, r.at,
                           lin_arg(r.lineage) + ",\"copy_id\":" + std::to_string(r.b));
            break;
        case sim::TraceKind::kDrop: {
            const std::string args =
                lin_arg(r.lineage) + ",\"reason\":" +
                json_quote(sim::drop_reason_name(static_cast<sim::DropReason>(r.flag)));
            if (r.a != kNoEdge)
                append_instant(out, "drop", kLinkPid, r.a, r.at, args);
            else
                append_instant(out, "drop", kNcuPid, ncu_tid, r.at, args);
            break;
        }
        case sim::TraceKind::kViolation: {
            std::string args = lin_arg(r.lineage) + ",\"monitor\":" + std::to_string(r.a);
            if (!r.detail.empty()) args += ",\"detail\":" + json_quote(r.detail);
            append_instant(out, "violation", kNcuPid, ncu_tid, r.at, args);
            break;
        }
        case sim::TraceKind::kCallEvent:
            append_instant(out, "call", kNcuPid, ncu_tid, r.at,
                           lin_arg(r.lineage) + ",\"call\":\"" +
                               std::to_string(r.a >> 32) + "." +
                               std::to_string(r.a & 0xffffffffULL) +
                               "\",\"event\":" + std::to_string(r.b) +
                               ",\"attempt\":" + std::to_string(r.flag));
            break;
        case sim::TraceKind::kCustom: {
            std::string args = lin_arg(r.lineage);
            if (!r.detail.empty()) args += ",\"detail\":" + json_quote(r.detail);
            append_instant(out, "custom", kNcuPid, ncu_tid, r.at, args);
            break;
        }
    }
}

std::string chrome_trace_footer(const ExportMeta& meta) {
    // A final metadata event avoids trailing-comma bookkeeping above and
    // stamps the trace with its scenario name.
    std::string out;
    append_event_prefix(out, "trace_name", 'M', kNcuPid);
    out += ",\"args\":{\"name\":";
    out += json_quote(meta.name);
    out += "}}\n]}\n";
    return out;
}

std::string chrome_trace_json(const std::vector<sim::TraceRecord>& records,
                              const ExportMeta& meta) {
    std::string out = chrome_trace_header(meta);
    for (const sim::TraceRecord& r : records) append_chrome_record(out, r);
    out += chrome_trace_footer(meta);
    return out;
}

namespace {

bool check_fail(std::string* error, const std::string& msg) {
    if (error) *error = msg;
    return false;
}

bool require_uint(const JsonValue* v, const char* what, std::string* error) {
    if (v == nullptr || !v->is_uint())
        return check_fail(error, std::string("missing or non-integer ") + what);
    return true;
}

}  // namespace

bool load_canonical(std::string_view json_text, LoadedTrace& out, std::string* error) {
    JsonValue doc;
    if (!json_parse(json_text, doc, error)) return false;
    if (!doc.is_object()) return check_fail(error, "top level is not an object");
    const JsonValue* version = doc.find("fastnet_trace");
    if (version == nullptr || !version->is_uint() || version->uint_value != 1)
        return check_fail(error, "missing or unsupported fastnet_trace version");

    const JsonValue* name = doc.find("name");
    if (name == nullptr || !name->is_string())
        return check_fail(error, "missing or non-string name");
    out.meta.name = name->string;

    const JsonValue* nodes = doc.find("nodes");
    if (!require_uint(nodes, "nodes", error)) return false;
    out.meta.nodes = static_cast<NodeId>(nodes->uint_value);

    const JsonValue* edges = doc.find("edges");
    if (edges == nullptr || !edges->is_array())
        return check_fail(error, "missing or non-array edges");
    out.meta.edges.clear();
    for (const JsonValue& e : edges->array) {
        if (!e.is_array() || e.array.size() != 2 || !e.array[0].is_uint() ||
            !e.array[1].is_uint())
            return check_fail(error, "edge entry is not a pair of node ids");
        out.meta.edges.emplace_back(static_cast<NodeId>(e.array[0].uint_value),
                                    static_cast<NodeId>(e.array[1].uint_value));
    }

    const JsonValue* total = doc.find("total_recorded");
    const JsonValue* dropped = doc.find("dropped");
    const JsonValue* detail_dropped = doc.find("detail_dropped");
    if (!require_uint(total, "total_recorded", error)) return false;
    if (!require_uint(dropped, "dropped", error)) return false;
    if (!require_uint(detail_dropped, "detail_dropped", error)) return false;
    out.total_recorded = total->uint_value;
    out.dropped = dropped->uint_value;
    out.detail_dropped = detail_dropped->uint_value;

    const JsonValue* records = doc.find("records");
    if (records == nullptr || !records->is_array())
        return check_fail(error, "missing or non-array records");
    if (out.dropped > out.total_recorded)
        return check_fail(error, "dropped exceeds total_recorded");
    if (records->array.size() + out.dropped != out.total_recorded)
        return check_fail(error, "record count does not match total_recorded - dropped");

    out.records.clear();
    out.records.reserve(records->array.size());
    Tick prev_at = 0;
    for (std::size_t i = 0; i < records->array.size(); ++i) {
        const JsonValue& rv = records->array[i];
        const std::string where = "records[" + std::to_string(i) + "]";
        if (!rv.is_object()) return check_fail(error, where + " is not an object");
        sim::TraceRecord rec;

        const JsonValue* at = rv.find("at");
        if (at == nullptr || !at->is_uint())
            return check_fail(error, where + ": missing or negative at");
        rec.at = static_cast<Tick>(at->uint_value);
        if (rec.at < prev_at)
            return check_fail(error, where + ": records out of chronological order");
        prev_at = rec.at;

        const JsonValue* node = rv.find("node");
        if (node == nullptr)
            return check_fail(error, where + ": missing node");
        if (node->is_uint()) {
            rec.node = static_cast<NodeId>(node->uint_value);
        } else if (node->type == JsonValue::Type::kInt && node->int_value == -1) {
            rec.node = kNoNode;
        } else {
            return check_fail(error, where + ": node must be an id or -1");
        }

        const JsonValue* kind = rv.find("kind");
        if (kind == nullptr || !kind->is_string())
            return check_fail(error, where + ": missing kind");
        if (!sim::trace_kind_from_name(kind->string, rec.kind))
            return check_fail(error, where + ": unknown kind \"" + kind->string + "\"");

        const JsonValue* lineage = rv.find("lineage");
        const JsonValue* a = rv.find("a");
        const JsonValue* b = rv.find("b");
        const JsonValue* flag = rv.find("flag");
        if (lineage == nullptr || !lineage->is_uint())
            return check_fail(error, where + ": missing lineage");
        if (a == nullptr || !a->is_uint()) return check_fail(error, where + ": missing a");
        if (b == nullptr || !b->is_uint()) return check_fail(error, where + ": missing b");
        if (flag == nullptr || !flag->is_uint() || flag->uint_value > 255)
            return check_fail(error, where + ": missing or out-of-range flag");
        rec.lineage = lineage->uint_value;
        rec.a = a->uint_value;
        rec.b = b->uint_value;
        rec.flag = static_cast<std::uint8_t>(flag->uint_value);
        if (const JsonValue* c = rv.find("c")) {  // optional causal anchor
            if (!c->is_uint()) return check_fail(error, where + ": non-integer c");
            rec.c = c->uint_value;
        }

        if (const JsonValue* detail = rv.find("detail")) {
            if (!detail->is_string())
                return check_fail(error, where + ": non-string detail");
            rec.detail = detail->string;
        }
        out.records.push_back(std::move(rec));
    }
    return true;
}

bool check_canonical(std::string_view json_text, std::string* error) {
    LoadedTrace ignored;
    return load_canonical(json_text, ignored, error);
}

bool check_chrome(std::string_view json_text, std::string* error) {
    JsonValue doc;
    if (!json_parse(json_text, doc, error)) return false;
    if (!doc.is_object()) return check_fail(error, "top level is not an object");
    const JsonValue* events = doc.find("traceEvents");
    if (events == nullptr || !events->is_array())
        return check_fail(error, "missing or non-array traceEvents");
    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const JsonValue& ev = events->array[i];
        const std::string where = "traceEvents[" + std::to_string(i) + "]";
        if (!ev.is_object()) return check_fail(error, where + " is not an object");
        const JsonValue* name = ev.find("name");
        if (name == nullptr || !name->is_string())
            return check_fail(error, where + ": missing name");
        const JsonValue* ph = ev.find("ph");
        if (ph == nullptr || !ph->is_string() || ph->string.size() != 1)
            return check_fail(error, where + ": missing phase");
        const JsonValue* pid = ev.find("pid");
        if (pid == nullptr || !pid->is_uint())
            return check_fail(error, where + ": missing pid");
        const char phase = ph->string[0];
        if (phase == 'M') {
            const JsonValue* args = ev.find("args");
            if (args == nullptr || !args->is_object())
                return check_fail(error, where + ": metadata without args");
            const JsonValue* arg_name = args->find("name");
            if (arg_name == nullptr || !arg_name->is_string())
                return check_fail(error, where + ": metadata args without name");
            continue;
        }
        if (phase != 'X' && phase != 'i')
            return check_fail(error, where + ": unknown phase \"" + ph->string + "\"");
        const JsonValue* tid = ev.find("tid");
        const JsonValue* ts = ev.find("ts");
        if (tid == nullptr || !tid->is_uint())
            return check_fail(error, where + ": missing tid");
        if (ts == nullptr || !ts->is_uint())
            return check_fail(error, where + ": missing or negative ts");
        if (phase == 'X') {
            const JsonValue* dur = ev.find("dur");
            if (dur == nullptr || !dur->is_uint())
                return check_fail(error, where + ": complete event without dur");
        } else {
            const JsonValue* scope = ev.find("s");
            if (scope == nullptr || !scope->is_string() ||
                (scope->string != "t" && scope->string != "p" && scope->string != "g"))
                return check_fail(error, where + ": instant without valid scope");
        }
    }
    return true;
}

}  // namespace fastnet::obs
