#include "obs/spill_query.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace fastnet::obs {

namespace {

constexpr char kIndexMagic[8] = {'F', 'N', 'L', 'I', 'D', 'X', '0', '1'};

/// Flush threshold for the streaming exporters' append buffer.
constexpr std::size_t kFlushBytes = 1 << 16;

bool fail(std::string* error, const std::string& message) {
    if (error) *error = message;
    return false;
}

void put_u64(std::string& buf, std::uint64_t v) {
    for (unsigned i = 0; i < 8; ++i) buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint64_t get_u64(const unsigned char* p) {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

}  // namespace

bool spill_canonical_json(const std::vector<std::string>& paths, const ExportMeta& meta,
                          std::ostream& os, std::string* error) {
    sim::SpillMerge merge;
    if (!merge.open(paths, error)) return false;
    const sim::SpillStats& t = merge.totals();
    std::string buf =
        canonical_trace_header(meta, t.total_recorded, t.dropped, t.detail_dropped);
    sim::TraceRecord r;
    bool first = true;
    while (merge.next(r)) {
        // Separator before each record but the first, newline after the
        // last: the same bytes canonical_trace_json emits in one pass.
        if (!first) buf += ",\n";
        first = false;
        append_canonical_record(buf, r);
        if (buf.size() >= kFlushBytes) {
            os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
            buf.clear();
        }
    }
    if (!first) buf += "\n";
    buf += canonical_trace_footer();
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (!os) return fail(error, "write failed while streaming canonical export");
    return true;
}

bool spill_chrome_json(const std::vector<std::string>& paths, const ExportMeta& meta,
                       std::ostream& os, std::string* error) {
    sim::SpillMerge merge;
    if (!merge.open(paths, error)) return false;
    std::string buf = chrome_trace_header(meta);
    sim::TraceRecord r;
    while (merge.next(r)) {
        append_chrome_record(buf, r);
        if (buf.size() >= kFlushBytes) {
            os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
            buf.clear();
        }
    }
    buf += chrome_trace_footer(meta);
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (!os) return fail(error, "write failed while streaming chrome export");
    return true;
}

bool spill_collect(const std::vector<std::string>& paths,
                   const std::function<bool(const sim::TraceRecord&)>& keep,
                   std::vector<sim::TraceRecord>& out, std::string* error) {
    sim::SpillMerge merge;
    if (!merge.open(paths, error)) return false;
    sim::TraceRecord r;
    while (merge.next(r))
        if (keep(r)) out.push_back(r);
    return true;
}

bool spill_critical_path(const std::vector<std::string>& paths,
                         const CriticalPathConfig& config, CriticalPathReport& out,
                         std::string* error, std::size_t* peak_memory_bytes) {
    sim::SpillMerge merge;
    if (!merge.open(paths, error)) return false;
    CriticalPathBuilder builder(config);
    std::size_t peak = builder.memory_bytes();
    sim::TraceRecord r;
    while (merge.next(r)) {
        builder.add(r);
        peak = std::max(peak, builder.memory_bytes());
    }
    out = builder.finish();
    if (peak_memory_bytes != nullptr) *peak_memory_bytes = peak;
    return true;
}

bool spill_chain_records(const std::vector<std::string>& paths, const LineageIndex& index,
                         std::uint64_t terminal, std::vector<sim::TraceRecord>& out,
                         std::string* error) {
    std::vector<std::uint64_t> chain = index.ancestry(terminal);
    std::sort(chain.begin(), chain.end());
    return spill_collect(
        paths,
        [&chain](const sim::TraceRecord& r) {
            return std::binary_search(chain.begin(), chain.end(), r.lineage);
        },
        out, error);
}

bool spill_summarize(const std::vector<std::string>& paths, SpillSummary& out,
                     std::string* error) {
    sim::SpillMerge merge;
    if (!merge.open(paths, error)) return false;
    out = SpillSummary{};
    out.stats = merge.totals();
    out.files = merge.file_count();
    out.truncated = merge.truncated();
    sim::TraceRecord r;
    while (merge.next(r)) {
        if (out.records == 0) out.first_at = r.at;
        out.last_at = r.at;
        ++out.records;
        out.counts[static_cast<std::size_t>(r.kind)] += 1;
    }
    return true;
}

bool LineageIndex::build(const std::vector<std::string>& paths, std::string* error) {
    pairs_.clear();
    sim::SpillMerge merge;
    if (!merge.open(paths, error)) return false;
    sim::TraceRecord r;
    while (merge.next(r)) {
        if (r.kind != sim::TraceKind::kSend) continue;
        pairs_.emplace_back(r.lineage, r.b);
    }
    // First kSend in merge order wins — the relation lineage_ancestry
    // walks. stable_sort keeps the stream order within equal lineages.
    std::stable_sort(pairs_.begin(), pairs_.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    pairs_.erase(std::unique(pairs_.begin(), pairs_.end(),
                             [](const auto& a, const auto& b) { return a.first == b.first; }),
                 pairs_.end());
    return true;
}

bool LineageIndex::save(const std::string& path, std::string* error) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return fail(error, "cannot create lineage index " + path);
    std::string buf;
    buf.append(kIndexMagic, sizeof(kIndexMagic));
    put_u64(buf, pairs_.size());
    for (const auto& [lineage, parent] : pairs_) {
        put_u64(buf, lineage);
        put_u64(buf, parent);
    }
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    return out ? true : fail(error, "write failed for lineage index " + path);
}

bool LineageIndex::load(const std::string& path, std::string* error) {
    pairs_.clear();
    std::ifstream in(path, std::ios::binary);
    if (!in) return fail(error, "cannot open lineage index " + path);
    unsigned char header[sizeof(kIndexMagic) + 8];
    if (!in.read(reinterpret_cast<char*>(header), sizeof(header)))
        return fail(error, path + ": not a lineage index (short header)");
    if (std::memcmp(header, kIndexMagic, sizeof(kIndexMagic)) != 0)
        return fail(error, path + ": not a lineage index (bad magic)");
    const std::uint64_t count = get_u64(header + sizeof(kIndexMagic));
    pairs_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        unsigned char entry[16];
        if (!in.read(reinterpret_cast<char*>(entry), sizeof(entry)))
            return fail(error, path + ": truncated lineage index");
        pairs_.emplace_back(get_u64(entry), get_u64(entry + 8));
    }
    return true;
}

std::uint64_t LineageIndex::parent_of(std::uint64_t lineage) const {
    auto it = std::lower_bound(pairs_.begin(), pairs_.end(), lineage,
                               [](const auto& p, std::uint64_t l) { return p.first < l; });
    return it != pairs_.end() && it->first == lineage ? it->second : 0;
}

std::vector<std::uint64_t> LineageIndex::ancestry(std::uint64_t lineage) const {
    std::vector<std::uint64_t> chain;
    std::uint64_t cur = lineage;
    while (cur != 0) {
        // Cycle guard: real ids cannot cycle, a corrupt file must not
        // hang us. A chain longer than the index has entries must have
        // revisited one — O(1) per step, so million-deep chains (the
        // ring election at scale) stay linear.
        if (chain.size() > pairs_.size()) break;
        chain.push_back(cur);
        cur = parent_of(cur);
    }
    std::reverse(chain.begin(), chain.end());
    return chain;
}

std::string lineage_index_path(const std::string& spill_path) {
    std::error_code ec;
    if (std::filesystem::is_directory(spill_path, ec))
        return (std::filesystem::path(spill_path) / "lineage.fnlidx").string();
    return spill_path + ".fnlidx";
}

}  // namespace fastnet::obs
