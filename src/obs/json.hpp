// Minimal JSON building blocks for the observability exporters.
//
// Two halves. Writing: escape helpers that make any string safe inside a
// JSON string literal (quotes, backslashes and control characters — the
// bench reporter and the trace exporters share them). Reading: a small
// strict recursive-descent parser used by the trace loaders and the
// `fastnet_trace --check` validator. The parser keeps non-negative
// integers as exact std::uint64_t (trace timestamps, lineage ids and
// packet ids do not survive a double round-trip), preserves object key
// order, and rejects anything outside RFC 8259 (trailing commas,
// comments, unquoted keys, NaN...). No external dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fastnet::obs {

/// Appends `s` escaped for inclusion inside a JSON string literal:
/// `"` and `\` get a backslash, control characters become \n, \t, \r,
/// \b, \f or \u00XX.
void append_json_escaped(std::string& out, std::string_view s);

/// `s` as a complete JSON string literal, quotes included.
std::string json_quote(std::string_view s);

/// One parsed JSON value. A discriminated struct rather than a variant:
/// the trace schemas are shallow and the explicit accessors below keep
/// validation code readable.
struct JsonValue {
    enum class Type { kNull, kBool, kUInt, kInt, kDouble, kString, kArray, kObject };

    Type type = Type::kNull;
    bool boolean = false;
    std::uint64_t uint_value = 0;  ///< Exact value when type == kUInt.
    std::int64_t int_value = 0;    ///< Exact value when type == kInt (negative).
    double number = 0;             ///< Value when type == kDouble.
    std::string string;
    std::vector<JsonValue> array;
    /// Key order preserved as written (canonical exports rely on it).
    std::vector<std::pair<std::string, JsonValue>> object;

    bool is_uint() const { return type == Type::kUInt; }
    bool is_number() const {
        return type == Type::kUInt || type == Type::kInt || type == Type::kDouble;
    }
    bool is_string() const { return type == Type::kString; }
    bool is_array() const { return type == Type::kArray; }
    bool is_object() const { return type == Type::kObject; }

    /// Member lookup on an object; nullptr when absent or not an object.
    const JsonValue* find(std::string_view key) const;

    /// Numeric value as a double regardless of integer/double storage.
    double as_double() const;
};

/// Parses exactly one JSON document (leading/trailing whitespace
/// allowed, nothing else after the value). On failure returns false and,
/// when `error` is non-null, stores a message with a byte offset.
bool json_parse(std::string_view text, JsonValue& out, std::string* error = nullptr);

}  // namespace fastnet::obs
