// Theorem-bound auditing: the paper's predicted costs, checked against a
// concrete run's observed costs.
//
// Every algorithm in the repro ships with a provable bound — Theorem 2
// (branching-paths broadcast: <= 1 + floor(log2 n) time units and n
// system calls, vs flooding's O(m) calls), Theorem 3 (Omega(log n)
// one-way lower bound), Theorems 4-5 (election: <= 6n direct messages),
// Lemma 6 (phase-p captures <= n / 2^p). A BoundAudit *derives* those
// bounds for one run from its inputs (graph, plan, protocol choice,
// options) and compares them against the observed cost::Metrics totals,
// producing structured verdicts: bound, observed, slack, pass/violation.
//
// Audits serialize to deterministic JSON (audit_json) next to the
// metrics_json exports; tools/fastnet_report ingests them (load_audit)
// into the run report. The point is executable theorems: a regression
// that breaks a bound fails a test, not a reader's eyeball.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "cost/metrics.hpp"
#include "election/election.hpp"
#include "graph/graph.hpp"
#include "topo/broadcast_protocols.hpp"

namespace fastnet::obs {

/// One bound comparison. `slack` is how much room the run left: for
/// kAtMost `bound - observed`, for kAtLeast `observed - bound`, for
/// kExactly `-(|observed - bound|)` — in every case pass <=> slack >= 0.
struct BoundCheck {
    enum class Kind { kAtMost, kAtLeast, kExactly };

    std::string name;
    Kind kind = Kind::kAtMost;
    double bound = 0;
    double observed = 0;
    double slack = 0;
    bool pass = false;
};

const char* bound_check_kind_name(BoundCheck::Kind k);

class BoundAudit {
public:
    explicit BoundAudit(std::string name) : name_(std::move(name)) {}

    // ---- generic checks ----------------------------------------------
    void require_at_most(std::string check, double observed, double bound);
    void require_at_least(std::string check, double observed, double bound);
    void require_exactly(std::string check, double observed, double bound);

    // ---- derived theorem audits --------------------------------------
    /// Audits one broadcast run. Scheme-specific bounds are derived from
    /// the graph (n, m) and, for planned schemes, the shipped plan:
    /// coverage, Theorem 2 time units (only under the limiting model
    /// C == 0, P > 0 — time units are undefined otherwise) and system
    /// calls for branching paths, the O(m)-call bound for flooding, the
    /// n-1-call bounds for the single-token and unicast baselines.
    /// `plan` may be null (e.g. flooding has none).
    void broadcast(const graph::Graph& g, topo::BroadcastScheme scheme,
                   const topo::BroadcastPlan* plan, const topo::BroadcastOutcome& outcome,
                   const ModelParams& params);

    /// Audits one election run: unique leader, Theorem 5's 6n direct
    /// messages (plus n-1 when announcement is on), Lemma 6's per-phase
    /// capture counts.
    void election(const graph::Graph& g, const elect::ElectionOptions& options,
                  const elect::ElectionOutcome& outcome);

    /// Theorem 3 on the complete binary tree of `depth`: any one-way
    /// broadcast must observe strictly more time units than the
    /// adversary's certificate.
    void broadcast_lower_bound(unsigned depth, double observed_units);

    /// Per-phase system-call budget, read from the metrics' phase
    /// attribution (requires sampling — see Cluster::mark_phase).
    void phase_budget(const cost::Metrics& metrics, std::uint64_t phase,
                      std::uint64_t max_calls);

    /// Prices an observed critical path against a theorem bound:
    /// witness latency <= `bound_ticks` (e.g. Theorem 2's broadcast time
    /// in ticks, or the paris retry envelope), plus the engine's own
    /// conservation law — the per-segment attribution must sum exactly
    /// to the end-to-end latency (obs/critical_path.hpp maintains this
    /// by construction; the audit makes it an executable check).
    void critical_path(const cost::CriticalPathStats& stats, double bound_ticks);

    // ---- verdict ------------------------------------------------------
    const std::string& name() const { return name_; }
    const std::vector<BoundCheck>& checks() const { return checks_; }
    bool pass() const;
    std::size_t violation_count() const;

private:
    void push(std::string name, BoundCheck::Kind kind, double observed, double bound);

    std::string name_;
    std::vector<BoundCheck> checks_;
};

/// Deterministic JSON: `{"fastnet_audit": 1, "name": ..., "pass": ...,
/// "checks": [...]}` with shortest-round-trip doubles — byte-identical
/// for equal audits regardless of platform or thread count.
std::string audit_json(const BoundAudit& audit);

/// Parses an audit_json document back (fastnet_report's ingestion).
/// Slack and verdicts are recomputed from (kind, bound, observed), so a
/// hand-edited file cannot smuggle a passing verdict past the loader.
bool load_audit(std::string_view text, BoundAudit& out, std::string* error = nullptr);

}  // namespace fastnet::obs
