#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace fastnet::obs {

void append_json_escaped(std::string& out, std::string_view s) {
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
}

std::string json_quote(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    append_json_escaped(out, s);
    out.push_back('"');
    return out;
}

const JsonValue* JsonValue::find(std::string_view key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : object)
        if (k == key) return &v;
    return nullptr;
}

double JsonValue::as_double() const {
    switch (type) {
        case Type::kUInt: return static_cast<double>(uint_value);
        case Type::kInt: return static_cast<double>(int_value);
        case Type::kDouble: return number;
        default: return 0;
    }
}

namespace {

/// Strict recursive-descent parser over a string_view. Depth-limited so
/// malformed deeply-nested input cannot blow the stack.
class Parser {
public:
    Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

    bool parse_document(JsonValue& out) {
        skip_ws();
        if (!parse_value(out, 0)) return false;
        skip_ws();
        if (pos_ != text_.size()) return fail("trailing content after JSON value");
        return true;
    }

private:
    static constexpr int kMaxDepth = 64;

    bool fail(const char* msg) {
        if (error_) *error_ = std::string(msg) + " at byte " + std::to_string(pos_);
        return false;
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) return fail("invalid literal");
        pos_ += lit.size();
        return true;
    }

    bool parse_value(JsonValue& out, int depth) {
        if (depth > kMaxDepth) return fail("nesting too deep");
        if (pos_ >= text_.size()) return fail("unexpected end of input");
        switch (text_[pos_]) {
            case '{': return parse_object(out, depth);
            case '[': return parse_array(out, depth);
            case '"':
                out.type = JsonValue::Type::kString;
                return parse_string(out.string);
            case 't':
                out.type = JsonValue::Type::kBool;
                out.boolean = true;
                return consume_literal("true");
            case 'f':
                out.type = JsonValue::Type::kBool;
                out.boolean = false;
                return consume_literal("false");
            case 'n':
                out.type = JsonValue::Type::kNull;
                return consume_literal("null");
            default: return parse_number(out);
        }
    }

    bool parse_object(JsonValue& out, int depth) {
        out.type = JsonValue::Type::kObject;
        ++pos_;  // '{'
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parse_string(key)) return false;
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
            ++pos_;
            skip_ws();
            JsonValue value;
            if (!parse_value(value, depth + 1)) return false;
            out.object.emplace_back(std::move(key), std::move(value));
            skip_ws();
            if (pos_ >= text_.size()) return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool parse_array(JsonValue& out, int depth) {
        out.type = JsonValue::Type::kArray;
        ++pos_;  // '['
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skip_ws();
            JsonValue value;
            if (!parse_value(value, depth + 1)) return false;
            out.array.push_back(std::move(value));
            skip_ws();
            if (pos_ >= text_.size()) return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool parse_string(std::string& out) {
        ++pos_;  // '"'
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                ++pos_;
                continue;
            }
            if (pos_ + 1 >= text_.size()) return fail("dangling escape");
            const char esc = text_[pos_ + 1];
            pos_ += 2;
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'n': out.push_back('\n'); break;
                case 't': out.push_back('\t'); break;
                case 'r': out.push_back('\r'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_ + static_cast<std::size_t>(i)];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                        else return fail("invalid \\u escape");
                    }
                    pos_ += 4;
                    // UTF-8 encode the code point (BMP only; the exporters
                    // never emit surrogate pairs).
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(static_cast<char>(0xc0 | (code >> 6)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
                    } else {
                        out.push_back(static_cast<char>(0xe0 | (code >> 12)));
                        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
                    }
                    break;
                }
                default: return fail("invalid escape");
            }
        }
        return fail("unterminated string");
    }

    bool parse_number(JsonValue& out) {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
            return fail("invalid number");
        // Leading zeros are forbidden by RFC 8259.
        if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))
            return fail("leading zero in number");
        while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        bool integral = true;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            integral = false;
            ++pos_;
            if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                return fail("invalid fraction");
            while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
            if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                return fail("invalid exponent");
            while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        const std::string_view tok = text_.substr(start, pos_ - start);
        if (integral && tok[0] != '-') {
            std::uint64_t v = 0;
            const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), v);
            if (res.ec == std::errc() && res.ptr == tok.data() + tok.size()) {
                out.type = JsonValue::Type::kUInt;
                out.uint_value = v;
                return true;
            }
        } else if (integral) {
            std::int64_t v = 0;
            const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), v);
            if (res.ec == std::errc() && res.ptr == tok.data() + tok.size()) {
                out.type = JsonValue::Type::kInt;
                out.int_value = v;
                return true;
            }
        }
        double d = 0;
        const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), d);
        if (res.ec != std::errc() || res.ptr != tok.data() + tok.size())
            return fail("number out of range");
        out.type = JsonValue::Type::kDouble;
        out.number = d;
        return true;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string* error_;
};

}  // namespace

bool json_parse(std::string_view text, JsonValue& out, std::string* error) {
    out = JsonValue{};
    return Parser(text, error).parse_document(out);
}

}  // namespace fastnet::obs
