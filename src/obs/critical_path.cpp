#include "obs/critical_path.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace fastnet::obs {

namespace {

constexpr Tick kNoHop = -1;

/// Timer cookies carry their kind in the low nibble (paris convention).
bool is_retry_cookie(std::uint64_t cookie, unsigned retry_kind) {
    return retry_kind != 0 && (cookie & 0xF) == retry_kind;
}

}  // namespace

CriticalPathBuilder::CriticalPathBuilder(CriticalPathConfig config)
    : config_(config) {}

void CriticalPathBuilder::blame_add(std::uint64_t key, SegmentKind kind, Tick ticks) {
    if (ticks <= 0) return;
    auto* slot = blame_.find(key);
    if (slot == nullptr) {
        if (config_.blame_capacity != 0 && blame_.size() >= config_.blame_capacity) {
            ++report_.blame_evicted;
            return;
        }
        slot = &blame_[key];
    }
    (*slot)[static_cast<unsigned>(kind)] += ticks;
}

void CriticalPathBuilder::maybe_prune(Tick now) {
    if (config_.horizon <= 0) return;
    if (now - last_prune_ < config_.horizon) return;
    last_prune_ = now;
    const Tick cutoff = now - config_.horizon;
    // Collect, then erase: backward-shift deletion must not race the
    // raw-entry walk. The pruned *set* is a pure function of the record
    // stream, so counters stay deterministic.
    std::vector<std::uint64_t> stale;
    for (const auto& e : live_.raw_entries())
        if (e.occupied && e.value.last_seen < cutoff) stale.push_back(e.key);
    for (const std::uint64_t k : stale) live_.erase(k);
    report_.live_pruned += stale.size();
    stale.clear();
    for (const auto& e : hop_ctx_.raw_entries())
        if (e.occupied && e.value < cutoff) stale.push_back(e.key);
    for (const std::uint64_t k : stale) hop_ctx_.erase(k);
    report_.hop_ctx_evicted += stale.size();
}

void CriticalPathBuilder::extend(ChainCtx& ctx, Tick at, Tick busy, Tick c,
                                 bool is_delivery, SegmentKind wait_kind,
                                 std::uint64_t lineage) {
    Tick hop_at = kNoHop;
    if (is_delivery) {
        if (Tick* h = hop_ctx_.find(lineage)) {
            hop_at = *h;
            hop_ctx_.erase(lineage);
        }
    }
    const Tick E = ctx.end;
    if (at < E) {  // cannot extend backward; keep the invariant, count it
        ++report_.clamped;
        return;
    }
    Tick anchor = c;
    if (anchor < E) {
        if (anchor != E) ++report_.clamped;
        anchor = E;
    }
    if (anchor > at) {
        ++report_.clamped;
        anchor = at;
    }
    Tick handler_start = at - busy;
    if (handler_start < anchor) {
        if (busy > at - anchor) ++report_.clamped;
        handler_start = anchor;
    }
    if (is_delivery) {
        // [E, anchor] is the send-side gap the records cannot explain
        // (A1 serialized sends): deterministically queueing.
        ctx.totals.add(SegmentKind::kQueueing, anchor - E);
        if (hop_at != kNoHop) {
            Tick h = std::clamp(hop_at, anchor, handler_start);
            if (h != hop_at) ++report_.clamped;
            ctx.totals.add(SegmentKind::kTransit, h - anchor);
            ctx.totals.add(SegmentKind::kQueueing, handler_start - h);
        } else {
            // No hop records (kind disabled): the whole pre-handler
            // span folds into transit.
            ctx.totals.add(SegmentKind::kTransit, handler_start - anchor);
        }
    } else {
        ctx.totals.add(wait_kind, handler_start - E);
    }
    ctx.totals.add(SegmentKind::kHandler, at - handler_start);
    ctx.end = at;
    ctx.depth += 1;
}

void CriticalPathBuilder::on_send(const sim::TraceRecord& r) {
    if (r.b == 0 || r.lineage == 0) return;  // root injection: stateless
    ChainCtx base;
    if (cur_valid_ && cur_at_ == r.at && cur_node_ == r.node && cur_lineage_ == r.b) {
        base = cur_ctx_;
    } else if (LiveEntry* p = live_.find(r.b)) {
        base.root = p->root;
        base.root_start = p->root_start;
        base.end = p->last_end;
        base.depth = p->last_depth;
        base.totals.ticks = p->last;
        p->last_seen = r.at;
    } else {
        ++report_.unanchored_sends;
        base.root = r.lineage;
        base.root_start = r.at;
        base.end = r.at;
    }
    if (base.end < r.at) {
        // Deferred send (A1 serialization or a lost context): the wait
        // between the parent's completion and this injection.
        base.totals.add(SegmentKind::kQueueing, r.at - base.end);
        base.end = r.at;
    } else if (base.end > r.at) {
        ++report_.clamped;
    }
    LiveEntry* slot = live_.find(r.lineage);
    if (slot == nullptr) {
        if (config_.max_live != 0 && live_.size() >= config_.max_live) {
            ++report_.live_skipped;
            return;
        }
        slot = &live_[r.lineage];
    }
    slot->root = base.root;
    slot->root_start = base.root_start;
    slot->prefix_end = base.end;
    slot->last_end = base.end;
    slot->last_seen = r.at;
    slot->prefix = base.totals.ticks;
    slot->last = base.totals.ticks;
    slot->prefix_depth = base.depth;
    slot->last_depth = base.depth;
}

void CriticalPathBuilder::on_hop(const sim::TraceRecord& r) {
    const Tick span = r.at - static_cast<Tick>(r.c);
    blame_add(kLinkBlameBit | r.a, SegmentKind::kTransit, span);
    if (r.lineage == 0) return;
    Tick* slot = hop_ctx_.find(r.lineage);
    if (slot == nullptr) {
        if (config_.hop_ctx_capacity != 0 && hop_ctx_.size() >= config_.hop_ctx_capacity) {
            ++report_.hop_ctx_evicted;
            return;
        }
        slot = &hop_ctx_[r.lineage];
    }
    *slot = r.at;
}

void CriticalPathBuilder::on_deliver(const sim::TraceRecord& r) {
    ++report_.deliveries;
    const Tick busy = static_cast<Tick>(r.b);
    const Tick sent = static_cast<Tick>(r.c);
    // Blame is chain-independent — priced from the record alone, so it
    // stays exact under pruning. The inbound span [sent, at - busy]
    // splits at the last hop when hop records are present.
    {
        const Tick handler_start = std::max(sent, r.at - busy);
        blame_add(r.node, SegmentKind::kHandler, r.at - handler_start);
        Tick h = handler_start;
        if (const Tick* hop = hop_ctx_.find(r.lineage))
            h = std::clamp(*hop, sent, handler_start);
        blame_add(r.node, SegmentKind::kTransit, h - sent);
        blame_add(r.node, SegmentKind::kQueueing, handler_start - h);
    }
    if (r.lineage == 0) return;
    ChainCtx ctx;
    LiveEntry* e = live_.find(r.lineage);
    if (e != nullptr) {
        ctx.root = e->root;
        ctx.root_start = e->root_start;
        ctx.end = e->prefix_end;
        ctx.depth = e->prefix_depth;
        ctx.totals.ticks = e->prefix;
    } else {
        // Root lineage (or a pruned child — live_pruned flags those):
        // the anchor makes the leg self-describing.
        ctx.root = r.lineage;
        ctx.root_start = sent;
        ctx.end = sent;
    }
    extend(ctx, r.at, busy, sent, /*is_delivery=*/true, SegmentKind::kQueueing,
           r.lineage);
    if (e != nullptr) {
        e->last = ctx.totals.ticks;
        e->last_end = ctx.end;
        e->last_depth = ctx.depth;
        e->last_seen = r.at;
    } else if (config_.anchor_root_deliveries) {
        if (config_.max_live != 0 && live_.size() >= config_.max_live) {
            ++report_.live_skipped;
        } else {
            LiveEntry& fresh = live_[r.lineage];
            fresh.root = ctx.root;
            fresh.root_start = ctx.root_start;
            fresh.prefix_end = ctx.root_start;
            fresh.last_end = ctx.end;
            fresh.last_seen = r.at;
            fresh.prefix = {};
            fresh.last = ctx.totals.ticks;
            fresh.prefix_depth = 0;
            fresh.last_depth = ctx.depth;
        }
    }
    cur_valid_ = true;
    cur_at_ = r.at;
    cur_node_ = r.node;
    cur_lineage_ = r.lineage;
    cur_ctx_ = ctx;
    if (!has_witness_ || r.at > witness_.end) {
        has_witness_ = true;
        witness_ = ctx;
        witness_terminal_ = r.lineage;
        witness_node_ = r.node;
    }
    if (config_.top > 0) {
        TreeEntry* t = trees_.find(ctx.root);
        if (t == nullptr) {
            if (config_.max_roots != 0 && trees_.size() >= config_.max_roots) {
                ++report_.roots_skipped;
            } else {
                t = &trees_[ctx.root];
                t->root_start = ctx.root_start;
            }
        }
        if (t != nullptr) {
            t->deliveries += 1;
            if (t->deliveries == 1 || r.at > t->last_end) {
                t->last_end = r.at;
                t->terminal = r.lineage;
                t->terminal_node = r.node;
                t->depth = ctx.depth;
                t->totals = ctx.totals.ticks;
            }
        }
    }
}

void CriticalPathBuilder::on_timer(const sim::TraceRecord& r) {
    ++report_.timer_fires;
    const Tick busy = static_cast<Tick>(r.b);
    const Tick armed = static_cast<Tick>(r.c);
    const SegmentKind wait = is_retry_cookie(r.a, config_.retry_cookie_kind)
                                 ? SegmentKind::kRetryBackoff
                                 : SegmentKind::kTimerWait;
    {
        const Tick handler_start = std::max(armed, r.at - busy);
        blame_add(r.node, SegmentKind::kHandler, r.at - handler_start);
        blame_add(r.node, wait, handler_start - armed);
    }
    if (r.lineage == 0) return;  // armed outside any handler: no chain
    ChainCtx ctx;
    LiveEntry* e = live_.find(r.lineage);
    if (e != nullptr) {
        ctx.root = e->root;
        ctx.root_start = e->root_start;
        ctx.end = e->last_end;
        ctx.depth = e->last_depth;
        ctx.totals.ticks = e->last;
    } else {
        ++report_.unanchored_timers;
        ctx.root = r.lineage;
        ctx.root_start = armed;
        ctx.end = armed;
    }
    extend(ctx, r.at, busy, armed, /*is_delivery=*/false, wait, r.lineage);
    if (e == nullptr) {
        if (config_.max_live != 0 && live_.size() >= config_.max_live) {
            ++report_.live_skipped;
            e = nullptr;
        } else {
            e = &live_[r.lineage];
            e->root = ctx.root;
            e->root_start = ctx.root_start;
            e->prefix_end = ctx.root_start;
            e->prefix = {};
            e->prefix_depth = 0;
        }
    }
    if (e != nullptr) {
        e->last = ctx.totals.ticks;
        e->last_end = ctx.end;
        e->last_depth = ctx.depth;
        e->last_seen = r.at;
    }
    cur_valid_ = true;
    cur_at_ = r.at;
    cur_node_ = r.node;
    cur_lineage_ = r.lineage;
    cur_ctx_ = ctx;
}

void CriticalPathBuilder::add(const sim::TraceRecord& r) {
    ++report_.records;
    maybe_prune(r.at);
    switch (r.kind) {
        case sim::TraceKind::kSend: on_send(r); break;
        case sim::TraceKind::kHop: on_hop(r); break;
        case sim::TraceKind::kDeliver: on_deliver(r); break;
        case sim::TraceKind::kTimer: on_timer(r); break;
        default: break;
    }
}

CriticalPathReport CriticalPathBuilder::finish() {
    if (finished_) return report_;
    finished_ = true;
    report_.computed = true;
    report_.has_witness = has_witness_;
    if (has_witness_) {
        PathSummary& w = report_.witness;
        w.root = witness_.root;
        w.root_start = witness_.root_start;
        w.end = witness_.end;
        w.terminal = witness_terminal_;
        w.terminal_node = witness_node_;
        w.depth = witness_.depth;
        w.totals = witness_.totals;
        if (const TreeEntry* t = trees_.find(witness_.root))
            w.deliveries = t->deliveries;
    }
    report_.roots_tracked = trees_.size();
    if (config_.top > 0) {
        std::vector<PathSummary> all;
        all.reserve(trees_.size());
        for (const auto& e : trees_.raw_entries()) {
            if (!e.occupied) continue;
            const TreeEntry& t = e.value;
            PathSummary p;
            p.root = e.key;
            p.root_start = t.root_start;
            p.end = t.last_end;
            p.terminal = t.terminal;
            p.terminal_node = static_cast<NodeId>(t.terminal_node);
            p.depth = t.depth;
            p.deliveries = t.deliveries;
            p.totals.ticks = t.totals;
            all.push_back(p);
        }
        std::sort(all.begin(), all.end(), [](const PathSummary& a, const PathSummary& b) {
            if (a.latency() != b.latency()) return a.latency() > b.latency();
            return a.root < b.root;
        });
        if (all.size() > config_.top) all.resize(config_.top);
        report_.top = std::move(all);
    }
    std::vector<BlameEntry> nodes, links;
    for (const auto& e : blame_.raw_entries()) {
        if (!e.occupied) continue;
        BlameEntry b;
        b.key = e.key;
        b.totals.ticks = e.value;
        ((e.key & kLinkBlameBit) != 0 ? links : nodes).push_back(b);
    }
    const auto by_total = [](const BlameEntry& a, const BlameEntry& b) {
        if (a.totals.total() != b.totals.total())
            return a.totals.total() > b.totals.total();
        return a.key < b.key;
    };
    std::sort(nodes.begin(), nodes.end(), by_total);
    std::sort(links.begin(), links.end(), by_total);
    report_.node_blame = std::move(nodes);
    report_.link_blame = std::move(links);
    return report_;
}

std::size_t CriticalPathBuilder::memory_bytes() const {
    return sizeof(*this) + live_.memory_bytes() + trees_.memory_bytes() +
           hop_ctx_.memory_bytes() + blame_.memory_bytes();
}

CriticalPathReport critical_path(std::span<const sim::TraceRecord> records,
                                 const CriticalPathConfig& config) {
    CriticalPathBuilder builder(config);
    for (const sim::TraceRecord& r : records) builder.add(r);
    return builder.finish();
}

// ---- pass 2: waterfall --------------------------------------------------

namespace {

/// Index of the last record before `from` (exclusive) matching `pred`,
/// or npos. Linear backward scan — chain_records is already the small
/// filtered set.
template <typename Pred>
std::size_t rfind_before(std::span<const sim::TraceRecord> rs, std::size_t from,
                         Pred pred) {
    for (std::size_t i = from; i-- > 0;)
        if (pred(rs[i])) return i;
    return static_cast<std::size_t>(-1);
}

}  // namespace

PathWaterfall path_waterfall(std::span<const sim::TraceRecord> chain_records,
                             const PathSummary& path,
                             const CriticalPathConfig& config) {
    constexpr auto npos = static_cast<std::size_t>(-1);
    PathWaterfall wf;
    wf.summary = path;
    // Terminal completion record.
    std::size_t cur = rfind_before(
        chain_records, chain_records.size(), [&](const sim::TraceRecord& r) {
            return r.kind == sim::TraceKind::kDeliver && r.lineage == path.terminal &&
                   r.node == path.terminal_node && r.at == path.end;
        });
    std::vector<PathSegment> rev;  // collected terminal-first
    const auto push = [&rev](SegmentKind kind, Tick start, Tick end, NodeId node,
                             std::uint64_t lineage) {
        if (end <= start) return;
        rev.push_back(PathSegment{kind, start, end, node, lineage});
    };
    while (cur != npos) {
        const sim::TraceRecord& r = chain_records[cur];
        const Tick busy = static_cast<Tick>(r.b);
        const Tick anchor = static_cast<Tick>(r.c);
        const Tick handler_start = std::max(anchor, r.at - busy);
        push(SegmentKind::kHandler, handler_start, r.at, r.node, r.lineage);
        if (r.kind == sim::TraceKind::kTimer) {
            push(is_retry_cookie(r.a, config.retry_cookie_kind)
                     ? SegmentKind::kRetryBackoff
                     : SegmentKind::kTimerWait,
                 anchor, handler_start, r.node, r.lineage);
            // The arming completion: same lineage, same node, at the
            // arming instant (the arming handler completed there).
            cur = rfind_before(chain_records, cur, [&](const sim::TraceRecord& p) {
                return (p.kind == sim::TraceKind::kDeliver ||
                        p.kind == sim::TraceKind::kTimer) &&
                       p.lineage == r.lineage && p.node == r.node && p.at <= anchor;
            });
            continue;
        }
        // Delivery leg: split [anchor, handler_start] at the last hop.
        const std::size_t hop =
            rfind_before(chain_records, cur, [&](const sim::TraceRecord& p) {
                return p.kind == sim::TraceKind::kHop && p.lineage == r.lineage &&
                       p.at >= anchor && p.at <= handler_start;
            });
        if (hop != npos) {
            const Tick h = chain_records[hop].at;
            push(SegmentKind::kQueueing, h, handler_start, r.node, r.lineage);
            push(SegmentKind::kTransit, anchor, h, r.node, r.lineage);
        } else {
            push(SegmentKind::kTransit, anchor, handler_start, r.node, r.lineage);
        }
        // The injection of this lineage, then its parent's completion.
        const std::size_t send =
            rfind_before(chain_records, cur, [&](const sim::TraceRecord& p) {
                return p.kind == sim::TraceKind::kSend && p.lineage == r.lineage;
            });
        if (send == npos) break;
        const sim::TraceRecord& s = chain_records[send];
        if (s.b == 0) {
            push(SegmentKind::kQueueing, path.root_start, s.at, s.node, r.lineage);
            break;
        }
        const std::size_t parent =
            rfind_before(chain_records, send + 1, [&](const sim::TraceRecord& p) {
                return (p.kind == sim::TraceKind::kDeliver ||
                        p.kind == sim::TraceKind::kTimer) &&
                       p.lineage == s.b && p.node == s.node && p.at <= s.at;
            });
        if (parent == npos) break;
        // A1 serialization gap between the parent's completion and the
        // deferred injection.
        push(SegmentKind::kQueueing, chain_records[parent].at, s.at, s.node, s.b);
        cur = parent;
    }
    std::reverse(rev.begin(), rev.end());
    if (config.max_path_segments != 0 && rev.size() > config.max_path_segments) {
        // Head/tail elision: keep the chain's start and finish, drop
        // the middle (totals in the summary stay exact).
        const std::size_t head = config.max_path_segments / 2;
        const std::size_t tail = config.max_path_segments - head;
        wf.elided = rev.size() - head - tail;
        std::vector<PathSegment> kept;
        kept.reserve(head + tail);
        kept.insert(kept.end(), rev.begin(), rev.begin() + static_cast<std::ptrdiff_t>(head));
        kept.insert(kept.end(), rev.end() - static_cast<std::ptrdiff_t>(tail), rev.end());
        rev = std::move(kept);
    }
    wf.segments = std::move(rev);
    return wf;
}

// ---- rendering ----------------------------------------------------------

namespace {

void append_totals(std::string& out, const SegmentTotals& t) {
    for (unsigned k = 0; k < kSegmentKindCount; ++k) {
        if (k != 0) out += " ";
        out += cost::path_segment_kind_name(static_cast<cost::PathSegmentKind>(k));
        out += "=";
        out += std::to_string(t.ticks[k]);
    }
}

void append_path_line(std::string& out, const PathSummary& p) {
    out += "latency=";
    out += std::to_string(p.latency());
    out += " root=";
    out += std::to_string(p.root);
    out += " span=[";
    out += std::to_string(p.root_start);
    out += ",";
    out += std::to_string(p.end);
    out += "] depth=";
    out += std::to_string(p.depth);
    out += " terminal=";
    out += std::to_string(p.terminal);
    out += "@";
    out += p.terminal_node == kNoNode ? std::string("-") : std::to_string(p.terminal_node);
    if (p.deliveries != 0) {
        out += " deliveries=";
        out += std::to_string(p.deliveries);
    }
    out += "\n    ";
    append_totals(out, p.totals);
    out += "\n";
}

constexpr std::size_t kBlameShown = 10;

void append_blame(std::string& out, const char* title,
                  const std::vector<BlameEntry>& blame) {
    out += title;
    if (blame.empty()) {
        out += " (none)\n";
        return;
    }
    out += "\n";
    const std::size_t shown = std::min(blame.size(), kBlameShown);
    for (std::size_t i = 0; i < shown; ++i) {
        const BlameEntry& b = blame[i];
        out += "  ";
        if ((b.key & kLinkBlameBit) != 0) {
            out += "edge ";
            out += std::to_string(b.key & ~kLinkBlameBit);
        } else {
            out += "node ";
            out += std::to_string(b.key);
        }
        out += ": total=";
        out += std::to_string(b.totals.total());
        out += " ";
        append_totals(out, b.totals);
        out += "\n";
    }
    if (blame.size() > shown) {
        out += "  ... ";
        out += std::to_string(blame.size() - shown);
        out += " more\n";
    }
}

}  // namespace

std::string format_critical_path(const CriticalPathReport& report) {
    std::string out;
    if (!report.has_witness) {
        out += "critical path: no deliveries in trace\n";
    } else {
        out += "critical path: ";
        append_path_line(out, report.witness);
    }
    if (!report.top.empty()) {
        out += "slowest paths:\n";
        for (std::size_t i = 0; i < report.top.size(); ++i) {
            out += "  ";
            out += std::to_string(i + 1);
            out += ". ";
            append_path_line(out, report.top[i]);
        }
    }
    append_blame(out, "node blame:", report.node_blame);
    append_blame(out, "link blame:", report.link_blame);
    out += "records=";
    out += std::to_string(report.records);
    out += " deliveries=";
    out += std::to_string(report.deliveries);
    out += " timer_fires=";
    out += std::to_string(report.timer_fires);
    out += " roots=";
    out += std::to_string(report.roots_tracked);
    out += "\nconfidence: unanchored_sends=";
    out += std::to_string(report.unanchored_sends);
    out += " unanchored_timers=";
    out += std::to_string(report.unanchored_timers);
    out += " clamped=";
    out += std::to_string(report.clamped);
    out += " pruned=";
    out += std::to_string(report.live_pruned);
    out += " skipped=";
    out += std::to_string(report.live_skipped + report.roots_skipped);
    out += " evicted=";
    out += std::to_string(report.hop_ctx_evicted + report.blame_evicted);
    out += "\n";
    return out;
}

std::string format_waterfall(const PathWaterfall& wf) {
    std::string out = "waterfall ";
    append_path_line(out, wf.summary);
    const Tick t0 = wf.summary.root_start;
    for (const PathSegment& s : wf.segments) {
        out += "  +";
        out += std::to_string(s.start - t0);
        out += " ..+";
        out += std::to_string(s.end - t0);
        out += " ";
        out += cost::path_segment_kind_name(s.kind);
        out += " (";
        out += std::to_string(s.end - s.start);
        out += ") lin=";
        out += std::to_string(s.lineage);
        out += " node=";
        out += s.node == kNoNode ? std::string("-") : std::to_string(s.node);
        out += "\n";
    }
    if (wf.elided != 0) {
        out += "  (";
        out += std::to_string(wf.elided);
        out += " middle segments elided; totals above are exact)\n";
    }
    return out;
}

void append_chrome_path_overlay(std::string& out, const PathWaterfall& wf) {
    constexpr int kPathPid = 3;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(kPathPid);
    out += ",\"args\":{\"name\":\"critical path\"}},\n";
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(kPathPid);
    out += ",\"tid\":0,\"args\":{\"name\":\"root ";
    out += std::to_string(wf.summary.root);
    out += "\"}},\n";
    for (const PathSegment& s : wf.segments) {
        out += "{\"name\":";
        out += json_quote(cost::path_segment_kind_name(s.kind));
        out += ",\"ph\":\"X\",\"pid\":";
        out += std::to_string(kPathPid);
        out += ",\"tid\":0,\"ts\":";
        out += std::to_string(s.start);
        out += ",\"dur\":";
        out += std::to_string(s.end - s.start);
        out += ",\"args\":{\"lin\":";
        out += std::to_string(s.lineage);
        out += "}},\n";
    }
}

cost::CriticalPathStats to_path_stats(const CriticalPathReport& report) {
    cost::CriticalPathStats stats;
    stats.computed = report.computed && report.has_witness;
    const auto fold = [](const PathSummary& p) {
        cost::CriticalPathStats::Path out;
        out.root = p.root;
        out.root_start = p.root_start;
        out.end = p.end;
        out.terminal = p.terminal;
        out.terminal_node = p.terminal_node;
        out.depth = p.depth;
        out.segments = p.totals.ticks;
        return out;
    };
    stats.witness = fold(report.witness);
    stats.top.reserve(report.top.size());
    for (const PathSummary& p : report.top) stats.top.push_back(fold(p));
    stats.deliveries = report.deliveries;
    stats.unanchored = report.unanchored_sends + report.unanchored_timers;
    stats.clamped = report.clamped;
    stats.pruned = report.live_pruned + report.live_skipped;
    return stats;
}

}  // namespace fastnet::obs
