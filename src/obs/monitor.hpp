// Live invariant monitors: event-time checks riding the simulation.
//
// A MonitorHub is a small registry the fabric (hw::Network), the NCU
// runtimes (node::NodeRuntime) and the Cluster feed with typed events as
// the simulation executes. Registered monitors check invariants *at the
// violating event* — lineage conservation, queue-depth ceilings,
// busy-window monotonicity, per-phase system-call budgets — so a broken
// run points at a packet and a tick instead of a diff at the end.
//
// Cost contract (guarded by bench/bench_obs_overhead.cpp alongside the
// disabled trace): an attached hub with no monitors costs one pointer
// test plus one empty() load per hook and performs no allocation on the
// steady-state hop path. Hooks are only compiled against `dispatch`,
// never against individual monitors, so the fabric stays ignorant of
// what is being checked.
//
// Violations are collected on the hub (bounded per monitor) and the
// *first* violation of each monitor is recorded into the attached
// sim::Trace as a TraceKind::kViolation record carrying the offending
// event's time, node and lineage plus a human-readable detail — chaos
// exports then carry the verdict (see docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sim/trace.hpp"
#include "util/flat_map.hpp"

namespace fastnet::obs {

/// One typed observation delivered to the monitors. `a`/`b` are
/// kind-specific, mirroring the trace-record convention:
///
/// | kind      | node       | lineage | a                  | b              |
/// |-----------|------------|---------|--------------------|----------------|
/// | kSend     | sender     | yes     | header length      | parent lineage |
/// | kHop      | arrival    | yes     | edge               | hops so far    |
/// | kDeliver  | receiver   | yes     | hops travelled     | injection tick |
/// | kDrop     | where      | yes     | edge (kNoEdge off) | DropReason     |
/// | kDup      | sender side| yes     | edge               | new packet id  |
/// | kRetire   | —          | yes     | —                  | —              |
/// | kHandoff  | target     | yes     | edge               | —              |
/// | kEnqueue  | NCU        | —       | queue depth        | —              |
/// | kInvoke   | NCU        | maybe   | InvokeKind         | busy ticks     |
/// | kPhase    | kNoNode    | —       | phase id           | —              |
/// | kMemory   | node       | —       | bytes at this node | —              |
struct MonitorEvent {
    enum class Kind : std::uint8_t {
        kSend,     ///< Packet injected into the fabric.
        kHop,      ///< Packet traversed a link.
        kDeliver,  ///< Hardware copy handed to an NCU.
        kDrop,     ///< Packet died (any DropReason).
        kDup,      ///< Link-layer duplicate minted (a new live copy).
        kRetire,   ///< Packet cursor released (delivered, dropped or done).
        kHandoff,  ///< Parallel kernel: packet entered this shard's mirror
                   ///< from another shard (a new live copy *here*; the
                   ///< sender's mirror retired its cursor at the boundary).
        kEnqueue,  ///< Work item queued at an NCU.
        kInvoke,   ///< NCU handler completed.
        kPhase,    ///< Experiment phase marker.
        kMemory,   ///< Per-node footprint sample (Cluster::sample_memory).
        kTraceDrop,  ///< Trace ring overflowed: a = records dropped,
                     ///< b = detail strings dropped (node = kNoNode).
                     ///< Dispatched by the cluster before the end-of-run
                     ///< sweep so truncation is loud, never silent.
    };
    /// Work-item discriminator of a kInvoke event (`a`).
    enum class InvokeKind : std::uint8_t {
        kStart = 0, kRestart, kDelivery, kLink, kTimer,
    };

    Kind kind = Kind::kSend;
    Tick at = 0;
    NodeId node = kNoNode;
    std::uint64_t lineage = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

/// One invariant breach, anchored at the event that broke it.
struct Violation {
    std::string monitor;
    std::string message;
    Tick at = 0;
    NodeId node = kNoNode;
    std::uint64_t lineage = 0;
};

class MonitorHub;

/// Base class of one live invariant check. Monitors keep whatever state
/// they need across events and call MonitorHub::report when an event
/// (or the end-of-run sweep) breaks the invariant.
class Monitor {
public:
    virtual ~Monitor() = default;
    virtual const char* name() const = 0;
    virtual void on_event(MonitorHub& hub, const MonitorEvent& ev) = 0;
    /// End-of-run check, invoked by Cluster::run once the simulation is
    /// quiescent (conservation-style invariants close their books here).
    virtual void on_finish(MonitorHub& hub, Tick now);
};

/// The registry. Shared by the Cluster, the Network and every runtime of
/// one simulation (node::ClusterConfig::monitors); never shared across
/// concurrently running clusters — like sim::Trace it is single-run
/// state, which is what keeps parallel sweeps deterministic.
class MonitorHub {
public:
    /// Caps stored violations per monitor; further ones only count.
    static constexpr std::size_t kMaxStoredPerMonitor = 16;

    void add(std::unique_ptr<Monitor> m);

    /// True when at least one monitor is registered — the hot paths test
    /// this before building an event.
    bool active() const { return !monitors_.empty(); }
    std::size_t monitor_count() const { return monitors_.size(); }

    /// Violations (first kMaxStoredPerMonitor per monitor) land in the
    /// attached trace too; see class comment. May be null.
    void attach_trace(sim::Trace* trace) { trace_ = trace; }

    /// Fans one event out to every registered monitor.
    void dispatch(const MonitorEvent& ev);

    /// Runs every monitor's end-of-run check.
    void finish(Tick now);

    /// Called by monitors: files a violation of `monitor` anchored at
    /// (at, node, lineage). The first violation of each monitor is also
    /// recorded into the attached trace (kind kViolation, a = the
    /// monitor's registration index, detail = "name: message").
    void report(const Monitor& monitor, Tick at, NodeId node, std::uint64_t lineage,
                std::string message);

    const std::vector<Violation>& violations() const { return violations_; }
    /// Total breaches including those beyond the storage cap.
    std::uint64_t violation_count() const { return violation_count_; }
    bool ok() const { return violation_count_ == 0; }

private:
    struct Entry {
        std::unique_ptr<Monitor> monitor;
        std::uint64_t reported = 0;
    };
    std::vector<Entry> monitors_;
    std::vector<Violation> violations_;
    std::uint64_t violation_count_ = 0;
    sim::Trace* trace_ = nullptr;
};

// ---- built-in monitors ---------------------------------------------------

/// Lineage conservation: every live packet copy (send or duplicate) must
/// eventually retire — delivered-and-done, dropped, or lost to a link
/// epoch. A retire without a matching copy fires immediately; copies
/// still outstanding at quiescence fire in on_finish, naming the lowest
/// unbalanced lineage first.
class LineageConservationMonitor final : public Monitor {
public:
    const char* name() const override { return "lineage_conservation"; }
    void on_event(MonitorHub& hub, const MonitorEvent& ev) override;
    void on_finish(MonitorHub& hub, Tick now) override;

private:
    /// lineage -> live copies. Open-addressed (O(1) per event instead of
    /// a red-black walk); on_finish sorts the survivors so end-of-run
    /// reporting stays deterministic (lowest lineage first).
    util::FlatMap64<std::int64_t> live_;
    Tick last_at_ = 0;
};

/// NCU queue depth must stay at or below a ceiling (an NCU falling this
/// far behind means the software side lost the paper's P-bounded pace).
class QueueDepthMonitor final : public Monitor {
public:
    explicit QueueDepthMonitor(std::uint64_t ceiling) : ceiling_(ceiling) {}
    const char* name() const override { return "queue_depth"; }
    void on_event(MonitorHub& hub, const MonitorEvent& ev) override;

private:
    std::uint64_t ceiling_;
};

/// Busy-window monotonicity: per NCU, handler busy windows are serial —
/// each invocation's window [at - busy, at] must start at or after the
/// previous invocation's completion, and completions never go backwards
/// in simulated time.
class BusyWindowMonitor final : public Monitor {
public:
    const char* name() const override { return "busy_window"; }
    void on_event(MonitorHub& hub, const MonitorEvent& ev) override;

private:
    std::vector<Tick> last_end_;  ///< Per node, lazily sized; kNever = none.
    Tick last_global_ = 0;
};

/// Per-phase system-call budget: message deliveries completing while
/// experiment phase `phase` is current (Cluster::mark_phase) must not
/// exceed `max_calls` — the paper's per-phase call bounds as a live
/// check rather than a post-hoc audit.
class PhaseBudgetMonitor final : public Monitor {
public:
    PhaseBudgetMonitor(std::uint64_t phase, std::uint64_t max_calls)
        : phase_(phase), max_calls_(max_calls) {}
    const char* name() const override { return "phase_budget"; }
    void on_event(MonitorHub& hub, const MonitorEvent& ev) override;

private:
    std::uint64_t phase_;
    std::uint64_t max_calls_;
    std::uint64_t current_phase_ = 0;
    std::uint64_t calls_ = 0;
};

/// Per-direction link FIFO: packet arrivals on one link direction (the
/// pair (edge, arriving node) identifies a direction) must come in
/// non-decreasing time order — the fabric's FIFO promise, checked at the
/// kHop events it actually delivered. With `link_spacing > 0`, two
/// consecutive arrivals on the same direction must additionally be at
/// least that far apart (the finite-capacity discipline of
/// hw::NetworkConfig::link_spacing).
class LinkFifoMonitor final : public Monitor {
public:
    explicit LinkFifoMonitor(Tick link_spacing = 0) : spacing_(link_spacing) {}
    const char* name() const override { return "link_fifo"; }
    void on_event(MonitorHub& hub, const MonitorEvent& ev) override;

private:
    Tick spacing_;
    /// (edge << 32 | arriving node) -> last arrival tick. Open-addressed;
    /// never iterated, so probe order cannot leak into any report.
    util::FlatMap64<Tick> last_arrival_;
};

/// Per-node memory ceiling: fires when a node's sampled footprint
/// (runtime + protocol bytes, the `a` of a kMemory event) first crosses
/// `ceiling_bytes`, and re-arms once the node drops back under — so a
/// leak that grows across crash/restart epochs reports each excursion,
/// not every sample. Requires ClusterConfig::memory_sample_every > 0 to
/// see any events.
/// Shared memory-pressure signal. The MemoryBudgetMonitor raises a
/// node's flag while its sampled footprint exceeds the budget and clears
/// it once the node drops back under; consumers (the call agents'
/// admission control) poll their own node's flag. One byte per node, no
/// callback coupling — and deterministic, because producer and consumer
/// live inside the same simulation. Wire one board per case/cluster;
/// sharing a board across concurrently-running cases or shard mirrors
/// would break replay determinism.
class PressureBoard {
public:
    bool over(NodeId u) const { return u < over_.size() && over_[u] != 0; }
    void set(NodeId u, bool over) {
        if (u >= over_.size()) over_.resize(u + 1, 0);
        over_[u] = over ? 1 : 0;
    }

private:
    std::vector<std::uint8_t> over_;
};

class MemoryBudgetMonitor final : public Monitor {
public:
    explicit MemoryBudgetMonitor(std::uint64_t ceiling_bytes) : ceiling_(ceiling_bytes) {}
    const char* name() const override { return "memory_budget"; }
    void on_event(MonitorHub& hub, const MonitorEvent& ev) override;

    /// Mirrors each node's over/under state onto `board` (see
    /// PressureBoard) so protocols can shed load under memory pressure.
    void share_pressure(std::shared_ptr<PressureBoard> board) { board_ = std::move(board); }

private:
    std::uint64_t ceiling_;
    std::vector<std::uint8_t> over_;  ///< Per node, lazily sized.
    std::shared_ptr<PressureBoard> board_;
};

/// A1 serialized send: one NCU injects at most one packet per `min_gap`
/// ticks — the paper's assumption that the software side emits messages
/// serially at pace P. Pass the cluster's P when free_multisend is off;
/// 0 (e.g. under free multisend, ablation A1 relaxed) makes the check
/// vacuous but keeps the monitor accounting uniform. A node restart
/// resets its gap state — the NCU hardware was power-cycled.
class SerializedSendMonitor final : public Monitor {
public:
    explicit SerializedSendMonitor(Tick min_gap) : min_gap_(min_gap) {}
    const char* name() const override { return "serialized_send"; }
    void on_event(MonitorHub& hub, const MonitorEvent& ev) override;

private:
    Tick min_gap_;
    std::vector<Tick> last_send_;  ///< Per node, lazily sized; kNever = none.
};

/// Trace-ring overflow: fires when the cluster reports records lost to
/// ring overwrite (kTraceDrop) — the explicit alternative to silently
/// truncated traces. Runs with spill disabled rings; a spill-enabled
/// trace never drops records (sim/trace_spill.hpp), so this stays quiet
/// there. Fires once per run per counter kind.
class TraceOverflowMonitor final : public Monitor {
public:
    const char* name() const override { return "trace_overflow"; }
    void on_event(MonitorHub& hub, const MonitorEvent& ev) override;

private:
    bool reported_records_ = false;
    bool reported_details_ = false;
};

/// Live path-latency ceiling: fires when a delivery completes more than
/// `ceiling` ticks after its chain's *root* injection — the causal
/// path-latency SLO checked at event time instead of post-hoc by the
/// critical-path pass (obs/critical_path.hpp prices the same chains
/// exactly; this monitor is the cheap online tripwire). Root starts
/// propagate through kSend events (b = parent lineage); a delivery whose
/// chain was never seen falls back to its own injection tick (kDeliver
/// b), i.e. one-leg latency. Opt-in — not part of the standard set:
/// the per-lineage start ledger grows with live chains.
class LatencySloMonitor final : public Monitor {
public:
    explicit LatencySloMonitor(Tick ceiling) : ceiling_(ceiling) {}
    const char* name() const override { return "latency_slo"; }
    void on_event(MonitorHub& hub, const MonitorEvent& ev) override;

private:
    Tick ceiling_;
    util::FlatMap64<Tick> start_;  ///< lineage -> root injection tick.
};

/// Registers the always-applicable invariants: lineage conservation,
/// busy-window monotonicity and a queue-depth ceiling (default generous
/// enough for every workload in this repo; pass a tighter one to probe).
void add_standard_monitors(MonitorHub& hub, std::uint64_t queue_ceiling = 4096);

/// Tunables for the full standard-monitor set (the chaos harness wires
/// these from the cluster config so the hardware-discipline checks are
/// exact, not guessed).
struct StandardMonitorOptions {
    std::uint64_t queue_ceiling = 4096;
    Tick link_spacing = 0;  ///< hw::NetworkConfig::link_spacing (0 = FIFO only).
    Tick min_send_gap = 0;  ///< P when sends are serialized; 0 = vacuous.
};

/// Full set: the three always-applicable invariants plus the per-edge
/// FIFO and A1 serialized-send hardware-discipline checks.
void add_standard_monitors(MonitorHub& hub, const StandardMonitorOptions& options);

/// Deterministic JSON serialization of a hub's verdict (violation list +
/// totals), embeddable next to metrics_json exports.
std::string violations_json(const MonitorHub& hub, const std::string& name);

/// Same serialization over already-merged pieces — the parallel kernel
/// concatenates its per-shard hubs' violations (sorted by (at, node))
/// and serializes them with this overload. `monitor_count` is the count
/// per hub, matching what a sequential run would report.
std::string violations_json(std::size_t monitor_count, std::uint64_t violation_count,
                            const std::vector<Violation>& violations,
                            const std::string& name);

}  // namespace fastnet::obs
