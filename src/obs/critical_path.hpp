// Causal critical-path extraction: streaming latency attribution over a
// completed run's trace — "where did the time go?" answered from the
// records alone.
//
// ## The attribution model
//
// Every handler completion record carries a *causal anchor* `c`
// (sim::TraceArgs): a kDeliver's packet was injected at `c`, a kTimer
// was armed at `c`, a kHop's transmit started at `c`. Because a handler
// executes at the end of its busy window and its sends/timer-arms
// happen at that same instant, consecutive legs of a causal chain tile
// the interval [root injection, terminal completion] exactly:
//
//   root kSend at t0  ──transit──▶ last kHop ──queueing──▶ busy window
//   ──[handler completes at t1, child kSend at t1]──▶ ... ──▶ t_end
//
// Each leg decomposes into PathSegmentKind pieces (cost/metrics.hpp):
// queueing / transit / handler / timer-wait / retry-backoff. The
// builder maintains the invariant  sum(segments) == end - root_start
// *by construction*: every chain extension adds exactly (new_end -
// old_end) ticks across segments, with non-negative clamps counted in
// anomaly counters rather than silently skewing the sum. Gaps the
// records cannot explain (ablation A1's serialized sends, disabled
// record kinds) are deterministically classified: send-side gaps as
// queueing, timer-side gaps as timer-wait.
//
// ## Bounded memory
//
// One forward pass in merge order ((at, node_sort_key, shard, seq) —
// the SpillMerge / merged_trace contract). Chain state is keyed by
// lineage and created only at a *child* kSend (parent != 0): root
// injections and root deliveries are self-describing through `c`, so a
// million-node t=0 broadcast burst costs nothing. Entries age out via
// `horizon` (live_pruned counter) and are hard-capped by `max_live`;
// a delivery whose entry is gone re-anchors as a fresh root (loud
// counters flag the reduced confidence, the exact-sum invariant holds
// per reported path regardless). With `top == 0` the pass keeps only
// the global witness — O(1) chain state — which is how the 10^6-node
// election fits the bench_memory_scale 4 MiB budget
// (bench/bench_critical_path.cpp gates this).
//
// Everything is a pure function of the merged record stream, so output
// is byte-identical across shard x thread counts
// (scripts/critical_path_smoke.sh diffs exactly this).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cost/metrics.hpp"
#include "sim/trace.hpp"
#include "util/flat_map.hpp"

namespace fastnet::obs {

using SegmentKind = cost::PathSegmentKind;
inline constexpr unsigned kSegmentKindCount = cost::kPathSegmentKindCount;

/// Per-kind tick totals of one chain (or one blame bucket).
struct SegmentTotals {
    std::array<Tick, kSegmentKindCount> ticks{};

    Tick total() const {
        Tick s = 0;
        for (const Tick t : ticks) s += t;
        return s;
    }
    void add(SegmentKind k, Tick t) { ticks[static_cast<unsigned>(k)] += t; }
    Tick operator[](SegmentKind k) const { return ticks[static_cast<unsigned>(k)]; }
};

struct CriticalPathConfig {
    /// Slowest root chains to report (latency-descending). 0 = witness
    /// only, which needs no per-root aggregates — the bounded-memory
    /// mode the million-node bench runs in.
    std::size_t top = 8;
    /// Age (ticks since last touch) after which live chain entries are
    /// pruned. 0 = never prune. Must exceed the longest send->delivery
    /// leg for full-confidence attribution.
    Tick horizon = 0;
    /// Hard cap on live chain entries; further child sends go
    /// unanchored (counter). 0 = unbounded.
    std::size_t max_live = 0;
    /// Root aggregates tracked when top > 0; further roots are skipped
    /// (roots_skipped counter).
    std::size_t max_roots = 1 << 16;
    /// Last-hop contexts (queueing/transit split) kept concurrently.
    std::size_t hop_ctx_capacity = 1 << 12;
    /// Per-node + per-link blame buckets kept (first-seen wins,
    /// blame_evicted counts the rest).
    std::size_t blame_capacity = 1 << 12;
    /// Keep chain state for delivered *root* lineages too, so timers
    /// armed inside root handlers chain onto the delivery (paris call
    /// setup). Costs one live entry per delivered root — turn off for
    /// witness-only passes at extreme scale (the million-node bench
    /// traces no timers, so nothing is lost there).
    bool anchor_root_deliveries = true;
    /// Timer cookies whose low nibble equals this are classified
    /// kRetryBackoff instead of kTimerWait (paris::kCookieRetry == 5);
    /// 0 disables the reclassification.
    unsigned retry_cookie_kind = 5;
    /// Waterfall segment cap (head/tail elision; totals stay exact).
    std::size_t max_path_segments = 256;
};

/// One reported chain: root injection -> terminal handler completion.
struct PathSummary {
    std::uint64_t root = 0;
    Tick root_start = 0;
    Tick end = 0;
    std::uint64_t terminal = 0;      ///< Lineage of the terminal delivery.
    NodeId terminal_node = kNoNode;
    std::uint32_t depth = 0;         ///< Handler completions on the chain.
    std::uint64_t deliveries = 0;    ///< Deliveries attributed to this root
                                     ///< (0 when not tracked: witness at top=0).
    SegmentTotals totals;            ///< Sums exactly to latency().

    Tick latency() const { return end - root_start; }
};

/// Blame key: a node id, or kLinkBlameBit | edge id.
inline constexpr std::uint64_t kLinkBlameBit = 1ULL << 63;

struct BlameEntry {
    std::uint64_t key = 0;
    SegmentTotals totals;
};

struct CriticalPathReport {
    bool computed = false;
    bool has_witness = false;
    PathSummary witness;            ///< Chain ending at the last delivery.
    std::vector<PathSummary> top;   ///< Latency-descending, root ascending.
    std::vector<BlameEntry> node_blame;  ///< Total-descending, key ascending.
    std::vector<BlameEntry> link_blame;  ///< Total-descending, key ascending.

    // ---- pass bookkeeping (deterministic) -----------------------------
    std::uint64_t records = 0;
    std::uint64_t deliveries = 0;
    std::uint64_t timer_fires = 0;
    std::uint64_t roots_tracked = 0;   ///< Root aggregates seen (top > 0).
    // ---- confidence counters: nonzero means some attribution was
    // reconstructed without full chain context -------------------------
    std::uint64_t live_pruned = 0;     ///< Entries aged out by horizon.
    std::uint64_t live_skipped = 0;    ///< Entries refused by max_live.
    std::uint64_t roots_skipped = 0;   ///< Roots beyond max_roots.
    std::uint64_t hop_ctx_evicted = 0;
    std::uint64_t blame_evicted = 0;
    std::uint64_t unanchored_sends = 0;  ///< Child sends with no parent context.
    std::uint64_t unanchored_timers = 0; ///< Timer fires with no chain entry.
    std::uint64_t clamped = 0;           ///< Anchor/busy clamps applied.
};

/// Streaming builder: feed records in merge order, then finish().
class CriticalPathBuilder {
public:
    explicit CriticalPathBuilder(CriticalPathConfig config = {});

    void add(const sim::TraceRecord& r);
    CriticalPathReport finish();

    /// Resident footprint of the pass (capacity-based) — what the
    /// million-node bench gates against the 4 MiB budget.
    std::size_t memory_bytes() const;

    const CriticalPathConfig& config() const { return config_; }

private:
    /// Accumulated chain context: totals cover [root_start, end].
    struct ChainCtx {
        std::uint64_t root = 0;
        Tick root_start = 0;
        Tick end = 0;
        std::uint32_t depth = 0;
        SegmentTotals totals;
    };

    /// Live chain state of one lineage (FlatMap64 value; trivially
    /// copyable). `prefix` is the immutable chain snapshot at this
    /// lineage's send instant — every delivery of every copy prices
    /// against it. `last` is the chain after this lineage's most recent
    /// handler completion — what timers and A1-deferred child sends
    /// anchor to.
    struct LiveEntry {
        std::uint64_t root = 0;
        Tick root_start = 0;
        Tick prefix_end = 0;
        Tick last_end = 0;
        Tick last_seen = 0;
        std::array<Tick, kSegmentKindCount> prefix{};
        std::array<Tick, kSegmentKindCount> last{};
        std::uint32_t prefix_depth = 0;
        std::uint32_t last_depth = 0;
    };

    /// Per-root aggregate (top > 0 only).
    struct TreeEntry {
        Tick root_start = 0;
        Tick last_end = 0;
        std::uint64_t terminal = 0;
        std::uint32_t terminal_node = 0;
        std::uint32_t depth = 0;
        std::uint64_t deliveries = 0;
        std::array<Tick, kSegmentKindCount> totals{};
    };

    void on_send(const sim::TraceRecord& r);
    void on_hop(const sim::TraceRecord& r);
    void on_deliver(const sim::TraceRecord& r);
    void on_timer(const sim::TraceRecord& r);
    /// Extends `ctx` to a completion at `at` with busy window `busy` and
    /// anchor `c`; `wait_kind` classifies the pre-handler remainder
    /// (transit+queueing split for deliveries via the hop context).
    void extend(ChainCtx& ctx, Tick at, Tick busy, Tick c, bool is_delivery,
                SegmentKind wait_kind, std::uint64_t lineage);
    void blame_add(std::uint64_t key, SegmentKind kind, Tick ticks);
    void maybe_prune(Tick now);

    CriticalPathConfig config_;
    CriticalPathReport report_;

    util::FlatMap64<LiveEntry> live_;
    util::FlatMap64<TreeEntry> trees_;
    util::FlatMap64<Tick> hop_ctx_;      ///< lineage -> last kHop arrival.
    util::FlatMap64<std::array<Tick, kSegmentKindCount>> blame_;

    // Transient context of the completion record last processed: child
    // kSends at the same (at, node) with a matching parent lineage
    // anchor here (merge order guarantees completion-before-sends).
    bool cur_valid_ = false;
    Tick cur_at_ = 0;
    NodeId cur_node_ = kNoNode;
    std::uint64_t cur_lineage_ = 0;
    ChainCtx cur_ctx_;

    bool has_witness_ = false;
    ChainCtx witness_;
    std::uint64_t witness_terminal_ = 0;
    NodeId witness_node_ = kNoNode;

    Tick last_prune_ = 0;
    bool finished_ = false;
};

/// One-call helper over in-memory records (must be in merged order —
/// Trace::snapshot / ParallelCluster::merged_trace both are).
CriticalPathReport critical_path(std::span<const sim::TraceRecord> records,
                                 const CriticalPathConfig& config = {});

// ---- pass 2: exact leg-by-leg waterfall of one chain --------------------

/// One drawn segment of a chain waterfall, chronological.
struct PathSegment {
    SegmentKind kind = SegmentKind::kQueueing;
    Tick start = 0;
    Tick end = 0;
    NodeId node = kNoNode;       ///< NCU the leg ends at.
    std::uint64_t lineage = 0;   ///< Lineage of the leg being travelled.
};

struct PathWaterfall {
    PathSummary summary;
    std::vector<PathSegment> segments;  ///< Chronological; capped (elided).
    std::uint64_t elided = 0;           ///< Segments dropped by the cap.
};

/// Rebuilds the exact leg-by-leg waterfall of the chain ending at
/// `path.terminal` / `path.terminal_node` / `path.end` by walking the
/// chain's records backward (records: every record of the chain's
/// ancestry lineages, chronological — obs::causal_chain or a
/// LineageIndex-driven spill_collect provide exactly that).
PathWaterfall path_waterfall(std::span<const sim::TraceRecord> chain_records,
                             const PathSummary& path,
                             const CriticalPathConfig& config = {});

// ---- rendering ----------------------------------------------------------

/// Deterministic text report (the `fastnet_trace --critical-path` body).
std::string format_critical_path(const CriticalPathReport& report);

/// Deterministic text waterfall (the `--waterfall` addition).
std::string format_waterfall(const PathWaterfall& wf);

/// Appends the waterfall's segments as Chrome trace-event complete
/// events under their own process (pid 3, "critical path") — the flame
/// overlay merged before chrome_trace_footer.
void append_chrome_path_overlay(std::string& out, const PathWaterfall& wf);

/// Folds a report into the metrics-ledger form ("critical_path" JSON
/// section; see cost::CriticalPathStats).
cost::CriticalPathStats to_path_stats(const CriticalPathReport& report);

}  // namespace fastnet::obs
