#include "obs/audit.hpp"

#include <cmath>
#include <cstdlib>

#include "common/expect.hpp"
#include "exec/result.hpp"
#include "obs/json.hpp"
#include "topo/lower_bound.hpp"

namespace fastnet::obs {

const char* bound_check_kind_name(BoundCheck::Kind k) {
    switch (k) {
        case BoundCheck::Kind::kAtMost: return "at_most";
        case BoundCheck::Kind::kAtLeast: return "at_least";
        case BoundCheck::Kind::kExactly: return "exactly";
    }
    return "?";
}

namespace {

bool kind_from_name(std::string_view name, BoundCheck::Kind& out) {
    if (name == "at_most") {
        out = BoundCheck::Kind::kAtMost;
        return true;
    }
    if (name == "at_least") {
        out = BoundCheck::Kind::kAtLeast;
        return true;
    }
    if (name == "exactly") {
        out = BoundCheck::Kind::kExactly;
        return true;
    }
    return false;
}

}  // namespace

void BoundAudit::push(std::string name, BoundCheck::Kind kind, double observed, double bound) {
    BoundCheck c;
    c.name = std::move(name);
    c.kind = kind;
    c.bound = bound;
    c.observed = observed;
    switch (kind) {
        case BoundCheck::Kind::kAtMost: c.slack = bound - observed; break;
        case BoundCheck::Kind::kAtLeast: c.slack = observed - bound; break;
        case BoundCheck::Kind::kExactly: c.slack = -std::abs(observed - bound); break;
    }
    c.pass = c.slack >= 0;
    checks_.push_back(std::move(c));
}

void BoundAudit::require_at_most(std::string check, double observed, double bound) {
    push(std::move(check), BoundCheck::Kind::kAtMost, observed, bound);
}

void BoundAudit::require_at_least(std::string check, double observed, double bound) {
    push(std::move(check), BoundCheck::Kind::kAtLeast, observed, bound);
}

void BoundAudit::require_exactly(std::string check, double observed, double bound) {
    push(std::move(check), BoundCheck::Kind::kExactly, observed, bound);
}

bool BoundAudit::pass() const {
    for (const BoundCheck& c : checks_)
        if (!c.pass) return false;
    return true;
}

std::size_t BoundAudit::violation_count() const {
    std::size_t n = 0;
    for (const BoundCheck& c : checks_)
        if (!c.pass) ++n;
    return n;
}

void BoundAudit::broadcast(const graph::Graph& g, topo::BroadcastScheme scheme,
                           const topo::BroadcastPlan* plan,
                           const topo::BroadcastOutcome& outcome, const ModelParams& params) {
    const std::uint64_t n = g.node_count();
    const std::uint64_t m = g.edge_count();
    std::uint64_t reached = 0;
    for (bool r : outcome.received) reached += r ? 1 : 0;
    const std::string prefix = topo::scheme_name(scheme);

    require_at_least(prefix + "/coverage_nodes", static_cast<double>(reached),
                     static_cast<double>(n));
    // Time units are the paper's broadcast time measure only in the
    // limiting model (C = 0, P > 0) — elsewhere `elapsed` mixes budgets.
    const bool limiting = params.hop_delay == 0 && params.ncu_delay > 0;

    switch (scheme) {
        case topo::BroadcastScheme::kBranchingPaths: {
            if (limiting) {
                require_at_most(prefix + "/theorem2_time_units", outcome.time_units,
                                static_cast<double>(topo::theorem2_time_bound(n)));
            }
            require_at_most(prefix + "/theorem2_system_calls",
                            static_cast<double>(outcome.cost.system_calls),
                            static_cast<double>(topo::theorem2_call_bound(n)));
            // Decomposition paths partition the tree's n-1 edges, so the
            // hardware cost is bounded by the tree size too.
            require_at_most(prefix + "/tree_hops", static_cast<double>(outcome.cost.hops),
                            static_cast<double>(n >= 1 ? n - 1 : 0));
            if (plan != nullptr) {
                require_at_most(prefix + "/plan_time_units",
                                static_cast<double>(plan->time_units),
                                static_cast<double>(topo::theorem2_time_bound(n)));
                require_at_least(prefix + "/plan_coverage",
                                 static_cast<double>(plan->covered_nodes),
                                 static_cast<double>(n));
            }
            break;
        }
        case topo::BroadcastScheme::kFlooding:
            // The O(m) contrast: every edge carries at most one flood
            // message per direction.
            require_at_most(prefix + "/flooding_system_calls",
                            static_cast<double>(outcome.cost.system_calls),
                            static_cast<double>(topo::flooding_call_bound(m)));
            break;
        case topo::BroadcastScheme::kDfsToken:
        case topo::BroadcastScheme::kLayeredBfs:
            // One token, one copy at the first visit of each non-root.
            require_at_most(prefix + "/token_system_calls",
                            static_cast<double>(outcome.cost.system_calls),
                            static_cast<double>(n >= 1 ? n - 1 : 0));
            break;
        case topo::BroadcastScheme::kDirectUnicast:
            require_at_most(prefix + "/unicast_system_calls",
                            static_cast<double>(outcome.cost.system_calls),
                            static_cast<double>(n >= 1 ? n - 1 : 0));
            break;
    }
}

void BoundAudit::election(const graph::Graph& g, const elect::ElectionOptions& options,
                          const elect::ElectionOutcome& outcome) {
    const std::uint64_t n = g.node_count();
    require_exactly("election/unique_leader", outcome.unique_leader ? 1 : 0, 1);
    require_at_most("election/theorem5_election_messages",
                    static_cast<double>(outcome.election_messages),
                    static_cast<double>(elect::theorem5_call_bound(n)));
    if (options.announce) {
        require_exactly("election/all_decided", outcome.all_decided ? 1 : 0, 1);
        require_at_most("election/total_direct_messages",
                        static_cast<double>(outcome.cost.direct_messages),
                        static_cast<double>(elect::theorem5_call_bound(n) +
                                            elect::announce_call_bound(n)));
    }
    for (std::size_t p = 0; p < outcome.captures_by_phase.size(); ++p) {
        require_at_most("election/lemma6_captures_phase_" + std::to_string(p),
                        static_cast<double>(outcome.captures_by_phase[p]),
                        static_cast<double>(
                            elect::lemma6_capture_bound(n, static_cast<unsigned>(p))));
    }
}

void BoundAudit::broadcast_lower_bound(unsigned depth, double observed_units) {
    // The adversary certifies uninformed nodes through time lb, so any
    // one-way broadcast needs strictly more: observed >= lb + 1.
    const unsigned lb = topo::one_way_lower_bound(depth);
    require_at_least("theorem3/one_way_time_units_depth_" + std::to_string(depth),
                     observed_units, static_cast<double>(lb) + 1);
}

void BoundAudit::phase_budget(const cost::Metrics& metrics, std::uint64_t phase,
                              std::uint64_t max_calls) {
    const cost::Sampling* s = metrics.sampling();
    FASTNET_EXPECTS_MSG(s != nullptr, "phase_budget needs metrics sampling enabled");
    std::uint64_t calls = 0;
    for (const auto& [p, count] : s->phase_calls())
        if (p == phase) calls += count;
    require_at_most("phase_" + std::to_string(phase) + "/system_calls",
                    static_cast<double>(calls), static_cast<double>(max_calls));
}

void BoundAudit::critical_path(const cost::CriticalPathStats& stats, double bound_ticks) {
    FASTNET_EXPECTS_MSG(stats.computed, "critical_path audit needs computed stats");
    const cost::CriticalPathStats::Path& w = stats.witness;
    require_at_most("critical_path/latency", static_cast<double>(w.latency()),
                    bound_ticks);
    // The engine's conservation law as an executable check: attribution
    // that does not tile the interval is a bug, not a rounding artifact.
    require_exactly("critical_path/segment_sum", static_cast<double>(w.segment_sum()),
                    static_cast<double>(w.latency()));
}

std::string audit_json(const BoundAudit& audit) {
    std::string out = "{\n";
    out += "  \"fastnet_audit\": 1,\n";
    out += "  \"name\": ";
    out += json_quote(audit.name());
    out += ",\n";
    out += "  \"pass\": ";
    out += audit.pass() ? "true" : "false";
    out += ",\n";
    out += "  \"violations\": " + std::to_string(audit.violation_count()) + ",\n";
    out += "  \"checks\": [";
    bool first = true;
    for (const BoundCheck& c : audit.checks()) {
        if (!first) out += ',';
        first = false;
        out += "\n    {\"name\": ";
        out += json_quote(c.name);
        out += ", \"kind\": \"";
        out += bound_check_kind_name(c.kind);
        out += "\", \"bound\": ";
        out += exec::format_double(c.bound);
        out += ", \"observed\": ";
        out += exec::format_double(c.observed);
        out += ", \"slack\": ";
        out += exec::format_double(c.slack);
        out += ", \"pass\": ";
        out += c.pass ? "true" : "false";
        out += '}';
    }
    if (!first) out += "\n  ";
    out += "]\n}\n";
    return out;
}

bool load_audit(std::string_view text, BoundAudit& out, std::string* error) {
    auto fail = [&](const char* msg) {
        if (error != nullptr) *error = msg;
        return false;
    };
    JsonValue doc;
    if (!json_parse(text, doc, error)) return false;
    if (!doc.is_object()) return fail("audit: not an object");
    const JsonValue* magic = doc.find("fastnet_audit");
    if (magic == nullptr || !magic->is_uint() || magic->uint_value != 1)
        return fail("audit: missing fastnet_audit: 1 marker");
    const JsonValue* name = doc.find("name");
    if (name == nullptr || !name->is_string()) return fail("audit: missing name");
    const JsonValue* checks = doc.find("checks");
    if (checks == nullptr || !checks->is_array()) return fail("audit: missing checks array");

    BoundAudit loaded(name->string);
    for (const JsonValue& c : checks->array) {
        if (!c.is_object()) return fail("audit: check is not an object");
        const JsonValue* cname = c.find("name");
        const JsonValue* ckind = c.find("kind");
        const JsonValue* cbound = c.find("bound");
        const JsonValue* cobs = c.find("observed");
        if (cname == nullptr || !cname->is_string() || ckind == nullptr ||
            !ckind->is_string() || cbound == nullptr || !cbound->is_number() ||
            cobs == nullptr || !cobs->is_number())
            return fail("audit: check missing name/kind/bound/observed");
        BoundCheck::Kind kind;
        if (!kind_from_name(ckind->string, kind)) return fail("audit: unknown check kind");
        switch (kind) {
            case BoundCheck::Kind::kAtMost:
                loaded.require_at_most(cname->string, cobs->as_double(), cbound->as_double());
                break;
            case BoundCheck::Kind::kAtLeast:
                loaded.require_at_least(cname->string, cobs->as_double(), cbound->as_double());
                break;
            case BoundCheck::Kind::kExactly:
                loaded.require_exactly(cname->string, cobs->as_double(), cbound->as_double());
                break;
        }
    }
    out = std::move(loaded);
    return true;
}

}  // namespace fastnet::obs
