#include "obs/metrics_export.hpp"

#include "exec/result.hpp"
#include "obs/json.hpp"

namespace fastnet::obs {

// NOTE: the serialization below deliberately appends literals and
// numbers as separate += statements (never `"lit" + std::to_string(x)`):
// GCC 12 mis-fires -Wrestrict on the temporary-concatenation form.
namespace {

void append_kv(std::string& out, const char* key, std::uint64_t v) {
    out += key;
    out += std::to_string(v);
}

void append_series(std::string& out, const char* key, const cost::TimeSeries& s) {
    out += "\"";
    out += key;
    out += "\":{";
    append_kv(out, "\"window\":", static_cast<std::uint64_t>(s.window()));
    append_kv(out, ",\"overflow\":", s.overflow());
    out += ",\"windows\":[";
    const auto& ws = s.windows();
    for (std::size_t i = 0; i < ws.size(); ++i) {
        if (i != 0) out += ",";
        out += "[";
        out += exec::format_double(ws[i].sum);
        out += ",";
        out += exec::format_double(ws[i].max);
        out += ",";
        out += std::to_string(ws[i].count);
        out += "]";
    }
    out += "]}";
}

void append_histogram(std::string& out, const char* key, const cost::LogHistogram& h) {
    out += "\"";
    out += key;
    out += "\":{";
    append_kv(out, "\"count\":", h.count());
    append_kv(out, ",\"sum\":", h.sum());
    append_kv(out, ",\"min\":", h.min());
    append_kv(out, ",\"max\":", h.max());
    append_kv(out, ",\"p50\":", h.quantile_bound(0.5));
    append_kv(out, ",\"p99\":", h.quantile_bound(0.99));
    out += ",\"buckets\":[";
    const unsigned top = h.highest_bucket();
    for (unsigned b = 0; b <= top; ++b) {
        if (b != 0) out += ",";
        out += std::to_string(h.bucket(b));
    }
    out += "]}";
}

}  // namespace

std::string metrics_json(const cost::Metrics& metrics, const std::string& name) {
    std::string out;
    out += "{\n\"fastnet_metrics\": 1,\n\"name\": ";
    out += json_quote(name);
    append_kv(out, ",\n\"nodes\": ", metrics.node_count());
    append_kv(out, ",\n\"system_calls\": ", metrics.total_message_system_calls());
    append_kv(out, ",\n\"invocations\": ", metrics.total_invocations());
    append_kv(out, ",\n\"direct_messages\": ", metrics.total_direct_messages());
    append_kv(out, ",\n\"hops\": ", metrics.net().hops);
    if (const cost::CallStats& c = metrics.calls(); c.any()) {
        out += ",\n\"calls\": {";
        append_kv(out, "\"offered\": ", c.offered);
        append_kv(out, ",\"shed\": ", c.shed);
        append_kv(out, ",\"placed\": ", c.placed);
        append_kv(out, ",\"accepted\": ", c.accepted);
        append_kv(out, ",\"blocked\": ", c.blocked);
        append_kv(out, ",\"completed\": ", c.completed);
        append_kv(out, ",\"failed\": ", c.failed);
        append_kv(out, ",\"timeouts\": ", c.timeouts);
        append_kv(out, ",\"retries\": ", c.retries);
        append_kv(out, ",\"reaped\": ", c.reaped);
        out += ",\"blocking\": ";
        out += exec::format_double(c.blocking_probability());
        out += ",";
        append_histogram(out, "setup_latency", c.setup_latency);
        out += ",";
        append_histogram(out, "retries_per_call", c.retries_per_call);
        out += "}";
    } else {
        out += ",\n\"calls\": null";
    }
    if (const cost::MemorySample* mem = metrics.memory()) {
        out += ",\n\"memory\": {";
        append_kv(out, "\"at\": ", static_cast<std::uint64_t>(mem->at));
        append_kv(out, ",\"samples\": ", metrics.memory_samples());
        append_kv(out, ",\"graph\": ", mem->breakdown.graph);
        append_kv(out, ",\"network\": ", mem->breakdown.network);
        append_kv(out, ",\"runtimes\": ", mem->breakdown.runtimes);
        append_kv(out, ",\"protocols\": ", mem->breakdown.protocols);
        append_kv(out, ",\"arena_used\": ", mem->breakdown.arena_used);
        append_kv(out, ",\"arena_reserved\": ", mem->breakdown.arena_reserved);
        append_kv(out, ",\"trace\": ", mem->breakdown.trace);
        append_kv(out, ",\"total\": ", mem->breakdown.total());
        append_kv(out, ",\"max_node_bytes\": ", mem->max_node_bytes);
        out += ",\"max_node\": ";
        out += mem->max_node == kNoNode ? std::string("null")
                                        : std::to_string(mem->max_node);
        append_kv(out, ",\"peak_node_bytes\": ", metrics.peak_node_bytes());
        out += "}";
    } else {
        out += ",\n\"memory\": null";
    }
    if (const cost::TraceStats& t = metrics.trace_stats(); t.any()) {
        out += ",\n\"trace\": {";
        append_kv(out, "\"total_recorded\": ", t.total_recorded);
        append_kv(out, ",\"dropped\": ", t.dropped);
        append_kv(out, ",\"detail_dropped\": ", t.detail_dropped);
        append_kv(out, ",\"spilled_records\": ", t.spilled_records);
        append_kv(out, ",\"spill_segments\": ", t.spill_segments);
        append_kv(out, ",\"spilled_bytes\": ", t.spilled_bytes);
        // resident_bytes stays programmatic (gather_trace_stats): ring
        // growth is amortized, so the value depends on the partition —
        // serializing it would break cross-shard-count byte identity.
        out += "}";
    } else {
        out += ",\n\"trace\": null";
    }
    if (const cost::CriticalPathStats& cp = metrics.critical_path(); cp.any()) {
        const auto append_path = [&out](const cost::CriticalPathStats::Path& p) {
            append_kv(out, "{\"root\": ", p.root);
            append_kv(out, ",\"root_start\": ", static_cast<std::uint64_t>(p.root_start));
            append_kv(out, ",\"end\": ", static_cast<std::uint64_t>(p.end));
            append_kv(out, ",\"latency\": ", static_cast<std::uint64_t>(p.latency()));
            append_kv(out, ",\"terminal\": ", p.terminal);
            out += ",\"terminal_node\": ";
            out += p.terminal_node == kNoNode ? std::string("null")
                                              : std::to_string(p.terminal_node);
            append_kv(out, ",\"depth\": ", p.depth);
            for (unsigned k = 0; k < cost::kPathSegmentKindCount; ++k) {
                out += ",\"";
                out += cost::path_segment_kind_name(static_cast<cost::PathSegmentKind>(k));
                out += "\": ";
                out += std::to_string(p.segments[k]);
            }
            out += "}";
        };
        out += ",\n\"critical_path\": {\"witness\": ";
        append_path(cp.witness);
        append_kv(out, ",\"deliveries\": ", cp.deliveries);
        append_kv(out, ",\"unanchored\": ", cp.unanchored);
        append_kv(out, ",\"clamped\": ", cp.clamped);
        append_kv(out, ",\"pruned\": ", cp.pruned);
        out += ",\"top\": [";
        for (std::size_t i = 0; i < cp.top.size(); ++i) {
            if (i != 0) out += ",";
            out += "\n";
            append_path(cp.top[i]);
        }
        out += cp.top.empty() ? "]}" : "\n]}";
    } else {
        out += ",\n\"critical_path\": null";
    }
    if (const cost::Profiler& p = metrics.profiler(); p.any()) {
        // Per-protocol handler profile, sorted by name: per-shard
        // registration order depends on the partition, names do not.
        out += ",\n\"profile\": [\n";
        const std::vector<std::size_t> order = p.sorted();
        bool first_entry = true;
        for (const std::size_t idx : order) {
            const cost::Profiler::Entry& e = p.entries()[idx];
            if (e.invocations() == 0) continue;
            if (!first_entry) out += ",\n";
            first_entry = false;
            out += "{\"protocol\": ";
            out += json_quote(e.name);
            append_kv(out, ",\"invocations\": ", e.invocations());
            append_kv(out, ",\"busy_ticks\": ", static_cast<std::uint64_t>(e.busy_ticks()));
            for (unsigned k = 0; k < cost::kHandlerKindCount; ++k) {
                const cost::LogHistogram& h = e.by_kind[k];
                if (h.count() == 0) continue;
                out += ",";
                append_histogram(out, cost::handler_kind_name(static_cast<cost::HandlerKind>(k)),
                                 h);
            }
            out += "}";
        }
        out += "\n]";
    } else {
        out += ",\n\"profile\": null";
    }
    const cost::Sampling* s = metrics.sampling();
    if (s == nullptr) {
        out += ",\n\"sampling\": null\n}\n";
        return out;
    }
    append_kv(out, ",\n\"sampling\": {\n\"window\": ",
              static_cast<std::uint64_t>(s->window()));
    out += ",\n\"net\": {";
    append_series(out, "hops", s->hops());
    out += ",";
    append_series(out, "sends", s->sends());
    out += ",";
    append_series(out, "drops", s->drops());
    out += ",";
    append_series(out, "bytes_per_node", s->bytes_per_node());
    out += "},\n\"histograms\": {";
    append_histogram(out, "hop_latency", s->hop_latency());
    out += ",";
    append_histogram(out, "delivery_latency", s->delivery_latency());
    out += ",";
    append_histogram(out, "header_len", s->header_len());
    out += ",";
    append_histogram(out, "ncu_busy", s->ncu_busy());
    out += ",";
    append_histogram(out, "queue_depth", s->queue_depth());
    out += "},\n\"phase_calls\": [";
    const auto& phases = s->phase_calls();
    for (std::size_t i = 0; i < phases.size(); ++i) {
        if (i != 0) out += ",";
        out += "[";
        out += std::to_string(phases[i].first);
        out += ",";
        out += std::to_string(phases[i].second);
        out += "]";
    }
    out += "],\n\"per_node\": [\n";
    for (NodeId u = 0; u < s->node_count(); ++u) {
        const cost::Sampling::NodeSeries& ns = s->node(u);
        append_kv(out, "{\"node\":", u);
        out += ",";
        append_series(out, "busy", ns.busy);
        out += ",";
        append_series(out, "hw_time", ns.hw_time);
        out += ",";
        append_series(out, "deliveries", ns.deliveries);
        out += ",";
        append_series(out, "queue_depth", ns.queue_depth);
        out += u + 1 < s->node_count() ? "},\n" : "}\n";
    }
    out += "]\n}\n}\n";
    return out;
}

}  // namespace fastnet::obs
