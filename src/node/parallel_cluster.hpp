// Spatially-partitioned parallel event kernel (conservative PDES).
//
// ParallelCluster runs ONE simulation across several shards: the graph
// is partitioned (graph/partition.hpp), each shard gets a full mirror
// hw::Network + its local NCU runtimes over its own sim::Simulator, and
// shards execute concurrently on an exec::ThreadPool in bounded time
// windows. The window width is the *lookahead* L — the minimum per-hop
// delay over boundary edges: a packet leaving shard A at time t cannot
// arrive in shard B before t + L, so shards may run [t, t + L) without
// hearing from each other. Arrivals that cross a boundary land in a
// per-shard outbox and are injected into the target mirror at the next
// window barrier.
//
// Determinism contract (guarded by tests/test_parallel_sim.cpp): for a
// fixed shard count, the merged metrics / trace / violations serialize
// byte-identically at 1, 2 and N worker threads — shards only ever run
// between barriers, where they share nothing. Across *shard counts* the
// outputs are identical too, because every ordering decision is keyed by
// state that is a pure function of the partitioned simulation:
//
//  * event tie-breaks use per-node priority counters advanced by the
//    scheduling context's own execution order (hw::ParallelHooks);
//  * packet ids / delay / fault draws come from per-node streams;
//  * the control timeline (starts, failures, phase marks) executes at
//    window barriers, replayed identically into every mirror;
//  * merges sort by simulated coordinates only: trace records by
//    (at, node), violations by (at, node), cross-shard arrivals by
//    (at, pri).
//
// What is NOT promised: byte-equality with the *sequential* node::Cluster
// — the sequential path keeps its global-counter schedule untouched (it
// is the seed baseline). The parallel kernel at shards=1 is the bridge:
// one mirror, no boundary, windows collapse to one run-to-quiescence
// call, and bench_parallel_sim gates its per-hop cost against the
// sequential kernel (docs/PERF.md).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cost/metrics.hpp"
#include "exec/thread_pool.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "hw/network.hpp"
#include "node/cluster.hpp"
#include "node/runtime.hpp"
#include "node/scenario.hpp"
#include "obs/monitor.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace fastnet::node {

struct ParallelClusterConfig {
    ModelParams params = ModelParams::fast_network();
    hw::NetworkConfig net;
    Tick ncu_delay_min = -1;
    bool free_multisend = true;
    std::uint64_t seed = 42;
    /// Requested shard count (clamped to [1, node_count]; forced to 1
    /// when the lookahead would be zero, i.e. net.hop_delay_min == 0
    /// with jitter on — conservative windows need a positive minimum
    /// link delay).
    unsigned shards = 1;
    /// Worker threads for shards > 1; 0 = min(shards, hardware). With
    /// shards == 1 everything runs inline and no pool is created.
    unsigned threads = 0;
    /// Per-shard trace ring capacity; 0 = tracing off. Size generously:
    /// merged exports are only byte-stable across shard counts while no
    /// ring drops records (drops depend on the partition) — or enable
    /// spill (below), which never drops records.
    std::size_t trace_capacity = 0;
    /// Per-shard trace detail-arena capacity in bytes (violation texts,
    /// custom records). Size generously for byte-stable merged exports:
    /// a full arena drops details, and which details drop depends on the
    /// partition and (with spill) the drain cadence.
    std::size_t trace_detail_capacity = 1 << 16;
    /// When non-empty, each shard's trace spills to
    /// `<trace_spill_dir>/shard-NNNN.fnspill` instead of overwriting its
    /// ring (sim/trace_spill.hpp): resident trace memory stays bounded
    /// while the full record stream lands on disk, and
    /// obs::SpillMerge over the directory reproduces merged_trace()
    /// byte-identically at any shard x thread count. The directory is
    /// created if missing. Requires trace_capacity > 0.
    std::string trace_spill_dir;
    /// Optional per-shard resident-byte budget (ring + detail arena)
    /// forwarded to sim::TraceSpillConfig::resident_budget_bytes.
    std::size_t trace_budget_bytes = 0;
    /// As ClusterConfig::sample_window, accumulated per shard and merged.
    Tick sample_window = 0;
    /// Monitor installer, invoked once per shard hub; null = no
    /// monitors. Each shard audits its own slice of the run (plus
    /// kHandoff credits for packets entering across a boundary).
    std::function<void(obs::MonitorHub&)> monitor_setup;
};

/// The coordinator: construct, script (start/churn via the same
/// Scenario vocabulary as Cluster), run, then read merged results.
class ParallelCluster {
public:
    ParallelCluster(graph::Graph g, ProtocolFactory factory,
                    ParallelClusterConfig config = {});
    ~ParallelCluster();

    ParallelCluster(const ParallelCluster&) = delete;
    ParallelCluster& operator=(const ParallelCluster&) = delete;

    const graph::Graph& graph() const { return graph_; }
    NodeId node_count() const { return graph_.node_count(); }
    unsigned shard_count() const { return static_cast<unsigned>(shards_.size()); }
    unsigned thread_count() const { return threads_; }
    /// Window width in ticks; kNever when there are no boundary edges
    /// (single shard) — one window runs to quiescence.
    Tick lookahead() const { return lookahead_; }
    const graph::Partition& partition() const { return part_; }

    // ---- control timeline --------------------------------------------
    // All control is scripted: actions execute at window barriers, in
    // time order (registration order on ties), identically into every
    // mirror. `at` must not be in the past once the run has begun.
    void start(NodeId u, Tick at = 0);
    void start_all(Tick at = 0);
    void mark_phase(Tick at, std::uint64_t phase);
    void fail_link(Tick at, EdgeId e);
    void restore_link(Tick at, EdgeId e);
    void fail_node(Tick at, NodeId u);
    void restore_node(Tick at, NodeId u);
    void crash_node(Tick at, NodeId u);
    void restart_node(Tick at, NodeId u);
    void stall_node(Tick at, NodeId u, Tick extra);
    /// Appends every action of `scenario` to the control timeline.
    void schedule(const Scenario& scenario);

    // ---- execution ----------------------------------------------------
    /// Runs to quiescence (all shards drained, control timeline spent,
    /// outboxes empty), closes the monitors' books, and returns the
    /// completion time: the latest event time across shards.
    Tick run();
    /// Runs the window loop until simulated `until` inclusive.
    Tick run_until(Tick until);
    /// Latest simulated time reached by any shard.
    Tick now() const;
    bool quiescent() const;

    // ---- merged results ----------------------------------------------
    /// Per-shard ledgers folded into one (cost::Metrics::merge_from) —
    /// exact, order-independent arithmetic.
    cost::Metrics merged_metrics() const;
    /// Per-shard trace snapshots merged by (at, node) — each (at, node)
    /// pair belongs to exactly one shard, so the stable sort yields one
    /// well-defined interleaving. Control records (kPhase) live in shard
    /// 0's trace only.
    std::vector<sim::TraceRecord> merged_trace() const;
    std::uint64_t trace_total_recorded() const;
    std::uint64_t trace_dropped() const;
    std::uint64_t trace_detail_dropped() const;
    /// Records drained to spill files so far, summed over shards.
    std::uint64_t trace_spilled_records() const;
    /// Largest per-shard resident trace footprint (ring + detail arena
    /// capacity) — the quantity trace_budget_bytes bounds.
    std::size_t trace_resident_bytes_peak() const;
    /// The per-shard spill files (empty without trace_spill_dir), in
    /// shard order. Finalized (trailer written) once run() returns.
    std::vector<std::string> spill_paths() const;

    /// All shards' violations, sorted by (at, node, shard).
    std::vector<obs::Violation> merged_violations() const;
    std::uint64_t violation_count() const;
    /// Monitors per hub (what a single-hub run would report); 0 without
    /// monitor_setup.
    std::size_t monitor_count() const;
    bool monitors_ok() const { return violation_count() == 0; }

    // ---- per-shard / oracle surface ----------------------------------
    /// Shard s's mirror network (full link state, local nodes live).
    hw::Network& mirror(unsigned s) { return *shards_[s]->net; }
    const hw::Network& mirror(unsigned s) const { return *shards_[s]->net; }
    /// Live packet cursors across all mirrors (0 at quiescence).
    std::size_t packets_in_flight() const;

    /// The owning shard's protocol instance for node u.
    Protocol& protocol(NodeId u);
    const Protocol& protocol(NodeId u) const;

    template <typename T>
    T& protocol_as(NodeId u) {
        auto* p = dynamic_cast<T*>(&protocol(u));
        FASTNET_EXPECTS_MSG(p != nullptr, "protocol type mismatch");
        return *p;
    }

    bool crashed(NodeId u) const;

private:
    struct Shard {
        sim::Simulator sim;
        std::unique_ptr<cost::Metrics> metrics;
        std::shared_ptr<sim::Trace> trace;
        std::shared_ptr<obs::MonitorHub> monitors;
        std::unique_ptr<hw::Network> net;
        /// Indexed by global NodeId; null for nodes owned elsewhere.
        std::vector<std::unique_ptr<NodeRuntime>> runtimes;
        /// Boundary-crossing arrivals emitted during the last window.
        std::vector<hw::RemoteArrival> outbox;
    };

    NodeRuntime& runtime(NodeId u);
    const NodeRuntime& runtime(NodeId u) const;
    void push_action(ScenarioAction a);
    void sort_actions();
    /// Advances every shard's clock to the barrier time `t`.
    void advance_all_to(Tick t);
    /// Executes every pending control action scheduled at exactly `t`.
    void apply_control_at(Tick t);
    void apply_action(const ScenarioAction& a);
    /// Runs every shard until `until` (inclusive), inline for one shard,
    /// on the pool otherwise; then drains outboxes into target mirrors
    /// in (at, pri) order.
    void run_window(Tick until);
    /// The window loop; `limit` == kNever runs to quiescence.
    void window_loop(Tick limit);

    graph::Graph graph_;
    ProtocolFactory factory_;
    ParallelClusterConfig config_;
    graph::Partition part_;
    Tick lookahead_ = kNever;
    unsigned threads_ = 1;
    unsigned pri_counter_bits_ = 0;

    // Shared per-node state (hw::ParallelHooks points into these; entry u
    // is touched only by u's owning shard mid-window).
    std::vector<Rng> node_rng_;
    std::vector<Rng> node_fault_rng_;
    std::vector<std::uint64_t> node_send_seq_;
    std::vector<std::uint64_t> node_pri_;

    std::vector<std::unique_ptr<Shard>> shards_;
    std::unique_ptr<exec::ThreadPool> pool_;

    std::vector<ScenarioAction> actions_;
    std::size_t next_action_ = 0;
    bool actions_dirty_ = false;
    /// Earliest time a new control action may target: the exclusive end
    /// of the last event window (events before it have already run).
    Tick control_floor_ = 0;
};

}  // namespace fastnet::node
