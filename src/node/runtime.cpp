#include "node/runtime.hpp"

#include <algorithm>

namespace fastnet::node {

NodeRuntime::NodeRuntime(NodeId self, hw::Network& net, std::unique_ptr<Protocol> protocol,
                         Rng rng, Tick ncu_delay_min, bool free_multisend,
                         util::Arena* arena)
    : self_(self),
      net_(net),
      protocol_(std::move(protocol)),
      rng_(rng),
      ncu_delay_min_(ncu_delay_min),
      free_multisend_(free_multisend) {
    FASTNET_EXPECTS(protocol_ != nullptr);
    const graph::Graph& g = net_.graph();
    link_count_ = static_cast<std::uint32_t>(g.degree(self));
    if (arena != nullptr) {
        links_ = arena->allocate_uninitialized<LocalLink>(link_count_);
    } else {
        links_owned_ = std::make_unique<LocalLink[]>(link_count_);
        links_ = links_owned_.get();
    }
    std::uint32_t i = 0;
    for (const graph::IncidentEdge& ie : g.incident(self)) {
        LocalLink l;
        l.edge = ie.edge;
        l.neighbor = ie.neighbor;
        l.port = net_.port_for_edge(self, ie.edge);
        l.remote_port = net_.port_for_edge(ie.neighbor, ie.edge);
        l.active = net_.link_active(ie.edge);
        links_[i++] = l;
    }
}

Tick NodeRuntime::now() const { return net_.simulator().now(); }

void NodeRuntime::request_start(Tick at) {
    net_.schedule_at(self_, at, [this, inc = incarnation_] {
        if (inc != incarnation_) return;  // node crashed since the request
        enqueue(StartWork{});
    });
}

void NodeRuntime::on_delivery(const hw::Delivery& d) { enqueue(d); }

void NodeRuntime::crash() {
    if (crashed_) return;
    crashed_ = true;
    ++incarnation_;
    busy_ = false;
    extra_busy_ = 0;
    sends_this_call_ = 0;
    current_lineage_ = 0;
    queue_.clear();
    for (const auto& [id, ev] : pending_timers_) net_.cancel_scheduled(ev);
    pending_timers_.clear();
    cancelled_timers_.clear();
    net_.metrics().node(self_).crashes += 1;
    if (trace_)
        trace_->record(now(), self_, sim::TraceKind::kCrash, {.a = incarnation_ - 1});
}

void NodeRuntime::restart(std::unique_ptr<Protocol> fresh) {
    FASTNET_EXPECTS_MSG(crashed_, "restart of a node that is not down");
    FASTNET_EXPECTS(fresh != nullptr);
    crashed_ = false;
    protocol_ = std::move(fresh);
    // Data-link re-initialization: the fresh incarnation learns the
    // *current* state of its links, not the state at crash time.
    for (std::uint32_t i = 0; i < link_count_; ++i)
        links_[i].active = net_.link_active(links_[i].edge);
    if (trace_) trace_->record(now(), self_, sim::TraceKind::kRestart, {.a = incarnation_});
    enqueue(RestartWork{});
}

void NodeRuntime::set_stall(Tick extra) {
    FASTNET_EXPECTS(extra >= 0);
    stall_extra_ = extra;
}

std::size_t NodeRuntime::memory_bytes() const {
    return sizeof(NodeRuntime) + link_count_ * sizeof(LocalLink) + queue_.memory_bytes() +
           pending_timers_.capacity() * sizeof(pending_timers_[0]) +
           cancelled_timers_.capacity() * sizeof(TimerId);
}

void NodeRuntime::on_link_notification(EdgeId e, bool up) {
    for (std::size_t i = 0; i < link_count_; ++i) {
        if (links_[i].edge == e) {
            enqueue(LinkWork{i, up});
            return;
        }
    }
    FASTNET_ENSURES_MSG(false, "link notification for non-incident edge");
}

void NodeRuntime::enqueue(Work w) {
    if (crashed_) return;  // a dead NCU accepts no work
    queue_.push_back(std::move(w));
    if (cost::Sampling* s = net_.metrics().sampling()) {
        const auto depth = static_cast<double>(queue_.size() + (busy_ ? 1 : 0));
        s->node(self_).queue_depth.add(now(), depth);
        s->queue_depth().add(static_cast<std::uint64_t>(depth));
    }
    if (obs::MonitorHub* hub = net_.monitors(); hub != nullptr && hub->active()) {
        obs::MonitorEvent ev;
        ev.kind = obs::MonitorEvent::Kind::kEnqueue;
        ev.at = now();
        ev.node = self_;
        ev.a = queue_.size() + (busy_ ? 1 : 0);
        hub->dispatch(ev);
    }
    begin_next_if_idle();
}

Tick NodeRuntime::processing_delay() {
    const Tick p = net_.params().ncu_delay;
    Tick d = p;
    if (ncu_delay_min_ >= 0 && ncu_delay_min_ < p) d = rng_.range(ncu_delay_min_, p);
    return d + stall_extra_;
}

void NodeRuntime::begin_next_if_idle() {
    if (busy_ || queue_.empty()) return;
    busy_ = true;
    Work w = std::move(queue_.front());
    queue_.pop_front();
    const Tick delay = processing_delay();
    net_.metrics().node(self_).busy_time += delay;
    if (cost::Sampling* s = net_.metrics().sampling()) {
        // Software (P) budget: the processing window this invocation
        // occupies, attributed to its start tick.
        s->node(self_).busy.add(now(), static_cast<double>(delay));
        s->ncu_busy().add(static_cast<std::uint64_t>(delay));
    }
    net_.schedule_after(self_, delay, [this, inc = incarnation_, delay,
                                       w = std::move(w)]() mutable {
        if (inc != incarnation_) return;  // crashed mid-handler: never completes
        busy_ = false;
        sends_this_call_ = 0;
        extra_busy_ = 0;
        complete(std::move(w), delay);
        if (extra_busy_ > 0) {
            // Ablation A1: serialized sends keep the processor occupied.
            busy_ = true;
            net_.metrics().node(self_).busy_time += extra_busy_;
            net_.schedule_after(self_, extra_busy_, [this, inc] {
                if (inc != incarnation_) return;
                busy_ = false;
                begin_next_if_idle();
            });
            return;
        }
        begin_next_if_idle();
    });
}

void NodeRuntime::complete(Work w, Tick busy) {
    cost::NodeCounters& counters = net_.metrics().node(self_);
    auto invoke_kind = obs::MonitorEvent::InvokeKind::kStart;
    std::uint64_t invoke_lineage = 0;
    if (std::holds_alternative<StartWork>(w)) {
        counters.starts += 1;
        if (trace_ && trace_->enabled(sim::TraceKind::kStart))
            trace_->record(now(), self_, sim::TraceKind::kStart,
                           {.b = static_cast<std::uint64_t>(busy)});
        protocol_->on_start(*this);
    } else if (std::holds_alternative<RestartWork>(w)) {
        invoke_kind = obs::MonitorEvent::InvokeKind::kRestart;
        counters.restarts += 1;
        protocol_->on_restart(*this);
    } else if (auto* d = std::get_if<hw::Delivery>(&w)) {
        invoke_kind = obs::MonitorEvent::InvokeKind::kDelivery;
        invoke_lineage = d->lineage;
        counters.message_deliveries += 1;
        if (trace_ && trace_->enabled(sim::TraceKind::kDeliver))
            trace_->record(now(), self_, sim::TraceKind::kDeliver,
                           {.lineage = d->lineage, .a = d->hops,
                            .b = static_cast<std::uint64_t>(busy),
                            .c = static_cast<std::uint64_t>(d->sent_at)});
        if (cost::Sampling* s = net_.metrics().sampling()) {
            s->node(self_).deliveries.add(now(), 1);
            s->phase_call(net_.metrics().phase());
        }
        current_lineage_ = d->lineage;
        protocol_->on_message(*this, *d);
        current_lineage_ = 0;
    } else if (auto* l = std::get_if<LinkWork>(&w)) {
        invoke_kind = obs::MonitorEvent::InvokeKind::kLink;
        counters.link_events += 1;
        links_[l->link_index].active = l->up;
        if (trace_ && trace_->enabled(sim::TraceKind::kLinkChange))
            trace_->record(now(), self_, sim::TraceKind::kLinkChange,
                           {.a = links_[l->link_index].edge,
                            .b = static_cast<std::uint64_t>(busy),
                            .flag = l->up ? std::uint8_t{1} : std::uint8_t{0}});
        protocol_->on_link_state(*this, links_[l->link_index], l->up);
    } else if (auto* t = std::get_if<TimerWork>(&w)) {
        auto it = std::find(cancelled_timers_.begin(), cancelled_timers_.end(), t->id);
        if (it != cancelled_timers_.end()) {
            cancelled_timers_.erase(it);
            return;  // cancelled after the fire event queued the work
        }
        invoke_kind = obs::MonitorEvent::InvokeKind::kTimer;
        invoke_lineage = t->lineage;
        counters.timer_fires += 1;
        if (trace_ && trace_->enabled(sim::TraceKind::kTimer))
            trace_->record(now(), self_, sim::TraceKind::kTimer,
                           {.lineage = t->lineage, .a = t->cookie,
                            .b = static_cast<std::uint64_t>(busy),
                            .c = static_cast<std::uint64_t>(t->armed_at)});
        current_lineage_ = t->lineage;
        protocol_->on_timer(*this, t->cookie);
        current_lineage_ = 0;
    }
    // Always-on profiler: InvokeKind and cost::HandlerKind share value
    // order, so the cast is the whole mapping.
    net_.metrics().profiler().record(
        profile_id_, static_cast<cost::HandlerKind>(invoke_kind), busy);
    if (obs::MonitorHub* hub = net_.monitors(); hub != nullptr && hub->active()) {
        obs::MonitorEvent ev;
        ev.kind = obs::MonitorEvent::Kind::kInvoke;
        ev.at = now();
        ev.node = self_;
        ev.lineage = invoke_lineage;
        ev.a = static_cast<std::uint64_t>(invoke_kind);
        ev.b = static_cast<std::uint64_t>(busy);
        hub->dispatch(ev);
    }
}

void NodeRuntime::send(hw::AnrHeader header, std::shared_ptr<const hw::Payload> payload) {
    const unsigned index = sends_this_call_++;
    if (free_multisend_ || index == 0) {
        net_.send(self_, std::move(header), std::move(payload), current_lineage_);
        return;
    }
    // Without the free multi-link send, each further packet needs its own
    // processing slot: it leaves index * P later.
    const Tick wait = static_cast<Tick>(index) * net_.params().ncu_delay;
    extra_busy_ = std::max(extra_busy_, wait);
    net_.schedule_after(self_, wait, [this, inc = incarnation_, lin = current_lineage_,
                                      h = std::move(header), p = std::move(payload)]() mutable {
        if (inc != incarnation_) return;  // crashed before the packet left
        net_.send(self_, std::move(h), std::move(p), lin);
    });
}

void NodeRuntime::reply(const hw::Delivery& to, std::shared_ptr<const hw::Payload> payload) {
    FASTNET_EXPECTS_MSG(!to.reverse.empty(), "delivery has no reverse route");
    net_.send(self_, to.reverse, std::move(payload), current_lineage_);
}

TimerId NodeRuntime::set_timer(Tick delay, std::uint64_t cookie) {
    FASTNET_EXPECTS(delay >= 0);
    const TimerId id = next_timer_++;
    const sim::EventId ev = net_.schedule_after(
        self_, delay,
        [this, inc = incarnation_, lin = current_lineage_, armed = now(), id, cookie] {
            if (inc != incarnation_) return;  // crash already cancelled it
            std::erase_if(pending_timers_, [id](const auto& p) { return p.first == id; });
            enqueue(TimerWork{id, cookie, lin, armed});
        });
    pending_timers_.emplace_back(id, ev);
    return id;
}

void NodeRuntime::cancel_timer(TimerId id) {
    auto it = std::find_if(pending_timers_.begin(), pending_timers_.end(),
                           [id](const auto& p) { return p.first == id; });
    if (it != pending_timers_.end()) {
        net_.cancel_scheduled(it->second);
        pending_timers_.erase(it);
        return;
    }
    // The fire event may already have enqueued the work; suppress it.
    cancelled_timers_.push_back(id);
}

}  // namespace fastnet::node
