// Cluster: one-stop assembly of simulator + network + node runtimes.
//
// This is the main entry point of the public API: construct a Cluster
// from a graph, a protocol factory and model parameters; start nodes;
// run; inspect protocols and costs.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cost/metrics.hpp"
#include "graph/graph.hpp"
#include "hw/network.hpp"
#include "node/runtime.hpp"
#include "sim/simulator.hpp"
#include "util/arena.hpp"

namespace fastnet::node {

struct ClusterConfig {
    ModelParams params = ModelParams::fast_network();
    hw::NetworkConfig net;
    /// If >= 0, NCU delays are drawn uniformly from [ncu_delay_min, P]
    /// per invocation (P stays the analytic worst case).
    Tick ncu_delay_min = -1;
    /// The model's "send over multiple outgoing links at no extra
    /// processing cost" feature (Section 2, validated on PARIS). Turn
    /// off for ablation A1: each extra send in a handler costs P.
    bool free_multisend = true;
    /// Master seed; per-node streams are forked deterministically.
    std::uint64_t seed = 42;
    /// Optional observational trace, shared with the network fabric and
    /// every node runtime (starts, sends, hops, deliveries, timers, link
    /// events, drops, duplicates, crash/restart) — see sim/trace.hpp and
    /// docs/OBSERVABILITY.md.
    std::shared_ptr<sim::Trace> trace;
    /// When > 0, enables cost::Metrics windowed sampling with this
    /// window width (ticks): per-node busy/queue/delivery series, hop
    /// and delivery latency histograms, C-vs-P budget attribution.
    Tick sample_window = 0;
    /// Optional live invariant monitors (see obs/monitor.hpp). The hub is
    /// shared with the network fabric and fed by every runtime; Cluster
    /// attaches `trace` to it (first violations become kViolation trace
    /// records) and run() closes the books with MonitorHub::finish.
    std::shared_ptr<obs::MonitorHub> monitors;
    /// When > 0, run() samples the cluster's memory footprint every this
    /// many ticks (plus once at quiescence): bytes/node into the sampling
    /// series (when sampling is on), a MemorySample into the metrics
    /// ledger, and one kMemory monitor event per node (when a hub is
    /// attached) — what MemoryBudgetMonitor watches. Sampling injects no
    /// simulation events, so the event order of the run is untouched.
    Tick memory_sample_every = 0;
    /// The always-on handler profiler (cost::Profiler): per-protocol,
    /// per-handler-kind busy-tick histograms in the metrics "profile"
    /// section. Off exists only so bench_obs_overhead can price the
    /// profiler against an otherwise identical cluster.
    bool profile = true;
};

/// Creates the protocol instance for one node.
using ProtocolFactory = std::function<std::unique_ptr<Protocol>(NodeId)>;

/// Folds one trace's bookkeeping (total recorded, drops, spill volume,
/// resident footprint) into the counter block metrics JSON exposes as
/// the "trace" section. Used by Cluster and ParallelCluster at end of
/// run; callers with their own Trace can reuse it.
cost::TraceStats gather_trace_stats(const sim::Trace& trace);

class Cluster {
public:
    /// Takes the graph by value: the cluster owns its topology for its
    /// whole lifetime (callers routinely pass generator temporaries).
    Cluster(graph::Graph g, ProtocolFactory factory, ClusterConfig config = {});
    ~Cluster();

    Cluster(const Cluster&) = delete;
    Cluster& operator=(const Cluster&) = delete;

    sim::Simulator& simulator() { return sim_; }
    hw::Network& network() { return *net_; }
    cost::Metrics& metrics() { return *metrics_; }
    const cost::Metrics& metrics() const { return *metrics_; }
    const graph::Graph& graph() const { return net_->graph(); }
    NodeId node_count() const { return graph().node_count(); }

    /// The observational trace this cluster records into (null when
    /// tracing is off) — probes/harnesses export it via src/obs/.
    const std::shared_ptr<sim::Trace>& trace() const { return trace_; }

    /// The monitor hub this cluster feeds (null when none attached).
    const std::shared_ptr<obs::MonitorHub>& monitors() const { return monitors_; }

    /// Marks experiment phase `phase` at simulated time `at`: system
    /// calls completing afterwards are attributed to it (when sampling
    /// is on) and a kPhase trace record is written (when tracing is on).
    void mark_phase(Tick at, std::uint64_t phase);

    /// Schedules a spontaneous start for one node / all nodes.
    void start(NodeId u, Tick at = 0);
    void start_all(Tick at = 0);

    // ---- crash-recovery ----------------------------------------------
    /// Crashes node `u` *now* (call from a scheduled event to crash at a
    /// simulated time): every incident link goes down (with the usual
    /// epoch bump, so in-flight packets die) AND the NCU loses all soft
    /// state — queued work, pending timers, the protocol instance. This
    /// is the hard failure Theorem 1's eventual consistency must survive;
    /// contrast fail_node, which downs links but leaves software state.
    /// Idempotent.
    void crash_node(NodeId u);

    /// Restarts a crashed node: links this node's crash took down come
    /// back (only those — see Network::restore_node), a fresh protocol
    /// instance is built by the factory, and its on_restart hook runs
    /// under a bumped incarnation. No-op for live nodes.
    void restart_node(NodeId u);

    bool crashed(NodeId u) const;

    /// Fault injection: inflates node `u`'s per-invocation processing
    /// delay by `extra` ticks (0 clears the stall).
    void stall_node(NodeId u, Tick extra);

    /// Runs to quiescence; returns the simulated completion time.
    Tick run();
    /// Runs until simulated `until`; returns the current time afterwards.
    Tick run_until(Tick until);

    /// Takes one memory sample now (run() does this on a cadence when
    /// ClusterConfig::memory_sample_every is set) — see that option for
    /// what a sample feeds.
    void sample_memory();

    /// Toggles the handler profiler hook at runtime. Exists for
    /// bench_obs_overhead, which prices the profiler by measuring the
    /// *same* cluster in both states (two separately constructed
    /// clusters differ by more machine noise than the hook costs).
    void set_profile(bool on);

    /// The bump arena backing the runtime array and link tables.
    const util::Arena& arena() const { return arena_; }

    /// Access a node's protocol (tests / harnesses downcast).
    Protocol& protocol(NodeId u) { return runtime(u).protocol(); }
    const Protocol& protocol(NodeId u) const {
        FASTNET_EXPECTS(u < runtime_count_);
        return runtimes_[u].protocol();
    }

    template <typename T>
    T& protocol_as(NodeId u) {
        auto* p = dynamic_cast<T*>(&protocol(u));
        FASTNET_EXPECTS_MSG(p != nullptr, "protocol type mismatch");
        return *p;
    }

    /// True when every NCU is idle and no events are pending.
    bool quiescent() const;

private:
    NodeRuntime& runtime(NodeId u) {
        FASTNET_EXPECTS(u < runtime_count_);
        return runtimes_[u];
    }

    /// End-of-run sweep: kTraceDrop dispatch for overflowed buffers,
    /// monitor finish, spill finalization, trace stats into metrics.
    void finish_observability();

    sim::Simulator sim_;
    graph::Graph graph_;
    /// Retained past construction: restart_node builds the replacement
    /// protocol instance for a recovering NCU from the same factory.
    ProtocolFactory factory_;
    std::unique_ptr<cost::Metrics> metrics_;
    std::unique_ptr<hw::Network> net_;
    /// All n runtimes live contiguously in the arena (placement-new'd;
    /// destroyed by ~Cluster). One allocation instead of n, 32-bit
    /// indexable, cache-friendly iteration.
    util::Arena arena_;
    NodeRuntime* runtimes_ = nullptr;
    NodeId runtime_count_ = 0;
    Tick memory_sample_every_ = 0;
    std::shared_ptr<sim::Trace> trace_;
    std::shared_ptr<obs::MonitorHub> monitors_;
};

}  // namespace fastnet::node
