// Per-node NCU runtime: the serial software processor.
//
// Work items (start requests, packet deliveries, link notifications,
// timer fires) queue at the NCU and are processed one at a time; each
// occupies the processor for P ticks (optionally jittered downwards —
// P is a worst-case bound in the model). The protocol handler executes
// at the *end* of its processing window, so a message received at time t
// has fully taken effect by t + P, matching the accounting Section 5's
// recursion relies on ("the last message must be received no later than
// t - P"). FIFO arrival order is preserved by the queue.
#pragma once

#include <cstdint>
#include <memory>
#include <variant>
#include <vector>

#include "common/rng.hpp"
#include "cost/metrics.hpp"
#include "hw/network.hpp"
#include "node/protocol.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "util/arena.hpp"
#include "util/ring_queue.hpp"

namespace fastnet::node {

class NodeRuntime final : public Context {
public:
    /// `free_multisend` — the model feature validated on PARIS: all
    /// packets injected within one handler leave at once at no extra
    /// processing cost. When false (ablation A1), the i-th send of a
    /// handler leaves i*P later and the NCU stays busy until the last
    /// one has left.
    ///
    /// `arena` — optional backing store for the link table. When given
    /// (Cluster passes its arena) the LocalLink array is bump-allocated
    /// with the cluster's lifetime: zero per-node heap objects. When
    /// null, the runtime owns a heap array (standalone construction in
    /// tests).
    NodeRuntime(NodeId self, hw::Network& net, std::unique_ptr<Protocol> protocol,
                Rng rng, Tick ncu_delay_min = -1, bool free_multisend = true,
                util::Arena* arena = nullptr);

    NodeRuntime(const NodeRuntime&) = delete;
    NodeRuntime& operator=(const NodeRuntime&) = delete;

    /// Attaches an observational trace (may be null).
    void set_trace(std::shared_ptr<sim::Trace> trace) { trace_ = std::move(trace); }

    /// Routes this runtime's handler completions into the always-on
    /// profiler (cost::Metrics::profiler) under the given protocol id
    /// (from Profiler::register_protocol). kNoProtocol (the default)
    /// records nothing. Survives crash/restart — the fresh instance
    /// keeps the same protocol name.
    void set_profile_id(std::uint16_t id) { profile_id_ = id; }
    std::uint16_t profile_id() const { return profile_id_; }

    /// Enqueues a spontaneous start at simulated time `at`.
    void request_start(Tick at);

    /// Called by the network fabric (registered as the NCU sink).
    void on_delivery(const hw::Delivery& d);

    /// Called by the network fabric on data-link notifications.
    void on_link_notification(EdgeId e, bool up);

    Protocol& protocol() { return *protocol_; }
    const Protocol& protocol() const { return *protocol_; }

    /// True when no work is queued or in progress.
    bool ncu_idle() const { return !busy_ && queue_.empty(); }

    // ---- crash-recovery (driven by Cluster) ---------------------------
    /// Crash semantics, as opposed to mere link-down: all soft state dies.
    /// Queued work is discarded, pending timers are cancelled, the
    /// in-progress handler (if any) never completes, and anything the
    /// previous incarnation scheduled is suppressed. Idempotent.
    void crash();

    /// Brings the node back with `fresh` as its protocol instance (the
    /// old one is destroyed — crashes don't preserve protocol state).
    /// Re-learns link states from the network (data-link re-init), then
    /// enqueues one restart work item that runs Protocol::on_restart.
    void restart(std::unique_ptr<Protocol> fresh);

    bool crashed() const { return crashed_; }

    /// Fault injection: adds `extra` ticks to every processing delay (an
    /// overloaded/thermally-throttled NCU — inflated P). 0 clears.
    void set_stall(Tick extra);

    /// This node's software footprint: the runtime object, its link
    /// table, queued-work buffer and timer bookkeeping — everything per
    /// node *except* the protocol instance, which cost::Metrics ledgers
    /// separately (see Protocol::memory_bytes). Arena-resident state is
    /// included: the quantity is logical bytes per node, regardless of
    /// which allocator holds them.
    std::size_t memory_bytes() const;

    // ---- Context ------------------------------------------------------
    NodeId self() const override { return self_; }
    Tick now() const override;
    const ModelParams& params() const override { return net_.params(); }
    std::span<const LocalLink> links() const override { return {links_, link_count_}; }
    void send(hw::AnrHeader header, std::shared_ptr<const hw::Payload> payload) override;
    void reply(const hw::Delivery& to, std::shared_ptr<const hw::Payload> payload) override;
    TimerId set_timer(Tick delay, std::uint64_t cookie) override;
    void cancel_timer(TimerId id) override;
    Rng& rng() override { return rng_; }
    std::uint64_t incarnation() const override { return incarnation_; }
    void record(sim::TraceKind kind, std::uint64_t a, std::uint64_t b = 0,
                std::uint8_t flag = 0) override {
        if (trace_ && trace_->enabled(kind))
            trace_->record(now(), self_, kind,
                           {.lineage = current_lineage_, .a = a, .b = b, .flag = flag});
    }

private:
    struct StartWork {};
    struct RestartWork {};
    struct TimerWork {
        TimerId id;
        std::uint64_t cookie;
        /// Causal lineage of the invocation that armed the timer (0 if it
        /// was armed outside a handler) — traces link a fire back to it.
        std::uint64_t lineage;
        /// When set_timer ran — the completion instant of the arming
        /// handler; the causal anchor (`c`) of the kTimer record.
        Tick armed_at;
    };
    struct LinkWork {
        std::size_t link_index;
        bool up;
    };
    using Work = std::variant<StartWork, hw::Delivery, LinkWork, TimerWork, RestartWork>;

    void enqueue(Work w);
    void begin_next_if_idle();
    void complete(Work w, Tick busy);
    Tick processing_delay();

    NodeId self_;
    hw::Network& net_;
    std::unique_ptr<Protocol> protocol_;
    Rng rng_;
    Tick ncu_delay_min_;
    bool free_multisend_;
    unsigned sends_this_call_ = 0;
    Tick extra_busy_ = 0;
    Tick stall_extra_ = 0;
    bool crashed_ = false;
    std::uint16_t profile_id_ = cost::Profiler::kNoProtocol;
    /// Bumped on every crash. Every scheduled continuation (handler
    /// completion, deferred A1 send, timer fire, scripted start) carries
    /// the incarnation it was scheduled under and is dropped if the node
    /// crashed in between — the previous incarnation's future never runs.
    std::uint64_t incarnation_ = 0;
    std::shared_ptr<sim::Trace> trace_;
    /// Lineage of the work item whose handler is currently executing
    /// (0 outside handlers): the causal parent stamped on sends and
    /// armed timers.
    std::uint64_t current_lineage_ = 0;

    /// Link table: arena-resident (links_owned_ empty) or heap-owned.
    LocalLink* links_ = nullptr;
    std::uint32_t link_count_ = 0;
    std::unique_ptr<LocalLink[]> links_owned_;
    util::RingQueue<Work> queue_;
    bool busy_ = false;
    TimerId next_timer_ = 1;
    std::vector<TimerId> cancelled_timers_;
    std::vector<std::pair<TimerId, sim::EventId>> pending_timers_;
};

}  // namespace fastnet::node
