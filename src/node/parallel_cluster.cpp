#include "node/parallel_cluster.hpp"

#include <algorithm>
#include <filesystem>
#include <iterator>

#include "sim/trace_spill.hpp"

namespace fastnet::node {

namespace {

/// The minimum delay one hop can take under this configuration — the
/// per-edge lookahead contribution (all edges share the jitter config).
Tick min_hop_delay(const ModelParams& params, const hw::NetworkConfig& net) {
    if (net.hop_delay_min >= 0 && params.hop_delay > net.hop_delay_min)
        return net.hop_delay_min;
    return params.hop_delay;
}

using sim::trace_node_sort_key;

}  // namespace

ParallelCluster::ParallelCluster(graph::Graph g, ProtocolFactory factory,
                                 ParallelClusterConfig config)
    : graph_(std::move(g)), factory_(std::move(factory)), config_(std::move(config)) {
    FASTNET_EXPECTS(factory_ != nullptr);
    const NodeId n = graph_.node_count();

    part_ = graph::partition_bfs(graph_, config_.shards == 0 ? 1 : config_.shards);
    if (!part_.boundary_edges.empty()) {
        const Tick link_min = min_hop_delay(config_.params, config_.net);
        if (link_min <= 0) {
            // Zero lookahead: a boundary packet could arrive "now", so no
            // window is safe. Degrade to one shard rather than reject —
            // the caller's configuration stays runnable, just serial.
            part_ = graph::partition_bfs(graph_, 1);
        } else {
            lookahead_ = link_min;
        }
    }
    const unsigned shard_count = part_.shard_count;
    threads_ = shard_count == 1
                   ? 1
                   : (config_.threads != 0
                          ? config_.threads
                          : std::min(shard_count, exec::ThreadPool::hardware_threads()));
    if (threads_ == 0) threads_ = 1;

    // 40-bit keyed-priority budget: (context + 1) in the high bits
    // (context 0 = control timeline), a per-context counter below.
    pri_counter_bits_ = 40 - ceil_log2(static_cast<std::uint64_t>(n) + 2);

    const std::uint64_t net_seed = config_.seed ^ 0x9e3779b97f4a7c15ULL;
    node_rng_.reserve(n);
    node_fault_rng_.reserve(n);
    for (NodeId u = 0; u < n; ++u) {
        // stream() is a pure function of (seed, index): per-node draws
        // are identical whatever shard the node lands on.
        node_rng_.push_back(Rng::stream(net_seed, 2ull * u));
        node_fault_rng_.push_back(Rng::stream(net_seed, 2ull * u + 1));
    }
    node_send_seq_.assign(n, 0);
    node_pri_.assign(n, 0);

    // Protocol RNGs fork in global node order, exactly like Cluster.
    Rng master(config_.seed);
    std::vector<Rng> proto_rng;
    proto_rng.reserve(n);
    for (NodeId u = 0; u < n; ++u) proto_rng.push_back(master.fork());

    shards_.reserve(shard_count);
    for (unsigned s = 0; s < shard_count; ++s) {
        auto sh = std::make_unique<Shard>();
        sh->metrics = std::make_unique<cost::Metrics>(n);
        if (config_.sample_window > 0) sh->metrics->enable_sampling(config_.sample_window);
        if (config_.trace_capacity > 0) {
            sh->trace = std::make_shared<sim::Trace>(config_.trace_capacity,
                                                     config_.trace_detail_capacity);
            if (!config_.trace_spill_dir.empty()) {
                if (s == 0) {
                    std::error_code ec;
                    std::filesystem::create_directories(config_.trace_spill_dir, ec);
                }
                sim::TraceSpillConfig spill;
                spill.path = sim::spill_shard_path(config_.trace_spill_dir, s);
                spill.shard = s;
                spill.resident_budget_bytes = config_.trace_budget_bytes;
                std::string error;
                FASTNET_EXPECTS_MSG(sh->trace->enable_spill(spill, &error),
                                    "trace spill enable failed");
            }
        }
        if (config_.monitor_setup) {
            sh->monitors = std::make_shared<obs::MonitorHub>();
            config_.monitor_setup(*sh->monitors);
            sh->monitors->attach_trace(sh->trace.get());
        }
        hw::NetworkConfig net_cfg = config_.net;
        net_cfg.seed = net_seed;
        net_cfg.trace = sh->trace;
        net_cfg.monitors = sh->monitors;
        sh->net = std::make_unique<hw::Network>(sh->sim, graph_, config_.params,
                                                *sh->metrics, net_cfg);
        hw::ParallelHooks hooks;
        hooks.shard = s;
        hooks.pri_counter_bits = pri_counter_bits_;
        hooks.node_shard = part_.shard_of.data();
        hooks.node_rng = node_rng_.data();
        hooks.node_fault_rng = node_fault_rng_.data();
        hooks.node_send_seq = node_send_seq_.data();
        hooks.node_pri = node_pri_.data();
        hooks.emit_remote = [this, s](hw::RemoteArrival&& r) {
            shards_[s]->outbox.push_back(std::move(r));
        };
        sh->net->bind_parallel(std::move(hooks));

        sh->runtimes.resize(n);
        for (NodeId u = 0; u < n; ++u) {
            if (part_.shard_of[u] != s) continue;
            auto rt = std::make_unique<NodeRuntime>(u, *sh->net, factory_(u), proto_rng[u],
                                                    config_.ncu_delay_min,
                                                    config_.free_multisend);
            rt->set_trace(sh->trace);
            rt->set_profile_id(
                sh->metrics->profiler().register_protocol(rt->protocol().name()));
            sh->net->set_ncu_sink(
                u, [raw = rt.get()](const hw::Delivery& d) { raw->on_delivery(d); });
            sh->runtimes[u] = std::move(rt);
        }
        sh->net->set_link_sink([this, s](NodeId at, EdgeId e, bool up) {
            shards_[s]->runtimes[at]->on_link_notification(e, up);
        });
        shards_.push_back(std::move(sh));
    }
    if (shard_count > 1) pool_ = std::make_unique<exec::ThreadPool>(threads_);
}

ParallelCluster::~ParallelCluster() = default;

NodeRuntime& ParallelCluster::runtime(NodeId u) {
    FASTNET_EXPECTS(u < graph_.node_count());
    return *shards_[part_.shard_of[u]]->runtimes[u];
}

const NodeRuntime& ParallelCluster::runtime(NodeId u) const {
    FASTNET_EXPECTS(u < graph_.node_count());
    return *shards_[part_.shard_of[u]]->runtimes[u];
}

void ParallelCluster::push_action(ScenarioAction a) {
    FASTNET_EXPECTS_MSG(a.at >= control_floor_,
                        "control action targets an already-simulated time");
    actions_.push_back(a);
    actions_dirty_ = true;
}

void ParallelCluster::sort_actions() {
    if (!actions_dirty_) return;
    actions_dirty_ = false;
    // Only the unexecuted suffix moves; ties keep registration order,
    // matching the sequential simulator's schedule-order tie-break.
    std::stable_sort(actions_.begin() + static_cast<std::ptrdiff_t>(next_action_),
                     actions_.end(),
                     [](const ScenarioAction& a, const ScenarioAction& b) {
                         return a.at < b.at;
                     });
}

void ParallelCluster::start(NodeId u, Tick at) {
    push_action({at, ScenarioAction::Kind::kStart, kNoEdge, u});
}

void ParallelCluster::start_all(Tick at) {
    for (NodeId u = 0; u < graph_.node_count(); ++u) start(u, at);
}

void ParallelCluster::mark_phase(Tick at, std::uint64_t phase) {
    push_action({at, ScenarioAction::Kind::kMarkPhase, kNoEdge, kNoNode,
                 static_cast<Tick>(phase)});
}

void ParallelCluster::fail_link(Tick at, EdgeId e) {
    push_action({at, ScenarioAction::Kind::kFailLink, e, kNoNode});
}

void ParallelCluster::restore_link(Tick at, EdgeId e) {
    push_action({at, ScenarioAction::Kind::kRestoreLink, e, kNoNode});
}

void ParallelCluster::fail_node(Tick at, NodeId u) {
    push_action({at, ScenarioAction::Kind::kFailNode, kNoEdge, u});
}

void ParallelCluster::restore_node(Tick at, NodeId u) {
    push_action({at, ScenarioAction::Kind::kRestoreNode, kNoEdge, u});
}

void ParallelCluster::crash_node(Tick at, NodeId u) {
    push_action({at, ScenarioAction::Kind::kCrashNode, kNoEdge, u});
}

void ParallelCluster::restart_node(Tick at, NodeId u) {
    push_action({at, ScenarioAction::Kind::kRestartNode, kNoEdge, u});
}

void ParallelCluster::stall_node(Tick at, NodeId u, Tick extra) {
    FASTNET_EXPECTS(extra >= 0);
    push_action({at, ScenarioAction::Kind::kStallNode, kNoEdge, u, extra});
}

void ParallelCluster::schedule(const Scenario& scenario) {
    for (const ScenarioAction& a : scenario.actions()) push_action(a);
}

void ParallelCluster::advance_all_to(Tick t) {
    for (auto& sh : shards_) sh->sim.advance_to(t);
}

void ParallelCluster::apply_action(const ScenarioAction& a) {
    switch (a.kind) {
        case ScenarioAction::Kind::kStart:
            runtime(a.node).request_start(a.at);
            break;
        case ScenarioAction::Kind::kFailLink:
            for (auto& sh : shards_) sh->net->fail_link(a.edge);
            break;
        case ScenarioAction::Kind::kRestoreLink:
            for (auto& sh : shards_) sh->net->restore_link(a.edge);
            break;
        case ScenarioAction::Kind::kFailNode:
            for (auto& sh : shards_) sh->net->fail_node(a.node);
            break;
        case ScenarioAction::Kind::kRestoreNode:
            for (auto& sh : shards_) sh->net->restore_node(a.node);
            break;
        case ScenarioAction::Kind::kCrashNode:
            if (runtime(a.node).crashed()) break;
            // Hardware first in every mirror (links down, epochs bump),
            // then the owning shard's software loses its soft state —
            // the same order Cluster::crash_node uses.
            for (auto& sh : shards_) sh->net->fail_node(a.node);
            runtime(a.node).crash();
            break;
        case ScenarioAction::Kind::kRestartNode:
            if (!runtime(a.node).crashed()) break;
            for (auto& sh : shards_) sh->net->restore_node(a.node);
            runtime(a.node).restart(factory_(a.node));
            break;
        case ScenarioAction::Kind::kStallNode:
            runtime(a.node).set_stall(a.amount);
            break;
        case ScenarioAction::Kind::kMarkPhase: {
            const auto phase = static_cast<std::uint64_t>(a.amount);
            for (auto& sh : shards_) sh->metrics->set_phase(phase);
            // One control record, owned by shard 0's trace — the merge
            // would otherwise duplicate it per shard.
            sim::Trace* trace = shards_[0]->trace.get();
            if (trace != nullptr && trace->enabled(sim::TraceKind::kPhase))
                trace->record(a.at, kNoNode, sim::TraceKind::kPhase, {.a = phase});
            for (auto& sh : shards_) {
                if (sh->monitors == nullptr || !sh->monitors->active()) continue;
                obs::MonitorEvent ev;
                ev.kind = obs::MonitorEvent::Kind::kPhase;
                ev.at = a.at;
                ev.a = phase;
                sh->monitors->dispatch(ev);
            }
            break;
        }
    }
}

void ParallelCluster::apply_control_at(Tick t) {
    while (next_action_ < actions_.size() && actions_[next_action_].at == t) {
        apply_action(actions_[next_action_]);
        ++next_action_;
    }
}

void ParallelCluster::run_window(Tick until) {
    if (shards_.size() == 1) {
        shards_[0]->sim.run_until(until);
    } else {
        for (auto& sh : shards_)
            pool_->submit([raw = sh.get(), until] { raw->sim.run_until(until); });
        pool_->wait_idle();
    }
    // Drain outboxes. (at, pri) is globally unique — pri embeds the
    // sending context — so the injection order, and with it the kHandoff
    // dispatch order per target hub, is a pure function of the run.
    std::vector<hw::RemoteArrival> pending;
    for (auto& sh : shards_) {
        pending.insert(pending.end(), std::make_move_iterator(sh->outbox.begin()),
                       std::make_move_iterator(sh->outbox.end()));
        sh->outbox.clear();
    }
    std::sort(pending.begin(), pending.end(),
              [](const hw::RemoteArrival& a, const hw::RemoteArrival& b) {
                  return a.at != b.at ? a.at < b.at : a.pri < b.pri;
              });
    for (const hw::RemoteArrival& r : pending)
        shards_[part_.shard_of[r.to]]->net->inject_remote(r);
}

void ParallelCluster::window_loop(Tick limit) {
    sort_actions();
    for (;;) {
        Tick te = kNever;
        for (const auto& sh : shards_) te = std::min(te, sh->sim.next_time());
        const Tick tc = next_action_ < actions_.size() ? actions_[next_action_].at : kNever;
        const Tick t0 = std::min(te, tc);
        if (t0 == kNever) break;
        if (limit != kNever && t0 > limit) break;
        if (tc <= te) {
            // Control barrier: all clocks meet at tc, then the timeline's
            // due actions replay into every mirror, single-threaded.
            advance_all_to(tc);
            apply_control_at(tc);
            continue;
        }
        // Event window [t0, end): bounded by the lookahead, the next
        // control time and the caller's limit.
        Tick end = lookahead_ == kNever ? kNever : t0 + lookahead_;
        if (tc < end) end = tc;
        if (limit != kNever && limit + 1 < end) end = limit + 1;
        run_window(end == kNever ? kNever : end - 1);
        // An unbounded window ran to quiescence; later control may still
        // be scheduled, but only after everything already simulated.
        control_floor_ = end == kNever ? now() + 1 : end;
    }
}

Tick ParallelCluster::run() {
    window_loop(kNever);
    const Tick done = now();
    for (auto& sh : shards_) {
        if (sh->monitors == nullptr || !sh->monitors->active()) continue;
        // Overflowed trace buffers surface as an explicit violation
        // before the books close, never as a silent truncation.
        if (sh->trace != nullptr &&
            (sh->trace->dropped() != 0 || sh->trace->detail_dropped() != 0)) {
            obs::MonitorEvent ev;
            ev.kind = obs::MonitorEvent::Kind::kTraceDrop;
            ev.at = done;
            ev.a = sh->trace->dropped();
            ev.b = sh->trace->detail_dropped();
            sh->monitors->dispatch(ev);
        }
        sh->monitors->finish(done);
    }
    // Spill finalization runs after the monitors so their kViolation
    // records land in the file; trace stats then fold into each shard's
    // ledger (merged_metrics sums them).
    for (auto& sh : shards_) {
        if (sh->trace == nullptr) continue;
        if (sh->trace->spill_enabled()) sh->trace->finish_spill();
        sh->metrics->set_trace_stats(gather_trace_stats(*sh->trace));
    }
    return done;
}

Tick ParallelCluster::run_until(Tick until) {
    window_loop(until);
    return now();
}

Tick ParallelCluster::now() const {
    Tick t = 0;
    for (const auto& sh : shards_) t = std::max(t, sh->sim.now());
    return t;
}

bool ParallelCluster::quiescent() const {
    if (next_action_ < actions_.size()) return false;
    for (const auto& sh : shards_) {
        if (!sh->sim.idle()) return false;
        if (!sh->outbox.empty()) return false;
        for (const auto& rt : sh->runtimes)
            if (rt != nullptr && !rt->ncu_idle()) return false;
    }
    return true;
}

cost::Metrics ParallelCluster::merged_metrics() const {
    cost::Metrics m(graph_.node_count());
    if (config_.sample_window > 0) m.enable_sampling(config_.sample_window);
    for (const auto& sh : shards_) m.merge_from(*sh->metrics);
    return m;
}

std::vector<sim::TraceRecord> ParallelCluster::merged_trace() const {
    std::vector<sim::TraceRecord> all;
    for (const auto& sh : shards_) {
        if (sh->trace == nullptr) continue;
        std::vector<sim::TraceRecord> part = sh->trace->snapshot();
        all.insert(all.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
    }
    // Each (at, node) belongs to one shard (control records to shard 0),
    // so the stable sort fixes one global interleaving; within a pair the
    // shard's own recording order survives.
    std::stable_sort(all.begin(), all.end(),
                     [](const sim::TraceRecord& a, const sim::TraceRecord& b) {
                         if (a.at != b.at) return a.at < b.at;
                         return trace_node_sort_key(a.node) < trace_node_sort_key(b.node);
                     });
    return all;
}

std::uint64_t ParallelCluster::trace_total_recorded() const {
    std::uint64_t n = 0;
    for (const auto& sh : shards_)
        if (sh->trace != nullptr) n += sh->trace->total_recorded();
    return n;
}

std::uint64_t ParallelCluster::trace_dropped() const {
    std::uint64_t n = 0;
    for (const auto& sh : shards_)
        if (sh->trace != nullptr) n += sh->trace->dropped();
    return n;
}

std::uint64_t ParallelCluster::trace_detail_dropped() const {
    std::uint64_t n = 0;
    for (const auto& sh : shards_)
        if (sh->trace != nullptr) n += sh->trace->detail_dropped();
    return n;
}

std::uint64_t ParallelCluster::trace_spilled_records() const {
    std::uint64_t n = 0;
    for (const auto& sh : shards_)
        if (sh->trace != nullptr) n += sh->trace->spilled_records();
    return n;
}

std::size_t ParallelCluster::trace_resident_bytes_peak() const {
    std::size_t peak = 0;
    for (const auto& sh : shards_)
        if (sh->trace != nullptr) peak = std::max(peak, sh->trace->resident_bytes());
    return peak;
}

std::vector<std::string> ParallelCluster::spill_paths() const {
    std::vector<std::string> out;
    for (const auto& sh : shards_)
        if (sh->trace != nullptr && !sh->trace->spill_path().empty())
            out.push_back(sh->trace->spill_path());
    return out;
}

std::vector<obs::Violation> ParallelCluster::merged_violations() const {
    std::vector<obs::Violation> all;
    for (const auto& sh : shards_) {
        if (sh->monitors == nullptr) continue;
        const auto& v = sh->monitors->violations();
        all.insert(all.end(), v.begin(), v.end());
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const obs::Violation& a, const obs::Violation& b) {
                         if (a.at != b.at) return a.at < b.at;
                         return trace_node_sort_key(a.node) < trace_node_sort_key(b.node);
                     });
    return all;
}

std::uint64_t ParallelCluster::violation_count() const {
    std::uint64_t n = 0;
    for (const auto& sh : shards_)
        if (sh->monitors != nullptr) n += sh->monitors->violation_count();
    return n;
}

std::size_t ParallelCluster::monitor_count() const {
    return shards_[0]->monitors == nullptr ? 0 : shards_[0]->monitors->monitor_count();
}

std::size_t ParallelCluster::packets_in_flight() const {
    std::size_t n = 0;
    for (const auto& sh : shards_) n += sh->net->packets_in_flight();
    return n;
}

Protocol& ParallelCluster::protocol(NodeId u) { return runtime(u).protocol(); }

const Protocol& ParallelCluster::protocol(NodeId u) const { return runtime(u).protocol(); }

bool ParallelCluster::crashed(NodeId u) const { return runtime(u).crashed(); }

}  // namespace fastnet::node
