// The programming model for NCU software.
//
// A Protocol is the per-node software of a distributed algorithm. Its
// handlers run inside NCU "system calls": each invocation occupies the
// node's single processor for P ticks (the software delay of Section 2)
// and is strictly serialized with every other invocation at that node —
// which is also what gives the election algorithm its token mutual
// exclusion for free. Inside one invocation the protocol may inject any
// number of packets at no extra processing cost (the model's multi-link
// send feature, validated on PARIS).
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "hw/anr.hpp"
#include "hw/packet.hpp"
#include "sim/trace.hpp"

namespace fastnet::node {

/// A node's view of one adjacent link — exactly the knowledge the paper
/// grants an NCU a priori: the link's ids (at both endpoints, exchanged
/// by the data-link initialization protocol), the neighbor's identity,
/// and the operational state reported by the data-link layer.
struct LocalLink {
    EdgeId edge = kNoEdge;
    NodeId neighbor = kNoNode;
    hw::PortId port = hw::kNoPort;         ///< Our side's id.
    hw::PortId remote_port = hw::kNoPort;  ///< The neighbor's side id.
    bool active = true;
};

using TimerId = std::uint64_t;

/// Services available to a protocol during a handler invocation.
class Context {
public:
    virtual ~Context() = default;

    virtual NodeId self() const = 0;
    virtual Tick now() const = 0;
    virtual const ModelParams& params() const = 0;

    /// Local topology: adjacent links with locally-known activity state.
    virtual std::span<const LocalLink> links() const = 0;

    /// Injects a packet with the given source route.
    virtual void send(hw::AnrHeader header, std::shared_ptr<const hw::Payload> payload) = 0;

    /// Replies to a received packet over its accumulated reverse route.
    virtual void reply(const hw::Delivery& to, std::shared_ptr<const hw::Payload> payload) = 0;

    /// Schedules on_timer(cookie) after `delay` ticks (>= 0).
    virtual TimerId set_timer(Tick delay, std::uint64_t cookie) = 0;
    virtual void cancel_timer(TimerId id) = 0;

    /// Deterministic per-node randomness (workload shaping only).
    virtual Rng& rng() = 0;

    /// How many times this node has crashed so far (0 before the first
    /// crash). The model's one word of stable storage: a boot counter in
    /// NVRAM, which is what lets recovery protocols generate sequence
    /// numbers that dominate everything issued before the crash.
    virtual std::uint64_t incarnation() const { return 0; }

    /// Appends an application-level trace record at (now, self), stamped
    /// with the current handler's causal lineage — how protocols emit
    /// kCallEvent and friends. Purely observational: a no-op when no
    /// trace is attached or the kind is filtered, so it may sit on hot
    /// paths unguarded.
    virtual void record(sim::TraceKind kind, std::uint64_t a, std::uint64_t b = 0,
                        std::uint8_t flag = 0) {
        (void)kind, (void)a, (void)b, (void)flag;
    }
};

/// Base class for node software. Handlers run serialized per node; each
/// costs one NCU involvement.
class Protocol {
public:
    virtual ~Protocol() = default;

    /// Stable identifier for the always-on handler profiler
    /// (cost::Profiler): invocations of every instance sharing a name
    /// aggregate into one per-handler-kind histogram set. Must return a
    /// string with static lifetime.
    virtual const char* name() const { return "protocol"; }

    /// Spontaneous start (the paper's START message from outside).
    virtual void on_start(Context&) {}

    /// First invocation after a crash-restart. The runtime constructs a
    /// *fresh* protocol instance on restart (a crash wipes all soft
    /// state), then calls this instead of on_start so recovery-aware
    /// protocols can re-announce under a new incarnation (see
    /// Context::incarnation). The default treats recovery as a cold start.
    virtual void on_restart(Context& ctx) { on_start(ctx); }

    /// A packet reached this NCU.
    virtual void on_message(Context&, const hw::Delivery&) {}

    /// The data-link layer reports a persistent link state change.
    virtual void on_link_state(Context&, const LocalLink&, bool up) {
        (void)up;
    }

    /// A timer set via Context::set_timer fired.
    virtual void on_timer(Context&, std::uint64_t cookie) { (void)cookie; }

    /// Self-reported footprint of this protocol instance, for the
    /// per-node memory ledger (cost::Metrics, docs/PERF.md "Memory at
    /// scale"). Convention: the object itself plus any heap it owns —
    /// overrides return sizeof(*this) (the derived size) + container
    /// capacities. The base default covers stateless protocols.
    virtual std::size_t memory_bytes() const { return sizeof(*this); }
};

}  // namespace fastnet::node
