#include "node/scenario.hpp"

#include <algorithm>
#include <map>

#include "common/expect.hpp"

namespace fastnet::node {

Scenario& Scenario::fail_link(Tick at, EdgeId e) {
    actions_.push_back({at, ScenarioAction::Kind::kFailLink, e, kNoNode});
    return *this;
}

Scenario& Scenario::restore_link(Tick at, EdgeId e) {
    actions_.push_back({at, ScenarioAction::Kind::kRestoreLink, e, kNoNode});
    return *this;
}

Scenario& Scenario::fail_node(Tick at, NodeId u) {
    actions_.push_back({at, ScenarioAction::Kind::kFailNode, kNoEdge, u});
    return *this;
}

Scenario& Scenario::restore_node(Tick at, NodeId u) {
    actions_.push_back({at, ScenarioAction::Kind::kRestoreNode, kNoEdge, u});
    return *this;
}

Scenario& Scenario::start(Tick at, NodeId u) {
    actions_.push_back({at, ScenarioAction::Kind::kStart, kNoEdge, u});
    return *this;
}

void Scenario::apply(Cluster& cluster) const {
    for (const ScenarioAction& a : actions_) {
        switch (a.kind) {
            case ScenarioAction::Kind::kStart:
                cluster.start(a.node, a.at);
                break;
            case ScenarioAction::Kind::kFailLink:
                cluster.simulator().at(a.at, [&cluster, e = a.edge] {
                    cluster.network().fail_link(e);
                });
                break;
            case ScenarioAction::Kind::kRestoreLink:
                cluster.simulator().at(a.at, [&cluster, e = a.edge] {
                    cluster.network().restore_link(e);
                });
                break;
            case ScenarioAction::Kind::kFailNode:
                cluster.simulator().at(a.at, [&cluster, u = a.node] {
                    cluster.network().fail_node(u);
                });
                break;
            case ScenarioAction::Kind::kRestoreNode:
                cluster.simulator().at(a.at, [&cluster, u = a.node] {
                    cluster.network().restore_node(u);
                });
                break;
        }
    }
}

Scenario Scenario::random_churn(const graph::Graph& g, unsigned events, Tick from, Tick to,
                                Rng& rng, const std::vector<EdgeId>& protect) {
    FASTNET_EXPECTS(from <= to && g.edge_count() > 0);
    Scenario s;
    for (unsigned i = 0; i < events; ++i) {
        EdgeId e;
        do {
            e = static_cast<EdgeId>(rng.below(g.edge_count()));
        } while (std::find(protect.begin(), protect.end(), e) != protect.end());
        const Tick at = from + static_cast<Tick>(
                                   rng.below(static_cast<std::uint64_t>(to - from) + 1));
        if (rng.chance(1, 2))
            s.fail_link(at, e);
        else
            s.restore_link(at, e);
    }
    return s;
}

Scenario& Scenario::heal_all(Tick at) {
    // "Last action wins" in *simulated time* order (stable on ties, which
    // matches the event queue's schedule-order tie-breaking).
    std::vector<ScenarioAction> ordered = actions_;
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const ScenarioAction& a, const ScenarioAction& b) {
                         return a.at < b.at;
                     });
    std::map<EdgeId, bool> last_is_fail;
    for (const ScenarioAction& a : ordered) {
        if (a.kind == ScenarioAction::Kind::kFailLink) last_is_fail[a.edge] = true;
        if (a.kind == ScenarioAction::Kind::kRestoreLink) last_is_fail[a.edge] = false;
    }
    for (const auto& [e, failed] : last_is_fail)
        if (failed) restore_link(at, e);
    return *this;
}

}  // namespace fastnet::node
