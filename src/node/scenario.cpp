#include "node/scenario.hpp"

#include <algorithm>
#include <map>

#include "common/expect.hpp"

namespace fastnet::node {

Scenario& Scenario::fail_link(Tick at, EdgeId e) {
    actions_.push_back({at, ScenarioAction::Kind::kFailLink, e, kNoNode});
    return *this;
}

Scenario& Scenario::restore_link(Tick at, EdgeId e) {
    actions_.push_back({at, ScenarioAction::Kind::kRestoreLink, e, kNoNode});
    return *this;
}

Scenario& Scenario::fail_node(Tick at, NodeId u) {
    actions_.push_back({at, ScenarioAction::Kind::kFailNode, kNoEdge, u});
    return *this;
}

Scenario& Scenario::restore_node(Tick at, NodeId u) {
    actions_.push_back({at, ScenarioAction::Kind::kRestoreNode, kNoEdge, u});
    return *this;
}

Scenario& Scenario::start(Tick at, NodeId u) {
    actions_.push_back({at, ScenarioAction::Kind::kStart, kNoEdge, u});
    return *this;
}

Scenario& Scenario::crash_node(Tick at, NodeId u) {
    actions_.push_back({at, ScenarioAction::Kind::kCrashNode, kNoEdge, u});
    return *this;
}

Scenario& Scenario::restart_node(Tick at, NodeId u) {
    actions_.push_back({at, ScenarioAction::Kind::kRestartNode, kNoEdge, u});
    return *this;
}

Scenario& Scenario::stall_node(Tick at, NodeId u, Tick extra) {
    FASTNET_EXPECTS(extra >= 0);
    actions_.push_back({at, ScenarioAction::Kind::kStallNode, kNoEdge, u, extra});
    return *this;
}

Scenario& Scenario::mark_phase(Tick at, std::uint64_t phase) {
    actions_.push_back({at, ScenarioAction::Kind::kMarkPhase, kNoEdge, kNoNode,
                        static_cast<Tick>(phase)});
    return *this;
}

Tick Scenario::last_action_at() const {
    Tick last = 0;
    for (const ScenarioAction& a : actions_) last = std::max(last, a.at);
    return last;
}

void Scenario::apply(Cluster& cluster) const {
    for (const ScenarioAction& a : actions_) {
        switch (a.kind) {
            case ScenarioAction::Kind::kStart:
                cluster.start(a.node, a.at);
                break;
            case ScenarioAction::Kind::kFailLink:
                cluster.simulator().at(a.at, [&cluster, e = a.edge] {
                    cluster.network().fail_link(e);
                });
                break;
            case ScenarioAction::Kind::kRestoreLink:
                cluster.simulator().at(a.at, [&cluster, e = a.edge] {
                    cluster.network().restore_link(e);
                });
                break;
            case ScenarioAction::Kind::kFailNode:
                cluster.simulator().at(a.at, [&cluster, u = a.node] {
                    cluster.network().fail_node(u);
                });
                break;
            case ScenarioAction::Kind::kRestoreNode:
                cluster.simulator().at(a.at, [&cluster, u = a.node] {
                    cluster.network().restore_node(u);
                });
                break;
            case ScenarioAction::Kind::kCrashNode:
                cluster.simulator().at(a.at, [&cluster, u = a.node] {
                    cluster.crash_node(u);
                });
                break;
            case ScenarioAction::Kind::kRestartNode:
                cluster.simulator().at(a.at, [&cluster, u = a.node] {
                    cluster.restart_node(u);
                });
                break;
            case ScenarioAction::Kind::kStallNode:
                cluster.simulator().at(a.at, [&cluster, u = a.node, x = a.amount] {
                    cluster.stall_node(u, x);
                });
                break;
            case ScenarioAction::Kind::kMarkPhase:
                cluster.mark_phase(a.at, static_cast<std::uint64_t>(a.amount));
                break;
        }
    }
}

Scenario Scenario::random_churn(const graph::Graph& g, unsigned events, Tick from, Tick to,
                                Rng& rng, const std::vector<EdgeId>& protect) {
    ChurnSpec spec;
    spec.link_events = events;
    spec.from = from;
    spec.to = to;
    spec.protect = protect;
    return random_churn(g, spec, rng);
}

Scenario Scenario::random_churn(const graph::Graph& g, const ChurnSpec& spec, Rng& rng) {
    FASTNET_EXPECTS(spec.from <= spec.to);
    const auto draw_at = [&] {
        return spec.from + static_cast<Tick>(rng.below(
                               static_cast<std::uint64_t>(spec.to - spec.from) + 1));
    };
    Scenario s;
    // Draw from the allowed lists, never rejection-sample against the
    // protected ones: with everything protected a reject loop would never
    // terminate, so an impossible request is a contract violation instead.
    if (spec.link_events > 0) {
        std::vector<EdgeId> allowed;
        allowed.reserve(g.edge_count());
        for (EdgeId e = 0; e < g.edge_count(); ++e)
            if (std::find(spec.protect.begin(), spec.protect.end(), e) == spec.protect.end())
                allowed.push_back(e);
        FASTNET_EXPECTS_MSG(!allowed.empty(),
                            "random_churn: every edge is protected but link_events > 0");
        for (unsigned i = 0; i < spec.link_events; ++i) {
            const EdgeId e = allowed[rng.below(allowed.size())];
            const Tick at = draw_at();
            if (rng.chance(1, 2))
                s.fail_link(at, e);
            else
                s.restore_link(at, e);
        }
    }
    if (spec.node_events > 0) {
        std::vector<NodeId> allowed;
        allowed.reserve(g.node_count());
        for (NodeId u = 0; u < g.node_count(); ++u)
            if (std::find(spec.protect_nodes.begin(), spec.protect_nodes.end(), u) ==
                spec.protect_nodes.end())
                allowed.push_back(u);
        FASTNET_EXPECTS_MSG(!allowed.empty(),
                            "random_churn: every node is protected but node_events > 0");
        for (unsigned i = 0; i < spec.node_events; ++i) {
            const NodeId u = allowed[rng.below(allowed.size())];
            const Tick at = draw_at();
            const bool down = rng.chance(1, 2);
            if (spec.crash_nodes) {
                down ? s.crash_node(at, u) : s.restart_node(at, u);
            } else {
                down ? s.fail_node(at, u) : s.restore_node(at, u);
            }
        }
    }
    return s;
}

Scenario& Scenario::heal_all(Tick at) {
    // "Last action wins" in *simulated time* order (stable on ties, which
    // matches the event queue's schedule-order tie-breaking).
    std::vector<ScenarioAction> ordered = actions_;
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const ScenarioAction& a, const ScenarioAction& b) {
                         return a.at < b.at;
                     });
    std::map<EdgeId, bool> last_is_fail;
    std::map<NodeId, ScenarioAction::Kind> last_node;
    std::map<NodeId, Tick> last_stall;
    for (const ScenarioAction& a : ordered) {
        switch (a.kind) {
            case ScenarioAction::Kind::kFailLink: last_is_fail[a.edge] = true; break;
            case ScenarioAction::Kind::kRestoreLink: last_is_fail[a.edge] = false; break;
            case ScenarioAction::Kind::kFailNode:
            case ScenarioAction::Kind::kRestoreNode:
            case ScenarioAction::Kind::kCrashNode:
            case ScenarioAction::Kind::kRestartNode:
                last_node[a.node] = a.kind;
                break;
            case ScenarioAction::Kind::kStallNode: last_stall[a.node] = a.amount; break;
            case ScenarioAction::Kind::kStart: break;
            case ScenarioAction::Kind::kMarkPhase: break;  // purely observational
        }
    }
    for (const auto& [e, failed] : last_is_fail)
        if (failed) restore_link(at, e);
    for (const auto& [u, kind] : last_node) {
        if (kind == ScenarioAction::Kind::kFailNode) restore_node(at, u);
        if (kind == ScenarioAction::Kind::kCrashNode) restart_node(at, u);
    }
    for (const auto& [u, extra] : last_stall)
        if (extra != 0) stall_node(at, u, 0);
    return *this;
}

}  // namespace fastnet::node
