#include "node/cluster.hpp"

namespace fastnet::node {

cost::TraceStats gather_trace_stats(const sim::Trace& trace) {
    cost::TraceStats s;
    s.total_recorded = trace.total_recorded();
    s.dropped = trace.dropped();
    s.detail_dropped = trace.detail_dropped();
    s.spilled_records = trace.spilled_records();
    s.spill_segments = trace.spill_segments();
    s.spilled_bytes = trace.spilled_bytes();
    s.resident_bytes = trace.resident_bytes();
    return s;
}

Cluster::Cluster(graph::Graph g, ProtocolFactory factory, ClusterConfig config)
    : graph_(std::move(g)),
      factory_(std::move(factory)),
      memory_sample_every_(config.memory_sample_every),
      trace_(config.trace),
      monitors_(config.monitors) {
    FASTNET_EXPECTS(factory_ != nullptr);
    FASTNET_EXPECTS(config.memory_sample_every >= 0);
    metrics_ = std::make_unique<cost::Metrics>(graph_.node_count());
    if (config.sample_window > 0) metrics_->enable_sampling(config.sample_window);
    hw::NetworkConfig net_cfg = config.net;
    net_cfg.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
    if (config.trace && !net_cfg.trace) net_cfg.trace = config.trace;
    if (monitors_) {
        net_cfg.monitors = monitors_;
        monitors_->attach_trace(trace_.get());
    }
    net_ = std::make_unique<hw::Network>(sim_, graph_, config.params, *metrics_, net_cfg);

    // All runtimes live in one contiguous arena block (their link tables
    // follow in the same arena): a single allocation, stable addresses,
    // and index-based dispatch instead of n std::function sinks.
    const NodeId n = graph_.node_count();
    Rng master(config.seed);
    runtimes_ = arena_.allocate_uninitialized<NodeRuntime>(n);
    for (NodeId u = 0; u < n; ++u) {
        new (&runtimes_[u]) NodeRuntime(u, *net_, factory_(u), master.fork(),
                                        config.ncu_delay_min, config.free_multisend, &arena_);
        ++runtime_count_;  // tracks constructed prefix: ~Cluster after a throw
        runtimes_[u].set_trace(config.trace);
        if (config.profile)
            runtimes_[u].set_profile_id(
                metrics_->profiler().register_protocol(runtimes_[u].protocol().name()));
    }
    net_->set_ncu_dispatch(
        [this](NodeId at, const hw::Delivery& d) { runtimes_[at].on_delivery(d); });
    net_->set_link_sink([this](NodeId at, EdgeId e, bool up) {
        runtime(at).on_link_notification(e, up);
    });
}

Cluster::~Cluster() {
    // Placement-new'd into the arena: destroy explicitly (the arena only
    // releases raw memory).
    for (NodeId u = runtime_count_; u > 0; --u) runtimes_[u - 1].~NodeRuntime();
}

void Cluster::mark_phase(Tick at, std::uint64_t phase) {
    sim_.at(at, [this, phase] {
        metrics_->set_phase(phase);
        if (trace_ && trace_->enabled(sim::TraceKind::kPhase))
            trace_->record(sim_.now(), kNoNode, sim::TraceKind::kPhase, {.a = phase});
        if (monitors_ && monitors_->active()) {
            obs::MonitorEvent ev;
            ev.kind = obs::MonitorEvent::Kind::kPhase;
            ev.at = sim_.now();
            ev.a = phase;
            monitors_->dispatch(ev);
        }
    });
}

void Cluster::start(NodeId u, Tick at) { runtime(u).request_start(at); }

void Cluster::start_all(Tick at) {
    for (NodeId u = 0; u < runtime_count_; ++u) start(u, at);
}

void Cluster::crash_node(NodeId u) {
    if (runtime(u).crashed()) return;
    // Hardware first (links drop, epochs bump, in-flight packets die),
    // then software: the NCU loses queue, timers and protocol state.
    net_->fail_node(u);
    runtimes_[u].crash();
}

void Cluster::restart_node(NodeId u) {
    if (!runtime(u).crashed()) return;
    net_->restore_node(u);
    runtimes_[u].restart(factory_(u));
}

bool Cluster::crashed(NodeId u) const {
    FASTNET_EXPECTS(u < runtime_count_);
    return runtimes_[u].crashed();
}

void Cluster::stall_node(NodeId u, Tick extra) { runtime(u).set_stall(extra); }

void Cluster::set_profile(bool on) {
    // register_protocol dedups by name, so re-enabling lands on the
    // entries the construction-time registration created.
    for (NodeId u = 0; u < runtime_count_; ++u)
        runtimes_[u].set_profile_id(
            on ? metrics_->profiler().register_protocol(runtimes_[u].protocol().name())
               : cost::Profiler::kNoProtocol);
}

void Cluster::sample_memory() {
    cost::MemorySample s;
    s.at = sim_.now();
    s.breakdown.graph = graph().memory_bytes();
    s.breakdown.network = net_->memory_bytes();
    s.breakdown.arena_used = arena_.bytes_used();
    s.breakdown.arena_reserved = arena_.bytes_reserved();
    if (trace_) s.breakdown.trace = trace_->resident_bytes();
    const bool watch = monitors_ && monitors_->active();
    for (NodeId u = 0; u < runtime_count_; ++u) {
        const std::uint64_t rt = runtimes_[u].memory_bytes();
        const std::uint64_t proto =
            runtimes_[u].crashed() ? 0 : runtimes_[u].protocol().memory_bytes();
        s.breakdown.runtimes += rt;
        s.breakdown.protocols += proto;
        const std::uint64_t node_bytes = rt + proto;
        if (node_bytes > s.max_node_bytes) {
            s.max_node_bytes = node_bytes;
            s.max_node = u;
        }
        if (watch) {
            obs::MonitorEvent ev;
            ev.kind = obs::MonitorEvent::Kind::kMemory;
            ev.at = s.at;
            ev.node = u;
            ev.a = node_bytes;
            monitors_->dispatch(ev);
        }
    }
    metrics_->record_memory(s);
}

Tick Cluster::run() {
    if (memory_sample_every_ > 0) {
        // Sampling reads state between event batches; it schedules
        // nothing, so the run's event order is identical to an unmetered
        // run. One final sample lands at quiescence.
        while (!sim_.idle()) {
            sim_.run_until(sim_.now() + memory_sample_every_);
            sample_memory();
        }
    } else {
        sim_.run();
    }
    finish_observability();
    return sim_.now();
}

void Cluster::finish_observability() {
    if (monitors_ && monitors_->active()) {
        // Overflowed trace buffers are a violation, not a silent
        // truncation: surface the counts before monitors close.
        if (trace_ && (trace_->dropped() != 0 || trace_->detail_dropped() != 0)) {
            obs::MonitorEvent ev;
            ev.kind = obs::MonitorEvent::Kind::kTraceDrop;
            ev.at = sim_.now();
            ev.a = trace_->dropped();
            ev.b = trace_->detail_dropped();
            monitors_->dispatch(ev);
        }
        // Quiescence reached: conservation-style monitors can close
        // their books (anything still "in flight" now is a real leak).
        monitors_->finish(sim_.now());
    }
    if (trace_) {
        if (trace_->spill_enabled()) trace_->finish_spill();
        metrics_->set_trace_stats(gather_trace_stats(*trace_));
    }
}

Tick Cluster::run_until(Tick until) {
    sim_.run_until(until);
    return sim_.now();
}

bool Cluster::quiescent() const {
    if (!sim_.idle()) return false;
    for (NodeId u = 0; u < runtime_count_; ++u) {
        if (!runtimes_[u].ncu_idle()) return false;
    }
    return true;
}

}  // namespace fastnet::node
