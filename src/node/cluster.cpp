#include "node/cluster.hpp"

namespace fastnet::node {

Cluster::Cluster(graph::Graph g, ProtocolFactory factory, ClusterConfig config)
    : graph_(std::move(g)),
      factory_(std::move(factory)),
      trace_(config.trace),
      monitors_(config.monitors) {
    FASTNET_EXPECTS(factory_ != nullptr);
    metrics_ = std::make_unique<cost::Metrics>(graph_.node_count());
    if (config.sample_window > 0) metrics_->enable_sampling(config.sample_window);
    hw::NetworkConfig net_cfg = config.net;
    net_cfg.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
    if (config.trace && !net_cfg.trace) net_cfg.trace = config.trace;
    if (monitors_) {
        net_cfg.monitors = monitors_;
        monitors_->attach_trace(trace_.get());
    }
    net_ = std::make_unique<hw::Network>(sim_, graph_, config.params, *metrics_, net_cfg);

    Rng master(config.seed);
    runtimes_.reserve(graph_.node_count());
    for (NodeId u = 0; u < graph_.node_count(); ++u) {
        auto rt = std::make_unique<NodeRuntime>(u, *net_, factory_(u), master.fork(),
                                                config.ncu_delay_min, config.free_multisend);
        rt->set_trace(config.trace);
        net_->set_ncu_sink(u, [raw = rt.get()](const hw::Delivery& d) { raw->on_delivery(d); });
        runtimes_.push_back(std::move(rt));
    }
    net_->set_link_sink([this](NodeId at, EdgeId e, bool up) {
        runtimes_[at]->on_link_notification(e, up);
    });
}

void Cluster::mark_phase(Tick at, std::uint64_t phase) {
    sim_.at(at, [this, phase] {
        metrics_->set_phase(phase);
        if (trace_ && trace_->enabled(sim::TraceKind::kPhase))
            trace_->record(sim_.now(), kNoNode, sim::TraceKind::kPhase, {.a = phase});
        if (monitors_ && monitors_->active()) {
            obs::MonitorEvent ev;
            ev.kind = obs::MonitorEvent::Kind::kPhase;
            ev.at = sim_.now();
            ev.a = phase;
            monitors_->dispatch(ev);
        }
    });
}

void Cluster::start(NodeId u, Tick at) {
    FASTNET_EXPECTS(u < runtimes_.size());
    runtimes_[u]->request_start(at);
}

void Cluster::start_all(Tick at) {
    for (NodeId u = 0; u < runtimes_.size(); ++u) start(u, at);
}

void Cluster::crash_node(NodeId u) {
    FASTNET_EXPECTS(u < runtimes_.size());
    if (runtimes_[u]->crashed()) return;
    // Hardware first (links drop, epochs bump, in-flight packets die),
    // then software: the NCU loses queue, timers and protocol state.
    net_->fail_node(u);
    runtimes_[u]->crash();
}

void Cluster::restart_node(NodeId u) {
    FASTNET_EXPECTS(u < runtimes_.size());
    if (!runtimes_[u]->crashed()) return;
    net_->restore_node(u);
    runtimes_[u]->restart(factory_(u));
}

bool Cluster::crashed(NodeId u) const {
    FASTNET_EXPECTS(u < runtimes_.size());
    return runtimes_[u]->crashed();
}

void Cluster::stall_node(NodeId u, Tick extra) {
    FASTNET_EXPECTS(u < runtimes_.size());
    runtimes_[u]->set_stall(extra);
}

Tick Cluster::run() {
    sim_.run();
    // Quiescence reached: conservation-style monitors can close their
    // books (anything still "in flight" now is a real leak).
    if (monitors_ && monitors_->active()) monitors_->finish(sim_.now());
    return sim_.now();
}

Tick Cluster::run_until(Tick until) {
    sim_.run_until(until);
    return sim_.now();
}

bool Cluster::quiescent() const {
    if (!sim_.idle()) return false;
    for (const auto& rt : runtimes_) {
        if (!rt->ncu_idle()) return false;
    }
    return true;
}

}  // namespace fastnet::node
