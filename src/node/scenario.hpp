// Declarative failure/repair scripts for experiments.
//
// A Scenario is a list of timed network actions (fail/restore links and
// nodes, start protocols) applied to a Cluster before running it. Tests,
// benches and examples share one vocabulary instead of ad-hoc lambdas,
// and a scenario can be generated randomly from a seed (reproducible
// chaos testing).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "node/cluster.hpp"

namespace fastnet::node {

struct ScenarioAction {
    enum class Kind {
        kFailLink,
        kRestoreLink,
        kFailNode,     ///< Link-layer only: incident links drop, software survives.
        kRestoreNode,
        kStart,
        kCrashNode,    ///< Hard failure: links drop AND all soft state dies.
        kRestartNode,  ///< Recovery: fresh protocol instance, on_restart hook.
        kStallNode,    ///< Inflate the node's processing delay by `amount` (0 clears).
        kMarkPhase,    ///< Observability: tag later system calls with phase `amount`.
    };
    Tick at = 0;
    Kind kind = Kind::kFailLink;
    EdgeId edge = kNoEdge;   ///< For link actions.
    NodeId node = kNoNode;   ///< For node actions / start.
    Tick amount = 0;         ///< For kStallNode: the extra delay. For kMarkPhase: the phase id.
};

/// Parameters for random_churn (see below). Separate from the call so
/// fault models (fault/injector.hpp) can be built up declaratively.
struct ChurnSpec {
    unsigned link_events = 0;  ///< Random link fail/restore draws.
    unsigned node_events = 0;  ///< Random node crash-or-restart draws.
    Tick from = 0;             ///< Window start (inclusive).
    Tick to = 0;               ///< Window end (inclusive).
    std::vector<EdgeId> protect;       ///< Edges churn must not touch.
    std::vector<NodeId> protect_nodes; ///< Nodes churn must not touch.
    /// true → node events are hard crash/restart; false → link-layer
    /// fail/restore (software state survives).
    bool crash_nodes = true;
};

class Scenario {
public:
    Scenario& fail_link(Tick at, EdgeId e);
    Scenario& restore_link(Tick at, EdgeId e);
    Scenario& fail_node(Tick at, NodeId u);
    Scenario& restore_node(Tick at, NodeId u);
    Scenario& start(Tick at, NodeId u);
    Scenario& crash_node(Tick at, NodeId u);
    Scenario& restart_node(Tick at, NodeId u);
    Scenario& stall_node(Tick at, NodeId u, Tick extra);
    /// Observability marker: from `at` on, system calls are attributed to
    /// experiment phase `phase` (see Cluster::mark_phase). No network effect.
    Scenario& mark_phase(Tick at, std::uint64_t phase);

    const std::vector<ScenarioAction>& actions() const { return actions_; }
    std::size_t size() const { return actions_.size(); }

    /// Latest scripted time, 0 for an empty scenario (benches use this as
    /// the earliest moment recovery can be complete).
    Tick last_action_at() const;

    /// Schedules every action on the cluster's simulator (idempotent per
    /// call; the caller still runs the cluster).
    void apply(Cluster& cluster) const;

    /// A random fail/restore churn: `events` actions over [from, to),
    /// never touching edges in `protect` (e.g. bridges you must keep).
    /// Requires at least one unprotected edge when events > 0.
    static Scenario random_churn(const graph::Graph& g, unsigned events, Tick from, Tick to,
                                 Rng& rng, const std::vector<EdgeId>& protect = {});

    /// Generalized churn: spec.link_events link draws plus
    /// spec.node_events node draws (crash/restart or fail/restore per
    /// spec.crash_nodes), uniformly over [spec.from, spec.to], never
    /// touching protected edges/nodes.
    static Scenario random_churn(const graph::Graph& g, const ChurnSpec& spec, Rng& rng);

    /// Ensures the scenario leaves the network whole at the end: appends
    /// a restore at `at` for every link whose last scripted action (in
    /// simulated-time order) was a failure, a restore/restart for every
    /// node last left failed/crashed, and a stall-clear for every node
    /// left with a nonzero stall.
    Scenario& heal_all(Tick at);

private:
    std::vector<ScenarioAction> actions_;
};

}  // namespace fastnet::node
