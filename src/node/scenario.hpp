// Declarative failure/repair scripts for experiments.
//
// A Scenario is a list of timed network actions (fail/restore links and
// nodes, start protocols) applied to a Cluster before running it. Tests,
// benches and examples share one vocabulary instead of ad-hoc lambdas,
// and a scenario can be generated randomly from a seed (reproducible
// chaos testing).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "node/cluster.hpp"

namespace fastnet::node {

struct ScenarioAction {
    enum class Kind { kFailLink, kRestoreLink, kFailNode, kRestoreNode, kStart };
    Tick at = 0;
    Kind kind = Kind::kFailLink;
    EdgeId edge = kNoEdge;   ///< For link actions.
    NodeId node = kNoNode;   ///< For node actions / start.
};

class Scenario {
public:
    Scenario& fail_link(Tick at, EdgeId e);
    Scenario& restore_link(Tick at, EdgeId e);
    Scenario& fail_node(Tick at, NodeId u);
    Scenario& restore_node(Tick at, NodeId u);
    Scenario& start(Tick at, NodeId u);

    const std::vector<ScenarioAction>& actions() const { return actions_; }
    std::size_t size() const { return actions_.size(); }

    /// Schedules every action on the cluster's simulator (idempotent per
    /// call; the caller still runs the cluster).
    void apply(Cluster& cluster) const;

    /// A random fail/restore churn: `events` actions over [from, to),
    /// never touching edges in `protect` (e.g. bridges you must keep).
    static Scenario random_churn(const graph::Graph& g, unsigned events, Tick from, Tick to,
                                 Rng& rng, const std::vector<EdgeId>& protect = {});

    /// Ensures the scenario leaves every link active at the end: appends
    /// a restore at `at` for every link whose last scripted action (in
    /// simulated-time order) was a failure.
    Scenario& heal_all(Tick at);

private:
    std::vector<ScenarioAction> actions_;
};

}  // namespace fastnet::node
