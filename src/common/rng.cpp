#include "common/rng.hpp"

// Header-only in practice; this TU pins the vtable-free class into the
// library so that IWYU-style include checks and ODR stay simple.
namespace fastnet {
static_assert(sizeof(Rng) == 32, "xoshiro256++ state is four 64-bit words");
}  // namespace fastnet
