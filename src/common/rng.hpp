// Deterministic pseudo-random number generation.
//
// Every stochastic element of the library (random graphs, random delay
// schedules, failure injection) draws from an explicitly seeded Rng so
// that any run — test, bench or example — is reproducible bit-for-bit
// from its seed. We implement xoshiro256++ (public domain, Blackman &
// Vigna) seeded through splitmix64, rather than <random>'s engines whose
// distributions are not guaranteed identical across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/expect.hpp"

namespace fastnet {

/// splitmix64 step; used for seeding and cheap hashing of ids into seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256++ generator with convenience sampling helpers.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
        std::uint64_t sm = seed;
        for (auto& w : state_) w = splitmix64(sm);
    }

    /// Next raw 64-bit value.
    std::uint64_t next() {
        const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). bound must be > 0.
    std::uint64_t below(std::uint64_t bound) {
        FASTNET_EXPECTS(bound > 0);
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold) return r % bound;
        }
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t range(std::int64_t lo, std::int64_t hi) {
        FASTNET_EXPECTS(lo <= hi);
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /// Bernoulli trial with probability num/den.
    bool chance(std::uint64_t num, std::uint64_t den) {
        FASTNET_EXPECTS(den > 0 && num <= den);
        return below(den) < num;
    }

    /// Uniform double in [0, 1). Only for workload shaping, never for the
    /// cost model itself.
    double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(below(i));
            using std::swap;
            swap(v[i - 1], v[j]);
        }
    }

    /// A uniformly random permutation of {0, .., n-1}.
    std::vector<std::uint32_t> permutation(std::uint32_t n) {
        std::vector<std::uint32_t> p(n);
        for (std::uint32_t i = 0; i < n; ++i) p[i] = i;
        shuffle(p);
        return p;
    }

    /// Derive an independent child generator (for per-node streams).
    /// NOTE: consumes one draw from the parent, so the child depends on
    /// how many forks preceded it. For order-independent derivation (the
    /// parallel sweep engine's per-task streams) use stream() instead.
    Rng fork() { return Rng(next() ^ 0xa5a5a5a5a5a5a5a5ULL); }

    /// The generator for stream `index` under `master_seed` — a pure
    /// function of its arguments. Unlike fork(), the result is
    /// independent of call order, thread, or how many other streams were
    /// derived, which is what makes parallel sweep results bit-identical
    /// to the serial order (see exec/sweep_runner.hpp).
    static Rng stream(std::uint64_t master_seed, std::uint64_t index) {
        std::uint64_t s = master_seed;
        const std::uint64_t mixed = splitmix64(s);
        std::uint64_t t = mixed ^ (index * 0x9e3779b97f4a7c15ULL + 0x243f6a8885a308d3ULL);
        return Rng(splitmix64(t));
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }
    std::array<std::uint64_t, 4> state_{};
};

}  // namespace fastnet
