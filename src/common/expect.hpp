// Contract checking in the spirit of the Core Guidelines' Expects/Ensures.
//
// Violations indicate programming errors (broken invariants), not runtime
// conditions a caller could recover from, so they throw ContractViolation
// which derives from std::logic_error. Checks stay enabled in release
// builds: the simulator's value is the exactness of the model, and a
// silently corrupted run is worse than a slow one.
#pragma once

#include <stdexcept>
#include <string>

namespace fastnet {

/// Thrown when a precondition, postcondition or invariant check fails.
class ContractViolation : public std::logic_error {
public:
    explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void contract_failure(const char* kind, const char* expr, const char* file,
                                   int line, const std::string& msg);
}  // namespace detail

}  // namespace fastnet

/// Precondition check; use at function entry.
#define FASTNET_EXPECTS(cond)                                                              \
    do {                                                                                   \
        if (!(cond)) ::fastnet::detail::contract_failure("Precondition", #cond, __FILE__,  \
                                                         __LINE__, {});                    \
    } while (false)

/// Precondition check with context message.
#define FASTNET_EXPECTS_MSG(cond, msg)                                                     \
    do {                                                                                   \
        if (!(cond)) ::fastnet::detail::contract_failure("Precondition", #cond, __FILE__,  \
                                                         __LINE__, (msg));                 \
    } while (false)

/// Invariant / postcondition check; use inside algorithm bodies.
#define FASTNET_ENSURES(cond)                                                              \
    do {                                                                                   \
        if (!(cond)) ::fastnet::detail::contract_failure("Invariant", #cond, __FILE__,     \
                                                         __LINE__, {});                    \
    } while (false)

#define FASTNET_ENSURES_MSG(cond, msg)                                                     \
    do {                                                                                   \
        if (!(cond)) ::fastnet::detail::contract_failure("Invariant", #cond, __FILE__,     \
                                                         __LINE__, (msg));                 \
    } while (false)
