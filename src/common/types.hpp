// Fundamental vocabulary types shared by every fastnet module.
//
// The cost model of Cidon-Gopal-Kutten (PODC'88) is exact: system calls,
// hops and time units are integers. Everything here is therefore integral
// and deterministic; there is no floating point anywhere in the model.
#pragma once

#include <cstdint>
#include <limits>

namespace fastnet {

/// Index of a node in the network graph, 0-based and dense.
using NodeId = std::uint32_t;

/// Index of an undirected edge in the network graph, 0-based and dense.
using EdgeId = std::uint32_t;

/// Simulated time. One Tick is an arbitrary quantum; the model parameters
/// C (hardware hop delay) and P (NCU / software delay) are expressed in
/// Ticks so that all theorem checks stay exact integer arithmetic.
using Tick = std::int64_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "no edge".
inline constexpr EdgeId kNoEdge = std::numeric_limits<EdgeId>::max();

/// Sentinel for "never" / unset time.
inline constexpr Tick kNever = std::numeric_limits<Tick>::max();

/// Model parameters of Section 2 / Section 5 of the paper.
///
/// `hop_delay`  — C: worst-case hardware delay per hop (link + switch).
/// `ncu_delay`  — P: worst-case software delay per NCU involvement.
/// `dmax`       — maximum number of link IDs permitted in an ANR header
///                (the "path length restriction" of Section 2); 0 means
///                "unbounded" (useful for the footnote-1 algorithm).
struct ModelParams {
    Tick hop_delay = 0;  ///< C. The limiting model of Sections 3-4 uses 0.
    Tick ncu_delay = 1;  ///< P. The limiting model of Sections 3-4 uses 1.
    std::size_t dmax = 0;  ///< 0 = unbounded.

    /// The limiting model used in Sections 3 and 4: C = 0, P = 1.
    static constexpr ModelParams fast_network() { return {0, 1, 0}; }
    /// The traditional model discussed in Section 5, Example 2: C = 1, P = 0.
    static constexpr ModelParams traditional() { return {1, 0, 0}; }
    /// Section 5, Example 3: C = 1, P = 1 (Fibonacci trees).
    static constexpr ModelParams balanced() { return {1, 1, 0}; }
};

/// Integer floor(log2(x)) for x >= 1.
constexpr unsigned floor_log2(std::uint64_t x) {
    unsigned r = 0;
    while (x >>= 1) ++r;
    return r;
}

/// Integer ceil(log2(x)) for x >= 1.
constexpr unsigned ceil_log2(std::uint64_t x) {
    if (x <= 1) return 0;
    return floor_log2(x - 1) + 1;
}

}  // namespace fastnet
