#include "hw/link.hpp"

namespace fastnet::hw {
static_assert(sizeof(LinkState) <= 56);
}  // namespace fastnet::hw
