// Dynamic per-link state: activity, failure epochs and FIFO discipline.
//
// The model (Section 2, "Changing topology"): an active link delivers
// every message in finite but unbounded time, FIFO; an inactive link
// delivers nothing. We stamp each transmission with the link's epoch —
// any state flip increments it — so packets in flight across a failure
// (or a fail+restore pair) are dropped rather than resurrected.
#pragma once

#include <array>

#include "common/types.hpp"

namespace fastnet::hw {

class LinkState {
public:
    bool active() const { return active_; }
    std::uint64_t epoch() const { return epoch_; }

    /// Returns true if the state actually changed.
    bool set_active(bool a) {
        if (a == active_) return false;
        active_ = a;
        ++epoch_;
        return true;
    }

    /// FIFO discipline per direction (0: a->b, 1: b->a): the arrival time
    /// of a new transmission may never precede an earlier one's.
    Tick fifo_arrival(int direction, Tick proposed) {
        Tick& last = last_arrival_[direction];
        if (proposed < last) proposed = last;
        last = proposed;
        return proposed;
    }

    /// Finite link capacity: consecutive arrivals in one direction are at
    /// least `spacing` apart. Call after fifo_arrival with its result.
    Tick spaced_arrival(int direction, Tick proposed, Tick spacing) {
        Tick& prev = last_spaced_[direction];
        if (prev != kNever && proposed < prev + spacing) proposed = prev + spacing;
        prev = proposed;
        last_arrival_[direction] = proposed;
        return proposed;
    }

private:
    bool active_ = true;
    std::uint64_t epoch_ = 0;
    std::array<Tick, 2> last_arrival_{0, 0};
    std::array<Tick, 2> last_spaced_{kNever, kNever};
};

}  // namespace fastnet::hw
