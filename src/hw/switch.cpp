#include "hw/switch.hpp"

// Header-only logic; TU anchors the module in the library.
namespace fastnet::hw {
static_assert(sizeof(SwitchingSubsystem) == sizeof(PortId));
}  // namespace fastnet::hw
