// The simulated network fabric: switches, links and packet transport.
//
// Network wires a graph::Graph into one SwitchingSubsystem per node and
// one LinkState per edge, and moves packets through them on the event
// queue. Hardware hops cost `hop_delay` (C) each; NCU processing cost is
// the node runtime's concern (node/runtime.hpp). Port assignment is
// deterministic: node u's port p (p >= 1) is its (p-1)-th incident edge
// in graph insertion order; port 0 is the NCU.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "cost/metrics.hpp"
#include "graph/graph.hpp"
#include "hw/anr.hpp"
#include "hw/link.hpp"
#include "hw/packet.hpp"
#include "obs/monitor.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace fastnet::hw {

/// Tunables beyond the analytic model parameters.
struct NetworkConfig {
    /// If >= 0, hop delays are drawn uniformly from
    /// [hop_delay_min, params.hop_delay]; otherwise fixed at C.
    /// FIFO per link direction is preserved regardless.
    Tick hop_delay_min = -1;
    /// Delay until an endpoint NCU learns a link state change (the
    /// data-link protocol of Section 2, "Changing topology").
    Tick detection_delay = 0;
    /// Minimum spacing between consecutive packet *arrivals* on one link
    /// direction (a finite-capacity link can deliver only one distinct
    /// packet per spacing interval). 0 = infinite capacity. Theorem 3's
    /// lower bound implicitly assumes ~one message per link per time
    /// unit; setting this to P makes that constraint physical
    /// (ablation A6).
    Tick link_spacing = 0;
    /// Seed for delay jitter.
    std::uint64_t seed = 1;
    /// Optional observational trace (send / drop records).
    std::shared_ptr<sim::Trace> trace;
    /// Optional live invariant monitors (obs::MonitorHub). Like the
    /// trace, purely observational: the fabric feeds it typed events
    /// (send/hop/deliver/drop/dup/retire) and an empty hub costs one
    /// branch per hook (bench_obs_overhead guards this).
    std::shared_ptr<obs::MonitorHub> monitors;
    /// Fault injection: per-transmission loss probability in parts per
    /// million (the data-link CRC rejects the frame and no retransmit
    /// succeeds). Drawn from a stream independent of the delay jitter, so
    /// enabling loss never perturbs delay schedules.
    std::uint32_t loss_ppm = 0;
    /// Fault injection: per-transmission duplication probability in ppm
    /// (a spurious link-layer retransmit although the original survived).
    /// The copy follows the same route, arrives after the original under
    /// the same FIFO + epoch discipline, and is observationally a second
    /// identical delivery — exactly the duplicate Section 2's
    /// sequence-numbered protocols must tolerate.
    std::uint32_t dup_ppm = 0;
};

/// One packet crossing a shard boundary in the parallel kernel: the
/// cursor's state plus the arrival it was already scheduled for. The
/// sender's shard appends these to its outbox during a window; the
/// coordinator injects them into the target shard's mirror at the next
/// window barrier (node/parallel_cluster.hpp). The payload is immutable
/// and shared; the route blob is deep-copied (Route::clone) because its
/// reverse track is still written on both sides of the boundary.
struct RemoteArrival {
    Tick at = 0;               ///< Arrival time (>= the next window's start).
    std::uint64_t pri = 0;     ///< Keyed tie-break drawn at the sender.
    NodeId to = kNoNode;
    EdgeId edge = kNoEdge;
    std::uint64_t epoch = 0;   ///< Link epoch stamped at transmit.
    Route route;
    std::uint32_t offset = 0;
    std::uint32_t reverse_len = 0;
    std::shared_ptr<const Payload> payload;
    NodeId origin = kNoNode;
    std::uint64_t id = 0;
    std::uint64_t lineage = 0;
    Tick sent_at = 0;
    Tick hop_sent_at = 0;
    unsigned hops = 0;
};

/// Wiring that puts a Network into parallel (sharded-mirror) mode.
///
/// In this mode the network is one shard's *mirror*: it simulates only
/// the nodes whose shard matches `shard`, but holds full per-edge link
/// state so epoch/activity checks work without cross-shard reads (the
/// coordinator applies every topology change to every mirror at a
/// barrier, keeping the mirrors in lockstep). Three things change on the
/// hot path, all chosen so the event order is a pure function of the
/// partitioned simulation and never of shard count or thread count:
///
///  * every scheduled event carries a keyed priority drawn from a
///    per-node counter of its *scheduling context* (the node whose
///    handler or transmit ran) — sender-side execution order is
///    shard-invariant, so the priorities are too;
///  * packet ids come from a per-origin stream ((origin+1)<<32 | seq)
///    instead of the global counter, and delay/loss/dup draws come from
///    per-node RNG streams, for the same reason;
///  * an arrival whose target lives on another shard goes to
///    `emit_remote` instead of the local queue.
///
/// The pointed-to arrays are owned by the coordinator and shared by all
/// mirrors; entry u is only ever touched by u's owning shard mid-window
/// (or by the coordinator at a barrier), so sharing is race-free.
struct ParallelHooks {
    std::uint32_t shard = 0;
    /// Low bits of a keyed priority hold the counter; the context node id
    /// (+1; 0 is the control timeline) sits above. 40-bit total budget.
    unsigned pri_counter_bits = 0;
    const std::uint32_t* node_shard = nullptr;
    Rng* node_rng = nullptr;
    Rng* node_fault_rng = nullptr;
    std::uint64_t* node_send_seq = nullptr;
    std::uint64_t* node_pri = nullptr;
    std::function<void(RemoteArrival&&)> emit_remote;
};

class Network {
public:
    using NcuSink = std::function<void(const Delivery&)>;
    /// Cluster-wide delivery dispatch: (receiving node, delivery).
    using NcuDispatch = std::function<void(NodeId, const Delivery&)>;
    /// (node notified, edge, new activity state)
    using LinkSink = std::function<void(NodeId, EdgeId, bool)>;

    Network(sim::Simulator& sim, const graph::Graph& g, ModelParams params,
            cost::Metrics& metrics, NetworkConfig config = {});

    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;

    const graph::Graph& graph() const { return graph_; }
    const ModelParams& params() const { return params_; }
    sim::Simulator& simulator() { return sim_; }
    cost::Metrics& metrics() { return metrics_; }
    /// Attached monitor hub, or null. The NCU runtimes feed it their
    /// enqueue/invoke events through this accessor.
    obs::MonitorHub* monitors() const { return monitors_; }

    /// Registers where deliveries for `node`'s NCU go. Must be set before
    /// any packet can be delivered there.
    void set_ncu_sink(NodeId node, NcuSink sink);

    /// Registers one dispatch callback covering every node — how a
    /// Cluster routes deliveries to its runtimes without materializing n
    /// std::functions. A per-node sink (set_ncu_sink) takes precedence
    /// where registered, so tests can still intercept a single node.
    void set_ncu_dispatch(NcuDispatch dispatch);

    /// Registers the data-link notification callback (one for the whole
    /// network; it receives the node to notify).
    void set_link_sink(LinkSink sink);

    /// Injects a packet from `from`'s NCU. The header's first label is
    /// matched at `from`'s own switch. Enforces dmax when configured.
    /// Returns the packet's lineage id — monotonically assigned, stamped
    /// on the packet and inherited by every copy/duplicate, so traces can
    /// causally link deliveries back to this send. `parent_lineage` is
    /// the lineage of the delivery/timer whose handler performed this
    /// send (0 for spontaneous sends); purely observational.
    std::uint64_t send(NodeId from, AnrHeader header, std::shared_ptr<const Payload> payload,
                       std::uint64_t parent_lineage = 0);

    // ---- topology dynamics -------------------------------------------
    void fail_link(EdgeId e) { set_link_active(e, false); }
    void restore_link(EdgeId e) { set_link_active(e, true); }
    void set_link_active(EdgeId e, bool active);
    bool link_active(EdgeId e) const { return links_[e].active(); }

    /// Fails every link incident to `u` (the paper models an inactive
    /// node as a node all of whose links are inactive). Links that were
    /// already down stay attributed to their original cause.
    void fail_node(NodeId u);
    /// Brings back exactly the links that `u`'s failure took down and
    /// that nothing else touched in between: a link that also failed
    /// independently (epoch moved on) stays down, and a link whose other
    /// endpoint is still a failed node stays down until *that* node is
    /// restored. No-op unless the node is currently failed.
    void restore_node(NodeId u);
    bool node_failed(NodeId u) const { return node_down_[u] != 0; }

    /// Live packet cursors (allocated, not yet released). At quiescence
    /// this must be zero — the convergence oracle's guard against
    /// resurrected in-flight packets.
    std::size_t packets_in_flight() const {
        return packet_slabs_.size() * kPacketSlabSize - packet_free_.size();
    }

    // ---- port geometry (static, known to each local NCU) -------------
    /// Port at `node` for incident edge `e`; kNoPort if not incident.
    PortId port_for_edge(NodeId node, EdgeId e) const;
    /// Edge behind link port `p` at `node`.
    EdgeId edge_at_port(NodeId node, PortId p) const;
    /// Port at `node` leading to adjacent node `v`; kNoPort if not adjacent.
    PortId port_to_neighbor(NodeId node, NodeId v) const;

    /// Omniscient port map for tests/benches and for protocols whose
    /// stated knowledge covers it (Section 5's complete graph).
    PortMap omniscient_ports() const;

    /// Omniscient route builder along a node path (see route_for_path).
    AnrHeader route(std::span<const NodeId> path, CopyMode mode = CopyMode::kNone) const;

    /// Width of one ANR label in bits: enough for every port id in the
    /// network plus the copy bit — the paper's k = O(log m).
    unsigned label_bits() const { return label_bits_; }

    // ---- scheduling façade (sequential + parallel modes) -------------
    // NCU runtimes schedule through these instead of simulator().at/after
    // directly: sequentially they forward verbatim, and in parallel mode
    // they attach the keyed priority of the scheduling context `ctx`
    // (always a node local to this mirror).
    sim::EventId schedule_at(NodeId ctx, Tick when, sim::InlineFn fn);
    sim::EventId schedule_after(NodeId ctx, Tick delay, sim::InlineFn fn);
    void cancel_scheduled(sim::EventId id) { sim_.cancel(id); }

    // ---- parallel kernel wiring (node/parallel_cluster.hpp) ----------
    /// Switches this network into parallel mirror mode; must be called
    /// before any traffic. See ParallelHooks.
    void bind_parallel(ParallelHooks hooks);
    bool parallel() const { return par_ != nullptr; }
    /// Coordinator-side: materializes a boundary-crossing packet in this
    /// mirror and schedules its arrival. Called only at window barriers.
    void inject_remote(const RemoteArrival& r);

    /// Heap bytes held by the fabric (link states, port geometry, packet
    /// slabs, sinks) — a cost::Metrics memory-ledger input.
    std::size_t memory_bytes() const;

private:
    // Packet flow. Packets live in a slab pool owned by the network; the
    // hot path hands a Packet* from switch to link event to switch with
    // zero copies and zero allocations (see docs/PERF.md). Ownership
    // convention: process_at_switch/transmit/arrive consume the pointer
    // (they either pass it on or release it); deliver_to_ncu only reads.
    void process_at_switch(NodeId node, Packet* pkt);
    void transmit(NodeId from, EdgeId e, Packet* pkt);
    void arrive(NodeId at, EdgeId e, std::uint64_t epoch, Packet* pkt);
    void deliver_to_ncu(NodeId node, const Packet& pkt);

    Packet* alloc_packet();
    void release_packet(Packet* pkt);

    // Parallel-mode helpers. A keyed priority packs (context+1) above a
    // per-context monotone counter; the control timeline owns context 0.
    bool par_local(NodeId u) const { return par_->node_shard[u] == par_->shard; }
    std::uint64_t par_draw(NodeId ctx);
    std::uint64_t par_ctl_draw();
    std::uint64_t par_next_id(NodeId origin);
    /// Schedules `pkt`'s arrival locally (keyed) or emits it to the
    /// coordinator's outbox when `to` is remote. Returns true in the
    /// remote case — the caller must release its local cursor once it is
    /// done reading it.
    bool par_dispatch_arrival(NodeId from, Tick arrival, NodeId to, EdgeId e,
                              std::uint64_t epoch, Packet* pkt);
    /// True when monitor events must be built (attached hub with at
    /// least one monitor registered).
    bool watched() const { return monitors_ != nullptr && monitors_->active(); }
    /// Records one packet death (trace + drop series); the caller still
    /// bumps the specific metrics counter and releases the packet.
    void note_drop(NodeId node, EdgeId e, const Packet& pkt, sim::DropReason reason);

    sim::Simulator& sim_;
    const graph::Graph& graph_;
    ModelParams params_;
    cost::Metrics& metrics_;
    NetworkConfig config_;
    /// Raw view of config_.trace — one pointer test on the hot paths
    /// instead of a shared_ptr dereference.
    sim::Trace* trace_ = nullptr;
    /// Raw view of config_.monitors, same rationale. Hooks guard with
    /// `monitors_ != nullptr && monitors_->active()` before building an
    /// event, so an absent or empty hub never allocates.
    obs::MonitorHub* monitors_ = nullptr;
    Rng rng_;
    /// Separate stream for loss/duplication draws — see NetworkConfig.
    Rng fault_rng_;

    /// One link downed by a node failure: restore_node honours the record
    /// only if the link's epoch still matches (nothing else happened to
    /// the link since). Records live in one pooled store chained through
    /// per-node head indices (LIFO; consumers reverse to recover
    /// insertion order) instead of a vector-of-vectors — node failures
    /// are rare, but the empty per-node vectors were 24 bytes each.
    struct DownedLink {
        EdgeId edge = kNoEdge;
        std::uint64_t epoch = 0;
        std::uint32_t next = kNoDowned;
    };
    static constexpr std::uint32_t kNoDowned = 0xffffffffu;
    std::vector<std::uint8_t> node_down_;
    std::vector<std::uint32_t> downed_head_;   ///< Per node; kNoDowned = none.
    std::vector<DownedLink> downed_pool_;
    std::vector<std::uint32_t> downed_free_;   ///< Recycled pool slots.

    void downed_push(NodeId u, EdgeId e, std::uint64_t epoch);
    /// Pops u's whole chain into `out` in insertion order.
    void downed_take(NodeId u, std::vector<DownedLink>& out);

    unsigned label_bits_ = 1;
    /// Per-edge {port at edge.a, port at edge.b} — O(1) reverse-label
    /// lookup in the per-hop path. The forward map (port -> edge) needs
    /// no storage at all: port p at node u is u's (p-1)-th incident edge
    /// in the graph's CSR, by the port-assignment rule above.
    std::vector<std::array<PortId, 2>> edge_ports_;
    std::vector<LinkState> links_;
    /// Lazily sized: empty until the first set_ncu_sink call (clusters
    /// use the dispatch below instead and never pay n functions).
    std::vector<NcuSink> ncu_sinks_;
    NcuDispatch ncu_dispatch_;
    LinkSink link_sink_;
    std::uint64_t next_packet_id_ = 1;

    /// Non-null iff this network is one shard's mirror (parallel mode).
    std::unique_ptr<ParallelHooks> par_;
    /// Control-timeline priority counter. Every mirror replays the whole
    /// control timeline, so these advance in lockstep across mirrors and
    /// a notification's priority is independent of the partition.
    std::uint64_t ctl_pri_ = 0;

    static constexpr std::size_t kPacketSlabSize = 64;
    std::vector<std::unique_ptr<Packet[]>> packet_slabs_;
    std::vector<Packet*> packet_free_;
};

}  // namespace fastnet::hw
